/**
 * @file
 * Reproduction of paper Figure 1: the BMBP-predicted upper bound on
 * the .95 wait-time quantile (95% confidence) through February 24th,
 * 2005, for the "normal" queues of SDSC Datastar and TACC Lonestar
 * (tacc2). The paper's observation: a user could have known with 95%
 * certainty that a job would start within seconds at TACC versus days
 * at SDSC.
 *
 * Prints an hourly series (console) and optionally a full 5-minute
 * resolution CSV (--csv=path) for plotting.
 *
 * Usage: fig1_two_machine_timeseries [--seed=N] [--csv=path]
 */

#include <cmath>
#include <iostream>
#include <map>

#include "bench_common.hh"
#include "core/bmbp_predictor.hh"
#include "sim/replay/replay_simulator.hh"
#include "util/csv_writer.hh"
#include "util/string_utils.hh"
#include "util/table_printer.hh"

namespace {

using namespace qdel;

std::vector<sim::SeriesPoint>
boundSeries(const char *site, const char *queue,
            const bench::BenchOptions &options, double begin, double end)
{
    const auto &profile = workload::findProfile(site, queue);
    auto trace = workload::synthesizeTrace(profile, options.seed);

    core::BmbpConfig config;
    config.quantile = options.quantile;
    config.confidence = options.confidence;
    core::BmbpPredictor predictor(config,
                                  &bench::sharedTable(options.quantile));

    sim::ReplaySimulator simulator(bench::replayConfig(options));
    sim::ReplayProbe probe;
    probe.captureSeries = true;
    probe.seriesBegin = begin;
    probe.seriesEnd = end;
    auto result = simulator.run(trace, predictor, probe).value();
    return result.series;
}

/** Last captured value at or before each hour mark. */
std::map<int, double>
hourlySamples(const std::vector<sim::SeriesPoint> &series, double begin)
{
    std::map<int, double> hourly;
    for (const auto &point : series) {
        const int hour = static_cast<int>((point.time - begin) / 3600.0);
        hourly[hour] = point.value;
    }
    return hourly;
}

} // namespace

int
main(int argc, char **argv)
{
    auto options = bench::parseOptions(argc, argv);
    const double begin = workload::dateUnix(2005, 2, 24);
    const double end = begin + 86400.0;

    auto sdsc = boundSeries("datastar", "normal", options, begin, end);
    auto tacc = boundSeries("tacc2", "normal", options, begin, end);

    if (!options.csvPath.empty()) {
        CsvWriter csv(options.csvPath);
        csv.writeRow(std::vector<std::string>{"unix_time", "machine",
                                              "bound_seconds"});
        for (const auto &point : sdsc)
            csv.writeRow(std::vector<std::string>{
                std::to_string(point.time), "sdsc-datastar",
                std::to_string(point.value)});
        for (const auto &point : tacc)
            csv.writeRow(std::vector<std::string>{
                std::to_string(point.time), "tacc-lonestar",
                std::to_string(point.value)});
    }

    TablePrinter table(
        "Figure 1. Predicted .95-quantile delay upper bounds (95% conf) "
        "on Feb 24, 2005 (hourly samples; full series via --csv).");
    table.setHeader({"Hour", "SDSC Datastar normal", "(human)",
                     "TACC Lonestar normal", "(human)"});

    auto sdsc_hourly = hourlySamples(sdsc, begin);
    auto tacc_hourly = hourlySamples(tacc, begin);
    double sdsc_sum = 0.0, tacc_sum = 0.0;
    size_t rows = 0;
    for (int hour = 0; hour < 24; ++hour) {
        if (!sdsc_hourly.count(hour) || !tacc_hourly.count(hour))
            continue;
        const double s = sdsc_hourly[hour];
        const double t = tacc_hourly[hour];
        sdsc_sum += s;
        tacc_sum += t;
        ++rows;
        table.addRow({TablePrinter::cell(static_cast<long long>(hour)),
                      TablePrinter::cell(s, 0), formatDuration(s),
                      TablePrinter::cell(t, 0), formatDuration(t)});
    }
    table.print(std::cout);

    if (rows > 0) {
        const double factor = (sdsc_sum / rows) / (tacc_sum / rows);
        std::cout << "\nMean bound ratio SDSC/TACC over the day: "
                  << TablePrinter::cell(factor, 1)
                  << "x.\nPaper: ~12 seconds at TACC vs ~4 days at SDSC "
                     "during this day — several orders of\nmagnitude "
                     "apart, the basis for cross-site submission "
                     "decisions.\n";
    }
    return 0;
}
