/**
 * @file
 * Reproduction of paper Table 3: fraction of correct job wait-time
 * predictions per machine/queue for the three methods (BMBP,
 * log-normal without trimming, log-normal with BMBP trimming),
 * predicting the .95 quantile at 95% confidence, 300 s refit epochs,
 * 10% training — on the synthetic Table 1 suite.
 *
 * Asterisk = method missed the advertised 0.95 (the paper's marker);
 * brackets = most accurate correct method (the paper's boldface).
 *
 * Usage: table3_correctness_by_queue [--seed=N] [--quantile=Q]
 *        [--confidence=C] [--epoch=S] [--train=F]
 */

#include <iostream>

#include "bench_common.hh"
#include "util/table_printer.hh"

int
main(int argc, char **argv)
{
    using namespace qdel;
    auto options = bench::parseOptions(argc, argv);
    auto predictor_options = bench::predictorOptions(options);
    auto replay = bench::replayConfig(options);
    sim::ParallelEvaluator evaluator(options.threads);

    TablePrinter table(
        "Table 3. Fraction of correct wait-time predictions per queue "
        "(q=.95, C=.95).");
    table.setHeader({"Machine", "Queue", "BMBP", "logn NoTrim",
                     "logn Trim"});

    size_t bmbp_correct = 0, notrim_correct = 0, trim_correct = 0;
    const auto rows = workload::table3Profiles();
    const auto traces =
        bench::synthesizeSuite(evaluator, rows, options.seed);
    const auto grid = bench::evaluateMethodGrid(
        evaluator, traces, {"bmbp", "lognormal", "lognormal-trim"},
        predictor_options, replay);
    for (size_t r = 0; r < rows.size(); ++r) {
        const auto *profile = rows[r];
        const std::vector<sim::EvaluationCell> &cells = grid[r];
        bmbp_correct += cells[0].correct(options.quantile);
        notrim_correct += cells[1].correct(options.quantile);
        trim_correct += cells[2].correct(options.quantile);

        auto formatted = bench::formatMethodCells(cells, options.quantile);
        table.addRow({profile->site, profile->queue, formatted[0],
                      formatted[1], formatted[2]});
    }

    table.print(std::cout);
    std::cout << "\nCorrect queues (of " << rows.size()
              << "): BMBP " << bmbp_correct << ", logn NoTrim "
              << notrim_correct << ", logn Trim " << trim_correct
              << ".\nPaper: BMBP 31/32 (all but lanl/short), "
                 "logn NoTrim 18/32, logn Trim 28/32.\n";
    return 0;
}
