/**
 * @file
 * Out-of-core replay throughput benchmarks (google-benchmark): the
 * numbers behind the streaming columnar replay path.
 *
 * Four layers are measured over synthesized sharded .qtc sets (built
 * once per size by the StreamingSynthesizer, multi-shard so shard
 * turnover is part of the cost):
 *
 *  - shard-set synthesis: StreamingSynthesizer -> ShardedTraceWriter,
 *    jobs/second to disk in O(shard) memory;
 *  - raw stream read: StreamingTraceReader batch iteration (map +
 *    CRC + column walk), the upper bound on replay throughput;
 *  - streaming replay: replayStream() end to end (batched observes +
 *    scores, per-queue event loops), single- and multi-threaded,
 *    reporting peak sampled RSS alongside the rate;
 *  - in-memory replay on the same jobs (materialize + evaluateTrace),
 *    the baseline the streaming path must not regress against.
 *
 * Every benchmark reports a jobs_per_sec rate counter; the replay
 * benchmarks add peak_rss_mb so the bounded-memory claim is a gated
 * number, not a doc assertion.
 */

#include <filesystem>
#include <map>
#include <string>

#include <benchmark/benchmark.h>

#include "core/predictor.hh"
#include "sim/replay/evaluation.hh"
#include "sim/replay/stream_replay.hh"
#include "trace/qtc_stream.hh"
#include "util/resource_usage.hh"
#include "workload/site_catalog.hh"
#include "workload/stream_synth.hh"

namespace {

using namespace qdel;

/** Profile every shard set is synthesized from (single queue). */
const workload::QueueProfile &
benchProfile()
{
    return workload::siteCatalog().front();
}

/** Jobs per shard: small enough that every size is multi-shard. */
constexpr size_t kShardSize = 500'000;

/**
 * A lazily synthesized shard set of @p jobs jobs, cached on disk for
 * the life of the process (and across runs: an existing manifest with
 * the right job count is reused instead of re-synthesized).
 */
const std::string &
shardSet(size_t jobs)
{
    static std::map<size_t, std::string> sets;
    auto it = sets.find(jobs);
    if (it != sets.end())
        return it->second;

    const auto dir = std::filesystem::temp_directory_path() /
                     ("qdel_replay_bench_" + std::to_string(jobs));
    std::filesystem::create_directories(dir);
    trace::ShardWriterOptions options;
    options.directory = dir.string();
    options.baseName = "bench";
    options.shardSize = kShardSize;
    options.site = benchProfile().site;
    options.machine = benchProfile().display;
    const std::string manifest =
        options.directory + "/" + options.baseName +
        trace::kQtcManifestExtension;

    if (auto existing = trace::StreamingTraceReader::open(manifest);
        existing.ok() && existing.value().jobCount() == jobs) {
        return sets.emplace(jobs, manifest).first->second;
    }

    trace::ShardedTraceWriter writer(options);
    workload::StreamSynthOptions synth_options;
    synth_options.jobCountOverride = jobs;
    workload::StreamingSynthesizer synth(benchProfile(), synth_options);
    trace::JobRecord job;
    while (synth.next(&job))
        writer.add(job);
    if (!writer.finish().ok())
        std::abort();  // Bench fixture; no recovery story.
    return sets.emplace(jobs, manifest).first->second;
}

void
reportJobs(benchmark::State &state, size_t jobs)
{
    state.counters["jobs_per_sec"] = benchmark::Counter(
        static_cast<double>(state.iterations() * jobs),
        benchmark::Counter::kIsRate);
}

// ---------------------------------------------------------------------
// Generation: synthesize straight to a sharded .qtc set.

void
BM_ShardSetSynthesis(benchmark::State &state)
{
    const auto jobs = static_cast<size_t>(state.range(0));
    const auto dir = std::filesystem::temp_directory_path() /
                     "qdel_replay_bench_synth";
    for (auto _ : state) {
        std::filesystem::remove_all(dir);
        std::filesystem::create_directories(dir);
        trace::ShardWriterOptions options;
        options.directory = dir.string();
        options.shardSize = kShardSize;
        options.site = benchProfile().site;
        options.machine = benchProfile().display;
        trace::ShardedTraceWriter writer(options);
        workload::StreamSynthOptions synth_options;
        synth_options.jobCountOverride = jobs;
        workload::StreamingSynthesizer synth(benchProfile(),
                                             synth_options);
        trace::JobRecord job;
        while (synth.next(&job))
            writer.add(job);
        if (!writer.finish().ok())
            state.SkipWithError("shard write failed");
        benchmark::DoNotOptimize(writer.totalJobs());
    }
    std::filesystem::remove_all(dir);
    reportJobs(state, jobs);
}
BENCHMARK(BM_ShardSetSynthesis)
    ->Arg(1'000'000)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// Raw stream read: map + CRC + batch walk, no prediction.

void
BM_StreamRead(benchmark::State &state)
{
    const auto jobs = static_cast<size_t>(state.range(0));
    const std::string &manifest = shardSet(jobs);
    for (auto _ : state) {
        auto reader = trace::StreamingTraceReader::open(manifest);
        if (!reader.ok()) {
            state.SkipWithError("open failed");
            break;
        }
        double sum = 0.0;
        trace::ColumnBatch batch;
        while (true) {
            auto more = reader.value().next(&batch);
            if (!more.ok()) {
                state.SkipWithError("stream failed");
                break;
            }
            if (!more.value())
                break;
            for (size_t i = 0; i < batch.size; ++i)
                sum += batch.wait[i];
        }
        benchmark::DoNotOptimize(sum);
    }
    reportJobs(state, jobs);
}
BENCHMARK(BM_StreamRead)->Arg(10'000'000)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// Streaming replay end to end.

void
runStreamReplay(benchmark::State &state, const std::string &method,
                size_t jobs, long long threads)
{
    const std::string &manifest = shardSet(jobs);
    size_t peak_rss = 0;
    for (auto _ : state) {
        auto reader = trace::StreamingTraceReader::open(manifest);
        if (!reader.ok()) {
            state.SkipWithError("open failed");
            break;
        }
        sim::StreamReplayConfig config;
        config.threads = threads;
        auto outcome =
            sim::replayStream(reader.value(), method, {}, config);
        if (!outcome.ok()) {
            state.SkipWithError("replay failed");
            break;
        }
        peak_rss = std::max(peak_rss,
                            outcome.value().peakResidentBytes);
        benchmark::DoNotOptimize(
            outcome.value().queues.front().result.correctFraction);
    }
    reportJobs(state, jobs);
    state.counters["peak_rss_mb"] = benchmark::Counter(
        static_cast<double>(peak_rss) / (1024.0 * 1024.0));
}

void
BM_StreamReplayBmbp(benchmark::State &state)
{
    runStreamReplay(state, "bmbp",
                    static_cast<size_t>(state.range(0)),
                    state.range(1));
}
BENCHMARK(BM_StreamReplayBmbp)
    ->Args({10'000'000, 1})
    ->Unit(benchmark::kMillisecond);

void
BM_StreamReplayLognormalTrim(benchmark::State &state)
{
    runStreamReplay(state, "lognormal-trim",
                    static_cast<size_t>(state.range(0)),
                    state.range(1));
}
BENCHMARK(BM_StreamReplayLognormalTrim)
    ->Args({10'000'000, 1})
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// In-memory baseline on the same jobs (1M: it materializes the lot).

void
BM_InMemoryReplayBmbp(benchmark::State &state)
{
    const auto jobs = static_cast<size_t>(state.range(0));
    auto reader = trace::StreamingTraceReader::open(shardSet(jobs));
    if (!reader.ok()) {
        state.SkipWithError("open failed");
        return;
    }
    auto materialized = reader.value().materialize();
    if (!materialized.ok()) {
        state.SkipWithError("materialize failed");
        return;
    }
    for (auto _ : state) {
        auto cell = sim::evaluateTrace(materialized.value(), "bmbp", {},
                                       {});
        benchmark::DoNotOptimize(cell.correctFraction);
    }
    reportJobs(state, jobs);
}
BENCHMARK(BM_InMemoryReplayBmbp)
    ->Arg(1'000'000)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
