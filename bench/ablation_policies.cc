/**
 * @file
 * Ablation: scheduling policy vs queuing behaviour vs predictability.
 * Runs the same offered workload through all four policies (FCFS,
 * priority-FCFS, EASY backfill, conservative backfill) and reports
 * machine efficiency, the wait-time distribution they produce, and
 * whether BMBP bounds the resulting waits at its advertised level —
 * the paper's premise that BMBP adapts to *any* local policy, made
 * concrete.
 *
 * Usage: ablation_policies [--seed=N]
 */

#include <future>
#include <iostream>

#include "bench_common.hh"
#include "sim/batch/batch_simulator.hh"
#include "sim/batch/job_generator.hh"
#include "util/table_printer.hh"

int
main(int argc, char **argv)
{
    using namespace qdel;
    auto options = bench::parseOptions(argc, argv);

    stats::Rng rng(options.seed + 7);
    sim::JobGeneratorConfig generator;
    generator.startTime = 0.0;
    generator.durationSeconds = 240.0 * 86400.0;
    sim::QueueSpec normal;
    normal.name = "normal";
    normal.jobsPerDay = 11.0;
    normal.maxProcs = 64;
    normal.runMedianSeconds = 2.0 * 3600.0;
    normal.runLogSigma = 1.5;
    normal.maxRunSeconds = 24.0 * 3600.0;
    normal.overestimateMax = 4.0;
    sim::QueueSpec debug;
    debug.name = "debug";
    debug.priority = 5;
    debug.jobsPerDay = 18.0;
    debug.maxProcs = 8;
    debug.runMedianSeconds = 600.0;
    debug.maxRunSeconds = 1800.0;
    generator.queues = {normal, debug};
    auto jobs = sim::generateJobs(generator, rng);

    TablePrinter table(
        "Ablation: the same workload under every scheduling policy "
        "(waits in seconds; BMBP on the 'normal' queue).");
    table.setHeader({"policy", "util %", "backfills", "median wait",
                     "mean wait", "p95 wait", "bmbp correct"});

    // Each policy row is a full machine simulation plus a BMBP replay;
    // the four rows share only the (read-only) offered workload, so
    // they run whole-row-per-task on the evaluation pool and are
    // collected in policy order. Build the shared rare-event table
    // before fanning out.
    bench::sharedTable(options.quantile);
    sim::ParallelEvaluator evaluator(options.threads);
    std::vector<std::future<std::vector<std::string>>> rows;
    for (const char *policy :
         {"fcfs", "priority-fcfs", "easy-backfill",
          "conservative-backfill"}) {
        rows.push_back(evaluator.pool().submit([policy, &jobs,
                                                &options] {
            sim::BatchSimConfig config;
            config.totalProcs = 96;
            config.policy = policy;
            sim::BatchSimulator machine(config);
            auto done = machine.run(jobs);
            auto trace = sim::BatchSimulator::toTrace(done, "pol", "m");
            auto normal_trace = trace.filterByQueue("normal");
            auto waits = normal_trace.waitTimes();
            auto summary = normal_trace.summary();

            auto cell =
                sim::evaluateTrace(normal_trace, "bmbp",
                                   bench::predictorOptions(options),
                                   bench::replayConfig(options));
            std::string correct =
                TablePrinter::cell(cell.correctFraction, 3);
            if (!cell.correct(options.quantile))
                correct = TablePrinter::flagged(correct);

            return std::vector<std::string>{
                policy,
                TablePrinter::cell(100.0 * machine.stats().utilization,
                                   1),
                TablePrinter::cell(static_cast<long long>(
                    machine.stats().backfillStarts)),
                TablePrinter::cell(summary.median, 0),
                TablePrinter::cell(summary.mean, 0),
                TablePrinter::cell(stats::quantile(waits, 0.95), 0),
                correct};
        }));
    }
    for (auto &row : rows)
        table.addRow(row.get());

    table.print(std::cout);
    std::cout
        << "\nBackfilling policies slash small-job waits (and raise "
           "utilization) relative to\nplain FCFS; priorities reshape "
           "who waits. BMBP never sees the policy — only the\nwaits — "
           "and bounds all four regimes at its advertised confidence, "
           "the paper's\ncentral robustness claim.\n";
    return 0;
}
