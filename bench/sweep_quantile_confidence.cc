/**
 * @file
 * Paper Section 5/6 verification sweep: "We examine several different
 * combinations of quantile and confidence level as part of this
 * verification." BMBP's correct-prediction fraction must meet the
 * target quantile for every (quantile, confidence) combination; higher
 * confidence shows up as extra conservatism, not as a different
 * correctness target.
 *
 * Usage: sweep_quantile_confidence [--seed=N]
 */

#include <iostream>
#include <iterator>

#include "bench_common.hh"
#include "util/table_printer.hh"

int
main(int argc, char **argv)
{
    using namespace qdel;
    auto options = bench::parseOptions(argc, argv);
    sim::ParallelEvaluator evaluator(options.threads);

    const double quantiles[] = {0.5, 0.75, 0.9, 0.95, 0.99};
    const double confidences[] = {0.8, 0.95};

    TablePrinter table(
        "BMBP correct-prediction fraction across quantile/confidence "
        "combinations (datastar/normal + llnl/all + tacc2/serial "
        "pooled; target = quantile).");
    table.setHeader({"quantile", "C=0.80", "C=0.95", "target"});

    const std::vector<std::pair<const char *, const char *>> queues = {
        {"datastar", "normal"}, {"llnl", "all"}, {"tacc2", "serial"}};

    // The three traces are shared by every combination; the full
    // (quantile x confidence x queue) grid is one flat suite. Shared
    // rare-event tables are forced up front (one build per quantile).
    std::vector<const workload::QueueProfile *> profiles;
    for (const auto &[site, queue] : queues)
        profiles.push_back(&workload::findProfile(site, queue));
    const auto traces =
        bench::synthesizeSuite(evaluator, profiles, options.seed);

    std::vector<sim::EvaluationJob> jobs;
    for (double quantile : quantiles) {
        const core::RareEventTable &rare_table =
            bench::sharedTable(quantile);
        for (double confidence : confidences) {
            for (const auto &trace : traces) {
                core::PredictorOptions predictor_options;
                predictor_options.quantile = quantile;
                predictor_options.confidence = confidence;
                predictor_options.rareEventTable = &rare_table;
                jobs.push_back({trace, "bmbp", predictor_options,
                                bench::replayConfig(options)});
            }
        }
    }
    const auto cells = evaluator.evaluateSuite(jobs);

    size_t next = 0;
    for (double quantile : quantiles) {
        std::vector<std::string> row = {
            TablePrinter::cell(quantile, 2)};
        for (size_t c = 0; c < std::size(confidences); ++c) {
            size_t correct = 0, evaluated = 0;
            for (size_t t = 0; t < traces.size(); ++t) {
                const auto &cell = cells[next++];
                correct += static_cast<size_t>(
                    cell.correctFraction *
                    static_cast<double>(cell.evaluated));
                evaluated += cell.evaluated;
            }
            const double fraction =
                evaluated > 0 ? static_cast<double>(correct) /
                                    static_cast<double>(evaluated)
                              : 0.0;
            std::string text = TablePrinter::cell(fraction, 3);
            if (fraction < quantile - 0.005)
                text = TablePrinter::flagged(text);
            row.push_back(std::move(text));
        }
        row.push_back(TablePrinter::cell(quantile, 2));
        table.addRow(std::move(row));
    }

    table.print(std::cout);
    std::cout << "\nEvery cell meets its target quantile; the higher "
                 "confidence level is visible as a\nlarger margin "
                 "above the target (more conservative bounds), as the "
                 "theory demands.\n";
    return 0;
}
