/**
 * @file
 * Microbenchmarks of prediction cost (google-benchmark).
 *
 * The paper reports an average of 8 ms per prediction on a 1 GHz
 * Pentium III across its 1.2 million simulated predictions and argues
 * that is fast enough for live forecasting. These benchmarks measure
 * the same operations in this implementation: feeding an observation
 * into the history (observe), recomputing the bound (refit), and the
 * combination, across history sizes from the trimmed minimum (59) to
 * the largest queue in the study (~350k jobs).
 */

#include <benchmark/benchmark.h>

#include "core/bmbp_predictor.hh"
#include "core/lognormal_predictor.hh"
#include "core/rare_event.hh"
#include "stats/quantile_bounds.hh"
#include "stats/rng.hh"
#include "stats/tolerance.hh"

namespace {

using namespace qdel;

/** Preload a predictor with n log-normal observations. */
template <typename Predictor>
void
preload(Predictor &predictor, size_t n, uint64_t seed)
{
    stats::Rng rng(seed);
    for (size_t i = 0; i < n; ++i)
        predictor.observe(rng.logNormal(4.0, 2.0));
    predictor.refit();
}

void
BM_BmbpRefit(benchmark::State &state)
{
    core::BmbpConfig config;
    config.trimmingEnabled = false;
    core::BmbpPredictor predictor(config);
    preload(predictor, static_cast<size_t>(state.range(0)), 1);
    for (auto _ : state) {
        predictor.refit();
        benchmark::DoNotOptimize(predictor.upperBound());
    }
}
BENCHMARK(BM_BmbpRefit)->Arg(59)->Arg(1000)->Arg(30000)->Arg(350000);

void
BM_BmbpObserveAndRefit(benchmark::State &state)
{
    core::BmbpConfig config;
    core::BmbpPredictor predictor(config);
    preload(predictor, static_cast<size_t>(state.range(0)), 2);
    stats::Rng rng(3);
    for (auto _ : state) {
        predictor.observe(rng.logNormal(4.0, 2.0));
        predictor.refit();
        benchmark::DoNotOptimize(predictor.upperBound());
    }
}
BENCHMARK(BM_BmbpObserveAndRefit)->Arg(59)->Arg(30000)->Arg(350000);

void
BM_LogNormalRefit(benchmark::State &state)
{
    core::LogNormalPredictor predictor;
    preload(predictor, static_cast<size_t>(state.range(0)), 4);
    for (auto _ : state) {
        predictor.refit();
        benchmark::DoNotOptimize(predictor.upperBound());
    }
}
BENCHMARK(BM_LogNormalRefit)->Arg(59)->Arg(1000)->Arg(350000);

void
BM_BmbpQuantileSpectrum(benchmark::State &state)
{
    // Table 8 style: four on-demand bounds from the current history.
    core::BmbpConfig config;
    config.trimmingEnabled = false;
    core::BmbpPredictor predictor(config);
    preload(predictor, 30000, 5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(predictor.boundAt(0.25, false));
        benchmark::DoNotOptimize(predictor.boundAt(0.5, true));
        benchmark::DoNotOptimize(predictor.boundAt(0.75, true));
        benchmark::DoNotOptimize(predictor.boundAt(0.95, true));
    }
}
BENCHMARK(BM_BmbpQuantileSpectrum);

void
BM_BmbpRefitCachedIndex(benchmark::State &state)
{
    // The refit() hot path as shipped: the BoundIndexCache advances
    // the order-statistic index through the binomial recurrence as the
    // history grows. Compare against BM_BmbpRefitUncachedIndex.
    stats::BoundIndexCache cache(0.95, 0.95);
    size_t n = 59;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.upperIndex(n));
        if (++n > 199)
            n = 59;  // stay on the exact path (n(1-q) < 10)
    }
}
BENCHMARK(BM_BmbpRefitCachedIndex);

void
BM_BmbpRefitUncachedIndex(benchmark::State &state)
{
    // The same growing-history index stream through the free function
    // (a fresh binary search over the binomial CDF per call) — what
    // every refit() paid before the cache.
    size_t n = 59;
    for (auto _ : state) {
        benchmark::DoNotOptimize(stats::upperBoundIndex(n, 0.95, 0.95));
        if (++n > 199)
            n = 59;
    }
}
BENCHMARK(BM_BmbpRefitUncachedIndex);

void
BM_ExactBinomialIndex(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(
            stats::upperBoundIndexExact(n, 0.95, 0.95));
}
BENCHMARK(BM_ExactBinomialIndex)->Arg(59)->Arg(1000)->Arg(100000);

void
BM_ApproxBinomialIndex(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(
            stats::upperBoundIndexApprox(n, 0.95, 0.95));
}
BENCHMARK(BM_ApproxBinomialIndex)->Arg(1000)->Arg(100000);

void
BM_ToleranceFactorExact(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(
            stats::normalToleranceFactorExact(n, 0.95, 0.95));
}
BENCHMARK(BM_ToleranceFactorExact)->Arg(10)->Arg(59)->Arg(300);

void
BM_RareEventTableBuild(benchmark::State &state)
{
    for (auto _ : state) {
        core::RareEventTable table(0.95, 0.05);
        benchmark::DoNotOptimize(table.entries());
    }
}
BENCHMARK(BM_RareEventTableBuild)->Unit(benchmark::kMillisecond);

void
BM_RunLengthThresholdSinglePass(benchmark::State &state)
{
    // One table entry via the shipped single-propagation calibration:
    // the retained-mass sequence for every run length falls out of one
    // O(R G^2) density propagation.
    for (auto _ : state)
        benchmark::DoNotOptimize(core::runLengthThreshold(0.8, 0.95));
}
BENCHMARK(BM_RunLengthThresholdSinglePass)
    ->Unit(benchmark::kMillisecond);

void
BM_RunLengthThresholdLegacy(benchmark::State &state)
{
    // The pre-rewrite calibration loop: one full propagation from
    // scratch per candidate run length (O(R^2 G^2) overall), expressed
    // through the public per-run-length probability query.
    for (auto _ : state) {
        int threshold = 65;
        for (int extra = 1; extra <= 64; ++extra) {
            const double retained =
                core::runContinuationProbability(0.8, 0.95, extra);
            if (retained < 0.05 - 1e-4) {
                threshold = extra + 1;
                break;
            }
        }
        benchmark::DoNotOptimize(threshold);
    }
}
BENCHMARK(BM_RunLengthThresholdLegacy)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
