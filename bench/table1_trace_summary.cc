/**
 * @file
 * Reproduction of paper Table 1: job submittal trace summary (job
 * count, mean / median / standard deviation of queuing delay) for all
 * 39 machine/queue rows, computed over the synthetic stand-in suite
 * and printed next to the published values.
 *
 * Usage: table1_trace_summary [--seed=N] [--csv=path]
 *        table1_trace_summary [--trace-cache[=DIR]] TRACE...
 *
 * With positional trace files the same summary columns are computed
 * for each file (loaded through the zero-copy parser and, with
 * --trace-cache, the binary ".qtc" cache) instead of the synthetic
 * suite.
 */

#include <iostream>

#include "bench_common.hh"
#include "util/csv_writer.hh"
#include "util/table_printer.hh"

int
main(int argc, char **argv)
{
    using namespace qdel;
    auto options = bench::parseOptions(argc, argv);

    if (!options.tracePaths.empty()) {
        TablePrinter table("Trace file summary. Units: seconds.");
        table.setHeader({"File", "Queue", "Jobs", "Avg", "Median",
                         "StdDev"});
        for (const auto &path : options.tracePaths) {
            const auto trace = bench::loadBenchTrace(path, options);
            for (const auto &queue : trace.queueNames()) {
                const auto sub = trace.filterByQueue(queue);
                const auto summary = sub.summary();
                table.addRow(
                    {path, queue.empty() ? "(all)" : queue,
                     TablePrinter::cell(
                         static_cast<long long>(summary.count)),
                     TablePrinter::cell(summary.mean, 0),
                     TablePrinter::cell(summary.median, 0),
                     TablePrinter::cell(summary.stddev, 0)});
            }
        }
        table.print(std::cout);
        return 0;
    }

    TablePrinter table(
        "Table 1. Job submittal traces (synthetic suite vs published). "
        "Units: seconds.");
    table.setHeader({"Site/Machine", "Queue", "Jobs", "Avg", "Avg(paper)",
                     "Median", "Median(paper)", "StdDev", "StdDev(paper)"});

    std::unique_ptr<CsvWriter> csv;
    if (!options.csvPath.empty()) {
        csv = std::make_unique<CsvWriter>(options.csvPath);
        csv->writeRow(std::vector<std::string>{
            "site", "queue", "jobs", "mean", "mean_paper", "median",
            "median_paper", "stddev", "stddev_paper"});
    }

    for (const auto &profile : workload::siteCatalog()) {
        auto trace = workload::synthesizeTrace(profile, options.seed);
        auto summary = trace.summary();
        table.addRow({profile.display, profile.queue,
                      TablePrinter::cell(
                          static_cast<long long>(summary.count)),
                      TablePrinter::cell(summary.mean, 0),
                      TablePrinter::cell(profile.meanDelay, 0),
                      TablePrinter::cell(summary.median, 0),
                      TablePrinter::cell(profile.medianDelay, 0),
                      TablePrinter::cell(summary.stddev, 0),
                      TablePrinter::cell(profile.stdDelay, 0)});
        if (csv) {
            csv->writeRow(std::vector<double>{
                0.0, 0.0, static_cast<double>(summary.count),
                summary.mean, profile.meanDelay, summary.median,
                profile.medianDelay, summary.stddev, profile.stdDelay});
        }
    }

    table.print(std::cout);
    std::cout << "\nEach row is generated from the published Table 1 "
                 "statistics (see DESIGN.md,\nsubstitution table); shape "
                 "agreement (heavy tails, median << mean) is the goal,\n"
                 "not exact standard deviations.\n";
    return 0;
}
