/**
 * @file
 * Reproduction of paper Table 6: the log-normal method without history
 * trimming, per queue and processor range.
 *
 * Usage: table6_lognormal_by_procs [--seed=N] ...
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    return qdel::bench::runProcTable(
        "lognormal",
        "Table 6. Log-normal (no trimming) correct-prediction fraction "
        "by queue and processor range.",
        argc, argv);
}
