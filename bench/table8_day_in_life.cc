/**
 * @file
 * Reproduction of paper Table 8 ("one day in the life of the
 * datastar/normal queue"): BMBP bounds on the .25 (lower bound), .5,
 * .75 and .95 (upper bounds) wait-time quantiles at 95% confidence,
 * sampled every two hours through May 5th, 2004.
 *
 * Usage: table8_day_in_life [--seed=N] [--year=Y --month=M --day=D]
 */

#include <iostream>

#include "bench_common.hh"
#include "core/bmbp_predictor.hh"
#include "sim/replay/replay_simulator.hh"
#include "util/string_utils.hh"
#include "util/table_printer.hh"

int
main(int argc, char **argv)
{
    using namespace qdel;
    auto options = bench::parseOptions(argc, argv);
    CommandLine cli(argc, argv);
    const int year = static_cast<int>(cliValue(cli.getInt("year", 2004)));
    const int month = static_cast<int>(cliValue(cli.getInt("month", 5)));
    const int day = static_cast<int>(cliValue(cli.getInt("day", 5)));

    const auto &profile = workload::findProfile("datastar", "normal");
    auto trace = workload::synthesizeTrace(profile, options.seed);

    core::BmbpConfig config;
    config.quantile = options.quantile;
    config.confidence = options.confidence;
    core::BmbpPredictor predictor(config,
                                  &bench::sharedTable(options.quantile));

    sim::ReplaySimulator simulator(bench::replayConfig(options));
    sim::ReplayProbe probe;
    probe.seriesBegin = workload::dateUnix(year, month, day);
    probe.seriesEnd = probe.seriesBegin + 86400.0;
    probe.snapshotInterval = 7200.0;
    probe.snapshotQuantiles = {
        {0.25, false}, {0.5, true}, {0.75, true}, {0.95, true}};
    auto result = simulator.run(trace, predictor, probe).value();

    TablePrinter table(
        "Table 8. One day in the life of datastar/normal: BMBP quantile "
        "bounds at 95% confidence, every two hours.");
    table.setHeader({"Hour (UTC)", ".25 Quantile (lower)",
                     ".5 Quantile", ".75 Quantile", ".95 Quantile"});

    for (const auto &snapshot : result.snapshots) {
        const double hour =
            (snapshot.time - probe.seriesBegin) / 3600.0;
        std::vector<std::string> row = {TablePrinter::cell(hour, 0)};
        for (double value : snapshot.values)
            row.push_back(TablePrinter::cell(value, 0));
        table.addRow(std::move(row));
    }

    table.print(std::cout);
    std::cout << "\nPaper Table 8 shows the same structure: long "
                 "morning bounds (hundreds of thousands of\nseconds at "
                 "the .95 quantile) improving substantially later in "
                 "the day.\n";
    return 0;
}
