/**
 * @file
 * Ablation: the rare-event run-length threshold. Prints the
 * autocorrelation-indexed lookup table (quadrature-computed, the
 * deterministic equivalent of the paper's Monte Carlo) and compares
 * BMBP under the adaptive table against fixed thresholds on queues
 * with different dependence structure.
 *
 * Usage: ablation_threshold [--seed=N]
 */

#include <future>
#include <iostream>
#include <iterator>

#include "bench_common.hh"
#include "core/bmbp_predictor.hh"
#include "core/rare_event.hh"
#include "sim/replay/replay_simulator.hh"
#include "util/table_printer.hh"

namespace {

using namespace qdel;

sim::EvaluationCell
runWithThreshold(const trace::Trace &trace, int threshold_override,
                 const bench::BenchOptions &options)
{
    core::BmbpConfig config;
    config.quantile = options.quantile;
    config.confidence = options.confidence;
    config.runThresholdOverride = threshold_override;
    core::BmbpPredictor predictor(config,
                                  &bench::sharedTable(options.quantile));
    sim::ReplaySimulator simulator(bench::replayConfig(options));
    auto result = simulator.run(trace, predictor).value();

    sim::EvaluationCell cell;
    cell.jobs = trace.size();
    cell.evaluated = result.evaluatedJobs;
    cell.correctFraction = result.correctFraction;
    cell.medianRatio = result.medianRatio;
    cell.trims = predictor.trimCount();
    return cell;
}

} // namespace

int
main(int argc, char **argv)
{
    auto options = bench::parseOptions(argc, argv);

    // Part 1: the lookup table itself (paper Section 4.1).
    const auto &table = bench::sharedTable(options.quantile);
    TablePrinter lookup(
        "Rare-event run-length thresholds by lag-1 autocorrelation "
        "(q=.95, rare event < 5%).");
    lookup.setHeader({"rho", "threshold (consecutive misses)"});
    for (size_t i = 0; i < table.entries().size(); ++i) {
        lookup.addRow({TablePrinter::cell(0.1 * static_cast<double>(i), 1),
                       TablePrinter::cell(static_cast<long long>(
                           table.entries()[i]))});
    }
    lookup.print(std::cout);

    // Part 2: adaptive vs fixed thresholds, fanned out as a flat
    // (queue x threshold) grid on the evaluation pool. The custom
    // BmbpConfig keeps this off the factory path, so it submits raw
    // tasks; the table above already forced the shared-table build.
    sim::ParallelEvaluator evaluator(options.threads);
    TablePrinter comparison(
        "Ablation: adaptive (autocorrelation-indexed) vs fixed "
        "run-length thresholds (correct fraction [trims]).");
    comparison.setHeader({"Machine", "Queue", "adaptive", "fixed 2",
                          "fixed 3", "fixed 6", "fixed 12"});

    const std::vector<std::pair<const char *, const char *>> queues = {
        {"datastar", "normal"},
        {"lanl", "scavenger"},
        {"tacc2", "normal"},
        {"nersc", "regular"}};
    const int thresholds[] = {0, 2, 3, 6, 12};
    std::vector<const workload::QueueProfile *> profiles;
    for (const auto &[site, queue] : queues)
        profiles.push_back(&workload::findProfile(site, queue));
    const auto traces =
        bench::synthesizeSuite(evaluator, profiles, options.seed);

    std::vector<std::future<sim::EvaluationCell>> futures;
    for (const auto &trace : traces) {
        for (int threshold : thresholds) {
            futures.push_back(evaluator.pool().submit(
                [trace, threshold, &options] {
                    return runWithThreshold(*trace, threshold, options);
                }));
        }
    }

    for (size_t r = 0; r < queues.size(); ++r) {
        std::vector<std::string> row = {queues[r].first,
                                        queues[r].second};
        for (size_t c = 0; c < std::size(thresholds); ++c) {
            auto cell = futures[r * std::size(thresholds) + c].get();
            std::string text =
                TablePrinter::cell(cell.correctFraction, 3) + " [" +
                TablePrinter::cell(static_cast<long long>(cell.trims)) +
                "]";
            if (!cell.correct(options.quantile))
                text += "*";
            row.push_back(std::move(text));
        }
        comparison.addRow(std::move(row));
    }
    comparison.print(std::cout);

    std::cout
        << "\nA threshold of 2 trims constantly (a single unlucky pair "
           "of misses discards the\nhistory), hurting accuracy; very "
           "large thresholds react too slowly to genuine\nchange "
           "points. The adaptive table picks 3-5 for the dependence "
           "levels these traces\nexhibit.\n";
    return 0;
}
