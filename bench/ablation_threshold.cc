/**
 * @file
 * Ablation: the rare-event run-length threshold. Prints the
 * autocorrelation-indexed lookup table (quadrature-computed, the
 * deterministic equivalent of the paper's Monte Carlo) and compares
 * BMBP under the adaptive table against fixed thresholds on queues
 * with different dependence structure.
 *
 * Usage: ablation_threshold [--seed=N]
 */

#include <iostream>

#include "bench_common.hh"
#include "core/bmbp_predictor.hh"
#include "core/rare_event.hh"
#include "sim/replay/replay_simulator.hh"
#include "util/table_printer.hh"

namespace {

using namespace qdel;

sim::EvaluationCell
runWithThreshold(const trace::Trace &trace, int threshold_override,
                 const bench::BenchOptions &options)
{
    core::BmbpConfig config;
    config.quantile = options.quantile;
    config.confidence = options.confidence;
    config.runThresholdOverride = threshold_override;
    core::BmbpPredictor predictor(config,
                                  &bench::sharedTable(options.quantile));
    sim::ReplaySimulator simulator(bench::replayConfig(options));
    auto result = simulator.run(trace, predictor);

    sim::EvaluationCell cell;
    cell.jobs = trace.size();
    cell.evaluated = result.evaluatedJobs;
    cell.correctFraction = result.correctFraction;
    cell.medianRatio = result.medianRatio;
    cell.trims = predictor.trimCount();
    return cell;
}

} // namespace

int
main(int argc, char **argv)
{
    auto options = bench::parseOptions(argc, argv);

    // Part 1: the lookup table itself (paper Section 4.1).
    const auto &table = bench::sharedTable(options.quantile);
    TablePrinter lookup(
        "Rare-event run-length thresholds by lag-1 autocorrelation "
        "(q=.95, rare event < 5%).");
    lookup.setHeader({"rho", "threshold (consecutive misses)"});
    for (size_t i = 0; i < table.entries().size(); ++i) {
        lookup.addRow({TablePrinter::cell(0.1 * static_cast<double>(i), 1),
                       TablePrinter::cell(static_cast<long long>(
                           table.entries()[i]))});
    }
    lookup.print(std::cout);

    // Part 2: adaptive vs fixed thresholds.
    TablePrinter comparison(
        "Ablation: adaptive (autocorrelation-indexed) vs fixed "
        "run-length thresholds (correct fraction [trims]).");
    comparison.setHeader({"Machine", "Queue", "adaptive", "fixed 2",
                          "fixed 3", "fixed 6", "fixed 12"});

    for (const auto &[site, queue] :
         {std::pair{"datastar", "normal"}, std::pair{"lanl", "scavenger"},
          std::pair{"tacc2", "normal"}, std::pair{"nersc", "regular"}}) {
        auto trace = workload::synthesizeTrace(
            workload::findProfile(site, queue), options.seed);
        std::vector<std::string> row = {site, queue};
        for (int threshold : {0, 2, 3, 6, 12}) {
            auto cell = runWithThreshold(trace, threshold, options);
            std::string text =
                TablePrinter::cell(cell.correctFraction, 3) + " [" +
                TablePrinter::cell(static_cast<long long>(cell.trims)) +
                "]";
            if (!cell.correct(options.quantile))
                text += "*";
            row.push_back(std::move(text));
        }
        comparison.addRow(std::move(row));
    }
    comparison.print(std::cout);

    std::cout
        << "\nA threshold of 2 trims constantly (a single unlucky pair "
           "of misses discards the\nhistory), hurting accuracy; very "
           "large thresholds react too slowly to genuine\nchange "
           "points. The adaptive table picks 3-5 for the dependence "
           "levels these traces\nexhibit.\n";
    return 0;
}
