/**
 * @file
 * Overhead proof for the observability layer (google-benchmark).
 *
 * Built twice from this one source:
 *
 *  - obs_overhead: the shipped build — obs compiled in, collection off
 *    by default (the disabled-registry fast path every production run
 *    that passes no --metrics-out takes), plus micro-benchmarks of the
 *    enabled primitives.
 *  - obs_overhead_baseline: the same hot-path benchmarks with the core
 *    sources recompiled under QDEL_OBS_DISABLE, so the macros vanish
 *    from the binary entirely — the true no-obs baseline.
 *
 * The overhead gate diffs the two reports over the shared benchmark
 * names (tools/bench_compare.py --max-regress): the disabled-registry
 * path must stay within a couple of percent of the compiled-out build
 * on the observe+refit hot path.
 */

#include <benchmark/benchmark.h>

#include "core/bmbp_predictor.hh"
#include "stats/rng.hh"

#ifndef QDEL_OBS_DISABLE
#include "obs/events.hh"
#include "obs/metrics.hh"
#include "obs/obs.hh"
#endif

namespace {

using namespace qdel;

/** Preload a predictor with n log-normal observations. */
void
preload(core::BmbpPredictor &predictor, size_t n, uint64_t seed)
{
    stats::Rng rng(seed);
    for (size_t i = 0; i < n; ++i)
        predictor.observe(rng.logNormal(4.0, 2.0));
    predictor.refit();
}

/**
 * The instrumented hot path: one observation into the history plus a
 * refit, exactly what the replay loop does per job. Identical name in
 * both binaries so the overhead gate can diff them.
 */
void
BM_ObserveRefitHotPath(benchmark::State &state)
{
    core::BmbpConfig config;
    core::BmbpPredictor predictor(config);
    preload(predictor, static_cast<size_t>(state.range(0)), 2);
    stats::Rng rng(3);
    for (auto _ : state) {
        predictor.observe(rng.logNormal(4.0, 2.0));
        predictor.refit();
        benchmark::DoNotOptimize(predictor.upperBound());
    }
}
BENCHMARK(BM_ObserveRefitHotPath)->Arg(59)->Arg(30000);

#ifndef QDEL_OBS_DISABLE

/** RAII toggle so enabled-state benchmarks cannot leak global state. */
class EnabledScope
{
  public:
    explicit EnabledScope(bool on) : saved_(obs::enabled())
    {
        obs::setEnabled(on);
    }
    ~EnabledScope() { obs::setEnabled(saved_); }

  private:
    bool saved_;
};

/** The same hot path with collection switched on. */
void
BM_ObserveRefitHotPathEnabled(benchmark::State &state)
{
    EnabledScope scope(true);
    core::BmbpConfig config;
    core::BmbpPredictor predictor(config);
    preload(predictor, static_cast<size_t>(state.range(0)), 2);
    stats::Rng rng(3);
    for (auto _ : state) {
        predictor.observe(rng.logNormal(4.0, 2.0));
        predictor.refit();
        benchmark::DoNotOptimize(predictor.upperBound());
    }
}
BENCHMARK(BM_ObserveRefitHotPathEnabled)->Arg(59)->Arg(30000);

/** One guarded counter increment, collection off: the common case. */
void
BM_CounterIncDisabled(benchmark::State &state)
{
    EnabledScope scope(false);
    obs::Counter counter("bench_disabled_counter_total", "");
    for (auto _ : state)
        QDEL_OBS(counter.inc());
    benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_CounterIncDisabled);

/** One guarded counter increment, collection on: a relaxed add. */
void
BM_CounterIncEnabled(benchmark::State &state)
{
    EnabledScope scope(true);
    obs::Counter counter("bench_enabled_counter_total", "");
    for (auto _ : state)
        QDEL_OBS(counter.inc());
    benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_CounterIncEnabled);

/** Contended counter: every pool worker bumping the same shards. */
void
BM_CounterIncEnabledThreaded(benchmark::State &state)
{
    static obs::Counter counter("bench_threaded_counter_total", "");
    EnabledScope scope(true);
    for (auto _ : state)
        QDEL_OBS(counter.inc());
    benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_CounterIncEnabledThreaded)->Threads(1)->Threads(8);

/** One guarded histogram observation, collection on. */
void
BM_HistogramObserveEnabled(benchmark::State &state)
{
    EnabledScope scope(true);
    obs::Histogram histogram("bench_histogram_seconds", "",
                             obs::exponentialBounds(1e-6, 4.0, 13));
    double value = 1e-6;
    for (auto _ : state) {
        QDEL_OBS(histogram.observe(value));
        value = value > 1.0 ? 1e-6 : value * 1.7;
    }
    benchmark::DoNotOptimize(histogram.count());
}
BENCHMARK(BM_HistogramObserveEnabled);

/** One event into the bounded ring (mutex + slot write). */
void
BM_EventEmitEnabled(benchmark::State &state)
{
    EnabledScope scope(true);
    obs::EventRing ring(1 << 12);
    for (auto _ : state)
        ring.emit(obs::EventType::BoundHit, 1.0, 2.0, "bench");
    benchmark::DoNotOptimize(ring.dropped());
}
BENCHMARK(BM_EventEmitEnabled);

#endif // QDEL_OBS_DISABLE

} // namespace

BENCHMARK_MAIN();
