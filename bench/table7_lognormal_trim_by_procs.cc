/**
 * @file
 * Reproduction of paper Table 7: the log-normal method with BMBP's
 * history-trimming change-point machinery, per queue and processor
 * range.
 *
 * Usage: table7_lognormal_trim_by_procs [--seed=N] ...
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    return qdel::bench::runProcTable(
        "lognormal-trim",
        "Table 7. Log-normal (with trimming) correct-prediction "
        "fraction by queue and processor range.",
        argc, argv);
}
