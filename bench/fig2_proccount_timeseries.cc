/**
 * @file
 * Reproduction of paper Figure 2: BMBP-predicted .95-quantile upper
 * bounds (95% confidence) through June 2004 on SDSC Datastar's
 * "normal" queue, separately for jobs requesting 1-4 processors and
 * 17-64 processors. The paper's surprising finding — larger jobs were
 * *favored* that month — must be visible: the 17-64 line sits well
 * below the 1-4 line.
 *
 * Usage: fig2_proccount_timeseries [--seed=N] [--csv=path]
 */

#include <iostream>

#include "bench_common.hh"
#include "core/bmbp_predictor.hh"
#include "sim/replay/replay_simulator.hh"
#include "util/csv_writer.hh"
#include "util/string_utils.hh"
#include "util/table_printer.hh"

namespace {

using namespace qdel;

std::vector<sim::SeriesPoint>
boundSeriesForRange(const trace::Trace &full, const trace::ProcRange &range,
                    const bench::BenchOptions &options, double begin,
                    double end)
{
    auto subdivided = full.filterByProcRange(range);

    core::BmbpConfig config;
    config.quantile = options.quantile;
    config.confidence = options.confidence;
    core::BmbpPredictor predictor(config,
                                  &bench::sharedTable(options.quantile));

    sim::ReplaySimulator simulator(bench::replayConfig(options));
    sim::ReplayProbe probe;
    probe.captureSeries = true;
    probe.seriesBegin = begin;
    probe.seriesEnd = end;
    return simulator.run(subdivided, predictor, probe).value().series;
}

double
sampleAt(const std::vector<sim::SeriesPoint> &series, double time)
{
    double value = -1.0;
    for (const auto &point : series) {
        if (point.time > time)
            break;
        value = point.value;
    }
    return value;
}

} // namespace

int
main(int argc, char **argv)
{
    auto options = bench::parseOptions(argc, argv);
    const double begin = workload::dateUnix(2004, 6, 1);
    const double end = workload::dateUnix(2004, 7, 1);

    const auto &profile = workload::findProfile("datastar", "normal");
    auto trace = workload::synthesizeTrace(profile, options.seed);

    const trace::ProcRange *bins = trace::paperProcRanges();
    auto small_series =
        boundSeriesForRange(trace, bins[0], options, begin, end);
    auto large_series =
        boundSeriesForRange(trace, bins[2], options, begin, end);

    if (!options.csvPath.empty()) {
        CsvWriter csv(options.csvPath);
        csv.writeRow(std::vector<std::string>{"unix_time", "proc_range",
                                              "bound_seconds"});
        for (const auto &point : small_series)
            csv.writeRow(std::vector<std::string>{
                std::to_string(point.time), "1-4",
                std::to_string(point.value)});
        for (const auto &point : large_series)
            csv.writeRow(std::vector<std::string>{
                std::to_string(point.time), "17-64",
                std::to_string(point.value)});
    }

    TablePrinter table(
        "Figure 2. Predicted .95-quantile delay upper bounds, "
        "datastar/normal, June 2004 (daily samples).");
    table.setHeader({"Day", "1-4 procs", "(human)", "17-64 procs",
                     "(human)", "large/small"});

    size_t large_lower_days = 0;
    size_t days = 0;
    for (int day = 1; day <= 30; ++day) {
        const double at = begin + day * 86400.0 - 3600.0;
        const double small_bound = sampleAt(small_series, at);
        const double large_bound = sampleAt(large_series, at);
        if (small_bound < 0.0 || large_bound < 0.0)
            continue;
        ++days;
        large_lower_days += large_bound < small_bound;
        table.addRow({TablePrinter::cell(static_cast<long long>(day)),
                      TablePrinter::cell(small_bound, 0),
                      formatDuration(small_bound),
                      TablePrinter::cell(large_bound, 0),
                      formatDuration(large_bound),
                      TablePrinter::cell(large_bound / small_bound, 3)});
    }
    table.print(std::cout);

    std::cout << "\nDays with the 17-64 processor bound BELOW the 1-4 "
                 "bound: " << large_lower_days << "/" << days
              << ".\nPaper: larger jobs were favored throughout June "
                 "2004 — BMBP would have correctly\nforecast the "
                 "advantage of submitting larger jobs.\n";
    return 0;
}
