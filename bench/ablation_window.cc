/**
 * @file
 * Ablation: adaptive trimming vs fixed sliding windows. A natural
 * alternative to change-point detection is to simply bound the
 * history length; this bench shows why the paper's adaptive scheme is
 * preferable — short windows are exactly calibrated but noisy and
 * loose, long windows go stale across regimes.
 *
 * Usage: ablation_window [--seed=N]
 */

#include <iostream>

#include "bench_common.hh"
#include "core/bmbp_predictor.hh"
#include "sim/replay/replay_simulator.hh"
#include "util/table_printer.hh"

namespace {

using namespace qdel;

sim::EvaluationCell
runWindow(const trace::Trace &trace, size_t max_history, bool trimming,
          const bench::BenchOptions &options)
{
    core::BmbpConfig config;
    config.quantile = options.quantile;
    config.confidence = options.confidence;
    config.trimmingEnabled = trimming;
    config.maxHistory = max_history;
    core::BmbpPredictor predictor(config,
                                  &bench::sharedTable(options.quantile));
    sim::ReplaySimulator simulator(bench::replayConfig(options));
    auto result = simulator.run(trace, predictor);

    sim::EvaluationCell cell;
    cell.evaluated = result.evaluatedJobs;
    cell.correctFraction = result.correctFraction;
    cell.medianRatio = result.medianRatio;
    return cell;
}

} // namespace

int
main(int argc, char **argv)
{
    auto options = bench::parseOptions(argc, argv);

    TablePrinter table(
        "Ablation: adaptive trimming vs fixed sliding windows "
        "(correct fraction; ratio = median actual/predicted).");
    table.setHeader({"Machine", "Queue", "adaptive", "window 59",
                     "window 1000", "unbounded", "ratio adaptive",
                     "ratio w59", "ratio unbounded"});

    for (const auto &[site, queue] :
         {std::pair{"datastar", "normal"}, std::pair{"nersc", "regular"},
          std::pair{"sdsc", "low"}, std::pair{"tacc2", "serial"}}) {
        auto trace = workload::synthesizeTrace(
            workload::findProfile(site, queue), options.seed);
        auto adaptive = runWindow(trace, 0, true, options);
        auto window59 = runWindow(trace, 59, false, options);
        auto window1k = runWindow(trace, 1000, false, options);
        auto unbounded = runWindow(trace, 0, false, options);

        auto fmt = [&](const sim::EvaluationCell &cell) {
            std::string text =
                TablePrinter::cell(cell.correctFraction, 3);
            return cell.correct(options.quantile)
                       ? text
                       : TablePrinter::flagged(text);
        };
        table.addRow({site, queue, fmt(adaptive), fmt(window59),
                      fmt(window1k), fmt(unbounded),
                      TablePrinter::cellSci(adaptive.medianRatio, 2),
                      TablePrinter::cellSci(window59.medianRatio, 2),
                      TablePrinter::cellSci(unbounded.medianRatio, 2)});
    }

    table.print(std::cout);
    std::cout
        << "\nThe 59-observation window (the trimmed minimum, held "
           "permanently) stays correct\nbut its bound is the sample "
           "maximum — loose and volatile. The adaptive scheme\nuses "
           "long histories while they remain relevant and only "
           "shortens them at\ndetected change points.\n";
    return 0;
}
