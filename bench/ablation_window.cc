/**
 * @file
 * Ablation: adaptive trimming vs fixed sliding windows. A natural
 * alternative to change-point detection is to simply bound the
 * history length; this bench shows why the paper's adaptive scheme is
 * preferable — short windows are exactly calibrated but noisy and
 * loose, long windows go stale across regimes.
 *
 * Usage: ablation_window [--seed=N]
 */

#include <future>
#include <iostream>

#include "bench_common.hh"
#include "core/bmbp_predictor.hh"
#include "sim/replay/replay_simulator.hh"
#include "util/table_printer.hh"

namespace {

using namespace qdel;

sim::EvaluationCell
runWindow(const trace::Trace &trace, size_t max_history, bool trimming,
          const bench::BenchOptions &options)
{
    core::BmbpConfig config;
    config.quantile = options.quantile;
    config.confidence = options.confidence;
    config.trimmingEnabled = trimming;
    config.maxHistory = max_history;
    core::BmbpPredictor predictor(config,
                                  &bench::sharedTable(options.quantile));
    sim::ReplaySimulator simulator(bench::replayConfig(options));
    auto result = simulator.run(trace, predictor).value();

    sim::EvaluationCell cell;
    cell.evaluated = result.evaluatedJobs;
    cell.correctFraction = result.correctFraction;
    cell.medianRatio = result.medianRatio;
    return cell;
}

} // namespace

int
main(int argc, char **argv)
{
    auto options = bench::parseOptions(argc, argv);
    // The window variants build BmbpPredictor directly (no factory
    // method), so they fan out on the raw pool. Build the shared
    // rare-event table up front; the workers only read it.
    bench::sharedTable(options.quantile);
    sim::ParallelEvaluator evaluator(options.threads);

    TablePrinter table(
        "Ablation: adaptive trimming vs fixed sliding windows "
        "(correct fraction; ratio = median actual/predicted).");
    table.setHeader({"Machine", "Queue", "adaptive", "window 59",
                     "window 1000", "unbounded", "ratio adaptive",
                     "ratio w59", "ratio unbounded"});

    const std::vector<std::pair<const char *, const char *>> queues = {
        {"datastar", "normal"},
        {"nersc", "regular"},
        {"sdsc", "low"},
        {"tacc2", "serial"}};
    std::vector<const workload::QueueProfile *> profiles;
    for (const auto &[site, queue] : queues)
        profiles.push_back(&workload::findProfile(site, queue));
    const auto traces =
        bench::synthesizeSuite(evaluator, profiles, options.seed);

    // Flat (queue x window-variant) fan-out, collected in submission
    // order so the table is identical for any worker count.
    const std::pair<size_t, bool> variants[] = {
        {0, true}, {59, false}, {1000, false}, {0, false}};
    std::vector<std::future<sim::EvaluationCell>> futures;
    for (const auto &trace : traces) {
        for (const auto &[max_history, trimming] : variants) {
            futures.push_back(evaluator.pool().submit(
                [trace, max_history = max_history, trimming = trimming,
                 &options] {
                    return runWindow(*trace, max_history, trimming,
                                     options);
                }));
        }
    }

    for (size_t r = 0; r < queues.size(); ++r) {
        auto adaptive = futures[r * 4 + 0].get();
        auto window59 = futures[r * 4 + 1].get();
        auto window1k = futures[r * 4 + 2].get();
        auto unbounded = futures[r * 4 + 3].get();
        const auto &[site, queue] = queues[r];

        auto fmt = [&](const sim::EvaluationCell &cell) {
            std::string text =
                TablePrinter::cell(cell.correctFraction, 3);
            return cell.correct(options.quantile)
                       ? text
                       : TablePrinter::flagged(text);
        };
        table.addRow({site, queue, fmt(adaptive), fmt(window59),
                      fmt(window1k), fmt(unbounded),
                      TablePrinter::cellSci(adaptive.medianRatio, 2),
                      TablePrinter::cellSci(window59.medianRatio, 2),
                      TablePrinter::cellSci(unbounded.medianRatio, 2)});
    }

    table.print(std::cout);
    std::cout
        << "\nThe 59-observation window (the trimmed minimum, held "
           "permanently) stays correct\nbut its bound is the sample "
           "maximum — loose and volatile. The adaptive scheme\nuses "
           "long histories while they remain relevant and only "
           "shortens them at\ndetected change points.\n";
    return 0;
}
