/**
 * @file
 * Ablation: what does BMBP's change-point detection buy? Runs BMBP
 * with and without trimming (plus the naive empirical percentile) over
 * the strongly nonstationary queues of the suite and reports
 * correctness and accuracy for each.
 *
 * Usage: ablation_trimming [--seed=N]
 */

#include <iostream>

#include "bench_common.hh"
#include "util/table_printer.hh"

int
main(int argc, char **argv)
{
    using namespace qdel;
    auto options = bench::parseOptions(argc, argv);
    auto predictor_options = bench::predictorOptions(options);
    auto replay = bench::replayConfig(options);
    sim::ParallelEvaluator evaluator(options.threads);

    const std::vector<std::pair<const char *, const char *>> queues = {
        {"datastar", "normal"}, {"datastar", "TGnormal"},
        {"lanl", "scavenger"},  {"nersc", "interactive"},
        {"sdsc", "low"},        {"tacc2", "serial"},
    };

    TablePrinter table(
        "Ablation: BMBP change-point trimming on strongly "
        "nonstationary queues (correct fraction / median ratio).");
    table.setHeader({"Machine", "Queue", "bmbp", "bmbp-notrim",
                     "percentile", "ratio bmbp", "ratio notrim"});

    std::vector<const workload::QueueProfile *> profiles;
    for (const auto &[site, queue] : queues)
        profiles.push_back(&workload::findProfile(site, queue));
    const auto traces =
        bench::synthesizeSuite(evaluator, profiles, options.seed);
    const auto grid = bench::evaluateMethodGrid(
        evaluator, traces, {"bmbp", "bmbp-notrim", "percentile"},
        predictor_options, replay);

    for (size_t r = 0; r < queues.size(); ++r) {
        const auto &with_trim = grid[r][0];
        const auto &without = grid[r][1];
        const auto &naive = grid[r][2];

        auto fmt = [&](const sim::EvaluationCell &cell) {
            std::string text =
                TablePrinter::cell(cell.correctFraction, 3);
            return cell.correct(options.quantile)
                       ? text
                       : TablePrinter::flagged(text);
        };
        table.addRow({queues[r].first, queues[r].second, fmt(with_trim),
                      fmt(without), fmt(naive),
                      TablePrinter::cellSci(with_trim.medianRatio, 2),
                      TablePrinter::cellSci(without.medianRatio, 2)});
    }

    table.print(std::cout);
    std::cout
        << "\nWithout trimming, BMBP's full history straddles regimes: "
           "correctness can survive\n(order statistics are robust) but "
           "accuracy degrades, and abrupt upward level\nshifts produce "
           "long runs of misses. The naive percentile has no confidence "
           "margin\nand undercovers whenever the distribution shifts "
           "upward.\n";
    return 0;
}
