/**
 * @file
 * Ablation: what does BMBP's change-point detection buy? Runs BMBP
 * with and without trimming (plus the naive empirical percentile) over
 * the strongly nonstationary queues of the suite and reports
 * correctness and accuracy for each.
 *
 * Usage: ablation_trimming [--seed=N]
 */

#include <iostream>

#include "bench_common.hh"
#include "util/table_printer.hh"

int
main(int argc, char **argv)
{
    using namespace qdel;
    auto options = bench::parseOptions(argc, argv);
    auto predictor_options = bench::predictorOptions(options);
    auto replay = bench::replayConfig(options);

    const std::pair<const char *, const char *> queues[] = {
        {"datastar", "normal"}, {"datastar", "TGnormal"},
        {"lanl", "scavenger"},  {"nersc", "interactive"},
        {"sdsc", "low"},        {"tacc2", "serial"},
    };

    TablePrinter table(
        "Ablation: BMBP change-point trimming on strongly "
        "nonstationary queues (correct fraction / median ratio).");
    table.setHeader({"Machine", "Queue", "bmbp", "bmbp-notrim",
                     "percentile", "ratio bmbp", "ratio notrim"});

    for (const auto &[site, queue] : queues) {
        auto trace = workload::synthesizeTrace(
            workload::findProfile(site, queue), options.seed);
        auto with_trim =
            sim::evaluateTrace(trace, "bmbp", predictor_options, replay);
        auto without =
            sim::evaluateTrace(trace, "bmbp-notrim", predictor_options,
                               replay);
        auto naive = sim::evaluateTrace(trace, "percentile",
                                        predictor_options, replay);

        auto fmt = [&](const sim::EvaluationCell &cell) {
            std::string text =
                TablePrinter::cell(cell.correctFraction, 3);
            return cell.correct(options.quantile)
                       ? text
                       : TablePrinter::flagged(text);
        };
        table.addRow({site, queue, fmt(with_trim), fmt(without),
                      fmt(naive),
                      TablePrinter::cellSci(with_trim.medianRatio, 2),
                      TablePrinter::cellSci(without.medianRatio, 2)});
    }

    table.print(std::cout);
    std::cout
        << "\nWithout trimming, BMBP's full history straddles regimes: "
           "correctness can survive\n(order statistics are robust) but "
           "accuracy degrades, and abrupt upward level\nshifts produce "
           "long runs of misses. The naive percentile has no confidence "
           "margin\nand undercovers whenever the distribution shifts "
           "upward.\n";
    return 0;
}
