/**
 * @file
 * Implementation of the shared bench plumbing.
 */

#include "bench_common.hh"

#include <iostream>
#include <map>

#include "util/table_printer.hh"

namespace qdel {
namespace bench {

BenchOptions
parseOptions(int argc, char **argv)
{
    CommandLine cli(argc, argv);
    BenchOptions options;
    options.seed = static_cast<uint64_t>(cli.getInt("seed", 1));
    options.quantile = cli.getDouble("quantile", 0.95);
    options.confidence = cli.getDouble("confidence", 0.95);
    options.epochSeconds = cli.getDouble("epoch", 300.0);
    options.trainFraction = cli.getDouble("train", 0.10);
    options.csvPath = cli.getString("csv", "");
    return options;
}

const core::RareEventTable &
sharedTable(double quantile)
{
    static std::map<long long, core::RareEventTable> tables;
    const long long key = static_cast<long long>(quantile * 1e9);
    auto it = tables.find(key);
    if (it == tables.end())
        it = tables.emplace(key, core::RareEventTable(quantile, 0.05)).first;
    return it->second;
}

core::PredictorOptions
predictorOptions(const BenchOptions &options)
{
    core::PredictorOptions predictor_options;
    predictor_options.quantile = options.quantile;
    predictor_options.confidence = options.confidence;
    predictor_options.rareEventTable = &sharedTable(options.quantile);
    return predictor_options;
}

sim::ReplayConfig
replayConfig(const BenchOptions &options)
{
    sim::ReplayConfig config;
    config.epochSeconds = options.epochSeconds;
    config.trainFraction = options.trainFraction;
    return config;
}

std::vector<std::string>
formatMethodCells(const std::vector<sim::EvaluationCell> &cells,
                  double quantile)
{
    // Find the most accurate correct method: highest median
    // actual/predicted ratio (tightest bound that still meets the
    // advertised quantile).
    int best = -1;
    double best_ratio = -1.0;
    for (size_t i = 0; i < cells.size(); ++i) {
        if (!cells[i].correct(quantile))
            continue;
        if (cells[i].medianRatio > best_ratio) {
            best_ratio = cells[i].medianRatio;
            best = static_cast<int>(i);
        }
    }

    std::vector<std::string> formatted;
    formatted.reserve(cells.size());
    for (size_t i = 0; i < cells.size(); ++i) {
        std::string cell = TablePrinter::cell(cells[i].correctFraction, 2);
        if (!cells[i].correct(quantile))
            cell = TablePrinter::flagged(cell);
        else if (static_cast<int>(i) == best)
            cell = TablePrinter::bold(cell);
        formatted.push_back(std::move(cell));
    }
    return formatted;
}

std::vector<std::string>
formatRatioCells(const std::vector<sim::EvaluationCell> &cells,
                 double quantile)
{
    std::vector<std::string> formatted;
    formatted.reserve(cells.size());
    for (const auto &cell : cells) {
        std::string text = TablePrinter::cellSci(cell.medianRatio, 2);
        if (!cell.correct(quantile))
            text = TablePrinter::flagged(text);
        formatted.push_back(std::move(text));
    }
    return formatted;
}

int
runProcTable(const std::string &method, const std::string &title,
             int argc, char **argv)
{
    auto options = parseOptions(argc, argv);
    auto predictor_options = predictorOptions(options);
    auto replay = replayConfig(options);

    TablePrinter table(title);
    table.setHeader({"Machine", "Queue", "1-4", "5-16", "17-64", "65+"});

    size_t evaluated_cells = 0;
    size_t correct_cells = 0;
    for (const auto *profile : workload::procTableProfiles()) {
        auto trace = workload::synthesizeTrace(*profile, options.seed);
        auto cells = sim::evaluateByProcRange(trace, method,
                                              predictor_options, replay);
        std::vector<std::string> row = {profile->site, profile->queue};
        bool any_cell = false;
        for (const auto &cell : cells) {
            if (cell.evaluated == 0) {
                row.push_back("-");
                continue;
            }
            any_cell = true;
            ++evaluated_cells;
            std::string text =
                TablePrinter::cell(cell.correctFraction, 2);
            if (!cell.correct(options.quantile))
                text = TablePrinter::flagged(text);
            else
                ++correct_cells;
            row.push_back(std::move(text));
        }
        // The paper omits queues with no populated cell entirely.
        if (any_cell)
            table.addRow(std::move(row));
    }

    table.print(std::cout);
    std::cout << "\nCorrect cells: " << correct_cells << "/"
              << evaluated_cells << " (method: " << method << ").\n";
    return 0;
}

} // namespace bench
} // namespace qdel
