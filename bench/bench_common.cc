/**
 * @file
 * Implementation of the shared bench plumbing.
 */

#include "bench_common.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <iostream>
#include <map>
#include <mutex>
#include <utility>

#include "obs/domain_metrics.hh"
#include "util/table_printer.hh"

namespace qdel {
namespace bench {

namespace {

// Written once in parseOptions, read by the atexit handler. The bench
// binaries have a dozen exit paths between them; a process-exit hook is
// the one place that covers them all without per-binary plumbing.
ObsFlags g_obs_flags;

void
writeObsAtExit()
{
    writeObsOutputs(g_obs_flags);
}

// Aggregate progress across every concurrent replay: the per-run
// callback fires often, so throttle to one line per second and report
// the process-wide job counter (the sharded obs counter already sums
// across workers — no extra bookkeeping here).
void
benchProgress(const sim::ReplayProgress &)
{
    static std::atomic<int64_t> last_print_nanos{0};
    const int64_t now = obs::nowNanos();
    int64_t last = last_print_nanos.load(std::memory_order_relaxed);
    if (now - last < 1'000'000'000)
        return;
    if (!last_print_nanos.compare_exchange_strong(
            last, now, std::memory_order_relaxed))
        return; // another worker just printed
    const uint64_t jobs = obs::replayMetrics().jobsProcessed.value();
    const double seconds = static_cast<double>(now) * 1e-9;
    const double rate =
        seconds > 0.0 ? static_cast<double>(jobs) / seconds : 0.0;
    // Not inform(): the user asked for these lines with --stats-every,
    // so they print regardless of --verbose. One fwrite per line keeps
    // concurrent workers from interleaving mid-line.
    char line[96];
    const int n = std::snprintf(
        line, sizeof(line), "progress: %llu jobs replayed | %.0f jobs/s\n",
        static_cast<unsigned long long>(jobs), rate);
    if (n > 0)
        std::fwrite(line, 1, static_cast<size_t>(n), stderr);
}

} // namespace

BenchOptions
parseOptions(int argc, char **argv)
{
    CommandLine cli(argc, argv, {"trace-cache"});
    if (reportCliErrors(cli))
        std::exit(1);
    BenchOptions options;
    options.seed = static_cast<uint64_t>(cliValue(cli.getInt("seed", 1)));
    options.quantile = cliValue(cli.getDouble("quantile", 0.95));
    options.confidence = cliValue(cli.getDouble("confidence", 0.95));
    options.epochSeconds = cliValue(cli.getDouble("epoch", 300.0));
    options.trainFraction = cliValue(cli.getDouble("train", 0.10));
    options.csvPath = cli.getString("csv", "");
    options.threads = cliValue(cli.getInt("threads", 0));
    options.traceCache = cli.has("trace-cache");
    options.traceCacheDir = cli.getString("trace-cache", "");
    options.tracePaths = cli.positional();
    if (!parseObsFlags(cli, &options.obs))
        std::exit(1);
    if (options.obs.any()) {
        static std::once_flag once;
        std::call_once(once, [&options] {
            g_obs_flags = options.obs;
            std::atexit(writeObsAtExit);
        });
    }

    // Fail fast with context rather than letting a bad combination
    // panic deep inside the evaluation engine.
    core::PredictorOptions predictor_options;
    predictor_options.quantile = options.quantile;
    predictor_options.confidence = options.confidence;
    if (auto valid = predictor_options.validate(); !valid.ok()) {
        std::fprintf(stderr, "error: %s\n", valid.error().str().c_str());
        std::exit(1);
    }
    sim::ReplayConfig replay;
    replay.epochSeconds = options.epochSeconds;
    replay.trainFraction = options.trainFraction;
    if (auto valid = replay.validate(); !valid.ok()) {
        std::fprintf(stderr, "error: %s\n", valid.error().str().c_str());
        std::exit(1);
    }
    return options;
}

trace::Trace
loadBenchTrace(const std::string &path, const BenchOptions &options)
{
    trace::TraceLoadOptions load_options;
    load_options.threads = options.threads;
    load_options.cache = options.traceCache;
    load_options.cacheDir = options.traceCacheDir;
    auto loaded = trace::loadTrace(path, load_options);
    if (!loaded.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     loaded.error().str().c_str());
        std::exit(1);
    }
    return std::move(loaded).value();
}

const core::RareEventTable &
sharedTable(double quantile)
{
    // Guarded so evaluation workers may call this directly; std::map
    // never invalidates references, so the returned table stays put.
    static std::mutex mutex;
    static std::map<long long, core::RareEventTable> tables;
    std::lock_guard<std::mutex> lock(mutex);
    const long long key = static_cast<long long>(quantile * 1e9);
    auto it = tables.find(key);
    if (it == tables.end())
        it = tables.emplace(key, core::RareEventTable(quantile, 0.05)).first;
    return it->second;
}

core::PredictorOptions
predictorOptions(const BenchOptions &options)
{
    core::PredictorOptions predictor_options;
    predictor_options.quantile = options.quantile;
    predictor_options.confidence = options.confidence;
    predictor_options.rareEventTable = &sharedTable(options.quantile);
    return predictor_options;
}

sim::ReplayConfig
replayConfig(const BenchOptions &options)
{
    sim::ReplayConfig config;
    config.epochSeconds = options.epochSeconds;
    config.trainFraction = options.trainFraction;
    if (options.obs.statsEvery > 0) {
        config.progressEveryJobs = options.obs.statsEvery;
        config.onProgress = benchProgress;
    }
    return config;
}

std::vector<std::string>
formatMethodCells(const std::vector<sim::EvaluationCell> &cells,
                  double quantile)
{
    // Find the most accurate correct method: highest median
    // actual/predicted ratio (tightest bound that still meets the
    // advertised quantile).
    int best = -1;
    double best_ratio = -1.0;
    for (size_t i = 0; i < cells.size(); ++i) {
        if (!cells[i].correct(quantile))
            continue;
        if (cells[i].medianRatio > best_ratio) {
            best_ratio = cells[i].medianRatio;
            best = static_cast<int>(i);
        }
    }

    std::vector<std::string> formatted;
    formatted.reserve(cells.size());
    for (size_t i = 0; i < cells.size(); ++i) {
        std::string cell = TablePrinter::cell(cells[i].correctFraction, 2);
        if (!cells[i].correct(quantile))
            cell = TablePrinter::flagged(cell);
        else if (static_cast<int>(i) == best)
            cell = TablePrinter::bold(cell);
        formatted.push_back(std::move(cell));
    }
    return formatted;
}

std::vector<std::string>
formatRatioCells(const std::vector<sim::EvaluationCell> &cells,
                 double quantile)
{
    std::vector<std::string> formatted;
    formatted.reserve(cells.size());
    for (const auto &cell : cells) {
        std::string text = TablePrinter::cellSci(cell.medianRatio, 2);
        if (!cell.correct(quantile))
            text = TablePrinter::flagged(text);
        formatted.push_back(std::move(text));
    }
    return formatted;
}

std::vector<std::shared_ptr<const trace::Trace>>
synthesizeSuite(sim::ParallelEvaluator &evaluator,
                const std::vector<const workload::QueueProfile *> &profiles,
                uint64_t seed)
{
    std::vector<std::future<std::shared_ptr<const trace::Trace>>> futures;
    futures.reserve(profiles.size());
    for (const auto *profile : profiles) {
        futures.push_back(evaluator.pool().submit([profile, seed] {
            return std::make_shared<const trace::Trace>(
                workload::synthesizeTrace(*profile, seed));
        }));
    }
    std::vector<std::shared_ptr<const trace::Trace>> traces;
    traces.reserve(profiles.size());
    for (auto &future : futures)
        traces.push_back(future.get());
    return traces;
}

std::vector<std::vector<sim::EvaluationCell>>
evaluateMethodGrid(sim::ParallelEvaluator &evaluator,
                   const std::vector<std::shared_ptr<const trace::Trace>>
                       &traces,
                   const std::vector<std::string> &methods,
                   const core::PredictorOptions &predictor_options,
                   const sim::ReplayConfig &replay)
{
    std::vector<sim::EvaluationJob> jobs;
    jobs.reserve(traces.size() * methods.size());
    for (const auto &trace : traces) {
        for (const auto &method : methods)
            jobs.push_back({trace, method, predictor_options, replay});
    }
    auto flat = evaluator.evaluateSuite(jobs);

    std::vector<std::vector<sim::EvaluationCell>> grid(traces.size());
    for (size_t i = 0; i < traces.size(); ++i) {
        grid[i].assign(flat.begin() +
                           static_cast<ptrdiff_t>(i * methods.size()),
                       flat.begin() +
                           static_cast<ptrdiff_t>((i + 1) * methods.size()));
    }
    return grid;
}

int
runProcTable(const std::string &method, const std::string &title,
             int argc, char **argv)
{
    auto options = parseOptions(argc, argv);
    auto predictor_options = predictorOptions(options);
    auto replay = replayConfig(options);
    sim::ParallelEvaluator evaluator(options.threads);

    TablePrinter table(title);
    table.setHeader({"Machine", "Queue", "1-4", "5-16", "17-64", "65+"});

    // Phase 1: synthesize every queue's trace concurrently. Phase 2:
    // fan the flat (queue x processor-range) cell grid across the
    // pool. Two flat fan-outs — no task ever waits on another task.
    const auto profiles = workload::procTableProfiles();
    const auto traces = synthesizeSuite(evaluator, profiles, options.seed);

    std::vector<std::future<std::vector<sim::EvaluationCell>>> rows;
    rows.reserve(profiles.size());
    for (const auto &trace : traces) {
        // One task per range inside evaluateByProcRange would also
        // work, but evaluateByProcRange blocks; submitting the
        // per-range tasks directly keeps every queue in flight at
        // once. Filtering happens inside the worker.
        const trace::ProcRange *ranges = trace::paperProcRanges();
        std::vector<std::future<sim::EvaluationCell>> cell_futures;
        for (int r = 0; r < trace::paperProcRangeCount(); ++r) {
            const trace::ProcRange range = ranges[r];
            cell_futures.push_back(evaluator.pool().submit(
                [trace, range, &method, &predictor_options, &replay] {
                    const trace::Trace sub =
                        trace->filterByProcRange(range);
                    if (sub.size() < 1000) {
                        sim::EvaluationCell cell;
                        cell.jobs = sub.size();
                        return cell;
                    }
                    return sim::evaluateTrace(sub, method,
                                              predictor_options, replay);
                }));
        }
        // Wrap the per-row futures in a deferred collector so the loop
        // below reads rows in order without blocking submission.
        rows.push_back(std::async(
            std::launch::deferred,
            [](std::vector<std::future<sim::EvaluationCell>> futures) {
                std::vector<sim::EvaluationCell> cells;
                cells.reserve(futures.size());
                for (auto &future : futures)
                    cells.push_back(future.get());
                return cells;
            },
            std::move(cell_futures)));
    }

    size_t evaluated_cells = 0;
    size_t correct_cells = 0;
    for (size_t p = 0; p < profiles.size(); ++p) {
        const auto *profile = profiles[p];
        auto cells = rows[p].get();
        std::vector<std::string> row = {profile->site, profile->queue};
        bool any_cell = false;
        for (const auto &cell : cells) {
            if (cell.evaluated == 0) {
                row.push_back("-");
                continue;
            }
            any_cell = true;
            ++evaluated_cells;
            std::string text =
                TablePrinter::cell(cell.correctFraction, 2);
            if (!cell.correct(options.quantile))
                text = TablePrinter::flagged(text);
            else
                ++correct_cells;
            row.push_back(std::move(text));
        }
        // The paper omits queues with no populated cell entirely.
        if (any_cell)
            table.addRow(std::move(row));
    }

    table.print(std::cout);
    std::cout << "\nCorrect cells: " << correct_cells << "/"
              << evaluated_cells << " (method: " << method << ").\n";
    return 0;
}

} // namespace bench
} // namespace qdel
