/**
 * @file
 * End-to-end trace ingestion throughput benchmarks (google-benchmark):
 * the numbers behind the zero-copy parser and the binary ".qtc" trace
 * cache.
 *
 * Three layers are measured on the same synthesized SWF/native traces
 * (the largest queue in the paper's catalog, ~hundreds of thousands of
 * jobs):
 *
 *  - text parse: the legacy getline/istream path vs the zero-copy
 *    mmap-backed buffer path (MB/s of source text, single-thread and
 *    with the chunk-parallel fan-out);
 *  - cache: ".qtc" write, and ".qtc" load vs re-parsing the text
 *    (the cache load processes the *binary* file, so compare the
 *    per-iteration times — both paths produce the identical Trace);
 *  - full replay: cached load + a complete BMBP replay evaluation,
 *    reported as jobs/second end to end.
 *
 * Every benchmark also reports a jobs_per_sec rate counter so runs on
 * different trace sizes stay comparable.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <benchmark/benchmark.h>

#include "sim/replay/evaluation.hh"
#include "trace/native_format.hh"
#include "trace/swf_format.hh"
#include "trace/trace_cache.hh"
#include "trace/trace_loader.hh"
#include "util/mapped_file.hh"
#include "workload/site_catalog.hh"
#include "workload/synthesizer.hh"

namespace {

using namespace qdel;

/** The catalog profile with the most jobs (the parse stress case). */
const workload::QueueProfile &
largestProfile()
{
    const workload::QueueProfile *best = nullptr;
    for (const auto &profile : workload::siteCatalog()) {
        if (!best || profile.jobCount > best->jobCount)
            best = &profile;
    }
    return *best;
}

/** A mid-sized profile (~tens of thousands of jobs) for the replay. */
const workload::QueueProfile &
replayProfile()
{
    const workload::QueueProfile *best = nullptr;
    for (const auto &profile : workload::siteCatalog()) {
        if (profile.jobCount > 40000)
            continue;
        if (!best || profile.jobCount > best->jobCount)
            best = &profile;
    }
    return *best;
}

/** Lazily materialized shared inputs (synthesis is the slow part). */
struct Corpus
{
    trace::Trace trace;        //!< The synthesized reference trace.
    std::string swfText;       //!< Its SWF serialization.
    std::string swfPath;       //!< ... on disk.
    std::string nativeText;    //!< Its native-format serialization.
    std::string cachePath;     //!< ".qtc" written from the trace.
    trace::Trace replayTrace;  //!< Smaller trace for the replay bench.
    std::string replayPath;    //!< ... on disk (native format).

    Corpus()
    {
        const auto dir = std::filesystem::temp_directory_path() /
                         "qdel_ingest_bench";
        std::filesystem::create_directories(dir);

        trace = workload::synthesizeTrace(largestProfile(), 1);
        {
            std::ostringstream swf;
            trace::writeSwfTrace(trace, swf);
            swfText = std::move(swf).str();
        }
        swfPath = (dir / "largest.swf").string();
        std::ofstream(swfPath, std::ios::binary) << swfText;
        {
            std::ostringstream native;
            trace::writeNativeTrace(trace, native);
            nativeText = std::move(native).str();
        }

        // The SWF writer drops sub-second precision, so cache exactly
        // what a text parse of the file yields.
        cachePath = trace::traceCachePath(swfPath, "");
        trace::IngestReport report;
        auto parsed = trace::loadSwfTrace(swfPath, {}, &report);
        (void)trace::writeTraceCache(
            cachePath, parsed.value(), report,
            trace::swfCacheOptions({}),
            FileStamp::of(swfPath).value());

        replayTrace = workload::synthesizeTrace(replayProfile(), 1);
        replayPath = (dir / "replay.txt").string();
        {
            std::ofstream out(replayPath, std::ios::binary);
            trace::writeNativeTrace(replayTrace, out);
        }
    }
};

const Corpus &
corpus()
{
    static Corpus c;
    return c;
}

void
reportRates(benchmark::State &state, size_t bytes, size_t jobs)
{
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * bytes));
    state.counters["jobs_per_sec"] = benchmark::Counter(
        static_cast<double>(state.iterations() * jobs),
        benchmark::Counter::kIsRate);
}

// ---------------------------------------------------------------------
// Text parse: getline reference vs zero-copy buffer scan.

void
BM_SwfParseGetline(benchmark::State &state)
{
    const Corpus &c = corpus();
    for (auto _ : state) {
        std::istringstream in(c.swfText);
        auto parsed = trace::parseSwfTrace(in, "bench.swf");
        benchmark::DoNotOptimize(parsed.value().size());
    }
    reportRates(state, c.swfText.size(), c.trace.size());
}
BENCHMARK(BM_SwfParseGetline)->Unit(benchmark::kMillisecond);

void
BM_SwfParseBuffer(benchmark::State &state)
{
    // Arg: parse threads (1 = sequential; 0 = auto/thread-pool).
    const Corpus &c = corpus();
    trace::SwfParseOptions options;
    options.threads = state.range(0);
    for (auto _ : state) {
        auto parsed =
            trace::parseSwfBuffer(c.swfText, "bench.swf", options);
        benchmark::DoNotOptimize(parsed.value().size());
    }
    reportRates(state, c.swfText.size(), c.trace.size());
}
BENCHMARK(BM_SwfParseBuffer)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

void
BM_SwfLoadMmap(benchmark::State &state)
{
    // The full file path: open + mmap + zero-copy parse.
    const Corpus &c = corpus();
    for (auto _ : state) {
        auto parsed = trace::loadSwfTrace(c.swfPath);
        benchmark::DoNotOptimize(parsed.value().size());
    }
    reportRates(state, c.swfText.size(), c.trace.size());
}
BENCHMARK(BM_SwfLoadMmap)->Unit(benchmark::kMillisecond);

void
BM_NativeParseGetline(benchmark::State &state)
{
    const Corpus &c = corpus();
    for (auto _ : state) {
        std::istringstream in(c.nativeText);
        auto parsed = trace::parseNativeTrace(in, "bench.txt");
        benchmark::DoNotOptimize(parsed.value().size());
    }
    reportRates(state, c.nativeText.size(), c.trace.size());
}
BENCHMARK(BM_NativeParseGetline)->Unit(benchmark::kMillisecond);

void
BM_NativeParseBuffer(benchmark::State &state)
{
    const Corpus &c = corpus();
    for (auto _ : state) {
        auto parsed =
            trace::parseNativeBuffer(c.nativeText, "bench.txt");
        benchmark::DoNotOptimize(parsed.value().size());
    }
    reportRates(state, c.nativeText.size(), c.trace.size());
}
BENCHMARK(BM_NativeParseBuffer)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// Binary cache: write once, load every run after.

void
BM_QtcWrite(benchmark::State &state)
{
    const Corpus &c = corpus();
    const auto stamp = FileStamp::of(c.swfPath).value();
    trace::IngestReport report;
    auto parsed = trace::loadSwfTrace(c.swfPath, {}, &report);
    const std::string path = c.cachePath + ".bench";
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            trace::writeTraceCache(path, parsed.value(), report,
                                   trace::swfCacheOptions({}), stamp)
                .ok());
    }
    std::filesystem::remove(path);
    reportRates(state, c.swfText.size(), c.trace.size());
}
BENCHMARK(BM_QtcWrite)->Unit(benchmark::kMillisecond);

void
BM_QtcLoad(benchmark::State &state)
{
    // Compare per-iteration time against BM_SwfLoadMmap: identical
    // Trace out, binary columns in (bytes processed here are the
    // cache file's, not the source text's).
    const Corpus &c = corpus();
    const auto stamp = FileStamp::of(c.swfPath).value();
    const size_t cache_bytes =
        static_cast<size_t>(std::filesystem::file_size(c.cachePath));
    for (auto _ : state) {
        auto cached = trace::readTraceCache(
            c.cachePath, trace::swfCacheOptions({}), stamp);
        if (cached.status != trace::CacheStatus::Hit) {
            state.SkipWithError("cache load missed");
            return;
        }
        benchmark::DoNotOptimize(cached.trace.size());
    }
    reportRates(state, cache_bytes, c.trace.size());
}
BENCHMARK(BM_QtcLoad)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// End to end: cached load + full BMBP replay evaluation.

void
BM_FullReplay(benchmark::State &state)
{
    const Corpus &c = corpus();
    trace::TraceLoadOptions load_options;
    load_options.cache = true;
    // Warm the cache outside the timed region (first run parses text).
    (void)trace::loadTrace(c.replayPath, load_options).ok();

    core::PredictorOptions predictor_options;
    sim::ReplayConfig replay;
    for (auto _ : state) {
        auto loaded = trace::loadTrace(c.replayPath, load_options);
        const auto cell = sim::evaluateTrace(loaded.value(), "bmbp",
                                             predictor_options, replay);
        benchmark::DoNotOptimize(cell.correctFraction);
    }
    state.counters["jobs_per_sec"] = benchmark::Counter(
        static_cast<double>(state.iterations() * c.replayTrace.size()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FullReplay)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
