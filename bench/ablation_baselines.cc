/**
 * @file
 * Baseline shoot-out: every prediction method in the library — BMBP,
 * the two log-normal variants, the Downey-style log-uniform point
 * estimate, and the naive empirical percentile — over a representative
 * slice of the suite. One table to see the paper's comparison plus
 * the related-work baselines at a glance.
 *
 * Usage: ablation_baselines [--seed=N]
 */

#include <iostream>

#include "bench_common.hh"
#include "util/table_printer.hh"

int
main(int argc, char **argv)
{
    using namespace qdel;
    auto options = bench::parseOptions(argc, argv);
    auto predictor_options = bench::predictorOptions(options);
    auto replay = bench::replayConfig(options);
    sim::ParallelEvaluator evaluator(options.threads);

    const std::vector<std::string> methods = {
        "bmbp", "lognormal", "lognormal-trim", "loguniform",
        "percentile"};
    const std::vector<std::pair<const char *, const char *>> queues = {
        {"datastar", "normal"}, {"lanl", "shared"}, {"llnl", "all"},
        {"nersc", "regular"},   {"sdsc", "express"}, {"tacc2", "normal"},
        {"paragon", "standby"}};

    TablePrinter table(
        "Baselines: correct-prediction fraction for every method "
        "(q=.95, C=.95; * = below advertised level).");
    table.setHeader({"Machine", "Queue", "bmbp", "logn", "logn-trim",
                     "loguniform", "percentile"});

    std::vector<const workload::QueueProfile *> profiles;
    for (const auto &[site, queue] : queues)
        profiles.push_back(&workload::findProfile(site, queue));
    const auto traces =
        bench::synthesizeSuite(evaluator, profiles, options.seed);
    const auto grid = bench::evaluateMethodGrid(
        evaluator, traces, methods, predictor_options, replay);

    for (size_t r = 0; r < queues.size(); ++r) {
        std::vector<std::string> row = {queues[r].first,
                                        queues[r].second};
        for (const auto &cell : grid[r]) {
            std::string text =
                TablePrinter::cell(cell.correctFraction, 2);
            row.push_back(cell.correct(options.quantile)
                              ? text
                              : TablePrinter::flagged(text));
        }
        table.addRow(std::move(row));
    }

    table.print(std::cout);
    std::cout
        << "\nOnly BMBP holds the advertised level on every row. The "
           "log-uniform (Downey-style)\nand percentile baselines are "
           "point estimates: sometimes near 0.95 by luck, but\nwith "
           "nothing guaranteeing it — the paper's case for quantified "
           "confidence bounds.\n";
    return 0;
}
