/**
 * @file
 * Ablation: sensitivity to the refit epoch. The paper refits every
 * five minutes (modeling periodic batch-queue dumps) and claims that
 * refitting per job (epoch 0) changes results only minimally. This
 * bench sweeps the epoch length over representative queues.
 *
 * Usage: ablation_epoch [--seed=N]
 */

#include <iostream>
#include <iterator>

#include "bench_common.hh"
#include "util/table_printer.hh"

int
main(int argc, char **argv)
{
    using namespace qdel;
    auto options = bench::parseOptions(argc, argv);
    auto predictor_options = bench::predictorOptions(options);
    sim::ParallelEvaluator evaluator(options.threads);

    const double epochs[] = {0.0, 300.0, 3600.0, 6.0 * 3600.0};
    const std::vector<std::pair<const char *, const char *>> queues = {
        {"datastar", "normal"},
        {"nersc", "debug"},
        {"tacc2", "serial"},
        {"lanl", "shared"},
    };

    TablePrinter table(
        "Ablation: BMBP correct fraction vs model-refit epoch "
        "(paper default: 300 s).");
    table.setHeader({"Machine", "Queue", "per-job", "300 s", "1 h",
                     "6 h"});

    std::vector<const workload::QueueProfile *> profiles;
    for (const auto &[site, queue] : queues)
        profiles.push_back(&workload::findProfile(site, queue));
    const auto traces =
        bench::synthesizeSuite(evaluator, profiles, options.seed);

    // Flat (queue x epoch) fan-out; each cell carries its own replay
    // configuration, so this is a raw EvaluationJob suite rather than
    // the shared-config method grid.
    std::vector<sim::EvaluationJob> jobs;
    for (const auto &trace : traces) {
        for (double epoch : epochs) {
            sim::ReplayConfig replay;
            replay.epochSeconds = epoch;
            replay.trainFraction = options.trainFraction;
            jobs.push_back({trace, "bmbp", predictor_options, replay});
        }
    }
    const auto cells = evaluator.evaluateSuite(jobs);

    for (size_t r = 0; r < queues.size(); ++r) {
        std::vector<std::string> row = {queues[r].first,
                                        queues[r].second};
        for (size_t e = 0; e < std::size(epochs); ++e) {
            const auto &cell = cells[r * std::size(epochs) + e];
            std::string text =
                TablePrinter::cell(cell.correctFraction, 3);
            row.push_back(cell.correct(options.quantile)
                              ? text
                              : TablePrinter::flagged(text));
        }
        table.addRow(std::move(row));
    }

    table.print(std::cout);
    std::cout << "\nAs the paper observes, the effect of the 300 s epoch "
                 "versus per-job refits is\nminimal; very long epochs "
                 "(hours) begin to lag fast-moving queues.\n";
    return 0;
}
