/**
 * @file
 * Ablation: sensitivity to the refit epoch. The paper refits every
 * five minutes (modeling periodic batch-queue dumps) and claims that
 * refitting per job (epoch 0) changes results only minimally. This
 * bench sweeps the epoch length over representative queues.
 *
 * Usage: ablation_epoch [--seed=N]
 */

#include <iostream>

#include "bench_common.hh"
#include "util/table_printer.hh"

int
main(int argc, char **argv)
{
    using namespace qdel;
    auto options = bench::parseOptions(argc, argv);
    auto predictor_options = bench::predictorOptions(options);

    const double epochs[] = {0.0, 300.0, 3600.0, 6.0 * 3600.0};
    const std::pair<const char *, const char *> queues[] = {
        {"datastar", "normal"},
        {"nersc", "debug"},
        {"tacc2", "serial"},
        {"lanl", "shared"},
    };

    TablePrinter table(
        "Ablation: BMBP correct fraction vs model-refit epoch "
        "(paper default: 300 s).");
    table.setHeader({"Machine", "Queue", "per-job", "300 s", "1 h",
                     "6 h"});

    for (const auto &[site, queue] : queues) {
        auto trace = workload::synthesizeTrace(
            workload::findProfile(site, queue), options.seed);
        std::vector<std::string> row = {site, queue};
        for (double epoch : epochs) {
            sim::ReplayConfig replay;
            replay.epochSeconds = epoch;
            replay.trainFraction = options.trainFraction;
            auto cell = sim::evaluateTrace(trace, "bmbp",
                                           predictor_options, replay);
            std::string text =
                TablePrinter::cell(cell.correctFraction, 3);
            row.push_back(cell.correct(options.quantile)
                              ? text
                              : TablePrinter::flagged(text));
        }
        table.addRow(std::move(row));
    }

    table.print(std::cout);
    std::cout << "\nAs the paper observes, the effect of the 300 s epoch "
                 "versus per-job refits is\nminimal; very long epochs "
                 "(hours) begin to lag fast-moving queues.\n";
    return 0;
}
