/**
 * @file
 * Serve-path throughput benchmarks (google-benchmark): the numbers
 * behind the online bound service.
 *
 * Three layers are measured against a populated in-process registry
 * (the same objects the daemon serves from — the socket is deliberately
 * excluded so the numbers isolate the prediction path from kernel
 * networking):
 *
 *  - bound queries: the lock-free snapshot-read path, single- and
 *    multi-threaded, with a queries_per_sec rate counter (the PR
 *    target is >= 1M queries/sec on one thread) and a sampled
 *    latency distribution reported as p50/p99 nanosecond counters;
 *  - event ingest: apply() through the serialized per-shard writer,
 *    events_per_sec, including the periodic refit + republish cost;
 *  - wire codec: encode -> frame -> unframe -> decode round-trips for
 *    the query and event message types.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "serve/bound_registry.hh"
#include "serve/wire.hh"

namespace {

using namespace qdel;

/** Keys the populated registry serves; queries cycle through them. */
constexpr size_t kMachines = 4;
constexpr size_t kQueues = 4;
constexpr int kProcChoices[] = {1, 8, 64, 512};

std::string
machineName(size_t i)
{
    return "machine" + std::to_string(i);
}

std::string
queueName(size_t i)
{
    return "queue" + std::to_string(i);
}

/**
 * A registry with every (machine, queue, bucket) combination trained
 * past finalization, built once and shared by all benchmarks (queries
 * never mutate it).
 */
serve::BoundRegistry &
populatedRegistry()
{
    static serve::BoundRegistry *registry = [] {
        serve::BoundRegistry::Options options;
        options.shards = 8;
        options.trainObservations = 100;
        options.refitEvery = 50;
        auto *r = new serve::BoundRegistry(options);
        uint64_t job_id = 0;
        for (size_t m = 0; m < kMachines; ++m) {
            for (size_t q = 0; q < kQueues; ++q) {
                for (int procs : kProcChoices) {
                    for (size_t i = 0; i < 150; ++i) {
                        serve::JobEvent submit;
                        submit.kind = serve::EventKind::Submit;
                        submit.jobId = ++job_id;
                        submit.time = 0.0;
                        submit.machine = machineName(m);
                        submit.queue = queueName(q);
                        submit.procs = procs;
                        r->apply(submit);
                        serve::JobEvent start = submit;
                        start.kind = serve::EventKind::Start;
                        start.time =
                            30.0 + static_cast<double>((i * 37) % 900);
                        r->apply(start);
                    }
                }
            }
        }
        return r;
    }();
    return *registry;
}

serve::BoundQuery
queryFor(size_t i)
{
    serve::BoundQuery query;
    query.machine = machineName(i % kMachines);
    query.queue = queueName((i / kMachines) % kQueues);
    query.procs = kProcChoices[(i / (kMachines * kQueues)) % 4];
    query.quantile = serve::kGridQuantiles[i % serve::kGridCount];
    return query;
}

/** Pure query throughput over the shared registry. */
void
BM_ServeQueryThroughput(benchmark::State &state)
{
    auto &registry = populatedRegistry();
    // Pre-built queries so string construction is outside the loop —
    // the daemon reuses decoded request objects the same way.
    std::vector<serve::BoundQuery> queries;
    for (size_t i = 0; i < 1024; ++i)
        queries.push_back(queryFor(i));
    size_t i = static_cast<size_t>(state.thread_index()) * 131;
    for (auto _ : state) {
        const serve::BoundAnswer answer =
            registry.query(queries[i++ & 1023]);
        benchmark::DoNotOptimize(answer.upper);
    }
    state.counters["queries_per_sec"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServeQueryThroughput)->Threads(1)->Threads(4)->Threads(8);

/**
 * Per-query latency distribution: every iteration is timed
 * individually (clock overhead is part of the measured cost, so the
 * rate here underestimates BM_ServeQueryThroughput — the p50/p99
 * counters are the point of this benchmark).
 */
void
BM_ServeQueryLatency(benchmark::State &state)
{
    auto &registry = populatedRegistry();
    std::vector<serve::BoundQuery> queries;
    for (size_t i = 0; i < 1024; ++i)
        queries.push_back(queryFor(i));
    std::vector<double> samples;
    samples.reserve(1 << 20);
    size_t i = 0;
    for (auto _ : state) {
        const auto begin = std::chrono::steady_clock::now();
        const serve::BoundAnswer answer =
            registry.query(queries[i++ & 1023]);
        const auto end = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(answer.upper);
        samples.push_back(
            std::chrono::duration<double, std::nano>(end - begin)
                .count());
    }
    std::sort(samples.begin(), samples.end());
    const auto at = [&](double p) {
        return samples.empty()
                   ? 0.0
                   : samples[std::min(
                         samples.size() - 1,
                         static_cast<size_t>(
                             p * static_cast<double>(samples.size())))];
    };
    state.counters["p50_ns"] = at(0.50);
    state.counters["p99_ns"] = at(0.99);
    state.counters["queries_per_sec"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServeQueryLatency);

/** Ingest throughput: WAL-less apply() through the shard writers. */
void
BM_ServeIngestThroughput(benchmark::State &state)
{
    serve::BoundRegistry::Options options;
    options.shards = 8;
    options.trainObservations = 100;
    options.refitEvery = 50;
    serve::BoundRegistry registry(options);
    uint64_t job_id = 0;
    for (auto _ : state) {
        serve::JobEvent submit;
        submit.kind = serve::EventKind::Submit;
        submit.jobId = ++job_id;
        submit.time = 0.0;
        submit.machine = "machine0";
        submit.queue = "queue0";
        submit.procs = 8;
        benchmark::DoNotOptimize(registry.apply(submit).applied);
        serve::JobEvent start = submit;
        start.kind = serve::EventKind::Start;
        start.time = 30.0 + static_cast<double>((job_id * 37) % 900);
        benchmark::DoNotOptimize(registry.apply(start).applied);
    }
    state.counters["events_per_sec"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * 2.0,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServeIngestThroughput);

/** Wire codec round-trip for the two hot message types. */
void
BM_ServeWireQueryRoundTrip(benchmark::State &state)
{
    const serve::BoundQuery query = queryFor(7);
    for (auto _ : state) {
        const std::string framed = serve::frameRequest(
            serve::Opcode::Query, serve::encodeQuery(query));
        std::string_view payload;
        size_t consumed = 0;
        benchmark::DoNotOptimize(
            serve::unframe(framed, &payload, &consumed).value());
        auto decoded = serve::decodeQuery(payload.substr(1));
        benchmark::DoNotOptimize(decoded.value().quantile);
    }
    state.counters["messages_per_sec"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServeWireQueryRoundTrip);

void
BM_ServeWireEventRoundTrip(benchmark::State &state)
{
    serve::JobEvent event;
    event.kind = serve::EventKind::Start;
    event.jobId = 42;
    event.time = 1234.5;
    event.machine = "machine0";
    event.queue = "queue0";
    event.procs = 64;
    for (auto _ : state) {
        const std::string framed = serve::frameRequest(
            serve::Opcode::Event, serve::encodeEvent(event));
        std::string_view payload;
        size_t consumed = 0;
        benchmark::DoNotOptimize(
            serve::unframe(framed, &payload, &consumed).value());
        auto decoded = serve::decodeEvent(payload.substr(1));
        benchmark::DoNotOptimize(decoded.value().time);
    }
    state.counters["messages_per_sec"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServeWireEventRoundTrip);

} // namespace

BENCHMARK_MAIN();
