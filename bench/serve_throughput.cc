/**
 * @file
 * Serve-path throughput benchmarks (google-benchmark): the numbers
 * behind the online bound service.
 *
 * Most rows measure a populated in-process registry (the same objects
 * the daemon serves from — the socket excluded so the numbers isolate
 * the prediction path from kernel networking):
 *
 *  - bound queries: the lock-free snapshot-read path, single- and
 *    multi-threaded, with a queries_per_sec rate counter (the PR
 *    target is >= 1M queries/sec on one thread) and a sampled
 *    latency distribution reported as p50/p99 nanosecond counters;
 *  - event ingest: apply() through the serialized per-shard writer,
 *    events_per_sec, including the periodic refit + republish cost;
 *  - wire codec: encode -> frame -> unframe -> decode round-trips for
 *    the query and event message types.
 *
 * Two rows then put the kernel back in, against a real BoundServer on
 * loopback: BM_ServeNetworkQps (pipelined clients through the epoll
 * reactor — the >= 1M queries/sec *network* target) and
 * BM_ServeOverloadHealthyLatency (a healthy client among stalled
 * neighbours, plus the shed path's refusal latency).
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "obs/metrics.hh"
#include "serve/bound_registry.hh"
#include "serve/server.hh"
#include "serve/service.hh"
#include "serve/wire.hh"

namespace {

using namespace qdel;

/** Keys the populated registry serves; queries cycle through them. */
constexpr size_t kMachines = 4;
constexpr size_t kQueues = 4;
constexpr int kProcChoices[] = {1, 8, 64, 512};

std::string
machineName(size_t i)
{
    return "machine" + std::to_string(i);
}

std::string
queueName(size_t i)
{
    return "queue" + std::to_string(i);
}

/**
 * A registry with every (machine, queue, bucket) combination trained
 * past finalization, built once and shared by all benchmarks (queries
 * never mutate it).
 */
serve::BoundRegistry &
populatedRegistry()
{
    static serve::BoundRegistry *registry = [] {
        serve::BoundRegistry::Options options;
        options.shards = 8;
        options.trainObservations = 100;
        options.refitEvery = 50;
        auto *r = new serve::BoundRegistry(options);
        uint64_t job_id = 0;
        for (size_t m = 0; m < kMachines; ++m) {
            for (size_t q = 0; q < kQueues; ++q) {
                for (int procs : kProcChoices) {
                    for (size_t i = 0; i < 150; ++i) {
                        serve::JobEvent submit;
                        submit.kind = serve::EventKind::Submit;
                        submit.jobId = ++job_id;
                        submit.time = 0.0;
                        submit.machine = machineName(m);
                        submit.queue = queueName(q);
                        submit.procs = procs;
                        r->apply(submit);
                        serve::JobEvent start = submit;
                        start.kind = serve::EventKind::Start;
                        start.time =
                            30.0 + static_cast<double>((i * 37) % 900);
                        r->apply(start);
                    }
                }
            }
        }
        return r;
    }();
    return *registry;
}

serve::BoundQuery
queryFor(size_t i)
{
    serve::BoundQuery query;
    query.machine = machineName(i % kMachines);
    query.queue = queueName((i / kMachines) % kQueues);
    query.procs = kProcChoices[(i / (kMachines * kQueues)) % 4];
    query.quantile = serve::kGridQuantiles[i % serve::kGridCount];
    return query;
}

/** Pure query throughput over the shared registry. */
void
BM_ServeQueryThroughput(benchmark::State &state)
{
    auto &registry = populatedRegistry();
    // Pre-built queries so string construction is outside the loop —
    // the daemon reuses decoded request objects the same way.
    std::vector<serve::BoundQuery> queries;
    for (size_t i = 0; i < 1024; ++i)
        queries.push_back(queryFor(i));
    size_t i = static_cast<size_t>(state.thread_index()) * 131;
    for (auto _ : state) {
        const serve::BoundAnswer answer =
            registry.query(queries[i++ & 1023]);
        benchmark::DoNotOptimize(answer.upper);
    }
    state.counters["queries_per_sec"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServeQueryThroughput)->Threads(1)->Threads(4)->Threads(8);

/**
 * Per-query latency distribution: every iteration is timed
 * individually (clock overhead is part of the measured cost, so the
 * rate here underestimates BM_ServeQueryThroughput — the p50/p99
 * counters are the point of this benchmark).
 */
void
BM_ServeQueryLatency(benchmark::State &state)
{
    auto &registry = populatedRegistry();
    std::vector<serve::BoundQuery> queries;
    for (size_t i = 0; i < 1024; ++i)
        queries.push_back(queryFor(i));
    std::vector<double> samples;
    samples.reserve(1 << 20);
    size_t i = 0;
    for (auto _ : state) {
        const auto begin = std::chrono::steady_clock::now();
        const serve::BoundAnswer answer =
            registry.query(queries[i++ & 1023]);
        const auto end = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(answer.upper);
        samples.push_back(
            std::chrono::duration<double, std::nano>(end - begin)
                .count());
    }
    std::sort(samples.begin(), samples.end());
    const auto at = [&](double p) {
        return samples.empty()
                   ? 0.0
                   : samples[std::min(
                         samples.size() - 1,
                         static_cast<size_t>(
                             p * static_cast<double>(samples.size())))];
    };
    state.counters["p50_ns"] = at(0.50);
    state.counters["p99_ns"] = at(0.99);
    state.counters["queries_per_sec"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServeQueryLatency);

/** Ingest throughput: WAL-less apply() through the shard writers. */
void
BM_ServeIngestThroughput(benchmark::State &state)
{
    serve::BoundRegistry::Options options;
    options.shards = 8;
    options.trainObservations = 100;
    options.refitEvery = 50;
    serve::BoundRegistry registry(options);
    uint64_t job_id = 0;
    for (auto _ : state) {
        serve::JobEvent submit;
        submit.kind = serve::EventKind::Submit;
        submit.jobId = ++job_id;
        submit.time = 0.0;
        submit.machine = "machine0";
        submit.queue = "queue0";
        submit.procs = 8;
        benchmark::DoNotOptimize(registry.apply(submit).applied);
        serve::JobEvent start = submit;
        start.kind = serve::EventKind::Start;
        start.time = 30.0 + static_cast<double>((job_id * 37) % 900);
        benchmark::DoNotOptimize(registry.apply(start).applied);
    }
    state.counters["events_per_sec"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * 2.0,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServeIngestThroughput);

/** Wire codec round-trip for the two hot message types. */
void
BM_ServeWireQueryRoundTrip(benchmark::State &state)
{
    const serve::BoundQuery query = queryFor(7);
    for (auto _ : state) {
        const std::string framed = serve::frameRequest(
            serve::Opcode::Query, serve::encodeQuery(query));
        std::string_view payload;
        size_t consumed = 0;
        benchmark::DoNotOptimize(
            serve::unframe(framed, &payload, &consumed).value());
        auto decoded = serve::decodeQuery(payload.substr(1));
        benchmark::DoNotOptimize(decoded.value().quantile);
    }
    state.counters["messages_per_sec"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServeWireQueryRoundTrip);

void
BM_ServeWireEventRoundTrip(benchmark::State &state)
{
    serve::JobEvent event;
    event.kind = serve::EventKind::Start;
    event.jobId = 42;
    event.time = 1234.5;
    event.machine = "machine0";
    event.queue = "queue0";
    event.procs = 64;
    for (auto _ : state) {
        const std::string framed = serve::frameRequest(
            serve::Opcode::Event, serve::encodeEvent(event));
        std::string_view payload;
        size_t consumed = 0;
        benchmark::DoNotOptimize(
            serve::unframe(framed, &payload, &consumed).value());
        auto decoded = serve::decodeEvent(payload.substr(1));
        benchmark::DoNotOptimize(decoded.value().time);
    }
    state.counters["messages_per_sec"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServeWireEventRoundTrip);

// --- overload scenario: N stalled clients + a healthy client --------

int
connectLoopback(int port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    struct sockaddr_in address;
    std::memset(&address, 0, sizeof(address));
    address.sin_family = AF_INET;
    address.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
    if (::connect(fd, reinterpret_cast<struct sockaddr *>(&address),
                  sizeof(address)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
sendAll(int fd, std::string_view bytes)
{
    size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t n = ::send(fd, bytes.data() + sent,
                                 bytes.size() - sent, MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        sent += static_cast<size_t>(n);
    }
    return true;
}

/** Read one response frame; false on EOF/error. */
bool
readFrame(int fd, std::string *payload)
{
    std::string header;
    char chunk[4096];
    while (header.size() < 4) {
        const ssize_t n =
            ::recv(fd, chunk, 4 - header.size(), 0);
        if (n <= 0)
            return false;
        header.append(chunk, static_cast<size_t>(n));
    }
    uint32_t length = 0;
    std::memcpy(&length, header.data(), 4);
    if (length > serve::kMaxFrameBytes)
        return false;
    payload->clear();
    while (payload->size() < length) {
        const size_t want =
            std::min(static_cast<size_t>(length) - payload->size(),
                     sizeof(chunk));
        const ssize_t n = ::recv(fd, chunk, want, 0);
        if (n <= 0)
            return false;
        payload->append(chunk, static_cast<size_t>(n));
    }
    return true;
}

/**
 * Shared loopback server for the network-throughput rows: a trained
 * ephemeral service behind a real BoundServer, built once and reused
 * by every thread/arg variant (leaked — process-lifetime statics).
 * Observability is enabled so the server-side batch-size histogram
 * (qdel_serve_batch_frames) can be reported alongside the rates.
 */
serve::BoundServer &
networkServer()
{
    static serve::BoundServer *server = [] {
        obs::setEnabled(true);
        serve::ServiceConfig config;
        config.registry.shards = 8;
        config.registry.trainObservations = 100;
        config.registry.refitEvery = 50;
        auto opened = serve::BoundService::open(config);
        auto *service =
            new std::unique_ptr<serve::BoundService>(
                std::move(opened).value());
        uint64_t job_id = 0;
        for (size_t m = 0; m < kMachines; ++m) {
            for (size_t q = 0; q < kQueues; ++q) {
                for (int procs : kProcChoices) {
                    for (size_t i = 0; i < 150; ++i) {
                        serve::JobEvent submit;
                        submit.kind = serve::EventKind::Submit;
                        submit.jobId = ++job_id;
                        submit.time = 0.0;
                        submit.machine = machineName(m);
                        submit.queue = queueName(q);
                        submit.procs = procs;
                        (void)(*service)->ingest(submit);
                        serve::JobEvent start = submit;
                        start.kind = serve::EventKind::Start;
                        start.time =
                            30.0 + static_cast<double>((i * 37) % 900);
                        (void)(*service)->ingest(start);
                    }
                }
            }
        }
        serve::ServerOptions options;
        options.maxConnections = 64;
        auto started =
            serve::BoundServer::start(**service, options);
        return started.value().release();
    }();
    return *server;
}

/** (sum, count) of the server's batch-size histogram right now. */
std::pair<double, uint64_t>
batchFramesHistogram()
{
    for (const auto &histogram :
         obs::registry().snapshot().histograms) {
        if (histogram.name == "qdel_serve_batch_frames")
            return {histogram.sum, histogram.count};
    }
    return {0.0, 0};
}

/**
 * The headline network row: pipelined clients against a real
 * BoundServer over loopback. Each thread keeps one connection and
 * stop-and-waits batches of state.range(0) pre-encoded query frames —
 * the server drains the whole batch off one epoll wakeup, answers
 * through the batched registry path, and flushes one response burst,
 * so the syscall cost amortizes across the batch. queries_per_sec
 * aggregates across threads; rtt_p50/p99/p999_us are per-batch
 * round-trip latencies as the client observes them (divide by the
 * batch depth for amortized per-query cost); server_batch_mean is the
 * server-side frames-per-wakeup histogram mean over the run.
 */
void
runNetworkQps(benchmark::State &state, bool traced)
{
    const size_t depth = static_cast<size_t>(state.range(0));
    auto &server = networkServer();
    const int fd = connectLoopback(server.port());
    if (fd < 0) {
        state.SkipWithError("connect failed");
        return;
    }
    std::string batch;
    for (size_t i = 0; i < depth; ++i) {
        serve::BoundQuery query = queryFor(
            i * 7 + static_cast<size_t>(state.thread_index()));
        // The traced variant pays the v3 tail decode plus the
        // per-query trace instant into the event ring — the cost the
        // tracing budget (bench_compare --alias gate in CI) bounds.
        if (traced)
            query.traceId =
                (static_cast<uint64_t>(state.thread_index() + 1) << 32) |
                (i + 1);
        batch += serve::frameRequest(serve::Opcode::Query,
                                     serve::encodeQuery(query));
    }

    const auto histogram_before = batchFramesHistogram();
    std::vector<double> rtts;
    rtts.reserve(1 << 16);
    std::string buffer;
    buffer.reserve(depth * 128);
    char chunk[64 * 1024];
    bool failed = false;
    for (auto _ : state) {
        const auto begin = std::chrono::steady_clock::now();
        if (!sendAll(fd, batch)) {
            failed = true;
            break;
        }
        buffer.clear();
        size_t got = 0;
        size_t off = 0;
        while (got < depth && !failed) {
            while (buffer.size() - off >= 4) {
                uint32_t length = 0;
                std::memcpy(&length, buffer.data() + off, 4);
                if (length > serve::kMaxFrameBytes) {
                    failed = true;
                    break;
                }
                if (buffer.size() - off < 4 + length)
                    break;
                if (buffer[off + 4] !=
                    static_cast<char>(serve::Status::Ok)) {
                    failed = true;
                    break;
                }
                off += 4 + length;
                ++got;
            }
            if (failed || got >= depth)
                break;
            const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
            if (n <= 0) {
                failed = true;
                break;
            }
            buffer.append(chunk, static_cast<size_t>(n));
        }
        if (failed)
            break;
        const auto end = std::chrono::steady_clock::now();
        rtts.push_back(
            std::chrono::duration<double, std::micro>(end - begin)
                .count());
    }
    ::close(fd);
    if (failed) {
        state.SkipWithError("pipelined round trip failed");
        return;
    }
    const auto histogram_after = batchFramesHistogram();

    std::sort(rtts.begin(), rtts.end());
    const auto at = [&](double p) {
        return rtts.empty()
                   ? 0.0
                   : rtts[std::min(
                         rtts.size() - 1,
                         static_cast<size_t>(
                             p * static_cast<double>(rtts.size())))];
    };
    state.counters["rtt_p50_us"] =
        benchmark::Counter(at(0.50), benchmark::Counter::kAvgThreads);
    state.counters["rtt_p99_us"] =
        benchmark::Counter(at(0.99), benchmark::Counter::kAvgThreads);
    state.counters["rtt_p999_us"] =
        benchmark::Counter(at(0.999), benchmark::Counter::kAvgThreads);
    state.counters["batch_depth"] = benchmark::Counter(
        static_cast<double>(depth), benchmark::Counter::kAvgThreads);
    const uint64_t batches =
        histogram_after.second - histogram_before.second;
    state.counters["server_batch_mean"] = benchmark::Counter(
        batches == 0 ? 0.0
                     : (histogram_after.first - histogram_before.first) /
                           static_cast<double>(batches),
        benchmark::Counter::kAvgThreads);
    state.counters["queries_per_sec"] = benchmark::Counter(
        static_cast<double>(state.iterations()) *
            static_cast<double>(depth),
        benchmark::Counter::kIsRate);
}
void
BM_ServeNetworkQps(benchmark::State &state)
{
    runNetworkQps(state, false);
}
BENCHMARK(BM_ServeNetworkQps)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->UseRealTime();
BENCHMARK(BM_ServeNetworkQps)->Arg(64)->Threads(4)->UseRealTime();

/** Same batches, every query carrying a v3 trace id; compare against
 *  BM_ServeNetworkQps via bench_compare --alias to bound the tracing
 *  overhead. */
void
BM_ServeNetworkQpsTraced(benchmark::State &state)
{
    runNetworkQps(state, true);
}
BENCHMARK(BM_ServeNetworkQpsTraced)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->UseRealTime();

/**
 * The overload row: a real BoundServer over loopback with
 * state.range(0) slow-loris connections parked in slots (each sent a
 * partial frame header and went silent), while one healthy client
 * measures query round-trip latency through the same server. Deadlines
 * are set long so the stalled connections keep their slots for the
 * whole measurement — the bench isolates "does a stalled neighbour
 * slow a healthy client", not the reaper. A final pass measures shed
 * latency: connect + ping against a full server, timed until the
 * Status::Shed frame lands (the number the runbook quotes).
 */
void
BM_ServeOverloadHealthyLatency(benchmark::State &state)
{
    const size_t stalled = static_cast<size_t>(state.range(0));
    serve::ServiceConfig config;
    config.registry.shards = 8;
    config.registry.trainObservations = 100;
    config.registry.refitEvery = 50;
    auto opened = serve::BoundService::open(config);
    if (!opened.ok()) {
        state.SkipWithError("service open failed");
        return;
    }
    auto service = std::move(opened).value();
    // Train one key so the measured query answers from a snapshot.
    uint64_t job_id = 0;
    for (size_t i = 0; i < 150; ++i) {
        serve::JobEvent submit;
        submit.kind = serve::EventKind::Submit;
        submit.jobId = ++job_id;
        submit.time = 0.0;
        submit.machine = "machine0";
        submit.queue = "queue0";
        submit.procs = 8;
        (void)service->ingest(submit);
        serve::JobEvent start = submit;
        start.kind = serve::EventKind::Start;
        start.time = 30.0 + static_cast<double>((i * 37) % 900);
        (void)service->ingest(start);
    }

    serve::ServerOptions options;
    options.maxConnections = stalled + 1;
    options.ioTimeoutMs = 120000;   // park the stallers, not the bench
    options.idleTimeoutMs = 120000;
    auto started = serve::BoundServer::start(*service, options);
    if (!started.ok()) {
        state.SkipWithError("server start failed");
        return;
    }
    auto server = std::move(started).value();

    std::vector<int> stalledFds;
    for (size_t i = 0; i < stalled; ++i) {
        const int fd = connectLoopback(server->port());
        if (fd < 0) {
            state.SkipWithError("stalled connect failed");
            server->stop();
            return;
        }
        sendAll(fd, std::string_view("\x09\x00", 2));  // half a header
        stalledFds.push_back(fd);
    }

    const int healthy = connectLoopback(server->port());
    if (healthy < 0) {
        state.SkipWithError("healthy connect failed");
        server->stop();
        return;
    }
    serve::BoundQuery query;
    query.machine = "machine0";
    query.queue = "queue0";
    query.procs = 8;
    query.quantile = 0.95;
    const std::string request = serve::frameRequest(
        serve::Opcode::Query, serve::encodeQuery(query));

    std::vector<double> samples;
    samples.reserve(1 << 16);
    std::string payload;
    bool failed = false;
    for (auto _ : state) {
        const auto begin = std::chrono::steady_clock::now();
        if (!sendAll(healthy, request) ||
            !readFrame(healthy, &payload)) {
            failed = true;
            break;
        }
        const auto end = std::chrono::steady_clock::now();
        samples.push_back(
            std::chrono::duration<double, std::micro>(end - begin)
                .count());
    }
    if (failed)
        state.SkipWithError("healthy round trip failed");

    // Shed latency: every slot is now occupied (stallers + healthy),
    // so a fresh connection is answered by the shed path and closed.
    std::vector<double> shed_samples;
    for (size_t i = 0; i < 64 && !failed; ++i) {
        const auto begin = std::chrono::steady_clock::now();
        const int fd = connectLoopback(server->port());
        if (fd < 0)
            break;
        sendAll(fd, serve::frameRequest(serve::Opcode::Ping, ""));
        std::string shed_payload;
        const bool answered = readFrame(fd, &shed_payload);
        const auto end = std::chrono::steady_clock::now();
        ::close(fd);
        if (answered && !shed_payload.empty() &&
            static_cast<uint8_t>(shed_payload[0]) ==
                static_cast<uint8_t>(serve::Status::Shed)) {
            shed_samples.push_back(
                std::chrono::duration<double, std::micro>(end - begin)
                    .count());
        }
    }

    ::close(healthy);
    for (int fd : stalledFds)
        ::close(fd);
    server->stop();

    const auto at = [](std::vector<double> &values, double p) {
        if (values.empty())
            return 0.0;
        std::sort(values.begin(), values.end());
        return values[std::min(
            values.size() - 1,
            static_cast<size_t>(p *
                                static_cast<double>(values.size())))];
    };
    state.counters["healthy_p50_us"] = at(samples, 0.50);
    state.counters["healthy_p99_us"] = at(samples, 0.99);
    state.counters["shed_p50_us"] = at(shed_samples, 0.50);
    state.counters["shed_p99_us"] = at(shed_samples, 0.99);
    state.counters["queries_per_sec"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServeOverloadHealthyLatency)
    ->Arg(4)
    ->Arg(32)
    ->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
