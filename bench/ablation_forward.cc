/**
 * @file
 * Related-work comparison (paper Section 2): BMBP's statistical bounds
 * versus the Smith-Foster-Taylor scheduler-simulation approach, which
 * predicts each job's start time by simulating the batch scheduler
 * forward using user runtime estimates.
 *
 * The machine simulator generates ground truth (so the
 * scheduler-simulation approach gets *exactly* the knowledge it
 * assumes: the true policy and the machine state); the comparison
 * shows what the paper argues — when runtime estimates are loose, the
 * deterministic predictions scatter and carry no confidence statement,
 * while BMBP's bounds hold at their advertised rate regardless.
 *
 * Usage: ablation_forward [--seed=N]
 */

#include <algorithm>
#include <cmath>
#include <future>
#include <iostream>
#include <vector>

#include "bench_common.hh"
#include "sim/batch/batch_simulator.hh"
#include "sim/batch/job_generator.hh"
#include "util/table_printer.hh"

namespace {

using namespace qdel;

/**
 * One row of the comparison: generate the workload at the given
 * runtime-estimate quality, run the machine with arrival-time
 * forecasts, score the scheduler-simulation point predictions, and
 * replay BMBP on the same waits. Self-contained (own RNG, own
 * machine), so rows run concurrently on the evaluation pool.
 */
std::vector<std::string>
forwardRow(double overestimate, const bench::BenchOptions &options)
{
    stats::Rng rng(options.seed + 100);
    sim::JobGeneratorConfig generator;
    generator.startTime = 0.0;
    generator.durationSeconds = 360.0 * 86400.0;
    sim::QueueSpec spec;
    spec.name = "normal";
    spec.jobsPerDay = 12.0;  // ~85% utilization: queuing is common
    spec.maxProcs = 64;
    spec.runMedianSeconds = 2.0 * 3600.0;
    spec.runLogSigma = 1.6;
    spec.maxRunSeconds = 24.0 * 3600.0;
    spec.overestimateMax = overestimate;
    generator.queues = {spec};
    auto jobs = sim::generateJobs(generator, rng);

    sim::BatchSimConfig config;
    config.totalProcs = 96;
    config.policy = "easy-backfill";
    config.forecastAtArrival = true;
    sim::BatchSimulator machine(config);
    auto done = machine.run(jobs);

    // Scheduler-simulation scoring: a point forecast is "correct"
    // under the paper's criterion when it is >= the realized start
    // (i.e. used as a bound); also report its median absolute
    // error as the natural point-estimate metric.
    // Only jobs that actually queued are informative: instant
    // starts are forecast trivially by both approaches.
    size_t covered = 0;
    std::vector<double> abs_errors;
    for (const auto &job : done) {
        if (job.waitSeconds() < 60.0)
            continue;
        auto it = machine.forecasts().find(job.id);
        if (it == machine.forecasts().end())
            continue;
        covered += it->second >= job.startTime - 1e-6;
        abs_errors.push_back(std::fabs(it->second - job.startTime));
    }
    std::sort(abs_errors.begin(), abs_errors.end());
    const double median_error =
        abs_errors.empty() ? 0.0 : abs_errors[abs_errors.size() / 2];
    const double forward_correct =
        abs_errors.empty() ? 0.0
                           : static_cast<double>(covered) /
                                 static_cast<double>(abs_errors.size());

    // BMBP on the same waits.
    auto trace = sim::BatchSimulator::toTrace(done, "fwd", "machine");
    auto cell = sim::evaluateTrace(trace, "bmbp",
                                   bench::predictorOptions(options),
                                   bench::replayConfig(options));

    return {TablePrinter::cell(overestimate, 1),
            TablePrinter::cell(static_cast<long long>(abs_errors.size())),
            TablePrinter::cell(forward_correct, 3),
            TablePrinter::cell(median_error, 0),
            TablePrinter::cell(cell.correctFraction, 3),
            TablePrinter::cellSci(cell.medianRatio, 2)};
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace qdel;
    auto options = bench::parseOptions(argc, argv);

    TablePrinter table(
        "Related work: scheduler-simulation point predictions vs BMBP "
        "bounds, by runtime-estimate quality.");
    table.setHeader({"estimate error (max x)", "queued jobs",
                     "fwd correct", "fwd median |err| (s)",
                     "bmbp correct", "bmbp med ratio"});

    // Each estimate-quality row is an independent end-to-end
    // experiment; run the four rows concurrently and collect them in
    // sweep order. Shared table first: the workers only read it.
    bench::sharedTable(options.quantile);
    sim::ParallelEvaluator evaluator(options.threads);
    std::vector<std::future<std::vector<std::string>>> rows;
    for (double overestimate : {1.0, 2.0, 5.0, 10.0}) {
        rows.push_back(evaluator.pool().submit([overestimate, &options] {
            return forwardRow(overestimate, options);
        }));
    }
    for (auto &row : rows)
        table.addRow(row.get());

    table.print(std::cout);
    std::cout
        << "\nWith perfect estimates (1.0x) the scheduler simulation is "
           "exact. As estimates\nloosen to realistic levels (5-10x "
           "over-estimation is common in production logs),\nits "
           "start-time forecasts inflate into loose ad-hoc bounds with "
           "no stated\nconfidence — and it still requires knowing the "
           "exact scheduling policy, which the\npaper notes sites do "
           "not publish. BMBP needs neither and holds its advertised\n"
           "confidence in every row.\n";
    return 0;
}
