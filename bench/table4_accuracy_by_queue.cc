/**
 * @file
 * Reproduction of paper Table 4: median ratio of actual wait time over
 * predicted wait time per queue for the three methods. Small ratios
 * mean conservative (loose) bounds; the best correct method per row is
 * the one with the highest ratio.
 *
 * Usage: table4_accuracy_by_queue [--seed=N] [--quantile=Q] ...
 */

#include <iostream>

#include "bench_common.hh"
#include "util/table_printer.hh"

int
main(int argc, char **argv)
{
    using namespace qdel;
    auto options = bench::parseOptions(argc, argv);
    auto predictor_options = bench::predictorOptions(options);
    auto replay = bench::replayConfig(options);
    sim::ParallelEvaluator evaluator(options.threads);

    TablePrinter table(
        "Table 4. Median ratio of actual over predicted wait times "
        "(asterisk = method incorrect on that queue).");
    table.setHeader({"Machine", "Queue", "BMBP", "logn NoTrim",
                     "logn Trim"});

    size_t bmbp_best = 0, notrim_best = 0, trim_best = 0;
    const auto rows = workload::table3Profiles();
    const auto traces =
        bench::synthesizeSuite(evaluator, rows, options.seed);
    const auto grid = bench::evaluateMethodGrid(
        evaluator, traces, {"bmbp", "lognormal", "lognormal-trim"},
        predictor_options, replay);
    for (size_t r = 0; r < rows.size(); ++r) {
        const auto *profile = rows[r];
        const std::vector<sim::EvaluationCell> &cells = grid[r];

        // Count which correct method is tightest (paper boldface).
        int best = -1;
        double best_ratio = -1.0;
        for (size_t i = 0; i < cells.size(); ++i) {
            if (cells[i].correct(options.quantile) &&
                cells[i].medianRatio > best_ratio) {
                best_ratio = cells[i].medianRatio;
                best = static_cast<int>(i);
            }
        }
        bmbp_best += best == 0;
        notrim_best += best == 1;
        trim_best += best == 2;

        auto formatted = bench::formatRatioCells(cells, options.quantile);
        table.addRow({profile->site, profile->queue, formatted[0],
                      formatted[1], formatted[2]});
    }

    table.print(std::cout);
    std::cout << "\nTightest correct method per queue: BMBP " << bmbp_best
              << ", logn NoTrim " << notrim_best << ", logn Trim "
              << trim_best
              << ".\nThe paper reports BMBP as the most accurate correct "
                 "method on a large majority of queues.\n";
    return 0;
}
