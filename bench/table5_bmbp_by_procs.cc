/**
 * @file
 * Reproduction of paper Table 5: BMBP fraction of correct predictions
 * per queue subdivided by requested processor count (ranges 1-4, 5-16,
 * 17-64, 65+ suggested by TACC); cells with fewer than 1000 jobs are
 * dropped ("-"), as in the paper.
 *
 * Usage: table5_bmbp_by_procs [--seed=N] [--quantile=Q] ...
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    return qdel::bench::runProcTable(
        "bmbp",
        "Table 5. BMBP correct-prediction fraction by queue and "
        "processor range (q=.95, C=.95).",
        argc, argv);
}
