/**
 * @file
 * Shared plumbing for the paper-reproduction bench binaries: common
 * command-line options, the shared rare-event table, suite generation,
 * and paper-style cell formatting (asterisks for incorrect methods,
 * brackets for the most accurate correct method).
 */

#ifndef QDEL_BENCH_BENCH_COMMON_HH
#define QDEL_BENCH_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "core/predictor_factory.hh"
#include "core/rare_event.hh"
#include "sim/replay/evaluation.hh"
#include "sim/replay/parallel_evaluation.hh"
#include "trace/trace_loader.hh"
#include "util/cli.hh"
#include "util/obs_cli.hh"
#include "workload/site_catalog.hh"
#include "workload/synthesizer.hh"

namespace qdel {
namespace bench {

/** Options shared by every reproduction binary. */
struct BenchOptions
{
    uint64_t seed = 1;          //!< Suite seed (see EXPERIMENTS.md).
    double quantile = 0.95;     //!< Quantile of interest.
    double confidence = 0.95;   //!< Confidence level.
    double epochSeconds = 300;  //!< Model refit period (paper: 5 min).
    double trainFraction = 0.1; //!< Warm-up fraction (paper: 10%).
    std::string csvPath;        //!< Optional machine-readable dump.

    /** --trace-cache[=DIR]: maintain the binary ".qtc" trace cache. */
    bool traceCache = false;
    /** Cache directory; empty = ".qtc" sidecar next to each source. */
    std::string traceCacheDir;
    /** Positional arguments: trace files to evaluate, when given. */
    std::vector<std::string> tracePaths;

    /**
     * Evaluation worker threads: --threads=N, else the QDEL_THREADS
     * environment variable, else hardware concurrency. Table output is
     * byte-identical for every value (results are collected in
     * submission order); 1 recovers the sequential behaviour.
     */
    long long threads = 0;

    /**
     * --metrics-out / --events-out / --stats-every: any of them turns
     * the observability subsystem on. The output files are written by
     * an atexit handler, so individual bench binaries need no exit-path
     * plumbing; --stats-every prints an aggregate progress line across
     * all concurrent replays (at most once a second).
     */
    ObsFlags obs;
};

/** Parse the shared options from the command line. */
BenchOptions parseOptions(int argc, char **argv);

/**
 * Load a trace file through the cache settings in @p options (strict
 * mode, zero-copy mmap parse). Errors print to stderr and exit — this
 * is bench front-end plumbing.
 */
trace::Trace loadBenchTrace(const std::string &path,
                            const BenchOptions &options);

/**
 * Process-wide rare-event table for the configured quantile.
 * Thread-safe: concurrent callers serialize on a mutex and see the
 * same (immutable, stably addressed) table instance.
 */
const core::RareEventTable &sharedTable(double quantile = 0.95);

/** Predictor options wired to the shared table. */
core::PredictorOptions predictorOptions(const BenchOptions &options);

/** Replay configuration from the shared options. */
sim::ReplayConfig replayConfig(const BenchOptions &options);

/**
 * Format the three method cells of a Table 3/5/6/7-style row:
 * fractions printed to two decimals, an asterisk on cells that miss
 * the advertised quantile (the paper's criterion after rounding), and
 * brackets on the most accurate correct method (the paper's boldface,
 * chosen by the median actual/predicted ratio — see EXPERIMENTS.md on
 * the paper's Table 4 caption ambiguity).
 */
std::vector<std::string>
formatMethodCells(const std::vector<sim::EvaluationCell> &cells,
                  double quantile);

/** Paper Table 4 style: scientific-notation ratios with asterisks. */
std::vector<std::string>
formatRatioCells(const std::vector<sim::EvaluationCell> &cells,
                 double quantile);

/**
 * Synthesize one trace per profile on @p evaluator's pool (synthesis
 * is a pure function of profile and seed, so the result is
 * thread-count independent). Result i corresponds to profiles[i].
 */
std::vector<std::shared_ptr<const trace::Trace>>
synthesizeSuite(sim::ParallelEvaluator &evaluator,
                const std::vector<const workload::QueueProfile *> &profiles,
                uint64_t seed);

/**
 * Evaluate the (trace x method) grid concurrently; result[i][j] is
 * traces[i] under methods[j]. The workhorse of the Table 3/4-style
 * benches.
 */
std::vector<std::vector<sim::EvaluationCell>>
evaluateMethodGrid(sim::ParallelEvaluator &evaluator,
                   const std::vector<std::shared_ptr<const trace::Trace>>
                       &traces,
                   const std::vector<std::string> &methods,
                   const core::PredictorOptions &predictor_options,
                   const sim::ReplayConfig &replay);

/**
 * Shared driver for the Tables 5/6/7 reproductions: evaluate @p method
 * on every proc-table queue subdivided by the paper's four processor
 * ranges (cells under 1000 jobs print "-") and print the table under
 * @p title. Trace synthesis and the (queue x range) cells run on the
 * evaluation pool. Returns the process exit code.
 */
int runProcTable(const std::string &method, const std::string &title,
                 int argc, char **argv);

} // namespace bench
} // namespace qdel

#endif // QDEL_BENCH_BENCH_COMMON_HH
