#!/usr/bin/env python3
"""Scripted client for the qdel_serve daemon (stdlib only).

Speaks both wire protocols the daemon multiplexes on one port:

  - the length-prefixed binary framing (u32 LE length | u8 opcode |
    body; strings are u64 LE length + bytes, matching the C++
    persist::StateWriter codec), used for ping/event/query/stats/
    checkpoint;
  - the HTTP/1.1 fallback (GET /healthz, /bound, /stats, /metrics;
    POST /event, /checkpoint), used for http-* subcommands.

Every subcommand prints a one-line machine-greppable result and exits
nonzero on any protocol or application error, so CI can drive a full
session:

  port=$(cat serve.port)
  python3 tools/serve_client.py --port "$port" ping
  python3 tools/serve_client.py --port "$port" event \
      --kind submit --job 1 --time 100 --machine m --queue q --procs 8
  python3 tools/serve_client.py --port "$port" query \
      --machine m --queue q --procs 8 --quantile 0.95
  python3 tools/serve_client.py --port "$port" http-metrics > m.prom
"""

import argparse
import socket
import struct
import sys

OP_EVENT = 1
OP_QUERY = 2
OP_PING = 3
OP_CHECKPOINT = 4
OP_STATS = 5

KINDS = {"submit": 1, "start": 2, "done": 3}


def enc_str(value: str) -> bytes:
    raw = value.encode()
    return struct.pack("<Q", len(raw)) + raw


class Reader:
    def __init__(self, data: bytes):
        self.data = data
        self.at = 0

    def take(self, count: int) -> bytes:
        if self.at + count > len(self.data):
            raise ValueError("truncated response body")
        out = self.data[self.at:self.at + count]
        self.at += count
        return out

    def u8(self) -> int:
        return self.take(1)[0]

    def u32(self) -> int:
        return struct.unpack("<I", self.take(4))[0]

    def u64(self) -> int:
        return struct.unpack("<Q", self.take(8))[0]

    def f64(self) -> float:
        return struct.unpack("<d", self.take(8))[0]

    def s(self) -> str:
        return self.take(self.u64()).decode()


def connect(host: str, port: int) -> socket.socket:
    sock = socket.create_connection((host, port), timeout=10)
    return sock


def recv_exactly(sock: socket.socket, count: int) -> bytes:
    out = b""
    while len(out) < count:
        chunk = sock.recv(count - len(out))
        if not chunk:
            raise ConnectionError("server closed the connection")
        out += chunk
    return out


def roundtrip(sock: socket.socket, opcode: int, body: bytes) -> Reader:
    payload = bytes([opcode]) + body
    sock.sendall(struct.pack("<I", len(payload)) + payload)
    length = struct.unpack("<I", recv_exactly(sock, 4))[0]
    response = Reader(recv_exactly(sock, length))
    status = response.u8()
    if status != 0:
        raise RuntimeError("server error: " + response.s())
    return response


def http_request(host: str, port: int, method: str, target: str) -> str:
    sock = connect(host, port)
    try:
        head = f"{method} {target} HTTP/1.1\r\nHost: {host}\r\n\r\n"
        sock.sendall(head.encode())
        raw = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            raw += chunk
    finally:
        sock.close()
    head_text, _, body = raw.partition(b"\r\n\r\n")
    status_line = head_text.split(b"\r\n", 1)[0].decode()
    code = int(status_line.split()[1])
    if code != 200:
        raise RuntimeError(f"HTTP {code}: {body.decode().strip()}")
    return body.decode()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int)
    parser.add_argument("--port-file",
                        help="read the port from this file (written by "
                             "qdel_serve --port-file)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("ping")
    sub.add_parser("stats")
    sub.add_parser("checkpoint")
    sub.add_parser("http-healthz")
    sub.add_parser("http-metrics")
    sub.add_parser("http-stats")

    event = sub.add_parser("event")
    event.add_argument("--kind", choices=sorted(KINDS), required=True)
    event.add_argument("--job", type=int, required=True)
    event.add_argument("--time", type=float, required=True)
    event.add_argument("--machine", required=True)
    event.add_argument("--queue", required=True)
    event.add_argument("--procs", type=int, default=1)

    query = sub.add_parser("query")
    query.add_argument("--machine", required=True)
    query.add_argument("--queue", required=True)
    query.add_argument("--procs", type=int, default=1)
    query.add_argument("--quantile", type=float, default=0.95)
    query.add_argument("--lower", action="store_true",
                       help="ask for the lower bound instead of upper")

    bound = sub.add_parser("http-bound")
    bound.add_argument("--machine", required=True)
    bound.add_argument("--queue", required=True)
    bound.add_argument("--procs", type=int, default=1)
    bound.add_argument("--quantile", type=float, default=0.95)

    args = parser.parse_args()
    if args.port is None:
        if not args.port_file:
            parser.error("one of --port / --port-file is required")
        with open(args.port_file) as handle:
            args.port = int(handle.read().strip())

    if args.command == "http-healthz":
        print(http_request(args.host, args.port, "GET", "/healthz"))
        return 0
    if args.command == "http-metrics":
        sys.stdout.write(
            http_request(args.host, args.port, "GET", "/metrics"))
        return 0
    if args.command == "http-stats":
        print(http_request(args.host, args.port, "GET", "/stats"))
        return 0
    if args.command == "http-bound":
        target = (f"/bound?machine={args.machine}&queue={args.queue}"
                  f"&procs={args.procs}&q={args.quantile}")
        print(http_request(args.host, args.port, "GET", target))
        return 0

    sock = connect(args.host, args.port)
    try:
        if args.command == "ping":
            response = roundtrip(sock, OP_PING, b"")
            print(f"pong wire-version={response.u32()}")
        elif args.command == "checkpoint":
            roundtrip(sock, OP_CHECKPOINT, b"")
            print("checkpoint ok")
        elif args.command == "stats":
            response = roundtrip(sock, OP_STATS, b"")
            entries = response.u64()
            shards = [response.u64() for _ in range(response.u64())]
            print(f"entries={entries} processed={sum(shards)} "
                  f"per-shard={','.join(str(s) for s in shards)}")
        elif args.command == "event":
            body = (bytes([KINDS[args.kind]]) +
                    struct.pack("<Q", args.job) +
                    struct.pack("<d", args.time) +
                    struct.pack("<q", args.procs) +
                    enc_str(args.machine) + enc_str(args.queue))
            response = roundtrip(sock, OP_EVENT, body)
            applied = response.u8()
            reason = response.s()
            print(f"applied={bool(applied)}"
                  + (f" reason={reason!r}" if reason else ""))
            if not applied:
                return 2
        elif args.command == "query":
            body = (enc_str(args.machine) + enc_str(args.queue) +
                    struct.pack("<q", args.procs) +
                    struct.pack("<d", args.quantile) +
                    bytes([0 if args.lower else 1]))
            response = roundtrip(sock, OP_QUERY, body)
            known = response.u8()
            upper = response.f64()
            lower = response.f64()
            quantile = response.f64()
            confidence = response.f64()
            history = response.u64()
            observations = response.u64()
            version = response.u64()
            print(f"known={bool(known)} upper={upper} lower={lower} "
                  f"q={quantile} conf={confidence} history={history} "
                  f"observations={observations} version={version}")
    finally:
        sock.close()
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except (RuntimeError, ConnectionError, ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        sys.exit(1)
