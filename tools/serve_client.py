#!/usr/bin/env python3
"""Scripted client for the qdel_serve daemon (stdlib only).

Speaks both wire protocols the daemon multiplexes on one port:

  - the length-prefixed binary framing (u32 LE length | u8 opcode |
    body; strings are u64 LE length + bytes, matching the C++
    persist::StateWriter codec), used for ping/event/query/stats/
    checkpoint;
  - the HTTP/1.1 fallback (GET /healthz, /bound, /stats, /metrics,
    /debug/calibration; POST /event, /checkpoint), used for the http-*
    and calibration subcommands.

Tracing: --trace (hex id or 'new') rides along as the wire v3 trace
tail on event/query bodies and as the X-Qdel-Trace header on
http-bound. The daemon stamps every hop's span with the id; pass
--events-out (the daemon's span dump) to print the matching spans
after the request.

Fault tolerance: the `event` subcommand is idempotent when given
--client and --seq. The server remembers the highest seq it has
processed per client, so a retry of an event whose response was lost
to a network failure is answered deduped=True instead of being applied
twice. On connection loss or a Status::Shed refusal the client retries
with exponential backoff + jitter (--retries / --backoff), which is
safe exactly because of that fence.

Every subcommand prints a one-line machine-greppable result and exits
nonzero on any protocol or application error, so CI can drive a full
session:

  port=$(cat serve.port)
  python3 tools/serve_client.py --port "$port" ping
  python3 tools/serve_client.py --port "$port" event \
      --kind submit --job 1 --time 100 --machine m --queue q --procs 8 \
      --client ci --seq 1
  python3 tools/serve_client.py --port "$port" query \
      --machine m --queue q --procs 8 --quantile 0.95
  python3 tools/serve_client.py --port "$port" flood --conns 32
  python3 tools/serve_client.py --port "$port" http-metrics > m.prom
"""

import argparse
import random
import socket
import struct
import sys
import time

OP_EVENT = 1
OP_QUERY = 2
OP_PING = 3
OP_CHECKPOINT = 4
OP_STATS = 5

STATUS_OK = 0
STATUS_ERROR = 1
STATUS_SHED = 2

KINDS = {"submit": 1, "start": 2, "done": 3}


def enc_str(value: str) -> bytes:
    raw = value.encode()
    return struct.pack("<Q", len(raw)) + raw


class Reader:
    def __init__(self, data: bytes):
        self.data = data
        self.at = 0

    def take(self, count: int) -> bytes:
        if self.at + count > len(self.data):
            raise ValueError("truncated response body")
        out = self.data[self.at:self.at + count]
        self.at += count
        return out

    def u8(self) -> int:
        return self.take(1)[0]

    def u32(self) -> int:
        return struct.unpack("<I", self.take(4))[0]

    def u64(self) -> int:
        return struct.unpack("<Q", self.take(8))[0]

    def f64(self) -> float:
        return struct.unpack("<d", self.take(8))[0]

    def s(self) -> str:
        return self.take(self.u64()).decode()


class ShedError(RuntimeError):
    """The server refused the request under overload."""

    def __init__(self, reason: str, retry_after: int):
        super().__init__(reason)
        self.retry_after = retry_after


def connect(host: str, port: int) -> socket.socket:
    sock = socket.create_connection((host, port), timeout=10)
    return sock


def recv_exactly(sock: socket.socket, count: int) -> bytes:
    out = b""
    while len(out) < count:
        chunk = sock.recv(count - len(out))
        if not chunk:
            raise ConnectionError("server closed the connection")
        out += chunk
    return out


def roundtrip(sock: socket.socket, opcode: int, body: bytes) -> Reader:
    payload = bytes([opcode]) + body
    sock.sendall(struct.pack("<I", len(payload)) + payload)
    length = struct.unpack("<I", recv_exactly(sock, 4))[0]
    response = Reader(recv_exactly(sock, length))
    status = response.u8()
    if status == STATUS_SHED:
        reason = response.s()
        raise ShedError(reason, response.u32())
    if status != STATUS_OK:
        raise RuntimeError("server error: " + response.s())
    return response


def backoff_delay(attempt: int, base: float,
                  shed_retry_after: int = 0) -> float:
    """Exponential backoff with full jitter; a Shed response's
    Retry-After acts as a floor (capped so CI never sleeps long)."""
    delay = base * (2 ** attempt) + random.uniform(0.0, base)
    if shed_retry_after > 0:
        delay = max(delay, min(float(shed_retry_after), 1.0))
    return delay


def retrying_roundtrip(host: str, port: int, opcode: int, body: bytes,
                       retries: int, base: float) -> Reader:
    """Reconnect-and-resend on connection failures and sheds. Only safe
    for idempotent requests (events tagged with --client/--seq, and all
    read-only opcodes)."""
    last_error = None
    for attempt in range(retries + 1):
        shed_after = 0
        try:
            sock = connect(host, port)
            try:
                return roundtrip(sock, opcode, body)
            finally:
                sock.close()
        except ShedError as error:
            last_error = error
            shed_after = error.retry_after
        except (ConnectionError, socket.timeout, OSError) as error:
            last_error = error
        if attempt < retries:
            time.sleep(backoff_delay(attempt, base, shed_after))
    raise RuntimeError(
        f"request failed after {retries + 1} attempts: {last_error}")


def parse_trace(value) -> int:
    """--trace accepts up to 16 hex digits, or 'new' for a random id.
    Returns 0 (untraced) when the flag was not given."""
    if value is None:
        return 0
    if value == "new":
        return random.getrandbits(64) or 1
    trace = int(value, 16)
    if not 0 < trace < 2 ** 64:
        raise ValueError("--trace must be 1..16 hex digits, nonzero")
    return trace


def after_request(args) -> None:
    """Print the trace id this request carried and, when --events-out
    names the daemon's event dump (written at daemon exit/flush), every
    span that propagated it — the end-to-end request story."""
    if not getattr(args, "trace_id", 0):
        return
    tid = f"{args.trace_id:016x}"
    print(f"trace={tid}")
    if not args.events_out:
        return
    needle = f'"trace":"{tid}"'
    spans = 0
    with open(args.events_out) as handle:
        for line in handle:
            if needle in line:
                print("span " + line.strip().rstrip(","))
                spans += 1
    print(f"trace={tid} spans={spans}")


def http_request(host: str, port: int, method: str, target: str,
                 trace: int = 0) -> str:
    sock = connect(host, port)
    try:
        head = f"{method} {target} HTTP/1.1\r\nHost: {host}\r\n"
        if trace:
            head += f"X-Qdel-Trace: {trace:016x}\r\n"
        head += "\r\n"
        sock.sendall(head.encode())
        raw = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            raw += chunk
    finally:
        sock.close()
    head_text, _, body = raw.partition(b"\r\n\r\n")
    status_line = head_text.split(b"\r\n", 1)[0].decode()
    code = int(status_line.split()[1])
    if code != 200:
        raise RuntimeError(f"HTTP {code}: {body.decode().strip()}")
    return body.decode()


def flood(host: str, port: int, conns: int, hold: float) -> int:
    """Open many connections that send nothing (slow-loris style) and
    report how the server disposed of each: `shed` (Status::Shed frame
    or HTTP 503), `closed` (reaped/EOF), or `held` (still open when the
    watch window expired). Used by the CI overload smoke."""
    sockets = []
    refused = 0
    for _ in range(conns):
        try:
            sockets.append(connect(host, port))
        except OSError:
            refused += 1
    shed = closed = held = 0
    deadline = time.monotonic() + hold
    for sock in sockets:
        try:
            sock.settimeout(max(0.05, deadline - time.monotonic()))
            header = recv_exactly(sock, 4)
            if header[:4].isascii() and header.startswith(b"HTTP"):
                shed += 1  # 503 head (never sent a request: only shed)
            else:
                length = struct.unpack("<I", header)[0]
                response = Reader(recv_exactly(sock, length))
                if response.u8() == STATUS_SHED:
                    shed += 1
                else:
                    closed += 1  # Unexpected; count as non-shed.
        except ConnectionError:
            closed += 1
        except socket.timeout:
            held += 1
        except OSError:
            closed += 1
        finally:
            sock.close()
    print(f"flood conns={conns} shed={shed} closed={closed} "
          f"held={held} refused={refused}")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int)
    parser.add_argument("--port-file",
                        help="read the port from this file (written by "
                             "qdel_serve --port-file)")
    parser.add_argument("--retries", type=int, default=3,
                        help="retry attempts for event/ping on network "
                             "failures or sheds (default 3)")
    parser.add_argument("--backoff", type=float, default=0.1,
                        help="base backoff in seconds (default 0.1)")
    parser.add_argument("--trace",
                        help="end-to-end trace id for event/query/"
                             "http-bound: 1..16 hex digits, or 'new' "
                             "for a random one (sent as the wire v3 "
                             "trace tail / X-Qdel-Trace header)")
    parser.add_argument("--events-out",
                        help="the daemon's --events-out dump; with "
                             "--trace, matching spans are printed "
                             "after the request")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("ping")
    sub.add_parser("stats")
    sub.add_parser("checkpoint")
    sub.add_parser("http-healthz")
    sub.add_parser("http-metrics")
    sub.add_parser("http-stats")
    sub.add_parser("calibration",
                   help="GET /debug/calibration: live per-entry "
                        "empirical coverage vs the requested "
                        "confidence")
    sub.add_parser("debug-shards",
                   help="GET /debug/shards: per-shard entry/pending/"
                        "WAL-depth counters")
    sub.add_parser("debug-conns",
                   help="GET /debug/conns: per-loop live connection "
                        "table")

    event = sub.add_parser("event")
    event.add_argument("--kind", choices=sorted(KINDS), required=True)
    event.add_argument("--job", type=int, required=True)
    event.add_argument("--time", type=float, required=True)
    event.add_argument("--machine", required=True)
    event.add_argument("--queue", required=True)
    event.add_argument("--procs", type=int, default=1)
    event.add_argument("--client", default="",
                       help="stable client id enabling server-side "
                            "retry dedup (empty opts out)")
    event.add_argument("--seq", type=int, default=0,
                       help="per-client monotonically increasing "
                            "sequence number")

    query = sub.add_parser("query")
    query.add_argument("--machine", required=True)
    query.add_argument("--queue", required=True)
    query.add_argument("--procs", type=int, default=1)
    query.add_argument("--quantile", type=float, default=0.95)
    query.add_argument("--lower", action="store_true",
                       help="ask for the lower bound instead of upper")
    query.add_argument("--pipeline", type=int, default=1,
                       help="send N copies of the query back-to-back on "
                            "one connection before reading any answer, "
                            "exercising the server's batched read path "
                            "(default 1)")

    bound = sub.add_parser("http-bound")
    bound.add_argument("--machine", required=True)
    bound.add_argument("--queue", required=True)
    bound.add_argument("--procs", type=int, default=1)
    bound.add_argument("--quantile", type=float, default=0.95)

    flood_cmd = sub.add_parser("flood")
    flood_cmd.add_argument("--conns", type=int, default=32,
                           help="connections to open and stall")
    flood_cmd.add_argument("--hold", type=float, default=5.0,
                           help="seconds to watch for shed/reap")

    args = parser.parse_args()
    if args.port is None:
        if not args.port_file:
            parser.error("one of --port / --port-file is required")
        with open(args.port_file) as handle:
            args.port = int(handle.read().strip())
    args.trace_id = parse_trace(args.trace)

    if args.command == "http-healthz":
        print(http_request(args.host, args.port, "GET", "/healthz"))
        return 0
    if args.command == "http-metrics":
        sys.stdout.write(
            http_request(args.host, args.port, "GET", "/metrics"))
        return 0
    if args.command == "http-stats":
        print(http_request(args.host, args.port, "GET", "/stats"))
        return 0
    if args.command == "calibration":
        print(http_request(args.host, args.port, "GET",
                           "/debug/calibration"))
        return 0
    if args.command == "debug-shards":
        print(http_request(args.host, args.port, "GET", "/debug/shards"))
        return 0
    if args.command == "debug-conns":
        print(http_request(args.host, args.port, "GET", "/debug/conns"))
        return 0
    if args.command == "http-bound":
        target = (f"/bound?machine={args.machine}&queue={args.queue}"
                  f"&procs={args.procs}&q={args.quantile}")
        print(http_request(args.host, args.port, "GET", target,
                           args.trace_id))
        after_request(args)
        return 0
    if args.command == "flood":
        return flood(args.host, args.port, args.conns, args.hold)

    if args.command == "event":
        body = (bytes([KINDS[args.kind]]) +
                struct.pack("<Q", args.job) +
                struct.pack("<d", args.time) +
                struct.pack("<q", args.procs) +
                enc_str(args.machine) + enc_str(args.queue) +
                enc_str(args.client) + struct.pack("<Q", args.seq))
        if args.trace_id:
            # Wire v3 optional trace tail; absent = untraced (v2).
            body += struct.pack("<Q", args.trace_id)
        # The (client, seq) fence makes the resend safe: if the first
        # send applied but its response was lost, the retry dedups.
        response = retrying_roundtrip(args.host, args.port, OP_EVENT,
                                      body, args.retries, args.backoff)
        applied = response.u8()
        reason = response.s()
        deduped = response.u8()
        line = f"applied={bool(applied)}"
        if deduped:
            line += " deduped=True"
        if reason:
            line += f" reason={reason!r}"
        print(line)
        if not applied and not deduped:
            return 2
        after_request(args)
        return 0
    if args.command == "ping":
        response = retrying_roundtrip(args.host, args.port, OP_PING, b"",
                                      args.retries, args.backoff)
        print(f"pong wire-version={response.u32()}")
        return 0

    sock = connect(args.host, args.port)
    try:
        if args.command == "checkpoint":
            roundtrip(sock, OP_CHECKPOINT, b"")
            print("checkpoint ok")
        elif args.command == "stats":
            response = roundtrip(sock, OP_STATS, b"")
            entries = response.u64()
            shards = [response.u64() for _ in range(response.u64())]
            print(f"entries={entries} processed={sum(shards)} "
                  f"per-shard={','.join(str(s) for s in shards)}")
        elif args.command == "query":
            body = (enc_str(args.machine) + enc_str(args.queue) +
                    struct.pack("<q", args.procs) +
                    struct.pack("<d", args.quantile) +
                    bytes([0 if args.lower else 1]))
            if args.trace_id:
                # Wire v3 optional trace tail on queries too.
                body += struct.pack("<Q", args.trace_id)
            if args.pipeline < 1:
                raise ValueError("--pipeline must be >= 1")
            if args.pipeline > 1:
                # Pipelined mode: one write carrying every request, then
                # read the answers in order — the server must answer
                # exactly pipeline frames, each decoding identically.
                payload = bytes([OP_QUERY]) + body
                frame = struct.pack("<I", len(payload)) + payload
                sock.sendall(frame * args.pipeline)
                first = None
                for index in range(args.pipeline):
                    length = struct.unpack(
                        "<I", recv_exactly(sock, 4))[0]
                    response = Reader(recv_exactly(sock, length))
                    status = response.u8()
                    if status != STATUS_OK:
                        raise RuntimeError(
                            f"pipelined answer {index}: status={status}")
                    answer = response.data[response.at:]
                    if first is None:
                        first = answer
                    elif answer != first:
                        raise RuntimeError(
                            f"pipelined answer {index} diverged from "
                            "answer 0")
                response = Reader(first)
            else:
                response = roundtrip(sock, OP_QUERY, body)
            known = response.u8()
            upper = response.f64()
            lower = response.f64()
            quantile = response.f64()
            confidence = response.f64()
            history = response.u64()
            observations = response.u64()
            version = response.u64()
            prefix = (f"pipelined={args.pipeline} "
                      if args.pipeline > 1 else "")
            print(f"{prefix}known={bool(known)} upper={upper} "
                  f"lower={lower} "
                  f"q={quantile} conf={confidence} history={history} "
                  f"observations={observations} version={version}")
            after_request(args)
    finally:
        sock.close()
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except (RuntimeError, ConnectionError, ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        sys.exit(1)
