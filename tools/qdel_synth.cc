/**
 * @file
 * qdel-synth: materialize the synthetic Table 1 suite (or single
 * queues) as trace files on disk, in native or Standard Workload
 * Format — useful for feeding other tools, plotting, or inspecting
 * what the reproduction actually evaluates on.
 *
 * Usage:
 *   qdel_synth --out=DIR [--format=native|swf] [--seed=1]
 *              [--site=S --queue=Q]      (default: the whole suite)
 *              [--verify]  re-load each written file (strict) and
 *                          check the record count round-trips
 *              [--trace-cache[=DIR]]  also warm a binary ".qtc" cache
 *                          for each written trace, so downstream runs
 *                          with --trace-cache start hot
 *              [--metrics-out=F --events-out=F]  dump observability
 *                          output on exit (see qdel_predict)
 *
 * Out-of-core generation (O(shard) memory, any trace size):
 *   qdel_synth --out=DIR --stream-out [--format=qtc|swf]
 *              [--qtc-shard-size=2000000] [--jobs=N] ...
 *
 * --stream-out drives the StreamingSynthesizer job-by-job into either
 * a sharded .qtc set (one "<site>_<queue>.qtcs" manifest per profile;
 * the replay side streams it back with StreamingTraceReader) or a
 * buffered SWF file, never materializing a Trace. --jobs overrides
 * each selected profile's job count, which is how the billion-job
 * benchmark inputs are made.
 */

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "util/obs_cli.hh"
#include "trace/native_format.hh"
#include "trace/qtc_stream.hh"
#include "trace/swf_format.hh"
#include "trace/trace_loader.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "workload/site_catalog.hh"
#include "workload/stream_synth.hh"
#include "workload/synthesizer.hh"

namespace {

using namespace qdel;

/**
 * Stream one profile to a sharded .qtc set. @return the total job
 * count, or 0 with a message on stderr (streams are never empty).
 */
size_t
streamQtc(const workload::QueueProfile &profile,
          workload::StreamSynthOptions synth_options,
          const std::string &out_dir, size_t shard_size, bool verify)
{
    trace::ShardWriterOptions writer_options;
    writer_options.directory = out_dir;
    writer_options.baseName =
        std::string(profile.site) + "_" + profile.queue;
    writer_options.shardSize = shard_size;
    writer_options.site = profile.site;
    writer_options.machine = profile.display;
    trace::ShardedTraceWriter writer(writer_options);

    workload::StreamingSynthesizer synth(profile, synth_options);
    trace::JobRecord job;
    while (synth.next(&job)) {
        writer.add(job.submitTime, job.waitSeconds, job.runSeconds,
                   job.status, job.procs, job.queue);
        if (!writer.err().ok()) {
            std::cerr << "error: " << writer.err().error().str() << "\n";
            return 0;
        }
    }
    const auto finished = writer.finish();
    if (!finished.ok()) {
        std::cerr << "error: " << finished.error().str() << "\n";
        return 0;
    }
    if (verify) {
        // Re-stream the shard set with CRC checking on: every shard is
        // re-read and checksummed, and the job count must round-trip.
        auto reader = trace::StreamingTraceReader::open(
            writer.manifestPath());
        if (!reader.ok()) {
            std::cerr << "error: verify failed: "
                      << reader.error().str() << "\n";
            return 0;
        }
        size_t seen = 0;
        trace::ColumnBatch batch;
        for (;;) {
            auto more = reader.value().next(&batch);
            if (!more.ok()) {
                std::cerr << "error: verify failed: "
                          << more.error().str() << "\n";
                return 0;
            }
            if (!more.value())
                break;
            seen += batch.size;
        }
        if (seen != writer.totalJobs()) {
            std::cerr << "error: verify failed: "
                      << writer.manifestPath() << " round-tripped "
                      << seen << " of " << writer.totalJobs()
                      << " jobs\n";
            return 0;
        }
        inform("verified ", writer.manifestPath(), ": ", seen,
               " jobs, ", writer.shardCount(), " shards, CRC ok");
    }
    std::cout << "wrote " << writer.manifestPath() << " ("
              << writer.totalJobs() << " jobs, " << writer.shardCount()
              << " shards)\n";
    return writer.totalJobs();
}

/**
 * Stream one profile to a buffered SWF file: headers up front (the
 * queue table is known before the first job — one queue per profile),
 * then one formatted line per job through a stdio-buffered ofstream.
 */
size_t
streamSwf(const workload::QueueProfile &profile,
          workload::StreamSynthOptions synth_options,
          const std::string &path, bool verify)
{
    std::ofstream out(path);
    if (!out) {
        std::cerr << "error: cannot open '" << path
                  << "' for writing\n";
        return 0;
    }
    out << "; Computer: " << profile.display << "\n";
    out << "; Installation: " << profile.site << "\n";
    out << "; Generated by the qdel BMBP reproduction library\n";
    out << "; Queue: 0 " << profile.queue << "\n";

    workload::StreamingSynthesizer synth(profile, synth_options);
    trace::JobRecord job;
    char buf[256];
    long long jobno = 0;
    while (synth.next(&job)) {
        ++jobno;
        std::snprintf(buf, sizeof(buf),
                      "%lld %.0f %.0f %.0f %d -1 -1 %d -1 -1 %lld -1 "
                      "-1 -1 0 -1 -1 -1\n",
                      jobno, job.submitTime, job.waitSeconds,
                      job.runSeconds < 0.0 ? -1.0 : job.runSeconds,
                      job.procs, job.procs, job.status);
        out << buf;
    }
    out.flush();
    if (!out) {
        std::cerr << "error: write failed for '" << path << "'\n";
        return 0;
    }
    const auto total = static_cast<size_t>(jobno);
    if (verify) {
        trace::IngestReport report;
        auto reloaded = trace::loadSwfTrace(path, {}, &report);
        if (!reloaded.ok()) {
            std::cerr << "error: verify failed: "
                      << reloaded.error().str() << "\n";
            return 0;
        }
        if (reloaded.value().size() != total) {
            std::cerr << "error: verify failed: " << path
                      << " round-tripped " << reloaded.value().size()
                      << " of " << total << " jobs ("
                      << report.summary() << ")\n";
            return 0;
        }
        inform("verified ", path, ": ", report.summary());
    }
    std::cout << "wrote " << path << " (" << total << " jobs)\n";
    return total;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace qdel;
    CommandLine cli(argc, argv,
                    {"verify", "trace-cache", "stream-out", "help"});
    if (cliValue(cli.getBool("help", false))) {
        std::cout << "usage: qdel_synth --out=DIR "
                     "[--format=native|swf] [--seed=1] "
                     "[--site=S --queue=Q] [--verify] "
                     "[--trace-cache[=DIR]]\n"
                     "       qdel_synth --out=DIR --stream-out "
                     "[--format=qtc|swf] [--qtc-shard-size=2000000] "
                     "[--jobs=N] ...\n"
                     "  --verify  re-load each written trace (strict "
                     "mode) and check it round-trips\n"
                     "  --trace-cache[=DIR]  warm a binary \".qtc\" "
                     "cache for each written trace\n"
                     "  --stream-out  generate out-of-core: jobs go "
                     "straight to disk in O(shard) memory\n"
                     "  --qtc-shard-size=N  jobs per .qtc shard "
                     "(stream-out qtc format)\n"
                     "  --jobs=N  override each profile's job count "
                     "(stream-out only)\n"
                     "  --metrics-out=FILE  dump metrics on exit "
                     "(Prometheus text / JSON)\n"
                     "  --events-out=FILE   dump the event trace on "
                     "exit\n";
        return 0;
    }
    if (reportCliErrors(cli))
        return 1;
    ObsFlags obs_flags;
    if (!parseObsFlags(cli, &obs_flags))
        return 1;
    const std::string out_dir = cli.getString("out", "");
    if (out_dir.empty()) {
        std::cerr << "usage: qdel_synth --out=DIR "
                     "[--format=native|swf] [--seed=1] "
                     "[--site=S --queue=Q] [--verify] "
                     "[--stream-out [--format=qtc|swf] "
                     "[--qtc-shard-size=N] [--jobs=N]]\n";
        return 1;
    }
    const bool stream_out = cliValue(cli.getBool("stream-out", false));
    const std::string format =
        cli.getString("format", stream_out ? "qtc" : "native");
    if (stream_out) {
        if (format != "qtc" && format != "swf") {
            std::cerr << "error: --stream-out supports --format=qtc or "
                         "swf, got '" << format << "'\n";
            return 1;
        }
    } else if (format != "native" && format != "swf") {
        std::cerr << "error: --format must be 'native' or 'swf', got '"
                  << format << "' (qtc requires --stream-out)\n";
        return 1;
    }
    const long long shard_size_arg =
        cliValue(cli.getInt("qtc-shard-size", 2'000'000));
    if (shard_size_arg <= 0) {
        std::cerr << "error: --qtc-shard-size must be positive\n";
        return 1;
    }
    const long long jobs_arg = cliValue(cli.getInt("jobs", 0));
    // An explicit --jobs 0 would silently fall back to the profile's
    // own job count (0 is the no-override sentinel); reject it.
    if (jobs_arg < 0 || (cli.has("jobs") && jobs_arg == 0)) {
        std::cerr << "error: --jobs must be positive\n";
        return 1;
    }
    if (!stream_out && (cli.has("jobs") || cli.has("qtc-shard-size"))) {
        std::cerr << "error: --jobs and --qtc-shard-size require "
                     "--stream-out\n";
        return 1;
    }
    const auto seed = static_cast<uint64_t>(cliValue(cli.getInt("seed", 1)));
    const bool verify = cliValue(cli.getBool("verify", false));

    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    if (ec) {
        std::cerr << "error: cannot create output directory '" << out_dir
                  << "': " << ec.message() << "\n";
        return 1;
    }

    std::vector<const workload::QueueProfile *> selection;
    if (cli.has("site") || cli.has("queue")) {
        auto profile = workload::lookupProfile(cli.getString("site", ""),
                                               cli.getString("queue", ""));
        if (!profile.ok()) {
            std::cerr << "error: " << profile.error().str() << "\n";
            return 1;
        }
        selection.push_back(profile.value());
    } else {
        for (const auto &profile : workload::siteCatalog())
            selection.push_back(&profile);
    }

    if (stream_out) {
        size_t total_jobs = 0;
        for (const auto *profile : selection) {
            workload::StreamSynthOptions synth_options;
            synth_options.baseSeed = seed;
            synth_options.jobCountOverride =
                static_cast<size_t>(jobs_arg);
            const size_t written =
                format == "qtc"
                    ? streamQtc(*profile, synth_options, out_dir,
                                static_cast<size_t>(shard_size_arg),
                                verify)
                    : streamSwf(*profile, synth_options,
                                out_dir + "/" +
                                    std::string(profile->site) + "_" +
                                    profile->queue + ".swf",
                                verify);
            if (written == 0)
                return 1;
            total_jobs += written;
        }
        std::cout << "total: " << selection.size() << " traces, "
                  << total_jobs << " jobs (seed " << seed
                  << ", streamed)\n";
        writeObsOutputs(obs_flags);
        return 0;
    }

    size_t total_jobs = 0;
    for (const auto *profile : selection) {
        auto trace = workload::synthesizeTrace(*profile, seed);
        total_jobs += trace.size();
        const std::string name = std::string(profile->site) + "_" +
                                 profile->queue + "." +
                                 (format == "swf" ? "swf" : "txt");
        const std::string path = out_dir + "/" + name;
        const auto saved = format == "swf"
                               ? trace::saveSwfTrace(trace, path)
                               : trace::saveNativeTrace(trace, path);
        if (!saved.ok()) {
            std::cerr << "error: " << saved.error().str() << "\n";
            return 1;
        }
        if (cli.has("trace-cache")) {
            // Re-load through the caching loader: the text parse runs
            // once here and leaves a fresh ".qtc" behind, so every
            // downstream --trace-cache consumer starts hot.
            trace::TraceLoadOptions cache_options;
            cache_options.cache = true;
            cache_options.cacheDir = cli.getString("trace-cache", "");
            auto warmed = trace::loadTrace(path, cache_options);
            if (!warmed.ok()) {
                std::cerr << "error: cache warm-up failed: "
                          << warmed.error().str() << "\n";
                return 1;
            }
        }
        if (verify) {
            trace::IngestReport report;
            auto reloaded =
                format == "swf"
                    ? trace::loadSwfTrace(path, {}, &report)
                    : trace::loadNativeTrace(path, {}, &report);
            if (!reloaded.ok()) {
                std::cerr << "error: verify failed: "
                          << reloaded.error().str() << "\n";
                return 1;
            }
            // SWF export may drop missing-wait records on re-load (the
            // default import policy), but synthesized traces always
            // carry waits, so the counts must match exactly.
            if (reloaded.value().size() != trace.size()) {
                std::cerr << "error: verify failed: " << path
                          << " round-tripped " << reloaded.value().size()
                          << " of " << trace.size() << " jobs ("
                          << report.summary() << ")\n";
                return 1;
            }
            inform("verified ", path, ": ", report.summary());
        }
        std::cout << "wrote " << path << " (" << trace.size()
                  << " jobs)\n";
    }
    std::cout << "total: " << selection.size() << " traces, "
              << total_jobs << " jobs (seed " << seed << ")\n";
    writeObsOutputs(obs_flags);
    return 0;
}
