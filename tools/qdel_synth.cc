/**
 * @file
 * qdel-synth: materialize the synthetic Table 1 suite (or single
 * queues) as trace files on disk, in native or Standard Workload
 * Format — useful for feeding other tools, plotting, or inspecting
 * what the reproduction actually evaluates on.
 *
 * Usage:
 *   qdel_synth --out=DIR [--format=native|swf] [--seed=1]
 *              [--site=S --queue=Q]      (default: the whole suite)
 */

#include <filesystem>
#include <iostream>

#include "trace/native_format.hh"
#include "trace/swf_format.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "workload/site_catalog.hh"
#include "workload/synthesizer.hh"

int
main(int argc, char **argv)
{
    using namespace qdel;
    CommandLine cli(argc, argv);
    const std::string out_dir = cli.getString("out", "");
    if (out_dir.empty()) {
        std::cerr << "usage: qdel_synth --out=DIR "
                     "[--format=native|swf] [--seed=1] "
                     "[--site=S --queue=Q]\n";
        return 1;
    }
    const std::string format = cli.getString("format", "native");
    if (format != "native" && format != "swf")
        fatal("--format must be 'native' or 'swf', got '", format, "'");
    const auto seed = static_cast<uint64_t>(cli.getInt("seed", 1));

    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    if (ec)
        fatal("cannot create output directory '", out_dir, "': ",
              ec.message());

    std::vector<const workload::QueueProfile *> selection;
    if (cli.has("site") || cli.has("queue")) {
        selection.push_back(&workload::findProfile(
            cli.getString("site", ""), cli.getString("queue", "")));
    } else {
        for (const auto &profile : workload::siteCatalog())
            selection.push_back(&profile);
    }

    size_t total_jobs = 0;
    for (const auto *profile : selection) {
        auto trace = workload::synthesizeTrace(*profile, seed);
        total_jobs += trace.size();
        const std::string name = std::string(profile->site) + "_" +
                                 profile->queue + "." +
                                 (format == "swf" ? "swf" : "txt");
        const std::string path = out_dir + "/" + name;
        if (format == "swf")
            trace::saveSwfTrace(trace, path);
        else
            trace::saveNativeTrace(trace, path);
        std::cout << "wrote " << path << " (" << trace.size()
                  << " jobs)\n";
    }
    std::cout << "total: " << selection.size() << " traces, "
              << total_jobs << " jobs (seed " << seed << ")\n";
    return 0;
}
