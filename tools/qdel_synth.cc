/**
 * @file
 * qdel-synth: materialize the synthetic Table 1 suite (or single
 * queues) as trace files on disk, in native or Standard Workload
 * Format — useful for feeding other tools, plotting, or inspecting
 * what the reproduction actually evaluates on.
 *
 * Usage:
 *   qdel_synth --out=DIR [--format=native|swf] [--seed=1]
 *              [--site=S --queue=Q]      (default: the whole suite)
 *              [--verify]  re-load each written file (strict) and
 *                          check the record count round-trips
 *              [--trace-cache[=DIR]]  also warm a binary ".qtc" cache
 *                          for each written trace, so downstream runs
 *                          with --trace-cache start hot
 *              [--metrics-out=F --events-out=F]  dump observability
 *                          output on exit (see qdel_predict)
 */

#include <filesystem>
#include <iostream>

#include "util/obs_cli.hh"
#include "trace/native_format.hh"
#include "trace/swf_format.hh"
#include "trace/trace_loader.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "workload/site_catalog.hh"
#include "workload/synthesizer.hh"

int
main(int argc, char **argv)
{
    using namespace qdel;
    CommandLine cli(argc, argv, {"verify", "trace-cache", "help"});
    if (cliValue(cli.getBool("help", false))) {
        std::cout << "usage: qdel_synth --out=DIR "
                     "[--format=native|swf] [--seed=1] "
                     "[--site=S --queue=Q] [--verify] "
                     "[--trace-cache[=DIR]]\n"
                     "  --verify  re-load each written trace (strict "
                     "mode) and check it round-trips\n"
                     "  --trace-cache[=DIR]  warm a binary \".qtc\" "
                     "cache for each written trace\n"
                     "  --metrics-out=FILE  dump metrics on exit "
                     "(Prometheus text / JSON)\n"
                     "  --events-out=FILE   dump the event trace on "
                     "exit\n";
        return 0;
    }
    if (reportCliErrors(cli))
        return 1;
    ObsFlags obs_flags;
    if (!parseObsFlags(cli, &obs_flags))
        return 1;
    const std::string out_dir = cli.getString("out", "");
    if (out_dir.empty()) {
        std::cerr << "usage: qdel_synth --out=DIR "
                     "[--format=native|swf] [--seed=1] "
                     "[--site=S --queue=Q] [--verify]\n";
        return 1;
    }
    const std::string format = cli.getString("format", "native");
    if (format != "native" && format != "swf") {
        std::cerr << "error: --format must be 'native' or 'swf', got '"
                  << format << "'\n";
        return 1;
    }
    const auto seed = static_cast<uint64_t>(cliValue(cli.getInt("seed", 1)));
    const bool verify = cliValue(cli.getBool("verify", false));

    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    if (ec) {
        std::cerr << "error: cannot create output directory '" << out_dir
                  << "': " << ec.message() << "\n";
        return 1;
    }

    std::vector<const workload::QueueProfile *> selection;
    if (cli.has("site") || cli.has("queue")) {
        auto profile = workload::lookupProfile(cli.getString("site", ""),
                                               cli.getString("queue", ""));
        if (!profile.ok()) {
            std::cerr << "error: " << profile.error().str() << "\n";
            return 1;
        }
        selection.push_back(profile.value());
    } else {
        for (const auto &profile : workload::siteCatalog())
            selection.push_back(&profile);
    }

    size_t total_jobs = 0;
    for (const auto *profile : selection) {
        auto trace = workload::synthesizeTrace(*profile, seed);
        total_jobs += trace.size();
        const std::string name = std::string(profile->site) + "_" +
                                 profile->queue + "." +
                                 (format == "swf" ? "swf" : "txt");
        const std::string path = out_dir + "/" + name;
        const auto saved = format == "swf"
                               ? trace::saveSwfTrace(trace, path)
                               : trace::saveNativeTrace(trace, path);
        if (!saved.ok()) {
            std::cerr << "error: " << saved.error().str() << "\n";
            return 1;
        }
        if (cli.has("trace-cache")) {
            // Re-load through the caching loader: the text parse runs
            // once here and leaves a fresh ".qtc" behind, so every
            // downstream --trace-cache consumer starts hot.
            trace::TraceLoadOptions cache_options;
            cache_options.cache = true;
            cache_options.cacheDir = cli.getString("trace-cache", "");
            auto warmed = trace::loadTrace(path, cache_options);
            if (!warmed.ok()) {
                std::cerr << "error: cache warm-up failed: "
                          << warmed.error().str() << "\n";
                return 1;
            }
        }
        if (verify) {
            trace::IngestReport report;
            auto reloaded =
                format == "swf"
                    ? trace::loadSwfTrace(path, {}, &report)
                    : trace::loadNativeTrace(path, {}, &report);
            if (!reloaded.ok()) {
                std::cerr << "error: verify failed: "
                          << reloaded.error().str() << "\n";
                return 1;
            }
            // SWF export may drop missing-wait records on re-load (the
            // default import policy), but synthesized traces always
            // carry waits, so the counts must match exactly.
            if (reloaded.value().size() != trace.size()) {
                std::cerr << "error: verify failed: " << path
                          << " round-tripped " << reloaded.value().size()
                          << " of " << trace.size() << " jobs ("
                          << report.summary() << ")\n";
                return 1;
            }
            inform("verified ", path, ": ", report.summary());
        }
        std::cout << "wrote " << path << " (" << trace.size()
                  << " jobs)\n";
    }
    std::cout << "total: " << selection.size() << " traces, "
              << total_jobs << " jobs (seed " << seed << ")\n";
    writeObsOutputs(obs_flags);
    return 0;
}
