/**
 * @file
 * qdel-predict: the deployable front end. Evaluates (or just runs)
 * wait-time bound prediction over a scheduler log.
 *
 * Usage:
 *   qdel_predict <trace-file> [options]
 *
 * The trace format is chosen by extension: ".swf" parses Standard
 * Workload Format (Parallel Workloads Archive), anything else the
 * native "<submit> <wait> [procs [queue]]" format.
 *
 * Options:
 *   --method=bmbp|lognormal|lognormal-trim|loguniform|percentile
 *   --quantile=0.95 --confidence=0.95
 *   --epoch=300 --train=0.10
 *   --queue=NAME       evaluate one queue (default: each in turn)
 *   --by-procs         additionally subdivide by the paper's ranges
 *   --min-jobs=1000    drop subdivisions smaller than this
 *   --live             print the final bound a user would see now
 *
 * Exit status: 0 on success, 1 on input errors.
 */

#include <iostream>

#include "core/predictor_factory.hh"
#include "core/rare_event.hh"
#include "sim/replay/evaluation.hh"
#include "trace/native_format.hh"
#include "trace/swf_format.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/string_utils.hh"
#include "util/table_printer.hh"

namespace {

using namespace qdel;

bool
endsWith(const std::string &text, const std::string &suffix)
{
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

} // namespace

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv);
    if (cli.positional().empty()) {
        std::cerr << "usage: qdel_predict <trace-file> [--method=bmbp] "
                     "[--quantile=0.95] [--confidence=0.95]\n"
                     "                    [--epoch=300] [--train=0.10] "
                     "[--queue=NAME] [--by-procs] [--live]\n";
        return 1;
    }
    const std::string path = cli.positional().front();
    const std::string method = cli.getString("method", "bmbp");

    auto trace = endsWith(toLower(path), ".swf")
                     ? trace::loadSwfTrace(path)
                     : trace::loadNativeTrace(path);
    inform("loaded ", trace.size(), " jobs from ", path);
    if (trace.empty())
        fatal("trace '", path, "' contains no jobs");

    core::RareEventTable table(cli.getDouble("quantile", 0.95), 0.05);
    core::PredictorOptions options;
    options.quantile = cli.getDouble("quantile", 0.95);
    options.confidence = cli.getDouble("confidence", 0.95);
    options.rareEventTable = &table;

    sim::ReplayConfig replay;
    replay.epochSeconds = cli.getDouble("epoch", 300.0);
    replay.trainFraction = cli.getDouble("train", 0.10);

    const auto min_jobs =
        static_cast<size_t>(cli.getInt("min-jobs", 1000));

    std::vector<std::string> queues;
    if (cli.has("queue"))
        queues.push_back(cli.getString("queue", ""));
    else
        queues = trace.queueNames();

    TablePrinter results("qdel-predict: " + method + " on " + path);
    if (cli.getBool("by-procs", false)) {
        results.setHeader({"queue", "1-4", "5-16", "17-64", "65+"});
        for (const auto &queue : queues) {
            auto subdivided = trace.filterByQueue(queue);
            auto cells = sim::evaluateByProcRange(subdivided, method,
                                                  options, replay,
                                                  min_jobs);
            std::vector<std::string> row = {queue.empty() ? "(all)"
                                                          : queue};
            for (const auto &cell : cells) {
                if (cell.evaluated == 0) {
                    row.push_back("-");
                    continue;
                }
                std::string text =
                    TablePrinter::cell(cell.correctFraction, 2);
                row.push_back(cell.correct(options.quantile)
                                  ? text
                                  : TablePrinter::flagged(text));
            }
            results.addRow(std::move(row));
        }
    } else {
        results.setHeader({"queue", "jobs", "evaluated", "correct",
                           "median actual/pred", "trims"});
        for (const auto &queue : queues) {
            auto subdivided = trace.filterByQueue(queue);
            if (subdivided.size() < 2)
                continue;
            auto cell =
                sim::evaluateTrace(subdivided, method, options, replay);
            std::string correct =
                TablePrinter::cell(cell.correctFraction, 3);
            if (!cell.correct(options.quantile))
                correct = TablePrinter::flagged(correct);
            results.addRow(
                {queue.empty() ? "(all)" : queue,
                 TablePrinter::cell(static_cast<long long>(cell.jobs)),
                 TablePrinter::cell(
                     static_cast<long long>(cell.evaluated)),
                 correct, TablePrinter::cellSci(cell.medianRatio, 2),
                 TablePrinter::cell(
                     static_cast<long long>(cell.trims))});
        }
    }
    results.print(std::cout);

    if (cli.getBool("live", false)) {
        // The bound a user submitting *after the log ends* would see:
        // feed the full history, refit once.
        std::cout << "\nlive bounds (full history):\n";
        for (const auto &queue : queues) {
            auto subdivided = trace.filterByQueue(queue);
            auto predictor = core::makePredictor(method, options);
            for (const auto &job : subdivided)
                predictor->observe(job.waitSeconds);
            predictor->refit();
            const auto bound = predictor->upperBound();
            std::cout << "  " << (queue.empty() ? "(all)" : queue)
                      << ": ";
            if (bound.finite()) {
                std::cout << formatDuration(bound.value) << " ("
                          << TablePrinter::cell(bound.value, 0)
                          << " s)\n";
            } else {
                std::cout << "insufficient history\n";
            }
        }
    }
    return 0;
}
