/**
 * @file
 * qdel-predict: the deployable front end. Evaluates (or just runs)
 * wait-time bound prediction over a scheduler log.
 *
 * Usage:
 *   qdel_predict <trace-file> [options]
 *
 * The trace format is chosen by extension: ".swf" parses Standard
 * Workload Format (Parallel Workloads Archive), ".qtc"/".qtcs"
 * streams columnar data out-of-core through the batched evaluator
 * (bounded resident memory, any trace size), anything else the
 * native "<submit> <wait> [procs [queue]]" format.
 *
 * Options:
 *   --method=bmbp|lognormal|lognormal-trim|loguniform|percentile
 *   --quantile=0.95 --confidence=0.95
 *   --epoch=300 --train=0.10
 *   --queue=NAME       evaluate one queue (default: each in turn)
 *   --by-procs         additionally subdivide by the paper's ranges
 *   --min-jobs=1000    drop subdivisions smaller than this
 *   --live             print the final bound a user would see now
 *   --strict           fail on the first malformed trace line (default)
 *   --lenient          skip malformed lines, report an ingest summary
 *   --threads=N        parse worker threads (default 1; 0 = auto)
 *   --trace-cache[=D]  maintain a binary ".qtc" cache of the parsed
 *                      trace (in D, default: next to the source) and
 *                      load from it when fresh
 *   --verbose          verbose logging (includes the ingest report)
 *   --checkpoint-dir=D persist predictor + replay state into D so a
 *                      killed run can be resumed (single queue only)
 *   --checkpoint-every=5000  jobs between snapshots
 *   --resume           recover from the checkpoint directory's newest
 *                      usable state instead of failing on existing state
 *   --metrics-out=F    write a metrics dump on exit (Prometheus text
 *                      exposition, or JSON when F ends in ".json")
 *   --events-out=F     write the event trace on exit (Chrome
 *                      trace_event JSON; JSON Lines when F ends in
 *                      ".jsonl")
 *   --stats-every=N    print a progress line with rate + ETA every N
 *                      replayed jobs (see README for the format)
 *   --batch-size=N     rows per streamed batch (columnar input only;
 *                      default 65536)
 *
 * Exit status: 0 on success, 1 on input errors.
 */

#include <cstdio>
#include <iostream>
#include <memory>

#include "core/predictor_factory.hh"
#include "core/rare_event.hh"
#include "obs/progress.hh"
#include "sim/replay/evaluation.hh"
#include "sim/replay/stream_replay.hh"
#include "trace/qtc_stream.hh"
#include "util/obs_cli.hh"
#include "util/resource_usage.hh"
#include "trace/trace_loader.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/string_utils.hh"
#include "util/table_printer.hh"

namespace {

using namespace qdel;

void
usage(std::ostream &out)
{
    out << "usage: qdel_predict <trace-file> [--method=bmbp] "
           "[--quantile=0.95] [--confidence=0.95]\n"
           "                    [--epoch=300] [--train=0.10] "
           "[--queue=NAME] [--by-procs] [--live]\n"
           "                    [--strict|--lenient] [--threads=N] "
           "[--trace-cache[=DIR]] [--verbose]\n"
           "                    [--checkpoint-dir=DIR "
           "[--checkpoint-every=5000] [--resume]]\n"
           "\n"
           "  --strict    fail on the first malformed trace line "
           "(default)\n"
           "  --lenient   skip malformed lines and print a per-load "
           "ingest report\n"
           "              (lines parsed / comment / malformed / "
           "filtered)\n"
           "  --trace-cache[=DIR]  write a binary \".qtc\" cache of the "
           "parsed trace\n"
           "              on first load and reuse it while the source "
           "is unchanged\n"
           "  --checkpoint-dir=DIR  persist predictor + replay state "
           "into DIR\n"
           "              (crash-safe; single queue only)\n"
           "  --resume    recover from DIR's newest usable state "
           "instead of\n"
           "              refusing to run on a non-empty directory\n"
           "  --metrics-out=FILE  dump metrics on exit (Prometheus "
           "text, or JSON\n"
           "              when FILE ends in \".json\")\n"
           "  --events-out=FILE   dump the event trace on exit (Chrome "
           "trace_event\n"
           "              JSON for chrome://tracing / Perfetto; JSON "
           "Lines when FILE\n"
           "              ends in \".jsonl\")\n"
           "  --stats-every=N     print a progress line (rate, hit "
           "rate, ETA)\n"
           "              every N replayed jobs\n"
           "  --batch-size=N      rows per streamed batch for "
           "\".qtc\"/\".qtcs\" input\n"
           "              (out-of-core columnar replay; default "
           "65536)\n";
}

/**
 * Stateful progress printer for --stats-every: one meter per replay
 * run (a jobs-processed counter that moved backwards means a new
 * queue's replay started).
 */
class ProgressPrinter
{
  public:
    void
    operator()(const sim::ReplayProgress &p)
    {
        if (!meter_ || p.jobsProcessed < last_)
            meter_ = std::make_shared<obs::ProgressMeter>(p.totalJobs);
        last_ = p.jobsProcessed;
        meter_->update(p.jobsProcessed);
        const double hit_rate =
            p.evaluated > 0 ? static_cast<double>(p.correct) /
                                  static_cast<double>(p.evaluated)
                            : 0.0;
        char buf[224];
        std::snprintf(
            buf, sizeof(buf),
            "progress: %llu/%llu jobs (%.1f%%) | %.0f jobs/s | "
            "hit rate %.3f | eta %s",
            static_cast<unsigned long long>(meter_->done()),
            static_cast<unsigned long long>(meter_->total()),
            meter_->fraction() * 100.0, meter_->ratePerSecond(),
            hit_rate,
            obs::ProgressMeter::formatEta(meter_->etaSeconds()).c_str());
        std::cerr << buf << "\n";
    }

  private:
    // shared_ptr, not unique_ptr: the printer is stored in a
    // std::function, which requires a copyable callable.
    std::shared_ptr<obs::ProgressMeter> meter_;
    size_t last_ = 0;
};

/** True for ".qtc" / ".qtcs" paths (case-insensitive). */
bool
isColumnarPath(const std::string &path)
{
    const std::string lower = toLower(path);
    for (const char *suffix : {".qtc", ".qtcs"}) {
        const size_t n = std::string(suffix).size();
        if (lower.size() >= n &&
            lower.compare(lower.size() - n, n, suffix) == 0)
            return true;
    }
    return false;
}

/** Print the ingest accounting plus the retained per-line errors. */
void
printIngestReport(const trace::IngestReport &report)
{
    std::cerr << "ingest: " << report.summary() << "\n";
    for (const auto &error : report.errors)
        std::cerr << "ingest:   " << error.str() << "\n";
    if (report.malformedLines > report.errors.size()) {
        std::cerr << "ingest:   ... and "
                  << report.malformedLines - report.errors.size()
                  << " more malformed lines\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv,
                    {"by-procs", "live", "strict", "lenient", "verbose",
                     "resume", "trace-cache", "help"});
    if (cliValue(cli.getBool("help", false))) {
        usage(std::cout);
        return 0;
    }
    if (reportCliErrors(cli))
        return 1;
    if (cli.positional().empty()) {
        usage(std::cerr);
        return 1;
    }
    setVerboseLogging(cliValue(cli.getBool("verbose", false)));

    const bool lenient = cliValue(cli.getBool("lenient", false));
    if (lenient && cliValue(cli.getBool("strict", false))) {
        std::cerr << "error: --strict and --lenient are mutually "
                     "exclusive\n";
        return 1;
    }
    const trace::ParseMode mode = lenient ? trace::ParseMode::Lenient
                                          : trace::ParseMode::Strict;

    const std::string path = cli.positional().front();
    const std::string method = cli.getString("method", "bmbp");

    // Validate every user-supplied knob up front, before the (possibly
    // long) trace load.
    core::PredictorOptions options;
    options.quantile = cliValue(cli.getDouble("quantile", 0.95));
    options.confidence = cliValue(cli.getDouble("confidence", 0.95));
    if (auto probe = core::tryMakePredictor(method, options); !probe.ok()) {
        std::cerr << "error: " << probe.error().str() << "\n";
        return 1;
    }

    ObsFlags obs_flags;
    if (!parseObsFlags(cli, &obs_flags))
        return 1;

    sim::ReplayConfig replay;
    replay.epochSeconds = cliValue(cli.getDouble("epoch", 300.0));
    replay.trainFraction = cliValue(cli.getDouble("train", 0.10));
    if (obs_flags.statsEvery > 0) {
        replay.progressEveryJobs = obs_flags.statsEvery;
        replay.onProgress = ProgressPrinter();
    }
    if (auto valid = replay.validate(); !valid.ok()) {
        std::cerr << "error: " << valid.error().str() << "\n";
        return 1;
    }

    const long long min_jobs_raw = cliValue(cli.getInt("min-jobs", 1000));
    if (min_jobs_raw < 0) {
        std::cerr << "error: --min-jobs: must be >= 0, got "
                  << min_jobs_raw << "\n";
        return 1;
    }
    const auto min_jobs = static_cast<size_t>(min_jobs_raw);

    const std::string checkpoint_dir = cli.getString("checkpoint-dir", "");
    const long long checkpoint_every_raw =
        cliValue(cli.getInt("checkpoint-every", 5000));
    const bool resume = cliValue(cli.getBool("resume", false));
    if (checkpoint_dir.empty() &&
        (resume || cli.has("checkpoint-every"))) {
        std::cerr << "error: --resume/--checkpoint-every require "
                     "--checkpoint-dir\n";
        return 1;
    }
    // 0 would silently disable snapshots while still WAL-logging every
    // mutation — never what a user asking for checkpoints wants.
    if (checkpoint_every_raw <= 0) {
        std::cerr << "error: --checkpoint-every: must be >= 1, got "
                  << checkpoint_every_raw << "\n";
        return 1;
    }
    if (!checkpoint_dir.empty() &&
        cliValue(cli.getBool("by-procs", false))) {
        std::cerr << "error: --checkpoint-dir cannot be combined with "
                     "--by-procs (one run, one state)\n";
        return 1;
    }

    const long long threads = cliValue(cli.getInt("threads", 1));
    if (threads < 0) {
        std::cerr << "error: --threads: must be >= 0, got " << threads
                  << "\n";
        return 1;
    }

    // Validated up front (not only on the columnar path below) so a
    // bad value is an error on every input type instead of being
    // silently ignored for row-oriented traces.
    const long long batch_size =
        cliValue(cli.getInt("batch-size", 1 << 16));
    if (batch_size <= 0) {
        std::cerr << "error: --batch-size must be positive\n";
        return 1;
    }
    if (cli.has("batch-size") && !isColumnarPath(path)) {
        std::cerr << "error: --batch-size only applies to columnar "
                     "(.qtc/.qtcs) input\n";
        return 1;
    }

    // Columnar input (a ".qtcs" shard-set manifest or a single ".qtc"
    // image) takes the out-of-core path: stream batches through the
    // batched SoA evaluator instead of materializing a Trace.
    if (isColumnarPath(path)) {
        for (const char *flag : {"by-procs", "live", "checkpoint-dir",
                                 "trace-cache", "lenient"}) {
            if (cli.has(flag)) {
                std::cerr << "error: --" << flag
                          << " is not supported with columnar "
                             "(.qtc/.qtcs) input\n";
                return 1;
            }
        }
        trace::StreamReadOptions read_options;
        read_options.batchSize = static_cast<size_t>(batch_size);
        auto reader = trace::StreamingTraceReader::open(path, read_options);
        if (!reader.ok()) {
            std::cerr << "error: " << reader.error().str() << "\n";
            return 1;
        }
        inform("streaming ", reader.value().jobCount(), " jobs in ",
               reader.value().shardCount(), " shards from ", path);

        sim::StreamReplayConfig stream_config;
        stream_config.epochSeconds = replay.epochSeconds;
        stream_config.trainFraction = replay.trainFraction;
        stream_config.batchSize = static_cast<size_t>(batch_size);
        stream_config.threads = threads == 1 ? 1 : threads;
        auto outcome = sim::replayStream(reader.value(), method, options,
                                         stream_config);
        if (!outcome.ok()) {
            std::cerr << "error: " << outcome.error().str() << "\n";
            return 1;
        }
        const sim::StreamReplayResult &stream = outcome.value();

        TablePrinter results("qdel-predict: " + method + " on " + path +
                             " (streamed)");
        results.setHeader({"queue", "jobs", "evaluated", "correct",
                           "median actual/pred", "trims"});
        const std::string only_queue = cli.getString("queue", "");
        for (const auto &qr : stream.queues) {
            if (cli.has("queue") && qr.queue != only_queue)
                continue;
            const sim::ReplayResult &r = qr.result;
            if (r.totalJobs < 2)
                continue;
            std::string correct =
                TablePrinter::cell(r.correctFraction, 3);
            // Same two-decimal rounding rule as EvalCell::correct().
            const double rounded =
                static_cast<double>(static_cast<long long>(
                    r.correctFraction * 100.0 + 0.5)) /
                100.0;
            if (r.evaluatedJobs > 0 && rounded < options.quantile)
                correct = TablePrinter::flagged(correct);
            results.addRow(
                {qr.queue.empty() ? "(all)" : qr.queue,
                 TablePrinter::cell(static_cast<long long>(r.totalJobs)),
                 TablePrinter::cell(
                     static_cast<long long>(r.evaluatedJobs)),
                 correct, TablePrinter::cellSci(r.medianRatio, 2),
                 TablePrinter::cell(static_cast<long long>(qr.trims))});
        }
        results.print(std::cout);
        std::cerr << "stream: " << stream.totalJobs << " jobs, "
                  << stream.batches << " batches, " << stream.shards
                  << " shards, peak rss "
                  << (stream.peakResidentBytes >> 20)
                  << " MiB sampled / "
                  << (util::peakResidentBytes() >> 20) << " MiB process\n";
        writeObsOutputs(obs_flags);
        return 0;
    }

    trace::TraceLoadOptions load_options;
    load_options.mode = mode;
    load_options.threads = threads;
    load_options.cache = cli.has("trace-cache");
    load_options.cacheDir = cli.getString("trace-cache", "");

    trace::IngestReport report;
    Expected<trace::Trace> loaded =
        trace::loadTrace(path, load_options, &report);
    if (!loaded.ok()) {
        std::cerr << "error: " << loaded.error().str() << "\n";
        return 1;
    }
    const trace::Trace trace = std::move(loaded).value();
    if (report.malformedLines > 0 || detail::verbose())
        printIngestReport(report);
    inform("loaded ", trace.size(), " jobs from ", path);
    if (trace.empty()) {
        std::cerr << "error: trace '" << path << "' contains no jobs\n";
        return 1;
    }

    core::RareEventTable table(options.quantile, 0.05);
    options.rareEventTable = &table;

    std::vector<std::string> queues;
    if (cli.has("queue"))
        queues.push_back(cli.getString("queue", ""));
    else
        queues = trace.queueNames();

    if (!checkpoint_dir.empty()) {
        // A checkpoint directory holds the state of exactly one
        // (trace, queue, predictor) run, so the multi-queue sweep is
        // off the table here.
        if (queues.size() != 1) {
            std::cerr << "error: --checkpoint-dir requires a single "
                         "queue; this trace has "
                      << queues.size()
                      << " queues, select one with --queue=NAME\n";
            return 1;
        }
        const trace::Trace subdivided = trace.filterByQueue(queues[0]);
        auto predictor = core::makePredictor(method, options);
        sim::ReplaySimulator simulator(replay);
        sim::ReplayCheckpointOptions copts;
        copts.dir = checkpoint_dir;
        copts.intervalJobs = static_cast<size_t>(checkpoint_every_raw);
        copts.resume = resume;
        auto outcome = simulator.run(subdivided, *predictor, {}, copts);
        if (!outcome.ok()) {
            std::cerr << "error: " << outcome.error().str() << "\n";
            return 1;
        }
        const sim::ReplayResult &r = outcome.value();
        for (const auto &note : r.recoveryNotes)
            std::cerr << "recovery: " << note << "\n";
        if (r.resumedFromJob > 0) {
            std::cerr << "recovery: resumed at job " << r.resumedFromJob
                      << " of " << r.totalJobs << "\n";
        }
        TablePrinter table("qdel-predict: " + method + " on " + path +
                           " (checkpointed)");
        table.setHeader({"queue", "jobs", "evaluated", "correct",
                         "median actual/pred", "trims"});
        std::string correct = TablePrinter::cell(r.correctFraction, 3);
        table.addRow(
            {queues[0].empty() ? "(all)" : queues[0],
             TablePrinter::cell(static_cast<long long>(r.totalJobs)),
             TablePrinter::cell(static_cast<long long>(r.evaluatedJobs)),
             correct, TablePrinter::cellSci(r.medianRatio, 2),
             TablePrinter::cell(static_cast<long long>(
                 sim::predictorTrimCount(*predictor)))});
        table.print(std::cout);
        writeObsOutputs(obs_flags);
        return 0;
    }

    TablePrinter results("qdel-predict: " + method + " on " + path);
    if (cliValue(cli.getBool("by-procs", false))) {
        results.setHeader({"queue", "1-4", "5-16", "17-64", "65+"});
        for (const auto &queue : queues) {
            auto subdivided = trace.filterByQueue(queue);
            auto cells = sim::evaluateByProcRange(subdivided, method,
                                                  options, replay,
                                                  min_jobs);
            std::vector<std::string> row = {queue.empty() ? "(all)"
                                                          : queue};
            for (const auto &cell : cells) {
                if (cell.evaluated == 0) {
                    row.push_back("-");
                    continue;
                }
                std::string text =
                    TablePrinter::cell(cell.correctFraction, 2);
                row.push_back(cell.correct(options.quantile)
                                  ? text
                                  : TablePrinter::flagged(text));
            }
            results.addRow(std::move(row));
        }
    } else {
        results.setHeader({"queue", "jobs", "evaluated", "correct",
                           "median actual/pred", "trims"});
        for (const auto &queue : queues) {
            auto subdivided = trace.filterByQueue(queue);
            if (subdivided.size() < 2)
                continue;
            auto cell =
                sim::evaluateTrace(subdivided, method, options, replay);
            std::string correct =
                TablePrinter::cell(cell.correctFraction, 3);
            if (!cell.correct(options.quantile))
                correct = TablePrinter::flagged(correct);
            results.addRow(
                {queue.empty() ? "(all)" : queue,
                 TablePrinter::cell(static_cast<long long>(cell.jobs)),
                 TablePrinter::cell(
                     static_cast<long long>(cell.evaluated)),
                 correct, TablePrinter::cellSci(cell.medianRatio, 2),
                 TablePrinter::cell(
                     static_cast<long long>(cell.trims))});
        }
    }
    results.print(std::cout);

    if (cliValue(cli.getBool("live", false))) {
        // The bound a user submitting *after the log ends* would see:
        // feed the full history, refit once.
        std::cout << "\nlive bounds (full history):\n";
        for (const auto &queue : queues) {
            auto subdivided = trace.filterByQueue(queue);
            auto predictor = core::makePredictor(method, options);
            for (const auto &job : subdivided)
                predictor->observe(job.waitSeconds);
            predictor->refit();
            const auto bound = predictor->upperBound();
            std::cout << "  " << (queue.empty() ? "(all)" : queue)
                      << ": ";
            if (bound.finite()) {
                std::cout << formatDuration(bound.value) << " ("
                          << TablePrinter::cell(bound.value, 0)
                          << " s)\n";
            } else {
                std::cout << "insufficient history\n";
            }
        }
    }
    writeObsOutputs(obs_flags);
    return 0;
}
