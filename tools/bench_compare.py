#!/usr/bin/env python3
"""Compare two google-benchmark JSON reports.

Diffs a fresh perf_predictor run against a committed baseline (the
repo keeps the pre-optimization numbers in BENCH_perf.json) and
reports per-benchmark speedups. Optional --require flags turn minimum
speedups into an exit code, so the perf acceptance criteria are
executable:

    ./build/bench/perf_predictor --benchmark_out=new.json \\
        --benchmark_out_format=json
    tools/bench_compare.py BENCH_perf.json new.json \\
        --require 'BM_BmbpObserveAndRefit/350000=5' \\
        --require 'BM_RareEventTableBuild=3'

--max-regress turns the comparison into a regression gate: any shared
benchmark whose candidate time exceeds the baseline by more than the
given percentage (default 10 when the flag is given bare) fails the
run. Useful in CI, where the interesting signal is "did this change
slow anything down", not a specific speedup target.

--alias FROM=TO renames candidate benchmarks by prefix before
matching, so a variant row can be gated against its baseline twin in
the same binary:

    tools/bench_compare.py qps_plain.json qps_traced.json \\
        --alias BM_ServeNetworkQpsTraced=BM_ServeNetworkQps \\
        --max-regress 20

Besides the per-benchmark table the report ends with a geometric-mean
speedup over the shared benchmarks, and benchmarks present in only one
report are listed as added (candidate only) / removed (baseline only)
so renames and new coverage are visible rather than silently ignored.

Exit status: 0 when every --require is met (or none given) and no
benchmark regresses past --max-regress; 1 otherwise.
"""

import argparse
import json
import math
import sys

# google-benchmark reports whatever unit each benchmark asked for;
# normalize to nanoseconds before comparing.
_TIME_UNITS_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_times(path):
    """Map benchmark name -> real time in nanoseconds."""
    with open(path) as handle:
        report = json.load(handle)
    times = {}
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue  # keep raw iterations, skip mean/median/stddev
        scale = _TIME_UNITS_NS.get(bench.get("time_unit", "ns"))
        if scale is None:
            raise SystemExit(
                f"{path}: unknown time unit {bench['time_unit']!r} "
                f"for {bench['name']}")
        times[bench["name"]] = bench["real_time"] * scale
    if not times:
        raise SystemExit(f"{path}: no benchmarks found")
    return times


def format_ns(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.3g} {unit}"
    return f"{ns:.3g} ns"


def parse_requirement(text):
    name, _, minimum = text.partition("=")
    if not minimum:
        raise SystemExit(
            f"--require expects NAME=MIN_SPEEDUP, got {text!r}")
    return name, float(minimum)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", help="baseline report (old)")
    parser.add_argument("candidate", help="candidate report (new)")
    parser.add_argument(
        "--require", action="append", default=[], metavar="NAME=MIN",
        help="fail unless NAME speeds up by at least MINx "
             "(repeatable)")
    parser.add_argument(
        "--max-regress", nargs="?", const=10.0, default=None,
        type=float, metavar="PCT",
        help="fail when any shared benchmark is more than PCT%% slower "
             "than the baseline (default 10 when given without a value)")
    parser.add_argument(
        "--alias", action="append", default=[], metavar="FROM=TO",
        help="rename candidate benchmarks whose name starts with FROM "
             "to start with TO before matching (repeatable) — compares "
             "a variant (e.g. BM_ServeNetworkQpsTraced) against its "
             "baseline-named twin")
    args = parser.parse_args(argv)

    if args.max_regress is not None and args.max_regress < 0:
        raise SystemExit("--max-regress must be >= 0")

    old = load_times(args.baseline)
    new = load_times(args.candidate)
    for alias in args.alias:
        source, _, target = alias.partition("=")
        if not target:
            raise SystemExit(f"--alias expects FROM=TO, got {alias!r}")
        renamed = {}
        for name, value in new.items():
            key = (target + name[len(source):]
                   if name.startswith(source) else name)
            if key in renamed:
                raise SystemExit(
                    f"--alias {alias!r} collides on {key!r}")
            renamed[key] = value
        new = renamed
    requirements = dict(parse_requirement(r) for r in args.require)

    shared = [name for name in old if name in new]
    width = max((len(name) for name in shared), default=4)
    print(f"{'benchmark':<{width}}  {'old':>10}  {'new':>10}  speedup")
    failures = []
    for name in shared:
        speedup = old[name] / new[name] if new[name] > 0 else float("inf")
        marker = ""
        if name in requirements:
            needed = requirements.pop(name)
            if speedup >= needed:
                marker = f"  (required >= {needed:g}x: ok)"
            else:
                marker = f"  (required >= {needed:g}x: FAIL)"
                failures.append(
                    f"{name}: {speedup:.2f}x < required {needed:g}x")
        if (args.max_regress is not None and
                new[name] > old[name] * (1.0 + args.max_regress / 100.0)):
            regress = (new[name] / old[name] - 1.0) * 100.0
            marker += f"  (regressed {regress:.1f}% > {args.max_regress:g}%)"
            failures.append(
                f"{name}: regressed {regress:.1f}% "
                f"(limit {args.max_regress:g}%)")
        print(f"{name:<{width}}  {format_ns(old[name]):>10}  "
              f"{format_ns(new[name]):>10}  {speedup:6.2f}x{marker}")

    speedups = [old[name] / new[name] for name in shared if new[name] > 0]
    if speedups:
        geomean = math.exp(sum(math.log(s) for s in speedups) /
                           len(speedups))
        print(f"\ngeomean speedup: {geomean:.2f}x "
              f"over {len(speedups)} shared benchmark"
              f"{'' if len(speedups) == 1 else 's'}")

    removed = sorted(set(old) - set(new))
    added = sorted(set(new) - set(old))
    if removed:
        print(f"\nremoved (baseline only): {', '.join(removed)}")
    if added:
        print(f"added (candidate only): {', '.join(added)}")

    for name, needed in requirements.items():
        failures.append(
            f"{name}: required >= {needed:g}x but absent from "
            "one of the reports")

    if failures:
        print("\nFAILED requirements:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
