/**
 * @file
 * qdel_serve: the online bound-prediction daemon.
 *
 * Ingests job lifecycle events (submit/start/done) and answers "what
 * wait bound do I face right now?" queries over one TCP port speaking
 * both the length-prefixed binary framing and HTTP/JSON (including a
 * Prometheus /metrics endpoint). State is durable under --state-dir:
 * every event is WAL-logged before it is applied, shards checkpoint
 * on a count trigger, and a killed daemon resumes byte-identical.
 *
 * Offline drive mode (--drive) ingests a trace file through the exact
 * same durable path without a listener — the kill/resume CI sweeps use
 * it, with --resume consulting the per-shard processed counts so a
 * restart skips exactly the events that survived the crash.
 *
 * Flags:
 *   --port N             listen on port N (0 = pick ephemeral; omit
 *                        the flag entirely for drive-only runs)
 *   --bind ADDR          bind address (default 127.0.0.1)
 *   --max-conns N        connection slots; further concurrent clients
 *                        are shed with 503/Status::Shed (default 64)
 *   --reactor-threads N  epoll event-loop threads; 0 picks the
 *                        hardware concurrency (the default)
 *   --io-timeout MS      budget for finishing a partial request or
 *                        response before the connection is reaped
 *                        (default 5000)
 *   --idle-timeout MS    how long a connection may idle between
 *                        requests (default 30000)
 *   --slow-request-us N  log requests that took longer than N
 *                        microseconds to handle, rate-limited per
 *                        reactor loop (0 = off, the default)
 *   --max-pending N      shed Submit events once a shard holds N
 *                        pending jobs (0 = unlimited, the default)
 *   --retry-after S      Retry-After advertised on shed events (1)
 *   --port-file FILE     write the bound port for scripts
 *   --state-dir DIR      durable per-shard checkpoints + WALs
 *   --shards N           registry shards (default 8)
 *   --method NAME        predictor method (default bmbp)
 *   --quantile Q         primary quantile to bound (default .95)
 *   --confidence C       confidence level (default .95)
 *   --refit-every N      refit a key every N observations (default 50)
 *   --train-obs N        finalize training after N observations (100)
 *   --checkpoint-every N auto-checkpoint a shard every N events (1000)
 *   --keep-snapshots N   retained snapshot generations (default 2)
 *   --sync-every N       fsync the WAL every N records (default 1;
 *                        0 defers syncs to checkpoints)
 *   --drive FILE         ingest a trace (.swf/.txt/.qtc source formats
 *                        accepted by the trace loader) and exit unless
 *                        --port is also given
 *   --machine NAME       key machine label for driven events
 *   --resume             with --drive: skip already-applied events
 *   --digest             print the registry state digest on exit
 *   --dump-bounds FILE   write every entry's bound grid (sorted)
 *   --lenient            skip malformed trace lines in --drive
 *   --metrics-out/--events-out/--stats-every: see other tools
 */

#include <csignal>
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "obs/metrics.hh"
#include "serve/server.hh"
#include "serve/service.hh"
#include "trace/trace.hh"
#include "trace/trace_loader.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/obs_cli.hh"

#include <cinttypes>
#include <cstdio>

namespace {

using namespace qdel;

volatile std::sig_atomic_t g_shutdown = 0;

void
onSignal(int)
{
    g_shutdown = 1;
}

void
usage(std::ostream &out)
{
    out << "usage: qdel_serve [--port=N] [--max-conns=64] "
           "[--reactor-threads=0]\n"
           "                  [--io-timeout=5000]\n"
           "                  [--idle-timeout=30000] [--max-pending=0]\n"
           "                  [--slow-request-us=0]\n"
           "                  [--state-dir=DIR] [--shards=N]\n"
           "                  [--method=bmbp] [--quantile=.95] "
           "[--confidence=.95]\n"
           "                  [--refit-every=50] [--train-obs=100]\n"
           "                  [--checkpoint-every=1000] "
           "[--keep-snapshots=2] [--sync-every=1]\n"
           "                  [--drive=TRACE [--machine=NAME] [--resume]]\n"
           "                  [--digest] [--dump-bounds=FILE] "
           "[--port-file=FILE]\n"
           "run with --help for the full flag reference in the file "
           "header\n";
}

/** Deterministic text dump of every entry's published bounds. */
bool
dumpBounds(const serve::BoundRegistry &registry, const std::string &path)
{
    std::FILE *out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
        warn("dump-bounds: cannot open ", path);
        return false;
    }
    for (const auto &view : registry.enumerate()) {
        std::fprintf(out, "%s|%s|%s obs=%" PRIu64 " hist=%" PRIu64
                          " version=%" PRIu64 "\n",
                     view.machine.c_str(), view.queue.c_str(),
                     serve::procBucketLabel(view.bucket).c_str(),
                     view.snapshot.observations, view.snapshot.historySize,
                     view.snapshot.version);
        for (size_t i = 0; i < serve::kGridCount; ++i) {
            std::fprintf(out, "  q=%.4f upper=%.17g lower=%.17g\n",
                         serve::kGridQuantiles[i], view.snapshot.upper[i],
                         view.snapshot.lower[i]);
        }
    }
    std::fclose(out);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv,
                    {"resume", "digest", "lenient", "verbose", "help"});
    if (cliValue(cli.getBool("help", false))) {
        usage(std::cout);
        return 0;
    }
    if (reportCliErrors(cli))
        return 1;
    setVerboseLogging(cliValue(cli.getBool("verbose", false)));

    // Validate every knob up front, through the library validate()
    // hooks, so a bad flag is a clean error instead of a late panic.
    serve::ServiceConfig config;
    config.registry.shards =
        static_cast<size_t>(cliValue(cli.getInt("shards", 8)));
    config.registry.method = cli.getString("method", "bmbp");
    config.registry.quantile = cliValue(cli.getDouble("quantile", 0.95));
    config.registry.confidence =
        cliValue(cli.getDouble("confidence", 0.95));
    const long long refit_every = cliValue(cli.getInt("refit-every", 50));
    const long long train_obs = cliValue(cli.getInt("train-obs", 100));
    if (refit_every < 1) {
        std::cerr << "error: --refit-every: must be >= 1, got "
                  << refit_every << "\n";
        return 1;
    }
    if (train_obs < 1) {
        std::cerr << "error: --train-obs: must be >= 1, got " << train_obs
                  << "\n";
        return 1;
    }
    config.registry.refitEvery = static_cast<uint64_t>(refit_every);
    config.registry.trainObservations = static_cast<uint64_t>(train_obs);
    config.stateDir = cli.getString("state-dir", "");
    const long long checkpoint_every =
        cliValue(cli.getInt("checkpoint-every", 1000));
    if (checkpoint_every < 1) {
        std::cerr << "error: --checkpoint-every: must be >= 1, got "
                  << checkpoint_every << " (checkpoints also happen at"
                  << " shutdown and on POST /checkpoint)\n";
        return 1;
    }
    config.checkpointEveryEvents = static_cast<size_t>(checkpoint_every);
    const long long keep_snapshots =
        cliValue(cli.getInt("keep-snapshots", 2));
    const long long sync_every = cliValue(cli.getInt("sync-every", 1));
    if (keep_snapshots < 1) {
        std::cerr << "error: --keep-snapshots: must be >= 1, got "
                  << keep_snapshots << "\n";
        return 1;
    }
    if (sync_every < 0) {
        std::cerr << "error: --sync-every: must be >= 0, got "
                  << sync_every << "\n";
        return 1;
    }
    config.keepSnapshots = static_cast<size_t>(keep_snapshots);
    config.syncEveryRecords = static_cast<size_t>(sync_every);
    const long long max_pending = cliValue(cli.getInt("max-pending", 0));
    if (max_pending < 0) {
        std::cerr << "error: --max-pending: must be >= 0, got "
                  << max_pending << "\n";
        return 1;
    }
    config.maxPendingPerShard = static_cast<uint64_t>(max_pending);
    const long long retry_after = cliValue(cli.getInt("retry-after", 1));
    if (retry_after < 1 || retry_after > 3600) {
        std::cerr << "error: --retry-after: must be in [1, 3600], got "
                  << retry_after << "\n";
        return 1;
    }
    config.shedRetryAfterSeconds = static_cast<uint32_t>(retry_after);
    if (auto valid = config.validate(); !valid.ok()) {
        std::cerr << "error: " << valid.error().str() << "\n";
        return 1;
    }

    serve::ServerOptions server_options;
    const bool serve_port = cli.has("port");
    server_options.port =
        static_cast<int>(cliValue(cli.getInt("port", 0)));
    server_options.bindAddress = cli.getString("bind", "127.0.0.1");
    const long long max_conns = cliValue(cli.getInt("max-conns", 64));
    const long long io_timeout = cliValue(cli.getInt("io-timeout", 5000));
    const long long idle_timeout =
        cliValue(cli.getInt("idle-timeout", 30000));
    if (max_conns < 1 || max_conns > 4096) {
        std::cerr << "error: --max-conns: must be in [1, 4096], got "
                  << max_conns << "\n";
        return 1;
    }
    if (io_timeout < 1 || idle_timeout < 1) {
        std::cerr << "error: --io-timeout/--idle-timeout: must be >= 1 ms"
                  << "\n";
        return 1;
    }
    const long long reactor_threads =
        cliValue(cli.getInt("reactor-threads", 0));
    if (reactor_threads < 0 || reactor_threads > 256) {
        std::cerr << "error: --reactor-threads: must be in [0, 256], got "
                  << reactor_threads << " (0 = hardware concurrency)\n";
        return 1;
    }
    const long long slow_request_us =
        cliValue(cli.getInt("slow-request-us", 0));
    if (slow_request_us < 0) {
        std::cerr << "error: --slow-request-us: must be >= 0, got "
                  << slow_request_us << " (0 disables the log)\n";
        return 1;
    }
    server_options.maxConnections = static_cast<size_t>(max_conns);
    server_options.reactorThreads = static_cast<size_t>(reactor_threads);
    server_options.ioTimeoutMs = static_cast<int>(io_timeout);
    server_options.idleTimeoutMs = static_cast<int>(idle_timeout);
    server_options.slowRequestUs = static_cast<int64_t>(slow_request_us);
    if (serve_port) {
        if (auto valid = server_options.validate(); !valid.ok()) {
            std::cerr << "error: " << valid.error().str() << "\n";
            return 1;
        }
    }

    const std::string drive_path = cli.getString("drive", "");
    const bool resume = cliValue(cli.getBool("resume", false));
    if (resume && drive_path.empty()) {
        std::cerr << "error: --resume requires --drive\n";
        return 1;
    }
    if (!serve_port && drive_path.empty()) {
        std::cerr << "error: nothing to do: give --port and/or --drive\n";
        usage(std::cerr);
        return 1;
    }

    ObsFlags obs_flags;
    if (!parseObsFlags(cli, &obs_flags))
        return 1;
    // A server's /metrics endpoint is part of its contract; collection
    // is always on for the daemon (benches measure the library path).
    obs::setEnabled(true);

    auto opened = serve::BoundService::open(config);
    if (!opened.ok()) {
        std::cerr << "error: " << opened.error().str() << "\n";
        return 1;
    }
    auto service = std::move(opened).value();
    for (size_t s = 0; s < service->recoveries().size(); ++s) {
        const auto &report = service->recoveries()[s];
        if (report.source != persist::RecoverySource::ColdStart ||
            report.walRecordsApplied > 0) {
            inform("shard ", s, ": recovered from ",
                   persist::recoverySourceName(report.source), ", ",
                   report.walRecordsApplied, " WAL records replayed");
        }
    }

    if (!drive_path.empty()) {
        trace::TraceLoadOptions load_options;
        load_options.mode = cliValue(cli.getBool("lenient", false))
                                ? trace::ParseMode::Lenient
                                : trace::ParseMode::Strict;
        auto loaded = trace::loadTrace(drive_path, load_options);
        if (!loaded.ok()) {
            std::cerr << "error: " << loaded.error().str() << "\n";
            return 1;
        }
        const std::string machine =
            cli.getString("machine", loaded.value().machine().empty()
                                         ? "local"
                                         : loaded.value().machine());
        const std::vector<trace::JobRecord> jobs(loaded.value().begin(),
                                                 loaded.value().end());
        const auto events = serve::eventsFromJobs(jobs, machine);

        // Resume fencing: the per-shard processed counts say exactly
        // how many of each shard's events survived the crash; skip
        // that prefix and the WAL continues as if never interrupted.
        std::vector<uint64_t> skip(service->shardCount(), 0);
        if (resume) {
            const auto stats = service->stats();
            skip = stats.processedPerShard;
        }
        uint64_t ingested = 0;
        uint64_t skipped = 0;
        for (const auto &event : events) {
            const size_t s = service->registry().shardForEvent(event);
            if (skip[s] > 0) {
                --skip[s];
                ++skipped;
                continue;
            }
            auto outcome = service->ingest(event);
            if (!outcome.ok()) {
                std::cerr << "error: ingest failed: "
                          << outcome.error().str() << "\n";
                return 2;
            }
            ++ingested;
        }
        inform("drive: ", ingested, " events ingested, ", skipped,
               " skipped as already applied");
        if (auto ok = service->checkpointAll(); !ok.ok()) {
            std::cerr << "error: final checkpoint: " << ok.error().str()
                      << "\n";
            return 2;
        }
    }

    if (serve_port) {
        auto server = serve::BoundServer::start(*service, server_options);
        if (!server.ok()) {
            std::cerr << "error: " << server.error().str() << "\n";
            return 1;
        }
        std::signal(SIGINT, onSignal);
        std::signal(SIGTERM, onSignal);
        const int port = server.value()->port();
        std::cout << "qdel_serve: listening on "
                  << server_options.bindAddress << ":" << port
                  << std::endl;
        const std::string port_file = cli.getString("port-file", "");
        if (!port_file.empty()) {
            std::FILE *out = std::fopen(port_file.c_str(), "w");
            if (out != nullptr) {
                std::fprintf(out, "%d\n", port);
                std::fclose(out);
            } else {
                warn("port-file: cannot open ", port_file);
            }
        }
        while (g_shutdown == 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
        inform("shutting down");
        server.value()->stop();
        if (auto ok = service->checkpointAll(); !ok.ok()) {
            std::cerr << "error: shutdown checkpoint: "
                      << ok.error().str() << "\n";
            return 2;
        }
    }

    const std::string dump_path = cli.getString("dump-bounds", "");
    if (!dump_path.empty() && !dumpBounds(service->registry(), dump_path))
        return 1;
    if (cliValue(cli.getBool("digest", false)))
        std::cout << "digest: " << service->digest() << "\n";

    writeObsOutputs(obs_flags);
    return 0;
}
