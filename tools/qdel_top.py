#!/usr/bin/env python3
"""Live terminal dashboard for a running qdel_serve daemon (stdlib
only).

Polls GET /metrics, /debug/calibration, /debug/shards and /debug/conns
every --interval seconds and renders:

  - request / query / shed / reap rates (deltas between polls of the
    Prometheus counters);
  - calibration summary: scored entries, failing entries, worst
    rolling-window coverage vs the requested confidence;
  - the worst-calibrated entries (lowest window coverage first), the
    live analogue of scanning the offline correct-fraction table for
    the rows that miss their confidence target;
  - per-shard entry/pending/WAL-depth counts and per-loop connection
    totals.

CI smoke: --once renders a single frame without clearing the screen
and exits 0, proving the endpoints are up and parseable:

    python3 tools/qdel_top.py --port-file serve.port --once
"""

import argparse
import json
import socket
import sys
import time


def http_get(host, port, target, timeout=10.0):
    sock = socket.create_connection((host, port), timeout=timeout)
    try:
        sock.sendall(
            f"GET {target} HTTP/1.1\r\nHost: {host}\r\n\r\n".encode())
        raw = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            raw += chunk
    finally:
        sock.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    code = int(head.split(b"\r\n", 1)[0].split()[1])
    if code != 200:
        raise RuntimeError(f"{target}: HTTP {code}")
    return body.decode()


def parse_metrics(text):
    """Prometheus text -> {name: value} for label-free samples (the obs
    layer only labels histogram buckets, which the dashboard skips)."""
    out = {}
    for line in text.splitlines():
        if not line or line.startswith("#") or "{" in line:
            continue
        parts = line.split()
        if len(parts) >= 2:
            try:
                out[parts[0]] = float(parts[1])
            except ValueError:
                pass
    return out


def fmt_rate(now, before, name, dt):
    if before is None or dt <= 0:
        return "-"
    delta = now.get(name, 0.0) - before.get(name, 0.0)
    return f"{delta / dt:.1f}/s"


def fmt_cov(value):
    return "-" if value is None or value < 0 else f"{value:.3f}"


def render(host, port, before, before_time, top_n):
    metrics = parse_metrics(http_get(host, port, "/metrics"))
    calib = json.loads(http_get(host, port, "/debug/calibration"))
    shards = json.loads(http_get(host, port, "/debug/shards"))
    conns = json.loads(http_get(host, port, "/debug/conns"))
    now_time = time.monotonic()
    dt = now_time - before_time if before_time else 0.0

    lines = []
    lines.append(
        f"qdel_top  {host}:{port}  "
        f"requests={metrics.get('qdel_serve_requests_total', 0):.0f}  "
        f"qps={fmt_rate(metrics, before, 'qdel_serve_requests_total', dt)}"
        f"  queries="
        f"{fmt_rate(metrics, before, 'qdel_serve_queries_total', dt)}"
        f"  shed={fmt_rate(metrics, before, 'qdel_serve_shed_total', dt)}"
        f"  reap={fmt_rate(metrics, before, 'qdel_serve_reaped_connections_total', dt)}"
        f"  slow={metrics.get('qdel_serve_slow_requests_total', 0):.0f}")
    lines.append(
        f"calibration  confidence={calib['confidence']:.3f}  "
        f"entries={calib['entries']}  scored={calib['scoredEntries']}  "
        f"failing={calib['failingEntries']}  "
        f"worst-coverage={fmt_cov(calib['worstCoverage'])}  "
        f"max-undercoverage={fmt_cov(calib['maxUndercoverage'])}")

    rows = [r for r in calib.get("rows", []) if r.get("windowCount", 0) > 0]
    rows.sort(key=lambda r: (r.get("windowCoverage") is None,
                             r.get("windowCoverage", 2.0)))
    if rows:
        lines.append("")
        lines.append("worst-calibrated entries (rolling window):")
        lines.append("  machine|queue|bucket            cover   window"
                     "  lifetime  p-value  flag")
        for row in rows[:top_n]:
            key = (f"{row['machine']}|{row['queue']}|"
                   f"{row['bucketLabel']}")
            lines.append(
                f"  {key:<32} {fmt_cov(row['windowCoverage']):>6}  "
                f"{row['windowCount']:>6}  "
                f"{fmt_cov(row['lifetimeCoverage']):>8}  "
                f"{row['pValue']:>7.1e}  "
                f"{'FAILING' if row['failing'] else 'ok':>7}")

    lines.append("")
    lines.append(f"shards (durable={shards['durable']}):")
    for row in shards.get("shards", []):
        lines.append(
            f"  shard {row['shard']:>3}: entries={row['entries']:<6} "
            f"pending={row['pending']:<6} applied={row['applied']:<8} "
            f"rejected={row['rejected']:<5} "
            f"wal-depth={row['walSinceCheckpoint']}")

    total_conns = sum(l.get("connCount", 0) for l in conns.get("loops", []))
    lines.append(
        f"conns: {total_conns} across {len(conns.get('loops', []))} "
        "loops")
    return "\n".join(lines), metrics, now_time


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int)
    parser.add_argument("--port-file",
                        help="read the port from this file (written by "
                             "qdel_serve --port-file)")
    parser.add_argument("--interval", type=float, default=2.0,
                        help="seconds between polls (default 2)")
    parser.add_argument("--top", type=int, default=10,
                        help="worst-calibrated entries shown (default 10)")
    parser.add_argument("--once", action="store_true",
                        help="render one frame and exit (CI smoke)")
    args = parser.parse_args()
    if args.port is None:
        if not args.port_file:
            parser.error("one of --port / --port-file is required")
        with open(args.port_file) as handle:
            args.port = int(handle.read().strip())

    before, before_time = None, None
    while True:
        frame, before, before_time = render(
            args.host, args.port, before, before_time, args.top)
        if args.once:
            print(frame)
            return 0
        # ANSI clear + home keeps the frame flicker-free without curses.
        sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
        sys.stdout.flush()
        time.sleep(args.interval)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except KeyboardInterrupt:
        sys.exit(0)
    except (RuntimeError, ConnectionError, OSError, ValueError,
            KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        sys.exit(1)
