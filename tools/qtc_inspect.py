#!/usr/bin/env python3
"""Inspect .qtc columnar trace images and .qtcs shard-set manifests.

Dumps the header (magic, version, options word, source stamp, job
count), the computed column offsets with their types, the string
section (site/machine/queue table, ingest accounting), and verifies
the trailing CRC-32 — the debugging companion to trace_cache.hh /
qtc_stream.hh and the corruption check CI runs on benchmark shard
sets.

Usage:
  qtc_inspect.py FILE...            # .qtc images and/or .qtcs manifests
  qtc_inspect.py --quiet FILE...    # only errors (CI mode)
  qtc_inspect.py --no-crc FILE...   # skip checksumming (fast listing)

Exit status: 0 when every file parses and every checked CRC matches,
1 otherwise.
"""

import argparse
import os
import struct
import sys
import zlib

HEADER_SIZE = 40
MAGIC = b"QTC1"
MANIFEST_MAGIC = "QTCS1"

# (name, element struct format, element size) in on-disk column order;
# 8-byte columns first keep every column start naturally aligned.
COLUMNS = [
    ("submit", "d", 8),
    ("wait", "d", 8),
    ("run", "d", 8),
    ("status", "q", 8),
    ("procs", "i", 4),
    ("queueId", "I", 4),
]


class Corrupt(Exception):
    pass


class Cursor:
    """Bounds-checked reader over the mapped image bytes."""

    def __init__(self, data, offset=0):
        self.data = data
        self.offset = offset

    def take(self, n, what):
        if self.offset + n > len(self.data):
            raise Corrupt(
                f"truncated: {what} needs {n} bytes at offset "
                f"{self.offset}, file has {len(self.data)}"
            )
        chunk = self.data[self.offset : self.offset + n]
        self.offset += n
        return chunk

    def u32(self, what):
        return struct.unpack("<I", self.take(4, what))[0]

    def u64(self, what):
        return struct.unpack("<Q", self.take(8, what))[0]

    def i64(self, what):
        return struct.unpack("<q", self.take(8, what))[0]

    def string(self, what):
        n = self.u32(what + " length")
        return self.take(n, what).decode("utf-8", errors="replace")


def inspect_qtc(path, check_crc=True, quiet=False):
    """Dump one .qtc image; raises Corrupt on structural damage."""
    with open(path, "rb") as f:
        data = f.read()
    if len(data) < HEADER_SIZE + 4:
        raise Corrupt(f"file too small for a .qtc header ({len(data)} bytes)")

    cur = Cursor(data)
    magic = cur.take(4, "magic")
    if magic != MAGIC:
        raise Corrupt(f"bad magic {magic!r} (want {MAGIC!r})")
    version = cur.u32("version")
    options = cur.u32("options")
    reserved = cur.u32("reserved")
    source_size = cur.u64("sourceSize")
    source_mtime = cur.i64("sourceMtime")
    job_count = cur.u64("jobCount")

    say = (lambda *a: None) if quiet else print
    say(f"{path}:")
    say(f"  header   magic=QTC1 version={version} options=0x{options:08x}"
        f" reserved={reserved}")
    say(f"  source   size={source_size} mtime_ns={source_mtime}")
    say(f"  jobs     {job_count}")

    offset = HEADER_SIZE
    say("  columns")
    for name, fmt, width in COLUMNS:
        say(f"    {name:8s} {fmt}{width * 8}[{job_count}]  "
            f"@{offset}  ({width * job_count} bytes, "
            f"aligned={'yes' if offset % width == 0 else 'NO'})")
        if offset % width != 0:
            raise Corrupt(f"column {name} misaligned at offset {offset}")
        offset += width * job_count

    cur = Cursor(data, offset)
    site = cur.string("site")
    machine = cur.string("machine")
    queue_count = cur.u32("queueNameCount")
    if queue_count > 1_000_000:
        raise Corrupt(f"implausible queue count {queue_count}")
    queues = [cur.string(f"queueName[{i}]") for i in range(queue_count)]
    say(f"  strings  site={site!r} machine={machine!r}")
    say(f"  queues   {queue_count}: " + ", ".join(repr(q) for q in queues))

    report_source = cur.string("report.source")
    total_lines = cur.u64("report.totalLines")
    comment_lines = cur.u64("report.commentLines")
    parsed = cur.u64("report.parsedRecords")
    malformed = cur.u64("report.malformedLines")
    filtered = cur.u64("report.filteredRecords")
    error_count = cur.u32("report.errorCount")
    if error_count > 1_000_000:
        raise Corrupt(f"implausible error count {error_count}")
    for i in range(error_count):
        cur.string(f"error[{i}].file")
        cur.u64(f"error[{i}].line")
        cur.string(f"error[{i}].field")
        cur.string(f"error[{i}].reason")
    say(f"  ingest   source={report_source!r} lines={total_lines}"
        f" comments={comment_lines} parsed={parsed}"
        f" malformed={malformed} filtered={filtered}"
        f" errors={error_count}")

    if cur.offset + 4 != len(data):
        raise Corrupt(
            f"trailing garbage: string section ends at {cur.offset}, "
            f"file holds {len(data)} bytes (want string end + 4)"
        )
    (stored_crc,) = struct.unpack("<I", data[-4:])
    if check_crc:
        computed = zlib.crc32(data[:-4]) & 0xFFFFFFFF
        if computed != stored_crc:
            raise Corrupt(
                f"CRC mismatch: stored 0x{stored_crc:08x}, "
                f"computed 0x{computed:08x}"
            )
        say(f"  crc      0x{stored_crc:08x} ok")
    else:
        say(f"  crc      0x{stored_crc:08x} (not verified)")
    return {"jobs": job_count, "queues": queues}


def inspect_manifest(path, check_crc=True, quiet=False):
    """Dump a .qtcs manifest and inspect each shard it references."""
    say = (lambda *a: None) if quiet else print
    with open(path, "r", encoding="utf-8") as f:
        lines = [line.rstrip("\n") for line in f]
    if not lines or lines[0] != MANIFEST_MAGIC:
        raise Corrupt(f"bad manifest magic (want {MANIFEST_MAGIC})")

    def field(index, key):
        if index >= len(lines) or not lines[index].startswith(key + "="):
            raise Corrupt(f"manifest line {index + 1}: expected {key}=")
        return lines[index][len(key) + 1 :]

    site = field(1, "site")
    machine = field(2, "machine")
    queue_count = int(field(3, "queues"))
    queues = lines[4 : 4 + queue_count]
    if len(queues) != queue_count:
        raise Corrupt("manifest truncated inside the queue table")
    row = 4 + queue_count
    shard_count = int(field(row, "shards"))
    say(f"{path}:")
    say(f"  site={site!r} machine={machine!r}")
    say(f"  queues   {queue_count}: " + ", ".join(repr(q) for q in queues))
    say(f"  shards   {shard_count}")

    base = os.path.dirname(path)
    total = 0
    per_queue = [0] * queue_count
    shards = []
    for i in range(shard_count):
        parts = lines[row + 1 + i].split()
        if len(parts) != 2 + queue_count:
            raise Corrupt(
                f"shard row {i}: want {2 + queue_count} columns, "
                f"got {len(parts)}"
            )
        jobs = int(parts[1])
        counts = [int(c) for c in parts[2:]]
        if sum(counts) != jobs:
            raise Corrupt(
                f"shard row {i}: per-queue counts sum to {sum(counts)}, "
                f"row says {jobs}"
            )
        say(f"    {parts[0]}  jobs={jobs}  per-queue={counts}")
        total += jobs
        per_queue = [a + b for a, b in zip(per_queue, counts)]
        shards.append((parts[0], jobs))
    declared_total = int(field(row + 1 + shard_count, "total"))
    if declared_total != total:
        raise Corrupt(
            f"manifest total={declared_total} but shard rows sum to {total}"
        )
    say(f"  total    {total}  per-queue={per_queue}")

    for name, jobs in shards:
        shard_path = os.path.join(base, name)
        info = inspect_qtc(shard_path, check_crc=check_crc, quiet=quiet)
        if info["jobs"] != jobs:
            raise Corrupt(
                f"{shard_path}: manifest says {jobs} jobs, "
                f"shard header says {info['jobs']}"
            )
        # Every shard's queue table must be a prefix of the manifest's
        # (global queue ids; see qtc_stream.hh).
        if info["queues"] != queues[: len(info["queues"])]:
            raise Corrupt(
                f"{shard_path}: queue table {info['queues']} is not a "
                f"prefix of the manifest's {queues}"
            )
    return {"jobs": total, "queues": queues}


def main():
    parser = argparse.ArgumentParser(
        description="Inspect .qtc images / .qtcs shard-set manifests"
    )
    parser.add_argument("files", nargs="+")
    parser.add_argument(
        "--no-crc", action="store_true", help="skip CRC verification"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="print errors only (CI mode)"
    )
    args = parser.parse_args()

    failed = 0
    for path in args.files:
        try:
            if path.endswith(".qtcs"):
                inspect_manifest(
                    path, check_crc=not args.no_crc, quiet=args.quiet
                )
            else:
                inspect_qtc(
                    path, check_crc=not args.no_crc, quiet=args.quiet
                )
            if args.quiet:
                print(f"{path}: ok")
        except (OSError, ValueError, Corrupt) as error:
            print(f"{path}: CORRUPT: {error}", file=sys.stderr)
            failed = 1
    return failed


if __name__ == "__main__":
    sys.exit(main())
