#!/usr/bin/env python3
"""Validate a Prometheus text-exposition file (the --metrics-out dump).

Checks the subset of the exposition format the obs layer emits:

  - metric names match [a-zA-Z_:][a-zA-Z0-9_:]*
  - every sample is preceded by # HELP and # TYPE lines for its family
    (a HELP/TYPE line arriving after the family's first sample is an
    error too)
  - TYPE is one of counter / gauge / histogram
  - counter sample names end in _total
  - histogram families expose _bucket{le=...}, _sum and _count; bucket
    counts are monotonically non-decreasing in le-order; the +Inf
    bucket equals _count
  - label names match [a-zA-Z_][a-zA-Z0-9_]*, label values only use
    the three legal escapes (\\\\, \\", \\n), and no label name repeats
    within one sample
  - no duplicate series: the label set is canonicalized (sorted by
    label name) before comparison, so a={x="1",y="2"} and
    a={y="2",x="1"} are correctly flagged as the same series
  - HELP text uses only the legal escapes (\\\\ and \\n)
  - sample values parse as floats

Optional requirements make CI assertions executable:

    tools/prom_lint.py m.prom \\
        --require qdel_rare_event_fired_total \\
        --require-nonzero qdel_replay_bound_hits_total

--require fails unless the named sample is present; --require-nonzero
additionally demands a value > 0.

Exit status: 0 when the file is well-formed and all requirements hold;
1 otherwise, with every problem listed on stderr.
"""

import argparse
import math
import re
import sys

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$")
_TYPES = {"counter", "gauge", "histogram"}
_LABEL_RE = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"')


def parse_labels(labels_text, lineno, problems):
    """Parse '{a="x",b="y"}' into a canonical (sorted) tuple of
    (name, value) pairs, reporting malformed label syntax, illegal
    escapes, and repeated label names. The canonical form is what makes
    duplicate-series detection independent of label order."""
    if not labels_text:
        return ()
    out = []
    rest = labels_text[1:-1]
    while rest:
        match = _LABEL_RE.match(rest)
        if match is None:
            problems.append(
                f"line {lineno}: malformed label in {labels_text!r}")
            break
        value = match.group("value")
        for escape in re.finditer(r"\\(.)", value):
            if escape.group(1) not in ("\\", '"', "n"):
                problems.append(
                    f"line {lineno}: illegal escape "
                    f"\\{escape.group(1)} in label value {value!r}")
        out.append((match.group("name"), value))
        rest = rest[match.end():]
        if rest.startswith(","):
            rest = rest[1:]
        elif rest:
            problems.append(
                f"line {lineno}: junk after label in {labels_text!r}")
            break
    names = [name for name, _ in out]
    if len(set(names)) != len(names):
        problems.append(
            f"line {lineno}: repeated label name in {labels_text!r}")
    return tuple(sorted(out))


def base_family(name):
    """Family a sample belongs to (strip histogram sample suffixes)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse_le(labels):
    match = re.search(r'le="([^"]*)"', labels or "")
    if match is None:
        return None
    text = match.group(1)
    return math.inf if text == "+Inf" else float(text)


def lint(path, require, require_nonzero):
    problems = []
    helps = {}
    types = {}
    samples = {}  # (name, canonical labels) -> value
    buckets = {}  # family -> list of (le, value)
    seen_families = set()  # families with at least one sample so far

    with open(path) as handle:
        lines = handle.read().splitlines()

    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 3:
                problems.append(f"line {lineno}: malformed HELP line")
                continue
            name = parts[2]
            if not _NAME_RE.match(name):
                problems.append(
                    f"line {lineno}: bad metric name in HELP: {name!r}")
            if name in helps:
                problems.append(
                    f"line {lineno}: duplicate HELP for {name}")
            if name in seen_families:
                problems.append(
                    f"line {lineno}: HELP for {name} after its samples")
            text = parts[3] if len(parts) > 3 else ""
            for escape in re.finditer(r"\\(.)", text):
                if escape.group(1) not in ("\\", "n"):
                    problems.append(
                        f"line {lineno}: illegal escape "
                        f"\\{escape.group(1)} in HELP for {name}")
            helps[name] = text
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                problems.append(f"line {lineno}: malformed TYPE line")
                continue
            name, kind = parts[2], parts[3]
            if kind not in _TYPES:
                problems.append(
                    f"line {lineno}: unknown TYPE {kind!r} for {name}")
            if name in types:
                problems.append(
                    f"line {lineno}: duplicate TYPE for {name}")
            if name in seen_families:
                problems.append(
                    f"line {lineno}: TYPE for {name} after its samples")
            types[name] = kind
            continue
        if line.startswith("#"):
            continue  # other comments are legal
        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        name = match.group("name")
        labels = match.group("labels") or ""
        if not _NAME_RE.match(name):
            problems.append(f"line {lineno}: bad metric name {name!r}")
        label_set = parse_labels(labels, lineno, problems)
        try:
            value = float(match.group("value"))
        except ValueError:
            problems.append(
                f"line {lineno}: non-numeric value for {name}: "
                f"{match.group('value')!r}")
            continue
        key = (name, label_set)
        if key in samples:
            problems.append(
                f"line {lineno}: duplicate series {name}{labels}")
        samples[key] = value

        family = base_family(name)
        seen_families.add(family)
        kind = types.get(family)
        if kind is None:
            problems.append(
                f"line {lineno}: sample {name} has no preceding "
                f"# TYPE {family}")
        if family not in helps:
            problems.append(
                f"line {lineno}: sample {name} has no preceding "
                f"# HELP {family}")
        if kind == "counter" and not name.endswith("_total"):
            problems.append(
                f"line {lineno}: counter sample {name} does not end "
                "in _total")
        if name.endswith("_bucket"):
            le = parse_le(labels)
            if le is None:
                problems.append(
                    f"line {lineno}: {name} bucket without le label")
            else:
                buckets.setdefault(family, []).append((le, value))

    for family, entries in sorted(buckets.items()):
        les = [le for le, _ in entries]
        if math.inf not in les:
            problems.append(f"{family}: histogram missing +Inf bucket")
        if les != sorted(les):
            problems.append(f"{family}: bucket le values out of order")
        values = [value for _, value in entries]
        if any(b < a for a, b in zip(values, values[1:])):
            problems.append(
                f"{family}: bucket counts are not monotonically "
                "non-decreasing")
        count = samples.get((family + "_count", ()))
        if count is None:
            problems.append(f"{family}: histogram missing _count sample")
        elif math.inf in les and entries[-1][1] != count:
            problems.append(
                f"{family}: +Inf bucket ({entries[-1][1]:g}) != _count "
                f"({count:g})")
        if (family + "_sum", ()) not in samples:
            problems.append(f"{family}: histogram missing _sum sample")

    by_name = {}
    for (name, _labels), value in samples.items():
        by_name.setdefault(name, []).append(value)
    for name in require:
        if name not in by_name:
            problems.append(f"required sample {name} is absent")
    for name in require_nonzero:
        if name not in by_name:
            problems.append(f"required sample {name} is absent")
        elif not any(value > 0 for value in by_name[name]):
            problems.append(f"required sample {name} is zero")

    return problems, len(samples)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("path", help="Prometheus text file to validate")
    parser.add_argument(
        "--require", action="append", default=[], metavar="NAME",
        help="fail unless sample NAME is present (repeatable)")
    parser.add_argument(
        "--require-nonzero", action="append", default=[], metavar="NAME",
        help="fail unless sample NAME is present and > 0 (repeatable)")
    args = parser.parse_args(argv)

    problems, count = lint(args.path, args.require, args.require_nonzero)
    if problems:
        print(f"{args.path}: {len(problems)} problem(s):", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    print(f"{args.path}: OK ({count} samples)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
