/**
 * @file
 * Tests for the worker pool behind the parallel evaluation engine and
 * the rare-event table build: future delivery, submission-order
 * collection, exception propagation, and thread-count resolution.
 */

#include <atomic>
#include <cstdlib>
#include <future>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/thread_pool.hh"

namespace qdel {
namespace {

TEST(ThreadPool, RunsSubmittedTasks)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    auto future = pool.submit([] { return 6 * 7; });
    EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SingleWorkerIsSequentialReference)
{
    // One worker runs tasks in submission order: the append sequence
    // observed is exactly the submit sequence.
    ThreadPool pool(1);
    std::vector<int> order;
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 64; ++i)
        futures.push_back(pool.submit([i, &order] { order.push_back(i); }));
    for (auto &future : futures)
        future.get();
    std::vector<int> expected(64);
    std::iota(expected.begin(), expected.end(), 0);
    EXPECT_EQ(order, expected);
}

TEST(ThreadPool, CollectingInSubmissionOrderIsDeterministic)
{
    // The determinism contract the bench tables rely on: regardless of
    // which worker runs which task, futures indexed by submission
    // order yield the per-task results in submission order.
    for (size_t workers : {1u, 2u, 8u}) {
        ThreadPool pool(workers);
        std::vector<std::future<int>> futures;
        for (int i = 0; i < 200; ++i)
            futures.push_back(pool.submit([i] { return i * i; }));
        for (int i = 0; i < 200; ++i)
            EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
    }
}

TEST(ThreadPool, AllWorkersParticipate)
{
    ThreadPool pool(4);
    std::atomic<int> running{0};
    std::atomic<int> peak{0};
    std::atomic<bool> release{false};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 4; ++i) {
        futures.push_back(pool.submit([&] {
            const int now = ++running;
            int expected = peak.load();
            while (expected < now &&
                   !peak.compare_exchange_weak(expected, now)) {
            }
            // Hold until every task observes the others (bounded spin
            // so a failure cannot hang the suite).
            for (int spin = 0; spin < 100000000 && !release.load();
                 ++spin) {
                if (peak.load() == 4)
                    release.store(true);
            }
            --running;
        }));
    }
    for (auto &future : futures)
        future.get();
    EXPECT_EQ(peak.load(), 4);
}

TEST(ThreadPool, PropagatesExceptions)
{
    ThreadPool pool(2);
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("task failed"); });
    auto good = pool.submit([] { return 1; });
    EXPECT_THROW(bad.get(), std::runtime_error);
    // A throwing task must not take its worker down with it.
    EXPECT_EQ(good.get(), 1);
}

TEST(ThreadPool, ExceptionMessagePreserved)
{
    ThreadPool pool(2);
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("observe(-1): negative"); });
    try {
        bad.get();
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &error) {
        EXPECT_STREQ(error.what(), "observe(-1): negative");
    }
}

TEST(ThreadPool, SingleWorkerSurvivesThrowingTask)
{
    // The deadlock-prone configuration: with one worker, a throwing
    // task that took its thread down would strand everything queued
    // behind it. Tasks after the thrower must still run.
    ThreadPool pool(1);
    auto bad = pool.submit([]() -> int { throw std::logic_error("boom"); });
    std::vector<std::future<int>> after;
    for (int i = 0; i < 32; ++i)
        after.push_back(pool.submit([i] { return i; }));
    EXPECT_THROW(bad.get(), std::logic_error);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(after[static_cast<size_t>(i)].get(), i);
}

TEST(ThreadPool, MixedThrowersAndNormalTasks)
{
    // Interleave failures with successes across every worker: each
    // future resolves to exactly its own task's outcome, failures
    // never leak into neighbouring results.
    ThreadPool pool(4);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 100; ++i) {
        futures.push_back(pool.submit([i]() -> int {
            if (i % 3 == 0)
                throw std::runtime_error("task " + std::to_string(i));
            return i * 2;
        }));
    }
    for (int i = 0; i < 100; ++i) {
        auto &future = futures[static_cast<size_t>(i)];
        if (i % 3 == 0) {
            try {
                future.get();
                FAIL() << "task " << i << " should have thrown";
            } catch (const std::runtime_error &error) {
                EXPECT_EQ(std::string(error.what()),
                          "task " + std::to_string(i));
            }
        } else {
            EXPECT_EQ(future.get(), i * 2);
        }
    }
}

TEST(ThreadPool, DestructorDrainsAfterDroppedThrowingFutures)
{
    // Callers sometimes fire-and-forget; exceptions parked in
    // abandoned futures must not wedge or crash pool teardown.
    std::atomic<int> completed{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i) {
            pool.submit([i, &completed]() {
                if (i % 2 == 0)
                    throw std::runtime_error("dropped");
                ++completed;
            });
            // Futures discarded immediately.
        }
    }
    EXPECT_EQ(completed.load(), 25);
}

TEST(ThreadPool, DestructorDrainsQueue)
{
    std::atomic<int> completed{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 100; ++i)
            pool.submit([&completed] { ++completed; });
        // No explicit wait: destruction must finish all queued work.
    }
    EXPECT_EQ(completed.load(), 100);
}

TEST(ThreadPool, ResolveThreadCount)
{
    EXPECT_EQ(ThreadPool::resolveThreadCount(3), 3u);
    EXPECT_GE(ThreadPool::resolveThreadCount(0), 1u);
    EXPECT_GE(ThreadPool::resolveThreadCount(-5), 1u);
}

TEST(ThreadPool, HonorsEnvironmentVariable)
{
    ::setenv("QDEL_THREADS", "3", 1);
    EXPECT_EQ(ThreadPool::defaultThreadCount(), 3u);
    ::setenv("QDEL_THREADS", "garbage", 1);
    EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
    ::unsetenv("QDEL_THREADS");
    EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
}

} // namespace
} // namespace qdel
