/**
 * @file
 * Unit tests for the console table renderer.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "util/table_printer.hh"

namespace qdel {
namespace {

TEST(TablePrinter, RendersAlignedTable)
{
    TablePrinter table("Table X. Demo");
    table.setHeader({"Machine", "Queue", "Frac"});
    table.addRow({"datastar", "normal", "0.95"});
    table.addRow({"llnl", "all", "0.97"});

    std::ostringstream os;
    table.print(os);
    const std::string text = os.str();

    EXPECT_NE(text.find("Table X. Demo"), std::string::npos);
    EXPECT_NE(text.find("| Machine"), std::string::npos);
    EXPECT_NE(text.find("| datastar"), std::string::npos);
    // Cells are padded to the widest entry in the column.
    EXPECT_NE(text.find("| llnl     |"), std::string::npos);
    EXPECT_EQ(table.rowCount(), 2u);
}

TEST(TablePrinter, CellFormatting)
{
    EXPECT_EQ(TablePrinter::cell(0.954, 2), "0.95");
    EXPECT_EQ(TablePrinter::cell(0.955, 2), "0.95"); // half-even via printf
    EXPECT_EQ(TablePrinter::cell(static_cast<long long>(1488)), "1488");
    EXPECT_EQ(TablePrinter::cellSci(0.0123, 2), "1.23e-02");
}

TEST(TablePrinter, EmphasisMarkers)
{
    EXPECT_EQ(TablePrinter::bold("0.95"), "[0.95]");
    EXPECT_EQ(TablePrinter::flagged("0.91"), "0.91*");
}

TEST(TablePrinterDeath, RowWidthMismatchPanics)
{
    TablePrinter table("t");
    table.setHeader({"a", "b"});
    EXPECT_DEATH(table.addRow({"only-one"}), "row width");
}

} // namespace
} // namespace qdel
