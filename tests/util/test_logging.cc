/**
 * @file
 * Tests for the logging helpers, focused on the thread-safety
 * contract: a log line emitted from one thread never appears with
 * another thread's output spliced into it mid-line.
 */

#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace qdel {
namespace {

TEST(Logging, InformIsSuppressedUnlessVerbose)
{
    setVerboseLogging(false);
    ::testing::internal::CaptureStderr();
    inform("should not appear");
    EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");

    setVerboseLogging(true);
    ::testing::internal::CaptureStderr();
    inform("value is ", 42);
    EXPECT_EQ(::testing::internal::GetCapturedStderr(),
              "info: value is 42\n");
    setVerboseLogging(false);
}

TEST(Logging, WarnAlwaysPrints)
{
    ::testing::internal::CaptureStderr();
    warn("watch out: ", 7);
    EXPECT_EQ(::testing::internal::GetCapturedStderr(),
              "warn: watch out: 7\n");
}

TEST(Logging, ConcurrentWritersNeverInterleaveMidLine)
{
    // Hammer the logger from many threads with messages long enough
    // that a char-by-char or multi-write implementation would splice
    // them, then check every captured line is exactly one intact
    // message. Payload content encodes (thread, sequence) so complete
    // delivery is also verified.
    constexpr int kThreads = 8;
    constexpr int kPerThread = 250;
    const std::string filler(64, 'x');

    setVerboseLogging(true);
    ::testing::internal::CaptureStderr();
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t, &filler] {
            for (int i = 0; i < kPerThread; ++i) {
                if (i % 2 == 0)
                    inform("T", t, " seq ", i, " ", filler, " end");
                else
                    warn("T", t, " seq ", i, " ", filler, " end");
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    const std::string captured =
        ::testing::internal::GetCapturedStderr();
    setVerboseLogging(false);

    const std::regex line_re("^(info|warn): T([0-9]+) seq ([0-9]+) " +
                             filler + " end$");
    std::set<std::pair<int, int>> seen;
    std::istringstream stream(captured);
    std::string line;
    size_t lines = 0;
    while (std::getline(stream, line)) {
        ++lines;
        std::smatch match;
        ASSERT_TRUE(std::regex_match(line, match, line_re))
            << "interleaved or corrupt line: " << line;
        seen.insert({std::stoi(match[2]), std::stoi(match[3])});
    }
    EXPECT_EQ(lines, static_cast<size_t>(kThreads) * kPerThread);
    EXPECT_EQ(seen.size(), static_cast<size_t>(kThreads) * kPerThread);
}

} // namespace
} // namespace qdel
