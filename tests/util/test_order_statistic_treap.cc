/**
 * @file
 * Unit and differential tests for the order-statistic treap that backs
 * BMBP's history window.
 */

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "stats/rng.hh"
#include "util/order_statistic_treap.hh"

namespace qdel {
namespace {

TEST(Treap, EmptyBasics)
{
    OrderStatisticTreap treap;
    EXPECT_EQ(treap.size(), 0u);
    EXPECT_TRUE(treap.empty());
    EXPECT_FALSE(treap.erase(1.0));
}

TEST(Treap, InsertAndSelect)
{
    OrderStatisticTreap treap;
    for (double v : {5.0, 1.0, 3.0, 2.0, 4.0})
        treap.insert(v);
    ASSERT_EQ(treap.size(), 5u);
    for (size_t k = 0; k < 5; ++k)
        EXPECT_DOUBLE_EQ(treap.kth(k), static_cast<double>(k + 1));
}

TEST(Treap, Duplicates)
{
    OrderStatisticTreap treap;
    treap.insert(2.0);
    treap.insert(2.0);
    treap.insert(1.0);
    ASSERT_EQ(treap.size(), 3u);
    EXPECT_DOUBLE_EQ(treap.kth(0), 1.0);
    EXPECT_DOUBLE_EQ(treap.kth(1), 2.0);
    EXPECT_DOUBLE_EQ(treap.kth(2), 2.0);
    EXPECT_TRUE(treap.erase(2.0));
    EXPECT_EQ(treap.size(), 2u);
    EXPECT_DOUBLE_EQ(treap.kth(1), 2.0);
}

TEST(Treap, EraseMissingValue)
{
    OrderStatisticTreap treap;
    treap.insert(1.0);
    EXPECT_FALSE(treap.erase(2.0));
    EXPECT_EQ(treap.size(), 1u);
}

TEST(Treap, CountLess)
{
    OrderStatisticTreap treap;
    for (double v : {1.0, 2.0, 2.0, 3.0})
        treap.insert(v);
    EXPECT_EQ(treap.countLess(2.0), 1u);
    EXPECT_EQ(treap.countLessEqual(2.0), 3u);
    EXPECT_EQ(treap.countLess(0.5), 0u);
    EXPECT_EQ(treap.countLessEqual(10.0), 4u);
}

TEST(Treap, Clear)
{
    OrderStatisticTreap treap;
    for (int i = 0; i < 100; ++i)
        treap.insert(i);
    treap.clear();
    EXPECT_TRUE(treap.empty());
    treap.insert(7.0);
    EXPECT_DOUBLE_EQ(treap.kth(0), 7.0);
}

TEST(Treap, MoveSemantics)
{
    OrderStatisticTreap a;
    a.insert(1.0);
    a.insert(2.0);
    OrderStatisticTreap b(std::move(a));
    EXPECT_EQ(b.size(), 2u);
    OrderStatisticTreap c;
    c = std::move(b);
    EXPECT_EQ(c.size(), 2u);
    EXPECT_DOUBLE_EQ(c.kth(1), 2.0);
}

/**
 * Differential test: random insert/erase/select mirrored against a
 * std::multiset reference over many operations.
 */
TEST(Treap, DifferentialAgainstMultiset)
{
    OrderStatisticTreap treap;
    std::multiset<double> reference;
    stats::Rng rng(12345);

    for (int step = 0; step < 20000; ++step) {
        const double value =
            static_cast<double>(rng.uniformInt(0, 200)) / 4.0;
        const int op = static_cast<int>(rng.uniformInt(0, 2));
        if (op == 0 || reference.empty()) {
            treap.insert(value);
            reference.insert(value);
        } else if (op == 1) {
            // Erase a single occurrence from both structures.
            auto it = reference.find(value);
            const bool erased_ref = it != reference.end();
            if (erased_ref)
                reference.erase(it);
            const bool erased = treap.erase(value);
            EXPECT_EQ(erased, erased_ref);
        } else {
            const size_t k = static_cast<size_t>(rng.uniformInt(
                0, static_cast<long long>(reference.size()) - 1));
            auto it = reference.begin();
            std::advance(it, static_cast<long>(k));
            ASSERT_DOUBLE_EQ(treap.kth(k), *it) << "at step " << step;
        }
        ASSERT_EQ(treap.size(), reference.size());
    }
}

/**
 * Duplicate-value erase under a sliding window — the exact operation
 * mix BmbpConfig::maxHistory produces. Real queue traces are full of
 * exact ties (zero-wait jobs all observe 0.0), and window trimming
 * erases the *chronologically* oldest value, which is almost never the
 * instance the structure would remove first. Erasing any one instance
 * of a tie must leave every order statistic of the survivors intact.
 */
TEST(Treap, DuplicateEraseUnderSlidingWindow)
{
    OrderStatisticTreap treap;
    std::multiset<double> reference;
    std::vector<double> window;  // chronological, like chronological_
    const size_t max_history = 59;
    stats::Rng rng(4242);

    for (int step = 0; step < 5000; ++step) {
        // ~half the observations are zero-wait ties.
        const double value =
            rng.bernoulli(0.5)
                ? 0.0
                : static_cast<double>(rng.uniformInt(1, 8));
        window.push_back(value);
        treap.insert(value);
        reference.insert(value);
        while (window.size() > max_history) {
            const double oldest = window.front();
            window.erase(window.begin());
            ASSERT_TRUE(treap.erase(oldest)) << "at step " << step;
            reference.erase(reference.find(oldest));
        }
        ASSERT_EQ(treap.size(), reference.size());
        if (step % 23 == 0) {
            size_t k = 0;
            for (double expected : reference)
                ASSERT_DOUBLE_EQ(treap.kth(k++), expected)
                    << "at step " << step;
        }
    }
}

/** Selection across the whole multiset enumerates sorted order. */
TEST(Treap, FullEnumerationSorted)
{
    OrderStatisticTreap treap;
    stats::Rng rng(99);
    std::vector<double> values;
    for (int i = 0; i < 2000; ++i) {
        const double v = rng.uniform(0.0, 1000.0);
        values.push_back(v);
        treap.insert(v);
    }
    std::sort(values.begin(), values.end());
    for (size_t k = 0; k < values.size(); ++k)
        ASSERT_DOUBLE_EQ(treap.kth(k), values[k]);
}

} // namespace
} // namespace qdel
