/**
 * @file
 * Tests for the sorted-block order-statistic multiset that backs the
 * predictor history windows: unit behaviour, duplicate semantics, the
 * bulk assign() used by BMBP's change-point trim, and differential
 * checks against both std::multiset and the original treap.
 */

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "stats/rng.hh"
#include "util/order_statistic_list.hh"
#include "util/order_statistic_treap.hh"

namespace qdel {
namespace {

TEST(OrderStatisticList, EmptyBasics)
{
    OrderStatisticList list;
    EXPECT_EQ(list.size(), 0u);
    EXPECT_TRUE(list.empty());
    EXPECT_FALSE(list.erase(1.0));
    EXPECT_EQ(list.countLess(5.0), 0u);
    EXPECT_EQ(list.countLessEqual(5.0), 0u);
}

TEST(OrderStatisticList, InsertAndSelect)
{
    OrderStatisticList list;
    for (double v : {5.0, 1.0, 3.0, 2.0, 4.0})
        list.insert(v);
    ASSERT_EQ(list.size(), 5u);
    for (size_t k = 0; k < 5; ++k)
        EXPECT_DOUBLE_EQ(list.kth(k), static_cast<double>(k + 1));
}

TEST(OrderStatisticList, DuplicatesEraseOneOccurrence)
{
    OrderStatisticList list;
    list.insert(2.0);
    list.insert(2.0);
    list.insert(1.0);
    ASSERT_EQ(list.size(), 3u);
    EXPECT_DOUBLE_EQ(list.kth(0), 1.0);
    EXPECT_DOUBLE_EQ(list.kth(1), 2.0);
    EXPECT_DOUBLE_EQ(list.kth(2), 2.0);
    EXPECT_TRUE(list.erase(2.0));
    EXPECT_EQ(list.size(), 2u);
    EXPECT_DOUBLE_EQ(list.kth(1), 2.0);
    EXPECT_TRUE(list.erase(2.0));
    EXPECT_FALSE(list.erase(2.0));
    EXPECT_EQ(list.size(), 1u);
}

TEST(OrderStatisticList, CountLess)
{
    OrderStatisticList list;
    for (double v : {1.0, 2.0, 2.0, 3.0})
        list.insert(v);
    EXPECT_EQ(list.countLess(2.0), 1u);
    EXPECT_EQ(list.countLessEqual(2.0), 3u);
    EXPECT_EQ(list.countLess(0.5), 0u);
    EXPECT_EQ(list.countLessEqual(10.0), 4u);
}

TEST(OrderStatisticList, AssignReplacesContents)
{
    OrderStatisticList list;
    for (int i = 0; i < 1000; ++i)
        list.insert(static_cast<double>(i));
    list.assign({3.0, 1.0, 2.0, 2.0});
    ASSERT_EQ(list.size(), 4u);
    EXPECT_DOUBLE_EQ(list.kth(0), 1.0);
    EXPECT_DOUBLE_EQ(list.kth(1), 2.0);
    EXPECT_DOUBLE_EQ(list.kth(2), 2.0);
    EXPECT_DOUBLE_EQ(list.kth(3), 3.0);
    list.assign({});
    EXPECT_TRUE(list.empty());
}

TEST(OrderStatisticList, Clear)
{
    OrderStatisticList list;
    for (int i = 0; i < 1000; ++i)
        list.insert(static_cast<double>(i % 13));
    list.clear();
    EXPECT_TRUE(list.empty());
    list.insert(7.0);
    EXPECT_DOUBLE_EQ(list.kth(0), 7.0);
}

TEST(OrderStatisticList, BlockSplitsPreserveOrderStatistics)
{
    // Push enough strictly increasing then decreasing values through
    // to force many block splits at both ends.
    OrderStatisticList list;
    std::vector<double> values;
    for (int i = 0; i < 5000; ++i) {
        const double v = static_cast<double>((i * 37) % 1000) +
                         static_cast<double>(i) / 10000.0;
        values.push_back(v);
        list.insert(v);
    }
    std::sort(values.begin(), values.end());
    ASSERT_EQ(list.size(), values.size());
    for (size_t k = 0; k < values.size(); k += 7)
        ASSERT_DOUBLE_EQ(list.kth(k), values[k]);
}

/**
 * Differential test against std::multiset, mirroring the treap's: the
 * block list must be observably identical under random insert / erase
 * / select, including the merge path (erase-heavy phases shrink blocks
 * below the merge threshold).
 */
TEST(OrderStatisticList, DifferentialAgainstMultiset)
{
    OrderStatisticList list;
    std::multiset<double> reference;
    stats::Rng rng(12345);

    for (int step = 0; step < 20000; ++step) {
        const double value =
            static_cast<double>(rng.uniformInt(0, 200)) / 4.0;
        // Bias toward erase in the second half to exercise merges.
        const int op = static_cast<int>(
            rng.uniformInt(0, step < 10000 ? 2 : 3));
        if (op == 0 || reference.empty()) {
            list.insert(value);
            reference.insert(value);
        } else if (op == 2) {
            const size_t k = static_cast<size_t>(rng.uniformInt(
                0, static_cast<long long>(reference.size()) - 1));
            auto it = reference.begin();
            std::advance(it, static_cast<long>(k));
            ASSERT_DOUBLE_EQ(list.kth(k), *it) << "at step " << step;
        } else {
            auto it = reference.find(value);
            const bool erased_ref = it != reference.end();
            if (erased_ref)
                reference.erase(it);
            EXPECT_EQ(list.erase(value), erased_ref);
        }
        ASSERT_EQ(list.size(), reference.size());
    }
}

/**
 * The list is a drop-in for the treap in the predictors: drive both
 * with an identical operation stream (including heavy duplicates and a
 * sliding-window erase pattern) and demand identical observable state.
 */
TEST(OrderStatisticList, DifferentialAgainstTreap)
{
    OrderStatisticList list;
    OrderStatisticTreap treap;
    std::vector<double> window;
    stats::Rng rng(777);

    for (int step = 0; step < 30000; ++step) {
        // Coarse values -> many exact duplicates, like zero-wait jobs.
        const double value =
            static_cast<double>(rng.uniformInt(0, 30)) * 0.5;
        window.push_back(value);
        list.insert(value);
        treap.insert(value);
        if (window.size() > 500) {
            const double oldest = window.front();
            window.erase(window.begin());
            ASSERT_TRUE(list.erase(oldest));
            ASSERT_TRUE(treap.erase(oldest));
        }
        ASSERT_EQ(list.size(), treap.size());
        if (step % 97 == 0) {
            for (size_t k = 0; k < list.size(); k += 13)
                ASSERT_DOUBLE_EQ(list.kth(k), treap.kth(k))
                    << "at step " << step;
        }
    }
}

} // namespace
} // namespace qdel
