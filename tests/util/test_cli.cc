/**
 * @file
 * Unit tests for the command-line flag parser.
 */

#include <gtest/gtest.h>

#include "util/cli.hh"

namespace qdel {
namespace {

CommandLine
parse(std::initializer_list<const char *> args,
      std::initializer_list<const char *> bool_flags = {})
{
    std::vector<const char *> argv = {"prog"};
    argv.insert(argv.end(), args.begin(), args.end());
    return CommandLine(static_cast<int>(argv.size()), argv.data(),
                       bool_flags);
}

TEST(CommandLine, KeyEqualsValue)
{
    auto cli = parse({"--seed=7", "--method=bmbp"});
    EXPECT_EQ(cli.getInt("seed", 0).value(), 7);
    EXPECT_EQ(cli.getString("method", ""), "bmbp");
}

TEST(CommandLine, KeySpaceValue)
{
    auto cli = parse({"--epoch", "300", "--quantile", "0.9"});
    EXPECT_EQ(cli.getInt("epoch", 0).value(), 300);
    EXPECT_DOUBLE_EQ(cli.getDouble("quantile", 0.0).value(), 0.9);
}

TEST(CommandLine, BooleanFlags)
{
    auto cli = parse({"--verbose", "--trim=false", "--fast=yes"});
    EXPECT_TRUE(cli.getBool("verbose", false).value());
    EXPECT_FALSE(cli.getBool("trim", true).value());
    EXPECT_TRUE(cli.getBool("fast", false).value());
    EXPECT_TRUE(cli.getBool("absent", true).value());
    EXPECT_FALSE(cli.getBool("absent", false).value());
}

TEST(CommandLine, Positional)
{
    auto cli = parse({"input.txt", "--k=1", "output.txt"});
    ASSERT_EQ(cli.positional().size(), 2u);
    EXPECT_EQ(cli.positional()[0], "input.txt");
    EXPECT_EQ(cli.positional()[1], "output.txt");
}

TEST(CommandLine, Defaults)
{
    auto cli = parse({});
    EXPECT_EQ(cli.getInt("n", 42).value(), 42);
    EXPECT_DOUBLE_EQ(cli.getDouble("x", 1.5).value(), 1.5);
    EXPECT_EQ(cli.getString("s", "dflt"), "dflt");
    EXPECT_FALSE(cli.has("anything"));
    EXPECT_TRUE(cli.errors().empty());
}

TEST(CommandLine, FlagFollowedByOption)
{
    // "--verbose --seed=3": verbose must not swallow "--seed=3".
    auto cli = parse({"--verbose", "--seed=3"});
    EXPECT_TRUE(cli.getBool("verbose", false).value());
    EXPECT_EQ(cli.getInt("seed", 0).value(), 3);
}

TEST(CommandLine, DeclaredFlagDoesNotSwallowPositional)
{
    // Regression: undeclared "--verbose out.csv" consumed the
    // positional as the flag's value. Declaring the flag prevents it.
    auto cli = parse({"--verbose", "out.csv"}, {"verbose"});
    EXPECT_TRUE(cli.getBool("verbose", false).value());
    ASSERT_EQ(cli.positional().size(), 1u);
    EXPECT_EQ(cli.positional()[0], "out.csv");
}

TEST(CommandLine, DeclaredFlagStillAcceptsEqualsValue)
{
    auto cli = parse({"--verbose=false", "out.csv"}, {"verbose"});
    EXPECT_FALSE(cli.getBool("verbose", true).value());
    ASSERT_EQ(cli.positional().size(), 1u);
}

TEST(CommandLine, UndeclaredOptionStillConsumesValue)
{
    // Backwards compatibility: "--epoch 300" keeps working without a
    // declaration.
    auto cli = parse({"--epoch", "300", "trace.txt"}, {"verbose"});
    EXPECT_EQ(cli.getInt("epoch", 0).value(), 300);
    ASSERT_EQ(cli.positional().size(), 1u);
    EXPECT_EQ(cli.positional()[0], "trace.txt");
}

TEST(CommandLine, DoubleDashEndsOptions)
{
    auto cli = parse({"--seed=1", "--", "--not-an-option", "file"});
    EXPECT_EQ(cli.getInt("seed", 0).value(), 1);
    ASSERT_EQ(cli.positional().size(), 2u);
    EXPECT_EQ(cli.positional()[0], "--not-an-option");
    EXPECT_EQ(cli.positional()[1], "file");
}

TEST(CommandLine, NegativeValuesConsumed)
{
    // A following token starting with a single dash is a value, not an
    // option.
    auto cli = parse({"--offset", "-5"});
    EXPECT_EQ(cli.getInt("offset", 0).value(), -5);
}

TEST(CommandLine, DuplicateOptionDiagnosed)
{
    auto cli = parse({"--seed=1", "--seed=2"});
    ASSERT_EQ(cli.errors().size(), 1u);
    EXPECT_EQ(cli.errors()[0].field, "--seed");
    EXPECT_NE(cli.errors()[0].reason.find("duplicate"),
              std::string::npos);
    // Last value wins for callers who ignore the diagnostic.
    EXPECT_EQ(cli.getInt("seed", 0).value(), 2);
}

TEST(CommandLine, MalformedValuesAreErrorsNotExits)
{
    auto cli = parse({"--seed=abc", "--rate=zz", "--flag=maybe"});
    {
        auto v = cli.getInt("seed", 0);
        ASSERT_FALSE(v.ok());
        EXPECT_EQ(v.error().field, "--seed");
        EXPECT_NE(v.error().reason.find("abc"), std::string::npos);
    }
    {
        auto v = cli.getDouble("rate", 0.0);
        ASSERT_FALSE(v.ok());
        EXPECT_EQ(v.error().field, "--rate");
    }
    {
        auto v = cli.getBool("flag", false);
        ASSERT_FALSE(v.ok());
        EXPECT_EQ(v.error().field, "--flag");
    }
}

} // namespace
} // namespace qdel
