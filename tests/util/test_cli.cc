/**
 * @file
 * Unit tests for the command-line flag parser.
 */

#include <gtest/gtest.h>

#include "util/cli.hh"

namespace qdel {
namespace {

CommandLine
parse(std::initializer_list<const char *> args)
{
    std::vector<const char *> argv = {"prog"};
    argv.insert(argv.end(), args.begin(), args.end());
    return CommandLine(static_cast<int>(argv.size()), argv.data());
}

TEST(CommandLine, KeyEqualsValue)
{
    auto cli = parse({"--seed=7", "--method=bmbp"});
    EXPECT_EQ(cli.getInt("seed", 0), 7);
    EXPECT_EQ(cli.getString("method", ""), "bmbp");
}

TEST(CommandLine, KeySpaceValue)
{
    auto cli = parse({"--epoch", "300", "--quantile", "0.9"});
    EXPECT_EQ(cli.getInt("epoch", 0), 300);
    EXPECT_DOUBLE_EQ(cli.getDouble("quantile", 0.0), 0.9);
}

TEST(CommandLine, BooleanFlags)
{
    auto cli = parse({"--verbose", "--trim=false", "--fast=yes"});
    EXPECT_TRUE(cli.getBool("verbose", false));
    EXPECT_FALSE(cli.getBool("trim", true));
    EXPECT_TRUE(cli.getBool("fast", false));
    EXPECT_TRUE(cli.getBool("absent", true));
    EXPECT_FALSE(cli.getBool("absent", false));
}

TEST(CommandLine, Positional)
{
    auto cli = parse({"input.txt", "--k=1", "output.txt"});
    ASSERT_EQ(cli.positional().size(), 2u);
    EXPECT_EQ(cli.positional()[0], "input.txt");
    EXPECT_EQ(cli.positional()[1], "output.txt");
}

TEST(CommandLine, Defaults)
{
    auto cli = parse({});
    EXPECT_EQ(cli.getInt("n", 42), 42);
    EXPECT_DOUBLE_EQ(cli.getDouble("x", 1.5), 1.5);
    EXPECT_EQ(cli.getString("s", "dflt"), "dflt");
    EXPECT_FALSE(cli.has("anything"));
}

TEST(CommandLine, FlagFollowedByOption)
{
    // "--verbose --seed=3": verbose must not swallow "--seed=3".
    auto cli = parse({"--verbose", "--seed=3"});
    EXPECT_TRUE(cli.getBool("verbose", false));
    EXPECT_EQ(cli.getInt("seed", 0), 3);
}

} // namespace
} // namespace qdel
