/**
 * @file
 * Unit tests for the CSV emitter.
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "util/csv_writer.hh"

namespace qdel {
namespace {

std::string
readAll(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

class CsvWriterTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "qdel_csv_test.csv";
    }

    void
    TearDown() override
    {
        std::remove(path_.c_str());
    }

    std::string path_;
};

TEST_F(CsvWriterTest, PlainRows)
{
    {
        CsvWriter writer(path_);
        ASSERT_TRUE(writer.ok());
        writer.writeRow(std::vector<std::string>{"time", "bound"});
        writer.writeRow(std::vector<double>{1.0, 2.5});
        writer.flush();
    }
    EXPECT_EQ(readAll(path_), "time,bound\n1,2.5\n");
}

TEST_F(CsvWriterTest, QuotesSpecialCharacters)
{
    {
        CsvWriter writer(path_);
        writer.writeRow(
            std::vector<std::string>{"a,b", "he said \"hi\"", "line\nbreak"});
        writer.flush();
    }
    EXPECT_EQ(readAll(path_),
              "\"a,b\",\"he said \"\"hi\"\"\",\"line\nbreak\"\n");
}

TEST_F(CsvWriterTest, TabDelimiter)
{
    {
        CsvWriter writer(path_, '\t');
        writer.writeRow(std::vector<std::string>{"x", "y,z"});
        writer.flush();
    }
    // The comma needs no quoting in TSV mode.
    EXPECT_EQ(readAll(path_), "x\ty,z\n");
}

TEST_F(CsvWriterTest, FullPrecisionDoubles)
{
    {
        CsvWriter writer(path_);
        writer.writeRow(std::vector<double>{0.1234567890123456789});
        writer.flush();
    }
    const std::string text = readAll(path_);
    double parsed = 0.0;
    ASSERT_EQ(std::sscanf(text.c_str(), "%lf", &parsed), 1);
    EXPECT_DOUBLE_EQ(parsed, 0.1234567890123456789);
}

TEST(CsvWriterBadPath, Reports)
{
    CsvWriter writer("/nonexistent-dir/xyz/file.csv");
    EXPECT_FALSE(writer.ok());
}

} // namespace
} // namespace qdel
