/**
 * @file
 * Unit tests for the string helpers.
 */

#include <limits>

#include <gtest/gtest.h>

#include "util/string_utils.hh"

namespace qdel {
namespace {

TEST(Trim, RemovesSurroundingWhitespace)
{
    EXPECT_EQ(trim("  hello  "), "hello");
    EXPECT_EQ(trim("\t\nx\r "), "x");
    EXPECT_EQ(trim("no-space"), "no-space");
}

TEST(Trim, EmptyAndAllWhitespace)
{
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   \t\n"), "");
}

TEST(Split, BasicFields)
{
    auto fields = split("a,b,c", ',');
    ASSERT_EQ(fields.size(), 3u);
    EXPECT_EQ(fields[0], "a");
    EXPECT_EQ(fields[2], "c");
}

TEST(Split, KeepsEmptyFieldsByDefault)
{
    auto fields = split("a,,c,", ',');
    ASSERT_EQ(fields.size(), 4u);
    EXPECT_EQ(fields[1], "");
    EXPECT_EQ(fields[3], "");
}

TEST(Split, DropsEmptyFieldsWhenAsked)
{
    auto fields = split("a,,c,", ',', /*keep_empty=*/false);
    ASSERT_EQ(fields.size(), 2u);
    EXPECT_EQ(fields[1], "c");
}

TEST(SplitWhitespace, RunsOfWhitespace)
{
    auto fields = splitWhitespace("  12\t 34 \n 56 ");
    ASSERT_EQ(fields.size(), 3u);
    EXPECT_EQ(fields[0], "12");
    EXPECT_EQ(fields[1], "34");
    EXPECT_EQ(fields[2], "56");
}

TEST(SplitWhitespace, EmptyInput)
{
    EXPECT_TRUE(splitWhitespace("").empty());
    EXPECT_TRUE(splitWhitespace(" \t ").empty());
}

TEST(ParseInt, ValidValues)
{
    EXPECT_EQ(parseInt("42").value(), 42);
    EXPECT_EQ(parseInt("-7").value(), -7);
    EXPECT_EQ(parseInt(" 1000 ").value(), 1000);
}

TEST(ParseInt, RejectsGarbage)
{
    EXPECT_FALSE(parseInt("12x").has_value());
    EXPECT_FALSE(parseInt("").has_value());
    EXPECT_FALSE(parseInt("1.5").has_value());
}

TEST(ParseDouble, ValidValues)
{
    EXPECT_DOUBLE_EQ(parseDouble("2.5").value(), 2.5);
    EXPECT_DOUBLE_EQ(parseDouble("-1e3").value(), -1000.0);
    EXPECT_DOUBLE_EQ(parseDouble("7").value(), 7.0);
}

TEST(ParseDouble, RejectsGarbage)
{
    EXPECT_FALSE(parseDouble("abc").has_value());
    EXPECT_FALSE(parseDouble("1.5.2").has_value());
    EXPECT_FALSE(parseDouble("").has_value());
}

TEST(StartsWith, Matches)
{
    EXPECT_TRUE(startsWith("--flag", "--"));
    EXPECT_FALSE(startsWith("-x", "--"));
    EXPECT_FALSE(startsWith("", "--"));
    EXPECT_TRUE(startsWith("abc", ""));
}

TEST(ToLower, Basic)
{
    EXPECT_EQ(toLower("BmBp"), "bmbp");
    EXPECT_EQ(toLower("123-X"), "123-x");
}

TEST(FormatDuration, Ranges)
{
    EXPECT_EQ(formatDuration(12), "12s");
    EXPECT_EQ(formatDuration(125), "2m 5s");
    EXPECT_EQ(formatDuration(3 * 3600 + 60 * 14), "3h 14m");
    EXPECT_EQ(formatDuration(2 * 86400 + 3 * 3600), "2d 3h");
}

TEST(FormatDuration, EdgeCases)
{
    EXPECT_EQ(formatDuration(0), "0s");
    EXPECT_EQ(formatDuration(-61), "-1m 1s");
    EXPECT_EQ(formatDuration(
                  std::numeric_limits<double>::infinity()),
              "inf");
    EXPECT_EQ(formatDuration(
                  -std::numeric_limits<double>::infinity()),
              "-inf");
    EXPECT_EQ(formatDuration(
                  std::numeric_limits<double>::quiet_NaN()),
              "nan");
    // Sub-minute values round to whole seconds.
    EXPECT_EQ(formatDuration(59.7), "1m 0s");
    EXPECT_EQ(formatDuration(59.4), "59s");
}

TEST(FormatDuration, HugeFiniteValuesClampInsteadOfOverflowing)
{
    // llround() is UB beyond long long's range; the clamp must keep
    // these finite monsters well-defined (exact text matters less than
    // not invoking UB, so only check the shape).
    const std::string huge = formatDuration(1e19);
    EXPECT_FALSE(huge.empty());
    EXPECT_NE(huge.find('d'), std::string::npos);
    EXPECT_EQ(formatDuration(std::numeric_limits<double>::max()),
              huge);
    const std::string negative = formatDuration(-1e19);
    ASSERT_FALSE(negative.empty());
    EXPECT_EQ(negative.front(), '-');
}

} // namespace
} // namespace qdel
