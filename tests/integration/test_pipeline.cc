/**
 * @file
 * Full-pipeline integration tests: the synthetic Table 1 suite and the
 * space-shared machine simulator both feed the replay evaluation, and
 * the paper's headline comparisons hold on the result.
 */

#include <gtest/gtest.h>

#include "core/rare_event.hh"
#include "sim/batch/batch_simulator.hh"
#include "sim/batch/job_generator.hh"
#include "sim/replay/evaluation.hh"
#include "trace/native_format.hh"
#include "trace/swf_format.hh"
#include "workload/site_catalog.hh"
#include "workload/synthesizer.hh"

#include <sstream>

namespace qdel {
namespace {

const core::RareEventTable &
sharedTable()
{
    static core::RareEventTable table(0.95, 0.05);
    return table;
}

core::PredictorOptions
options()
{
    core::PredictorOptions opt;
    opt.rareEventTable = &sharedTable();
    return opt;
}

TEST(Pipeline, BmbpCorrectOnRepresentativeQueues)
{
    // The paper's central claim (Table 3): BMBP reaches the advertised
    // 0.95 on every queue bar lanl/short. Smaller queues keep this
    // test fast; the full 32-queue sweep lives in bench/table3.
    for (const auto &[site, queue] :
         {std::pair{"sdsc", "express"}, std::pair{"paragon", "q256s"},
          std::pair{"lanl", "mediumd"}, std::pair{"datastar", "TGnormal"}}) {
        auto t = workload::synthesizeTrace(
            workload::findProfile(site, queue));
        auto cell = sim::evaluateTrace(t, "bmbp", options());
        EXPECT_TRUE(cell.correct(0.95))
            << site << "/" << queue << " got " << cell.correctFraction;
    }
}

TEST(Pipeline, LanlShortDefeatsEveryMethod)
{
    // The paper's one documented BMBP failure: the terminal delay
    // burst in lanl/short (Table 3 row with 0.91*).
    auto t = workload::synthesizeTrace(workload::findProfile("lanl",
                                                             "short"));
    auto bmbp = sim::evaluateTrace(t, "bmbp", options());
    auto logn = sim::evaluateTrace(t, "lognormal", options());
    EXPECT_FALSE(bmbp.correct(0.95));
    EXPECT_FALSE(logn.correct(0.95));
    EXPECT_GE(bmbp.correctFraction, 0.85);  // degraded, not destroyed
}

TEST(Pipeline, BackfillBimodalityBreaksLogNormal)
{
    // Strong backfill bimodality (lanl/shared) defeats the parametric
    // baseline in both variants while BMBP stays correct — the paper's
    // Table 3 signature for that queue (0.97 / 0.89* / 0.93*).
    auto t = workload::synthesizeTrace(workload::findProfile("lanl",
                                                             "shared"));
    auto bmbp = sim::evaluateTrace(t, "bmbp", options());
    auto logn = sim::evaluateTrace(t, "lognormal", options());
    EXPECT_TRUE(bmbp.correct(0.95));
    EXPECT_FALSE(logn.correct(0.95));
}

TEST(Pipeline, TrimmingRepairsNonstationarityFailures)
{
    // datastar/normal: NoTrim fails, Trim passes (0.93* -> 0.96).
    auto t = workload::synthesizeTrace(
        workload::findProfile("datastar", "normal"));
    auto notrim = sim::evaluateTrace(t, "lognormal", options());
    auto trim = sim::evaluateTrace(t, "lognormal-trim", options());
    EXPECT_FALSE(notrim.correct(0.95));
    EXPECT_TRUE(trim.correct(0.95));
}

TEST(Pipeline, MachineSimulatorFeedsReplay)
{
    // From first principles: generate jobs, run them through the
    // EASY-backfill machine, and predict the resulting waits. The
    // machine's own queuing process must also be BMBP-predictable.
    stats::Rng rng(17);
    sim::JobGeneratorConfig generator;
    generator.startTime = 0.0;
    generator.durationSeconds = 360.0 * 86400.0;
    sim::QueueSpec spec;
    spec.name = "normal";
    spec.jobsPerDay = 10.0;  // ~70% machine utilization
    spec.maxProcs = 64;
    spec.runMedianSeconds = 2.0 * 3600.0;
    spec.runLogSigma = 1.6;
    spec.maxRunSeconds = 24.0 * 3600.0;
    generator.queues = {spec};
    auto jobs = generateJobs(generator, rng);

    sim::BatchSimConfig config;
    config.totalProcs = 96;
    config.policy = "easy-backfill";
    sim::BatchSimulator machine(config);
    auto done = machine.run(jobs);
    auto t = sim::BatchSimulator::toTrace(done, "sim", "machine");

    auto cell = sim::evaluateTrace(t, "bmbp", options());
    EXPECT_GT(cell.evaluated, 1000u);
    EXPECT_GE(cell.correctFraction, 0.94);
}

TEST(Pipeline, PolicyChangeIsAbsorbedByBmbp)
{
    // An administrator flips the scheduler mid-trace (the paper's
    // nonstationarity story); BMBP adapts via trimming.
    stats::Rng rng(18);
    sim::JobGeneratorConfig generator;
    generator.startTime = 0.0;
    generator.durationSeconds = 360.0 * 86400.0;
    sim::QueueSpec spec;
    spec.name = "normal";
    spec.jobsPerDay = 8.0;  // stable under both policies
    spec.maxProcs = 64;
    spec.runMedianSeconds = 3.0 * 3600.0;
    spec.maxRunSeconds = 24.0 * 3600.0;
    generator.queues = {spec};
    auto jobs = generateJobs(generator, rng);

    sim::BatchSimConfig config;
    config.totalProcs = 96;
    config.policy = "easy-backfill";
    config.changes = {{60.0 * 86400.0, "fcfs"}};
    sim::BatchSimulator machine(config);
    auto t = sim::BatchSimulator::toTrace(machine.run(jobs), "sim", "m");

    auto cell = sim::evaluateTrace(t, "bmbp", options());
    EXPECT_GE(cell.correctFraction, 0.93);
}

TEST(Pipeline, TracesRoundTripThroughBothFormats)
{
    // Synthetic traces survive the native and SWF serializations and
    // produce identical evaluation results afterwards.
    auto t = workload::synthesizeTrace(
        workload::findProfile("paragon", "q256s"));

    std::ostringstream native_out;
    trace::writeNativeTrace(t, native_out);
    std::istringstream native_in(native_out.str());
    auto from_native = trace::parseNativeTrace(native_in).value();
    ASSERT_EQ(from_native.size(), t.size());

    std::ostringstream swf_out;
    trace::writeSwfTrace(t, swf_out);
    std::istringstream swf_in(swf_out.str());
    auto from_swf = trace::parseSwfTrace(swf_in).value();
    ASSERT_EQ(from_swf.size(), t.size());

    auto direct = sim::evaluateTrace(t, "bmbp", options());
    auto parsed = sim::evaluateTrace(from_native, "bmbp", options());
    // Waits are written with %.6g, so the accounting matches closely.
    EXPECT_NEAR(parsed.correctFraction, direct.correctFraction, 0.01);
}

} // namespace
} // namespace qdel
