/**
 * @file
 * End-to-end statistical property tests: the full replay pipeline must
 * deliver the paper's headline guarantee — BMBP's fraction of correct
 * predictions meets the advertised quantile — across distribution
 * shapes, autocorrelation levels, and quantile/confidence settings.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "sim/replay/evaluation.hh"
#include "stats/special_functions.hh"
#include "stats/rng.hh"

namespace qdel {
namespace {

/** Build an i.i.d.-marginal trace with tunable shape and rho. */
trace::Trace
makeTrace(int shape, double rho, size_t count, uint64_t seed)
{
    stats::Rng rng(seed);
    trace::Trace t;
    double z = rng.normal();
    const double innovation = std::sqrt(1.0 - rho * rho);
    for (size_t i = 0; i < count; ++i) {
        z = rho * z + innovation * rng.normal();
        double wait = 0.0;
        switch (shape) {
          case 0:  // log-normal
            wait = std::exp(3.0 + 2.0 * z);
            break;
          case 1:  // uniform-ish (probability integral transform)
            wait = 1000.0 * stats::normalCdf(z);
            break;
          case 2:  // Pareto via inverse CDF
            wait = std::pow(1.0 - stats::normalCdf(z), -1.0 / 1.2);
            break;
          default:  // bimodal backfill mixture (dominant fast mode)
            wait = rng.bernoulli(0.65) ? std::exp(1.0 + 0.8 * z)
                                       : std::exp(8.0 + 2.0 * z);
            break;
        }
        trace::JobRecord job;
        job.submitTime = 1000.0 + static_cast<double>(i) * 90.0;
        job.waitSeconds = wait;
        t.add(job);
    }
    return t;
}

struct CoverageCase
{
    const char *name;
    int shape;
    double rho;
};

class PipelineCoverage : public ::testing::TestWithParam<CoverageCase>
{
};

TEST_P(PipelineCoverage, BmbpMeetsAdvertisedQuantile)
{
    const auto &params = GetParam();
    auto t = makeTrace(params.shape, params.rho, 20000, 11);
    core::PredictorOptions options;
    auto cell = sim::evaluateTrace(t, "bmbp", options);
    // Stationary series: correctness must meet the quantile modulo
    // small-sample noise (the paper's own criterion after rounding).
    EXPECT_GE(cell.correctFraction, 0.945) << params.name;
    // And must not be uselessly conservative (paper Section 3's
    // "astronomically large guess" caveat).
    EXPECT_LE(cell.correctFraction, 0.995) << params.name;
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndRho, PipelineCoverage,
    ::testing::Values(CoverageCase{"lognormal_iid", 0, 0.0},
                      CoverageCase{"lognormal_rho06", 0, 0.6},
                      CoverageCase{"uniform_iid", 1, 0.0},
                      CoverageCase{"pareto_rho03", 2, 0.3},
                      CoverageCase{"bimodal_iid", 3, 0.0},
                      CoverageCase{"bimodal_rho05", 3, 0.5}),
    [](const auto &info) { return std::string(info.param.name); });

/** The guarantee holds for other quantile/confidence pairs too. */
class QuantileSweep
    : public ::testing::TestWithParam<std::pair<double, double>>
{
};

TEST_P(QuantileSweep, BmbpCoversConfiguredQuantile)
{
    const auto &[quantile, confidence] = GetParam();
    auto t = makeTrace(0, 0.3, 20000, 5);
    core::PredictorOptions options;
    options.quantile = quantile;
    options.confidence = confidence;
    auto cell = sim::evaluateTrace(t, "bmbp", options);
    EXPECT_GE(cell.correctFraction, quantile - 0.01)
        << "q=" << quantile << " C=" << confidence;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, QuantileSweep,
    ::testing::Values(std::make_pair(0.5, 0.95),
                      std::make_pair(0.75, 0.95),
                      std::make_pair(0.9, 0.9),
                      std::make_pair(0.95, 0.99),
                      std::make_pair(0.99, 0.95)));

/** Bimodal marginals break the parametric baseline but not BMBP —
 *  the paper's central comparison, reproduced on a controlled trace. */
TEST(PipelineContrast, BimodalBreaksLogNormalNotBmbp)
{
    auto t = makeTrace(3, 0.3, 30000, 21);
    core::PredictorOptions options;
    auto bmbp = sim::evaluateTrace(t, "bmbp", options);
    auto logn = sim::evaluateTrace(t, "lognormal", options);
    EXPECT_GE(bmbp.correctFraction, 0.945);
    EXPECT_LT(logn.correctFraction, 0.945);
}

/** Nonstationarity breaks the untrimmed baseline; trimming repairs it. */
TEST(PipelineContrast, TrendBreaksNoTrimTrimRecovers)
{
    stats::Rng rng(31);
    trace::Trace t;
    const size_t count = 30000;
    for (size_t i = 0; i < count; ++i) {
        // Log-normal with discrete upward level steps (the paper's
        // nonstationarity is administrator reconfiguration, i.e. change
        // points, not continuous drift).
        const double level =
            3.0 + 1.0 * static_cast<double>(i / (count / 4));
        trace::JobRecord job;
        job.submitTime = 1000.0 + static_cast<double>(i) * 90.0;
        job.waitSeconds = std::exp(level + 1.0 * rng.normal());
        t.add(job);
    }
    core::PredictorOptions options;
    auto notrim = sim::evaluateTrace(t, "lognormal", options);
    auto trim = sim::evaluateTrace(t, "lognormal-trim", options);
    auto bmbp = sim::evaluateTrace(t, "bmbp", options);
    EXPECT_LT(notrim.correctFraction, 0.945);
    EXPECT_GE(trim.correctFraction, 0.945);
    EXPECT_GE(bmbp.correctFraction, 0.945);
    EXPECT_GT(trim.trims, 0u);
}

} // namespace
} // namespace qdel
