/**
 * @file
 * Batched predictor API contract: observeBatch must be exactly
 * equivalent to element-wise observe() for every factory method
 * (including mid-batch change-point trims), and scoreBatch must
 * reproduce the replay scoring rule against the frozen bound.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/predictor_factory.hh"

namespace qdel {
namespace core {
namespace {

/** A wait series with a regime shift to provoke trims mid-batch. */
std::vector<double>
shiftedWaits(size_t n)
{
    std::vector<double> waits;
    waits.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        const double base = i < n / 2 ? 100.0 : 4000.0;
        waits.push_back(base + static_cast<double>((i * 37) % 173));
    }
    return waits;
}

class BatchApiTest : public ::testing::TestWithParam<const char *>
{
};

TEST_P(BatchApiTest, ObserveBatchMatchesScalarObserve)
{
    PredictorOptions options;
    auto scalar = makePredictor(GetParam(), options);
    auto batched = makePredictor(GetParam(), options);

    const auto waits = shiftedWaits(600);
    // Interleave refits so change-point detection runs against live
    // bounds in both instances, then feed the same tail through the
    // two entry points in uneven chunks.
    for (size_t i = 0; i < 200; ++i) {
        scalar->observe(waits[i]);
        batched->observe(waits[i]);
    }
    scalar->finalizeTraining();
    batched->finalizeTraining();
    scalar->refit();
    batched->refit();

    size_t i = 200;
    const size_t chunks[] = {1, 7, 64, 128, 200};
    for (size_t chunk : chunks) {
        for (size_t k = 0; k < chunk; ++k)
            scalar->observe(waits[i + k]);
        batched->observeBatch(waits.data() + i, chunk);
        i += chunk;
        scalar->refit();
        batched->refit();
        const auto a = scalar->upperBound();
        const auto b = batched->upperBound();
        ASSERT_EQ(a.finite(), b.finite());
        if (a.finite())
            ASSERT_EQ(a.value, b.value) << "after chunk " << chunk;
        ASSERT_EQ(scalar->historySize(), batched->historySize());
    }
}

TEST_P(BatchApiTest, ScoreBatchMatchesReplayScoringRule)
{
    PredictorOptions options;
    auto predictor = makePredictor(GetParam(), options);
    const auto waits = shiftedWaits(300);
    predictor->observeBatch(waits.data(), 200);
    predictor->finalizeTraining();
    predictor->refit();

    const auto bound = predictor->upperBound();
    std::vector<double> ratios(100, -1.0);
    const auto score =
        predictor->scoreBatch(waits.data() + 200, 100, ratios.data());

    size_t correct = 0;
    for (size_t i = 0; i < 100; ++i) {
        const double wait = waits[200 + i];
        if (!bound.finite()) {
            ++correct;
            continue;
        }
        if (bound.value >= wait)
            ++correct;
        EXPECT_EQ(ratios[i], wait / std::max(bound.value, 1e-9));
    }
    EXPECT_EQ(score.correct, correct);
    EXPECT_EQ(score.infinite, bound.finite() ? 0u : 100u);
}

TEST(BatchApi, ScoreBatchInfiniteBoundCountsAllCorrect)
{
    PredictorOptions options;
    auto predictor = makePredictor("bmbp", options);
    // No history at all: BMBP cannot produce a finite bound.
    predictor->refit();
    ASSERT_FALSE(predictor->upperBound().finite());
    const double waits[3] = {1.0, 2.0, 3.0};
    double ratios[3] = {-1.0, -1.0, -1.0};
    const auto score = predictor->scoreBatch(waits, 3, ratios);
    EXPECT_EQ(score.correct, 3u);
    EXPECT_EQ(score.infinite, 3u);
    EXPECT_EQ(ratios[0], -1.0);  // untouched
}

TEST_P(BatchApiTest, BoundGridMatchesElementWiseBoundAt)
{
    PredictorOptions options;
    auto predictor = makePredictor(GetParam(), options);
    const auto waits = shiftedWaits(300);
    for (double wait : waits)
        predictor->observe(wait);
    predictor->finalizeTraining();
    predictor->refit();

    const double qs[] = {0.25, 0.5, 0.75, 0.9, 0.95, 0.99};
    const size_t count = sizeof(qs) / sizeof(qs[0]);
    QuantileEstimate upper[count];
    QuantileEstimate lower[count];
    predictor->boundGrid(qs, count, upper, lower);
    for (size_t i = 0; i < count; ++i) {
        // Bit-exact: the grid is a snapshot of the frozen bound.
        EXPECT_EQ(upper[i].value, predictor->boundAt(qs[i], true).value)
            << GetParam() << " upper q=" << qs[i];
        EXPECT_EQ(lower[i].value, predictor->boundAt(qs[i], false).value)
            << GetParam() << " lower q=" << qs[i];
    }
    // The lower array is optional; a null pointer only fills upper.
    QuantileEstimate upper_only[count];
    predictor->boundGrid(qs, count, upper_only, nullptr);
    for (size_t i = 0; i < count; ++i)
        EXPECT_EQ(upper_only[i].value, upper[i].value);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, BatchApiTest,
                         ::testing::Values("bmbp", "lognormal",
                                           "lognormal-trim", "loguniform",
                                           "percentile"),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (char &c : name)
                                 if (c == '-')
                                     c = '_';
                             return name;
                         });

} // namespace
} // namespace core
} // namespace qdel
