/**
 * @file
 * Unit tests for the log-normal baseline predictor (paper Section 4.2).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "core/lognormal_predictor.hh"
#include "stats/rng.hh"
#include "stats/tolerance.hh"

namespace qdel {
namespace core {
namespace {

TEST(LogNormalPredictor, Names)
{
    LogNormalConfig trim_config;
    trim_config.trimmingEnabled = true;
    EXPECT_EQ(LogNormalPredictor().name(), "lognormal");
    EXPECT_EQ(LogNormalPredictor(trim_config).name(), "lognormal-trim");
}

TEST(LogNormalPredictor, NoBoundBelowTwoObservations)
{
    LogNormalPredictor predictor;
    predictor.refit();
    EXPECT_FALSE(predictor.upperBound().finite());
    predictor.observe(10.0);
    predictor.refit();
    EXPECT_FALSE(predictor.upperBound().finite());
    predictor.observe(20.0);
    predictor.refit();
    EXPECT_TRUE(predictor.upperBound().finite());
}

TEST(LogNormalPredictor, MatchesHandComputedBound)
{
    // Sample of logs {0, 2}: m = 1, s = sqrt(2); bound = exp(m + k s).
    LogNormalPredictor predictor;
    predictor.observe(std::exp(0.0));
    predictor.observe(std::exp(2.0));
    predictor.refit();
    const double k = stats::normalToleranceFactorExact(2, 0.95, 0.95);
    const double expected = std::exp(1.0 + k * std::sqrt(2.0));
    EXPECT_NEAR(predictor.upperBound().value, expected,
                1e-9 * expected);
}

TEST(LogNormalPredictor, EpsilonFloorsZeroWaits)
{
    // Waits of zero seconds are floored at epsilon (1 s -> log 0).
    LogNormalPredictor predictor;
    predictor.observe(0.0);
    predictor.observe(0.0);
    predictor.observe(std::exp(3.0));
    predictor.refit();
    // logs = {0, 0, 3}: finite, positive bound.
    ASSERT_TRUE(predictor.upperBound().finite());
    EXPECT_GT(predictor.upperBound().value, 1.0);
}

TEST(LogNormalPredictor, CoversTrueQuantileOnLogNormalData)
{
    LogNormalPredictor predictor;
    stats::Rng rng(12);
    for (int i = 0; i < 20000; ++i)
        predictor.observe(rng.logNormal(5.0, 2.0));
    predictor.refit();
    const double true_q95 = std::exp(5.0 + 1.6448536269514722 * 2.0);
    // With 20k samples the tolerance bound hugs the true quantile from
    // above.
    EXPECT_GT(predictor.upperBound().value, 0.93 * true_q95);
    EXPECT_LT(predictor.upperBound().value, 1.3 * true_q95);
}

TEST(LogNormalPredictor, TrimVariantAdaptsToLevelShift)
{
    LogNormalConfig config;
    config.trimmingEnabled = true;
    config.runThresholdOverride = 3;
    LogNormalPredictor predictor(config);
    stats::Rng rng(13);
    for (int i = 0; i < 2000; ++i)
        predictor.observe(rng.logNormal(2.0, 0.5));
    predictor.refit();
    const double before = predictor.upperBound().value;

    // Regime shift: waits jump by e^4.
    for (int i = 0; i < 10; ++i)
        predictor.observe(rng.logNormal(6.0, 0.5));
    EXPECT_GE(predictor.trimCount(), 1u);
    predictor.refit();
    EXPECT_GT(predictor.upperBound().value, before * 5.0);
    // History was cut to the minimal meaningful sample.
    EXPECT_LE(predictor.historySize(), 59u + 10u);
}

TEST(LogNormalPredictor, NoTrimVariantNeverTrims)
{
    LogNormalPredictor predictor;  // trimming off by default
    stats::Rng rng(14);
    for (int i = 0; i < 500; ++i)
        predictor.observe(rng.logNormal(2.0, 0.5));
    predictor.refit();
    for (int i = 0; i < 50; ++i)
        predictor.observe(1e12);
    EXPECT_EQ(predictor.trimCount(), 0u);
    EXPECT_EQ(predictor.historySize(), 550u);
}

TEST(LogNormalPredictor, LowerBoundBelowUpperBound)
{
    LogNormalPredictor predictor;
    stats::Rng rng(15);
    for (int i = 0; i < 1000; ++i)
        predictor.observe(rng.logNormal(3.0, 1.0));
    predictor.refit();
    const auto upper = predictor.boundAt(0.5, true);
    const auto lower = predictor.boundAt(0.5, false);
    ASSERT_TRUE(upper.finite());
    EXPECT_LT(lower.value, upper.value);
    // Both bracket the true median e^3.
    EXPECT_GT(upper.value, std::exp(3.0) * 0.9);
    EXPECT_LT(lower.value, std::exp(3.0) * 1.1);
}

TEST(LogNormalPredictor, BoundMonotoneInQuantile)
{
    LogNormalPredictor predictor;
    stats::Rng rng(16);
    for (int i = 0; i < 500; ++i)
        predictor.observe(rng.logNormal(1.0, 1.0));
    predictor.refit();
    EXPECT_LT(predictor.boundAt(0.5, true).value,
              predictor.boundAt(0.75, true).value);
    EXPECT_LT(predictor.boundAt(0.75, true).value,
              predictor.boundAt(0.95, true).value);
}

TEST(LogNormalPredictor, ConstantHistoryDegenerates)
{
    // Zero variance: the bound collapses to the constant itself.
    LogNormalPredictor predictor;
    for (int i = 0; i < 100; ++i)
        predictor.observe(50.0);
    predictor.refit();
    EXPECT_NEAR(predictor.upperBound().value, 50.0, 1e-3);
}

} // namespace
} // namespace core
} // namespace qdel
