/**
 * @file
 * Unit tests for the naive percentile baseline.
 */

#include <gtest/gtest.h>

#include "core/percentile_predictor.hh"

namespace qdel {
namespace core {
namespace {

TEST(Percentile, EmptyHistoryIsInfinite)
{
    PercentilePredictor predictor;
    predictor.refit();
    EXPECT_FALSE(predictor.upperBound().finite());
}

TEST(Percentile, NearestRankSelection)
{
    PercentilePredictor predictor(0.95);
    for (int i = 1; i <= 100; ++i)
        predictor.observe(static_cast<double>(i));
    predictor.refit();
    // ceil(.95 * 100) = 95th smallest.
    EXPECT_DOUBLE_EQ(predictor.upperBound().value, 95.0);
}

TEST(Percentile, SlidingWindow)
{
    PercentilePredictor predictor(0.5, /*max_history=*/10);
    for (int i = 1; i <= 100; ++i)
        predictor.observe(static_cast<double>(i));
    EXPECT_EQ(predictor.historySize(), 10u);
    predictor.refit();
    // Window holds 91..100; median rank ceil(.5*10)=5 -> 95.
    EXPECT_DOUBLE_EQ(predictor.upperBound().value, 95.0);
}

TEST(Percentile, BoundAtIgnoresSide)
{
    PercentilePredictor predictor(0.95);
    for (int i = 1; i <= 10; ++i)
        predictor.observe(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(predictor.boundAt(0.5, true).value,
                     predictor.boundAt(0.5, false).value);
    EXPECT_DOUBLE_EQ(predictor.boundAt(0.1, true).value, 1.0);
    EXPECT_DOUBLE_EQ(predictor.boundAt(1.0, true).value, 10.0);
}

TEST(Percentile, NoConfidenceMargin)
{
    // Unlike BMBP, the naive percentile of a tiny sample exists but
    // carries no guarantee — it returns the max of 3 observations for
    // q = .95 instead of refusing.
    PercentilePredictor predictor(0.95);
    predictor.observe(1.0);
    predictor.observe(2.0);
    predictor.observe(3.0);
    predictor.refit();
    EXPECT_DOUBLE_EQ(predictor.upperBound().value, 3.0);
}

} // namespace
} // namespace core
} // namespace qdel
