/**
 * @file
 * Unit tests for the BMBP predictor: order-statistic bound selection,
 * minimum-history behaviour, change-point trimming, and the on-demand
 * quantile spectrum API.
 */

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/bmbp_predictor.hh"
#include "stats/quantile_bounds.hh"
#include "stats/rng.hh"

namespace qdel {
namespace core {
namespace {

TEST(Bmbp, NoBoundBelowMinimumHistory)
{
    BmbpPredictor predictor;
    EXPECT_EQ(predictor.minimumHistory(), 59u);
    for (int i = 0; i < 58; ++i)
        predictor.observe(static_cast<double>(i));
    predictor.refit();
    EXPECT_FALSE(predictor.upperBound().finite());

    predictor.observe(58.0);
    predictor.refit();
    ASSERT_TRUE(predictor.upperBound().finite());
    // With exactly 59 observations the bound is the sample maximum.
    EXPECT_DOUBLE_EQ(predictor.upperBound().value, 58.0);
}

TEST(Bmbp, BoundEqualsIndexedOrderStatistic)
{
    BmbpConfig config;
    config.trimmingEnabled = false;
    BmbpPredictor predictor(config);
    stats::Rng rng(8);
    std::vector<double> sample;
    for (int i = 0; i < 500; ++i) {
        const double wait = rng.logNormal(4.0, 2.0);
        sample.push_back(wait);
        predictor.observe(wait);
    }
    predictor.refit();
    std::sort(sample.begin(), sample.end());
    const auto idx = stats::upperBoundIndex(sample.size(), 0.95, 0.95);
    ASSERT_TRUE(idx.has_value());
    EXPECT_DOUBLE_EQ(predictor.upperBound().value, sample[*idx - 1]);
}

TEST(Bmbp, CachedBetweenRefits)
{
    BmbpConfig config;
    config.trimmingEnabled = false;
    BmbpPredictor predictor(config);
    for (int i = 0; i < 100; ++i)
        predictor.observe(i);
    predictor.refit();
    const double before = predictor.upperBound().value;
    for (int i = 0; i < 100; ++i)
        predictor.observe(1e6 + i);
    EXPECT_DOUBLE_EQ(predictor.upperBound().value, before);
    predictor.refit();
    EXPECT_GT(predictor.upperBound().value, before);
}

TEST(Bmbp, TrimsAfterRunOfExceedances)
{
    BmbpConfig config;
    config.runThresholdOverride = 3;
    BmbpPredictor predictor(config);
    for (int i = 0; i < 500; ++i)
        predictor.observe(10.0 + 0.001 * i);
    predictor.refit();
    const double bound = predictor.upperBound().value;
    ASSERT_LT(bound, 100.0);

    predictor.observe(1000.0);
    predictor.observe(1000.0);
    EXPECT_EQ(predictor.trimCount(), 0u);
    EXPECT_EQ(predictor.currentRun(), 2);
    predictor.observe(1000.0);
    EXPECT_EQ(predictor.trimCount(), 1u);
    EXPECT_EQ(predictor.historySize(), predictor.minimumHistory());
    // The post-trim bound reflects the new regime immediately.
    predictor.refit();
    EXPECT_GE(predictor.upperBound().value, 1000.0);
}

TEST(Bmbp, RunResetsOnCoveredObservation)
{
    BmbpConfig config;
    config.runThresholdOverride = 3;
    BmbpPredictor predictor(config);
    for (int i = 0; i < 200; ++i)
        predictor.observe(10.0);
    predictor.refit();
    predictor.observe(1000.0);
    predictor.observe(1000.0);
    predictor.observe(5.0);  // covered: run resets
    predictor.observe(1000.0);
    predictor.observe(1000.0);
    EXPECT_EQ(predictor.trimCount(), 0u);
}

TEST(Bmbp, TrimmingDisabled)
{
    BmbpConfig config;
    config.trimmingEnabled = false;
    BmbpPredictor predictor(config);
    for (int i = 0; i < 200; ++i)
        predictor.observe(10.0);
    predictor.refit();
    for (int i = 0; i < 50; ++i)
        predictor.observe(1e9);
    EXPECT_EQ(predictor.trimCount(), 0u);
    EXPECT_EQ(predictor.historySize(), 250u);
}

TEST(Bmbp, MaxHistoryWindow)
{
    BmbpConfig config;
    config.maxHistory = 100;
    config.trimmingEnabled = false;
    BmbpPredictor predictor(config);
    for (int i = 0; i < 1000; ++i)
        predictor.observe(static_cast<double>(i));
    EXPECT_EQ(predictor.historySize(), 100u);
    predictor.refit();
    // Only the last 100 values (900..999) remain.
    EXPECT_GE(predictor.upperBound().value, 900.0);
}

TEST(Bmbp, FinalizeTrainingPicksThresholdFromTable)
{
    RareEventTable table(0.95, 0.05);
    BmbpConfig config;
    BmbpPredictor predictor(config, &table);
    EXPECT_EQ(predictor.runThreshold(), 3);  // default before training

    // Strongly autocorrelated training history -> larger threshold.
    stats::Rng rng(4);
    double z = 0.0;
    for (int i = 0; i < 5000; ++i) {
        z = 0.9 * z + std::sqrt(1.0 - 0.81) * rng.normal();
        predictor.observe(std::exp(z));
    }
    predictor.finalizeTraining();
    // The exp() transform shrinks the *linear* autocorrelation of the
    // waits below the latent 0.9, so expect a threshold strictly above
    // the i.i.d. value but no larger than the rho = 0.9 entry.
    EXPECT_GT(predictor.runThreshold(), 3);
    EXPECT_LE(predictor.runThreshold(), table.threshold(0.9));
}

TEST(Bmbp, ThresholdOverrideWinsOverTable)
{
    BmbpConfig config;
    config.runThresholdOverride = 7;
    BmbpPredictor predictor(config);
    for (int i = 0; i < 100; ++i)
        predictor.observe(i);
    predictor.finalizeTraining();
    EXPECT_EQ(predictor.runThreshold(), 7);
}

TEST(Bmbp, BoundAtQuantileSpectrum)
{
    BmbpConfig config;
    config.trimmingEnabled = false;
    BmbpPredictor predictor(config);
    for (int i = 1; i <= 1000; ++i)
        predictor.observe(static_cast<double>(i));
    predictor.refit();

    const auto median_upper = predictor.boundAt(0.5, true);
    const auto median_lower = predictor.boundAt(0.5, false);
    ASSERT_TRUE(median_upper.finite());
    // Upper and lower bounds bracket the true median (500.5).
    EXPECT_GT(median_upper.value, 500.0);
    EXPECT_LT(median_lower.value, 501.0);
    EXPECT_LT(median_upper.value, 560.0);
    EXPECT_GT(median_lower.value, 440.0);

    // Spectrum is monotone in q for upper bounds.
    EXPECT_LT(predictor.boundAt(0.25, true).value,
              predictor.boundAt(0.75, true).value);
}

TEST(Bmbp, EmptyHistoryBounds)
{
    BmbpPredictor predictor;
    predictor.refit();
    EXPECT_FALSE(predictor.upperBound().finite());
    EXPECT_DOUBLE_EQ(predictor.boundAt(0.5, false).value, 0.0);
}

TEST(Bmbp, Name)
{
    EXPECT_EQ(BmbpPredictor().name(), "bmbp");
}

TEST(Bmbp, MaxHistorySlidingWindowWithDuplicateWaits)
{
    // maxHistory trims the *chronologically* oldest observation while
    // the sorted view holds many exact duplicates (zero-wait jobs).
    // The window content, and therefore the bound, must track the last
    // maxHistory observations exactly.
    BmbpConfig config;
    config.trimmingEnabled = false;
    config.maxHistory = 100;
    BmbpPredictor predictor(config);

    stats::Rng rng(2024);
    std::vector<double> window;
    for (int i = 0; i < 3000; ++i) {
        const double wait =
            rng.bernoulli(0.4)
                ? 0.0  // zero-wait tie, the common duplicate
                : static_cast<double>(rng.uniformInt(1, 50));
        predictor.observe(wait);
        window.push_back(wait);
        if (window.size() > config.maxHistory)
            window.erase(window.begin());
    }
    ASSERT_EQ(predictor.historySize(), config.maxHistory);

    // The bound equals the k-th smallest of the reference window for
    // the exact-binomial index at n = 100.
    predictor.refit();
    std::vector<double> sorted_window = window;
    std::sort(sorted_window.begin(), sorted_window.end());
    const auto index = stats::upperBoundIndex(window.size(), 0.95, 0.95);
    ASSERT_TRUE(index.has_value());
    EXPECT_DOUBLE_EQ(predictor.upperBound().value,
                     sorted_window[*index - 1]);
}

TEST(Bmbp, MaxHistoryInteractsWithChangePointTrimming)
{
    // Both erasure paths active at once: the sliding window erases
    // oldest-first among duplicates while change-point trims rebuild
    // the sorted view wholesale. History size must never exceed the
    // cap and the predictor must stay self-consistent.
    BmbpConfig config;
    config.maxHistory = 200;
    config.runThresholdOverride = 3;
    BmbpPredictor predictor(config);

    stats::Rng rng(77);
    for (int i = 0; i < 2000; ++i) {
        // Level shift at 1000 triggers trims on top of the window.
        const double scale = i < 1000 ? 1.0 : 40.0;
        const double wait =
            rng.bernoulli(0.3) ? 0.0 : scale * rng.uniform(0.5, 2.0);
        predictor.observe(wait);
        if (i % 50 == 0)
            predictor.refit();
        ASSERT_LE(predictor.historySize(), config.maxHistory);
    }
    EXPECT_GE(predictor.trimCount(), 1u);
    predictor.refit();
    EXPECT_TRUE(predictor.upperBound().finite());
}

TEST(Bmbp, TwoSidedInterval)
{
    // Paper Section 3: the machinery extends to two-sided intervals.
    BmbpConfig config;
    config.trimmingEnabled = false;
    BmbpPredictor predictor(config);
    for (int i = 1; i <= 2000; ++i)
        predictor.observe(static_cast<double>(i));
    predictor.refit();
    auto [lower, upper] = predictor.interval(0.5);
    ASSERT_TRUE(lower.finite());
    ASSERT_TRUE(upper.finite());
    // The interval brackets the true median (1000.5) and is tight on
    // a 2000-point sample.
    EXPECT_LT(lower.value, 1000.5);
    EXPECT_GT(upper.value, 1000.5);
    EXPECT_LT(upper.value - lower.value, 120.0);
}

TEST(Bmbp, IntervalDegeneratesGracefullyOnTinySamples)
{
    BmbpPredictor predictor;
    predictor.observe(1.0);
    auto [lower, upper] = predictor.interval(0.95);
    // A single observation is already a valid 95% *lower* bound for
    // the .95 quantile (it lies below it with probability .95), but
    // no finite upper bound exists below n = 59.
    EXPECT_DOUBLE_EQ(lower.value, 1.0);
    EXPECT_FALSE(upper.finite());
}

} // namespace
} // namespace core
} // namespace qdel
