/**
 * @file
 * Tests for the rare-event run-length calibration: the i.i.d. paper
 * value, monotonicity in autocorrelation, and agreement between the
 * quadrature and the paper's Monte Carlo formulation.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "core/rare_event.hh"

namespace qdel {
namespace core {
namespace {

TEST(RunContinuation, IidMatchesClosedForm)
{
    // Independent data: P[next exceeds | current exceeds] = 1 - q.
    EXPECT_NEAR(runContinuationProbability(0.0, 0.95, 1), 0.05, 1e-4);
    EXPECT_NEAR(runContinuationProbability(0.0, 0.95, 2), 0.0025, 1e-5);
    EXPECT_NEAR(runContinuationProbability(0.0, 0.9, 1), 0.10, 1e-4);
}

TEST(RunContinuation, ExtraZeroIsCertain)
{
    EXPECT_DOUBLE_EQ(runContinuationProbability(0.5, 0.95, 0), 1.0);
}

TEST(RunContinuation, MonotoneInRho)
{
    // Positive dependence makes runs more likely.
    double previous = 0.0;
    for (double rho : {0.0, 0.2, 0.4, 0.6, 0.8}) {
        const double p = runContinuationProbability(rho, 0.95, 2);
        EXPECT_GE(p, previous) << "rho=" << rho;
        previous = p;
    }
}

TEST(RunContinuation, MonotoneDecreasingInRunLength)
{
    for (double rho : {0.0, 0.5, 0.8}) {
        double previous = 1.0;
        for (int extra = 1; extra <= 6; ++extra) {
            const double p =
                runContinuationProbability(rho, 0.95, extra);
            EXPECT_LT(p, previous);
            previous = p;
        }
    }
}

TEST(RunLengthThreshold, PaperIidValueIsThree)
{
    // Section 4.1: "if we find three measurements in a row ... we can
    // be almost certain" — the i.i.d. threshold is 3.
    EXPECT_EQ(runLengthThreshold(0.0, 0.95, 0.05), 3);
}

TEST(RunLengthThreshold, GrowsWithAutocorrelation)
{
    int previous = 0;
    for (double rho : {0.0, 0.3, 0.6, 0.9}) {
        const int threshold = runLengthThreshold(rho, 0.95, 0.05);
        EXPECT_GE(threshold, previous);
        previous = threshold;
    }
    EXPECT_GT(runLengthThreshold(0.9, 0.95, 0.05),
              runLengthThreshold(0.0, 0.95, 0.05));
}

TEST(RareEventTable, EntriesAndClamping)
{
    RareEventTable table(0.95, 0.05);
    ASSERT_EQ(table.entries().size(), 10u);
    EXPECT_EQ(table.entries()[0], 3);
    EXPECT_EQ(table.threshold(0.0), 3);
    EXPECT_EQ(table.threshold(-0.3), 3);           // clamped up
    EXPECT_EQ(table.threshold(0.95), table.entries()[9]);
    EXPECT_EQ(table.threshold(0.37), table.entries()[3]);
    // NaN autocorrelation (constant training series) falls back to iid.
    EXPECT_EQ(table.threshold(std::nan("")), 3);
}

TEST(RareEventTable, BucketEdgesSelectTheirOwnEntry)
{
    // Regression: rho is a *measured* autocorrelation, so a queue
    // whose true lag-1 dependence sits on a grid edge can come in one
    // ulp below it (e.g. 0.29999999999999993). The former bare
    // static_cast<size_t>(rho * 10.0) truncated such values into the
    // previous (less conservative) bucket; the epsilon in the fixed
    // bucketing absorbs float noise while keeping genuine round-down
    // semantics for values clearly inside a bucket.
    RareEventTable table(0.95, 0.05);
    for (size_t i = 0; i < table.entries().size(); ++i) {
        const double edge = static_cast<double>(i) / 10.0;
        EXPECT_EQ(table.threshold(edge), table.entries()[i])
            << "at edge " << edge;
        // One ulp below the edge: float noise, same bucket.
        EXPECT_EQ(table.threshold(std::nextafter(edge, 0.0)),
                  table.entries()[i])
            << "one ulp below edge " << edge;
        // Clearly below the edge: genuinely the previous bucket.
        if (i > 0) {
            EXPECT_EQ(table.threshold(edge - 1e-6),
                      table.entries()[i - 1])
                << "just below edge " << edge;
        }
        EXPECT_EQ(table.threshold(edge + 0.05), table.entries()[i])
            << "mid-bucket above " << edge;
    }
}

TEST(RareEventTable, NondecreasingAcrossGrid)
{
    RareEventTable table(0.95, 0.05);
    for (size_t i = 1; i < table.entries().size(); ++i)
        EXPECT_GE(table.entries()[i], table.entries()[i - 1]);
}

/**
 * The quadrature and the paper's log-normal Monte Carlo must agree —
 * exceedance runs are invariant under the exp() transform, so the two
 * formulations estimate the same number.
 */
class QuadratureVsMonteCarlo : public ::testing::TestWithParam<double>
{
};

TEST_P(QuadratureVsMonteCarlo, Agree)
{
    const double rho = GetParam();
    for (int extra : {1, 2, 3}) {
        const double quadrature =
            runContinuationProbability(rho, 0.95, extra);
        const double monte_carlo = runContinuationProbabilityMonteCarlo(
            rho, 0.95, extra, 2000000, 99);
        // MC standard error ~ sqrt(p/(N*0.05)); allow 4 sigma + eps.
        const double tolerance =
            4.0 * std::sqrt(std::max(quadrature, 1e-4) /
                            (2000000.0 * 0.05)) +
            1e-4;
        EXPECT_NEAR(monte_carlo, quadrature, tolerance)
            << "rho=" << rho << " extra=" << extra;
    }
}

INSTANTIATE_TEST_SUITE_P(RhoGrid, QuadratureVsMonteCarlo,
                         ::testing::Values(0.0, 0.3, 0.6, 0.8));

TEST(RunContinuationDeath, InvalidArguments)
{
    EXPECT_DEATH(runContinuationProbability(1.0, 0.95, 1), "rho");
    EXPECT_DEATH(runContinuationProbability(0.5, 1.0, 1), "q");
}

} // namespace
} // namespace core
} // namespace qdel
