/**
 * @file
 * Unit tests for the predictor factory.
 */

#include <limits>

#include <gtest/gtest.h>

#include "core/bmbp_predictor.hh"
#include "core/lognormal_predictor.hh"
#include "core/predictor_factory.hh"

namespace qdel {
namespace core {
namespace {

TEST(Factory, BuildsEveryMethod)
{
    PredictorOptions options;
    EXPECT_EQ(makePredictor("bmbp", options)->name(), "bmbp");
    EXPECT_EQ(makePredictor("bmbp-notrim", options)->name(), "bmbp");
    EXPECT_EQ(makePredictor("lognormal", options)->name(), "lognormal");
    EXPECT_EQ(makePredictor("lognormal-trim", options)->name(),
              "lognormal-trim");
    EXPECT_EQ(makePredictor("percentile", options)->name(), "percentile");
    EXPECT_EQ(makePredictor("loguniform", options)->name(), "loguniform");
}

TEST(Factory, PropagatesQuantileAndConfidence)
{
    PredictorOptions options;
    options.quantile = 0.75;
    options.confidence = 0.9;
    auto predictor = makePredictor("bmbp", options);
    auto *bmbp = dynamic_cast<BmbpPredictor *>(predictor.get());
    ASSERT_NE(bmbp, nullptr);
    // minimum history for .75/.90: smallest n with 1-.75^n >= .9 is 9.
    EXPECT_EQ(bmbp->minimumHistory(), 9u);
}

TEST(Factory, SharedRareEventTable)
{
    RareEventTable table(0.95, 0.05);
    PredictorOptions options;
    options.rareEventTable = &table;
    auto predictor = makePredictor("bmbp", options);
    // Training against a flat history lands on the table's iid entry.
    for (int i = 0; i < 200; ++i)
        predictor->observe(1.0 + 0.001 * i);
    predictor->finalizeTraining();
    auto *bmbp = dynamic_cast<BmbpPredictor *>(predictor.get());
    ASSERT_NE(bmbp, nullptr);
    EXPECT_GE(bmbp->runThreshold(), 3);
}

TEST(Factory, NotrimVariantHasTrimmingDisabled)
{
    PredictorOptions options;
    auto predictor = makePredictor("bmbp-notrim", options);
    for (int i = 0; i < 200; ++i)
        predictor->observe(1.0);
    predictor->refit();
    for (int i = 0; i < 20; ++i)
        predictor->observe(1e9);
    auto *bmbp = dynamic_cast<BmbpPredictor *>(predictor.get());
    ASSERT_NE(bmbp, nullptr);
    EXPECT_EQ(bmbp->trimCount(), 0u);
}

TEST(FactoryDeath, UnknownMethod)
{
    PredictorOptions options;
    EXPECT_DEATH(makePredictor("oracle", options), "unknown prediction");
}

TEST(Factory, TryMakeReportsUnknownMethod)
{
    PredictorOptions options;
    auto predictor = tryMakePredictor("oracle", options);
    ASSERT_FALSE(predictor.ok());
    EXPECT_NE(predictor.error().reason.find("unknown prediction method"),
              std::string::npos);
    // The message enumerates the valid spellings.
    for (const auto &method : knownPredictorMethods())
        EXPECT_NE(predictor.error().reason.find(method),
                  std::string::npos)
            << method;
}

TEST(Factory, TryMakeBuildsEveryKnownMethod)
{
    PredictorOptions options;
    for (const auto &method : knownPredictorMethods()) {
        auto predictor = tryMakePredictor(method, options);
        EXPECT_TRUE(predictor.ok()) << method;
    }
}

TEST(Factory, TryMakeRejectsInvalidOptions)
{
    PredictorOptions options;
    options.quantile = 1.5;
    EXPECT_FALSE(tryMakePredictor("bmbp", options).ok());

    options.quantile = std::numeric_limits<double>::quiet_NaN();
    EXPECT_FALSE(tryMakePredictor("bmbp", options).ok());

    options.quantile = 0.95;
    options.confidence = 0.0;
    EXPECT_FALSE(tryMakePredictor("bmbp", options).ok());
}

TEST(PredictorOptions, ValidateAcceptsDefaults)
{
    EXPECT_TRUE(PredictorOptions{}.validate().ok());
}

} // namespace
} // namespace core
} // namespace qdel
