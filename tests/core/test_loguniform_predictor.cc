/**
 * @file
 * Unit tests for the Downey-style log-uniform baseline.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "core/loguniform_predictor.hh"
#include "stats/rng.hh"

namespace qdel {
namespace core {
namespace {

TEST(LogUniform, NeedsTwoObservations)
{
    LogUniformPredictor predictor;
    predictor.refit();
    EXPECT_FALSE(predictor.upperBound().finite());
    predictor.observe(10.0);
    predictor.refit();
    EXPECT_FALSE(predictor.upperBound().finite());
    predictor.observe(100.0);
    predictor.refit();
    EXPECT_TRUE(predictor.upperBound().finite());
}

TEST(LogUniform, QuantileOfFittedSupport)
{
    // Two points: support [10, 1000] in log space; q quantile of the
    // log-uniform is 10 * (1000/10)^q.
    LogUniformPredictor predictor;
    predictor.observe(10.0);
    predictor.observe(1000.0);
    predictor.refit();
    EXPECT_NEAR(predictor.upperBound().value,
                10.0 * std::pow(100.0, 0.95), 1e-6);
    EXPECT_NEAR(predictor.boundAt(0.5, true).value, 100.0, 1e-9);
}

TEST(LogUniform, RecoversTrueQuantileOnLogUniformData)
{
    // On data that actually is log-uniform, the point estimate is
    // consistent.
    LogUniformConfig config;
    config.robustFraction = 0.0;
    LogUniformPredictor predictor(config);
    stats::Rng rng(77);
    const double log_a = std::log(5.0), log_b = std::log(50000.0);
    for (int i = 0; i < 50000; ++i)
        predictor.observe(std::exp(rng.uniform(log_a, log_b)));
    predictor.refit();
    const double true_q95 = std::exp(log_a + 0.95 * (log_b - log_a));
    EXPECT_NEAR(predictor.upperBound().value, true_q95,
                0.02 * true_q95);
}

TEST(LogUniform, RobustFractionShieldsOutliers)
{
    LogUniformPredictor robust;  // default 1% trim
    LogUniformConfig naive_config;
    naive_config.robustFraction = 0.0;
    LogUniformPredictor naive(naive_config);

    stats::Rng rng(78);
    for (int i = 0; i < 1000; ++i) {
        const double wait = rng.logNormal(3.0, 0.5);
        robust.observe(wait);
        naive.observe(wait);
    }
    // One absurd outlier.
    robust.observe(1e12);
    naive.observe(1e12);
    robust.refit();
    naive.refit();
    // The naive min/max fit explodes; the robust fit barely moves.
    EXPECT_GT(naive.upperBound().value,
              10.0 * robust.upperBound().value);
}

TEST(LogUniform, ZeroWaitsFloored)
{
    LogUniformPredictor predictor;
    predictor.observe(0.0);
    predictor.observe(100.0);
    predictor.refit();
    EXPECT_TRUE(std::isfinite(predictor.upperBound().value));
    EXPECT_GT(predictor.upperBound().value, 1.0);
}

TEST(LogUniform, SlidingWindow)
{
    LogUniformConfig config;
    config.maxHistory = 10;
    config.robustFraction = 0.0;
    LogUniformPredictor predictor(config);
    for (int i = 0; i < 100; ++i)
        predictor.observe(1000.0 + i);
    EXPECT_EQ(predictor.historySize(), 10u);
    predictor.refit();
    // Support is [1090, 1099].
    EXPECT_GE(predictor.upperBound().value, 1090.0);
    EXPECT_LE(predictor.upperBound().value, 1099.0);
}

TEST(LogUniform, ConstantHistory)
{
    LogUniformPredictor predictor;
    for (int i = 0; i < 50; ++i)
        predictor.observe(42.0);
    predictor.refit();
    EXPECT_NEAR(predictor.upperBound().value, 42.0, 1e-9);
}

TEST(LogUniform, Name)
{
    EXPECT_EQ(LogUniformPredictor().name(), "loguniform");
}

} // namespace
} // namespace core
} // namespace qdel
