/**
 * @file
 * BoundService durability contract: WAL-before-mutate ingest, the
 * per-shard checkpoint tree, count-triggered checkpoints, recovery to
 * a byte-identical registry (digest equality), and the ephemeral mode
 * the throughput bench runs in.
 */

#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "persist/io.hh"
#include "serve/service.hh"
#include "serve/wire.hh"

namespace qdel {
namespace serve {
namespace {

std::string
freshDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + "qdel_serve_" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

/** Deterministic mixed-key event stream: submits then starts. */
std::vector<JobEvent>
eventStream(size_t jobs, uint32_t seed)
{
    std::mt19937 rng(seed);
    std::lognormal_distribution<double> wait(4.0, 1.0);
    const char *machines[] = {"m1", "m2"};
    const char *queues[] = {"normal", "express"};
    const int procs[] = {1, 8, 32, 128};
    std::vector<JobEvent> events;
    for (size_t i = 0; i < jobs; ++i) {
        JobEvent submit;
        submit.kind = EventKind::Submit;
        submit.jobId = i + 1;
        submit.time = 100.0 * static_cast<double>(i);
        submit.machine = machines[i % 2];
        submit.queue = queues[(i / 2) % 2];
        submit.procs = procs[i % 4];
        events.push_back(submit);
        JobEvent start = submit;
        start.kind = EventKind::Start;
        start.time = submit.time + wait(rng);
        events.push_back(start);
    }
    return events;
}

ServiceConfig
smallConfig(const std::string &state_dir)
{
    ServiceConfig config;
    config.registry.shards = 4;
    config.registry.refitEvery = 10;
    config.registry.trainObservations = 25;
    config.stateDir = state_dir;
    return config;
}

TEST(ServiceConfig, ValidatePropagatesRegistryErrors)
{
    ServiceConfig config;
    config.registry.method = "no-such-method";
    EXPECT_FALSE(config.validate().ok());

    config = ServiceConfig{};
    config.keepSnapshots = 0;
    EXPECT_FALSE(config.validate().ok());
}

TEST(BoundService, EphemeralModeHasNoDiskFootprint)
{
    auto opened = BoundService::open(ServiceConfig{});
    ASSERT_TRUE(opened.ok());
    auto &service = *opened.value();
    EXPECT_FALSE(service.durable());
    EXPECT_TRUE(service.recoveries().empty());
    for (const auto &event : eventStream(30, 1)) {
        auto outcome = service.ingest(event);
        ASSERT_TRUE(outcome.ok());
        EXPECT_TRUE(outcome.value().applied);
    }
    EXPECT_TRUE(service.checkpointAll().ok());  // no-op, not an error
    EXPECT_TRUE(service.syncAll().ok());
    BoundQuery query;
    query.machine = "m1";
    query.queue = "normal";
    query.procs = 1;
    EXPECT_TRUE(service.query(query).known);
}

TEST(BoundService, DurableIngestRecoversByteIdentically)
{
    const std::string dir = freshDir("roundtrip");
    const auto events = eventStream(120, 2);
    std::string digest_before;
    {
        auto opened = BoundService::open(smallConfig(dir));
        ASSERT_TRUE(opened.ok());
        auto &service = *opened.value();
        EXPECT_TRUE(service.durable());
        for (const auto &event : events)
            ASSERT_TRUE(service.ingest(event).ok());
        digest_before = service.digest();
        // No checkpointAll: recovery must come from WAL replay alone.
    }
    auto reopened = BoundService::open(smallConfig(dir));
    ASSERT_TRUE(reopened.ok());
    auto &service = *reopened.value();
    EXPECT_EQ(service.digest(), digest_before);
    uint64_t replayed = 0;
    for (const auto &report : service.recoveries())
        replayed += report.walRecordsApplied;
    EXPECT_EQ(replayed, events.size());

    // Resume fencing data: per-shard processed counts must cover the
    // whole stream.
    uint64_t processed = 0;
    for (uint64_t count : service.stats().processedPerShard)
        processed += count;
    EXPECT_EQ(processed, events.size());
}

TEST(BoundService, CheckpointsFoldTheWalAndStillRecover)
{
    const std::string dir = freshDir("ckpt");
    auto config = smallConfig(dir);
    config.checkpointEveryEvents = 16;
    const auto events = eventStream(100, 3);
    std::string digest_before;
    {
        auto opened = BoundService::open(config);
        ASSERT_TRUE(opened.ok());
        auto &service = *opened.value();
        for (const auto &event : events)
            ASSERT_TRUE(service.ingest(event).ok());
        ASSERT_TRUE(service.checkpointAll().ok());
        digest_before = service.digest();
    }
    // Count triggers fired: at least one shard rotated snapshots.
    bool saw_snapshot = false;
    for (size_t s = 0; s < config.registry.shards; ++s) {
        char name[32];
        std::snprintf(name, sizeof(name), "/shard-%04zu", s);
        for (const auto &entry : std::filesystem::directory_iterator(
                 dir + name)) {
            const std::string file = entry.path().filename().string();
            if (file.rfind("snapshot-", 0) == 0)
                saw_snapshot = true;
        }
    }
    EXPECT_TRUE(saw_snapshot);

    auto reopened = BoundService::open(config);
    ASSERT_TRUE(reopened.ok());
    auto &service = *reopened.value();
    EXPECT_EQ(service.digest(), digest_before);
    for (const auto &report : service.recoveries()) {
        EXPECT_EQ(report.walRecordsApplied, 0u)
            << "checkpointAll left nothing to replay";
    }
}

TEST(BoundService, ReopenWithDifferentConfigRefusesSnapshots)
{
    // A snapshot saved under other serving parameters must never be
    // restored (its predictor state would be wrong for this config).
    // The ladder instead degrades to replaying the raw event WAL,
    // which *is* config-independent — recovery succeeds, but from the
    // wal-only rung with every event re-applied under the new config.
    const std::string dir = freshDir("foreign");
    const auto events = eventStream(40, 4);
    {
        auto opened = BoundService::open(smallConfig(dir));
        ASSERT_TRUE(opened.ok());
        auto &service = *opened.value();
        for (const auto &event : events)
            ASSERT_TRUE(service.ingest(event).ok());
        ASSERT_TRUE(service.checkpointAll().ok());
    }
    auto config = smallConfig(dir);
    config.registry.quantile = 0.90;  // different serving parameters
    auto reopened = BoundService::open(config);
    ASSERT_TRUE(reopened.ok());
    uint64_t replayed = 0;
    for (const auto &report : reopened.value()->recoveries()) {
        EXPECT_NE(report.source, persist::RecoverySource::LatestSnapshot);
        EXPECT_NE(report.source,
                  persist::RecoverySource::PreviousSnapshot);
        replayed += report.walRecordsApplied;
    }
    EXPECT_EQ(replayed, events.size());
}

TEST(BoundService, RecoveredServiceContinuesIdenticallyToUnkilledOne)
{
    // The core durability property behind the kill/resume sweep: a
    // service recovered mid-stream and fed the remaining events ends
    // bit-identical to one that saw the whole stream uninterrupted.
    const auto events = eventStream(150, 5);
    const size_t cut = 173;  // mid-stream, not on a job boundary

    const std::string ref_dir = freshDir("contref");
    auto reference = BoundService::open(smallConfig(ref_dir));
    ASSERT_TRUE(reference.ok());
    for (const auto &event : events)
        ASSERT_TRUE(reference.value()->ingest(event).ok());
    const std::string want = reference.value()->digest();

    const std::string dir = freshDir("contkill");
    {
        auto opened = BoundService::open(smallConfig(dir));
        ASSERT_TRUE(opened.ok());
        for (size_t i = 0; i < cut; ++i)
            ASSERT_TRUE(opened.value()->ingest(events[i]).ok());
        // Destroyed without checkpointAll: an orderly SIGKILL stand-in
        // (every record was WAL-logged and synced).
    }
    auto recovered = BoundService::open(smallConfig(dir));
    ASSERT_TRUE(recovered.ok());
    auto &service = *recovered.value();

    // Per-shard resume fencing, exactly as a driving client would.
    std::vector<uint64_t> skip = service.stats().processedPerShard;
    for (const auto &event : events) {
        const size_t s = service.registry().shardForEvent(event);
        if (skip[s] > 0) {
            --skip[s];
            continue;
        }
        ASSERT_TRUE(service.ingest(event).ok());
    }
    EXPECT_EQ(service.digest(), want);
}

} // namespace
} // namespace serve
} // namespace qdel
