/**
 * @file
 * Kill/resume fault-injection sweep for the serve persistence path —
 * the PR's acceptance property: for every injected fault kind, at
 * every persistence-op window, a crashed-and-reopened service that
 * re-drives the not-yet-applied suffix of the event stream (fenced by
 * the per-shard processed counts) ends with a registry digest and
 * published bound grids *byte-identical* to a service that never
 * crashed.
 */

#include <cmath>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "persist/fault_injection.hh"
#include "serve/service.hh"
#include "serve/wire.hh"

namespace qdel {
namespace serve {
namespace {

std::string
freshDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + "qdel_srv_rec_" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

std::vector<JobEvent>
eventStream(size_t jobs, uint32_t seed)
{
    std::mt19937 rng(seed);
    std::lognormal_distribution<double> wait(4.0, 1.2);
    const char *machines[] = {"m1", "m2"};
    const int procs[] = {2, 16, 96};
    std::vector<JobEvent> events;
    for (size_t i = 0; i < jobs; ++i) {
        JobEvent submit;
        submit.kind = EventKind::Submit;
        submit.jobId = i + 1;
        submit.time = 50.0 * static_cast<double>(i);
        submit.machine = machines[i % 2];
        submit.queue = "q";
        submit.procs = procs[i % 3];
        events.push_back(submit);
        JobEvent start = submit;
        start.kind = EventKind::Start;
        start.time = submit.time + wait(rng);
        events.push_back(start);
    }
    return events;
}

ServiceConfig
sweepConfig(const std::string &state_dir)
{
    ServiceConfig config;
    config.registry.shards = 2;
    config.registry.refitEvery = 8;
    config.registry.trainObservations = 20;
    config.stateDir = state_dir;
    config.checkpointEveryEvents = 24;  // faults hit checkpoints too
    return config;
}

/** Canonical text form of every published grid, for bit comparison. */
std::string
boundsFingerprint(const BoundRegistry &registry)
{
    std::string out;
    char line[128];
    for (const auto &view : registry.enumerate()) {
        out += view.machine + "|" + view.queue + "|" +
               std::to_string(view.bucket) + "\n";
        for (size_t i = 0; i < kGridCount; ++i) {
            std::snprintf(line, sizeof(line), "%.17g %.17g\n",
                          view.snapshot.upper[i], view.snapshot.lower[i]);
            out += line;
        }
    }
    return out;
}

class ServeRecoverySweep : public ::testing::Test
{
  protected:
    void SetUp() override { fault::reset(); }
    void TearDown() override { fault::reset(); }
};

TEST_F(ServeRecoverySweep, EveryFaultWindowRecoversByteIdentically)
{
    const auto events = eventStream(60, 9);

    // Reference: the never-crashed run.
    const std::string ref_dir = freshDir("ref");
    std::string want_digest;
    std::string want_bounds;
    uint64_t total_ops = 0;
    {
        auto opened = BoundService::open(sweepConfig(ref_dir));
        ASSERT_TRUE(opened.ok());
        auto &service = *opened.value();
        const uint64_t ops_before = fault::opCount();
        for (const auto &event : events)
            ASSERT_TRUE(service.ingest(event).ok());
        ASSERT_TRUE(service.checkpointAll().ok());
        total_ops = fault::opCount() - ops_before;
        want_digest = service.digest();
        want_bounds = boundsFingerprint(service.registry());
    }
    ASSERT_GT(total_ops, 0u);

    const fault::Kind kinds[] = {
        fault::Kind::ShortWrite,
        fault::Kind::TornWrite,
        fault::Kind::BitFlip,
        fault::Kind::ENoSpc,
        fault::Kind::FailFsync,
        fault::Kind::CrashBeforeRename,
        fault::Kind::FailRename,
        fault::Kind::FailOpen,
    };
    // Sample op windows across the run (every window would be O(ops^2)
    // service opens; the stride still covers open/append/sync/rename
    // ops in every phase of the stream).
    std::vector<uint64_t> windows;
    for (uint64_t op = 0; op < total_ops; op += 13)
        windows.push_back(op);

    int swept = 0;
    for (fault::Kind kind : kinds) {
        for (uint64_t window : windows) {
            SCOPED_TRACE(std::string(fault::kindName(kind)) +
                         " @op " + std::to_string(window));
            const std::string dir =
                freshDir(std::string(fault::kindName(kind)) +
                         "_" + std::to_string(window));

            // Phase 1: drive into the fault. Any step may fail; a
            // failure is the "crash".
            fault::configure({kind, window, 1234});
            {
                auto opened = BoundService::open(sweepConfig(dir));
                if (opened.ok()) {
                    for (const auto &event : events) {
                        if (!opened.value()->ingest(event).ok())
                            break;
                    }
                    // Destroyed without a clean checkpoint: SIGKILL
                    // stand-in.
                }
            }
            fault::reset();

            // Phase 2: reopen and re-drive the suffix, fenced by the
            // per-shard processed counts.
            auto reopened = BoundService::open(sweepConfig(dir));
            ASSERT_TRUE(reopened.ok())
                << "recovery must survive any single fault: "
                << reopened.error().str();
            auto &service = *reopened.value();
            std::vector<uint64_t> skip =
                service.stats().processedPerShard;
            for (const auto &event : events) {
                const size_t s =
                    service.registry().shardForEvent(event);
                if (skip[s] > 0) {
                    --skip[s];
                    continue;
                }
                ASSERT_TRUE(service.ingest(event).ok());
            }
            ASSERT_TRUE(service.checkpointAll().ok());
            EXPECT_EQ(service.digest(), want_digest);
            EXPECT_EQ(boundsFingerprint(service.registry()),
                      want_bounds);

            // And the recovered state itself persists: one more
            // clean reopen lands on the checkpoint.
            auto again = BoundService::open(sweepConfig(dir));
            ASSERT_TRUE(again.ok());
            EXPECT_EQ(again.value()->digest(), want_digest);
            ++swept;
        }
    }
    EXPECT_EQ(swept, static_cast<int>(
                         (sizeof(kinds) / sizeof(kinds[0])) *
                         windows.size()));
}

TEST_F(ServeRecoverySweep, DoubleCrashStillConverges)
{
    // Crash during recovery's own re-checkpoint, then recover again.
    const auto events = eventStream(40, 21);
    const std::string ref_dir = freshDir("dcref");
    std::string want_digest;
    {
        auto opened = BoundService::open(sweepConfig(ref_dir));
        ASSERT_TRUE(opened.ok());
        for (const auto &event : events)
            ASSERT_TRUE(opened.value()->ingest(event).ok());
        ASSERT_TRUE(opened.value()->checkpointAll().ok());
        want_digest = opened.value()->digest();
    }

    const std::string dir = freshDir("dc");
    fault::configure(
        {fault::Kind::ShortWrite, 40, 99});
    {
        auto opened = BoundService::open(sweepConfig(dir));
        if (opened.ok()) {
            for (const auto &event : events) {
                if (!opened.value()->ingest(event).ok())
                    break;
            }
        }
    }
    fault::reset();
    // Second crash: hit the reopen path itself.
    fault::configure(
        {fault::Kind::CrashBeforeRename, 2, 7});
    {
        auto reopened = BoundService::open(sweepConfig(dir));
        if (reopened.ok()) {
            // Drive a little further into the second fault, fencing
            // exactly like a real resuming client would.
            std::vector<uint64_t> skip =
                reopened.value()->stats().processedPerShard;
            for (const auto &event : events) {
                const size_t s =
                    reopened.value()->registry().shardForEvent(event);
                if (skip[s] > 0) {
                    --skip[s];
                    continue;
                }
                if (!reopened.value()->ingest(event).ok())
                    break;
            }
        }
    }
    fault::reset();

    auto final_open = BoundService::open(sweepConfig(dir));
    ASSERT_TRUE(final_open.ok());
    auto &service = *final_open.value();
    std::vector<uint64_t> skip = service.stats().processedPerShard;
    for (const auto &event : events) {
        const size_t s = service.registry().shardForEvent(event);
        if (skip[s] > 0) {
            --skip[s];
            continue;
        }
        ASSERT_TRUE(service.ingest(event).ok());
    }
    ASSERT_TRUE(service.checkpointAll().ok());
    EXPECT_EQ(service.digest(), want_digest);
}

} // namespace
} // namespace serve
} // namespace qdel
