/**
 * @file
 * HTTP layer tests: the protocol sniff, request-head parsing (query
 * params, percent decoding, headers, the explicit chunked-body
 * refusal), and response rendering.
 */

#include <string>

#include <gtest/gtest.h>

#include "serve/http.hh"

namespace qdel {
namespace serve {
namespace {

TEST(HttpSniff, MethodsLookLikeHttpAndFramesDoNot)
{
    EXPECT_TRUE(looksLikeHttp("GET / HTTP/1.1"));
    EXPECT_TRUE(looksLikeHttp("POST /event HTTP/1.1"));
    EXPECT_TRUE(looksLikeHttp("DELETE /x"));
    // Partial prefixes still match while bytes dribble in.
    EXPECT_TRUE(looksLikeHttp("GE"));
    EXPECT_TRUE(looksLikeHttp("P"));

    // A binary frame's first four bytes are a little-endian length
    // under 2^24: byte 3 is always NUL, which no method line carries.
    const char frame_prefix[] = {0x47, 0x45, 0x54, 0x00};  // "GET\0"
    EXPECT_FALSE(
        looksLikeHttp(std::string_view(frame_prefix, sizeof(frame_prefix))));
    EXPECT_FALSE(looksLikeHttp(std::string_view("\x05\x00\x00\x00", 4)));
    EXPECT_FALSE(looksLikeHttp("FETCH /x"));
    EXPECT_FALSE(looksLikeHttp(""));
}

TEST(HttpParse, RequestLineAndParams)
{
    auto parsed = parseRequestHead(
        "GET /bound?machine=data%20star&queue=q+1&procs=4&flag "
        "HTTP/1.1\r\nHost: localhost\r\n");
    ASSERT_TRUE(parsed.ok());
    const HttpRequest &request = parsed.value();
    EXPECT_EQ(request.method, "GET");
    EXPECT_EQ(request.path, "/bound");
    EXPECT_EQ(request.params.at("machine"), "data star");
    EXPECT_EQ(request.params.at("queue"), "q 1");
    EXPECT_EQ(request.params.at("procs"), "4");
    EXPECT_EQ(request.params.at("flag"), "");
    EXPECT_EQ(request.contentLength, 0u);
}

TEST(HttpParse, BareLfLinesAndContentLength)
{
    auto parsed = parseRequestHead(
        "POST /event HTTP/1.0\nContent-Length: 42\nX-Other: y\n");
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().method, "POST");
    EXPECT_EQ(parsed.value().contentLength, 42u);
}

TEST(HttpParse, Rejections)
{
    EXPECT_FALSE(parseRequestHead("GET\r\n").ok());
    EXPECT_FALSE(parseRequestHead("GET /\r\n").ok());  // no version
    EXPECT_FALSE(parseRequestHead("GET / SMTP/1.0\r\n").ok());
    EXPECT_FALSE(parseRequestHead("GET example.com HTTP/1.1\r\n").ok())
        << "absolute-form target must be refused";
    EXPECT_FALSE(
        parseRequestHead("GET / HTTP/1.1\r\nbad header line\r\n").ok());
    EXPECT_FALSE(parseRequestHead(
                     "GET / HTTP/1.1\r\nContent-Length: twelve\r\n")
                     .ok());
    auto chunked = parseRequestHead(
        "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n");
    ASSERT_FALSE(chunked.ok());
    EXPECT_NE(chunked.error().str().find("chunked"), std::string::npos);
}

TEST(HttpParse, PercentDecodeEdgeCases)
{
    EXPECT_EQ(percentDecode("a%2Fb%2fc"), "a/b/c");
    EXPECT_EQ(percentDecode("1+2"), "1 2");
    EXPECT_EQ(percentDecode("100%"), "100%");   // dangling escape
    EXPECT_EQ(percentDecode("%G1"), "%G1");     // bad hex passes through
    EXPECT_EQ(percentDecode("%00"), std::string(1, '\0'));
    EXPECT_EQ(percentDecode(""), "");
}

TEST(HttpRender, ResponseShape)
{
    const std::string response =
        renderHttpResponse(404, "application/json", "{\"e\":1}");
    EXPECT_EQ(response.rfind("HTTP/1.1 404 Not Found\r\n", 0), 0u);
    EXPECT_NE(response.find("Content-Length: 7\r\n"), std::string::npos);
    EXPECT_NE(response.find("Connection: close\r\n"), std::string::npos);
    EXPECT_NE(response.find("\r\n\r\n{\"e\":1}"), std::string::npos);
    EXPECT_STREQ(httpReason(200), "OK");
    EXPECT_STREQ(httpReason(500), "Internal Server Error");
    EXPECT_STREQ(httpReason(999), "Unknown");
}

} // namespace
} // namespace serve
} // namespace qdel
