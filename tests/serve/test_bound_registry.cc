/**
 * @file
 * BoundRegistry contract tests. The load-bearing one compares the
 * registry's published snapshots against a standalone reference
 * predictor driven with the identical observe/refit/finalize policy:
 * every grid answer must bit-match boundAt() on the frozen reference —
 * that is the scoreBatch frozen-bound invariant carried to the serve
 * read path.
 */

#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/predictor_factory.hh"
#include "core/rare_event.hh"
#include "persist/state_codec.hh"
#include "serve/bound_registry.hh"

namespace qdel {
namespace serve {
namespace {

/** Deterministic wait series with enough spread to provoke refits. */
std::vector<double>
syntheticWaits(size_t n, uint32_t seed)
{
    std::mt19937 rng(seed);
    std::lognormal_distribution<double> dist(5.0, 1.5);
    std::vector<double> waits;
    waits.reserve(n);
    for (size_t i = 0; i < n; ++i)
        waits.push_back(dist(rng));
    return waits;
}

/**
 * Feed one submit/start pair carrying @p wait into the registry.
 * Submits at time zero so the observed wait (start − submit) is the
 * given double bit-exactly; a nonzero submit time would round away
 * low bits of the difference.
 */
void
feedWait(BoundRegistry &registry, uint64_t job_id, double wait,
         const std::string &machine = "m", const std::string &queue = "q",
         int procs = 4)
{
    JobEvent submit;
    submit.kind = EventKind::Submit;
    submit.jobId = job_id;
    submit.time = 0.0;
    submit.machine = machine;
    submit.queue = queue;
    submit.procs = procs;
    ASSERT_TRUE(registry.apply(submit).applied);
    JobEvent start = submit;
    start.kind = EventKind::Start;
    start.time = wait;
    ASSERT_TRUE(registry.apply(start).applied);
}

TEST(GridIndex, SnapsToNearestAndHandlesNaN)
{
    EXPECT_EQ(kGridQuantiles[gridIndexFor(0.95)], 0.95);
    EXPECT_EQ(kGridQuantiles[gridIndexFor(0.951)], 0.95);
    EXPECT_EQ(kGridQuantiles[gridIndexFor(0.0)], 0.25);
    EXPECT_EQ(kGridQuantiles[gridIndexFor(1.0)], 0.99);
    EXPECT_EQ(kGridQuantiles[gridIndexFor(-5.0)], 0.25);
    EXPECT_EQ(kGridQuantiles[gridIndexFor(
                  std::numeric_limits<double>::quiet_NaN())],
              0.95);
}

TEST(BoundRegistryOptions, ValidateRejectsBadKnobs)
{
    BoundRegistry::Options options;
    EXPECT_TRUE(options.validate().ok());
    options.shards = 0;
    EXPECT_FALSE(options.validate().ok());
    options.shards = 8;
    options.refitEvery = 0;
    EXPECT_FALSE(options.validate().ok());
    options.refitEvery = 50;
    options.trainObservations = 0;
    EXPECT_FALSE(options.validate().ok());
    options.trainObservations = 100;
    options.method = "no-such-method";
    EXPECT_FALSE(options.validate().ok());
}

TEST(BoundRegistry, PublishedGridBitMatchesReferencePredictor)
{
    BoundRegistry::Options options;
    options.shards = 4;
    options.refitEvery = 25;
    options.trainObservations = 60;
    BoundRegistry registry(options);

    // Reference: a standalone predictor driven by hand with the exact
    // registry policy (finalize+refit at trainObservations, refit
    // every refitEvery afterwards).
    core::RareEventTable rare_table(options.quantile);
    core::PredictorOptions predictor_options;
    predictor_options.quantile = options.quantile;
    predictor_options.confidence = options.confidence;
    predictor_options.rareEventTable = &rare_table;
    auto reference = core::makePredictor(options.method, predictor_options);

    // The registry publishes a grid only at refit points; between
    // them the published bounds stay frozen even though the live
    // predictor history keeps growing. Mirror that: snapshot the
    // reference grid at each publish point and compare the registry's
    // answers against the *last published* reference grid.
    double ref_upper[kGridCount];
    double ref_lower[kGridCount];
    const auto capture_grid = [&]() {
        for (size_t gi = 0; gi < kGridCount; ++gi) {
            ref_upper[gi] =
                reference->boundAt(kGridQuantiles[gi], true).value;
            ref_lower[gi] =
                reference->boundAt(kGridQuantiles[gi], false).value;
        }
    };
    capture_grid();  // entry creation publishes the empty-history grid

    const auto waits = syntheticWaits(200, 42);
    uint64_t observations = 0;
    bool finalized = false;
    for (size_t i = 0; i < waits.size(); ++i) {
        feedWait(registry, i + 1, waits[i]);
        reference->observe(waits[i]);
        ++observations;
        if (!finalized && observations >= options.trainObservations) {
            reference->finalizeTraining();
            reference->refit();
            finalized = true;
            capture_grid();
        } else if (observations % options.refitEvery == 0) {
            reference->refit();
            capture_grid();
        }

        BoundQuery query;
        query.machine = "m";
        query.queue = "q";
        query.procs = 4;
        for (size_t gi = 0; gi < kGridCount; ++gi) {
            query.quantile = kGridQuantiles[gi];
            const BoundAnswer answer = registry.query(query);
            ASSERT_TRUE(answer.known);
            EXPECT_EQ(answer.quantile, kGridQuantiles[gi]);
            // Bit-exact, including +inf before training finalizes.
            ASSERT_EQ(answer.upper, ref_upper[gi])
                << "job " << i + 1 << " q=" << kGridQuantiles[gi];
            ASSERT_EQ(answer.lower, ref_lower[gi])
                << "job " << i + 1 << " q=" << kGridQuantiles[gi];
        }
    }
    EXPECT_EQ(registry.stats().entries, 1u);
}

TEST(BoundRegistry, SnapshotVersionBumpsOnlyWhenBoundMoves)
{
    BoundRegistry::Options options;
    options.refitEvery = 10;
    options.trainObservations = 1000;  // never finalizes in this test
    BoundRegistry registry(options);

    BoundQuery query;
    query.machine = "m";
    query.queue = "q";
    query.procs = 4;

    const auto waits = syntheticWaits(9, 7);
    for (size_t i = 0; i < waits.size(); ++i)
        feedWait(registry, i + 1, waits[i]);
    const BoundAnswer before = registry.query(query);
    ASSERT_TRUE(before.known);
    EXPECT_EQ(before.version, 1u) << "creation publishes version 1; no"
                                     " refit happened in 9 observations";

    feedWait(registry, 10, 123.0);  // 10th observation: refit fires
    const BoundAnswer after = registry.query(query);
    EXPECT_EQ(after.version, 2u);
    EXPECT_EQ(after.observations, 10u);
}

TEST(BoundRegistry, RejectsAreDeterministicAndCounted)
{
    BoundRegistry::Options options;
    options.shards = 1;
    BoundRegistry registry(options);

    JobEvent submit;
    submit.kind = EventKind::Submit;
    submit.jobId = 5;
    submit.time = 100.0;
    submit.machine = "m";
    submit.queue = "q";
    submit.procs = 1;
    EXPECT_TRUE(registry.apply(submit).applied);

    // Duplicate submit.
    const auto duplicate = registry.apply(submit);
    EXPECT_FALSE(duplicate.applied);
    EXPECT_STREQ(duplicate.rejectReason, "duplicate submit for job id");

    // Start for a key nobody ever submitted to.
    JobEvent other_key;
    other_key.kind = EventKind::Start;
    other_key.jobId = 5;
    other_key.time = 150.0;
    other_key.machine = "elsewhere";
    other_key.queue = "q";
    other_key.procs = 1;
    EXPECT_STREQ(registry.apply(other_key).rejectReason,
                 "start for unknown key");

    // Start without a pending submit (wrong job id).
    JobEvent wrong_id = submit;
    wrong_id.kind = EventKind::Start;
    wrong_id.jobId = 6;
    wrong_id.time = 150.0;
    EXPECT_STREQ(registry.apply(wrong_id).rejectReason,
                 "start without a pending submit");

    // Start before submit: negative wait must never reach observe().
    JobEvent early = submit;
    early.kind = EventKind::Start;
    early.time = 99.0;
    EXPECT_STREQ(registry.apply(early).rejectReason,
                 "start time precedes submit time");

    // NaN start time rejects through the same guard.
    JobEvent nan_start = submit;
    nan_start.kind = EventKind::Start;
    nan_start.time = std::numeric_limits<double>::quiet_NaN();
    EXPECT_STREQ(registry.apply(nan_start).rejectReason,
                 "start time precedes submit time");

    // Done without a running job.
    JobEvent done = submit;
    done.kind = EventKind::Done;
    EXPECT_STREQ(registry.apply(done).rejectReason,
                 "done without a running job");

    // The pending submit is still there: a correct start applies.
    JobEvent start = submit;
    start.kind = EventKind::Start;
    start.time = 160.0;
    EXPECT_TRUE(registry.apply(start).applied);
    EXPECT_TRUE(registry.apply(done).applied);

    // processed = applied + rejected, all on shard 0.
    EXPECT_EQ(registry.processedCount(0), 9u);
}

TEST(BoundRegistry, UnknownKeyAnswersUnknown)
{
    BoundRegistry registry(BoundRegistry::Options{});
    BoundQuery query;
    query.machine = "nobody";
    query.queue = "nothing";
    const BoundAnswer answer = registry.query(query);
    EXPECT_FALSE(answer.known);
    EXPECT_EQ(answer.confidence, 0.95);
    EXPECT_EQ(answer.quantile, 0.95);
}

TEST(BoundRegistry, KeysRouteToStableShardsAndBucketsShareEntries)
{
    BoundRegistry::Options options;
    options.shards = 8;
    options.refitEvery = 1;  // publish a snapshot on every observation
    BoundRegistry registry(options);
    // procs 1 and 4 share a bucket, so they share an entry and shard.
    EXPECT_EQ(registry.shardForKey("m", "q", procBucketFor(1)),
              registry.shardForKey("m", "q", procBucketFor(4)));
    feedWait(registry, 1, 10.0, "m", "q", 1);
    feedWait(registry, 2, 20.0, "m", "q", 4);
    EXPECT_EQ(registry.stats().entries, 1u);
    BoundQuery query;
    query.machine = "m";
    query.queue = "q";
    query.procs = 3;
    EXPECT_EQ(registry.query(query).observations, 2u);
}

TEST(BoundRegistry, SaveLoadRoundTripsBitIdentically)
{
    BoundRegistry::Options options;
    options.shards = 2;
    options.refitEvery = 10;
    options.trainObservations = 30;
    BoundRegistry registry(options);
    const auto waits = syntheticWaits(80, 3);
    for (size_t i = 0; i < waits.size(); ++i) {
        feedWait(registry, i + 1, waits[i], "m1", "q", 4);
        feedWait(registry, i + 1, waits[i] * 2.0, "m2", "q", 64);
    }
    // Leave a pending submit in flight so the map round-trips too.
    JobEvent pending;
    pending.kind = EventKind::Submit;
    pending.jobId = 9999;
    pending.time = 5.5;
    pending.machine = "m1";
    pending.queue = "q";
    pending.procs = 4;
    ASSERT_TRUE(registry.apply(pending).applied);

    const std::string digest_before = registry.digest();

    BoundRegistry restored(options);
    for (size_t s = 0; s < registry.shardCount(); ++s) {
        persist::StateWriter writer;
        {
            auto lock = registry.lockShard(s);
            ASSERT_TRUE(registry.saveShard(s, writer).ok());
        }
        persist::StateReader reader(writer.bytes(), "shard");
        ASSERT_TRUE(restored.loadShard(s, reader).ok());
        ASSERT_TRUE(reader.expectEnd().ok());
    }
    EXPECT_EQ(restored.digest(), digest_before);

    // The restored registry continues identically: same next event,
    // same digests afterwards.
    feedWait(registry, 500, 777.0, "m1", "q", 4);
    feedWait(restored, 500, 777.0, "m1", "q", 4);
    EXPECT_EQ(restored.digest(), registry.digest());
}

TEST(BoundRegistry, LoadShardRejectsForeignConfiguration)
{
    BoundRegistry::Options options;
    options.shards = 2;
    BoundRegistry registry(options);
    feedWait(registry, 1, 10.0);

    persist::StateWriter writer;
    {
        auto lock = registry.lockShard(0);
        ASSERT_TRUE(registry.saveShard(0, writer).ok());
    }

    BoundRegistry::Options different = options;
    different.quantile = 0.90;
    BoundRegistry other(different);
    persist::StateReader reader(writer.bytes(), "shard");
    auto loaded = other.loadShard(0, reader);
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.error().str().find("different serve configuration"),
              std::string::npos);
}

TEST(BoundRegistry, EnumerateIsKeySorted)
{
    BoundRegistry registry(BoundRegistry::Options{});
    feedWait(registry, 1, 10.0, "zeta", "q", 1);
    feedWait(registry, 1, 10.0, "alpha", "q", 1);
    feedWait(registry, 1, 10.0, "alpha", "a", 1);
    const auto views = registry.enumerate();
    ASSERT_EQ(views.size(), 3u);
    EXPECT_EQ(views[0].machine, "alpha");
    EXPECT_EQ(views[0].queue, "a");
    EXPECT_EQ(views[1].machine, "alpha");
    EXPECT_EQ(views[1].queue, "q");
    EXPECT_EQ(views[2].machine, "zeta");
}

TEST(BoundRegistry, ConcurrentQueriesDuringWritesStayCoherent)
{
    // Readers race a writer; every answer must be internally
    // consistent (a version implies its observation count is at least
    // the count the previous version published — monotone per reader).
    BoundRegistry::Options options;
    options.shards = 2;
    options.refitEvery = 5;
    options.trainObservations = 20;
    BoundRegistry registry(options);
    feedWait(registry, 0, 1.0);

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> answered{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < 3; ++t) {
        readers.emplace_back([&] {
            BoundQuery query;
            query.machine = "m";
            query.queue = "q";
            query.procs = 4;
            uint64_t last_version = 0;
            // do-while: every reader answers at least once even if the
            // writer finishes before this thread is scheduled.
            do {
                const BoundAnswer answer = registry.query(query);
                ASSERT_TRUE(answer.known);
                ASSERT_GE(answer.version, last_version)
                    << "published versions must be monotone";
                last_version = answer.version;
                answered.fetch_add(1, std::memory_order_relaxed);
            } while (!stop.load(std::memory_order_relaxed));
        });
    }
    const auto waits = syntheticWaits(400, 11);
    for (size_t i = 0; i < waits.size(); ++i)
        feedWait(registry, i + 1, waits[i]);
    stop.store(true);
    for (auto &reader : readers)
        reader.join();
    EXPECT_GT(answered.load(), 0u);
}

} // namespace
} // namespace serve
} // namespace qdel
