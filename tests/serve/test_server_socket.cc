/**
 * @file
 * End-to-end socket tests: a real BoundServer on an ephemeral port,
 * exercised over loopback with both protocols — binary framing
 * (ping/event/query/stats), the HTTP fallback (healthz, bound, event,
 * metrics, 404), the protocol sniff under byte-dribbling clients, and
 * the corrupt-length teardown.
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "obs/events.hh"
#include "obs/metrics.hh"
#include "persist/state_codec.hh"
#include "serve/server.hh"
#include "serve/service.hh"
#include "serve/wire.hh"

namespace qdel {
namespace serve {
namespace {

/** Blocking loopback client for one test connection. */
class Client
{
  public:
    explicit Client(int port)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        struct sockaddr_in address;
        std::memset(&address, 0, sizeof(address));
        address.sin_family = AF_INET;
        address.sin_port = htons(static_cast<uint16_t>(port));
        ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
        connected_ =
            ::connect(fd_, reinterpret_cast<struct sockaddr *>(&address),
                      sizeof(address)) == 0;
    }

    ~Client()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    bool connected() const { return connected_; }

    bool
    send(std::string_view bytes)
    {
        size_t sent = 0;
        while (sent < bytes.size()) {
            const ssize_t n = ::send(fd_, bytes.data() + sent,
                                     bytes.size() - sent, 0);
            if (n <= 0)
                return false;
            sent += static_cast<size_t>(n);
        }
        return true;
    }

    /** Read one length-prefixed frame payload ("" on EOF/error). */
    std::string
    readFrame()
    {
        std::string header = readExactly(4);
        if (header.size() != 4)
            return "";
        uint32_t length = 0;
        std::memcpy(&length, header.data(), 4);
        return readExactly(length);
    }

    /** Read until the peer closes (HTTP responses are close-delimited). */
    std::string
    readToEof()
    {
        std::string out;
        char chunk[4096];
        for (;;) {
            const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n <= 0)
                return out;
            out.append(chunk, static_cast<size_t>(n));
        }
    }

  private:
    std::string
    readExactly(size_t count)
    {
        std::string out;
        while (out.size() < count) {
            char chunk[4096];
            const size_t want =
                std::min(count - out.size(), sizeof(chunk));
            const ssize_t n = ::recv(fd_, chunk, want, 0);
            if (n <= 0)
                return out;
            out.append(chunk, static_cast<size_t>(n));
        }
        return out;
    }

    int fd_ = -1;
    bool connected_ = false;
};

class ServerSocketTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        obs::setEnabled(true);
        ServiceConfig config;
        config.registry.shards = 2;
        config.registry.refitEvery = 5;
        config.registry.trainObservations = 10;
        auto opened = BoundService::open(config);
        ASSERT_TRUE(opened.ok());
        service_ = std::move(opened).value();
        auto server = BoundServer::start(*service_, ServerOptions{});
        ASSERT_TRUE(server.ok());
        server_ = std::move(server).value();
        ASSERT_GT(server_->port(), 0);
    }

    void
    TearDown() override
    {
        if (server_ != nullptr)
            server_->stop();
        obs::setEnabled(false);
    }

    std::string
    requestPayload(Opcode op, std::string_view body, Client &client)
    {
        EXPECT_TRUE(client.send(frameRequest(op, body)));
        return client.readFrame();
    }

    std::unique_ptr<BoundService> service_;
    std::unique_ptr<BoundServer> server_;
};

TEST_F(ServerSocketTest, PingAnswersTheWireVersion)
{
    Client client(server_->port());
    ASSERT_TRUE(client.connected());
    const std::string payload = requestPayload(Opcode::Ping, "", client);
    ASSERT_EQ(payload.size(), 5u);
    EXPECT_EQ(static_cast<uint8_t>(payload[0]),
              static_cast<uint8_t>(Status::Ok));
    uint32_t version = 0;
    std::memcpy(&version, payload.data() + 1, 4);
    EXPECT_EQ(version, kWireVersion);
}

TEST_F(ServerSocketTest, EventsThenQueryOverOneBinaryConnection)
{
    Client client(server_->port());
    ASSERT_TRUE(client.connected());
    for (uint64_t job = 1; job <= 12; ++job) {
        JobEvent submit;
        submit.kind = EventKind::Submit;
        submit.jobId = job;
        submit.time = 100.0 * static_cast<double>(job);
        submit.machine = "m";
        submit.queue = "q";
        submit.procs = 4;
        std::string payload =
            requestPayload(Opcode::Event, encodeEvent(submit), client);
        ASSERT_FALSE(payload.empty());
        ASSERT_EQ(payload[0], 0) << "submit " << job;
        JobEvent start = submit;
        start.kind = EventKind::Start;
        start.time = submit.time + 30.0 + static_cast<double>(job);
        payload = requestPayload(Opcode::Event, encodeEvent(start), client);
        ASSERT_FALSE(payload.empty());
        ASSERT_EQ(payload[0], 0) << "start " << job;
        persist::StateReader reader(
            std::string_view(payload).substr(1), "event-response");
        EXPECT_EQ(reader.u8().value(), 1) << "start must apply";
    }

    BoundQuery query;
    query.machine = "m";
    query.queue = "q";
    query.procs = 4;
    query.quantile = 0.95;
    const std::string payload =
        requestPayload(Opcode::Query, encodeQuery(query), client);
    ASSERT_FALSE(payload.empty());
    ASSERT_EQ(payload[0], 0);
    auto answer = decodeAnswer(std::string_view(payload).substr(1));
    ASSERT_TRUE(answer.ok());
    EXPECT_TRUE(answer.value().known);
    // The snapshot is frozen at the last publish: training finalized
    // (and published) at 10 observations; 11 and 12 are not yet in.
    EXPECT_EQ(answer.value().observations, 10u);
    // The answer must equal the service's own view exactly.
    const BoundAnswer direct = service_->query(query);
    EXPECT_EQ(answer.value().upper, direct.upper);
    EXPECT_EQ(answer.value().lower, direct.lower);
    EXPECT_EQ(answer.value().version, direct.version);

    const std::string stats_payload =
        requestPayload(Opcode::Stats, "", client);
    ASSERT_FALSE(stats_payload.empty());
    ASSERT_EQ(stats_payload[0], 0);
    auto stats = decodeStats(std::string_view(stats_payload).substr(1));
    ASSERT_TRUE(stats.ok());
    uint64_t processed = 0;
    for (uint64_t count : stats.value().processedPerShard)
        processed += count;
    EXPECT_EQ(processed, 24u);
    EXPECT_EQ(stats.value().entries, 1u);
}

TEST_F(ServerSocketTest, DribbledBinaryFrameSurvivesTheSniff)
{
    // One byte at a time across the sniff boundary and the frame
    // header: the server must wait for 4 bytes before deciding.
    Client client(server_->port());
    ASSERT_TRUE(client.connected());
    const std::string framed = frameRequest(Opcode::Ping, "");
    for (char byte : framed) {
        ASSERT_TRUE(client.send(std::string_view(&byte, 1)));
    }
    const std::string payload = client.readFrame();
    ASSERT_EQ(payload.size(), 5u);
    EXPECT_EQ(payload[0], 0);
}

TEST_F(ServerSocketTest, RejectedEventReportsItsReason)
{
    Client client(server_->port());
    ASSERT_TRUE(client.connected());
    JobEvent start;
    start.kind = EventKind::Start;
    start.jobId = 1;
    start.time = 10.0;
    start.machine = "ghost";
    start.queue = "q";
    start.procs = 1;
    const std::string payload =
        requestPayload(Opcode::Event, encodeEvent(start), client);
    ASSERT_FALSE(payload.empty());
    EXPECT_EQ(payload[0], 0) << "a deterministic reject is Status::Ok";
    persist::StateReader reader(std::string_view(payload).substr(1),
                                "event-response");
    EXPECT_EQ(reader.u8().value(), 0);
    EXPECT_EQ(reader.str().value(), "start for unknown key");
}

TEST_F(ServerSocketTest, MalformedBodyAndUnknownOpcodeAnswerErrors)
{
    Client client(server_->port());
    ASSERT_TRUE(client.connected());
    std::string payload =
        requestPayload(Opcode::Query, "\x01garbage", client);
    ASSERT_FALSE(payload.empty());
    EXPECT_EQ(static_cast<uint8_t>(payload[0]),
              static_cast<uint8_t>(Status::Error));

    // The connection survives a malformed *body* (only corrupt frame
    // lengths are fatal)...
    payload = requestPayload(static_cast<Opcode>(0x7F), "", client);
    ASSERT_FALSE(payload.empty());
    EXPECT_EQ(static_cast<uint8_t>(payload[0]),
              static_cast<uint8_t>(Status::Error));

    // ...and still answers real requests afterwards.
    payload = requestPayload(Opcode::Ping, "", client);
    ASSERT_EQ(payload.size(), 5u);
    EXPECT_EQ(payload[0], 0);
}

TEST_F(ServerSocketTest, CorruptFrameLengthTearsTheConnectionDown)
{
    Client client(server_->port());
    ASSERT_TRUE(client.connected());
    const uint32_t huge = kMaxFrameBytes + 1;
    std::string corrupt(4, '\0');
    std::memcpy(corrupt.data(), &huge, 4);
    ASSERT_TRUE(client.send(corrupt));
    const std::string payload = client.readFrame();
    ASSERT_FALSE(payload.empty());
    EXPECT_EQ(static_cast<uint8_t>(payload[0]),
              static_cast<uint8_t>(Status::Error));
    // EOF follows: the server closed its side.
    EXPECT_TRUE(client.readFrame().empty());
}

TEST_F(ServerSocketTest, HttpRoutes)
{
    {
        Client client(server_->port());
        ASSERT_TRUE(client.connected());
        ASSERT_TRUE(client.send("GET /healthz HTTP/1.1\r\n"
                                "Host: localhost\r\n\r\n"));
        const std::string response = client.readToEof();
        EXPECT_EQ(response.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
        EXPECT_NE(response.find("{\"status\":\"ok\"}"),
                  std::string::npos);
    }
    {
        // Ingest over HTTP, then query the same key.
        Client client(server_->port());
        ASSERT_TRUE(client.send(
            "POST /event?kind=submit&job=1&time=100&machine=h&queue=q"
            "&procs=2 HTTP/1.1\r\n\r\n"));
        EXPECT_NE(client.readToEof().find("\"applied\":true"),
                  std::string::npos);
    }
    {
        Client client(server_->port());
        ASSERT_TRUE(client.send(
            "POST /event?kind=start&job=1&time=150&machine=h&queue=q"
            "&procs=2 HTTP/1.1\r\n\r\n"));
        EXPECT_NE(client.readToEof().find("\"applied\":true"),
                  std::string::npos);
    }
    {
        Client client(server_->port());
        ASSERT_TRUE(client.send(
            "GET /bound?machine=h&queue=q&procs=2&q=0.95 HTTP/1.1\r\n\r\n"));
        const std::string response = client.readToEof();
        EXPECT_NE(response.find("\"known\":true"), std::string::npos);
        // One observation, but no refit yet: the published snapshot is
        // still the entry-creation one.
        EXPECT_NE(response.find("\"observations\":0"), std::string::npos);
    }
    {
        Client client(server_->port());
        ASSERT_TRUE(client.send("GET /stats HTTP/1.1\r\n\r\n"));
        EXPECT_NE(client.readToEof().find("\"entries\":1"),
                  std::string::npos);
    }
    {
        Client client(server_->port());
        ASSERT_TRUE(client.send("GET /metrics HTTP/1.1\r\n\r\n"));
        const std::string response = client.readToEof();
        EXPECT_NE(response.find("qdel_serve_requests_total"),
                  std::string::npos);
        EXPECT_NE(response.find("text/plain; version=0.0.4"),
                  std::string::npos);
    }
    {
        Client client(server_->port());
        ASSERT_TRUE(client.send("GET /no-such HTTP/1.1\r\n\r\n"));
        EXPECT_EQ(client.readToEof().rfind("HTTP/1.1 404", 0), 0u);
    }
    {
        Client client(server_->port());
        ASSERT_TRUE(client.send(
            "POST /event?kind=bogus HTTP/1.1\r\n\r\n"));
        EXPECT_EQ(client.readToEof().rfind("HTTP/1.1 400", 0), 0u);
    }
}

TEST_F(ServerSocketTest, RetriedEventIsDedupedOverTheSocket)
{
    Client client(server_->port());
    ASSERT_TRUE(client.connected());
    JobEvent submit;
    submit.kind = EventKind::Submit;
    submit.jobId = 1;
    submit.time = 10.0;
    submit.machine = "m";
    submit.queue = "q";
    submit.procs = 4;
    submit.clientId = "sock-test";
    submit.seq = 1;

    std::string payload =
        requestPayload(Opcode::Event, encodeEvent(submit), client);
    ASSERT_FALSE(payload.empty());
    ASSERT_EQ(payload[0], 0);
    {
        persist::StateReader reader(std::string_view(payload).substr(1),
                                    "event-response");
        EXPECT_EQ(reader.u8().value(), 1);   // applied
        EXPECT_EQ(reader.str().value(), ""); // no reject reason
        EXPECT_EQ(reader.u8().value(), 0);   // not a dedup
    }

    // The retry (same clientId + seq, e.g. after a lost response) is
    // acknowledged but not re-applied.
    payload = requestPayload(Opcode::Event, encodeEvent(submit), client);
    ASSERT_FALSE(payload.empty());
    ASSERT_EQ(payload[0], 0);
    {
        persist::StateReader reader(std::string_view(payload).substr(1),
                                    "event-response");
        EXPECT_EQ(reader.u8().value(), 0);   // not applied...
        EXPECT_EQ(reader.str().value(), "");
        EXPECT_EQ(reader.u8().value(), 1);   // ...because deduped
    }
    uint64_t processed = 0;
    for (uint64_t count : service_->stats().processedPerShard)
        processed += count;
    EXPECT_EQ(processed, 1u) << "the retry must not count as processed";
}

TEST_F(ServerSocketTest, HttpRetryWithClientSeqIsDeduped)
{
    const char *request =
        "POST /event?kind=submit&job=9&time=5&machine=h&queue=q&procs=2"
        "&client=web&seq=1 HTTP/1.1\r\n\r\n";
    {
        Client client(server_->port());
        ASSERT_TRUE(client.send(request));
        EXPECT_NE(client.readToEof().find("\"applied\":true"),
                  std::string::npos);
    }
    {
        Client client(server_->port());
        ASSERT_TRUE(client.send(request));
        const std::string response = client.readToEof();
        EXPECT_NE(response.find("\"applied\":false"), std::string::npos);
        EXPECT_NE(response.find("\"deduped\":true"), std::string::npos);
    }
}

TEST_F(ServerSocketTest, DebugEndpointsServeWellFormedJson)
{
    // Put one finalized entry into the registry so the calibration
    // report has a row to render.
    Client ingest(server_->port());
    ASSERT_TRUE(ingest.connected());
    for (uint64_t job = 1; job <= 12; ++job) {
        JobEvent submit;
        submit.kind = EventKind::Submit;
        submit.jobId = job;
        submit.time = 10.0 * static_cast<double>(job);
        submit.machine = "m";
        submit.queue = "q";
        submit.procs = 4;
        ASSERT_EQ(requestPayload(Opcode::Event, encodeEvent(submit),
                                 ingest)[0],
                  0);
        JobEvent start = submit;
        start.kind = EventKind::Start;
        start.time = submit.time + 5.0;
        ASSERT_EQ(requestPayload(Opcode::Event, encodeEvent(start),
                                 ingest)[0],
                  0);
    }

    {
        Client client(server_->port());
        ASSERT_TRUE(client.send(
            "GET /debug/calibration HTTP/1.1\r\n\r\n"));
        const std::string response = client.readToEof();
        EXPECT_EQ(response.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
        EXPECT_NE(response.find("application/json"), std::string::npos);
        EXPECT_NE(response.find("\"confidence\":"), std::string::npos);
        EXPECT_NE(response.find("\"rows\":["), std::string::npos);
        EXPECT_NE(response.find("\"machine\":\"m\""), std::string::npos);
        EXPECT_NE(response.find("\"failing\":"), std::string::npos);
        // JSON body, balanced braces end-to-end.
        const size_t body = response.find("\r\n\r\n") + 4;
        int depth = 0;
        for (size_t i = body; i < response.size(); ++i) {
            if (response[i] == '{')
                ++depth;
            if (response[i] == '}')
                --depth;
        }
        EXPECT_EQ(depth, 0);
    }
    {
        Client client(server_->port());
        ASSERT_TRUE(client.send("GET /debug/shards HTTP/1.1\r\n\r\n"));
        const std::string response = client.readToEof();
        EXPECT_EQ(response.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
        EXPECT_NE(response.find("\"durable\":false"), std::string::npos);
        EXPECT_NE(response.find("\"shards\":["), std::string::npos);
        EXPECT_NE(response.find("\"applied\":"), std::string::npos);
        EXPECT_NE(response.find("\"walSinceCheckpoint\":"),
                  std::string::npos);
    }
    {
        Client client(server_->port());
        ASSERT_TRUE(client.send("GET /debug/conns HTTP/1.1\r\n\r\n"));
        const std::string response = client.readToEof();
        EXPECT_EQ(response.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
        EXPECT_NE(response.find("\"loops\":["), std::string::npos);
        EXPECT_NE(response.find("\"connCount\":"), std::string::npos);
        // The requesting connection itself must be visible somewhere.
        EXPECT_NE(response.find("\"proto\":"), std::string::npos);
    }
}

TEST_F(ServerSocketTest, TraceIdsPropagateIntoTheEventStream)
{
    obs::events().clear();
    constexpr uint64_t kBinaryTrace = 0x1122334455667788ULL;

    // Binary path: the v3 optional tail on an Event frame.
    Client client(server_->port());
    ASSERT_TRUE(client.connected());
    JobEvent submit;
    submit.kind = EventKind::Submit;
    submit.jobId = 1;
    submit.time = 10.0;
    submit.machine = "t";
    submit.queue = "q";
    submit.procs = 4;
    submit.traceId = kBinaryTrace;
    const std::string payload =
        requestPayload(Opcode::Event, encodeEventWire(submit), client);
    ASSERT_FALSE(payload.empty());
    ASSERT_EQ(payload[0], 0);

    // HTTP path: X-Qdel-Trace header on a bound query.
    Client http(server_->port());
    ASSERT_TRUE(http.send(
        "GET /bound?machine=t&queue=q&procs=4&q=0.95 HTTP/1.1\r\n"
        "X-Qdel-Trace: 00000000deadbeef\r\n\r\n"));
    EXPECT_NE(http.readToEof().find("\"known\":true"), std::string::npos);

    // The reactor emits its spans as the handler scopes unwind, which
    // may race the response flush by a few microseconds — poll.
    bool saw_ingest = false, saw_frame_span = false, saw_http = false;
    for (int attempt = 0; attempt < 200; ++attempt) {
        saw_ingest = saw_frame_span = saw_http = false;
        for (const auto &event : obs::events().drain()) {
            if (event.trace == kBinaryTrace) {
                if (std::string(event.label) == "service_ingest")
                    saw_ingest = true;
                if (std::string(event.label) == "serve_request")
                    saw_frame_span = true;
            }
            if (event.trace == 0x00000000deadbeefULL &&
                std::string(event.label) == "serve_http")
                saw_http = true;
        }
        if (saw_ingest && saw_frame_span && saw_http)
            break;
        usleep(10'000);
    }
    EXPECT_TRUE(saw_ingest) << "traced ingest instant missing";
    EXPECT_TRUE(saw_frame_span) << "traced frame span missing";
    EXPECT_TRUE(saw_http) << "traced http span missing";

    // An untraced request must not invent a trace id: every event with
    // a nonzero trace matches one of the two ids above.
    for (const auto &event : obs::events().drain())
        if (event.trace != 0)
            EXPECT_TRUE(event.trace == kBinaryTrace ||
                        event.trace == 0x00000000deadbeefULL)
                << "unexpected trace on " << event.label;
}

TEST_F(ServerSocketTest, WireV2ClientRoundTripsUnchanged)
{
    // A v2 client encodes events and queries without the trace tail —
    // exactly what encodeEvent()/encodeQuery(traceId=0) produce. The
    // v3 server must answer byte-compatible responses.
    Client client(server_->port());
    ASSERT_TRUE(client.connected());

    JobEvent submit;
    submit.kind = EventKind::Submit;
    submit.jobId = 7;
    submit.time = 100.0;
    submit.machine = "v2";
    submit.queue = "q";
    submit.procs = 2;
    const std::string v2_event = encodeEvent(submit);  // no tail, ever
    std::string payload =
        requestPayload(Opcode::Event, v2_event, client);
    ASSERT_FALSE(payload.empty());
    EXPECT_EQ(payload[0], 0);
    {
        persist::StateReader reader(std::string_view(payload).substr(1),
                                    "event-response");
        EXPECT_EQ(reader.u8().value(), 1);   // applied
        EXPECT_EQ(reader.str().value(), ""); // no reject reason
        EXPECT_EQ(reader.u8().value(), 0);   // not deduped
        EXPECT_TRUE(reader.expectEnd().ok()) << "v2 response grew";
    }

    BoundQuery query;
    query.machine = "v2";
    query.queue = "q";
    query.procs = 2;
    query.quantile = 0.95;
    ASSERT_EQ(query.traceId, 0u);
    payload = requestPayload(Opcode::Query, encodeQuery(query), client);
    ASSERT_FALSE(payload.empty());
    EXPECT_EQ(payload[0], 0);
    auto answer = decodeAnswer(std::string_view(payload).substr(1));
    ASSERT_TRUE(answer.ok());
    EXPECT_TRUE(answer.value().known);
}

/** Overload and deadline behaviour needs custom ServerOptions, so
 *  these tests build their own server instead of using the fixture. */
class OverloadTest : public ::testing::Test
{
  protected:
    void
    startServer(const ServerOptions &options, uint64_t maxPending = 0,
                uint32_t retryAfter = 1)
    {
        obs::setEnabled(true);
        ServiceConfig config;
        config.registry.shards = 2;
        config.registry.refitEvery = 5;
        config.registry.trainObservations = 10;
        config.maxPendingPerShard = maxPending;
        config.shedRetryAfterSeconds = retryAfter;
        auto opened = BoundService::open(config);
        ASSERT_TRUE(opened.ok());
        service_ = std::move(opened).value();
        auto server = BoundServer::start(*service_, options);
        ASSERT_TRUE(server.ok());
        server_ = std::move(server).value();
    }

    void
    TearDown() override
    {
        if (server_ != nullptr)
            server_->stop();
        obs::setEnabled(false);
    }

    std::unique_ptr<BoundService> service_;
    std::unique_ptr<BoundServer> server_;
};

TEST_F(OverloadTest, ExcessBinaryConnectionGetsAShedFrame)
{
    ServerOptions options;
    options.maxConnections = 1;
    startServer(options);

    Client holder(server_->port());
    ASSERT_TRUE(holder.connected());
    // A round trip guarantees the holder occupies the one slot.
    ASSERT_TRUE(holder.send(frameRequest(Opcode::Ping, "")));
    ASSERT_EQ(holder.readFrame().size(), 5u);

    Client excess(server_->port());
    ASSERT_TRUE(excess.connected());
    ASSERT_TRUE(excess.send(frameRequest(Opcode::Ping, "")));
    const std::string payload = excess.readFrame();
    ASSERT_FALSE(payload.empty());
    ASSERT_EQ(static_cast<uint8_t>(payload[0]),
              static_cast<uint8_t>(Status::Shed));
    persist::StateReader reader(std::string_view(payload).substr(1),
                                "shed-response");
    EXPECT_FALSE(reader.str().value().empty());  // reason
    EXPECT_GE(reader.u32().value(), 1u);         // retry-after seconds
    // The shed connection is closed; the held one still works.
    EXPECT_TRUE(excess.readFrame().empty());
    ASSERT_TRUE(holder.send(frameRequest(Opcode::Ping, "")));
    EXPECT_EQ(holder.readFrame().size(), 5u);
}

TEST_F(OverloadTest, ExcessHttpConnectionGets503WithRetryAfter)
{
    ServerOptions options;
    options.maxConnections = 1;
    startServer(options);

    Client holder(server_->port());
    ASSERT_TRUE(holder.connected());
    ASSERT_TRUE(holder.send(frameRequest(Opcode::Ping, "")));
    ASSERT_EQ(holder.readFrame().size(), 5u);

    Client excess(server_->port());
    ASSERT_TRUE(excess.connected());
    ASSERT_TRUE(excess.send("GET /healthz HTTP/1.1\r\n\r\n"));
    const std::string response = excess.readToEof();
    EXPECT_EQ(response.rfind("HTTP/1.1 503", 0), 0u) << response;
    EXPECT_NE(response.find("Retry-After:"), std::string::npos);
}

TEST_F(OverloadTest, IdleAndStalledConnectionsAreReaped)
{
    ServerOptions options;
    options.ioTimeoutMs = 100;
    options.idleTimeoutMs = 150;
    startServer(options);

    {
        // Fully idle: never sends a byte; reaped at the idle deadline.
        Client idle(server_->port());
        ASSERT_TRUE(idle.connected());
        EXPECT_TRUE(idle.readFrame().empty()) << "expected reap EOF";
    }
    {
        // Slow-loris: half a frame header, then silence; reaped at the
        // io deadline.
        Client loris(server_->port());
        ASSERT_TRUE(loris.connected());
        ASSERT_TRUE(loris.send(std::string_view("\x09\x00", 2)));
        EXPECT_TRUE(loris.readFrame().empty()) << "expected reap EOF";
    }
    // The server is healthy afterwards.
    Client fresh(server_->port());
    ASSERT_TRUE(fresh.connected());
    ASSERT_TRUE(fresh.send(frameRequest(Opcode::Ping, "")));
    EXPECT_EQ(fresh.readFrame().size(), 5u);
}

TEST_F(OverloadTest, PendingBoundShedsSubmitsUntilStartsDrain)
{
    startServer(ServerOptions{}, /*maxPending=*/1, /*retryAfter=*/7);

    Client client(server_->port());
    ASSERT_TRUE(client.connected());
    JobEvent submit;
    submit.kind = EventKind::Submit;
    submit.jobId = 1;
    submit.time = 10.0;
    submit.machine = "m";
    submit.queue = "q";
    submit.procs = 4;

    std::string payload;
    {
        EXPECT_TRUE(client.send(frameRequest(Opcode::Event,
                                             encodeEvent(submit))));
        payload = client.readFrame();
        ASSERT_FALSE(payload.empty());
        EXPECT_EQ(payload[0], 0);
    }
    {
        // Second submit for the same shard: over the pending bound.
        JobEvent second = submit;
        second.jobId = 2;
        second.time = 11.0;
        EXPECT_TRUE(client.send(frameRequest(Opcode::Event,
                                             encodeEvent(second))));
        payload = client.readFrame();
        ASSERT_FALSE(payload.empty());
        ASSERT_EQ(static_cast<uint8_t>(payload[0]),
                  static_cast<uint8_t>(Status::Shed));
        persist::StateReader reader(std::string_view(payload).substr(1),
                                    "shed-response");
        EXPECT_FALSE(reader.str().value().empty());
        EXPECT_EQ(reader.u32().value(), 7u) << "configured Retry-After";
        // Shedding an event does NOT tear down the connection.
    }
    {
        // Draining the pending job re-opens admission.
        JobEvent start = submit;
        start.kind = EventKind::Start;
        start.time = 40.0;
        EXPECT_TRUE(client.send(frameRequest(Opcode::Event,
                                             encodeEvent(start))));
        payload = client.readFrame();
        ASSERT_FALSE(payload.empty());
        EXPECT_EQ(payload[0], 0);
        JobEvent second = submit;
        second.jobId = 2;
        second.time = 41.0;
        EXPECT_TRUE(client.send(frameRequest(Opcode::Event,
                                             encodeEvent(second))));
        payload = client.readFrame();
        ASSERT_FALSE(payload.empty());
        EXPECT_EQ(payload[0], 0) << "submit after drain must be admitted";
        persist::StateReader reader(std::string_view(payload).substr(1),
                                    "event-response");
        EXPECT_EQ(reader.u8().value(), 1);
    }
    // Shed events were never logged or applied: only the three
    // processed events count.
    uint64_t processed = 0;
    for (uint64_t count : service_->stats().processedPerShard)
        processed += count;
    EXPECT_EQ(processed, 3u);
}

TEST_F(ServerSocketTest, StopIsIdempotentAndClosesClients)
{
    Client client(server_->port());
    ASSERT_TRUE(client.connected());
    server_->stop();
    server_->stop();  // idempotent
    // The open (idle, pre-sniff) connection is shut down.
    EXPECT_TRUE(client.readFrame().empty());
    // New connections are refused.
    Client late(server_->port());
    std::string payload;
    if (late.connected()) {
        // A race can accept just before close; it must still EOF.
        late.send(frameRequest(Opcode::Ping, ""));
        payload = late.readFrame();
    }
    EXPECT_TRUE(payload.empty());
}

} // namespace
} // namespace serve
} // namespace qdel
