/**
 * @file
 * Reactor stress tests: a multi-loop BoundServer under 64 concurrent
 * pipelined clients speaking a mix of binary framing and HTTP
 * keep-alive, asserting (a) every client's answers come back in its
 * own send order and (b) each event applies exactly once even when the
 * client deliberately resends its whole burst — the (clientId, seq)
 * fence must dedup every duplicate. Run under TSan this doubles as the
 * reactor's data-race suite.
 *
 * Also home of the oversized-request regression: a near-limit frame
 * must not pin its receive buffer forever; the server releases the
 * capacity and counts it in qdel_serve_buffer_shrinks_total.
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.hh"
#include "persist/state_codec.hh"
#include "serve/conn_buffer.hh"
#include "serve/server.hh"
#include "serve/service.hh"
#include "serve/wire.hh"

namespace qdel {
namespace serve {
namespace {

/** Blocking loopback client (one per stress thread). */
class Client
{
  public:
    explicit Client(int port)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        struct sockaddr_in address;
        std::memset(&address, 0, sizeof(address));
        address.sin_family = AF_INET;
        address.sin_port = htons(static_cast<uint16_t>(port));
        ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
        connected_ =
            ::connect(fd_, reinterpret_cast<struct sockaddr *>(&address),
                      sizeof(address)) == 0;
    }

    ~Client()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    bool connected() const { return connected_; }

    bool
    send(std::string_view bytes)
    {
        size_t sent = 0;
        while (sent < bytes.size()) {
            const ssize_t n = ::send(fd_, bytes.data() + sent,
                                     bytes.size() - sent, 0);
            if (n <= 0)
                return false;
            sent += static_cast<size_t>(n);
        }
        return true;
    }

    /** Read one length-prefixed frame payload ("" on EOF/error). */
    std::string
    readFrame()
    {
        std::string header = readExactly(4);
        if (header.size() != 4)
            return "";
        uint32_t length = 0;
        std::memcpy(&length, header.data(), 4);
        return readExactly(length);
    }

    /** Read one HTTP response (head + Content-Length body); "" on
     *  error. Requires the server to emit Content-Length, which it
     *  always does. */
    std::string
    readHttpResponse()
    {
        while (buffered_.find("\r\n\r\n") == std::string::npos) {
            if (!fill())
                return "";
        }
        const size_t head_end = buffered_.find("\r\n\r\n") + 4;
        const std::string head = buffered_.substr(0, head_end);
        size_t content_length = 0;
        const size_t at = head.find("Content-Length:");
        if (at != std::string::npos)
            content_length = static_cast<size_t>(
                std::atoll(head.c_str() + at + 15));
        while (buffered_.size() < head_end + content_length) {
            if (!fill())
                return "";
        }
        std::string response =
            buffered_.substr(0, head_end + content_length);
        buffered_.erase(0, head_end + content_length);
        return response;
    }

  private:
    bool
    fill()
    {
        char chunk[4096];
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n <= 0)
            return false;
        buffered_.append(chunk, static_cast<size_t>(n));
        return true;
    }

    std::string
    readExactly(size_t count)
    {
        while (buffered_.size() < count) {
            if (!fill())
                break;
        }
        if (buffered_.size() < count)
            return "";
        std::string out = buffered_.substr(0, count);
        buffered_.erase(0, count);
        return out;
    }

    int fd_ = -1;
    bool connected_ = false;
    std::string buffered_;
};

uint64_t
counterValue(const std::string &name)
{
    for (const auto &counter : obs::registry().snapshot().counters) {
        if (counter.name == name)
            return counter.value;
    }
    return 0;
}

struct EventReply
{
    bool ok = false;
    bool applied = false;
    bool deduped = false;
};

EventReply
parseEventReply(const std::string &payload)
{
    EventReply reply;
    if (payload.empty() ||
        payload[0] != static_cast<char>(Status::Ok))
        return reply;
    persist::StateReader reader(
        std::string_view(payload).substr(1));
    auto applied = reader.u8();
    auto reason = reader.str();
    auto deduped = reader.u8();
    if (!applied.ok() || !reason.ok() || !deduped.ok())
        return reply;
    reply.ok = true;
    reply.applied = applied.value() != 0;
    reply.deduped = deduped.value() != 0;
    return reply;
}

class ReactorStressTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        obs::setEnabled(true);
        ServiceConfig config;
        config.registry.shards = 4;
        config.registry.refitEvery = 5;
        config.registry.trainObservations = 10;
        auto opened = BoundService::open(config);
        ASSERT_TRUE(opened.ok());
        service_ = std::move(opened).value();

        ServerOptions options;
        options.reactorThreads = 4;
        options.maxConnections = 128;
        auto server = BoundServer::start(*service_, options);
        ASSERT_TRUE(server.ok());
        server_ = std::move(server).value();
        ASSERT_GT(server_->port(), 0);
    }

    void
    TearDown() override
    {
        if (server_ != nullptr)
            server_->stop();
        obs::setEnabled(false);
    }

    std::unique_ptr<BoundService> service_;
    std::unique_ptr<BoundServer> server_;
};

constexpr int kClients = 64;       // Half binary, half HTTP.
constexpr uint64_t kJobsPerClient = 8;

/** One binary client: a pipelined burst of submit/start/ping triples,
 *  then the identical burst again (every event must dedup), then a
 *  pipelined query burst. Answers must arrive in send order. */
bool
runBinaryClient(int port, int index, std::atomic<int> *failures)
{
    Client client(port);
    if (!client.connected()) {
        ++*failures;
        return false;
    }
    const std::string client_id = "stress-" + std::to_string(index);
    const std::string machine = "stress";
    const std::string queue = "q" + std::to_string(index % 4);

    std::string burst;
    for (uint64_t job = 1; job <= kJobsPerClient; ++job) {
        JobEvent submit;
        submit.kind = EventKind::Submit;
        // Job ids are unique per key across clients sharing a queue.
        submit.jobId = static_cast<uint64_t>(index) * 1000 + job;
        submit.time = 100.0 * static_cast<double>(job);
        submit.machine = machine;
        submit.queue = queue;
        submit.procs = 4;
        submit.clientId = client_id;
        submit.seq = 2 * job - 1;
        JobEvent start = submit;
        start.kind = EventKind::Start;
        start.time = submit.time + 30.0;
        start.seq = 2 * job;
        burst += frameRequest(Opcode::Event, encodeEvent(submit));
        burst += frameRequest(Opcode::Event, encodeEvent(start));
        burst += frameRequest(Opcode::Ping, "");
    }

    // Round 1: everything fresh — replies must be, in order:
    // applied, applied, pong for every job.
    if (!client.send(burst)) {
        ++*failures;
        return false;
    }
    for (uint64_t job = 1; job <= kJobsPerClient; ++job) {
        for (int leg = 0; leg < 2; ++leg) {
            const EventReply reply =
                parseEventReply(client.readFrame());
            if (!reply.ok || !reply.applied || reply.deduped) {
                ++*failures;
                return false;
            }
        }
        const std::string pong = client.readFrame();
        if (pong.size() != 5 ||
            pong[0] != static_cast<char>(Status::Ok)) {
            ++*failures;
            return false;
        }
    }

    // Round 2: the identical burst — the (clientId, seq) fence must
    // answer every event deduped, in the same order, applying none.
    if (!client.send(burst)) {
        ++*failures;
        return false;
    }
    for (uint64_t job = 1; job <= kJobsPerClient; ++job) {
        for (int leg = 0; leg < 2; ++leg) {
            const EventReply reply =
                parseEventReply(client.readFrame());
            if (!reply.ok || reply.applied || !reply.deduped) {
                ++*failures;
                return false;
            }
        }
        const std::string pong = client.readFrame();
        if (pong.size() != 5 ||
            pong[0] != static_cast<char>(Status::Ok)) {
            ++*failures;
            return false;
        }
    }

    // Round 3: a pipelined query burst through the batched read path.
    BoundQuery query;
    query.machine = machine;
    query.queue = queue;
    query.procs = 4;
    query.quantile = 0.95;
    std::string queries;
    for (int i = 0; i < 16; ++i)
        queries += frameRequest(Opcode::Query, encodeQuery(query));
    if (!client.send(queries)) {
        ++*failures;
        return false;
    }
    for (int i = 0; i < 16; ++i) {
        const std::string payload = client.readFrame();
        if (payload.empty() ||
            payload[0] != static_cast<char>(Status::Ok)) {
            ++*failures;
            return false;
        }
        auto answer = decodeAnswer(
            std::string_view(payload).substr(1));
        if (!answer.ok() || !answer.value().known) {
            ++*failures;
            return false;
        }
    }
    return true;
}

/** One HTTP client: pipelined keep-alive healthz/bound requests, then
 *  a final close-delimited one. */
bool
runHttpClient(int port, int index, std::atomic<int> *failures)
{
    Client client(port);
    if (!client.connected()) {
        ++*failures;
        return false;
    }
    const std::string keep =
        "GET /healthz HTTP/1.1\r\nHost: t\r\n"
        "Connection: keep-alive\r\n\r\n"
        "GET /bound?machine=stress&queue=q" +
        std::to_string(index % 4) +
        "&procs=4&q=0.95 HTTP/1.1\r\nHost: t\r\n"
        "Connection: keep-alive\r\n\r\n"
        "GET /stats HTTP/1.1\r\nHost: t\r\n"
        "Connection: keep-alive\r\n\r\n";
    if (!client.send(keep)) {
        ++*failures;
        return false;
    }
    for (int i = 0; i < 3; ++i) {
        const std::string response = client.readHttpResponse();
        if (response.find("HTTP/1.1 200") != 0 ||
            response.find("Connection: keep-alive") ==
                std::string::npos) {
            ++*failures;
            return false;
        }
    }
    // Default (no keep-alive header): answered then closed.
    if (!client.send("GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")) {
        ++*failures;
        return false;
    }
    const std::string last = client.readHttpResponse();
    if (last.find("HTTP/1.1 200") != 0 ||
        last.find("Connection: close") == std::string::npos) {
        ++*failures;
        return false;
    }
    return true;
}

TEST_F(ReactorStressTest, PipelinedClientsKeepOrderingAndExactlyOnce)
{
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
        const int port = server_->port();
        if (i % 2 == 0) {
            threads.emplace_back([port, i, &failures] {
                runBinaryClient(port, i, &failures);
            });
        } else {
            threads.emplace_back([port, i, &failures] {
                runHttpClient(port, i, &failures);
            });
        }
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(failures.load(), 0);

    // Exactly-once: 32 binary clients x 16 events, every duplicate
    // deduped — the registry processed exactly one copy of each.
    const ServeStats stats = service_->stats();
    const uint64_t processed =
        std::accumulate(stats.processedPerShard.begin(),
                        stats.processedPerShard.end(), uint64_t{0});
    EXPECT_EQ(processed, uint64_t{kClients / 2} * 2 * kJobsPerClient);
}

TEST_F(ReactorStressTest, OversizedRequestReleasesBufferCapacity)
{
    const uint64_t shrinks_before =
        counterValue("qdel_serve_buffer_shrinks_total");

    // A query whose machine name alone is far past the shrink
    // threshold forces the receive buffer to grow while the frame
    // dribbles in; once serviced, the capacity must be given back.
    BoundQuery query;
    query.machine = std::string(512 * 1024, 'm');
    query.queue = "q";
    query.procs = 4;
    Client client(server_->port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.send(frameRequest(Opcode::Query,
                                         encodeQuery(query))));
    const std::string payload = client.readFrame();
    ASSERT_FALSE(payload.empty());
    EXPECT_EQ(payload[0], static_cast<char>(Status::Ok));
    auto answer = decodeAnswer(std::string_view(payload).substr(1));
    ASSERT_TRUE(answer.ok());
    EXPECT_FALSE(answer.value().known);

    // The response flushes just before the loop thread runs the
    // shrink, so the counter can trail the answer by a beat.
    uint64_t shrinks_after = shrinks_before;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (std::chrono::steady_clock::now() < deadline) {
        shrinks_after =
            counterValue("qdel_serve_buffer_shrinks_total");
        if (shrinks_after > shrinks_before)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_GT(shrinks_after, shrinks_before);
}

TEST(ReactorOptions, ThreadCountIsValidated)
{
    ServerOptions options;
    options.reactorThreads = 257;
    EXPECT_FALSE(options.validate().ok());
    options.reactorThreads = 0;  // 0 = hardware concurrency: valid.
    EXPECT_TRUE(options.validate().ok());
}

} // namespace
} // namespace serve
} // namespace qdel
