/**
 * @file
 * Online calibration contract tests.
 *
 * The load-bearing one drives a replayed event stream through the
 * registry while an in-test oracle applies the offline scoring rule
 * (freeze the published bound at submit, judge it at start, count
 * infinite bounds as covering, score only post-training jobs) — the
 * live report must agree exactly, and its empirical coverage must sit
 * within binomial tolerance of the requested confidence. A deliberately
 * mis-specified predictor (the raw 0.5-percentile claiming C = 0.95)
 * must trip the binomial failing flag.
 */

#include <cmath>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/calibration.hh"
#include "persist/state_codec.hh"
#include "serve/bound_registry.hh"
#include "stats/special_functions.hh"

namespace qdel {
namespace serve {
namespace {

/** Deterministic lognormal wait series. */
std::vector<double>
syntheticWaits(size_t n, uint32_t seed)
{
    std::mt19937 rng(seed);
    std::lognormal_distribution<double> dist(5.0, 1.5);
    std::vector<double> waits;
    waits.reserve(n);
    for (size_t i = 0; i < n; ++i)
        waits.push_back(dist(rng));
    return waits;
}

JobEvent
makeEvent(EventKind kind, uint64_t job, double time)
{
    JobEvent event;
    event.kind = kind;
    event.jobId = job;
    event.time = time;
    event.machine = "m";
    event.queue = "q";
    event.procs = 4;
    return event;
}

TEST(CalibrationMath, BinomialTailMatchesTheStatsOracle)
{
    // The obs layer reimplements the binomial CDF (it sits below
    // qdel_stats in the dependency order); the two must agree to
    // floating-point noise across small and large n.
    for (const long long n : {1LL, 7LL, 50LL, 256LL, 1000LL}) {
        for (const double p : {0.05, 0.5, 0.9, 0.95, 0.99}) {
            for (long long k = 0; k <= n; k += std::max(1LL, n / 17)) {
                const double ours = obs::binomialTailBelow(
                    static_cast<uint64_t>(k), static_cast<uint64_t>(n),
                    p);
                const double oracle = stats::binomialCdf(k, n, p);
                EXPECT_NEAR(ours, oracle, 1e-9)
                    << "k=" << k << " n=" << n << " p=" << p;
            }
        }
    }
    EXPECT_EQ(obs::binomialTailBelow(0, 0, 0.5), 1.0);
    EXPECT_EQ(obs::binomialTailBelow(5, 5, 0.5), 1.0);
    EXPECT_EQ(obs::binomialTailBelow(0, 10, 0.0), 1.0);
    EXPECT_EQ(obs::binomialTailBelow(9, 10, 1.0), 0.0);
}

TEST(CalibrationMath, WindowRingWrapsAndSerializes)
{
    obs::CalibrationWindow window;
    EXPECT_EQ(window.coverage(), -1.0);

    // Fill past capacity with a recognizable pattern: the first
    // kCapacity outcomes are misses, everything after is a hit, so a
    // full rotation leaves only hits resident.
    for (size_t i = 0; i < obs::CalibrationWindow::kCapacity; ++i)
        window.record(false);
    EXPECT_EQ(window.hits(), 0u);
    for (size_t i = 0; i < obs::CalibrationWindow::kCapacity; ++i)
        window.record(true);
    EXPECT_EQ(window.count(), obs::CalibrationWindow::kCapacity);
    EXPECT_EQ(window.hits(), obs::CalibrationWindow::kCapacity);
    EXPECT_EQ(window.coverage(), 1.0);

    // Partial overwrite: 10 misses evict 10 hits.
    for (int i = 0; i < 10; ++i)
        window.record(false);
    EXPECT_EQ(window.hits(), obs::CalibrationWindow::kCapacity - 10);

    // Serialize/restore preserves contents and order.
    const auto bytes = window.serialize();
    EXPECT_EQ(bytes.size(), window.count());
    obs::CalibrationWindow copy;
    copy.restore(bytes);
    EXPECT_EQ(copy.count(), window.count());
    EXPECT_EQ(copy.hits(), window.hits());
}

TEST(CalibrationMath, AssessOnlyFlagsWithEvidence)
{
    // Below the sample floor nothing fails, however bad the coverage.
    EXPECT_FALSE(obs::assessCalibration(0, 49, 0.95).failing);
    // A perfectly calibrated window is clean.
    EXPECT_FALSE(obs::assessCalibration(95, 100, 0.95).failing);
    // Half coverage claiming 0.95 over 100 samples is overwhelming
    // evidence of miscalibration.
    const auto verdict = obs::assessCalibration(50, 100, 0.95);
    EXPECT_TRUE(verdict.failing);
    EXPECT_LT(verdict.pValue, 1e-3);
    EXPECT_NEAR(verdict.coverage, 0.5, 1e-12);
    EXPECT_NEAR(verdict.drift, -0.45, 1e-12);
}

TEST(Calibration, LiveReportMatchesTheOfflineScoringOracle)
{
    BoundRegistry::Options options;
    options.shards = 2;
    options.method = "bmbp";
    options.quantile = 0.95;
    options.confidence = 0.95;
    options.refitEvery = 10;
    options.trainObservations = 20;
    ASSERT_TRUE(options.validate().ok());
    BoundRegistry registry(options);

    const auto waits = syntheticWaits(400, 7);
    BoundQuery probe;
    probe.machine = "m";
    probe.queue = "q";
    probe.procs = 4;
    probe.quantile = options.quantile;

    uint64_t oracle_scored = 0, oracle_hits = 0, oracle_infinite = 0;
    double t = 0.0;
    for (size_t i = 0; i < waits.size(); ++i) {
        t += 1.0;
        // The oracle freezes the published bound the instant the
        // submit is processed — exactly what a live client querying at
        // submit time would have been told.
        const BoundAnswer at_submit = registry.query(probe);
        const bool scoreable =
            at_submit.known &&
            at_submit.observations >= options.trainObservations;
        const double frozen = at_submit.upper;

        ASSERT_TRUE(
            registry.apply(makeEvent(EventKind::Submit, i + 1, t))
                .applied);
        ASSERT_TRUE(registry
                        .apply(makeEvent(EventKind::Start, i + 1,
                                         t + waits[i]))
                        .applied);
        if (!scoreable)
            continue;
        ++oracle_scored;
        if (!std::isfinite(frozen)) {
            ++oracle_infinite;
            ++oracle_hits;  // Offline rule: no usable bound == covered.
        } else if (frozen >= waits[i]) {
            ++oracle_hits;
        }
    }

    const auto report = registry.calibrationReport();
    ASSERT_EQ(report.rows.size(), 1u);
    const auto &row = report.rows[0];
    EXPECT_EQ(row.machine, "m");
    EXPECT_EQ(row.queue, "q");
    EXPECT_TRUE(row.finalized);
    EXPECT_EQ(row.scored, oracle_scored);
    EXPECT_EQ(row.hits, oracle_hits);
    EXPECT_EQ(row.infinite, oracle_infinite);
    ASSERT_GT(row.scored, 100u) << "trace too short to say anything";

    // Empirical coverage within binomial tolerance of the requested
    // confidence: 4 sigma of Bin(n, C) leaves ~6e-5 flake probability,
    // and the deterministic seed pins it in practice.
    const double n = static_cast<double>(row.scored);
    const double tolerance =
        4.0 * std::sqrt(0.95 * 0.05 / n) + 1.0 / n;
    EXPECT_GE(row.lifetimeCoverage, 0.95 - tolerance);
    EXPECT_FALSE(row.failing);
    EXPECT_EQ(report.failingEntries, 0u);
    EXPECT_EQ(report.scoredEntries, 1u);
}

TEST(Calibration, MisSpecifiedPredictorTripsTheFailingFlag)
{
    // The raw 0.5-percentile covers ~half of waits; claiming C = 0.95
    // for it is exactly the miscalibration the binomial test exists to
    // catch.
    BoundRegistry::Options options;
    options.shards = 1;
    options.method = "percentile";
    options.quantile = 0.5;
    options.confidence = 0.95;
    options.refitEvery = 10;
    options.trainObservations = 20;
    ASSERT_TRUE(options.validate().ok());
    BoundRegistry registry(options);

    const auto waits = syntheticWaits(400, 11);
    double t = 0.0;
    for (size_t i = 0; i < waits.size(); ++i) {
        t += 1.0;
        ASSERT_TRUE(
            registry.apply(makeEvent(EventKind::Submit, i + 1, t))
                .applied);
        ASSERT_TRUE(registry
                        .apply(makeEvent(EventKind::Start, i + 1,
                                         t + waits[i]))
                        .applied);
    }

    const auto report = registry.calibrationReport();
    ASSERT_EQ(report.rows.size(), 1u);
    const auto &row = report.rows[0];
    ASSERT_GE(row.windowCount, 50u);
    EXPECT_LT(row.windowCoverage, 0.75);
    EXPECT_TRUE(row.failing);
    EXPECT_LT(row.pValue, 1e-3);
    EXPECT_EQ(report.failingEntries, 1u);
    EXPECT_GT(report.maxUndercoverage, 0.1);
}

TEST(Calibration, ShardStateV3RoundTripsCalibrationAndPendingBounds)
{
    BoundRegistry::Options options;
    options.shards = 1;
    options.method = "bmbp";
    options.refitEvery = 10;
    options.trainObservations = 20;
    ASSERT_TRUE(options.validate().ok());

    BoundRegistry registry(options);
    const auto waits = syntheticWaits(120, 3);
    double t = 0.0;
    uint64_t job = 0;
    for (double wait : waits) {
        t += 1.0;
        ++job;
        ASSERT_TRUE(
            registry.apply(makeEvent(EventKind::Submit, job, t)).applied);
        ASSERT_TRUE(
            registry.apply(makeEvent(EventKind::Start, job, t + wait))
                .applied);
    }
    // Leave one job pending so the frozen bound-at-submit itself must
    // survive the round trip (it is scored only after restore).
    ASSERT_TRUE(
        registry.apply(makeEvent(EventKind::Submit, ++job, t + 1.0))
            .applied);

    persist::StateWriter writer;
    {
        auto lock = registry.lockShard(0);
        ASSERT_TRUE(registry.saveShard(0, writer).ok());
    }
    const std::string payload = writer.take();

    BoundRegistry restored(options);
    {
        auto lock = restored.lockShard(0);
        persist::StateReader reader(payload, "test-shard");
        ASSERT_TRUE(restored.loadShard(0, reader).ok());
        ASSERT_TRUE(reader.expectEnd().ok());
    }
    EXPECT_EQ(registry.digest(), restored.digest());

    const auto before = registry.calibrationReport();
    const auto after = restored.calibrationReport();
    ASSERT_EQ(before.rows.size(), after.rows.size());
    EXPECT_EQ(before.rows[0].scored, after.rows[0].scored);
    EXPECT_EQ(before.rows[0].hits, after.rows[0].hits);
    EXPECT_EQ(before.rows[0].infinite, after.rows[0].infinite);
    EXPECT_EQ(before.rows[0].windowCount, after.rows[0].windowCount);
    EXPECT_EQ(before.rows[0].windowHits, after.rows[0].windowHits);

    // Starting the pending job after restore scores it against the
    // persisted frozen bound — both instances must agree bit-exactly.
    const JobEvent start = makeEvent(EventKind::Start, job, t + 50.0);
    ASSERT_TRUE(registry.apply(start).applied);
    ASSERT_TRUE(restored.apply(start).applied);
    EXPECT_EQ(registry.digest(), restored.digest());
    EXPECT_EQ(registry.calibrationReport().rows[0].scored,
              restored.calibrationReport().rows[0].scored);
}

TEST(Calibration, ShardInfoCountsPendingAndApplied)
{
    BoundRegistry::Options options;
    options.shards = 1;
    ASSERT_TRUE(options.validate().ok());
    BoundRegistry registry(options);

    ASSERT_TRUE(
        registry.apply(makeEvent(EventKind::Submit, 1, 1.0)).applied);
    ASSERT_TRUE(
        registry.apply(makeEvent(EventKind::Submit, 2, 2.0)).applied);
    ASSERT_TRUE(
        registry.apply(makeEvent(EventKind::Start, 1, 3.0)).applied);

    const auto info = registry.shardInfo(0);
    EXPECT_EQ(info.entries, 1u);
    EXPECT_EQ(info.pending, 1u);
    EXPECT_EQ(info.applied, 3u);
    EXPECT_EQ(info.rejected, 0u);
}

} // namespace
} // namespace serve
} // namespace qdel
