/**
 * @file
 * Wire-schema contract tests: bit-exact body codecs (including NaN
 * payloads in event times), the length-prefixed framing and its
 * resynchronization rules, the paper proc buckets, the SWF job ->
 * event expansion, and the JSON fallback rendering.
 */

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "persist/state_codec.hh"
#include "serve/wire.hh"
#include "trace/job_record.hh"

namespace qdel {
namespace serve {
namespace {

TEST(WireCodec, EventRoundTripsBitExactly)
{
    JobEvent event;
    event.kind = EventKind::Start;
    event.jobId = 0xFEEDFACE01234567ull;
    event.time = -0.0;
    event.machine = "datastar";
    event.queue = "queue with spaces\x1f";
    event.procs = -3;

    auto decoded = decodeEvent(encodeEvent(event));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().kind, EventKind::Start);
    EXPECT_EQ(decoded.value().jobId, event.jobId);
    EXPECT_TRUE(std::signbit(decoded.value().time));
    EXPECT_EQ(decoded.value().machine, event.machine);
    EXPECT_EQ(decoded.value().queue, event.queue);
    EXPECT_EQ(decoded.value().procs, -3);
}

TEST(WireCodec, EventNaNTimeSurvivesTheWire)
{
    // A NaN submit time must arrive as NaN so the registry's NaN-safe
    // wait check (`!(wait >= 0)`) sees it and rejects deterministically
    // — the WAL replay path depends on the byte surviving.
    JobEvent event;
    event.time = std::numeric_limits<double>::quiet_NaN();
    auto decoded = decodeEvent(encodeEvent(event));
    ASSERT_TRUE(decoded.ok());
    EXPECT_TRUE(std::isnan(decoded.value().time));
}

TEST(WireCodec, EventDecodeRejectsTruncationAndTrailingBytes)
{
    JobEvent event;
    event.machine = "m";
    const std::string body = encodeEvent(event);
    // v2 appended the clientId + seq idempotency tail; a body cut at
    // exactly the v1 boundary is a pre-upgrade WAL blob and must still
    // decode (with the fields defaulted) — every other cut must fail.
    persist::StateWriter tail;
    tail.str("");
    tail.u64(0);
    ASSERT_GT(body.size(), tail.bytes().size());
    const size_t v1_size = body.size() - tail.bytes().size();
    for (size_t keep = 0; keep < body.size(); ++keep) {
        auto decoded = decodeEvent(body.substr(0, keep));
        if (keep == v1_size) {
            ASSERT_TRUE(decoded.ok()) << "v1 boundary must decode";
            EXPECT_TRUE(decoded.value().clientId.empty());
            EXPECT_EQ(decoded.value().seq, 0u);
        } else {
            EXPECT_FALSE(decoded.ok()) << "kept " << keep;
        }
    }
    EXPECT_FALSE(decodeEvent(body + "x").ok());
    EXPECT_FALSE(decodeEvent(std::string(1, '\x09') + body.substr(1)).ok())
        << "unknown event kind must be rejected";
}

TEST(WireCodec, QueryRoundTrips)
{
    BoundQuery query;
    query.machine = "lanl";
    query.queue = "chammpq";
    query.procs = 64;
    query.quantile = 0.75;
    query.upper = false;
    auto decoded = decodeQuery(encodeQuery(query));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().machine, "lanl");
    EXPECT_EQ(decoded.value().queue, "chammpq");
    EXPECT_EQ(decoded.value().procs, 64);
    EXPECT_EQ(decoded.value().quantile, 0.75);
    EXPECT_FALSE(decoded.value().upper);
}

TEST(WireCodec, AnswerRoundTripsInfinity)
{
    BoundAnswer answer;
    answer.known = true;
    answer.upper = std::numeric_limits<double>::infinity();
    answer.lower = 12.5;
    answer.quantile = 0.95;
    answer.confidence = 0.95;
    answer.historySize = 321;
    answer.observations = 1000;
    answer.version = 7;
    auto decoded = decodeAnswer(encodeAnswer(answer));
    ASSERT_TRUE(decoded.ok());
    EXPECT_TRUE(decoded.value().known);
    EXPECT_TRUE(std::isinf(decoded.value().upper));
    EXPECT_EQ(decoded.value().lower, 12.5);
    EXPECT_EQ(decoded.value().historySize, 321u);
    EXPECT_EQ(decoded.value().observations, 1000u);
    EXPECT_EQ(decoded.value().version, 7u);
}

TEST(WireCodec, StatsRoundTrips)
{
    ServeStats stats;
    stats.processedPerShard = {0, 17, 0, 9999999};
    stats.entries = 12;
    auto decoded = decodeStats(encodeStats(stats));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().processedPerShard,
              stats.processedPerShard);
    EXPECT_EQ(decoded.value().entries, 12u);
}

TEST(WireFraming, UnframeNeedsMoreUntilComplete)
{
    const std::string framed = frame("hello");
    std::string_view payload;
    size_t consumed = 0;
    for (size_t keep = 0; keep < framed.size(); ++keep) {
        auto partial =
            unframe(std::string_view(framed).substr(0, keep), &payload,
                    &consumed);
        ASSERT_TRUE(partial.ok()) << "kept " << keep;
        EXPECT_FALSE(partial.value()) << "kept " << keep;
    }
    auto complete = unframe(framed, &payload, &consumed);
    ASSERT_TRUE(complete.ok());
    ASSERT_TRUE(complete.value());
    EXPECT_EQ(payload, "hello");
    EXPECT_EQ(consumed, framed.size());
}

TEST(WireFraming, UnframeLeavesFollowingFrameInPlace)
{
    const std::string two = frame("one") + frame("two-longer");
    std::string_view payload;
    size_t consumed = 0;
    auto first = unframe(two, &payload, &consumed);
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(first.value());
    EXPECT_EQ(payload, "one");
    auto second = unframe(std::string_view(two).substr(consumed),
                          &payload, &consumed);
    ASSERT_TRUE(second.ok());
    ASSERT_TRUE(second.value());
    EXPECT_EQ(payload, "two-longer");
}

TEST(WireFraming, OversizeLengthIsAFatalParseError)
{
    // A corrupt length cannot be resynchronized; the connection must
    // be torn down rather than waiting on phantom bytes.
    std::string corrupt(4, '\0');
    const uint32_t huge = kMaxFrameBytes + 1;
    std::memcpy(corrupt.data(), &huge, 4);
    std::string_view payload;
    size_t consumed = 0;
    EXPECT_FALSE(unframe(corrupt, &payload, &consumed).ok());
}

TEST(WireFraming, RequestAndResponseFramesCarryTheirTag)
{
    const std::string request = frameRequest(Opcode::Ping, "");
    ASSERT_EQ(request.size(), 5u);
    EXPECT_EQ(static_cast<uint8_t>(request[4]),
              static_cast<uint8_t>(Opcode::Ping));

    const std::string ok = frameOk("body");
    EXPECT_EQ(static_cast<uint8_t>(ok[4]),
              static_cast<uint8_t>(Status::Ok));

    const std::string error = frameError("boom");
    EXPECT_EQ(static_cast<uint8_t>(error[4]),
              static_cast<uint8_t>(Status::Error));
}

TEST(WireBuckets, PaperProcRangesAndClamping)
{
    // Table 5 bins: 1-4 / 5-16 / 17-64 / 65+.
    EXPECT_EQ(procBucketFor(1), procBucketFor(4));
    EXPECT_EQ(procBucketFor(5), procBucketFor(16));
    EXPECT_EQ(procBucketFor(17), procBucketFor(64));
    EXPECT_EQ(procBucketFor(65), procBucketFor(1 << 20));
    EXPECT_NE(procBucketFor(4), procBucketFor(5));
    EXPECT_NE(procBucketFor(16), procBucketFor(17));
    EXPECT_NE(procBucketFor(64), procBucketFor(65));
    // Degenerate proc counts clamp into the first bin.
    EXPECT_EQ(procBucketFor(0), procBucketFor(1));
    EXPECT_EQ(procBucketFor(-7), procBucketFor(1));

    EXPECT_EQ(procBucketLabel(procBucketFor(1)), "1-4");
    EXPECT_EQ(procBucketLabel(procBucketFor(100)), "65+");
}

TEST(WireEvents, EventsFromJobsExpandsAndOrders)
{
    std::vector<trace::JobRecord> jobs;
    trace::JobRecord a;
    a.submitTime = 100.0;
    a.waitSeconds = 50.0;  // starts at 150
    a.procs = 4;
    a.queue = "q";
    jobs.push_back(a);
    trace::JobRecord b;
    b.submitTime = 120.0;
    b.waitSeconds = 0.0;  // starts at 120: same instant as its submit
    b.procs = 32;
    b.queue = "q";
    jobs.push_back(b);
    trace::JobRecord c;  // never started: submit only
    c.submitTime = 130.0;
    c.waitSeconds = -1.0;
    c.procs = 8;
    c.queue = "q";
    jobs.push_back(c);

    const auto events = eventsFromJobs(jobs, "m");
    ASSERT_EQ(events.size(), 5u);
    for (const auto &event : events)
        EXPECT_EQ(event.machine, "m");
    // Time order with Submit before Start at equal times.
    EXPECT_EQ(events[0].kind, EventKind::Submit);  // a @100
    EXPECT_EQ(events[0].jobId, 1u);
    EXPECT_EQ(events[1].kind, EventKind::Submit);  // b @120
    EXPECT_EQ(events[1].jobId, 2u);
    EXPECT_EQ(events[2].kind, EventKind::Start);  // b @120
    EXPECT_EQ(events[2].jobId, 2u);
    EXPECT_EQ(events[3].kind, EventKind::Submit);  // c @130
    EXPECT_EQ(events[3].jobId, 3u);
    EXPECT_EQ(events[4].kind, EventKind::Start);  // a @150
    EXPECT_EQ(events[4].jobId, 1u);
    EXPECT_EQ(events[4].time, 150.0);
}

TEST(WireJson, EscapeAndNonFiniteRendering)
{
    EXPECT_EQ(jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(jsonEscape(std::string(1, '\x02')), "\\u0002");

    BoundAnswer answer;
    answer.known = true;
    answer.upper = std::numeric_limits<double>::infinity();
    answer.lower = 0.0;
    const std::string json = answerToJson(answer);
    EXPECT_NE(json.find("\"known\":true"), std::string::npos);
    EXPECT_NE(json.find("\"upper\":null"), std::string::npos)
        << "infinity must render as null, not break JSON parsers";

    ServeStats stats;
    stats.processedPerShard = {1, 2};
    stats.entries = 3;
    const std::string stats_json = statsToJson(stats);
    EXPECT_NE(stats_json.find("[1,2]"), std::string::npos);
    EXPECT_NE(stats_json.find("\"entries\":3"), std::string::npos);
}

TEST(WireTrace, EventTraceTailIsWireOnlyAndOptional)
{
    JobEvent event;
    event.jobId = 42;
    event.machine = "m";
    event.queue = "q";
    event.traceId = 0xABCDEF0011223344ull;

    // encodeEvent() is the WAL blob layout: it must be byte-identical
    // whether or not the event is traced, or traced ingests would
    // change shard digests.
    JobEvent untraced = event;
    untraced.traceId = 0;
    EXPECT_EQ(encodeEvent(event), encodeEvent(untraced));

    // encodeEventWire() carries the tail; decode round-trips it.
    const std::string wire = encodeEventWire(event);
    EXPECT_EQ(wire.size(), encodeEvent(event).size() + 8);
    auto decoded = decodeEvent(wire);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().traceId, event.traceId);

    // A v2 body (no tail) decodes as untraced — old clients keep
    // working against the v3 server unchanged.
    auto v2 = decodeEvent(encodeEvent(event));
    ASSERT_TRUE(v2.ok());
    EXPECT_EQ(v2.value().traceId, 0u);

    // Untraced events get no tail even from the wire encoder.
    EXPECT_EQ(encodeEventWire(untraced), encodeEvent(untraced));
}

TEST(WireTrace, QueryTraceTailRoundTripsAndScratchReuseResets)
{
    BoundQuery query;
    query.machine = "m";
    query.queue = "q";
    query.procs = 4;
    query.quantile = 0.95;
    query.traceId = 0x1122334455667788ull;

    BoundQuery slot;
    ASSERT_TRUE(decodeQueryInto(encodeQuery(query), &slot).ok());
    EXPECT_EQ(slot.traceId, query.traceId);

    // The reactor reuses batch slots: decoding an untraced (v2) query
    // into a slot that previously held a traced one must reset the id,
    // or a stale trace would be attributed to a stranger's request.
    BoundQuery untraced = query;
    untraced.traceId = 0;
    ASSERT_TRUE(decodeQueryInto(encodeQuery(untraced), &slot).ok());
    EXPECT_EQ(slot.traceId, 0u);
}

} // namespace
} // namespace serve
} // namespace qdel
