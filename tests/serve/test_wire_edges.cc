/**
 * @file
 * Framing edge cases over a live socket: frames dribbled in one byte
 * at a time, payloads at exactly kMaxFrameBytes, zero-length payloads,
 * and a truncated frame followed by a reconnect — the shapes a hostile
 * or merely unlucky network produces that a unit test of the codec
 * alone cannot exercise.
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "serve/server.hh"
#include "serve/service.hh"
#include "serve/wire.hh"

namespace qdel {
namespace serve {
namespace {

class WireEdgeTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ServiceConfig config;
        config.registry.shards = 2;
        config.registry.refitEvery = 5;
        config.registry.trainObservations = 10;
        auto opened = BoundService::open(config);
        ASSERT_TRUE(opened.ok());
        service_ = std::move(opened).value();
        ServerOptions options;
        // Generous io deadline: the dribble test sends a whole frame
        // one byte at a time and must not be reaped mid-dribble.
        options.ioTimeoutMs = 10000;
        options.idleTimeoutMs = 10000;
        auto server = BoundServer::start(*service_, options);
        ASSERT_TRUE(server.ok());
        server_ = std::move(server).value();
    }

    void
    TearDown() override
    {
        if (server_)
            server_->stop();
    }

    std::unique_ptr<BoundService> service_;
    std::unique_ptr<BoundServer> server_;
};

class Client
{
  public:
    explicit Client(int port)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd_ < 0)
            return;
        struct timeval timeout;
        timeout.tv_sec = 15;
        timeout.tv_usec = 0;
        ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                     sizeof(timeout));
        struct sockaddr_in address;
        std::memset(&address, 0, sizeof(address));
        address.sin_family = AF_INET;
        address.sin_port = htons(static_cast<uint16_t>(port));
        ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
        if (::connect(fd_, reinterpret_cast<struct sockaddr *>(&address),
                      sizeof(address)) != 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }

    ~Client()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    bool connected() const { return fd_ >= 0; }

    bool
    send(std::string_view bytes)
    {
        size_t sent = 0;
        while (sent < bytes.size()) {
            const ssize_t n = ::send(fd_, bytes.data() + sent,
                                     bytes.size() - sent, MSG_NOSIGNAL);
            if (n <= 0)
                return false;
            sent += static_cast<size_t>(n);
        }
        return true;
    }

    /** Send one byte at a time with TCP_NODELAY-free pacing left to
     *  the kernel; the server must reassemble regardless. */
    bool
    sendDribble(std::string_view bytes)
    {
        for (char c : bytes)
            if (!send(std::string_view(&c, 1)))
                return false;
        return true;
    }

    bool
    readFrame(std::string *payload)
    {
        std::string header;
        if (!readExactly(4, &header))
            return false;
        uint32_t length = 0;
        std::memcpy(&length, header.data(), 4);
        if (length > kMaxFrameBytes)
            return false;
        return readExactly(length, payload);
    }

    bool
    readExactly(size_t count, std::string *out)
    {
        out->clear();
        while (out->size() < count) {
            char chunk[65536];
            const size_t want = std::min(count - out->size(),
                                         sizeof(chunk));
            const ssize_t n = ::recv(fd_, chunk, want, 0);
            if (n <= 0)
                return false;
            out->append(chunk, static_cast<size_t>(n));
        }
        return true;
    }

    /** @return true when the peer closed the connection. */
    bool
    readToEof()
    {
        char chunk[4096];
        for (;;) {
            const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n == 0)
                return true;
            if (n < 0)
                return false;
        }
    }

  private:
    int fd_ = -1;
};

std::string
pingRequest()
{
    return frameRequest(Opcode::Ping, "");
}

void
expectPingOk(const std::string &payload)
{
    ASSERT_GE(payload.size(), 5u);
    EXPECT_EQ(static_cast<uint8_t>(payload[0]),
              static_cast<uint8_t>(Status::Ok));
    uint32_t version = 0;
    std::memcpy(&version, payload.data() + 1, 4);
    EXPECT_EQ(version, kWireVersion);
}

TEST_F(WireEdgeTest, FrameSplitAcrossSingleByteReadsStillParses)
{
    Client client(server_->port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.sendDribble(pingRequest()));
    std::string payload;
    ASSERT_TRUE(client.readFrame(&payload));
    expectPingOk(payload);

    // The connection survives and parses a second dribbled frame — the
    // read buffer must not carry stale offsets across frames.
    JobEvent event;
    event.kind = EventKind::Submit;
    event.jobId = 1;
    event.time = 10.0;
    event.machine = "m";
    event.queue = "q";
    event.procs = 4;
    ASSERT_TRUE(client.sendDribble(
        frameRequest(Opcode::Event, encodeEvent(event))));
    ASSERT_TRUE(client.readFrame(&payload));
    ASSERT_GE(payload.size(), 1u);
    EXPECT_EQ(static_cast<uint8_t>(payload[0]),
              static_cast<uint8_t>(Status::Ok));
}

TEST_F(WireEdgeTest, ExactlyMaxFrameBytesPayloadIsAccepted)
{
    // A payload of exactly kMaxFrameBytes is legal; one byte more is
    // a protocol error. Build the boundary frame by hand: opcode +
    // filler must total kMaxFrameBytes.
    Client client(server_->port());
    ASSERT_TRUE(client.connected());
    std::string payload;
    payload.push_back(static_cast<char>(Opcode::Event));
    payload.append(kMaxFrameBytes - 1, '\0');
    ASSERT_EQ(payload.size(), kMaxFrameBytes);
    ASSERT_TRUE(client.send(frame(payload)));
    std::string response;
    ASSERT_TRUE(client.readFrame(&response));
    // The body is garbage, so the server answers Error — but it
    // answers, proving the boundary-size frame cleared framing.
    ASSERT_GE(response.size(), 1u);
    EXPECT_EQ(static_cast<uint8_t>(response[0]),
              static_cast<uint8_t>(Status::Error));
    // And the connection is still usable.
    ASSERT_TRUE(client.send(pingRequest()));
    ASSERT_TRUE(client.readFrame(&response));
    expectPingOk(response);
}

TEST_F(WireEdgeTest, OversizeLengthHeaderClosesTheConnection)
{
    Client client(server_->port());
    ASSERT_TRUE(client.connected());
    uint32_t length = kMaxFrameBytes + 1;
    std::string header(4, '\0');
    std::memcpy(header.data(), &length, 4);
    ASSERT_TRUE(client.send(header));
    // A corrupt length cannot be resynchronized: the server answers an
    // error frame (if it can) and closes.
    client.readToEof();
    Client fresh(server_->port());
    ASSERT_TRUE(fresh.connected());
    ASSERT_TRUE(fresh.send(pingRequest()));
    std::string payload;
    ASSERT_TRUE(fresh.readFrame(&payload));
    expectPingOk(payload);
}

TEST_F(WireEdgeTest, ZeroLengthPayloadAnswersErrorAndSurvives)
{
    Client client(server_->port());
    ASSERT_TRUE(client.connected());
    // u32 len = 0, no payload: not even an opcode byte.
    ASSERT_TRUE(client.send(std::string(4, '\0')));
    std::string payload;
    ASSERT_TRUE(client.readFrame(&payload));
    ASSERT_GE(payload.size(), 1u);
    EXPECT_EQ(static_cast<uint8_t>(payload[0]),
              static_cast<uint8_t>(Status::Error));
    // The empty frame was cleanly consumed; the stream continues.
    ASSERT_TRUE(client.send(pingRequest()));
    ASSERT_TRUE(client.readFrame(&payload));
    expectPingOk(payload);
}

TEST_F(WireEdgeTest, TruncatedFrameThenReconnectLeavesServerHealthy)
{
    JobEvent event;
    event.kind = EventKind::Submit;
    event.jobId = 7;
    event.time = 5.0;
    event.machine = "m";
    event.queue = "q";
    event.procs = 2;
    event.clientId = "edge";
    event.seq = 1;
    const std::string request =
        frameRequest(Opcode::Event, encodeEvent(event));

    {
        // Send the header and half the payload, then vanish.
        Client client(server_->port());
        ASSERT_TRUE(client.connected());
        ASSERT_TRUE(client.send(
            std::string_view(request).substr(0, request.size() / 2)));
    }  // abrupt close with a frame in flight

    // The half-delivered event must not have been applied...
    uint64_t processed = 0;
    for (uint64_t count : service_->stats().processedPerShard)
        processed += count;
    EXPECT_EQ(processed, 0u);

    // ...and a reconnect delivers it normally.
    Client retry(server_->port());
    ASSERT_TRUE(retry.connected());
    ASSERT_TRUE(retry.send(request));
    std::string payload;
    ASSERT_TRUE(retry.readFrame(&payload));
    ASSERT_GE(payload.size(), 1u);
    EXPECT_EQ(static_cast<uint8_t>(payload[0]),
              static_cast<uint8_t>(Status::Ok));
    processed = 0;
    for (uint64_t count : service_->stats().processedPerShard)
        processed += count;
    EXPECT_EQ(processed, 1u);
}

TEST_F(WireEdgeTest, ManyFramesInOneWriteAllGetAnswers)
{
    // The opposite of the dribble: a burst of pipelined frames in a
    // single send must yield exactly one response per frame.
    Client client(server_->port());
    ASSERT_TRUE(client.connected());
    std::string burst;
    constexpr int kFrames = 32;
    for (int i = 0; i < kFrames; ++i)
        burst += pingRequest();
    ASSERT_TRUE(client.send(burst));
    for (int i = 0; i < kFrames; ++i) {
        std::string payload;
        ASSERT_TRUE(client.readFrame(&payload)) << "frame " << i;
        expectPingOk(payload);
    }
}

} // namespace
} // namespace serve
} // namespace qdel
