/**
 * @file
 * Network chaos sweep — the PR's acceptance property for the serve
 * front end: for every netfault kind (short read, short write,
 * connection reset, accept failure, stall), at every socket-op
 * trigger window, a client that retries idempotently (stable clientId
 * + per-event seq) against a faulted server ends with a registry
 * digest *byte-identical* to a fault-free run, with every event
 * applied exactly once — retried duplicates are fenced server-side,
 * never re-applied.
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "persist/state_codec.hh"
#include "serve/netfault.hh"
#include "serve/server.hh"
#include "serve/service.hh"
#include "serve/wire.hh"
#include "util/string_utils.hh"

namespace qdel {
namespace serve {
namespace {

/** Socket-op windows swept per kind; QDEL_NETFAULT_WINDOWS widens the
 *  sweep in CI (ops beyond the stream's op count are no-fire runs,
 *  which must also match the reference digest). */
size_t
sweepWindows()
{
    if (const char *env = std::getenv("QDEL_NETFAULT_WINDOWS")) {
        if (auto parsed = parseInt(env); parsed && *parsed > 0)
            return static_cast<size_t>(*parsed);
    }
    return 12;
}

std::vector<JobEvent>
eventStream(size_t jobs, uint32_t seed)
{
    std::mt19937 rng(seed);
    std::lognormal_distribution<double> wait(4.0, 1.2);
    const char *machines[] = {"m1", "m2"};
    const int procs[] = {2, 16, 96};
    std::vector<JobEvent> events;
    for (size_t i = 0; i < jobs; ++i) {
        JobEvent submit;
        submit.kind = EventKind::Submit;
        submit.jobId = i + 1;
        submit.time = 50.0 * static_cast<double>(i);
        submit.machine = machines[i % 2];
        submit.queue = "q";
        submit.procs = procs[i % 3];
        events.push_back(submit);
        JobEvent start = submit;
        start.kind = EventKind::Start;
        start.time = submit.time + wait(rng);
        events.push_back(start);
    }
    // The idempotency tags the retry contract rests on.
    for (size_t i = 0; i < events.size(); ++i) {
        events[i].clientId = "sweep";
        events[i].seq = i + 1;
    }
    return events;
}

ServiceConfig
sweepConfig()
{
    ServiceConfig config;  // ephemeral: the digest covers memory state
    config.registry.shards = 2;
    config.registry.refitEvery = 8;
    config.registry.trainObservations = 20;
    return config;
}

/**
 * Minimal retrying client: one binary connection, reconnect + resend
 * on any socket-level failure. Safe because every event carries
 * (clientId, seq) — a resend of an already-processed event dedups.
 */
class RetryingClient
{
  public:
    explicit RetryingClient(int port) : port_(port) {}
    ~RetryingClient() { disconnect(); }

    /** Deliver @p event, retrying across connection failures.
     *  @return false only when every attempt failed. */
    bool
    deliver(const JobEvent &event)
    {
        const std::string request =
            frameRequest(Opcode::Event, encodeEvent(event));
        for (int attempt = 0; attempt < 8; ++attempt) {
            if (fd_ < 0 && !connect())
                continue;
            if (!sendAll(request)) {
                disconnect();
                continue;
            }
            std::string payload;
            if (!readFrame(&payload) || payload.empty()) {
                disconnect();
                continue;
            }
            const auto status = static_cast<Status>(
                static_cast<uint8_t>(payload[0]));
            if (status == Status::Shed) {
                // No pending bound in the sweep config, so a shed here
                // would be a bug; surface it as a failed delivery.
                disconnect();
                return false;
            }
            // Ok (applied, deterministically rejected, or deduped) and
            // Error both mean the server processed the frame.
            return status == Status::Ok;
        }
        return false;
    }

  private:
    bool
    connect()
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd_ < 0)
            return false;
        struct timeval timeout;
        timeout.tv_sec = 2;
        timeout.tv_usec = 0;
        ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                     sizeof(timeout));
        struct sockaddr_in address;
        std::memset(&address, 0, sizeof(address));
        address.sin_family = AF_INET;
        address.sin_port = htons(static_cast<uint16_t>(port_));
        ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
        if (::connect(fd_, reinterpret_cast<struct sockaddr *>(&address),
                      sizeof(address)) != 0) {
            disconnect();
            return false;
        }
        return true;
    }

    void
    disconnect()
    {
        if (fd_ >= 0)
            ::close(fd_);
        fd_ = -1;
    }

    bool
    sendAll(std::string_view bytes)
    {
        size_t sent = 0;
        while (sent < bytes.size()) {
            const ssize_t n = ::send(fd_, bytes.data() + sent,
                                     bytes.size() - sent, MSG_NOSIGNAL);
            if (n <= 0)
                return false;
            sent += static_cast<size_t>(n);
        }
        return true;
    }

    bool
    readFrame(std::string *payload)
    {
        std::string header;
        if (!readExactly(4, &header))
            return false;
        uint32_t length = 0;
        std::memcpy(&length, header.data(), 4);
        if (length > kMaxFrameBytes)
            return false;
        return readExactly(length, payload);
    }

    bool
    readExactly(size_t count, std::string *out)
    {
        out->clear();
        while (out->size() < count) {
            char chunk[4096];
            const size_t want = std::min(count - out->size(),
                                         sizeof(chunk));
            const ssize_t n = ::recv(fd_, chunk, want, 0);
            if (n <= 0)
                return false;
            out->append(chunk, static_cast<size_t>(n));
        }
        return true;
    }

    int port_;
    int fd_ = -1;
};

/** Run the whole stream against a fresh server; @return the digest. */
std::string
runStream(const std::vector<JobEvent> &events, uint64_t *processed)
{
    auto opened = BoundService::open(sweepConfig());
    EXPECT_TRUE(opened.ok());
    auto service = std::move(opened).value();
    ServerOptions options;
    options.maxConnections = 4;
    // Tight deadlines keep the stall-fault runs fast; the client's
    // retry budget comfortably covers one reap + reconnect.
    options.ioTimeoutMs = 250;
    options.idleTimeoutMs = 1000;
    auto server = BoundServer::start(*service, options);
    EXPECT_TRUE(server.ok());

    RetryingClient client(server.value()->port());
    for (const auto &event : events) {
        EXPECT_TRUE(client.deliver(event))
            << "event seq " << event.seq << " lost despite retries";
    }
    server.value()->stop();
    if (processed != nullptr) {
        *processed = 0;
        for (uint64_t count : service->stats().processedPerShard)
            *processed += count;
    }
    return service->digest();
}

class NetfaultChaosSweep : public ::testing::Test
{
  protected:
    void SetUp() override { netfault::reset(); }
    void TearDown() override { netfault::reset(); }
};

TEST_F(NetfaultChaosSweep, EveryFaultWindowMatchesTheFaultFreeDigest)
{
    const auto events = eventStream(24, 7);

    uint64_t reference_processed = 0;
    const std::string reference =
        runStream(events, &reference_processed);
    // Exactly-once: every event processed once, none twice.
    ASSERT_EQ(reference_processed, events.size());

    const netfault::Kind kinds[] = {
        netfault::Kind::ShortRead,  netfault::Kind::ShortWrite,
        netfault::Kind::ConnReset,  netfault::Kind::AcceptFail,
        netfault::Kind::Stall,
    };
    const size_t windows = sweepWindows();
    for (netfault::Kind kind : kinds) {
        for (size_t window = 0; window < windows; ++window) {
            SCOPED_TRACE(std::string(netfault::kindName(kind)) +
                         " @ op " + std::to_string(window * 5));
            netfault::Plan plan;
            plan.kind = kind;
            plan.triggerOp = window * 5;
            plan.seed = 0x9e37 + window;
            netfault::configure(plan);

            uint64_t processed = 0;
            const std::string digest = runStream(events, &processed);
            netfault::reset();

            EXPECT_EQ(digest, reference)
                << "registry state diverged under the fault";
            EXPECT_EQ(processed, events.size())
                << "an event was lost or applied twice";
        }
    }
}

TEST_F(NetfaultChaosSweep, RetriedEventsAreDedupedNotReapplied)
{
    // Direct service-level check of the fence the sweep relies on:
    // the same (clientId, seq) delivered twice applies once.
    auto opened = BoundService::open(sweepConfig());
    ASSERT_TRUE(opened.ok());
    auto service = std::move(opened).value();

    JobEvent submit;
    submit.kind = EventKind::Submit;
    submit.jobId = 1;
    submit.time = 10.0;
    submit.machine = "m";
    submit.queue = "q";
    submit.procs = 4;
    submit.clientId = "c";
    submit.seq = 1;

    auto first = service->ingest(submit);
    ASSERT_TRUE(first.ok());
    EXPECT_TRUE(first.value().applied);
    EXPECT_FALSE(first.value().deduped);
    const std::string after_first = service->digest();

    auto retry = service->ingest(submit);
    ASSERT_TRUE(retry.ok());
    EXPECT_FALSE(retry.value().applied);
    EXPECT_TRUE(retry.value().deduped);
    EXPECT_EQ(service->digest(), after_first)
        << "a deduped retry must not change registry state";

    // A deterministically rejected event advances the fence too: its
    // retry reports deduped instead of re-running the reject.
    JobEvent bogus;
    bogus.kind = EventKind::Start;
    bogus.jobId = 99;
    bogus.time = 5.0;
    bogus.machine = "m";
    bogus.queue = "q";
    bogus.procs = 4;
    bogus.clientId = "c";
    bogus.seq = 2;
    auto rejected = service->ingest(bogus);
    ASSERT_TRUE(rejected.ok());
    EXPECT_FALSE(rejected.value().applied);
    EXPECT_STREQ(rejected.value().rejectReason,
                 "start without a pending submit");
    auto rejected_retry = service->ingest(bogus);
    ASSERT_TRUE(rejected_retry.ok());
    EXPECT_TRUE(rejected_retry.value().deduped);

    // An untagged event (empty clientId) opts out of the fence.
    JobEvent untagged = submit;
    untagged.clientId.clear();
    untagged.jobId = 2;
    auto once = service->ingest(untagged);
    auto twice = service->ingest(untagged);
    ASSERT_TRUE(once.ok());
    ASSERT_TRUE(twice.ok());
    EXPECT_TRUE(once.value().applied);
    EXPECT_FALSE(twice.value().deduped);
    EXPECT_FALSE(twice.value().applied);  // duplicate submit reject
}

TEST_F(NetfaultChaosSweep, ClientSeqFenceSurvivesSaveLoad)
{
    // The fence is part of shard state: a registry restored from a
    // checkpoint must still dedup retries of pre-checkpoint events.
    auto opened = BoundService::open(sweepConfig());
    ASSERT_TRUE(opened.ok());
    auto service = std::move(opened).value();
    const auto events = eventStream(6, 3);
    for (const auto &event : events)
        ASSERT_TRUE(service->ingest(event).ok());

    BoundRegistry restored(sweepConfig().registry);
    for (size_t s = 0; s < service->registry().shardCount(); ++s) {
        persist::StateWriter writer;
        {
            auto &registry = const_cast<BoundRegistry &>(
                service->registry());
            auto lock = registry.lockShard(s);
            ASSERT_TRUE(registry.saveShard(s, writer).ok());
        }
        persist::StateReader reader(writer.bytes(), "shard");
        auto lock = restored.lockShard(s);
        ASSERT_TRUE(restored.loadShard(s, reader).ok());
    }
    EXPECT_EQ(restored.digest(), service->digest());
    const size_t s = restored.shardForEvent(events.front());
    auto lock = restored.lockShard(s);
    EXPECT_TRUE(restored.isDuplicateLocked(s, events.front()));
}

TEST(NetfaultHook, OneShotFiresAtTheTriggerAndOnlyOnce)
{
    netfault::reset();
    netfault::Plan plan;
    plan.kind = netfault::Kind::ConnReset;
    plan.triggerOp = 2;
    netfault::configure(plan);

    using netfault::detail::Op;
    EXPECT_FALSE(netfault::detail::onOp(Op::Recv, 64).fail);  // op 0
    EXPECT_FALSE(netfault::detail::onOp(Op::Recv, 64).fail);  // op 1
    // Op 2 matches Recv for ConnReset: fires.
    const auto fired = netfault::detail::onOp(Op::Recv, 64);
    EXPECT_TRUE(fired.fail);
    EXPECT_STREQ(fired.reason, "simulated connection reset");
    // One-shot: never again until reconfigured.
    EXPECT_FALSE(netfault::detail::onOp(Op::Recv, 64).fail);
    EXPECT_EQ(netfault::opCount(), 4u);
    netfault::reset();
}

TEST(NetfaultHook, KindsMatchOnlyTheirOps)
{
    using netfault::detail::Op;
    struct Case
    {
        netfault::Kind kind;
        Op matching;
        Op ignored;
    };
    const Case cases[] = {
        {netfault::Kind::ShortRead, Op::Recv, Op::Send},
        {netfault::Kind::ShortWrite, Op::Send, Op::Recv},
        {netfault::Kind::AcceptFail, Op::Accept, Op::Recv},
        {netfault::Kind::Stall, Op::Recv, Op::Accept},
    };
    for (const Case &c : cases) {
        SCOPED_TRACE(netfault::kindName(c.kind));
        netfault::Plan plan;
        plan.kind = c.kind;
        plan.triggerOp = 0;
        netfault::configure(plan);
        const auto ignored = netfault::detail::onOp(c.ignored, 32);
        EXPECT_FALSE(ignored.fail || ignored.stall ||
                     ignored.clampBytes > 0);
        const auto fired = netfault::detail::onOp(c.matching, 32);
        EXPECT_TRUE(fired.fail || fired.stall || fired.clampBytes > 0);
    }
    netfault::reset();
}

TEST(NetfaultHook, KindNamesRoundTripThroughParse)
{
    const netfault::Kind kinds[] = {
        netfault::Kind::None,       netfault::Kind::ShortRead,
        netfault::Kind::ShortWrite, netfault::Kind::ConnReset,
        netfault::Kind::AcceptFail, netfault::Kind::Stall,
    };
    for (netfault::Kind kind : kinds) {
        netfault::Kind parsed = netfault::Kind::None;
        EXPECT_TRUE(netfault::parseKind(netfault::kindName(kind),
                                        &parsed));
        EXPECT_EQ(parsed, kind);
    }
    netfault::Kind out = netfault::Kind::None;
    EXPECT_FALSE(netfault::parseKind("bogus", &out));
}

} // namespace
} // namespace serve
} // namespace qdel
