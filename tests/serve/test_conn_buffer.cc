/**
 * @file
 * Unit tests for ConnBuffer, the reactor's per-connection receive
 * buffer: commit/consume bookkeeping, compaction, and — the regression
 * the oversized-request bug demands — capacity release after a burst.
 */

#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "serve/conn_buffer.hh"

namespace qdel {
namespace serve {
namespace {

void
append(ConnBuffer &buffer, std::string_view bytes)
{
    char *p = buffer.writePtr(bytes.size());
    std::memcpy(p, bytes.data(), bytes.size());
    buffer.commit(bytes.size());
}

TEST(ConnBuffer, CommitAndConsumeRoundTrip)
{
    ConnBuffer buffer;
    EXPECT_TRUE(buffer.empty());
    EXPECT_EQ(buffer.size(), 0u);

    append(buffer, "hello ");
    append(buffer, "world");
    EXPECT_EQ(buffer.view(), "hello world");

    buffer.consume(6);
    EXPECT_EQ(buffer.view(), "world");
    buffer.consume(5);
    EXPECT_TRUE(buffer.empty());
}

TEST(ConnBuffer, DrainingResetsToTheFront)
{
    ConnBuffer buffer;
    append(buffer, "abc");
    buffer.consume(3);
    // A fully-drained buffer restarts at offset zero, so the next
    // write needs no compaction.
    append(buffer, "xyz");
    EXPECT_EQ(buffer.view(), "xyz");
}

TEST(ConnBuffer, CompactionPreservesUnconsumedBytes)
{
    ConnBuffer buffer;
    const std::string filler(ConnBuffer::kDefaultCapacity - 8, 'a');
    append(buffer, filler);
    append(buffer, "KEEPME");
    buffer.consume(filler.size());
    ASSERT_EQ(buffer.view(), "KEEPME");

    // The next large write cannot fit behind the tail without moving
    // the live region to the front first.
    const std::string more(ConnBuffer::kDefaultCapacity - 8, 'b');
    append(buffer, more);
    EXPECT_EQ(buffer.view().substr(0, 6), "KEEPME");
    EXPECT_EQ(buffer.view().substr(6), more);
}

TEST(ConnBuffer, OversizedBurstReleasesCapacity)
{
    ConnBuffer buffer;
    const size_t huge = ConnBuffer::kShrinkThreshold * 2;
    append(buffer, std::string(huge, 'x'));
    ASSERT_GE(buffer.capacity(), huge);

    // Still holding the bytes: must not shrink.
    EXPECT_FALSE(buffer.shrinkIfOversized());
    ASSERT_GE(buffer.capacity(), huge);

    buffer.consume(huge - 10);  // 10 live bytes left: small enough.
    EXPECT_TRUE(buffer.shrinkIfOversized());
    EXPECT_EQ(buffer.capacity(), ConnBuffer::kDefaultCapacity);
    EXPECT_EQ(buffer.view(), std::string(10, 'x'));

    // Already small: a second call is a no-op.
    EXPECT_FALSE(buffer.shrinkIfOversized());
}

TEST(ConnBuffer, ShrinkKeepsWorkingAfterwards)
{
    ConnBuffer buffer;
    append(buffer, std::string(ConnBuffer::kShrinkThreshold + 1, 'y'));
    buffer.consume(buffer.size());
    ASSERT_TRUE(buffer.shrinkIfOversized());
    append(buffer, "fresh");
    EXPECT_EQ(buffer.view(), "fresh");
}

TEST(ConnBuffer, ClearDropsBytesButNotNecessarilyCapacity)
{
    ConnBuffer buffer;
    append(buffer, "some bytes");
    buffer.clear();
    EXPECT_TRUE(buffer.empty());
    append(buffer, "more");
    EXPECT_EQ(buffer.view(), "more");
}

} // namespace
} // namespace serve
} // namespace qdel
