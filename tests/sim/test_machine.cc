/**
 * @file
 * Unit tests for the processor pool.
 */

#include <gtest/gtest.h>

#include "sim/batch/machine.hh"

namespace qdel {
namespace sim {
namespace {

TEST(Machine, AllocateRelease)
{
    Machine machine(128);
    EXPECT_EQ(machine.totalProcs(), 128);
    EXPECT_EQ(machine.freeProcs(), 128);
    machine.allocate(100);
    EXPECT_EQ(machine.freeProcs(), 28);
    EXPECT_TRUE(machine.fits(28));
    EXPECT_FALSE(machine.fits(29));
    machine.release(100);
    EXPECT_EQ(machine.freeProcs(), 128);
}

TEST(MachineDeath, Oversubscription)
{
    Machine machine(16);
    machine.allocate(10);
    EXPECT_DEATH(machine.allocate(7), "oversubscription");
}

TEST(MachineDeath, OverRelease)
{
    Machine machine(16);
    machine.allocate(4);
    machine.release(4);
    EXPECT_DEATH(machine.release(1), "exceed machine size");
}

TEST(MachineDeath, InvalidConstruction)
{
    EXPECT_DEATH(Machine(0), "positive");
    EXPECT_DEATH(Machine(-5), "positive");
}

TEST(MachineDeath, NonPositivePartition)
{
    Machine machine(8);
    EXPECT_DEATH(machine.allocate(0), "non-positive");
    EXPECT_DEATH(machine.release(-1), "non-positive");
}

} // namespace
} // namespace sim
} // namespace qdel
