/**
 * @file
 * Tests for the scheduler-simulation start-time forecaster and its
 * integration into the machine simulator.
 */

#include <gtest/gtest.h>

#include "sim/batch/batch_simulator.hh"
#include "sim/batch/forward_predictor.hh"
#include "sim/batch/job_generator.hh"

namespace qdel {
namespace sim {
namespace {

SimJob
job(long long id, double submit, int procs, double run,
    double estimate = -1.0)
{
    SimJob j;
    j.id = id;
    j.submitTime = submit;
    j.procs = procs;
    j.runSeconds = run;
    j.estimateSeconds = estimate < 0.0 ? run : estimate;
    return j;
}

TEST(ForwardPredictor, EmptyPending)
{
    EXPECT_TRUE(forecastStartTimes({}, {}, 8, "fcfs", 100.0).empty());
}

TEST(ForwardPredictor, ImmediateStartOnIdleMachine)
{
    auto predictions = forecastStartTimes({job(1, 0.0, 4, 100.0)}, {},
                                          8, "fcfs", 50.0);
    ASSERT_EQ(predictions.size(), 1u);
    EXPECT_DOUBLE_EQ(predictions[0], 50.0);
}

TEST(ForwardPredictor, WaitsForRunningPartition)
{
    // 8-proc machine fully busy until t=1000.
    std::vector<RunningJob> running = {{99, 8, 1000.0}};
    auto predictions = forecastStartTimes({job(1, 0.0, 8, 100.0)},
                                          running, 8, "fcfs", 50.0);
    EXPECT_DOUBLE_EQ(predictions[0], 1000.0);
}

TEST(ForwardPredictor, FcfsChain)
{
    // Three 8-proc jobs behind a partition ending at 1000, each with a
    // 100 s estimate: starts at 1000, 1100, 1200.
    std::vector<RunningJob> running = {{99, 8, 1000.0}};
    auto predictions = forecastStartTimes(
        {job(1, 0.0, 8, 100.0), job(2, 1.0, 8, 100.0),
         job(3, 2.0, 8, 100.0)},
        running, 8, "fcfs", 0.0);
    EXPECT_DOUBLE_EQ(predictions[0], 1000.0);
    EXPECT_DOUBLE_EQ(predictions[1], 1100.0);
    EXPECT_DOUBLE_EQ(predictions[2], 1200.0);
}

TEST(ForwardPredictor, UsesEstimatesNotRuntimes)
{
    // The forecaster must plan with the (wrong) estimate, not the
    // true runtime it cannot know.
    std::vector<RunningJob> running = {{99, 8, 500.0}};  // planned end
    auto predictions = forecastStartTimes(
        {job(1, 0.0, 8, /*run=*/100.0, /*estimate=*/400.0),
         job(2, 1.0, 8, 100.0)},
        running, 8, "fcfs", 0.0);
    EXPECT_DOUBLE_EQ(predictions[0], 500.0);
    EXPECT_DOUBLE_EQ(predictions[1], 900.0);  // 500 + estimate 400
}

TEST(ForwardPredictor, BackfillPredictedUnderEasy)
{
    // Head (10 procs) blocked until 1000; a 2-proc short job backfills
    // immediately under EASY but must wait under FCFS.
    std::vector<RunningJob> running = {{99, 8, 1000.0}};
    std::vector<SimJob> pending = {job(1, 0.0, 10, 500.0),
                                   job(2, 1.0, 2, 100.0)};
    auto easy = forecastStartTimes(pending, running, 10,
                                   "easy-backfill", 0.0);
    EXPECT_DOUBLE_EQ(easy[0], 1000.0);
    EXPECT_DOUBLE_EQ(easy[1], 0.0);
    auto fcfs = forecastStartTimes(pending, running, 10, "fcfs", 0.0);
    // Under FCFS the short job waits behind the head, which then holds
    // all 10 processors until 1500.
    EXPECT_DOUBLE_EQ(fcfs[1], 1500.0);
}

TEST(ForwardPredictorDeath, ImpossibleJob)
{
    EXPECT_DEATH(forecastStartTimes({job(1, 0.0, 16, 10.0)}, {}, 8,
                                    "fcfs", 0.0),
                 "larger than machine|nothing running");
}

TEST(ForwardIntegration, ForecastsExactWithPerfectEstimates)
{
    // With estimates == runtimes and no future arrivals interfering,
    // the arrival-time forecast matches the realized start.
    BatchSimConfig config;
    config.totalProcs = 8;
    config.policy = "fcfs";
    config.forecastAtArrival = true;
    BatchSimulator simulator(config);
    auto done = simulator.run({job(1, 0.0, 8, 100.0),
                               job(2, 1.0, 8, 50.0),
                               job(3, 2.0, 8, 25.0)});
    ASSERT_EQ(simulator.forecasts().size(), 3u);
    for (const auto &j : done) {
        ASSERT_NEAR(simulator.forecasts().at(j.id), j.startTime, 1e-9)
            << "job " << j.id;
    }
}

TEST(ForwardIntegration, LooseEstimatesOverpredict)
{
    // Estimates 4x the runtime: queued jobs' forecasts exceed their
    // realized starts.
    BatchSimConfig config;
    config.totalProcs = 8;
    config.policy = "fcfs";
    config.forecastAtArrival = true;
    BatchSimulator simulator(config);
    auto done = simulator.run(
        {job(1, 0.0, 8, 100.0, 400.0), job(2, 1.0, 8, 100.0, 400.0)});
    // Job 2 forecast: starts when job 1's estimate expires (400), but
    // actually starts at 100.
    EXPECT_DOUBLE_EQ(simulator.forecasts().at(2), 400.0);
    EXPECT_DOUBLE_EQ(done[1].startTime, 100.0);
}

TEST(ForwardIntegration, FutureArrivalsCanInvalidateForecasts)
{
    // Forecasts assume no future arrivals; a later high-priority job
    // can push a pending job past its forecast. This is the inherent
    // limitation the paper points at.
    BatchSimConfig config;
    config.totalProcs = 8;
    config.policy = "priority-fcfs";
    config.forecastAtArrival = true;
    BatchSimulator simulator(config);
    auto low = job(2, 1.0, 8, 100.0);
    low.priority = 0;
    auto high = job(3, 2.0, 8, 100.0);
    high.priority = 9;
    auto done = simulator.run({job(1, 0.0, 8, 100.0), low, high});
    // Job 2's forecast at t=1 was 100 (no knowledge of job 3)...
    EXPECT_DOUBLE_EQ(simulator.forecasts().at(2), 100.0);
    // ...but job 3 preempted its slot: realized start is 200.
    EXPECT_DOUBLE_EQ(done[1].startTime, 200.0);
}

TEST(ForwardIntegration, DisabledByDefault)
{
    BatchSimConfig config;
    config.totalProcs = 8;
    BatchSimulator simulator(config);
    simulator.run({job(1, 0.0, 8, 10.0)});
    EXPECT_TRUE(simulator.forecasts().empty());
}

} // namespace
} // namespace sim
} // namespace qdel
