/**
 * @file
 * Tests for the processor-availability profile and the conservative
 * backfilling scheduler built on it.
 */

#include <gtest/gtest.h>

#include "sim/batch/batch_simulator.hh"
#include "sim/batch/job_generator.hh"
#include "sim/batch/proc_profile.hh"

namespace qdel {
namespace sim {
namespace {

TEST(ProcProfile, IdleMachine)
{
    ProcProfile profile(16, 16, {}, 100.0);
    EXPECT_EQ(profile.availableAt(100.0), 16);
    EXPECT_EQ(profile.availableAt(1e9), 16);
    EXPECT_DOUBLE_EQ(profile.earliestFit(16, 1000.0), 100.0);
}

TEST(ProcProfile, ReleasesRaiseCapacity)
{
    std::vector<RunningJob> running = {{1, 8, 500.0}, {2, 4, 900.0}};
    ProcProfile profile(16, 4, running, 100.0);
    EXPECT_EQ(profile.availableAt(100.0), 4);
    EXPECT_EQ(profile.availableAt(500.0), 12);
    EXPECT_EQ(profile.availableAt(900.0), 16);
    EXPECT_DOUBLE_EQ(profile.earliestFit(4, 100.0), 100.0);
    EXPECT_DOUBLE_EQ(profile.earliestFit(8, 100.0), 500.0);
    EXPECT_DOUBLE_EQ(profile.earliestFit(16, 100.0), 900.0);
}

TEST(ProcProfile, WindowMustFitContinuously)
{
    // 12 procs free until a reservation occupies 10 of them in
    // [200, 400): an 8-proc x 300 s job cannot start at 0 (the window
    // would straddle the dip) and must wait until 400.
    ProcProfile profile(12, 12, {}, 0.0);
    profile.reserve(200.0, 200.0, 10);
    EXPECT_EQ(profile.availableAt(300.0), 2);
    EXPECT_DOUBLE_EQ(profile.earliestFit(8, 300.0), 400.0);
    // A shorter job fits before the dip.
    EXPECT_DOUBLE_EQ(profile.earliestFit(8, 200.0), 0.0);
    // A narrow job fits inside the dip.
    EXPECT_DOUBLE_EQ(profile.earliestFit(2, 300.0), 0.0);
}

TEST(ProcProfile, ReservationsStack)
{
    ProcProfile profile(10, 10, {}, 0.0);
    profile.reserve(0.0, 100.0, 6);
    profile.reserve(0.0, 50.0, 4);
    EXPECT_EQ(profile.availableAt(25.0), 0);
    EXPECT_EQ(profile.availableAt(75.0), 4);
    EXPECT_EQ(profile.availableAt(150.0), 10);
    EXPECT_DOUBLE_EQ(profile.earliestFit(4, 10.0), 50.0);
}

TEST(ProcProfile, EarliestParameterRespected)
{
    ProcProfile profile(8, 8, {}, 0.0);
    EXPECT_DOUBLE_EQ(profile.earliestFit(4, 10.0, 500.0), 500.0);
}

TEST(ProcProfileDeath, TooLargeRequest)
{
    ProcProfile profile(8, 8, {}, 0.0);
    EXPECT_DEATH(profile.earliestFit(9, 10.0), "procs");
}

SimJob
job(long long id, double submit, int procs, double run, int priority = 0)
{
    SimJob j;
    j.id = id;
    j.submitTime = submit;
    j.procs = procs;
    j.runSeconds = run;
    j.estimateSeconds = run;
    j.priority = priority;
    return j;
}

TEST(ConservativeBackfill, BackfillsWhenHarmless)
{
    // Same scenario as the EASY test: short narrow job backfills.
    Machine machine(10);
    machine.allocate(8);
    ConservativeBackfillScheduler scheduler;
    std::vector<RunningJob> running = {{99, 8, 1000.0}};
    std::vector<SimJob> pending = {job(1, 0, 10, 500),
                                   job(2, 1, 2, 900)};
    auto starts = scheduler.selectJobs(pending, machine, running, 0.0);
    ASSERT_EQ(starts.size(), 1u);
    EXPECT_EQ(starts[0], 1u);
}

TEST(ConservativeBackfill, ProtectsNonHeadReservations)
{
    // Distinguishing case vs EASY. Machine: 10 procs, 4 busy until
    // t=1000 (6 free). Queue: A (8 procs, est 500) is the blocked
    // head, reserved [1000, 1500); B (9 procs, est 400) is reserved
    // behind A at [1500, 1900); C (2 procs, est 9999) fits in the
    // free processors now.
    //
    // EASY protects only A: C finishes long after the shadow but
    // needs no more than the 2 "extra" processors beside A's
    // reservation, so EASY starts it — delaying B, whose window has
    // only 1 processor of slack (10 - 9). Conservative checks C
    // against *every* reservation and refuses.
    Machine machine(10);
    machine.allocate(4);
    std::vector<RunningJob> running = {{99, 4, 1000.0}};
    std::vector<SimJob> pending = {job(1, 0, 8, 500),
                                   job(2, 1, 9, 400),
                                   job(3, 2, 2, 9999)};

    EasyBackfillScheduler easy;
    auto easy_starts = easy.selectJobs(pending, machine, running, 0.0);
    ASSERT_EQ(easy_starts.size(), 1u);  // EASY lets C run...
    EXPECT_EQ(easy_starts[0], 2u);

    ConservativeBackfillScheduler conservative;
    auto starts = conservative.selectJobs(pending, machine, running, 0.0);
    // ...conservative does not: C overlapping B's [1500, 1900) x 9
    // reservation would leave only 1 free processor there.
    EXPECT_TRUE(starts.empty());
}

TEST(ConservativeBackfill, StartsEverythingOnIdleMachine)
{
    Machine machine(16);
    ConservativeBackfillScheduler scheduler;
    std::vector<SimJob> pending = {job(1, 0, 8, 100), job(2, 1, 8, 100)};
    auto starts = scheduler.selectJobs(pending, machine, {}, 0.0);
    EXPECT_EQ(starts.size(), 2u);
}

TEST(ConservativeBackfill, FullSimulationRunsClean)
{
    // A month of jobs through the conservative policy: every job
    // starts, the machine invariants hold (the Machine panics on any
    // oversubscription), and ordering among equal-priority jobs never
    // regresses past a reservation.
    stats::Rng rng(23);
    JobGeneratorConfig generator;
    generator.startTime = 0.0;
    generator.durationSeconds = 60.0 * 86400.0;
    QueueSpec spec;
    spec.name = "normal";
    spec.jobsPerDay = 40.0;
    spec.maxProcs = 48;
    spec.runMedianSeconds = 3600.0;
    generator.queues = {spec};
    auto jobs = generateJobs(generator, rng);

    BatchSimConfig config;
    config.totalProcs = 64;
    config.policy = "conservative-backfill";
    BatchSimulator simulator(config);
    auto done = simulator.run(jobs);
    ASSERT_EQ(done.size(), jobs.size());
    for (const auto &j : done)
        ASSERT_GE(j.startTime, j.submitTime);
    EXPECT_GT(simulator.stats().utilization, 0.1);
}

TEST(ConservativeBackfill, ComparableToEasyOnHeavyLoad)
{
    // Conservative backfilling forgoes opportunities EASY takes but
    // protects every reservation; neither dominates on makespan in
    // general (they trade wins by workload). Check the provable
    // parts: both complete the load, and their makespans are close.
    stats::Rng rng(29);
    JobGeneratorConfig generator;
    generator.startTime = 0.0;
    generator.durationSeconds = 10.0 * 86400.0;
    QueueSpec spec;
    spec.name = "normal";
    spec.jobsPerDay = 80.0;
    spec.maxProcs = 48;
    spec.runMedianSeconds = 2.0 * 3600.0;
    spec.runLogSigma = 1.2;
    spec.overestimateMax = 3.0;
    generator.queues = {spec};
    auto jobs = generateJobs(generator, rng);

    BatchSimConfig easy_config;
    easy_config.totalProcs = 64;
    easy_config.policy = "easy-backfill";
    BatchSimulator easy(easy_config);
    easy.run(jobs);

    BatchSimConfig cons_config;
    cons_config.totalProcs = 64;
    cons_config.policy = "conservative-backfill";
    BatchSimulator conservative(cons_config);
    conservative.run(jobs);

    EXPECT_EQ(conservative.stats().jobsCompleted,
              easy.stats().jobsCompleted);
    EXPECT_GT(conservative.stats().backfillStarts, 0u);
    EXPECT_NEAR(conservative.stats().makespan, easy.stats().makespan,
                0.15 * easy.stats().makespan);
}

TEST(MakeScheduler, ConservativeRegistered)
{
    EXPECT_EQ(makeScheduler("conservative-backfill")->name(),
              "conservative-backfill");
}

} // namespace
} // namespace sim
} // namespace qdel
