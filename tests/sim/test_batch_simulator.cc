/**
 * @file
 * Tests for the machine-simulator event loop: space-sharing
 * invariants, FCFS semantics, backfill behaviour, policy changes, and
 * trace output.
 */

#include <gtest/gtest.h>

#include "sim/batch/batch_simulator.hh"
#include "sim/batch/job_generator.hh"

namespace qdel {
namespace sim {
namespace {

SimJob
job(long long id, double submit, int procs, double run,
    double estimate = -1.0, int priority = 0, const char *queue = "q")
{
    SimJob j;
    j.id = id;
    j.submitTime = submit;
    j.procs = procs;
    j.runSeconds = run;
    j.estimateSeconds = estimate < 0.0 ? run : estimate;
    j.priority = priority;
    j.queue = queue;
    return j;
}

TEST(BatchSim, SingleJobStartsImmediately)
{
    BatchSimConfig config;
    config.totalProcs = 16;
    config.policy = "fcfs";
    BatchSimulator simulator(config);
    auto done = simulator.run({job(1, 100.0, 8, 50.0)});
    ASSERT_EQ(done.size(), 1u);
    EXPECT_DOUBLE_EQ(done[0].startTime, 100.0);
    EXPECT_DOUBLE_EQ(done[0].waitSeconds(), 0.0);
}

TEST(BatchSim, QueuedJobWaitsForProcessors)
{
    BatchSimConfig config;
    config.totalProcs = 8;
    config.policy = "fcfs";
    BatchSimulator simulator(config);
    auto done = simulator.run(
        {job(1, 0.0, 8, 100.0), job(2, 10.0, 8, 50.0)});
    ASSERT_EQ(done.size(), 2u);
    EXPECT_DOUBLE_EQ(done[1].startTime, 100.0);
    EXPECT_DOUBLE_EQ(done[1].waitSeconds(), 90.0);
}

TEST(BatchSim, FcfsNeverReordersEqualPriority)
{
    BatchSimConfig config;
    config.totalProcs = 4;
    config.policy = "fcfs";
    BatchSimulator simulator(config);
    std::vector<SimJob> jobs;
    for (int i = 0; i < 50; ++i)
        jobs.push_back(job(i + 1, i, 1 + (i % 4), 100.0 + i));
    auto done = simulator.run(jobs);
    ASSERT_EQ(done.size(), 50u);
    // Start times must be nondecreasing in submission order under FCFS.
    for (size_t i = 1; i < done.size(); ++i)
        EXPECT_GE(done[i].startTime, done[i - 1].startTime)
            << "job " << done[i].id;
    EXPECT_EQ(simulator.stats().backfillStarts, 0u);
}

TEST(BatchSim, EasyBackfillReordersButRecordsIt)
{
    BatchSimConfig config;
    config.totalProcs = 10;
    config.policy = "easy-backfill";
    BatchSimulator simulator(config);
    // Job 1 occupies 8 procs for 1000 s. Job 2 (10 procs) must wait.
    // Job 3 (2 procs, 100 s) backfills ahead of job 2.
    auto done = simulator.run({job(1, 0.0, 8, 1000.0),
                               job(2, 1.0, 10, 100.0),
                               job(3, 2.0, 2, 100.0)});
    ASSERT_EQ(done.size(), 3u);
    EXPECT_DOUBLE_EQ(done[2].startTime, 2.0);     // backfilled
    EXPECT_DOUBLE_EQ(done[1].startTime, 1000.0);  // head not delayed
    EXPECT_GE(simulator.stats().backfillStarts, 1u);
}

TEST(BatchSim, PriorityPolicyDrainsHighQueueFirst)
{
    BatchSimConfig config;
    config.totalProcs = 4;
    config.policy = "priority-fcfs";
    BatchSimulator simulator(config);
    auto done = simulator.run(
        {job(1, 0.0, 4, 100.0, -1.0, 0, "low"),
         job(2, 1.0, 4, 100.0, -1.0, 0, "low"),
         job(3, 2.0, 4, 100.0, -1.0, 5, "high")});
    // After job 1 finishes at t=100, the high-priority job 3 runs
    // before the earlier-submitted low-priority job 2.
    EXPECT_DOUBLE_EQ(done[2].startTime, 100.0);
    EXPECT_DOUBLE_EQ(done[1].startTime, 200.0);
}

TEST(BatchSim, PolicyChangeMidRun)
{
    BatchSimConfig config;
    config.totalProcs = 4;
    config.policy = "priority-fcfs";
    config.changes = {{150.0, "fcfs"}};
    BatchSimulator simulator(config);
    // Same workload as above, but a second low job; after the switch
    // to FCFS at t=150 the remaining queue drains in submission order.
    auto done = simulator.run(
        {job(1, 0.0, 4, 100.0, -1.0, 0, "low"),
         job(2, 1.0, 4, 100.0, -1.0, 0, "low"),
         job(3, 2.0, 4, 100.0, -1.0, 5, "high"),
         job(4, 3.0, 4, 100.0, -1.0, 9, "urgent")});
    // t=100: the priority policy starts "urgent" (job 4, priority 9).
    // t=150: policy becomes FCFS. t=200: job 2 (earliest submit) beats
    // job 3 despite job 3's higher priority; job 3 runs last.
    EXPECT_DOUBLE_EQ(done[3].startTime, 100.0);
    EXPECT_DOUBLE_EQ(done[1].startTime, 200.0);
    EXPECT_DOUBLE_EQ(done[2].startTime, 300.0);
}

TEST(BatchSim, StatsAccounting)
{
    BatchSimConfig config;
    config.totalProcs = 10;
    config.policy = "fcfs";
    BatchSimulator simulator(config);
    auto done = simulator.run(
        {job(1, 0.0, 10, 100.0), job(2, 0.0, 10, 100.0)});
    (void)done;
    const auto &stats = simulator.stats();
    EXPECT_EQ(stats.jobsCompleted, 2u);
    EXPECT_DOUBLE_EQ(stats.makespan, 200.0);
    EXPECT_DOUBLE_EQ(stats.totalBusyProcSeconds, 2000.0);
    EXPECT_NEAR(stats.utilization, 1.0, 1e-12);
}

TEST(BatchSim, EstimatesClampedToRuntime)
{
    BatchSimConfig config;
    config.totalProcs = 4;
    BatchSimulator simulator(config);
    auto bad = job(1, 0.0, 4, 100.0, /*estimate=*/10.0);
    auto done = simulator.run({bad});
    // estimate < run is silently raised to the runtime (real schedulers
    // kill such jobs; our planning view just needs consistency).
    EXPECT_GE(done[0].estimateSeconds, done[0].runSeconds);
}

TEST(BatchSimDeath, JobLargerThanMachine)
{
    BatchSimConfig config;
    config.totalProcs = 8;
    BatchSimulator simulator(config);
    EXPECT_DEATH(simulator.run({job(1, 0.0, 9, 10.0)}), "wants");
}

TEST(BatchSim, ToTraceConversion)
{
    BatchSimConfig config;
    config.totalProcs = 8;
    BatchSimulator simulator(config);
    auto done = simulator.run(
        {job(1, 0.0, 8, 100.0), job(2, 5.0, 8, 50.0)});
    auto t = BatchSimulator::toTrace(done, "site", "machine");
    ASSERT_EQ(t.size(), 2u);
    EXPECT_DOUBLE_EQ(t[1].waitSeconds, 95.0);
    EXPECT_EQ(t.site(), "site");
    EXPECT_TRUE(t.isSorted());
}

TEST(BatchSim, LargeRandomWorkloadCompletes)
{
    // End-to-end smoke: a month of multi-queue jobs through EASY
    // backfill; every job must start, utilization must be sane.
    stats::Rng rng(7);
    JobGeneratorConfig generator;
    generator.startTime = 0.0;
    generator.durationSeconds = 30.0 * 86400.0;
    QueueSpec normal;
    normal.name = "normal";
    normal.jobsPerDay = 150.0;
    normal.maxProcs = 64;
    QueueSpec high;
    high.name = "high";
    high.priority = 5;
    high.jobsPerDay = 30.0;
    high.maxProcs = 32;
    generator.queues = {normal, high};
    auto jobs = generateJobs(generator, rng);
    ASSERT_GT(jobs.size(), 4000u);

    BatchSimConfig config;
    config.totalProcs = 128;
    config.policy = "easy-backfill";
    BatchSimulator simulator(config);
    auto done = simulator.run(jobs);
    ASSERT_EQ(done.size(), jobs.size());
    for (const auto &j : done)
        ASSERT_GE(j.startTime, j.submitTime);
    EXPECT_GT(simulator.stats().utilization, 0.05);
    EXPECT_LE(simulator.stats().utilization, 1.0);
    EXPECT_GT(simulator.stats().backfillStarts, 0u);
}

} // namespace
} // namespace sim
} // namespace qdel
