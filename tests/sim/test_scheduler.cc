/**
 * @file
 * Unit tests for the scheduling policies, including the EASY
 * backfilling invariants (backfilled jobs can never delay the queue
 * head's reservation).
 */

#include <gtest/gtest.h>

#include "sim/batch/scheduler.hh"

namespace qdel {
namespace sim {
namespace {

SimJob
job(long long id, double submit, int procs, double estimate,
    int priority = 0)
{
    SimJob j;
    j.id = id;
    j.submitTime = submit;
    j.procs = procs;
    j.runSeconds = estimate;
    j.estimateSeconds = estimate;
    j.priority = priority;
    return j;
}

TEST(Fcfs, StartsInOrderUntilBlocked)
{
    Machine machine(10);
    FcfsScheduler scheduler;
    std::vector<SimJob> pending = {job(1, 0, 4, 100), job(2, 1, 4, 100),
                                   job(3, 2, 4, 100), job(4, 3, 1, 100)};
    auto starts = scheduler.selectJobs(pending, machine, {}, 10.0);
    // Jobs 1 and 2 fit (8 procs); job 3 blocks; job 4 must NOT jump
    // ahead under pure FCFS.
    ASSERT_EQ(starts.size(), 2u);
    EXPECT_EQ(starts[0], 0u);
    EXPECT_EQ(starts[1], 1u);
}

TEST(Fcfs, EmptyPending)
{
    Machine machine(10);
    FcfsScheduler scheduler;
    EXPECT_TRUE(scheduler.selectJobs({}, machine, {}, 0.0).empty());
}

TEST(PriorityFcfs, HigherPriorityFirst)
{
    Machine machine(8);
    PriorityFcfsScheduler scheduler;
    std::vector<SimJob> pending = {job(1, 0, 8, 100, 0),
                                   job(2, 1, 8, 100, 5)};
    auto starts = scheduler.selectJobs(pending, machine, {}, 10.0);
    ASSERT_EQ(starts.size(), 1u);
    EXPECT_EQ(starts[0], 1u);  // the priority-5 job
}

TEST(PriorityFcfs, FcfsWithinPriority)
{
    Machine machine(4);
    PriorityFcfsScheduler scheduler;
    std::vector<SimJob> pending = {job(1, 5, 4, 100, 1),
                                   job(2, 3, 4, 100, 1)};
    auto starts = scheduler.selectJobs(pending, machine, {}, 10.0);
    ASSERT_EQ(starts.size(), 1u);
    EXPECT_EQ(starts[0], 1u);  // earlier submission wins
}

TEST(EasyBackfill, BackfillsShortNarrowJob)
{
    Machine machine(10);
    machine.allocate(8);  // running job occupies 8 procs
    EasyBackfillScheduler scheduler;
    std::vector<RunningJob> running = {{99, 8, 1000.0}};
    // Head needs 10 procs -> reservation at t=1000. A 2-proc job that
    // finishes by 1000 may backfill.
    std::vector<SimJob> pending = {job(1, 0, 10, 500),
                                   job(2, 1, 2, 900)};
    auto starts = scheduler.selectJobs(pending, machine, running, 0.0);
    ASSERT_EQ(starts.size(), 1u);
    EXPECT_EQ(starts[0], 1u);
}

TEST(EasyBackfill, RefusesBackfillThatWouldDelayHead)
{
    Machine machine(10);
    machine.allocate(8);
    EasyBackfillScheduler scheduler;
    std::vector<RunningJob> running = {{99, 8, 1000.0}};
    // The 2-proc candidate runs past the shadow time (estimate 2000 >
    // 1000) and the head needs all 10 procs at the shadow (extra = 0):
    // backfilling it would delay the head. It must stay queued.
    std::vector<SimJob> pending = {job(1, 0, 10, 500),
                                   job(2, 1, 2, 2000)};
    auto starts = scheduler.selectJobs(pending, machine, running, 0.0);
    EXPECT_TRUE(starts.empty());
}

TEST(EasyBackfill, AllowsLongJobBesideReservation)
{
    Machine machine(10);
    machine.allocate(6);
    EasyBackfillScheduler scheduler;
    std::vector<RunningJob> running = {{99, 6, 1000.0}};
    // Head needs 8; at the shadow (t=1000) 10 procs are free, leaving
    // extra = 2 beside the reservation. A 2-proc job may run
    // indefinitely without delaying the head; a 3-proc one may not.
    std::vector<SimJob> pending = {job(1, 0, 8, 500),
                                   job(2, 1, 2, 1e6),
                                   job(3, 2, 3, 1e6)};
    auto starts = scheduler.selectJobs(pending, machine, running, 0.0);
    ASSERT_EQ(starts.size(), 1u);
    EXPECT_EQ(starts[0], 1u);
}

TEST(EasyBackfill, ExtraWidthConsumedByStackedBackfills)
{
    Machine machine(10);
    machine.allocate(6);
    EasyBackfillScheduler scheduler;
    std::vector<RunningJob> running = {{99, 6, 1000.0}};
    // extra = 2: two 1-proc eternal jobs fit beside the reservation,
    // a third must be refused.
    std::vector<SimJob> pending = {job(1, 0, 8, 500), job(2, 1, 1, 1e6),
                                   job(3, 2, 1, 1e6), job(4, 3, 1, 1e6)};
    auto starts = scheduler.selectJobs(pending, machine, running, 0.0);
    ASSERT_EQ(starts.size(), 2u);
    EXPECT_EQ(starts[0], 1u);
    EXPECT_EQ(starts[1], 2u);
}

TEST(EasyBackfill, StartsHeadWhenItFits)
{
    Machine machine(10);
    EasyBackfillScheduler scheduler;
    std::vector<SimJob> pending = {job(1, 0, 10, 100)};
    auto starts = scheduler.selectJobs(pending, machine, {}, 0.0);
    ASSERT_EQ(starts.size(), 1u);
}

TEST(EasyBackfill, AccountsForJustStartedJobsInShadow)
{
    Machine machine(10);
    EasyBackfillScheduler scheduler;
    // Phase 1 starts the 6-proc job (estimate 100); the 10-proc head
    // then gets its reservation at t=100; the 4-proc job with estimate
    // 50 can backfill into the remaining width.
    std::vector<SimJob> pending = {job(1, 0, 6, 100), job(2, 1, 10, 500),
                                   job(3, 2, 4, 50)};
    auto starts = scheduler.selectJobs(pending, machine, {}, 0.0);
    ASSERT_EQ(starts.size(), 2u);
    EXPECT_EQ(starts[0], 0u);
    EXPECT_EQ(starts[1], 2u);
}

TEST(MakeScheduler, Factory)
{
    EXPECT_EQ(makeScheduler("fcfs")->name(), "fcfs");
    EXPECT_EQ(makeScheduler("priority-fcfs")->name(), "priority-fcfs");
    EXPECT_EQ(makeScheduler("easy-backfill")->name(), "easy-backfill");
}

TEST(MakeSchedulerDeath, UnknownPolicy)
{
    EXPECT_DEATH(makeScheduler("random"), "unknown scheduling policy");
}

} // namespace
} // namespace sim
} // namespace qdel
