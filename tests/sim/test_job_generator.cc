/**
 * @file
 * Unit tests for the machine-simulator workload generator.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "sim/batch/job_generator.hh"
#include "stats/descriptive.hh"

namespace qdel {
namespace sim {
namespace {

JobGeneratorConfig
baseConfig()
{
    JobGeneratorConfig config;
    config.startTime = 1000.0;
    config.durationSeconds = 10.0 * 86400.0;
    QueueSpec spec;
    spec.name = "normal";
    spec.jobsPerDay = 100.0;
    spec.minProcs = 1;
    spec.maxProcs = 64;
    spec.runMedianSeconds = 1800.0;
    spec.maxRunSeconds = 8 * 3600.0;
    spec.overestimateMax = 4.0;
    config.queues = {spec};
    return config;
}

TEST(JobGenerator, CountScalesWithRate)
{
    stats::Rng rng(1);
    auto jobs = generateJobs(baseConfig(), rng);
    EXPECT_EQ(jobs.size(), 1000u);  // 100 jobs/day for 10 days
}

TEST(JobGenerator, SortedWithAscendingIds)
{
    stats::Rng rng(2);
    auto jobs = generateJobs(baseConfig(), rng);
    for (size_t i = 1; i < jobs.size(); ++i) {
        ASSERT_GE(jobs[i].submitTime, jobs[i - 1].submitTime);
        ASSERT_EQ(jobs[i].id, jobs[i - 1].id + 1);
    }
}

TEST(JobGenerator, FieldInvariants)
{
    stats::Rng rng(3);
    auto config = baseConfig();
    auto jobs = generateJobs(config, rng);
    const auto &spec = config.queues[0];
    for (const auto &job : jobs) {
        ASSERT_GE(job.procs, spec.minProcs);
        ASSERT_LE(job.procs, spec.maxProcs);
        ASSERT_GE(job.runSeconds, 60.0);
        ASSERT_LE(job.runSeconds, spec.maxRunSeconds);
        ASSERT_GE(job.estimateSeconds, job.runSeconds * 0.999);
        ASSERT_LE(job.estimateSeconds, spec.maxRunSeconds + 1e-9);
        ASSERT_EQ(job.queue, "normal");
    }
}

TEST(JobGenerator, RuntimeMedianNearTarget)
{
    stats::Rng rng(4);
    auto config = baseConfig();
    config.durationSeconds = 100.0 * 86400.0;
    auto jobs = generateJobs(config, rng);
    std::vector<double> runtimes;
    for (const auto &job : jobs)
        runtimes.push_back(job.runSeconds);
    EXPECT_NEAR(stats::median(runtimes), 1800.0, 200.0);
}

TEST(JobGenerator, PowersOfTwoFavored)
{
    stats::Rng rng(5);
    auto config = baseConfig();
    config.durationSeconds = 100.0 * 86400.0;
    auto jobs = generateJobs(config, rng);
    size_t pow2 = 0;
    for (const auto &job : jobs) {
        const unsigned p = static_cast<unsigned>(job.procs);
        if ((p & (p - 1)) == 0)
            ++pow2;
    }
    // 70% explicit power-of-two draws plus uniform collisions.
    EXPECT_GT(static_cast<double>(pow2) / jobs.size(), 0.6);
}

TEST(JobGenerator, MultipleQueuesMerged)
{
    stats::Rng rng(6);
    auto config = baseConfig();
    QueueSpec debug;
    debug.name = "debug";
    debug.priority = 3;
    debug.jobsPerDay = 50.0;
    debug.maxProcs = 8;
    config.queues.push_back(debug);
    auto jobs = generateJobs(config, rng);
    size_t debug_count = 0;
    for (const auto &job : jobs)
        debug_count += job.queue == "debug";
    EXPECT_EQ(debug_count, 500u);
    EXPECT_EQ(jobs.size(), 1500u);
}

TEST(JobGeneratorDeath, InvalidConfigs)
{
    stats::Rng rng(7);
    JobGeneratorConfig empty;
    EXPECT_DEATH(generateJobs(empty, rng), "at least one");
    auto config = baseConfig();
    config.durationSeconds = 0.0;
    EXPECT_DEATH(generateJobs(config, rng), "duration");
}

} // namespace
} // namespace sim
} // namespace qdel
