/**
 * @file
 * End-to-end instrumentation tests: the domain metrics that the
 * predictors, replay, persistence, and trace-ingestion pipelines feed
 * must agree with the ground truth those pipelines report themselves
 * (ReplayResult counters, trimCount(), cache status lines).
 */

#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "core/bmbp_predictor.hh"
#include "obs/domain_metrics.hh"
#include "obs/events.hh"
#include "obs/metrics.hh"
#include "sim/replay/replay_simulator.hh"
#include "trace/native_format.hh"
#include "trace/trace.hh"
#include "trace/trace_loader.hh"

namespace qdel {
namespace obs {
namespace {

/** Enabled collection with clean counters around every test. */
class InstrumentationTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        wasEnabled_ = enabled();
        registry().resetForTest();
        events().clear();
        setEnabled(true);
    }

    void TearDown() override
    {
        setEnabled(wasEnabled_);
        registry().resetForTest();
        events().clear();
    }

  private:
    bool wasEnabled_ = false;
};

/** A two-regime trace: quiet waits, then a sustained 1000x level shift. */
trace::Trace
nonstationaryTrace(size_t quiet, size_t loud)
{
    trace::Trace t;
    double submit = 1000.0;
    for (size_t i = 0; i < quiet + loud; ++i) {
        trace::JobRecord job;
        job.submitTime = submit;
        job.waitSeconds = i < quiet ? 10.0 + 0.01 * (i % 7)
                                    : 10000.0 + 0.01 * (i % 7);
        submit += 60.0;
        t.add(job);
    }
    return t;
}

TEST_F(InstrumentationTest, RareEventCounterMatchesTrimCount)
{
    // The satellite regression: replaying a synthetic nonstationary
    // trace must fire the rare-event detector, and the counter must
    // agree exactly with the predictor's own trim count.
    core::BmbpConfig config;
    config.runThresholdOverride = 3;
    core::BmbpPredictor predictor(config);

    sim::ReplayConfig config_replay;
    config_replay.epochSeconds = 300.0;
    config_replay.trainFraction = 0.10;
    sim::ReplaySimulator replay(config_replay);
    auto result = replay.run(nonstationaryTrace(500, 500), predictor);
    ASSERT_TRUE(result.ok()) << result.error().str();

    EXPECT_GE(predictor.trimCount(), 1u);
    EXPECT_EQ(coreMetrics().rareEventFired.value(),
              predictor.trimCount());
    // Every fired trim began as a run; runs may also start and die out.
    EXPECT_GE(coreMetrics().rareRunStarted.value(),
              coreMetrics().rareEventFired.value());
    // The run-length gauge tracks the predictor's live run.
    EXPECT_EQ(coreMetrics().rareRunLength.value(),
              static_cast<double>(predictor.currentRun()));
    // Jobs still waiting at the end of the trace are never released,
    // so observations lag totalJobs but must account for every release.
    EXPECT_GT(coreMetrics().observations.value(), 0u);
    EXPECT_LE(coreMetrics().observations.value(),
              result.value().totalJobs);

    // The event ring saw one rare_event_fired per trim (ring capacity
    // far exceeds this run's event volume).
    size_t fired_events = 0;
    for (const auto &event : events().drain()) {
        if (event.type == EventType::RareEventFired)
            ++fired_events;
    }
    EXPECT_EQ(fired_events, predictor.trimCount());
}

TEST_F(InstrumentationTest, ReplayMetricsMatchReplayResult)
{
    core::BmbpPredictor predictor;
    sim::ReplayConfig config_replay;
    config_replay.epochSeconds = 300.0;
    config_replay.trainFraction = 0.10;
    sim::ReplaySimulator replay(config_replay);
    auto run = replay.run(nonstationaryTrace(400, 100), predictor);
    ASSERT_TRUE(run.ok()) << run.error().str();
    const sim::ReplayResult &result = run.value();

    const auto &metrics = replayMetrics();
    EXPECT_EQ(metrics.jobsProcessed.value(), result.totalJobs);
    EXPECT_EQ(metrics.predictions.value(), result.evaluatedJobs);
    EXPECT_EQ(metrics.infinitePredictions.value(),
              result.infinitePredictions);
    EXPECT_EQ(metrics.boundHits.value(),
              result.correct - result.infinitePredictions);
    EXPECT_EQ(metrics.boundMisses.value(),
              result.evaluatedJobs - result.correct);
}

TEST_F(InstrumentationTest, CheckpointRecoveryAndWalMetrics)
{
    const std::string dir =
        ::testing::TempDir() + "qdel_obs_ckpt_metrics";
    std::filesystem::remove_all(dir);  // stale state from prior runs

    sim::ReplayCheckpointOptions ckpt;
    ckpt.dir = dir;
    ckpt.intervalJobs = 100;
    {
        core::BmbpPredictor predictor;
        sim::ReplayConfig config_replay;
        config_replay.epochSeconds = 300.0;
        config_replay.trainFraction = 0.10;
        sim::ReplaySimulator replay(config_replay);
        auto run = replay.run(nonstationaryTrace(300, 0), predictor,
                              {}, ckpt);
        ASSERT_TRUE(run.ok()) << run.error().str();
    }
    EXPECT_GE(persistMetrics().checkpointsWritten.value(), 2u);
    EXPECT_GE(persistMetrics().walAppends.value(), 1u);
    EXPECT_GE(persistMetrics().fsyncSeconds.count(), 1u);
    EXPECT_GE(persistMetrics().checkpointSeconds.count(), 1u);
    const uint64_t recoveries_before =
        persistMetrics().recoveries.value();

    // A resumed run exercises the recovery ladder and reports its rung.
    ckpt.resume = true;
    {
        core::BmbpPredictor predictor;
        sim::ReplayConfig config_replay;
        config_replay.epochSeconds = 300.0;
        config_replay.trainFraction = 0.10;
        sim::ReplaySimulator replay(config_replay);
        auto run = replay.run(nonstationaryTrace(300, 0), predictor,
                              {}, ckpt);
        ASSERT_TRUE(run.ok()) << run.error().str();
    }
    EXPECT_GT(persistMetrics().recoveries.value(), recoveries_before);
    const double rung = persistMetrics().recoveryRung.value();
    EXPECT_GE(rung, 1.0);
    EXPECT_LE(rung, 4.0);
}

TEST_F(InstrumentationTest, IngestAndCacheMetrics)
{
    const std::string path =
        ::testing::TempDir() + "qdel_obs_ingest.txt";
    auto saved = trace::saveNativeTrace(nonstationaryTrace(50, 0), path);
    ASSERT_TRUE(saved.ok()) << saved.error().str();

    auto loaded = trace::loadTrace(path, {});
    ASSERT_TRUE(loaded.ok()) << loaded.error().str();
    EXPECT_EQ(ingestMetrics().recordsParsed.value(), 50u);
    EXPECT_GE(ingestMetrics().linesParsed.value(), 50u);
    EXPECT_GT(ingestMetrics().parseBytes.value(), 0u);
    EXPECT_GE(ingestMetrics().parseSeconds.count(), 1u);

    // First cached load: miss + text parse; second: pure cache hit.
    const std::string cache_dir =
        ::testing::TempDir() + "qdel_obs_ingest_cache";
    std::filesystem::remove_all(cache_dir);  // stale caches
    std::filesystem::create_directories(cache_dir);
    trace::TraceLoadOptions cache_options;
    cache_options.cache = true;
    cache_options.cacheDir = cache_dir;
    auto first = trace::loadTrace(path, cache_options);
    ASSERT_TRUE(first.ok()) << first.error().str();
    EXPECT_EQ(ingestMetrics().cacheMisses.value(), 1u);
    EXPECT_EQ(ingestMetrics().cacheHits.value(), 0u);

    auto second = trace::loadTrace(path, cache_options);
    ASSERT_TRUE(second.ok()) << second.error().str();
    EXPECT_EQ(ingestMetrics().cacheHits.value(), 1u);
    EXPECT_EQ(second.value().size(), 50u);

    bool saw_hit_event = false;
    for (const auto &event : events().drain()) {
        if (event.type == EventType::CacheHit) {
            saw_hit_event = true;
            EXPECT_EQ(event.a, 50.0);
        }
    }
    EXPECT_TRUE(saw_hit_event);
}

} // namespace
} // namespace obs
} // namespace qdel
