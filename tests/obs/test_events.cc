/**
 * @file
 * Tests for the bounded event ring and its serializers: overwrite
 * semantics with a dropped counter, JSON Lines vs Chrome trace_event
 * rendering, and the scoped-timer span helper.
 */

#include <atomic>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/events.hh"
#include "obs/metrics.hh"

namespace qdel {
namespace obs {
namespace {

/** Clean global event/enabled state around each test. */
class EventsTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        wasEnabled_ = enabled();
        events().clear();
    }

    void TearDown() override
    {
        setEnabled(wasEnabled_);
        events().clear();
    }

  private:
    bool wasEnabled_ = false;
};

TEST_F(EventsTest, EmitAndDrainPreservesFields)
{
    EventRing ring(64);
    ring.emit(EventType::BoundHit, 10.0, 3.0, "hit");
    ring.emit(EventType::CacheMiss);
    ring.emitSpan(EventType::Span, 1000, 500, "work");

    const auto drained = ring.drain();
    ASSERT_EQ(drained.size(), 3u);
    // drain() sorts by timestamp, so only check ordering generically:
    // the ring makes no promise about how the span's explicit ts
    // relates to the nowNanos() stamps of the other two.
    for (size_t i = 1; i < drained.size(); ++i)
        EXPECT_LE(drained[i - 1].tsNanos, drained[i].tsNanos);

    bool found_span = false;
    bool found_hit = false;
    for (const auto &event : drained) {
        if (event.type == EventType::Span) {
            found_span = true;
            EXPECT_EQ(event.tsNanos, 1000);
            EXPECT_EQ(event.durNanos, 500);
            EXPECT_STREQ(event.label, "work");
        }
        if (event.type == EventType::BoundHit) {
            found_hit = true;
            EXPECT_EQ(event.a, 10.0);
            EXPECT_EQ(event.b, 3.0);
        }
    }
    EXPECT_TRUE(found_span);
    EXPECT_TRUE(found_hit);
    EXPECT_EQ(ring.dropped(), 0u);
}

TEST_F(EventsTest, RingOverwritesOldestAndCountsDropped)
{
    // Capacity kShards means one slot per shard; a single thread
    // always lands on the same shard, so every emit past the first
    // overwrites and bumps the dropped counter.
    EventRing ring(kShards);
    for (int i = 0; i < 5; ++i)
        ring.emit(EventType::WalAppend, static_cast<double>(i));
    const auto drained = ring.drain();
    ASSERT_EQ(drained.size(), 1u);
    EXPECT_EQ(drained[0].a, 4.0);  // newest survives
    EXPECT_EQ(ring.dropped(), 4u);

    ring.clear();
    EXPECT_TRUE(ring.drain().empty());
    EXPECT_EQ(ring.dropped(), 0u);
}

TEST_F(EventsTest, ConcurrentSpanEmissionMidDrainKeepsAccounting)
{
    // Reactor threads emit spans into a small ring while another
    // thread drains repeatedly (the /debug + --events-out pattern).
    // Two invariants survive the races: drain() never observes a torn
    // event (label pointers stay valid string literals, tids stay in
    // range), and once the writers stop, every emission is accounted
    // for as either resident or dropped.
    constexpr int kThreads = 6;
    constexpr int kEmits = 3000;
    EventRing ring(kShards * 8);  // 8 slots per shard: wraps constantly.

    std::atomic<bool> stop{false};
    std::thread drainer([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            for (const auto &event : ring.drain()) {
                ASSERT_TRUE(event.type == EventType::Span ||
                            event.type == EventType::BoundHit);
                ASSERT_NE(event.label, nullptr);
                if (event.type == EventType::Span)
                    ASSERT_STREQ(event.label, "mid_flush_span");
            }
        }
    });

    std::vector<std::thread> emitters;
    for (int t = 0; t < kThreads; ++t) {
        emitters.emplace_back([&ring, t] {
            for (int i = 0; i < kEmits; ++i) {
                if (i % 2 == 0) {
                    ring.emitSpan(EventType::Span, i * 1000, 500,
                                  "mid_flush_span",
                                  static_cast<uint64_t>(t) << 32 | i);
                } else {
                    ring.emit(EventType::BoundHit,
                              static_cast<double>(t),
                              static_cast<double>(i), "hit");
                }
            }
        });
    }
    for (auto &thread : emitters)
        thread.join();
    stop.store(true, std::memory_order_relaxed);
    drainer.join();

    // Overwrite accounting: resident + dropped == emitted, exactly.
    const auto drained = ring.drain();
    EXPECT_EQ(drained.size() + ring.dropped(),
              static_cast<uint64_t>(kThreads) * kEmits);
    EXPECT_LE(drained.size(), static_cast<size_t>(kShards) * 8);
    EXPECT_GT(ring.dropped(), 0u);
}

TEST_F(EventsTest, TraceIdRendersAsPaddedHexOnlyWhenSet)
{
    EventRing ring(64);
    ring.emit(EventType::BoundMiss, 9.0, 11.0, "scored",
              0x00000000deadbeefULL);
    ring.emit(EventType::CacheHit);  // untraced
    const std::string text = renderJsonLines(ring.drain());

    // Traced events carry the id as a 16-digit zero-padded hex string
    // (a JSON string, not a number: u64 does not fit in a double).
    EXPECT_NE(text.find("\"trace\":\"00000000deadbeef\""),
              std::string::npos);
    // The untraced line has no trace key at all.
    const size_t cache_line = text.find("\"name\":\"cache_hit\"");
    ASSERT_NE(cache_line, std::string::npos);
    const std::string rest = text.substr(cache_line);
    const std::string line = rest.substr(0, rest.find('\n'));
    EXPECT_EQ(line.find("\"trace\""), std::string::npos);
}

TEST_F(EventsTest, EventTypeNamesAreStable)
{
    EXPECT_STREQ(eventTypeName(EventType::RareEventFired),
                 "rare_event_fired");
    EXPECT_STREQ(eventTypeName(EventType::BoundMiss), "bound_miss");
    EXPECT_STREQ(eventTypeName(EventType::CheckpointWritten),
                 "checkpoint_written");
    EXPECT_STREQ(eventTypeName(EventType::CacheHit), "cache_hit");
}

TEST_F(EventsTest, JsonLinesOneObjectPerLine)
{
    EventRing ring(64);
    ring.emit(EventType::BoundHit, 1.0, 2.0, "x");
    ring.emit(EventType::BoundMiss);
    const std::string text = renderJsonLines(ring.drain());

    size_t lines = 0;
    size_t pos = 0;
    while ((pos = text.find('\n', pos)) != std::string::npos) {
        ++lines;
        ++pos;
    }
    EXPECT_EQ(lines, 2u);
    EXPECT_EQ(text.front(), '{');
    EXPECT_NE(text.find("\"name\":\"bound_hit\""), std::string::npos);
    EXPECT_NE(text.find("\"label\":\"x\""), std::string::npos);
    EXPECT_NE(text.find("\"a\":1"), std::string::npos);
}

TEST_F(EventsTest, ChromeTraceFormat)
{
    EventRing ring(64);
    ring.emit(EventType::RareEventFired, 3.0, 100.0, "bmbp");
    ring.emitSpan(EventType::Span, 2'000'000, 1'500'000, "refit");
    const std::string text = renderChromeTrace(ring.drain());

    EXPECT_EQ(text.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(text.find("\"displayTimeUnit\":\"ms\""),
              std::string::npos);
    // The instant carries a scope, the span a microsecond duration.
    EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(text.find("\"s\":\"t\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(text.find("\"dur\":1500.000"), std::string::npos);
    EXPECT_NE(text.find("\"ts\":2000.000"), std::string::npos);
}

TEST_F(EventsTest, ScopedTimerObservesHistogramAndEmitsSpan)
{
    setEnabled(true);
    Histogram histogram("test_span_seconds", "", {1.0});
    {
        ScopedTimer timer(&histogram, EventType::Span, "scoped");
    }
    EXPECT_EQ(histogram.count(), 1u);

    bool found = false;
    for (const auto &event : events().drain()) {
        if (event.type == EventType::Span && event.label &&
            std::string(event.label) == "scoped") {
            found = true;
            EXPECT_GE(event.durNanos, 0);
        }
    }
    EXPECT_TRUE(found);
}

TEST_F(EventsTest, ScopedTimerWithNullHistogramIsANoOp)
{
    setEnabled(true);
    {
        ScopedTimer timer(nullptr, EventType::Span, "ignored");
    }
    for (const auto &event : events().drain())
        EXPECT_STRNE(event.label, "ignored");
}

TEST_F(EventsTest, WriteEventsFilePicksFormatByExtension)
{
    events().emit(EventType::CacheHit, 5.0);
    const std::string dir = ::testing::TempDir();

    std::string error;
    const std::string chrome_path = dir + "qdel_events_test.json";
    ASSERT_TRUE(writeEventsFile(chrome_path, &error)) << error;
    std::ifstream chrome(chrome_path);
    std::string chrome_text((std::istreambuf_iterator<char>(chrome)),
                            std::istreambuf_iterator<char>());
    EXPECT_EQ(chrome_text.rfind("{\"traceEvents\":[", 0), 0u);

    const std::string jsonl_path = dir + "qdel_events_test.jsonl";
    ASSERT_TRUE(writeEventsFile(jsonl_path, &error)) << error;
    std::ifstream jsonl(jsonl_path);
    std::string jsonl_text((std::istreambuf_iterator<char>(jsonl)),
                           std::istreambuf_iterator<char>());
    EXPECT_EQ(jsonl_text.rfind("{\"name\":", 0), 0u);

    EXPECT_FALSE(writeEventsFile(dir + "no/such/dir/e.json", &error));
    EXPECT_FALSE(error.empty());
}

} // namespace
} // namespace obs
} // namespace qdel
