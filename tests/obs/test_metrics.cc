/**
 * @file
 * Tests for the metrics registry: bucket boundary semantics, exact
 * summation under concurrent increments (the TSan target), snapshot
 * merge rules, both serializers, and registry idempotence.
 */

#include <atomic>
#include <cmath>
#include <fstream>
#include <iterator>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.hh"

namespace qdel {
namespace obs {
namespace {

/** Fresh metric state per test; saves and restores the global switch. */
class MetricsTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        wasEnabled_ = enabled();
        registry().resetForTest();
    }

    void TearDown() override
    {
        setEnabled(wasEnabled_);
        registry().resetForTest();
    }

  private:
    bool wasEnabled_ = false;
};

TEST_F(MetricsTest, CounterStartsAtZeroAndAccumulates)
{
    Counter counter("test_counter_total", "help");
    EXPECT_EQ(counter.value(), 0u);
    counter.inc();
    counter.inc(41);
    EXPECT_EQ(counter.value(), 42u);
    EXPECT_EQ(counter.name(), "test_counter_total");
}

TEST_F(MetricsTest, GaugeSetAndAdd)
{
    Gauge gauge("test_gauge", "help");
    EXPECT_EQ(gauge.value(), 0.0);
    gauge.set(2.5);
    EXPECT_EQ(gauge.value(), 2.5);
    gauge.add(-0.5);
    EXPECT_EQ(gauge.value(), 2.0);
    gauge.set(7.0);  // set overrides, last write wins
    EXPECT_EQ(gauge.value(), 7.0);
}

TEST_F(MetricsTest, HistogramBucketBoundaries)
{
    // Prometheus "le" semantics: bucket i counts v <= bounds[i].
    Histogram histogram("test_hist", "help", {1.0, 2.0, 4.0});

    EXPECT_EQ(histogram.bucketIndex(0.5), 0u);  // below first bound
    EXPECT_EQ(histogram.bucketIndex(1.0), 0u);  // exact boundary
    EXPECT_EQ(histogram.bucketIndex(1.5), 1u);
    EXPECT_EQ(histogram.bucketIndex(2.0), 1u);  // exact boundary
    EXPECT_EQ(histogram.bucketIndex(4.0), 2u);  // exact last bound
    EXPECT_EQ(histogram.bucketIndex(4.1), 3u);  // overflow (+Inf)
    EXPECT_EQ(histogram.bucketIndex(1e30), 3u);
    EXPECT_EQ(histogram.bucketIndex(-1.0), 0u); // no underflow bucket
    EXPECT_EQ(histogram.bucketIndex(
                  std::numeric_limits<double>::quiet_NaN()),
              3u);  // NaN counts, in the overflow bucket

    for (double v : {0.5, 1.0, 1.5, 2.0, 4.0, 4.1})
        histogram.observe(v);
    const auto counts = histogram.counts();
    ASSERT_EQ(counts.size(), 4u);  // bounds + overflow
    EXPECT_EQ(counts[0], 2u);
    EXPECT_EQ(counts[1], 2u);
    EXPECT_EQ(counts[2], 1u);
    EXPECT_EQ(counts[3], 1u);
    EXPECT_EQ(histogram.count(), 6u);
    EXPECT_DOUBLE_EQ(histogram.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 4.1);
}

TEST_F(MetricsTest, HistogramSortsAndDeduplicatesBounds)
{
    Histogram histogram("test_hist_unsorted", "help", {4.0, 1.0, 2.0, 1.0});
    const std::vector<double> expected = {1.0, 2.0, 4.0};
    EXPECT_EQ(histogram.bounds(), expected);
}

TEST_F(MetricsTest, ExponentialBoundsShape)
{
    const auto bounds = exponentialBounds(1e-6, 4.0, 13);
    ASSERT_EQ(bounds.size(), 13u);
    EXPECT_DOUBLE_EQ(bounds[0], 1e-6);
    for (size_t i = 1; i < bounds.size(); ++i)
        EXPECT_DOUBLE_EQ(bounds[i], bounds[i - 1] * 4.0);
}

TEST_F(MetricsTest, ConcurrentCounterIncrementsSumExactly)
{
    // The sharding claim: concurrent relaxed increments are never
    // lost. Run under TSan in CI.
    Counter &counter =
        registry().counter("test_concurrent_total", "help");
    constexpr int kThreads = 8;
    constexpr int kPerThread = 20000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&counter] {
            for (int i = 0; i < kPerThread; ++i)
                counter.inc();
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(counter.value(),
              static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST_F(MetricsTest, ConcurrentHistogramObservationsSumExactly)
{
    Histogram &histogram = registry().histogram(
        "test_concurrent_hist", "help", {1.0, 10.0});
    constexpr int kThreads = 8;
    constexpr int kPerThread = 5000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&histogram, t] {
            for (int i = 0; i < kPerThread; ++i)
                histogram.observe(static_cast<double>(t % 3) * 4.0);
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(histogram.count(),
              static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST_F(MetricsTest, ConcurrentRegistrationSnapshotAndMergeAgree)
{
    // Registration is idempotent per name and must stay so when many
    // threads race to register the same families while a reader
    // snapshots and merges mid-registration. Every increment lands on
    // whatever instance the registry handed out, so the final snapshot
    // must sum exactly — no lost updates, no duplicate families.
    constexpr int kThreads = 8;
    constexpr int kFamilies = 5;
    constexpr int kIncrements = 2000;

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> merged_reads{0};
    std::thread reader([&] {
        MetricsSnapshot accumulated;
        while (!stop.load(std::memory_order_relaxed)) {
            // snapshot() walks the deques under the registration
            // mutex; merge() must tolerate families appearing between
            // iterations (they sum by name).
            MetricsSnapshot snap = registry().snapshot();
            accumulated.merge(snap);
            merged_reads.fetch_add(1, std::memory_order_relaxed);
        }
    });

    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
        writers.emplace_back([t] {
            for (int i = 0; i < kIncrements; ++i) {
                const std::string name =
                    "test_conc_reg_" + std::to_string((t + i) % kFamilies) +
                    "_total";
                registry().counter(name, "concurrent registration").inc();
                registry()
                    .gauge("test_conc_gauge_" +
                               std::to_string(i % kFamilies),
                           "concurrent gauge")
                    .set(static_cast<double>(i));
                registry()
                    .histogram("test_conc_hist_" +
                                   std::to_string(i % kFamilies),
                               "concurrent histogram", {1.0, 10.0})
                    .observe(static_cast<double>(i % 20));
            }
        });
    }
    for (auto &thread : writers)
        thread.join();
    stop.store(true, std::memory_order_relaxed);
    reader.join();
    EXPECT_GT(merged_reads.load(), 0u);

    const MetricsSnapshot final_snap = registry().snapshot();
    uint64_t counter_total = 0;
    int counter_families = 0;
    for (const auto &counter : final_snap.counters) {
        if (counter.name.rfind("test_conc_reg_", 0) == 0) {
            ++counter_families;
            counter_total += counter.value;
        }
    }
    EXPECT_EQ(counter_families, kFamilies);  // no duplicate registration
    EXPECT_EQ(counter_total,
              static_cast<uint64_t>(kThreads) * kIncrements);

    uint64_t histogram_total = 0;
    int histogram_families = 0;
    for (const auto &histogram : final_snap.histograms) {
        if (histogram.name.rfind("test_conc_hist_", 0) == 0) {
            ++histogram_families;
            histogram_total += histogram.count;
        }
    }
    EXPECT_EQ(histogram_families, kFamilies);
    EXPECT_EQ(histogram_total,
              static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST_F(MetricsTest, RegistryIsIdempotentPerName)
{
    Counter &a = registry().counter("test_idem_total", "help");
    Counter &b = registry().counter("test_idem_total", "other help");
    EXPECT_EQ(&a, &b);

    Gauge &g1 = registry().gauge("test_idem_gauge", "");
    Gauge &g2 = registry().gauge("test_idem_gauge", "");
    EXPECT_EQ(&g1, &g2);

    Histogram &h1 =
        registry().histogram("test_idem_hist", "", {1.0, 2.0});
    Histogram &h2 =
        registry().histogram("test_idem_hist", "", {5.0});
    EXPECT_EQ(&h1, &h2);
    // First registration's bounds win.
    const std::vector<double> expected = {1.0, 2.0};
    EXPECT_EQ(h1.bounds(), expected);
}

TEST_F(MetricsTest, SnapshotCapturesRegisteredMetrics)
{
    registry().counter("test_snap_total", "a counter").inc(3);
    registry().gauge("test_snap_gauge", "a gauge").set(1.5);
    registry()
        .histogram("test_snap_hist", "a histogram", {1.0})
        .observe(0.5);

    const MetricsSnapshot snapshot = registry().snapshot();
    bool found_counter = false, found_gauge = false, found_hist = false;
    for (const auto &counter : snapshot.counters) {
        if (counter.name == "test_snap_total") {
            found_counter = true;
            EXPECT_EQ(counter.value, 3u);
        }
    }
    for (const auto &gauge : snapshot.gauges) {
        if (gauge.name == "test_snap_gauge") {
            found_gauge = true;
            EXPECT_EQ(gauge.value, 1.5);
        }
    }
    for (const auto &histogram : snapshot.histograms) {
        if (histogram.name == "test_snap_hist") {
            found_hist = true;
            EXPECT_EQ(histogram.count, 1u);
            ASSERT_EQ(histogram.counts.size(), 2u);
            EXPECT_EQ(histogram.counts[0], 1u);
        }
    }
    EXPECT_TRUE(found_counter);
    EXPECT_TRUE(found_gauge);
    EXPECT_TRUE(found_hist);
}

TEST_F(MetricsTest, MergeSumsCountersAndHistogramsGaugesLatestWin)
{
    MetricsSnapshot ours;
    ours.counters.push_back({"c_total", "", 2});
    ours.gauges.push_back({"g", "", 1.0});
    ours.histograms.push_back({"h", "", {1.0}, {2, 1}, 3.0, 3});

    MetricsSnapshot theirs;
    theirs.counters.push_back({"c_total", "", 5});
    theirs.counters.push_back({"new_total", "", 7});
    theirs.gauges.push_back({"g", "", 9.0});
    theirs.histograms.push_back({"h", "", {1.0}, {1, 1}, 2.5, 2});

    ours.merge(theirs);
    ASSERT_EQ(ours.counters.size(), 2u);
    EXPECT_EQ(ours.counters[0].value, 7u);  // 2 + 5
    EXPECT_EQ(ours.counters[1].name, "new_total");
    EXPECT_EQ(ours.counters[1].value, 7u);
    EXPECT_EQ(ours.gauges[0].value, 9.0);   // theirs wins
    ASSERT_EQ(ours.histograms.size(), 1u);
    EXPECT_EQ(ours.histograms[0].counts[0], 3u);
    EXPECT_EQ(ours.histograms[0].counts[1], 2u);
    EXPECT_EQ(ours.histograms[0].count, 5u);
    EXPECT_DOUBLE_EQ(ours.histograms[0].sum, 5.5);
}

TEST_F(MetricsTest, MergeKeepsOursOnBoundMismatch)
{
    MetricsSnapshot ours;
    ours.histograms.push_back({"h", "", {1.0}, {2, 1}, 3.0, 3});
    MetricsSnapshot theirs;
    theirs.histograms.push_back({"h", "", {5.0}, {9, 9}, 99.0, 18});
    ours.merge(theirs);
    EXPECT_EQ(ours.histograms[0].count, 3u);
    EXPECT_EQ(ours.histograms[0].counts[0], 2u);
}

TEST_F(MetricsTest, PrometheusRenderingIsWellFormed)
{
    registry().counter("test_prom_total", "counts things").inc(4);
    registry()
        .histogram("test_prom_seconds", "timing", {1.0, 2.0})
        .observe(1.5);
    const std::string text = renderPrometheus(registry().snapshot());

    EXPECT_NE(text.find("# HELP test_prom_total counts things"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE test_prom_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("test_prom_total 4"), std::string::npos);
    EXPECT_NE(text.find("# TYPE test_prom_seconds histogram"),
              std::string::npos);
    // Cumulative buckets: 0 <= 1.0, 1 <= 2.0, 1 at +Inf.
    EXPECT_NE(text.find("test_prom_seconds_bucket{le=\"1\"} 0"),
              std::string::npos);
    EXPECT_NE(text.find("test_prom_seconds_bucket{le=\"2\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("test_prom_seconds_bucket{le=\"+Inf\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("test_prom_seconds_count 1"), std::string::npos);
    EXPECT_NE(text.find("test_prom_seconds_sum 1.5"), std::string::npos);
}

TEST_F(MetricsTest, JsonRenderingContainsAllMetrics)
{
    registry().counter("test_json_total", "").inc();
    registry().gauge("test_json_gauge", "").set(3.0);
    const std::string json = renderJson(registry().snapshot());
    EXPECT_EQ(json.front(), '{');
    EXPECT_NE(json.find("\"test_json_total\""), std::string::npos);
    EXPECT_NE(json.find("\"test_json_gauge\""), std::string::npos);
}

TEST_F(MetricsTest, EnabledToggle)
{
    setEnabled(false);
    EXPECT_FALSE(enabled());
    setEnabled(true);
    EXPECT_TRUE(enabled());
    setEnabled(false);
    EXPECT_FALSE(enabled());
}

TEST_F(MetricsTest, ResetForTestZeroesValuesButKeepsRegistrations)
{
    Counter &counter = registry().counter("test_reset_total", "");
    counter.inc(5);
    registry().resetForTest();
    EXPECT_EQ(counter.value(), 0u);
    EXPECT_EQ(&registry().counter("test_reset_total", ""), &counter);
}

TEST_F(MetricsTest, WriteMetricsFileChoosesFormatByExtension)
{
    registry().counter("test_file_total", "").inc(2);
    const std::string dir = ::testing::TempDir();

    std::string error;
    const std::string prom_path = dir + "qdel_obs_test.prom";
    ASSERT_TRUE(writeMetricsFile(prom_path, &error)) << error;
    std::ifstream prom(prom_path);
    std::string prom_text((std::istreambuf_iterator<char>(prom)),
                          std::istreambuf_iterator<char>());
    EXPECT_NE(prom_text.find("# TYPE test_file_total counter"),
              std::string::npos);

    const std::string json_path = dir + "qdel_obs_test.json";
    ASSERT_TRUE(writeMetricsFile(json_path, &error)) << error;
    std::ifstream json(json_path);
    std::string json_text((std::istreambuf_iterator<char>(json)),
                          std::istreambuf_iterator<char>());
    EXPECT_EQ(json_text.front(), '{');

    EXPECT_FALSE(
        writeMetricsFile(dir + "no/such/dir/x.prom", &error));
    EXPECT_FALSE(error.empty());
}

} // namespace
} // namespace obs
} // namespace qdel
