/**
 * @file
 * Unit tests for the deterministic RNG and its samplers.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "stats/descriptive.hh"
#include "stats/rng.hh"

namespace qdel {
namespace stats {
namespace {

TEST(Rng, DeterministicForFixedSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformRange)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformIntInclusiveUnbiased)
{
    Rng rng(10);
    std::vector<int> counts(6, 0);
    const int draws = 120000;
    for (int i = 0; i < draws; ++i)
        ++counts[static_cast<size_t>(rng.uniformInt(0, 5))];
    for (int c : counts)
        EXPECT_NEAR(c, draws / 6, 4 * std::sqrt(draws / 6.0));
}

TEST(Rng, NormalMoments)
{
    Rng rng(11);
    std::vector<double> sample;
    for (int i = 0; i < 200000; ++i)
        sample.push_back(rng.normal());
    EXPECT_NEAR(mean(sample), 0.0, 0.01);
    EXPECT_NEAR(stddev(sample), 1.0, 0.01);
    // Tail sanity: P(Z > 1.645) ~ .05.
    int above = 0;
    for (double z : sample)
        above += z > 1.6448536269514722;
    EXPECT_NEAR(above / 200000.0, 0.05, 0.003);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(12);
    std::vector<double> sample;
    for (int i = 0; i < 100000; ++i)
        sample.push_back(rng.exponential(0.25));
    EXPECT_NEAR(mean(sample), 4.0, 0.08);
}

TEST(Rng, LogNormalMedian)
{
    Rng rng(13);
    std::vector<double> sample;
    for (int i = 0; i < 100000; ++i)
        sample.push_back(rng.logNormal(3.0, 1.5));
    EXPECT_NEAR(median(sample), std::exp(3.0), 0.5);
}

TEST(Rng, WeibullQuantiles)
{
    Rng rng(14);
    std::vector<double> sample;
    for (int i = 0; i < 100000; ++i)
        sample.push_back(rng.weibull(2.0, 10.0));
    // Median of Weibull(k,lambda) = lambda ln(2)^{1/k}.
    EXPECT_NEAR(median(sample), 10.0 * std::sqrt(std::log(2.0)), 0.1);
}

TEST(Rng, ParetoTail)
{
    Rng rng(15);
    int above = 0;
    const int draws = 100000;
    for (int i = 0; i < draws; ++i)
        above += rng.pareto(1.0, 2.0) > 2.0;  // P = (1/2)^2 = .25
    EXPECT_NEAR(above / static_cast<double>(draws), 0.25, 0.01);
}

TEST(Rng, BernoulliRate)
{
    Rng rng(16);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, CategoricalProportions)
{
    Rng rng(17);
    const double weights[3] = {1.0, 2.0, 7.0};
    std::vector<int> counts(3, 0);
    for (int i = 0; i < 100000; ++i)
        ++counts[static_cast<size_t>(rng.categorical(weights, 3))];
    EXPECT_NEAR(counts[0] / 100000.0, 0.1, 0.01);
    EXPECT_NEAR(counts[1] / 100000.0, 0.2, 0.01);
    EXPECT_NEAR(counts[2] / 100000.0, 0.7, 0.01);
}

TEST(Rng, CategoricalZeroWeightNeverPicked)
{
    Rng rng(18);
    const double weights[3] = {1.0, 0.0, 1.0};
    for (int i = 0; i < 10000; ++i)
        ASSERT_NE(rng.categorical(weights, 3), 1);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(77);
    Rng b = a.split();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(RngDeath, InvalidParameters)
{
    Rng rng(1);
    EXPECT_DEATH(rng.exponential(0.0), "rate");
    EXPECT_DEATH(rng.uniformInt(5, 4), "range");
    const double weights[2] = {0.0, 0.0};
    EXPECT_DEATH(rng.categorical(weights, 2), "zero");
}

} // namespace
} // namespace stats
} // namespace qdel
