/**
 * @file
 * Tests for the one-sided normal tolerance factor (Guttman's K', the
 * paper's log-normal baseline machinery) against published table
 * values and a direct Monte Carlo coverage check.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "stats/descriptive.hh"
#include "stats/rng.hh"
#include "stats/tolerance.hh"

namespace qdel {
namespace stats {
namespace {

TEST(ToleranceFactor, PublishedTableValues)
{
    // One-sided k for coverage p = .95 at confidence .95 (standard
    // tolerance-limit tables, e.g. Hahn & Meeker / NIST).
    EXPECT_NEAR(normalToleranceFactorExact(10, 0.95, 0.95), 2.911, 2e-3);
    EXPECT_NEAR(normalToleranceFactorExact(20, 0.95, 0.95), 2.396, 2e-3);
    EXPECT_NEAR(normalToleranceFactorExact(30, 0.95, 0.95), 2.220, 2e-3);
    EXPECT_NEAR(normalToleranceFactorExact(50, 0.95, 0.95), 2.065, 2e-3);
    EXPECT_NEAR(normalToleranceFactorExact(100, 0.95, 0.95), 1.927, 2e-3);
    // p = .90 / C = .95 spot checks.
    EXPECT_NEAR(normalToleranceFactorExact(10, 0.90, 0.95), 2.355, 2e-3);
    EXPECT_NEAR(normalToleranceFactorExact(50, 0.90, 0.95), 1.646, 2e-3);
}

TEST(ToleranceFactor, ApproximationAgreesWithExact)
{
    for (size_t n : {30u, 60u, 120u, 300u}) {
        const double exact = normalToleranceFactorExact(n, 0.95, 0.95);
        const double approx = normalToleranceFactorApprox(n, 0.95, 0.95);
        EXPECT_NEAR(approx, exact, 0.01 * exact) << "n=" << n;
    }
}

TEST(ToleranceFactor, ConvergesToZq)
{
    // k -> z_.95 = 1.645 as n grows.
    const double large = normalToleranceFactor(1000000, 0.95, 0.95);
    EXPECT_NEAR(large, 1.6449, 5e-3);
    // And decreases monotonically in n.
    double previous = 1e9;
    for (size_t n : {5u, 10u, 50u, 500u, 5000u}) {
        const double k = normalToleranceFactor(n, 0.95, 0.95);
        EXPECT_LT(k, previous);
        previous = k;
    }
}

TEST(ToleranceFactor, MonotoneInConfidenceAndQuantile)
{
    EXPECT_LT(normalToleranceFactorExact(40, 0.95, 0.90),
              normalToleranceFactorExact(40, 0.95, 0.99));
    EXPECT_LT(normalToleranceFactorExact(40, 0.90, 0.95),
              normalToleranceFactorExact(40, 0.99, 0.95));
}

/**
 * Direct semantics check: m + k s covers the true .95 quantile of a
 * normal population in ~95% of repeated samples.
 */
TEST(ToleranceFactor, MonteCarloCoverage)
{
    const size_t n = 59;  // the paper's trimmed history length
    const double k = normalToleranceFactorExact(n, 0.95, 0.95);
    const double true_q95 = 1.6448536269514722;

    Rng rng(31337);
    const int experiments = 4000;
    int covered = 0;
    for (int e = 0; e < experiments; ++e) {
        RunningMoments moments;
        for (size_t i = 0; i < n; ++i)
            moments.push(rng.normal());
        if (moments.mean() + k * moments.sd() >= true_q95)
            ++covered;
    }
    const double rate =
        static_cast<double>(covered) / static_cast<double>(experiments);
    EXPECT_NEAR(rate, 0.95, 0.015);
}

} // namespace
} // namespace stats
} // namespace qdel
