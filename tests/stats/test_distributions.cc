/**
 * @file
 * Unit tests for the distribution objects, including Monte Carlo
 * validation of the noncentral t CDF (the backbone of the paper's K'
 * tolerance bounds).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "stats/distributions.hh"
#include "stats/rng.hh"

namespace qdel {
namespace stats {
namespace {

TEST(NormalDist, CdfQuantileRoundTrip)
{
    NormalDist dist(10.0, 3.0);
    EXPECT_NEAR(dist.cdf(10.0), 0.5, 1e-12);
    EXPECT_NEAR(dist.cdf(13.0), 0.8413447460685429, 1e-10);
    for (double p : {0.01, 0.25, 0.5, 0.9, 0.999})
        EXPECT_NEAR(dist.cdf(dist.quantile(p)), p, 1e-10);
}

TEST(LogNormalDist, Moments)
{
    LogNormalDist dist(1.0, 0.5);
    EXPECT_NEAR(dist.median(), std::exp(1.0), 1e-12);
    EXPECT_NEAR(dist.mean(), std::exp(1.125), 1e-12);
    EXPECT_NEAR(dist.variance(),
                (std::exp(0.25) - 1.0) * std::exp(2.25), 1e-10);
}

TEST(LogNormalDist, FromMeanMedian)
{
    // The calibration identity used to match the paper's Table 1.
    auto dist = LogNormalDist::fromMeanMedian(35886.0, 1795.0);
    EXPECT_NEAR(dist.median(), 1795.0, 1e-6);
    EXPECT_NEAR(dist.mean(), 35886.0, 1.0);
}

TEST(LogNormalDist, FromMeanMedianDegenerate)
{
    // mean <= median clamps instead of producing NaN (lanl/schammpq).
    auto dist = LogNormalDist::fromMeanMedian(7955.0, 8450.0);
    EXPECT_NEAR(dist.median(), 8450.0, 1e-6);
    EXPECT_GT(dist.sigma(), 0.0);
    EXPECT_TRUE(std::isfinite(dist.mean()));
}

TEST(LogNormalDist, CdfQuantile)
{
    LogNormalDist dist(2.0, 1.5);
    EXPECT_DOUBLE_EQ(dist.cdf(0.0), 0.0);
    EXPECT_NEAR(dist.cdf(dist.median()), 0.5, 1e-12);
    for (double p : {0.05, 0.5, 0.95})
        EXPECT_NEAR(dist.cdf(dist.quantile(p)), p, 1e-10);
}

TEST(StudentT, KnownValues)
{
    // t_{0.975, nu} critical values (standard tables).
    EXPECT_NEAR(StudentTDist(1).quantile(0.975), 12.706, 2e-3);
    EXPECT_NEAR(StudentTDist(5).quantile(0.975), 2.5706, 2e-4);
    EXPECT_NEAR(StudentTDist(30).quantile(0.975), 2.0423, 2e-4);
    EXPECT_NEAR(StudentTDist(10).quantile(0.95), 1.8125, 2e-4);
}

TEST(StudentT, SymmetryAndCenter)
{
    StudentTDist dist(7);
    EXPECT_DOUBLE_EQ(dist.cdf(0.0), 0.5);
    EXPECT_NEAR(dist.cdf(1.3) + dist.cdf(-1.3), 1.0, 1e-12);
    EXPECT_NEAR(dist.quantile(0.5), 0.0, 1e-9);
}

TEST(StudentT, ApproachesNormalForLargeNu)
{
    StudentTDist dist(10000);
    EXPECT_NEAR(dist.quantile(0.975), 1.95996, 1e-3);
}

TEST(NoncentralT, ReducesToCentralTAtZeroDelta)
{
    NoncentralTDist nct(8, 0.0);
    StudentTDist t(8);
    for (double x : {-2.0, -0.5, 0.0, 1.0, 3.0})
        EXPECT_NEAR(nct.cdf(x), t.cdf(x), 1e-9) << "x=" << x;
}

TEST(NoncentralT, BasicProperties)
{
    NoncentralTDist nct(10, 2.0);
    // CDF at t = delta is a bit below 1/2 for nu finite... it must at
    // least be monotone and within [0,1].
    double previous = 0.0;
    for (double x = -5.0; x <= 15.0; x += 0.25) {
        const double value = nct.cdf(x);
        EXPECT_GE(value, previous - 1e-12);
        EXPECT_GE(value, 0.0);
        EXPECT_LE(value, 1.0);
        previous = value;
    }
    // P(T <= 0) = Phi(-delta) exactly.
    EXPECT_NEAR(nct.cdf(0.0), 0.022750131948179195, 1e-10);
}

/**
 * Monte Carlo cross-check of the AS 243 series: T = (Z + delta) /
 * sqrt(ChiSq_nu / nu) sampled directly.
 */
class NoncentralTMonteCarlo
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
};

TEST_P(NoncentralTMonteCarlo, CdfMatchesSampling)
{
    const double nu = std::get<0>(GetParam());
    const double delta = std::get<1>(GetParam());
    NoncentralTDist nct(nu, delta);

    Rng rng(4242);
    const int samples = 200000;
    const double probe = nct.quantile(0.9);
    int below = 0;
    for (int i = 0; i < samples; ++i) {
        double chisq = 0.0;
        // nu integral in this test; sum of squared normals.
        for (int d = 0; d < static_cast<int>(nu); ++d) {
            const double z = rng.normal();
            chisq += z * z;
        }
        const double t = (rng.normal() + delta) / std::sqrt(chisq / nu);
        if (t <= probe)
            ++below;
    }
    const double empirical =
        static_cast<double>(below) / static_cast<double>(samples);
    // Monte Carlo tolerance ~ 4 sigma of a binomial proportion.
    EXPECT_NEAR(empirical, 0.9, 4.0 * std::sqrt(0.9 * 0.1 / samples));
}

INSTANTIATE_TEST_SUITE_P(
    GridOfParameters, NoncentralTMonteCarlo,
    ::testing::Values(std::make_tuple(5.0, 1.0),
                      std::make_tuple(10.0, 5.2),
                      std::make_tuple(30.0, -2.0),
                      std::make_tuple(58.0, 12.63),  // n=59 tolerance case
                      std::make_tuple(120.0, 18.0)));

TEST(NoncentralT, LargeNoncentralityStaysFinite)
{
    // n = 350k in the predictor implies delta ~ 973; the outward
    // summation must not underflow.
    const double n = 350000.0;
    const double delta = 1.6448536269514722 * std::sqrt(n);
    NoncentralTDist nct(n - 1.0, delta);
    const double value = nct.cdf(delta * 1.001);
    EXPECT_GT(value, 0.5);
    EXPECT_LT(value, 1.0);
    EXPECT_TRUE(std::isfinite(nct.quantile(0.95)));
}

TEST(Exponential, CdfQuantile)
{
    ExponentialDist dist(0.5);
    EXPECT_NEAR(dist.mean(), 2.0, 1e-12);
    EXPECT_NEAR(dist.cdf(2.0), 1.0 - std::exp(-1.0), 1e-12);
    for (double p : {0.1, 0.5, 0.99})
        EXPECT_NEAR(dist.cdf(dist.quantile(p)), p, 1e-12);
}

TEST(Weibull, CdfQuantile)
{
    WeibullDist dist(1.5, 100.0);
    EXPECT_DOUBLE_EQ(dist.cdf(0.0), 0.0);
    for (double p : {0.05, 0.5, 0.95})
        EXPECT_NEAR(dist.cdf(dist.quantile(p)), p, 1e-12);
    // Shape 1 reduces to an exponential.
    WeibullDist expo(1.0, 2.0);
    EXPECT_NEAR(expo.cdf(2.0), 1.0 - std::exp(-1.0), 1e-12);
}

TEST(Pareto, CdfQuantile)
{
    ParetoDist dist(1.0, 1.16);  // the "80-20" tail index
    EXPECT_DOUBLE_EQ(dist.cdf(1.0), 0.0);
    EXPECT_NEAR(dist.cdf(2.0), 1.0 - std::pow(0.5, 1.16), 1e-12);
    for (double p : {0.1, 0.5, 0.99})
        EXPECT_NEAR(dist.cdf(dist.quantile(p)), p, 1e-12);
}

} // namespace
} // namespace stats
} // namespace qdel
