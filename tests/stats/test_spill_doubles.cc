/**
 * @file
 * Tests for the spilling exact-median accumulator: bitwise agreement
 * with stats::median() in both the in-RAM and spilled regimes, across
 * even/odd counts, negatives, duplicates, and repeated queries.
 */

#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "stats/descriptive.hh"
#include "stats/spill_doubles.hh"

namespace qdel {
namespace stats {
namespace {

std::string
scratchPath(const std::string &tag)
{
    const std::string dir = ::testing::TempDir() + "qdel_spill_" + tag;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir + "/spill.bin";
}

/** A messy deterministic series: regime shifts, repeats, negatives. */
std::vector<double>
series(size_t n)
{
    std::vector<double> values;
    values.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        double v = static_cast<double>((i * 2654435761u) % 10007) / 7.0;
        if (i % 5 == 0)
            v = -v;
        if (i % 11 == 0)
            v = 42.0;  // heavy duplicate mass
        values.push_back(v);
    }
    return values;
}

TEST(SpillDoubles, InRamMatchesStatsMedian)
{
    SpillDoubles spill(scratchPath("inram"), 1 << 20);
    const auto values = series(999);
    spill.append(values.data(), values.size());
    ASSERT_FALSE(spill.spilled());
    auto result = spill.median();
    ASSERT_TRUE(result.ok()) << result.error().str();
    EXPECT_EQ(result.value(), median(values));
}

TEST(SpillDoubles, SpilledMatchesStatsMedianBitwise)
{
    for (size_t n : {2u, 3u, 101u, 5000u, 5001u}) {
        SpillDoubles spill(scratchPath("spilled" + std::to_string(n)),
                           /*threshold_doubles=*/1);
        const auto values = series(n);
        for (double v : values)
            spill.add(v);
        ASSERT_TRUE(spill.spilled());
        auto result = spill.median();
        ASSERT_TRUE(result.ok()) << result.error().str();
        EXPECT_EQ(result.value(), median(values)) << "n=" << n;
    }
}

TEST(SpillDoubles, SingleSpilledValue)
{
    SpillDoubles spill(scratchPath("one"), 0);
    spill.add(17.25);
    ASSERT_TRUE(spill.spilled());
    auto result = spill.median();
    ASSERT_TRUE(result.ok()) << result.error().str();
    EXPECT_EQ(result.value(), 17.25);
}

TEST(SpillDoubles, AllDuplicates)
{
    SpillDoubles spill(scratchPath("dup"), 4);
    for (int i = 0; i < 1000; ++i)
        spill.add(-3.5);
    auto result = spill.median();
    ASSERT_TRUE(result.ok()) << result.error().str();
    EXPECT_EQ(result.value(), -3.5);
}

TEST(SpillDoubles, ReusableAfterMedian)
{
    SpillDoubles spill(scratchPath("reuse"), 8);
    auto values = series(100);
    spill.append(values.data(), values.size());
    auto first = spill.median();
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(first.value(), median(values));

    const auto more = series(250);
    spill.append(more.data(), more.size());
    values.insert(values.end(), more.begin(), more.end());
    auto second = spill.median();
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(second.value(), median(values));
}

TEST(SpillDoubles, EmptyIsAnError)
{
    SpillDoubles spill(scratchPath("empty"));
    auto result = spill.median();
    ASSERT_FALSE(result.ok());
}

TEST(SpillDoubles, SpillTriggersExactlyWhenThresholdExceeded)
{
    // The RAM buffer holds up to threshold values; the (threshold+1)th
    // add is what spills. Medians must agree bitwise in all three
    // states: one under, at, and one over the threshold.
    const size_t threshold = 64;
    for (size_t n : {threshold - 1, threshold, threshold + 1}) {
        SpillDoubles spill(
            scratchPath("boundary" + std::to_string(n)), threshold);
        const auto values = series(n);
        for (double v : values)
            spill.add(v);
        EXPECT_EQ(spill.spilled(), n > threshold) << "n=" << n;
        auto result = spill.median();
        ASSERT_TRUE(result.ok()) << result.error().str();
        EXPECT_EQ(result.value(), median(values)) << "n=" << n;
    }
}

TEST(SpillDoubles, OddAndEvenCountsStraddlingTheThreshold)
{
    // Odd counts pick a single middle element, even counts average
    // two; both parities on both sides of the spill boundary.
    const size_t threshold = 10;
    for (size_t n : {9u, 10u, 11u, 12u}) {
        SpillDoubles spill(scratchPath("parity" + std::to_string(n)),
                           threshold);
        const auto values = series(n);
        spill.append(values.data(), values.size());
        auto result = spill.median();
        ASSERT_TRUE(result.ok()) << result.error().str();
        EXPECT_EQ(result.value(), median(values)) << "n=" << n;
    }
}

TEST(SpillDoubles, AllEqualKeysSpilled)
{
    // Every value identical while spilled: the histogram degenerates
    // to one bucket holding the full mass.
    for (size_t n : {5u, 6u}) {
        SpillDoubles spill(scratchPath("equal" + std::to_string(n)), 2);
        for (size_t i = 0; i < n; ++i)
            spill.add(1234.5);
        ASSERT_TRUE(spill.spilled());
        auto result = spill.median();
        ASSERT_TRUE(result.ok()) << result.error().str();
        EXPECT_EQ(result.value(), 1234.5);
    }
}

TEST(SpillDoubles, SignedZerosOrderLikeStatsMedian)
{
    // -0.0 and +0.0 compare equal under operator< but differ bitwise;
    // the spilled path must produce the same bit pattern the in-RAM
    // stats::median does, sign included.
    const std::vector<double> values = {-0.0, 0.0, -0.0, 0.0, -0.0};
    const double want = median(values);
    SpillDoubles spill(scratchPath("signed_zero"), 2);
    for (double v : values)
        spill.add(v);
    ASSERT_TRUE(spill.spilled());
    auto result = spill.median();
    ASSERT_TRUE(result.ok()) << result.error().str();
    EXPECT_EQ(result.value(), want);
    EXPECT_EQ(std::signbit(result.value()), std::signbit(want))
        << "zero sign must round-trip through the spill file";

    // An even count averages the two middle zeros; sign agreement must
    // hold there too ((-0.0 + 0.0)/2 == +0.0 under IEEE round-to-
    // nearest).
    const std::vector<double> even = {-0.0, -0.0, 0.0, 0.0};
    const double even_want = median(even);
    SpillDoubles even_spill(scratchPath("signed_zero_even"), 1);
    even_spill.append(even.data(), even.size());
    ASSERT_TRUE(even_spill.spilled());
    auto even_result = even_spill.median();
    ASSERT_TRUE(even_result.ok()) << even_result.error().str();
    EXPECT_EQ(even_result.value(), even_want);
    EXPECT_EQ(std::signbit(even_result.value()), std::signbit(even_want));
}

} // namespace
} // namespace stats
} // namespace qdel
