/**
 * @file
 * Unit tests for the AR(1) log-normal process used by the rare-event
 * calibration and the workload synthesizer.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "stats/ar1.hh"
#include "stats/descriptive.hh"

namespace qdel {
namespace stats {
namespace {

std::vector<double>
logsOf(Ar1LogNormalProcess &process, size_t n)
{
    std::vector<double> logs;
    logs.reserve(n);
    for (size_t i = 0; i < n; ++i)
        logs.push_back(std::log(process.next()));
    return logs;
}

TEST(Ar1LogNormal, MarginalIndependentOfRho)
{
    // The latent chain has unit marginal variance for every rho, so
    // log X ~ N(mu, sigma^2) regardless of autocorrelation.
    for (double rho : {0.0, 0.5, 0.9}) {
        Ar1LogNormalProcess process(2.0, 0.7, rho, Rng(1000));
        auto logs = logsOf(process, 200000);
        EXPECT_NEAR(mean(logs), 2.0, 0.03) << "rho=" << rho;
        EXPECT_NEAR(stddev(logs), 0.7, 0.03) << "rho=" << rho;
    }
}

TEST(Ar1LogNormal, RecoversLagOneAutocorrelation)
{
    for (double rho : {0.0, 0.3, 0.6, 0.9}) {
        Ar1LogNormalProcess process(0.0, 1.0, rho, Rng(2000));
        auto logs = logsOf(process, 200000);
        EXPECT_NEAR(autocorrelation(logs, 1), rho, 0.02) << "rho=" << rho;
    }
}

TEST(Ar1LogNormal, SetMarginalShiftsLevel)
{
    Ar1LogNormalProcess process(0.0, 0.5, 0.4, Rng(3));
    (void)logsOf(process, 100);
    process.setMarginal(4.0, 0.5);
    auto logs = logsOf(process, 50000);
    EXPECT_NEAR(mean(logs), 4.0, 0.05);
}

TEST(Ar1LogNormal, DeterministicForSeed)
{
    Ar1LogNormalProcess a(1.0, 1.0, 0.5, Rng(42));
    Ar1LogNormalProcess b(1.0, 1.0, 0.5, Rng(42));
    for (int i = 0; i < 100; ++i)
        ASSERT_DOUBLE_EQ(a.next(), b.next());
}

TEST(Ar1LogNormalDeath, InvalidParameters)
{
    EXPECT_DEATH(Ar1LogNormalProcess(0.0, 0.0, 0.5, Rng(1)), "sigma");
    EXPECT_DEATH(Ar1LogNormalProcess(0.0, 1.0, 1.0, Rng(1)), "rho");
    EXPECT_DEATH(Ar1LogNormalProcess(0.0, 1.0, -0.1, Rng(1)), "rho");
}

} // namespace
} // namespace stats
} // namespace qdel
