/**
 * @file
 * Unit tests for the MLE fitters.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "stats/mle.hh"
#include "stats/rng.hh"

namespace qdel {
namespace stats {
namespace {

TEST(FitNormal, RecoversParameters)
{
    Rng rng(21);
    std::vector<double> sample;
    for (int i = 0; i < 50000; ++i)
        sample.push_back(rng.normal(7.0, 2.0));
    const auto fit = fitNormal(sample);
    EXPECT_EQ(fit.count, sample.size());
    EXPECT_NEAR(fit.mu, 7.0, 0.05);
    EXPECT_NEAR(fit.sigma, 2.0, 0.05);
}

TEST(FitNormal, ExactSmallSample)
{
    const auto fit = fitNormal({2.0, 4.0, 6.0});
    EXPECT_DOUBLE_EQ(fit.mu, 4.0);
    EXPECT_DOUBLE_EQ(fit.sigma, 2.0);
}

TEST(FitNormalDeath, NeedsTwoPoints)
{
    EXPECT_DEATH(fitNormal({1.0}), "at least 2");
}

TEST(FitLogNormal, RecoversParameters)
{
    Rng rng(22);
    std::vector<double> sample;
    for (int i = 0; i < 50000; ++i)
        sample.push_back(rng.logNormal(5.0, 1.5));
    const auto fit = fitLogNormal(sample);
    EXPECT_NEAR(fit.mu, 5.0, 0.05);
    EXPECT_NEAR(fit.sigma, 1.5, 0.05);
}

TEST(FitLogNormal, FloorsNonPositiveValues)
{
    // Zero wait times are legal in the traces; the epsilon floor keeps
    // the log transform defined.
    const auto fit = fitLogNormal({0.0, 0.0, std::exp(2.0)}, 1.0);
    EXPECT_NEAR(fit.mu, 2.0 / 3.0, 1e-12);
}

TEST(ToLogNormal, BuildsDistribution)
{
    NormalFit fit;
    fit.mu = 3.0;
    fit.sigma = 1.0;
    fit.count = 100;
    const auto dist = toLogNormal(fit);
    EXPECT_NEAR(dist.median(), std::exp(3.0), 1e-9);
}

TEST(ToLogNormal, DegenerateSigmaClamped)
{
    NormalFit fit;
    fit.mu = 1.0;
    fit.sigma = 0.0;
    const auto dist = toLogNormal(fit);
    EXPECT_GT(dist.sigma(), 0.0);
}

} // namespace
} // namespace stats
} // namespace qdel
