/**
 * @file
 * Unit tests for the descriptive statistics.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "stats/descriptive.hh"
#include "stats/rng.hh"

namespace qdel {
namespace stats {
namespace {

TEST(Mean, Basics)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({5.0}), 5.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(Variance, BesselCorrected)
{
    EXPECT_DOUBLE_EQ(variance({1.0}), 0.0);
    EXPECT_DOUBLE_EQ(variance({2.0, 4.0}), 2.0);
    EXPECT_DOUBLE_EQ(stddev({2.0, 4.0}), std::sqrt(2.0));
}

TEST(Median, OddAndEven)
{
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
    EXPECT_DOUBLE_EQ(median({7.0}), 7.0);
}

TEST(Quantile, Type7Interpolation)
{
    std::vector<double> sample = {10.0, 20.0, 30.0, 40.0, 50.0};
    EXPECT_DOUBLE_EQ(quantile(sample, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(quantile(sample, 1.0), 50.0);
    EXPECT_DOUBLE_EQ(quantile(sample, 0.5), 30.0);
    EXPECT_DOUBLE_EQ(quantile(sample, 0.25), 20.0);
    EXPECT_DOUBLE_EQ(quantile(sample, 0.1), 14.0);  // interpolated
}

TEST(QuantileDeath, RejectsBadInput)
{
    EXPECT_DEATH(quantile({}, 0.5), "empty");
    EXPECT_DEATH(quantile({1.0}, 1.5), "out of");
}

TEST(Autocorrelation, WhiteNoiseNearZero)
{
    Rng rng(5);
    std::vector<double> series;
    for (int i = 0; i < 50000; ++i)
        series.push_back(rng.normal());
    EXPECT_NEAR(autocorrelation(series, 1), 0.0, 0.02);
}

TEST(Autocorrelation, Ar1RecoversRho)
{
    Rng rng(6);
    const double rho = 0.6;
    std::vector<double> series;
    double z = 0.0;
    for (int i = 0; i < 100000; ++i) {
        z = rho * z + std::sqrt(1 - rho * rho) * rng.normal();
        series.push_back(z);
    }
    EXPECT_NEAR(autocorrelation(series, 1), rho, 0.02);
    EXPECT_NEAR(autocorrelation(series, 2), rho * rho, 0.02);
}

TEST(Autocorrelation, DegenerateInputs)
{
    EXPECT_DOUBLE_EQ(autocorrelation({1.0, 2.0}, 5), 0.0);
    EXPECT_DOUBLE_EQ(autocorrelation({3.0, 3.0, 3.0, 3.0}, 1), 0.0);
}

TEST(Summarize, AllFields)
{
    auto s = summarize({4.0, 1.0, 3.0, 2.0});
    EXPECT_EQ(s.count, 4u);
    EXPECT_DOUBLE_EQ(s.mean, 2.5);
    EXPECT_DOUBLE_EQ(s.median, 2.5);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 4.0);
    EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Summarize, Empty)
{
    auto s = summarize({});
    EXPECT_EQ(s.count, 0u);
    EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(RunningMoments, MatchesBatch)
{
    Rng rng(11);
    RunningMoments moments;
    std::vector<double> sample;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.logNormal(2.0, 1.0);
        sample.push_back(x);
        moments.push(x);
    }
    EXPECT_EQ(moments.count(), sample.size());
    EXPECT_NEAR(moments.mean(), mean(sample), 1e-9);
    EXPECT_NEAR(moments.variance(), variance(sample), 1e-6);
}

TEST(RunningMoments, Clear)
{
    RunningMoments moments;
    moments.push(1.0);
    moments.push(5.0);
    moments.clear();
    EXPECT_EQ(moments.count(), 0u);
    EXPECT_DOUBLE_EQ(moments.variance(), 0.0);
}

} // namespace
} // namespace stats
} // namespace qdel
