/**
 * @file
 * Tests for the binomial order-statistic bound machinery — the exact
 * core of BMBP — including the distribution-free coverage property the
 * whole paper rests on.
 */

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "stats/distributions.hh"
#include "stats/quantile_bounds.hh"
#include "stats/rng.hh"
#include "stats/special_functions.hh"

namespace qdel {
namespace stats {
namespace {

TEST(MinimumSampleSize, PaperValue)
{
    // Section 4.1: 59 observations are the minimum for a 95% bound on
    // the .95 quantile.
    EXPECT_EQ(minimumSampleSize(0.95, 0.95), 59u);
}

TEST(MinimumSampleSize, OtherCombinations)
{
    // 1 - q^n >= C at the returned n but not at n-1.
    for (double q : {0.5, 0.75, 0.9, 0.95, 0.99}) {
        for (double c : {0.8, 0.9, 0.95, 0.99}) {
            const size_t n = minimumSampleSize(q, c);
            EXPECT_GE(1.0 - std::pow(q, static_cast<double>(n)), c);
            if (n > 1) {
                EXPECT_LT(1.0 - std::pow(q, static_cast<double>(n - 1)),
                          c);
            }
        }
    }
}

TEST(UpperBoundIndexExact, TooSmallSampleHasNoBound)
{
    EXPECT_FALSE(upperBoundIndexExact(58, 0.95, 0.95).has_value());
    auto idx = upperBoundIndexExact(59, 0.95, 0.95);
    ASSERT_TRUE(idx.has_value());
    EXPECT_EQ(*idx, 59u);  // the maximum of the minimal sample
}

TEST(UpperBoundIndexExact, DefiningInequalities)
{
    // k is the smallest index with P[Bin(n, q) <= k-1] >= C.
    for (size_t n : {59u, 100u, 500u}) {
        const auto idx = upperBoundIndexExact(n, 0.95, 0.95);
        ASSERT_TRUE(idx.has_value());
        const long long k = static_cast<long long>(*idx);
        EXPECT_GE(binomialCdf(k - 1, static_cast<long long>(n), 0.95),
                  0.95);
        if (k > 1) {
            EXPECT_LT(binomialCdf(k - 2, static_cast<long long>(n), 0.95),
                      0.95);
        }
    }
}

namespace {

/**
 * The pre-optimization binary searches, kept verbatim as the reference
 * the anchored recurrence walk must reproduce index-for-index.
 */
BoundIndex
upperBoundIndexBinarySearch(size_t n, double q, double confidence)
{
    const long long nn = static_cast<long long>(n);
    if (binomialCdf(nn - 1, nn, q) < confidence)
        return std::nullopt;
    size_t lo = 1, hi = n;
    while (lo < hi) {
        const size_t mid = lo + (hi - lo) / 2;
        if (binomialCdf(static_cast<long long>(mid) - 1, nn, q) >=
            confidence) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    return hi;
}

BoundIndex
lowerBoundIndexBinarySearch(size_t n, double q, double confidence)
{
    const long long nn = static_cast<long long>(n);
    if (1.0 - binomialCdf(0, nn, q) < confidence)
        return std::nullopt;
    size_t lo = 1, hi = n;
    while (lo < hi) {
        const size_t mid = lo + (hi - lo + 1) / 2;
        if (1.0 - binomialCdf(static_cast<long long>(mid) - 1, nn, q) >=
            confidence) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    return lo;
}

} // namespace

TEST(BoundIndexExact, MatchesBinarySearchReference)
{
    // The anchored pmf-recurrence implementation must agree with the
    // old binary search everywhere: a geometric ladder of sample sizes
    // from 10 to 100k crossed with the paper's q/C grid (plus tail
    // cases where the normal anchor is at its worst).
    std::vector<size_t> sizes;
    for (size_t n = 10; n <= 100000; n = n * 3 / 2 + 1)
        sizes.push_back(n);
    sizes.push_back(100000);
    const double qs[] = {0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999};
    const double cs[] = {0.8, 0.9, 0.95, 0.99};
    for (size_t n : sizes) {
        for (double q : qs) {
            for (double c : cs) {
                const auto upper = upperBoundIndexExact(n, q, c);
                const auto upper_ref = upperBoundIndexBinarySearch(n, q, c);
                ASSERT_EQ(upper.has_value(), upper_ref.has_value())
                    << "upper n=" << n << " q=" << q << " C=" << c;
                if (upper.has_value()) {
                    ASSERT_EQ(*upper, *upper_ref)
                        << "upper n=" << n << " q=" << q << " C=" << c;
                }
                const auto lower = lowerBoundIndexExact(n, q, c);
                const auto lower_ref = lowerBoundIndexBinarySearch(n, q, c);
                ASSERT_EQ(lower.has_value(), lower_ref.has_value())
                    << "lower n=" << n << " q=" << q << " C=" << c;
                if (lower.has_value()) {
                    ASSERT_EQ(*lower, *lower_ref)
                        << "lower n=" << n << " q=" << q << " C=" << c;
                }
            }
        }
    }
}

TEST(LowerBoundIndexExact, DefiningInequalities)
{
    for (size_t n : {59u, 200u}) {
        const auto idx = lowerBoundIndexExact(n, 0.25, 0.95);
        ASSERT_TRUE(idx.has_value());
        const long long k = static_cast<long long>(*idx);
        EXPECT_GE(1.0 - binomialCdf(k - 1, static_cast<long long>(n),
                                    0.25),
                  0.95);
        EXPECT_LT(1.0 - binomialCdf(k, static_cast<long long>(n), 0.25),
                  0.95);
    }
}

TEST(LowerBoundIndexExact, InfeasibleSample)
{
    // Lower bound on the .25 quantile needs 1-(1-q)^n >= C:
    // n = 1 fails at 95% confidence.
    EXPECT_FALSE(lowerBoundIndexExact(1, 0.25, 0.95).has_value());
}

TEST(UpperBoundIndex, MonotoneInConfidence)
{
    size_t previous = 0;
    for (double c : {0.5, 0.8, 0.9, 0.95, 0.99}) {
        const auto idx = upperBoundIndexExact(500, 0.9, c);
        ASSERT_TRUE(idx.has_value());
        EXPECT_GE(*idx, previous);
        previous = *idx;
    }
}

TEST(UpperBoundIndex, ApproximationTracksExact)
{
    // Where the approximation guard holds, the two indices differ by a
    // couple of order statistics at most (the paper's Appendix example
    // has the approx landing on .916n for q=.9, n=1000).
    for (size_t n : {250u, 1000u, 5000u, 50000u}) {
        for (double q : {0.5, 0.9, 0.95}) {
            if (!normalApproximationValid(n, q))
                continue;
            const auto exact = upperBoundIndexExact(n, q, 0.95);
            const auto approx = upperBoundIndexApprox(n, q, 0.95);
            ASSERT_TRUE(exact.has_value());
            ASSERT_TRUE(approx.has_value());
            const double diff =
                std::fabs(static_cast<double>(*exact) -
                          static_cast<double>(*approx));
            EXPECT_LE(diff, 3.0 + 0.001 * static_cast<double>(n))
                << "n=" << n << " q=" << q;
            // Approximation must not be anti-conservative by much:
            EXPECT_GE(static_cast<double>(*approx),
                      static_cast<double>(*exact) - 1.0);
        }
    }
}

TEST(UpperBoundIndex, PaperAppendixExample)
{
    // Appendix: q = .9, n = 1000, C = .95 -> k = 900 + ceil(15.6) = 916.
    const auto idx = upperBoundIndexApprox(1000, 0.9, 0.95);
    ASSERT_TRUE(idx.has_value());
    EXPECT_EQ(*idx, 916u);
}

TEST(NormalApproximationValid, Guard)
{
    EXPECT_FALSE(normalApproximationValid(100, 0.95)); // 5 failures < 10
    EXPECT_TRUE(normalApproximationValid(200, 0.95));
    EXPECT_TRUE(normalApproximationValid(100, 0.5));
    EXPECT_FALSE(normalApproximationValid(10, 0.5));
}

/**
 * The central property: for i.i.d. samples from ANY distribution, the
 * order statistic selected by upperBoundIndex is >= the true q
 * quantile in at least a C fraction of repeated experiments.
 */
struct CoverageCase
{
    const char *name;
    double (*quantile)(double);  // true quantile function
    double (*sample)(Rng &);     // sampler
};

double
paretoQuantile(double p)
{
    return ParetoDist(1.0, 1.1).quantile(p);
}
double
paretoSample(Rng &rng)
{
    return rng.pareto(1.0, 1.1);
}
double
logNormalQuantile(double p)
{
    return LogNormalDist(3.0, 2.5).quantile(p);
}
double
logNormalSample(Rng &rng)
{
    return rng.logNormal(3.0, 2.5);
}
double
uniformQuantile(double p)
{
    return p;
}
double
uniformSample(Rng &rng)
{
    return rng.uniform();
}
double
weibullQuantile(double p)
{
    return WeibullDist(0.6, 50.0).quantile(p);
}
double
weibullSample(Rng &rng)
{
    return rng.weibull(0.6, 50.0);
}

class BoundCoverage : public ::testing::TestWithParam<CoverageCase>
{
};

TEST_P(BoundCoverage, UpperBoundCoversTrueQuantile)
{
    const auto &test_case = GetParam();
    const double q = 0.95;
    const double confidence = 0.95;
    const double true_quantile = test_case.quantile(q);

    Rng rng(2024);
    const int experiments = 2000;
    const size_t n = 80;
    int covered = 0;
    std::vector<double> sample(n);
    for (int e = 0; e < experiments; ++e) {
        for (auto &value : sample)
            value = test_case.sample(rng);
        std::sort(sample.begin(), sample.end());
        const auto idx = upperBoundIndexExact(n, q, confidence);
        ASSERT_TRUE(idx.has_value());
        if (sample[*idx - 1] >= true_quantile)
            ++covered;
    }
    const double rate =
        static_cast<double>(covered) / static_cast<double>(experiments);
    // Coverage must meet the confidence level, minus Monte Carlo noise
    // (4 sigma ~ 0.02 at 2000 experiments).
    EXPECT_GE(rate, confidence - 0.02) << test_case.name;
}

TEST_P(BoundCoverage, LowerBoundCoversTrueQuantile)
{
    const auto &test_case = GetParam();
    const double q = 0.25;
    const double confidence = 0.95;
    const double true_quantile = test_case.quantile(q);

    Rng rng(777);
    const int experiments = 2000;
    const size_t n = 80;
    int covered = 0;
    std::vector<double> sample(n);
    for (int e = 0; e < experiments; ++e) {
        for (auto &value : sample)
            value = test_case.sample(rng);
        std::sort(sample.begin(), sample.end());
        const auto idx = lowerBoundIndexExact(n, q, confidence);
        ASSERT_TRUE(idx.has_value());
        if (sample[*idx - 1] <= true_quantile)
            ++covered;
    }
    const double rate =
        static_cast<double>(covered) / static_cast<double>(experiments);
    EXPECT_GE(rate, confidence - 0.02) << test_case.name;
}

/**
 * The incremental cache must be indistinguishable from the free
 * functions for every access pattern refit() produces: long n -> n+1
 * ramps (history growth), n -> n-1 steps (sliding windows), repeated
 * queries at fixed n (multiple refits per epoch), and arbitrary jumps
 * (change-point trims). Exercised across parameter corners including
 * infeasible small n and the exact/approximation crossover.
 */
class BoundIndexCacheEquivalence
    : public ::testing::TestWithParam<std::pair<double, double>>
{
};

TEST_P(BoundIndexCacheEquivalence, UpwardRampMatchesFreeFunctions)
{
    const auto [q, confidence] = GetParam();
    BoundIndexCache cache(q, confidence);
    for (size_t n = 1; n <= 3000; ++n) {
        ASSERT_EQ(cache.upperIndex(n), upperBoundIndex(n, q, confidence))
            << "q=" << q << " C=" << confidence << " n=" << n;
        ASSERT_EQ(cache.lowerIndex(n), lowerBoundIndex(n, q, confidence))
            << "q=" << q << " C=" << confidence << " n=" << n;
    }
}

TEST_P(BoundIndexCacheEquivalence, DownwardRampMatchesFreeFunctions)
{
    const auto [q, confidence] = GetParam();
    BoundIndexCache cache(q, confidence);
    for (size_t n = 3000; n >= 1; --n) {
        ASSERT_EQ(cache.upperIndex(n), upperBoundIndex(n, q, confidence))
            << "q=" << q << " C=" << confidence << " n=" << n;
    }
}

TEST_P(BoundIndexCacheEquivalence, MixedWalkAndJumpsMatch)
{
    const auto [q, confidence] = GetParam();
    BoundIndexCache cache(q, confidence);
    Rng rng(31337);
    size_t n = 1 + static_cast<size_t>(rng.uniformInt(0, 500));
    for (int step = 0; step < 4000; ++step) {
        const int op = static_cast<int>(rng.uniformInt(0, 9));
        if (op < 5) {
            ++n;  // growth, the hot path
        } else if (op < 7) {
            if (n > 1)
                --n;  // sliding window
        } else if (op == 7) {
            // change-point trim: collapse to a small history
            n = 1 + static_cast<size_t>(rng.uniformInt(0, 80));
        }  // else: repeat query at the same n
        ASSERT_EQ(cache.upperIndex(n), upperBoundIndex(n, q, confidence))
            << "q=" << q << " C=" << confidence << " n=" << n
            << " step=" << step;
        ASSERT_EQ(cache.lowerIndex(n), lowerBoundIndex(n, q, confidence))
            << "q=" << q << " C=" << confidence << " n=" << n
            << " step=" << step;
    }
}

INSTANTIATE_TEST_SUITE_P(
    ParameterCorners, BoundIndexCacheEquivalence,
    ::testing::Values(std::pair{0.95, 0.95},   // the paper's setting
                      std::pair{0.95, 0.80},
                      std::pair{0.99, 0.95},   // approx never valid
                      std::pair{0.75, 0.95},
                      std::pair{0.50, 0.95},   // crossover at n=20
                      std::pair{0.05, 0.99}),  // lower-tail quantile
    [](const ::testing::TestParamInfo<std::pair<double, double>> &info) {
        return "q" +
               std::to_string(
                   static_cast<int>(info.param.first * 100)) +
               "C" +
               std::to_string(
                   static_cast<int>(info.param.second * 100));
    });

TEST(BoundIndexCache, AnchorsStayRare)
{
    // The point of the cache: a long growth ramp in the feasible
    // exact-path region re-runs the binary search only at the guard
    // anchors, not per call. (n in [59, 199] for q=.95: feasible, and
    // below the n(1-q) >= 10 normal-approximation region.)
    BoundIndexCache cache(0.95, 0.95);
    for (size_t n = 59; n < 200; ++n)
        cache.upperIndex(n);
    EXPECT_LE(cache.anchorCount(), 4u);
}

INSTANTIATE_TEST_SUITE_P(
    AcrossDistributions, BoundCoverage,
    ::testing::Values(
        CoverageCase{"pareto", paretoQuantile, paretoSample},
        CoverageCase{"lognormal", logNormalQuantile, logNormalSample},
        CoverageCase{"uniform", uniformQuantile, uniformSample},
        CoverageCase{"weibull", weibullQuantile, weibullSample}),
    [](const ::testing::TestParamInfo<CoverageCase> &info) {
        return info.param.name;
    });

} // namespace
} // namespace stats
} // namespace qdel
