/**
 * @file
 * Tests for the Kolmogorov-Smirnov machinery, including its use to
 * validate the workload synthesizer's marginal distribution and to
 * demonstrate the paper's Section 4.2 point: heavy bimodal wait data
 * is detectably non-log-normal.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "stats/distributions.hh"
#include "stats/goodness_of_fit.hh"
#include "stats/mle.hh"
#include "stats/rng.hh"

namespace qdel {
namespace stats {
namespace {

TEST(KolmogorovSurvival, KnownValues)
{
    // Q(lambda) reference points (standard tables).
    EXPECT_NEAR(kolmogorovSurvival(0.5), 0.9639, 2e-4);
    EXPECT_NEAR(kolmogorovSurvival(1.0), 0.2700, 2e-4);
    EXPECT_NEAR(kolmogorovSurvival(1.36), 0.0505, 2e-3);
    EXPECT_NEAR(kolmogorovSurvival(2.0), 0.00067, 5e-5);
    EXPECT_DOUBLE_EQ(kolmogorovSurvival(0.0), 1.0);
}

TEST(KsTest, AcceptsMatchingDistribution)
{
    Rng rng(41);
    std::vector<double> sample;
    for (int i = 0; i < 20000; ++i)
        sample.push_back(rng.normal(3.0, 2.0));
    NormalDist dist(3.0, 2.0);
    auto result =
        ksTest(sample, [&dist](double x) { return dist.cdf(x); });
    EXPECT_GT(result.pValue, 0.01);
    EXPECT_LT(result.statistic, 0.02);
}

TEST(KsTest, RejectsWrongDistribution)
{
    Rng rng(42);
    std::vector<double> sample;
    for (int i = 0; i < 5000; ++i)
        sample.push_back(rng.normal(3.0, 2.0));
    NormalDist wrong(3.5, 2.0);  // shifted mean
    auto result =
        ksTest(sample, [&wrong](double x) { return wrong.cdf(x); });
    EXPECT_LT(result.pValue, 1e-6);
}

TEST(KsTest, UniformExactCase)
{
    // Deterministic sample 0.5/n, 1.5/n, ... against U(0,1): D = 0.5/n.
    const size_t n = 100;
    std::vector<double> sample;
    for (size_t i = 0; i < n; ++i)
        sample.push_back((static_cast<double>(i) + 0.5) / n);
    auto result = ksTest(sample, [](double x) { return x; });
    EXPECT_NEAR(result.statistic, 0.5 / n, 1e-12);
    EXPECT_GT(result.pValue, 0.999);
}

TEST(KsTestDeath, EmptySample)
{
    EXPECT_DEATH(ksTest({}, [](double x) { return x; }), "empty");
}

TEST(KsTest, BimodalWaitsAreDetectablyNotLogNormal)
{
    // The paper's Section 4.2 story, quantified: fit a log-normal by
    // MLE to strongly bimodal (backfill-mode) wait data and KS rejects
    // it decisively — the shape failure that makes the parametric
    // predictor undercover.
    Rng rng(43);
    std::vector<double> waits;
    for (int i = 0; i < 20000; ++i) {
        waits.push_back(rng.bernoulli(0.65)
                            ? rng.logNormal(1.0, 0.8)
                            : rng.logNormal(8.0, 2.0));
    }
    auto fit = fitLogNormal(waits);
    auto fitted = toLogNormal(fit);
    auto result =
        ksTest(waits, [&fitted](double x) { return fitted.cdf(x); });
    EXPECT_LT(result.pValue, 1e-9);
    EXPECT_GT(result.statistic, 0.05);

    // Whereas genuinely log-normal waits pass against their own fit.
    std::vector<double> clean;
    for (int i = 0; i < 20000; ++i)
        clean.push_back(rng.logNormal(4.0, 1.5));
    auto clean_fit = toLogNormal(fitLogNormal(clean));
    auto clean_result = ksTest(
        clean, [&clean_fit](double x) { return clean_fit.cdf(x); });
    EXPECT_GT(clean_result.pValue, 0.005);
}

} // namespace
} // namespace stats
} // namespace qdel
