/**
 * @file
 * Unit tests for the special functions against analytic identities and
 * high-precision reference values.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "stats/special_functions.hh"

namespace qdel {
namespace stats {
namespace {

TEST(LogBeta, MatchesFactorials)
{
    // B(a, b) = (a-1)!(b-1)!/(a+b-1)! for integers.
    EXPECT_NEAR(std::exp(logBeta(3, 4)), 2.0 * 6.0 / 720.0, 1e-12);
    EXPECT_NEAR(std::exp(logBeta(1, 1)), 1.0, 1e-12);
    EXPECT_NEAR(std::exp(logBeta(0.5, 0.5)), M_PI, 1e-10);
}

TEST(IncompleteBeta, KnownValues)
{
    // I_x(1, b) = 1 - (1-x)^b.
    EXPECT_NEAR(incompleteBeta(1.0, 3.0, 0.25),
                1.0 - std::pow(0.75, 3), 1e-12);
    // I_x(a, 1) = x^a.
    EXPECT_NEAR(incompleteBeta(4.0, 1.0, 0.5), std::pow(0.5, 4), 1e-12);
    // Symmetry point.
    EXPECT_NEAR(incompleteBeta(2.5, 2.5, 0.5), 0.5, 1e-12);
}

TEST(IncompleteBeta, BoundsAndSymmetry)
{
    EXPECT_DOUBLE_EQ(incompleteBeta(2.0, 3.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(incompleteBeta(2.0, 3.0, 1.0), 1.0);
    for (double x : {0.1, 0.3, 0.7, 0.9}) {
        EXPECT_NEAR(incompleteBeta(2.0, 5.0, x),
                    1.0 - incompleteBeta(5.0, 2.0, 1.0 - x), 1e-12);
    }
}

TEST(IncompleteBeta, MonotoneInX)
{
    double previous = -1.0;
    for (double x = 0.0; x <= 1.0; x += 0.01) {
        const double value = incompleteBeta(3.5, 7.25, x);
        EXPECT_GE(value, previous);
        previous = value;
    }
}

TEST(IncompleteGamma, KnownValues)
{
    // P(1, x) = 1 - e^{-x}.
    EXPECT_NEAR(incompleteGammaLower(1.0, 2.0), 1.0 - std::exp(-2.0),
                1e-12);
    // P(a, 0) = 0; complementarity.
    EXPECT_DOUBLE_EQ(incompleteGammaLower(3.0, 0.0), 0.0);
    EXPECT_NEAR(incompleteGammaLower(2.5, 3.0) +
                    incompleteGammaUpper(2.5, 3.0),
                1.0, 1e-12);
    // chi^2_2 CDF at its median ~ 1.386.
    EXPECT_NEAR(incompleteGammaLower(1.0, 0.6931471805599453), 0.5, 1e-12);
}

TEST(NormalCdf, ReferenceValues)
{
    EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-15);
    EXPECT_NEAR(normalCdf(1.0), 0.8413447460685429, 1e-12);
    EXPECT_NEAR(normalCdf(-1.959963984540054), 0.025, 1e-12);
    EXPECT_NEAR(normalCdf(3.0), 0.9986501019683699, 1e-12);
}

TEST(NormalQuantile, ReferenceValues)
{
    EXPECT_NEAR(normalQuantile(0.5), 0.0, 1e-15);
    EXPECT_NEAR(normalQuantile(0.975), 1.959963984540054, 1e-10);
    EXPECT_NEAR(normalQuantile(0.95), 1.6448536269514722, 1e-10);
    EXPECT_NEAR(normalQuantile(0.05), -1.6448536269514722, 1e-10);
    EXPECT_NEAR(normalQuantile(1e-10), -6.361340902404056, 1e-6);
}

TEST(NormalQuantile, RoundTripsThroughCdf)
{
    for (double p = 0.001; p < 1.0; p += 0.001)
        EXPECT_NEAR(normalCdf(normalQuantile(p)), p, 1e-12);
}

TEST(NormalQuantile, Endpoints)
{
    EXPECT_TRUE(std::isinf(normalQuantile(0.0)));
    EXPECT_TRUE(std::isinf(normalQuantile(1.0)));
    EXPECT_LT(normalQuantile(0.0), 0.0);
    EXPECT_GT(normalQuantile(1.0), 0.0);
}

TEST(BinomialCdf, MatchesBruteForceSmallN)
{
    for (long long n : {1, 2, 5, 13}) {
        for (double p : {0.05, 0.3, 0.5, 0.95}) {
            double cumulative = 0.0;
            for (long long k = 0; k < n; ++k) {
                cumulative += std::exp(binomialLogPmf(k, n, p));
                EXPECT_NEAR(binomialCdf(k, n, p), cumulative, 1e-10)
                    << "n=" << n << " p=" << p << " k=" << k;
            }
        }
    }
}

TEST(BinomialCdf, EdgeCases)
{
    EXPECT_DOUBLE_EQ(binomialCdf(-1, 10, 0.5), 0.0);
    EXPECT_DOUBLE_EQ(binomialCdf(10, 10, 0.5), 1.0);
    EXPECT_DOUBLE_EQ(binomialCdf(3, 10, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(binomialCdf(3, 10, 1.0), 0.0);
}

TEST(BinomialCdf, PaperMinimumHistoryIdentity)
{
    // The paper's n = 59: P[Bin(n, .95) <= n-1] = 1 - .95^n crosses
    // 0.95 exactly at n = 59.
    EXPECT_LT(binomialCdf(57, 58, 0.95), 0.95);
    EXPECT_GE(binomialCdf(58, 59, 0.95), 0.95);
    EXPECT_NEAR(binomialCdf(58, 59, 0.95),
                1.0 - std::pow(0.95, 59), 1e-12);
}

TEST(BinomialCdf, LargeN)
{
    // Normal-approximation sanity at n = 10^6: CDF at the mean ~ 0.5.
    const double at_mean = binomialCdf(500000, 1000000, 0.5);
    EXPECT_NEAR(at_mean, 0.5, 1e-3);
    EXPECT_NEAR(binomialCdf(950000, 1000000, 0.95), 0.5, 0.51 - 0.5 + 1e-2);
}

TEST(BinomialLogPmf, SumsToOne)
{
    for (double p : {0.2, 0.95}) {
        double total = 0.0;
        for (long long k = 0; k <= 20; ++k)
            total += std::exp(binomialLogPmf(k, 20, p));
        EXPECT_NEAR(total, 1.0, 1e-12);
    }
}

} // namespace
} // namespace stats
} // namespace qdel
