/**
 * @file
 * Deterministic fuzz / property harness for the trace ingestion layer.
 *
 * Feeds seeded random mutations of well-formed SWF and native traces
 * through parse -> write -> parse and asserts the recoverable-error
 * contract: no crash, no hang, strict mode fails with context, lenient
 * mode's IngestReport accounts for every input line, and the written
 * form is a fixpoint (write(parse(w)) == w). The mutations are driven
 * by the repo's portable Rng, so a failing iteration reproduces from
 * its seed on every platform.
 *
 * QDEL_FUZZ_ITERATIONS overrides the per-property iteration count
 * (CI's sanitizer job raises it; the default keeps local runs fast).
 */

#include <cstdlib>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "stats/rng.hh"
#include "trace/native_format.hh"
#include "trace/swf_format.hh"
#include "util/cli.hh"
#include "util/string_utils.hh"

namespace qdel {
namespace trace {
namespace {

size_t
iterations()
{
    if (const char *env = std::getenv("QDEL_FUZZ_ITERATIONS")) {
        if (auto parsed = parseInt(env); parsed && *parsed > 0)
            return static_cast<size_t>(*parsed);
    }
    return 50;
}

/** A seed trace with the shapes the SWF writer must handle. */
Trace
seedTrace()
{
    Trace t("fuzz-site", "fuzz-machine");
    t.add({1000.0, 42.5, 8, 3600.0, "normal"});
    t.add({2000.0, 0.0, 1, 60.0, "debug"});
    t.add({3000.0, 1.0 / 3.0, 128, -1.0, "wide"});
    JobRecord nowait{4000.0, -1.0, 4, 120.0, "normal"};
    t.add(nowait);
    JobRecord cancelled{5000.0, 7.0, 2, 5.0, ""};
    cancelled.status = 5;
    t.add(cancelled);
    t.sortBySubmitTime();
    return t;
}

/**
 * Seed for the native format, which has no missing-wait encoding: a
 * record with waitSeconds < 0 would serialize to an unparseable line.
 */
Trace
nativeSeedTrace()
{
    Trace t = seedTrace();
    Trace out(t.site(), t.machine());
    for (const auto &job : t) {
        if (job.hasWait())
            out.add(job);
    }
    return out;
}

/** Fragments spliced into lines to hit the parsers' error branches. */
const char *kPoisons[] = {
    "xyz",  "nan",    "inf",          "-inf", "1e400",
    "-1.5", "1.5.2",  "99999999999",  "",     "-",
    ";",    "#",      "\t",           "0x10", "1,5",
};

/** Mutate one line of @p text: corrupt, duplicate, truncate, or drop. */
std::string
mutate(const std::string &text, stats::Rng &rng)
{
    std::vector<std::string> lines = split(text, '\n');
    if (lines.empty())
        return text;
    const size_t victim =
        static_cast<size_t>(rng.uniformInt(0, static_cast<long long>(
                                                  lines.size() - 1)));
    switch (rng.uniformInt(0, 4)) {
    case 0: { // replace a whitespace-separated token with a poison
        auto fields = splitWhitespace(lines[victim]);
        if (!fields.empty()) {
            const size_t f = static_cast<size_t>(rng.uniformInt(
                0, static_cast<long long>(fields.size() - 1)));
            fields[f] = kPoisons[rng.uniformInt(
                0, static_cast<long long>(std::size(kPoisons) - 1))];
            std::string rebuilt;
            for (const auto &field : fields)
                rebuilt += field + " ";
            lines[victim] = rebuilt;
        }
        break;
    }
    case 1: // truncate the line mid-token
        lines[victim] = lines[victim].substr(
            0, static_cast<size_t>(rng.uniformInt(
                   0, static_cast<long long>(lines[victim].size()))));
        break;
    case 2: // duplicate the line
        lines.insert(lines.begin() + static_cast<long>(victim),
                     lines[victim]);
        break;
    case 3: // drop the line
        lines.erase(lines.begin() + static_cast<long>(victim));
        break;
    default: // inject raw bytes
        lines[victim] += std::string("\x01\xff ") +
                         kPoisons[rng.uniformInt(
                             0, static_cast<long long>(
                                    std::size(kPoisons) - 1))];
        break;
    }
    std::string out;
    for (const auto &line : lines)
        out += line + "\n";
    return out;
}

TEST(FuzzSwf, MutatedInputNeverCrashesAndAlwaysAccounts)
{
    std::ostringstream seed_out;
    writeSwfTrace(seedTrace(), seed_out);
    stats::Rng rng(0xf022aa11);

    for (size_t i = 0; i < iterations(); ++i) {
        std::string corpus = seed_out.str();
        const int rounds = static_cast<int>(rng.uniformInt(1, 5));
        for (int r = 0; r < rounds; ++r)
            corpus = mutate(corpus, rng);

        SwfParseOptions keep;
        keep.skipMissingWait = false;

        // Strict: either parses or fails with file/line context.
        {
            std::istringstream in(corpus);
            IngestReport report;
            SwfParseOptions strict = keep;
            auto t = parseSwfTrace(in, "fuzz.swf", strict, &report);
            if (!t.ok()) {
                EXPECT_EQ(t.error().file, "fuzz.swf") << "iteration " << i;
                EXPECT_GT(t.error().line, 0u) << "iteration " << i;
                EXPECT_FALSE(t.error().reason.empty());
            }
        }
        // Lenient: always succeeds, and the report accounts for every
        // line of input.
        {
            std::istringstream in(corpus);
            IngestReport report;
            SwfParseOptions lenient = keep;
            lenient.mode = ParseMode::Lenient;
            auto t = parseSwfTrace(in, "fuzz.swf", lenient, &report);
            ASSERT_TRUE(t.ok()) << "iteration " << i;
            EXPECT_EQ(report.accounted(), report.totalLines)
                << "iteration " << i << ": " << report.summary();
            EXPECT_EQ(report.parsedRecords, t.value().size())
                << "iteration " << i;

            // Whatever survived must round-trip to a byte-stable form.
            std::ostringstream w1;
            writeSwfTrace(t.value(), w1);
            std::istringstream in2(w1.str());
            auto reparsed = parseSwfTrace(in2, "<w1>", keep);
            ASSERT_TRUE(reparsed.ok()) << "iteration " << i;
            std::ostringstream w2;
            writeSwfTrace(reparsed.value(), w2);
            EXPECT_EQ(w1.str(), w2.str()) << "iteration " << i;
        }
    }
}

TEST(FuzzNative, MutatedInputNeverCrashesAndAlwaysAccounts)
{
    std::ostringstream seed_out;
    writeNativeTrace(nativeSeedTrace(), seed_out);
    stats::Rng rng(0xbeefcafe);

    for (size_t i = 0; i < iterations(); ++i) {
        std::string corpus = seed_out.str();
        const int rounds = static_cast<int>(rng.uniformInt(1, 5));
        for (int r = 0; r < rounds; ++r)
            corpus = mutate(corpus, rng);

        {
            std::istringstream in(corpus);
            auto t = parseNativeTrace(in, "fuzz.txt");
            if (!t.ok()) {
                EXPECT_EQ(t.error().file, "fuzz.txt") << "iteration " << i;
                EXPECT_GT(t.error().line, 0u) << "iteration " << i;
            }
        }
        {
            std::istringstream in(corpus);
            IngestReport report;
            NativeParseOptions lenient;
            lenient.mode = ParseMode::Lenient;
            auto t = parseNativeTrace(in, "fuzz.txt", lenient, &report);
            ASSERT_TRUE(t.ok()) << "iteration " << i;
            EXPECT_EQ(report.accounted(), report.totalLines)
                << "iteration " << i << ": " << report.summary();

            std::ostringstream w1;
            writeNativeTrace(t.value(), w1);
            std::istringstream in2(w1.str());
            auto reparsed = parseNativeTrace(in2, "<w1>");
            ASSERT_TRUE(reparsed.ok()) << "iteration " << i;
            std::ostringstream w2;
            writeNativeTrace(reparsed.value(), w2);
            EXPECT_EQ(w1.str(), w2.str()) << "iteration " << i;
        }
    }
}

TEST(FuzzNative, LenientRecoversEveryWellFormedLine)
{
    // Property: inserting garbage lines into a valid trace never
    // changes what lenient mode recovers from the valid lines.
    stats::Rng rng(0x5eed);
    std::ostringstream clean_out;
    writeNativeTrace(nativeSeedTrace(), clean_out);
    std::istringstream clean_in(clean_out.str());
    auto clean = parseNativeTrace(clean_in).value();

    for (size_t i = 0; i < iterations(); ++i) {
        std::vector<std::string> lines = split(clean_out.str(), '\n');
        const size_t insert_at = static_cast<size_t>(rng.uniformInt(
            0, static_cast<long long>(lines.size() - 1)));
        lines.insert(lines.begin() + static_cast<long>(insert_at),
                     "totally bogus line !!!");
        std::string corpus;
        for (const auto &line : lines)
            corpus += line + "\n";

        std::istringstream in(corpus);
        NativeParseOptions lenient;
        lenient.mode = ParseMode::Lenient;
        IngestReport report;
        auto t = parseNativeTrace(in, "<in>", lenient, &report);
        ASSERT_TRUE(t.ok());
        EXPECT_EQ(t.value().size(), clean.size()) << "iteration " << i;
        EXPECT_EQ(report.malformedLines, 1u) << "iteration " << i;
    }
}

TEST(Corpus, SwfStrictFailsLenientAccounts)
{
    const std::string path = std::string(QDEL_CORPUS_DIR) + "/mixed.swf";
    // Strict: the first malformed line fails the load with context.
    {
        auto t = loadSwfTrace(path);
        ASSERT_FALSE(t.ok());
        EXPECT_EQ(t.error().file, path);
        EXPECT_GT(t.error().line, 0u);
    }
    // Lenient: the well-formed records survive, everything is counted.
    {
        SwfParseOptions lenient;
        lenient.mode = ParseMode::Lenient;
        IngestReport report;
        auto t = loadSwfTrace(path, lenient, &report);
        ASSERT_TRUE(t.ok());
        EXPECT_EQ(t.value().size(), 8u);
        EXPECT_EQ(report.totalLines, 20u);
        EXPECT_EQ(report.commentLines, 7u);
        EXPECT_EQ(report.parsedRecords, 8u);
        EXPECT_EQ(report.malformedLines, 4u);
        EXPECT_EQ(report.filteredRecords, 1u);  // the missing-wait row
        EXPECT_EQ(report.accounted(), report.totalLines);
    }
}

TEST(Corpus, NativeStrictFailsLenientAccounts)
{
    const std::string path =
        std::string(QDEL_CORPUS_DIR) + "/mixed_native.txt";
    {
        auto t = loadNativeTrace(path);
        ASSERT_FALSE(t.ok());
        EXPECT_EQ(t.error().file, path);
    }
    {
        NativeParseOptions lenient;
        lenient.mode = ParseMode::Lenient;
        IngestReport report;
        auto t = loadNativeTrace(path, lenient, &report);
        ASSERT_TRUE(t.ok());
        EXPECT_EQ(t.value().size(), 9u);
        EXPECT_EQ(report.totalLines, 18u);
        EXPECT_EQ(report.commentLines, 4u);
        EXPECT_EQ(report.parsedRecords, 9u);
        EXPECT_EQ(report.malformedLines, 5u);
        EXPECT_EQ(report.accounted(), report.totalLines);
    }
}

TEST(FuzzCli, RandomArgvNeverCrashes)
{
    stats::Rng rng(0xc11f00d);
    const char *tokens[] = {
        "--seed=1",   "--seed",    "1",        "--verbose", "out.csv",
        "--",         "--x=nan",   "--y=",     "-z",        "--flag",
        "--flag=tru", "--a=-5",    "--a",      "-5",        "=",
        "--=x",       "--b=1=2",   "positional",
    };
    for (size_t i = 0; i < iterations() * 4; ++i) {
        std::vector<const char *> argv = {"prog"};
        const int count = static_cast<int>(rng.uniformInt(0, 8));
        for (int k = 0; k < count; ++k) {
            argv.push_back(tokens[rng.uniformInt(
                0, static_cast<long long>(std::size(tokens) - 1))]);
        }
        CommandLine cli(static_cast<int>(argv.size()), argv.data(),
                        {"verbose", "flag"});
        // Getters must return values or errors, never terminate.
        (void)cli.getInt("seed", 0).ok();
        (void)cli.getDouble("x", 0.0).ok();
        (void)cli.getBool("flag", false).ok();
        (void)cli.getString("y", "");
        (void)cli.positional();
        (void)cli.errors();
    }
}

} // namespace
} // namespace trace
} // namespace qdel
