/**
 * @file
 * Deterministic malformed-HTTP fuzzing of the serve front end.
 *
 * Two layers:
 *
 *  - parser-level: seeded mutations of well-formed request heads fed
 *    straight into parseRequestHead(), asserting the recoverable-error
 *    contract (parse or fail with context, never crash) plus the
 *    hardening limits (header-count cap reported as its own field so
 *    the server can answer 431);
 *
 *  - socket-level: the same generator writes hostile bytes at a live
 *    BoundServer — binary garbage, oversized request lines, header
 *    floods, Content-Length lies — and asserts the server either
 *    answers a well-formed HTTP status line or closes the connection,
 *    and always remains healthy for the next client.
 *
 * Mutations are driven by the repo's portable Rng so a failing
 * iteration reproduces from its seed on every platform.
 * QDEL_FUZZ_ITERATIONS overrides the per-property iteration count.
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/http.hh"
#include "serve/server.hh"
#include "serve/service.hh"
#include "serve/wire.hh"
#include "stats/rng.hh"
#include "util/string_utils.hh"

namespace qdel {
namespace serve {
namespace {

size_t
iterations()
{
    if (const char *env = std::getenv("QDEL_FUZZ_ITERATIONS")) {
        if (auto parsed = parseInt(env); parsed && *parsed > 0)
            return static_cast<size_t>(*parsed);
    }
    return 50;
}

/** Fragments the mutator splices into request heads. */
const char *const kPoisons[] = {
    "\r\n\r\n",  "\r\n",     "\x00",     "\xff\xfe", "GET ",
    "HTTP/1.1", ": ",       " ",        "%",        "?a=b&c=",
    "........", "\t\t\t",    "Content-Length: 999999999999999999999",
    "Transfer-Encoding: chunked",
};

std::string
wellFormedHead(stats::Rng &rng)
{
    std::string head = "GET /bound?machine=m&procs=4 HTTP/1.1\r\n";
    const int headers = static_cast<int>(rng.uniformInt(0, 5));
    for (int i = 0; i < headers; ++i)
        head += "X-H" + std::to_string(i) + ": v\r\n";
    head += "\r\n";
    return head;
}

std::string
mutate(stats::Rng &rng, std::string head)
{
    const int edits = static_cast<int>(rng.uniformInt(1, 6));
    for (int e = 0; e < edits; ++e) {
        switch (rng.uniformInt(0, 3)) {
        case 0: {  // splice a poison fragment at a random offset
            const char *poison = kPoisons[rng.uniformInt(
                0, static_cast<long long>(std::size(kPoisons)) - 1)];
            const size_t at = static_cast<size_t>(
                rng.uniformInt(0, static_cast<long long>(head.size())));
            head.insert(at, poison);
            break;
        }
        case 1: {  // flip a byte
            if (head.empty())
                break;
            const size_t at = static_cast<size_t>(rng.uniformInt(
                0, static_cast<long long>(head.size()) - 1));
            head[at] = static_cast<char>(rng.uniformInt(0, 255));
            break;
        }
        case 2: {  // truncate
            if (head.empty())
                break;
            head.resize(static_cast<size_t>(rng.uniformInt(
                0, static_cast<long long>(head.size()) - 1)));
            break;
        }
        default: {  // duplicate a run
            if (head.empty())
                break;
            const size_t at = static_cast<size_t>(rng.uniformInt(
                0, static_cast<long long>(head.size()) - 1));
            const size_t len = std::min(
                head.size() - at,
                static_cast<size_t>(rng.uniformInt(1, 32)));
            head += head.substr(at, len);
            break;
        }
        }
    }
    return head;
}

TEST(FuzzHttpParser, MutatedHeadsParseOrFailWithContextNeverCrash)
{
    for (size_t i = 0; i < iterations() * 10; ++i) {
        stats::Rng iter(0x48545450u + static_cast<uint64_t>(i));
        const std::string head = mutate(iter, wellFormedHead(iter));
        auto parsed = parseRequestHead(head);
        if (parsed.ok()) {
            // The contract for accepted heads: a non-empty method and
            // a path (hardening caps fire inside the parser).
            EXPECT_FALSE(parsed.value().method.empty())
                << "iteration " << i;
            EXPECT_FALSE(parsed.value().path.empty())
                << "iteration " << i;
        } else {
            EXPECT_FALSE(parsed.error().reason.empty())
                << "iteration " << i;
        }
    }
}

TEST(FuzzHttpParser, HeaderFloodIsRejectedAsHeaderCount)
{
    std::string head = "GET / HTTP/1.1\r\n";
    for (size_t i = 0; i < kMaxHttpHeaderCount + 1; ++i)
        head += "X-" + std::to_string(i) + ": v\r\n";
    head += "\r\n";
    auto parsed = parseRequestHead(head);
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.error().field, "http.headerCount");
}

// --- socket-level fuzzing -------------------------------------------

class FuzzHttpServer : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ServiceConfig config;
        config.registry.shards = 2;
        config.registry.refitEvery = 5;
        config.registry.trainObservations = 10;
        auto opened = BoundService::open(config);
        ASSERT_TRUE(opened.ok());
        service_ = std::move(opened).value();
        ServerOptions options;
        options.ioTimeoutMs = 500;
        options.idleTimeoutMs = 500;
        auto server = BoundServer::start(*service_, options);
        ASSERT_TRUE(server.ok());
        server_ = std::move(server).value();
    }

    void
    TearDown() override
    {
        if (server_)
            server_->stop();
    }

    int
    connectToServer()
    {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            return -1;
        struct timeval timeout;
        timeout.tv_sec = 5;
        timeout.tv_usec = 0;
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                     sizeof(timeout));
        struct sockaddr_in address;
        std::memset(&address, 0, sizeof(address));
        address.sin_family = AF_INET;
        address.sin_port = htons(static_cast<uint16_t>(server_->port()));
        ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
        if (::connect(fd, reinterpret_cast<struct sockaddr *>(&address),
                      sizeof(address)) != 0) {
            ::close(fd);
            return -1;
        }
        return fd;
    }

    /** @return everything the server sent before closing/deadline. */
    std::string
    exchange(std::string_view request)
    {
        const int fd = connectToServer();
        EXPECT_GE(fd, 0);
        if (fd < 0)
            return "";
        size_t sent = 0;
        while (sent < request.size()) {
            const ssize_t n =
                ::send(fd, request.data() + sent, request.size() - sent,
                       MSG_NOSIGNAL);
            if (n <= 0)
                break;  // server already rejected+closed: fine
            sent += static_cast<size_t>(n);
        }
        std::string response;
        char chunk[4096];
        for (;;) {
            const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
            if (n <= 0)
                break;
            response.append(chunk, static_cast<size_t>(n));
        }
        ::close(fd);
        return response;
    }

    /** The health probe between hostile exchanges. */
    void
    expectServerHealthy()
    {
        const std::string response =
            exchange("GET /healthz HTTP/1.1\r\n\r\n");
        EXPECT_EQ(response.rfind("HTTP/1.1 200", 0), 0u)
            << "server unhealthy after hostile input: " << response;
    }

    std::unique_ptr<BoundService> service_;
    std::unique_ptr<BoundServer> server_;
};

/** Responses that start like HTTP must be complete status lines. */
void
expectWellFormedOrEmpty(const std::string &response, size_t iteration)
{
    if (response.empty())
        return;  // server closed without answering: acceptable
    // HTTP path answers "HTTP/1.1 NNN ..."; the binary path answers a
    // length-prefixed error frame whose 4th byte is NUL.
    if (response.rfind("HTTP/1.1 ", 0) == 0) {
        ASSERT_GE(response.size(), 12u) << "iteration " << iteration;
        const std::string code = response.substr(9, 3);
        const int status = std::atoi(code.c_str());
        EXPECT_GE(status, 100) << "iteration " << iteration;
        EXPECT_LT(status, 600) << "iteration " << iteration;
    } else {
        ASSERT_GE(response.size(), 4u) << "iteration " << iteration;
        EXPECT_EQ(response[3], '\0')
            << "iteration " << iteration
            << ": non-HTTP response with a non-binary shape";
    }
}

TEST_F(FuzzHttpServer, MutatedRequestsGetWellFormedAnswersOrCloses)
{
    for (size_t i = 0; i < iterations(); ++i) {
        stats::Rng rng(0xf00du + static_cast<uint64_t>(i));
        const std::string request = mutate(rng, wellFormedHead(rng));
        SCOPED_TRACE("iteration " + std::to_string(i));
        expectWellFormedOrEmpty(exchange(request), i);
    }
    expectServerHealthy();
}

TEST_F(FuzzHttpServer, OversizedRequestLineAnswers431)
{
    const std::string request =
        "GET /" + std::string(kMaxHttpHeadBytes, 'a') + " HTTP/1.1\r\n\r\n";
    const std::string response = exchange(request);
    EXPECT_EQ(response.rfind("HTTP/1.1 431", 0), 0u) << response;
    expectServerHealthy();
}

TEST_F(FuzzHttpServer, HeaderFloodAnswers431)
{
    std::string request = "GET /healthz HTTP/1.1\r\n";
    for (size_t i = 0; i < kMaxHttpHeaderCount + 8; ++i)
        request += "X-Flood-" + std::to_string(i) + ": v\r\n";
    request += "\r\n";
    const std::string response = exchange(request);
    EXPECT_EQ(response.rfind("HTTP/1.1 431", 0), 0u) << response;
    expectServerHealthy();
}

TEST_F(FuzzHttpServer, PostWithoutContentLengthAnswers411)
{
    const std::string response = exchange(
        "POST /event?kind=submit&job=1&time=1&machine=m&procs=1 "
        "HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
    EXPECT_EQ(response.rfind("HTTP/1.1 411", 0), 0u) << response;
    expectServerHealthy();
}

TEST_F(FuzzHttpServer, HugeContentLengthAnswers413)
{
    const std::string response = exchange(
        "POST /event HTTP/1.1\r\nContent-Length: 10485760\r\n\r\n");
    EXPECT_EQ(response.rfind("HTTP/1.1 413", 0), 0u) << response;
    expectServerHealthy();
}

TEST_F(FuzzHttpServer, PureGarbageBytesDoNotWedgeTheServer)
{
    for (size_t i = 0; i < iterations(); ++i) {
        stats::Rng rng(0xdeadu + static_cast<uint64_t>(i));
        std::string garbage;
        const int len = static_cast<int>(rng.uniformInt(1, 2048));
        garbage.reserve(static_cast<size_t>(len));
        for (int b = 0; b < len; ++b)
            garbage.push_back(static_cast<char>(rng.uniformInt(0, 255)));
        exchange(garbage);  // any response shape; must not wedge
    }
    expectServerHealthy();
}

} // namespace
} // namespace serve
} // namespace qdel
