/**
 * @file
 * Tests for the out-of-core synthetic trace generator: determinism,
 * job-count control, arrival ordering, calibration sanity, and the
 * end-to-end bridge into a sharded .qtc set (whose materialization
 * must be independent of shard size).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "stats/descriptive.hh"
#include "trace/qtc_stream.hh"
#include "workload/site_catalog.hh"
#include "workload/stream_synth.hh"

namespace qdel {
namespace workload {
namespace {

const QueueProfile &
someProfile()
{
    return siteCatalog().front();
}

std::vector<trace::JobRecord>
collect(const QueueProfile &profile, StreamSynthOptions options)
{
    StreamingSynthesizer synth(profile, options);
    std::vector<trace::JobRecord> jobs;
    jobs.reserve(synth.jobCount());
    trace::JobRecord job;
    while (synth.next(&job))
        jobs.push_back(job);
    return jobs;
}

std::string
scratchDir(const std::string &tag)
{
    const std::string dir = ::testing::TempDir() + tag;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

TEST(StreamSynth, DeterministicSortedAndComplete)
{
    const auto &profile = someProfile();
    StreamSynthOptions options;
    options.jobCountOverride = 4000;

    const auto a = collect(profile, options);
    const auto b = collect(profile, options);
    ASSERT_EQ(a.size(), 4000u);
    ASSERT_EQ(b.size(), a.size());

    const double begin =
        monthStartUnix(profile.startYear, profile.startMonth);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].submitTime, b[i].submitTime);
        EXPECT_EQ(a[i].waitSeconds, b[i].waitSeconds);
        EXPECT_EQ(a[i].procs, b[i].procs);
        EXPECT_EQ(a[i].queue, profile.queue);
        EXPECT_GE(a[i].waitSeconds, 0.0);
        EXPECT_GE(a[i].submitTime, begin);
        if (i > 0)
            EXPECT_GE(a[i].submitTime, a[i - 1].submitTime);
    }
}

TEST(StreamSynth, SeedChangesTheStream)
{
    const auto &profile = someProfile();
    StreamSynthOptions options;
    options.jobCountOverride = 500;
    const auto a = collect(profile, options);
    options.baseSeed = 2;
    const auto b = collect(profile, options);
    ASSERT_EQ(a.size(), b.size());
    size_t differing = 0;
    for (size_t i = 0; i < a.size(); ++i)
        differing += a[i].waitSeconds != b[i].waitSeconds;
    EXPECT_GT(differing, a.size() / 2);
}

TEST(StreamSynth, JobCountOverride)
{
    const auto &profile = someProfile();
    StreamSynthOptions options;
    options.jobCountOverride = 123;
    StreamingSynthesizer synth(profile, options);
    EXPECT_EQ(synth.jobCount(), 123u);
    trace::JobRecord job;
    size_t n = 0;
    while (synth.next(&job))
        ++n;
    EXPECT_EQ(n, 123u);
    EXPECT_EQ(synth.produced(), 123u);
    EXPECT_FALSE(synth.next(&job));

    StreamingSynthesizer whole(profile, {});
    EXPECT_EQ(whole.jobCount(),
              static_cast<size_t>(profile.jobCount));
}

TEST(StreamSynth, CalibrationSurvivesStreaming)
{
    // The streaming family shares the calibrated mixture with
    // synthesizeTrace(), so its marginal median must land near the
    // published one (loose bounds: the regime walk moves it around).
    const auto &profile = someProfile();
    StreamSynthOptions options;
    options.jobCountOverride = 20000;
    const auto jobs = collect(profile, options);
    std::vector<double> waits;
    waits.reserve(jobs.size());
    for (const auto &job : jobs)
        waits.push_back(job.waitSeconds);
    const double median = stats::median(waits);
    EXPECT_GT(median, 0.2 * profile.medianDelay);
    EXPECT_LT(median, 5.0 * profile.medianDelay);
}

TEST(StreamSynth, ShardSetMaterializationIsShardSizeInvariant)
{
    const auto &profile = someProfile();
    StreamSynthOptions options;
    options.jobCountOverride = 5000;
    const auto direct = collect(profile, options);

    trace::Trace reference;
    for (const size_t shard_size : {512u, 1250u, 100000u}) {
        const std::string dir = scratchDir(
            "stream_synth_shard_" + std::to_string(shard_size));
        trace::ShardWriterOptions writer_options;
        writer_options.directory = dir;
        writer_options.baseName = "synth";
        writer_options.shardSize = shard_size;
        writer_options.site = profile.site;
        writer_options.machine = profile.display;
        trace::ShardedTraceWriter writer(writer_options);

        StreamingSynthesizer synth(profile, options);
        trace::JobRecord job;
        while (synth.next(&job))
            writer.add(job);
        ASSERT_TRUE(writer.finish().ok());

        auto reader =
            trace::StreamingTraceReader::open(writer.manifestPath());
        ASSERT_TRUE(reader.ok()) << reader.error().str();
        auto materialized = reader.value().materialize();
        ASSERT_TRUE(materialized.ok()) << materialized.error().str();
        const trace::Trace &got = materialized.value();

        ASSERT_EQ(got.size(), direct.size());
        for (size_t i = 0; i < direct.size(); ++i) {
            EXPECT_EQ(got[i].submitTime, direct[i].submitTime);
            EXPECT_EQ(got[i].waitSeconds, direct[i].waitSeconds);
            EXPECT_EQ(got[i].procs, direct[i].procs);
            EXPECT_EQ(got[i].queue, direct[i].queue);
        }
        if (reference.empty()) {
            reference = got;
        } else {
            ASSERT_EQ(reference.size(), got.size());
            for (size_t i = 0; i < got.size(); ++i)
                EXPECT_EQ(reference[i].waitSeconds,
                          got[i].waitSeconds);
        }
        std::filesystem::remove_all(dir);
    }
}

} // namespace
} // namespace workload
} // namespace qdel
