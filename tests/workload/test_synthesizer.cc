/**
 * @file
 * Tests for the synthetic trace generator: calibration identities,
 * regime schedules, determinism, and the paper-specific behaviours
 * (Table 5 cell population, the Figure 2 inversion, the lanl/short
 * terminal burst).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "stats/descriptive.hh"
#include "stats/distributions.hh"
#include "workload/site_catalog.hh"
#include "workload/synthesizer.hh"

namespace qdel {
namespace workload {
namespace {

TEST(CalibrateMixture, MildMatchesMedianAndMean)
{
    // Verify the closed-form calibration against the mixture's exact
    // analytic median/mean.
    const auto &profile = findProfile("datastar", "normal");
    const auto cal = calibrateMixture(profile);
    ASSERT_GT(cal.fastWeight, 0.0);

    // Analytic mean of the mixture:
    const double e1 = std::exp(cal.mu1 + 0.5 * cal.sigma1 * cal.sigma1);
    const double e2 = std::exp(cal.mu2 + 0.5 * cal.sigma2 * cal.sigma2);
    const double mean = cal.fastWeight * e1 +
                        (1.0 - cal.fastWeight) * e2;
    EXPECT_NEAR(mean, profile.meanDelay, 0.05 * profile.meanDelay);

    // Median: w F1(M) + (1-w) F2(M) ~ 0.5 at the published median.
    stats::NormalDist mode1(cal.mu1, cal.sigma1);
    stats::NormalDist mode2(cal.mu2, cal.sigma2);
    const double log_median = std::log(profile.medianDelay);
    const double cdf_at_median =
        cal.fastWeight * mode1.cdf(log_median) +
        (1.0 - cal.fastWeight) * mode2.cdf(log_median);
    EXPECT_NEAR(cdf_at_median, 0.5, 0.03);
}

TEST(CalibrateMixture, StrongMedianInFastMode)
{
    const auto &profile = findProfile("lanl", "shared");
    const auto cal = calibrateMixture(profile);
    EXPECT_GT(cal.fastWeight, 0.5);
    // Median identity: w F1(M) = 0.5.
    stats::NormalDist mode1(cal.mu1, cal.sigma1);
    EXPECT_NEAR(cal.fastWeight *
                    mode1.cdf(std::log(profile.medianDelay)),
                0.5, 0.02);
    // Congestion mode is far slower than the fast mode.
    EXPECT_GT(cal.mu2, cal.mu1 + 2.0);
}

TEST(CalibrateMixture, NoneUsesThinExtremeTail)
{
    const auto &profile = findProfile("nersc", "regular");
    const auto cal = calibrateMixture(profile);
    EXPECT_DOUBLE_EQ(cal.fastWeight, 0.0);
    ASSERT_GT(cal.tailWeight, 0.0);
    EXPECT_LE(cal.tailWeight, 0.05);
    // The tail carries the mean: its expectation dwarfs the bulk's.
    const double e_bulk = std::exp(cal.mu2 + 0.5 * cal.sigma2 * cal.sigma2);
    const double e_tail = std::exp(cal.muT + 0.5 * cal.sigmaT * cal.sigmaT);
    EXPECT_GT(e_tail, 10.0 * e_bulk);
}

TEST(CalibrateMixture, NearSymmetricQueueDegeneratesGracefully)
{
    // lanl/schammpq has mean < median; calibration must not produce a
    // degenerate or inverted mixture.
    const auto &profile = findProfile("lanl", "schammpq");
    const auto cal = calibrateMixture(profile);
    EXPECT_DOUBLE_EQ(cal.fastWeight, 0.0);
    EXPECT_DOUBLE_EQ(cal.tailWeight, 0.0);
    EXPECT_GT(cal.sigma2, 0.1);
    EXPECT_NEAR(std::exp(cal.mu2), profile.medianDelay,
                0.01 * profile.medianDelay);
}

TEST(RegimeSchedule, CoversAllJobsInOrder)
{
    const auto &profile = findProfile("datastar", "normal");
    stats::Rng rng(3);
    auto schedule = makeRegimeSchedule(profile, 10000, rng);
    ASSERT_EQ(schedule.size(),
              static_cast<size_t>(profile.regimeCount));
    EXPECT_EQ(schedule.front().startIndex, 0u);
    for (size_t i = 1; i < schedule.size(); ++i)
        EXPECT_GE(schedule[i].startIndex, schedule[i - 1].startIndex);
    EXPECT_LE(schedule.back().startIndex, 10000u);
}

TEST(RegimeSchedule, OffsetsAreJobWeightedCentered)
{
    const auto &profile = findProfile("nersc", "regular");
    stats::Rng rng(4);
    const size_t jobs = 50000;
    auto schedule = makeRegimeSchedule(profile, jobs, rng);
    double weighted = 0.0;
    for (size_t s = 0; s < schedule.size(); ++s) {
        const size_t end = s + 1 < schedule.size()
                               ? schedule[s + 1].startIndex
                               : jobs;
        weighted += schedule[s].muOffset *
                    static_cast<double>(end - schedule[s].startIndex);
    }
    EXPECT_NEAR(weighted / static_cast<double>(jobs), 0.0, 1e-9);
}

TEST(ProfileSeed, StablePerQueueDistinctAcrossQueues)
{
    const auto &a = findProfile("datastar", "normal");
    const auto &b = findProfile("datastar", "express");
    EXPECT_EQ(profileSeed(a, 1), profileSeed(a, 1));
    EXPECT_NE(profileSeed(a, 1), profileSeed(b, 1));
    EXPECT_NE(profileSeed(a, 1), profileSeed(a, 2));
}

TEST(Synthesize, Deterministic)
{
    const auto &profile = findProfile("paragon", "q256s");
    auto a = synthesizeTrace(profile);
    auto b = synthesizeTrace(profile);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_DOUBLE_EQ(a[i].submitTime, b[i].submitTime);
        ASSERT_DOUBLE_EQ(a[i].waitSeconds, b[i].waitSeconds);
        ASSERT_EQ(a[i].procs, b[i].procs);
    }
}

TEST(Synthesize, JobCountSpanAndQueueName)
{
    const auto &profile = findProfile("sdsc", "express");
    auto t = synthesizeTrace(profile);
    ASSERT_EQ(t.size(), static_cast<size_t>(profile.jobCount));
    EXPECT_TRUE(t.isSorted());
    const double begin =
        monthStartUnix(profile.startYear, profile.startMonth);
    EXPECT_GE(t[0].submitTime, begin);
    for (const auto &job : t)
        ASSERT_EQ(job.queue, profile.queue);
}

/** Table 1 reproduction: medians and means land near the published
 *  values across representative rows of each class. */
class TableOneCalibration
    : public ::testing::TestWithParam<std::pair<const char *, const char *>>
{
};

TEST_P(TableOneCalibration, MedianAndMeanNearPublished)
{
    const auto &[site, queue] = GetParam();
    const auto &profile = findProfile(site, queue);
    auto summary = synthesizeTrace(profile).summary();
    // Median within a factor of 2.5 and mean within a factor of 3
    // (the nonstationary regime structure moves both; the paper's own
    // replication tolerance is qualitative).
    const double median_target = std::max(profile.medianDelay, 1.0);
    EXPECT_GT(summary.median, median_target / 2.5) << site << "/" << queue;
    EXPECT_LT(summary.median, median_target * 2.5) << site << "/" << queue;
    EXPECT_GT(summary.mean, profile.meanDelay / 3.0);
    EXPECT_LT(summary.mean, profile.meanDelay * 3.0);
}

INSTANTIATE_TEST_SUITE_P(
    RepresentativeQueues, TableOneCalibration,
    ::testing::Values(std::make_pair("llnl", "all"),
                      std::make_pair("nersc", "regular"),
                      std::make_pair("tacc2", "normal"),
                      std::make_pair("lanl", "shared"),
                      std::make_pair("datastar", "express"),
                      std::make_pair("sdsc", "high"),
                      std::make_pair("paragon", "standby")),
    [](const auto &info) {
        return std::string(info.param.first) + "_" + info.param.second;
    });

TEST(Synthesize, TableFiveCellPopulation)
{
    // Cells the paper reports have >= 1000 jobs; dropped cells fewer.
    const auto &profile = findProfile("datastar", "normal");
    auto t = synthesizeTrace(profile);
    const trace::ProcRange *bins = trace::paperProcRanges();
    EXPECT_GE(t.filterByProcRange(bins[0]).size(), 1000u);
    EXPECT_GE(t.filterByProcRange(bins[1]).size(), 1000u);
    EXPECT_GE(t.filterByProcRange(bins[2]).size(), 1000u);
    EXPECT_LT(t.filterByProcRange(bins[3]).size(), 1000u);
}

TEST(Synthesize, Figure2WindowFavorsLargeJobs)
{
    // June 2004, datastar/normal: 17-64 processor jobs wait *less*
    // than 1-4 processor jobs (the paper's surprising observation).
    const auto &profile = findProfile("datastar", "normal");
    auto t = synthesizeTrace(profile);
    auto june = t.filterByTime(dateUnix(2004, 6, 1), dateUnix(2004, 7, 1));
    const trace::ProcRange *bins = trace::paperProcRanges();
    auto small_jobs = june.filterByProcRange(bins[0]).waitTimes();
    auto large_jobs = june.filterByProcRange(bins[2]).waitTimes();
    ASSERT_GT(small_jobs.size(), 50u);
    ASSERT_GT(large_jobs.size(), 50u);
    EXPECT_LT(stats::quantile(large_jobs, 0.95) * 5.0,
              stats::quantile(small_jobs, 0.95));
}

TEST(Synthesize, TerminalBurstRaisesTailDelays)
{
    const auto &profile = findProfile("lanl", "short");
    auto t = synthesizeTrace(profile);
    const size_t n = t.size();
    std::vector<double> head, tail;
    for (size_t i = 0; i < n; ++i) {
        if (i < static_cast<size_t>(0.80 * n))
            head.push_back(t[i].waitSeconds);
        else if (i >= static_cast<size_t>(0.95 * n))
            tail.push_back(t[i].waitSeconds);
    }
    EXPECT_GT(stats::median(tail), 20.0 * stats::median(head));
}

} // namespace
} // namespace workload
} // namespace qdel
