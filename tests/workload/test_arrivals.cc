/**
 * @file
 * Unit tests for the cyclic arrival generator.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "workload/arrivals.hh"
#include "workload/site_catalog.hh"

namespace qdel {
namespace workload {
namespace {

TEST(Arrivals, ExactCountSortedInRange)
{
    stats::Rng rng(1);
    ArrivalModel model;
    const double begin = 1000.0;
    const double end = begin + 30.0 * 86400.0;
    auto arrivals = generateArrivals(begin, end, 5000, model, rng);
    ASSERT_EQ(arrivals.size(), 5000u);
    EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()));
    EXPECT_GE(arrivals.front(), begin);
    EXPECT_LT(arrivals.back(), end);
}

TEST(Arrivals, ZeroCount)
{
    stats::Rng rng(2);
    EXPECT_TRUE(generateArrivals(0.0, 100.0, 0, {}, rng).empty());
}

TEST(Arrivals, DiurnalPeakIsRespected)
{
    // Peak-hour buckets should receive clearly more arrivals than
    // off-peak buckets over many days.
    stats::Rng rng(3);
    ArrivalModel model;
    model.diurnalAmplitude = 0.8;
    model.weekendFactor = 1.0;  // isolate the daily cycle
    const double begin = monthStartUnix(2004, 4);
    const double end = begin + 60.0 * 86400.0;
    auto arrivals = generateArrivals(begin, end, 120000, model, rng);

    size_t peak = 0, trough = 0;
    for (double t : arrivals) {
        const double hour = std::fmod(t, 86400.0) / 3600.0;
        if (std::fabs(hour - model.peakHour) < 2.0)
            ++peak;
        const double anti = std::fmod(model.peakHour + 12.0, 24.0);
        if (std::fabs(hour - anti) < 2.0)
            ++trough;
    }
    EXPECT_GT(static_cast<double>(peak),
              2.0 * static_cast<double>(trough));
}

TEST(Arrivals, WeekendsQuieter)
{
    stats::Rng rng(4);
    ArrivalModel model;
    model.diurnalAmplitude = 0.0;  // isolate the weekly cycle
    model.weekendFactor = 0.4;
    const double begin = monthStartUnix(2004, 4);
    const double end = begin + 70.0 * 86400.0;  // 10 full weeks
    auto arrivals = generateArrivals(begin, end, 70000, model, rng);

    size_t weekend = 0;
    for (double t : arrivals) {
        const long long day =
            static_cast<long long>(std::floor(t / 86400.0));
        const long long weekday = ((day % 7) + 7) % 7;
        if (weekday == 2 || weekday == 3)  // Sat/Sun from Thursday epoch
            ++weekend;
    }
    // Expected weekend share = 2*0.4 / (5 + 2*0.4) ~ 0.138.
    const double share =
        static_cast<double>(weekend) / static_cast<double>(arrivals.size());
    EXPECT_NEAR(share, 0.8 / 5.8, 0.015);
}

TEST(Arrivals, IntensityPositiveEverywhere)
{
    ArrivalModel model;
    for (double t = 0.0; t < 14.0 * 86400.0; t += 3600.0)
        EXPECT_GT(arrivalIntensity(model, t), 0.0);
}

TEST(ArrivalsDeath, EmptySpan)
{
    stats::Rng rng(5);
    EXPECT_DEATH(generateArrivals(10.0, 10.0, 5, {}, rng), "empty span");
}

} // namespace
} // namespace workload
} // namespace qdel
