/**
 * @file
 * Unit tests for the embedded Table 1 catalog.
 */

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "workload/site_catalog.hh"

namespace qdel {
namespace workload {
namespace {

TEST(SiteCatalog, HasAllThirtyNineTableOneRows)
{
    EXPECT_EQ(siteCatalog().size(), 39u);
}

TEST(SiteCatalog, TotalJobCountMatchesPaper)
{
    // "This collection of data comprises 1.26 million jobs".
    long long total = 0;
    for (const auto &profile : siteCatalog())
        total += profile.jobCount;
    EXPECT_NEAR(static_cast<double>(total), 1.26e6, 0.03e6);
}

TEST(SiteCatalog, TableThreeHasThirtyTwoRows)
{
    EXPECT_EQ(table3Profiles().size(), 32u);
}

TEST(SiteCatalog, ProcTablesMatchPaperRowCount)
{
    // Tables 5-7 list 27 machine/queue rows.
    EXPECT_EQ(procTableProfiles().size(), 27u);
}

TEST(SiteCatalog, FindProfile)
{
    const auto &profile = findProfile("datastar", "normal");
    EXPECT_EQ(profile.jobCount, 48543);
    EXPECT_DOUBLE_EQ(profile.meanDelay, 35886);
    EXPECT_DOUBLE_EQ(profile.medianDelay, 1795);
    EXPECT_TRUE(profile.figure2Window);
}

TEST(SiteCatalogDeath, FindProfileUnknown)
{
    EXPECT_DEATH(findProfile("nope", "nothing"), "no catalog profile");
}

TEST(SiteCatalog, LookupProfileReturnsErrorForUnknown)
{
    auto lookup = lookupProfile("nope", "nothing");
    ASSERT_FALSE(lookup.ok());
    EXPECT_NE(lookup.error().reason.find("no catalog profile"),
              std::string::npos);
    // The error names the known sites so a typo is easy to correct.
    EXPECT_NE(lookup.error().reason.find("datastar"), std::string::npos);
}

TEST(SiteCatalog, LookupProfileReturnsErrorForUnknownQueue)
{
    EXPECT_FALSE(lookupProfile("datastar", "no-such-queue").ok());
}

TEST(SiteCatalog, LookupProfileFindsKnownPair)
{
    auto lookup = lookupProfile("datastar", "normal");
    ASSERT_TRUE(lookup.ok());
    EXPECT_EQ(lookup.value()->jobCount, 48543);
}

TEST(SiteCatalog, UniqueSiteQueueKeys)
{
    std::set<std::pair<std::string, std::string>> keys;
    for (const auto &profile : siteCatalog())
        EXPECT_TRUE(keys.emplace(profile.site, profile.queue).second)
            << profile.site << "/" << profile.queue;
}

TEST(SiteCatalog, PublishedStatisticsAreConsistent)
{
    for (const auto &profile : siteCatalog()) {
        EXPECT_GT(profile.jobCount, 0) << profile.queue;
        EXPECT_GT(profile.meanDelay, 0.0) << profile.queue;
        EXPECT_GE(profile.medianDelay, 0.0) << profile.queue;
        EXPECT_GT(profile.stdDelay, 0.0) << profile.queue;
        EXPECT_GE(profile.rho, 0.0);
        EXPECT_LT(profile.rho, 1.0);
        double mix_total = 0.0;
        for (double m : profile.procMix) {
            EXPECT_GE(m, 0.0);
            mix_total += m;
        }
        EXPECT_NEAR(mix_total, 1.0, 1e-9) << profile.queue;
    }
}

TEST(SiteCatalog, OnlyLanlShortHasTerminalBurst)
{
    int bursts = 0;
    for (const auto &profile : siteCatalog()) {
        if (profile.terminalBurst) {
            ++bursts;
            EXPECT_STREQ(profile.site, "lanl");
            EXPECT_STREQ(profile.queue, "short");
        }
    }
    EXPECT_EQ(bursts, 1);
}

TEST(SiteCatalog, OnlyDatastarNormalHasFigure2Window)
{
    int windows = 0;
    for (const auto &profile : siteCatalog()) {
        if (profile.figure2Window) {
            ++windows;
            EXPECT_STREQ(profile.site, "datastar");
            EXPECT_STREQ(profile.queue, "normal");
        }
    }
    EXPECT_EQ(windows, 1);
}

TEST(DateUnix, KnownTimestamps)
{
    EXPECT_DOUBLE_EQ(dateUnix(1970, 1, 1), 0.0);
    EXPECT_DOUBLE_EQ(dateUnix(2004, 6, 1), 1086048000.0);
    EXPECT_DOUBLE_EQ(dateUnix(2005, 2, 24), 1109203200.0);
    EXPECT_DOUBLE_EQ(monthStartUnix(2000, 1), 946684800.0);
}

TEST(DateUnix, MonthSpans)
{
    // datastar: 4/04 - 4/05 covers Feb 24 2005 (Figure 1's day).
    const auto &profile = findProfile("datastar", "normal");
    const double begin =
        monthStartUnix(profile.startYear, profile.startMonth);
    const double fig1 = dateUnix(2005, 2, 24);
    EXPECT_LT(begin, fig1);
    EXPECT_GT(monthStartUnix(profile.endYear, profile.endMonth), fig1);
}

TEST(SiteCatalog, ProcMixesRespectTableFiveCells)
{
    // Spot-check the cells the paper reports vs drops: datastar/TGhigh
    // only has the 1-4 column; lanl/small has all four.
    const auto &tghigh = findProfile("datastar", "TGhigh");
    EXPECT_GE(tghigh.procMix[0] * tghigh.jobCount, 1000.0);
    EXPECT_LT(tghigh.procMix[1] * tghigh.jobCount, 1000.0);
    EXPECT_LT(tghigh.procMix[2] * tghigh.jobCount, 1000.0);

    const auto &small = findProfile("lanl", "small");
    for (int b = 0; b < 4; ++b)
        EXPECT_GE(small.procMix[b] * small.jobCount, 1000.0) << b;
}

} // namespace
} // namespace workload
} // namespace qdel
