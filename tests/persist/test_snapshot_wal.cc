/**
 * @file
 * Tests for the bit-exact state codec, the typed state-header
 * preamble, the checksummed snapshot files, and the lenient-tail WAL
 * segments — the formats DESIGN.md section 11 documents.
 */

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "persist/io.hh"
#include "persist/snapshot.hh"
#include "persist/state_codec.hh"
#include "persist/wal.hh"

namespace qdel {
namespace persist {
namespace {

std::string
freshDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + "qdel_sw_" + name;
    std::filesystem::remove_all(dir);
    EXPECT_TRUE(ensureDirectory(dir).ok());
    return dir;
}

TEST(StateCodec, RoundTripsEveryType)
{
    StateWriter writer;
    writer.u8(0xAB);
    writer.u32(0xDEADBEEFu);
    writer.u64(0x0123456789ABCDEFull);
    writer.i64(-42);
    writer.f64(3.141592653589793);
    writer.str("queue/name with spaces");
    writer.doubles(std::vector<double>{1.0, -2.5, 1e300});

    StateReader reader(writer.bytes(), "test");
    EXPECT_EQ(reader.u8().value(), 0xAB);
    EXPECT_EQ(reader.u32().value(), 0xDEADBEEFu);
    EXPECT_EQ(reader.u64().value(), 0x0123456789ABCDEFull);
    EXPECT_EQ(reader.i64().value(), -42);
    EXPECT_DOUBLE_EQ(reader.f64().value(), 3.141592653589793);
    EXPECT_EQ(reader.str().value(), "queue/name with spaces");
    EXPECT_EQ(reader.doubles().value(),
              (std::vector<double>{1.0, -2.5, 1e300}));
    EXPECT_TRUE(reader.expectEnd().ok());
}

TEST(StateCodec, RoundTripsNonFiniteAndSignedZero)
{
    // The codec's reason to exist: the exact IEEE-754 bit pattern
    // survives, including infinities, NaN payloads and -0.0.
    const double values[] = {
        std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::quiet_NaN(),
        -0.0,
        std::numeric_limits<double>::denorm_min(),
    };
    StateWriter writer;
    for (double value : values)
        writer.f64(value);
    StateReader reader(writer.bytes(), "test");
    for (double value : values) {
        const double got = reader.f64().value();
        uint64_t want_bits = 0, got_bits = 0;
        std::memcpy(&want_bits, &value, sizeof value);
        std::memcpy(&got_bits, &got, sizeof got);
        EXPECT_EQ(got_bits, want_bits);
    }
}

TEST(StateCodec, TruncationIsAnErrorNotUb)
{
    StateWriter writer;
    writer.u64(7);
    for (size_t keep = 0; keep < writer.bytes().size(); ++keep) {
        StateReader reader(
            std::string_view(writer.bytes().data(), keep), "short");
        auto value = reader.u64();
        ASSERT_FALSE(value.ok());
        EXPECT_NE(value.error().str().find("short"), std::string::npos);
    }
}

TEST(StateCodec, ExpectEndRejectsTrailingBytes)
{
    StateWriter writer;
    writer.u8(1);
    writer.u8(2);
    StateReader reader(writer.bytes(), "test");
    EXPECT_TRUE(reader.u8().ok());
    EXPECT_FALSE(reader.expectEnd().ok());
    EXPECT_EQ(reader.remaining(), 1u);
}

TEST(StateCodec, StringLengthBeyondBufferIsAnError)
{
    StateWriter writer;
    writer.u64(1u << 20);  // claims a megabyte that is not there
    StateReader reader(writer.bytes(), "test");
    EXPECT_FALSE(reader.str().ok());
}

TEST(StateCodec, DoublesCountBeyondBufferIsAnError)
{
    StateWriter writer;
    writer.u64(std::numeric_limits<uint64_t>::max());  // overflow bait
    StateReader reader(writer.bytes(), "test");
    EXPECT_FALSE(reader.doubles().ok());
}

TEST(StateHeader, RoundTripAndMismatches)
{
    StateWriter writer;
    writeStateHeader(writer, "bmbp", 3);
    {
        StateReader reader(writer.bytes(), "test");
        EXPECT_TRUE(readStateHeader(reader, "bmbp", 3).ok());
        EXPECT_TRUE(reader.expectEnd().ok());
    }
    {
        // A payload saved by another predictor type is not applicable.
        StateReader reader(writer.bytes(), "test");
        auto result = readStateHeader(reader, "lognormal", 3);
        ASSERT_FALSE(result.ok());
        EXPECT_NE(result.error().str().find("bmbp"), std::string::npos);
        EXPECT_NE(result.error().str().find("lognormal"),
                  std::string::npos);
    }
    {
        StateReader reader(writer.bytes(), "test");
        EXPECT_FALSE(readStateHeader(reader, "bmbp", 4).ok());
    }
}

TEST(Snapshot, RoundTrip)
{
    const std::string dir = freshDir("roundtrip");
    const std::string path = dir + "/snapshot-0000000001.qds";
    std::string payload = "opaque predictor state \x00\x01\x02";
    payload[23] = '\0';
    ASSERT_TRUE(writeSnapshotFile(path, payload).ok());
    auto read = readSnapshotFile(path);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read.value(), payload);
}

TEST(Snapshot, EmptyPayloadRoundTrips)
{
    const std::string dir = freshDir("empty");
    const std::string path = dir + "/s.qds";
    ASSERT_TRUE(writeSnapshotFile(path, "").ok());
    auto read = readSnapshotFile(path);
    ASSERT_TRUE(read.ok());
    EXPECT_TRUE(read.value().empty());
}

TEST(Snapshot, EveryBitFlipDetected)
{
    // Flip one bit anywhere — header or payload — and the read must
    // fail. This is the whole point of the double CRC.
    const std::string dir = freshDir("bitflip");
    const std::string path = dir + "/s.qds";
    ASSERT_TRUE(writeSnapshotFile(path, "payload-under-test").ok());
    auto clean = readFileBytes(path);
    ASSERT_TRUE(clean.ok());
    const std::string bytes = clean.value();
    for (size_t i = 0; i < bytes.size(); ++i) {
        std::string corrupt = bytes;
        corrupt[i] = static_cast<char>(corrupt[i] ^ 0x10);
        ASSERT_TRUE(atomicWriteFile(path, corrupt).ok());
        EXPECT_FALSE(readSnapshotFile(path).ok())
            << "bit flip at byte " << i << " went undetected";
    }
}

TEST(Snapshot, TruncationRejected)
{
    const std::string dir = freshDir("trunc");
    const std::string path = dir + "/s.qds";
    ASSERT_TRUE(writeSnapshotFile(path, "twelve bytes").ok());
    auto clean = readFileBytes(path);
    ASSERT_TRUE(clean.ok());
    for (size_t keep : {size_t(0), size_t(10), size_t(27),
                        clean.value().size() - 1}) {
        ASSERT_TRUE(
            atomicWriteFile(path, clean.value().substr(0, keep)).ok());
        EXPECT_FALSE(readSnapshotFile(path).ok()) << "kept " << keep;
    }
}

TEST(Snapshot, TrailingGarbageRejected)
{
    // Exact-size check: a snapshot with bytes after the payload is not
    // the file the writer produced.
    const std::string dir = freshDir("tail");
    const std::string path = dir + "/s.qds";
    ASSERT_TRUE(writeSnapshotFile(path, "payload").ok());
    auto clean = readFileBytes(path);
    ASSERT_TRUE(clean.ok());
    ASSERT_TRUE(atomicWriteFile(path, clean.value() + "x").ok());
    EXPECT_FALSE(readSnapshotFile(path).ok());
}

TEST(Snapshot, WrongMagicNamesTheCheck)
{
    const std::string dir = freshDir("magic");
    const std::string path = dir + "/s.qds";
    ASSERT_TRUE(writeSnapshotFile(path, "payload").ok());
    auto clean = readFileBytes(path);
    ASSERT_TRUE(clean.ok());
    std::string corrupt = clean.value();
    corrupt.replace(0, 8, "NOTSNAPS");
    ASSERT_TRUE(atomicWriteFile(path, corrupt).ok());
    auto read = readSnapshotFile(path);
    ASSERT_FALSE(read.ok());
    EXPECT_NE(read.error().str().find("magic"), std::string::npos);
}

TEST(Snapshot, MissingFileIsAnError)
{
    EXPECT_FALSE(
        readSnapshotFile(::testing::TempDir() + "qdel_sw_absent.qds")
            .ok());
}

TEST(Wal, RoundTrip)
{
    const std::string dir = freshDir("wal");
    const std::string path = dir + "/wal-0000000003.qdw";
    {
        auto writer = WalWriter::create(path, 3);
        ASSERT_TRUE(writer.ok());
        WalWriter wal = std::move(writer).value();
        ASSERT_TRUE(
            wal.append({WalRecordType::Observation, 17.5}).ok());
        ASSERT_TRUE(wal.append({WalRecordType::Refit, 0.0}).ok());
        ASSERT_TRUE(
            wal.append({WalRecordType::FinalizeTraining, 0.0}).ok());
        ASSERT_TRUE(
            wal.append({WalRecordType::Observation, -0.0}).ok());
        ASSERT_TRUE(wal.sync().ok());
        ASSERT_TRUE(wal.close().ok());
    }
    auto contents = readWalFile(path);
    ASSERT_TRUE(contents.ok());
    const WalContents &wal = contents.value();
    EXPECT_EQ(wal.snapshotSeq, 3u);
    EXPECT_EQ(wal.droppedTailBytes, 0u);
    ASSERT_EQ(wal.records.size(), 4u);
    EXPECT_EQ(wal.records[0].type, WalRecordType::Observation);
    EXPECT_DOUBLE_EQ(wal.records[0].value, 17.5);
    EXPECT_EQ(wal.records[1].type, WalRecordType::Refit);
    EXPECT_EQ(wal.records[2].type, WalRecordType::FinalizeTraining);
    EXPECT_TRUE(std::signbit(wal.records[3].value));
}

TEST(Wal, EmptySegmentIsValid)
{
    const std::string dir = freshDir("walempty");
    const std::string path = dir + "/wal-0000000000.qdw";
    {
        auto writer = WalWriter::create(path, 0);
        ASSERT_TRUE(writer.ok());
        ASSERT_TRUE(std::move(writer).value().close().ok());
    }
    auto contents = readWalFile(path);
    ASSERT_TRUE(contents.ok());
    EXPECT_EQ(contents.value().snapshotSeq, 0u);
    EXPECT_TRUE(contents.value().records.empty());
}

TEST(Wal, TornTailYieldsValidPrefix)
{
    // The lenient-tail contract: truncate the file at every byte
    // boundary and the reader must return the longest record prefix
    // that verifies, accounting for the dropped tail.
    const std::string dir = freshDir("torn");
    const std::string path = dir + "/wal-0000000001.qdw";
    {
        auto writer = WalWriter::create(path, 1);
        ASSERT_TRUE(writer.ok());
        WalWriter wal = std::move(writer).value();
        for (int i = 0; i < 5; ++i) {
            ASSERT_TRUE(
                wal.append({WalRecordType::Observation, double(i)})
                    .ok());
        }
        ASSERT_TRUE(wal.close().ok());
    }
    auto clean = readFileBytes(path);
    ASSERT_TRUE(clean.ok());
    const std::string bytes = clean.value();
    const size_t header = 24;
    size_t last_count = 5;
    for (size_t keep = bytes.size(); keep >= header; --keep) {
        ASSERT_TRUE(
            atomicWriteFile(path, bytes.substr(0, keep)).ok());
        auto contents = readWalFile(path);
        ASSERT_TRUE(contents.ok()) << "kept " << keep;
        const WalContents &wal = contents.value();
        // Records only ever disappear whole as the tail shrinks.
        EXPECT_LE(wal.records.size(), last_count);
        last_count = wal.records.size();
        EXPECT_EQ(wal.records.size() * 17 + header + wal.droppedTailBytes,
                  keep);
        for (size_t i = 0; i < wal.records.size(); ++i)
            EXPECT_DOUBLE_EQ(wal.records[i].value, double(i));
        // A cut at a record boundary is indistinguishable from a
        // shorter segment; only a mid-record cut leaves a note.
        EXPECT_EQ(wal.droppedTailBytes > 0, !wal.note.empty());
    }
    EXPECT_EQ(last_count, 0u);
}

TEST(Wal, CorruptRecordEndsTheSegmentThere)
{
    const std::string dir = freshDir("corrupt");
    const std::string path = dir + "/wal-0000000001.qdw";
    {
        auto writer = WalWriter::create(path, 1);
        ASSERT_TRUE(writer.ok());
        WalWriter wal = std::move(writer).value();
        for (int i = 0; i < 4; ++i) {
            ASSERT_TRUE(
                wal.append({WalRecordType::Observation, double(i)})
                    .ok());
        }
        ASSERT_TRUE(wal.close().ok());
    }
    auto clean = readFileBytes(path);
    ASSERT_TRUE(clean.ok());
    std::string corrupt = clean.value();
    // Flip a bit inside record 2's payload (header 24 + two 17-byte
    // records + frame 8 puts us in the third record's payload).
    corrupt[24 + 2 * 17 + 8] ^= 0x01;
    ASSERT_TRUE(atomicWriteFile(path, corrupt).ok());
    auto contents = readWalFile(path);
    ASSERT_TRUE(contents.ok());
    const WalContents &wal = contents.value();
    ASSERT_EQ(wal.records.size(), 2u);  // the prefix before the damage
    EXPECT_GT(wal.droppedTailBytes, 0u);
    EXPECT_FALSE(wal.note.empty());
}

// A lying write() can drop a record cleanly from the middle of a
// segment (zero bytes persisted, success reported, later appends land
// contiguously). Every surviving record still has a self-consistent
// frame, so only the chained CRC — each record's checksum seeded by
// its predecessor's — can notice the hole. Replaying past it would
// reconstruct a non-prefix history, which breaks crash equivalence.
TEST(Wal, MissingMiddleRecordBreaksTheChain)
{
    const std::string dir = freshDir("hole");
    const std::string path = dir + "/wal-0000000001.qdw";
    {
        auto writer = WalWriter::create(path, 1);
        ASSERT_TRUE(writer.ok());
        WalWriter wal = std::move(writer).value();
        for (int i = 0; i < 4; ++i) {
            ASSERT_TRUE(
                wal.append({WalRecordType::Observation, double(i)})
                    .ok());
        }
        ASSERT_TRUE(wal.close().ok());
    }
    auto clean = readFileBytes(path);
    ASSERT_TRUE(clean.ok());
    // Excise record 2 (header 24, records are 17 bytes each) so
    // records 0, 1, 3 sit contiguously on disk.
    std::string holed = clean.value();
    holed.erase(24 + 2 * 17, 17);
    ASSERT_TRUE(atomicWriteFile(path, holed).ok());
    auto contents = readWalFile(path);
    ASSERT_TRUE(contents.ok());
    const WalContents &wal = contents.value();
    ASSERT_EQ(wal.records.size(), 2u);  // the true prefix, not 0,1,3
    EXPECT_EQ(wal.records[0].value, 0.0);
    EXPECT_EQ(wal.records[1].value, 1.0);
    EXPECT_EQ(wal.droppedTailBytes, 17u);  // record 3, now orphaned
    EXPECT_NE(wal.note.find("chain"), std::string::npos);
}

TEST(Wal, BadHeaderFailsTheWholeSegment)
{
    const std::string dir = freshDir("header");
    const std::string path = dir + "/wal-0000000001.qdw";
    {
        auto writer = WalWriter::create(path, 1);
        ASSERT_TRUE(writer.ok());
        WalWriter wal = std::move(writer).value();
        ASSERT_TRUE(
            wal.append({WalRecordType::Observation, 1.0}).ok());
        ASSERT_TRUE(wal.close().ok());
    }
    auto clean = readFileBytes(path);
    ASSERT_TRUE(clean.ok());
    // Any damage inside the 24-byte header is unrecoverable.
    for (size_t i : {size_t(0), size_t(9), size_t(15), size_t(22)}) {
        std::string corrupt = clean.value();
        corrupt[i] = static_cast<char>(corrupt[i] ^ 0x40);
        ASSERT_TRUE(atomicWriteFile(path, corrupt).ok());
        EXPECT_FALSE(readWalFile(path).ok()) << "header byte " << i;
    }
    // So does a file shorter than the header.
    ASSERT_TRUE(
        atomicWriteFile(path, clean.value().substr(0, 12)).ok());
    EXPECT_FALSE(readWalFile(path).ok());
}

TEST(Wal, BlobRecordsRoundTripAmongTypedRecords)
{
    const std::string dir = freshDir("blob");
    const std::string path = dir + "/wal-0000000002.qdw";
    // Payloads that exercise the framing: empty, embedded NULs, every
    // byte value, and a payload that *looks* like a typed record.
    std::string all_bytes;
    for (int b = 0; b < 256; ++b)
        all_bytes.push_back(static_cast<char>(b));
    const std::string looks_typed("\x01payload", 8);
    {
        auto writer = WalWriter::create(path, 2);
        ASSERT_TRUE(writer.ok());
        WalWriter wal = std::move(writer).value();
        ASSERT_TRUE(
            wal.append({WalRecordType::Blob, 0.0, std::string()}).ok());
        ASSERT_TRUE(
            wal.append({WalRecordType::Observation, 4.25}).ok());
        ASSERT_TRUE(
            wal.append({WalRecordType::Blob, 0.0, all_bytes}).ok());
        ASSERT_TRUE(
            wal.append({WalRecordType::Blob, 0.0, looks_typed}).ok());
        ASSERT_TRUE(wal.close().ok());
    }
    auto contents = readWalFile(path);
    ASSERT_TRUE(contents.ok());
    const WalContents &wal = contents.value();
    EXPECT_EQ(wal.droppedTailBytes, 0u);
    ASSERT_EQ(wal.records.size(), 4u);
    EXPECT_EQ(wal.records[0].type, WalRecordType::Blob);
    EXPECT_TRUE(wal.records[0].blob.empty());
    EXPECT_EQ(wal.records[1].type, WalRecordType::Observation);
    EXPECT_DOUBLE_EQ(wal.records[1].value, 4.25);
    EXPECT_EQ(wal.records[2].type, WalRecordType::Blob);
    EXPECT_EQ(wal.records[2].blob, all_bytes);
    EXPECT_EQ(wal.records[3].type, WalRecordType::Blob);
    EXPECT_EQ(wal.records[3].blob, looks_typed);
}

TEST(Wal, BlobAtTheSizeCapRoundTrips)
{
    const std::string dir = freshDir("blobcap");
    const std::string path = dir + "/wal-0000000000.qdw";
    const std::string big(kMaxWalBlobBytes, '\x5a');
    {
        auto writer = WalWriter::create(path, 0);
        ASSERT_TRUE(writer.ok());
        WalWriter wal = std::move(writer).value();
        ASSERT_TRUE(wal.append({WalRecordType::Blob, 0.0, big}).ok());
        ASSERT_TRUE(wal.close().ok());
    }
    auto contents = readWalFile(path);
    ASSERT_TRUE(contents.ok());
    ASSERT_EQ(contents.value().records.size(), 1u);
    EXPECT_EQ(contents.value().records[0].blob.size(),
              size_t(kMaxWalBlobBytes));
    EXPECT_EQ(contents.value().records[0].blob, big);
}

TEST(Wal, TornBlobTailYieldsValidPrefix)
{
    // The lenient-tail contract must hold for variable-length records
    // too: cut a blob record anywhere and the reader keeps exactly the
    // records before it.
    const std::string dir = freshDir("blobtorn");
    const std::string path = dir + "/wal-0000000001.qdw";
    {
        auto writer = WalWriter::create(path, 1);
        ASSERT_TRUE(writer.ok());
        WalWriter wal = std::move(writer).value();
        ASSERT_TRUE(
            wal.append({WalRecordType::Blob, 0.0, "first"}).ok());
        ASSERT_TRUE(
            wal.append({WalRecordType::Blob, 0.0, "second-longer"}).ok());
        ASSERT_TRUE(wal.close().ok());
    }
    auto clean = readFileBytes(path);
    ASSERT_TRUE(clean.ok());
    const std::string bytes = clean.value();
    const size_t header = 24;
    const size_t first_record_end = header + 8 + 1 + 5;
    for (size_t keep = bytes.size() - 1; keep >= header; --keep) {
        ASSERT_TRUE(atomicWriteFile(path, bytes.substr(0, keep)).ok());
        auto contents = readWalFile(path);
        ASSERT_TRUE(contents.ok()) << "kept " << keep;
        const WalContents &wal = contents.value();
        if (keep >= first_record_end) {
            ASSERT_EQ(wal.records.size(), 1u) << "kept " << keep;
            EXPECT_EQ(wal.records[0].blob, "first");
        } else {
            EXPECT_TRUE(wal.records.empty()) << "kept " << keep;
        }
    }
}

} // namespace
} // namespace persist
} // namespace qdel
