/**
 * @file
 * Tests for the durable file primitives: the CRC-32 reference vectors,
 * the atomic write-temp + fsync + rename publication pattern, the
 * FileWriter lifecycle, and the directory helpers recovery relies on.
 */

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "persist/io.hh"

namespace qdel {
namespace persist {
namespace {

/** Fresh empty scratch directory unique to @p name. */
std::string
freshDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + "qdel_io_" + name;
    std::filesystem::remove_all(dir);
    EXPECT_TRUE(ensureDirectory(dir).ok());
    return dir;
}

TEST(Crc32, ReferenceVectors)
{
    // The IEEE 802.3 check value every CRC-32 implementation quotes.
    const std::string check = "123456789";
    EXPECT_EQ(crc32(check.data(), check.size()), 0xCBF43926u);
    EXPECT_EQ(crc32("", 0), 0u);
    // One-byte vectors pin the reflected polynomial orientation.
    const char zero = '\0';
    EXPECT_EQ(crc32(&zero, 1), 0xD202EF8Du);
    const char a = 'a';
    EXPECT_EQ(crc32(&a, 1), 0xE8B7BE43u);
}

TEST(Crc32, ChainingMatchesOneShot)
{
    const std::string text = "predicting bounds on queuing delay";
    const uint32_t whole = crc32(text.data(), text.size());
    for (size_t split = 0; split <= text.size(); ++split) {
        const uint32_t first = crc32(text.data(), split);
        const uint32_t chained =
            crc32(text.data() + split, text.size() - split, first);
        EXPECT_EQ(chained, whole) << "split at " << split;
    }
}

TEST(Crc32, DetectsSingleBitFlips)
{
    std::string data(64, '\x5a');
    const uint32_t clean = crc32(data.data(), data.size());
    for (size_t byte : {size_t(0), size_t(31), data.size() - 1}) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string corrupt = data;
            corrupt[byte] =
                static_cast<char>(corrupt[byte] ^ (1 << bit));
            EXPECT_NE(crc32(corrupt.data(), corrupt.size()), clean);
        }
    }
}

TEST(Io, AtomicWriteFilePublishesExactBytes)
{
    const std::string dir = freshDir("atomic");
    const std::string path = dir + "/payload.bin";
    std::string bytes = "binary\0payload\xff with nul";
    bytes[6] = '\0';
    ASSERT_TRUE(atomicWriteFile(path, bytes).ok());

    auto read = readFileBytes(path);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read.value(), bytes);

    // The temp file must not survive a successful publication.
    auto entries = listDirectory(dir);
    ASSERT_TRUE(entries.ok());
    EXPECT_EQ(entries.value().size(), 1u);
    EXPECT_EQ(entries.value().front(), "payload.bin");
}

TEST(Io, AtomicWriteFileReplacesExisting)
{
    const std::string dir = freshDir("replace");
    const std::string path = dir + "/state.bin";
    ASSERT_TRUE(atomicWriteFile(path, "old generation").ok());
    ASSERT_TRUE(atomicWriteFile(path, "new").ok());
    auto read = readFileBytes(path);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read.value(), "new");  // fully replaced, not appended
}

TEST(Io, FileWriterLifecycle)
{
    const std::string dir = freshDir("writer");
    const std::string path = dir + "/wal.bin";
    auto writer = FileWriter::create(path);
    ASSERT_TRUE(writer.ok());
    FileWriter file = std::move(writer).value();
    EXPECT_TRUE(file.isOpen());
    EXPECT_EQ(file.path(), path);
    ASSERT_TRUE(file.writeAll("abc", 3).ok());
    ASSERT_TRUE(file.writeAll("def", 3).ok());
    ASSERT_TRUE(file.sync().ok());
    ASSERT_TRUE(file.close().ok());
    EXPECT_FALSE(file.isOpen());

    auto read = readFileBytes(path);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read.value(), "abcdef");
}

TEST(Io, FileWriterMoveTransfersOwnership)
{
    const std::string dir = freshDir("move");
    auto writer = FileWriter::create(dir + "/moved.bin");
    ASSERT_TRUE(writer.ok());
    FileWriter a = std::move(writer).value();
    FileWriter b = std::move(a);
    EXPECT_FALSE(a.isOpen());
    EXPECT_TRUE(b.isOpen());
    ASSERT_TRUE(b.writeAll("x", 1).ok());
    ASSERT_TRUE(b.close().ok());
}

TEST(Io, CreateFailsInMissingDirectory)
{
    auto writer =
        FileWriter::create(::testing::TempDir() +
                           "qdel_io_no_such_dir/sub/file.bin");
    EXPECT_FALSE(writer.ok());
}

TEST(Io, ReadFileBytesMissingFileIsError)
{
    auto read = readFileBytes(::testing::TempDir() + "qdel_io_missing");
    ASSERT_FALSE(read.ok());
    EXPECT_NE(read.error().str().find("qdel_io_missing"),
              std::string::npos);
}

TEST(Io, EnsureDirectoryCreatesParents)
{
    const std::string root = ::testing::TempDir() + "qdel_io_nested";
    std::filesystem::remove_all(root);
    const std::string deep = root + "/a/b/c";
    ASSERT_TRUE(ensureDirectory(deep).ok());
    EXPECT_TRUE(pathExists(deep));
    // Idempotent on an existing directory.
    EXPECT_TRUE(ensureDirectory(deep).ok());
}

TEST(Io, ListDirectoryReturnsPlainNames)
{
    const std::string dir = freshDir("list");
    ASSERT_TRUE(atomicWriteFile(dir + "/one", "1").ok());
    ASSERT_TRUE(atomicWriteFile(dir + "/two", "2").ok());
    auto entries = listDirectory(dir);
    ASSERT_TRUE(entries.ok());
    std::vector<std::string> names = entries.value();
    std::sort(names.begin(), names.end());
    EXPECT_EQ(names, (std::vector<std::string>{"one", "two"}));
}

TEST(Io, RemoveFileMissingIsNotAnError)
{
    const std::string dir = freshDir("remove");
    const std::string path = dir + "/victim";
    ASSERT_TRUE(atomicWriteFile(path, "x").ok());
    EXPECT_TRUE(removeFile(path).ok());
    EXPECT_FALSE(pathExists(path));
    EXPECT_TRUE(removeFile(path).ok());  // second delete: already gone
}

} // namespace
} // namespace persist
} // namespace qdel
