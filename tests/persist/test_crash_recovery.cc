/**
 * @file
 * Crash-recovery property tests for the PredictorStore.
 *
 * The central property: run a fixed predictor workload through the
 * store while a deterministic fault is armed, then "restart" (reset
 * the fault hook) and recover. Whatever the fault did — short write,
 * torn write, bit flip, ENOSPC, failed fsync/rename, death before a
 * snapshot's publishing rename — the recovered predictor state must be
 * byte-identical to some *prefix* of the fault-free history (pre- or
 * post-record, never a mix), and continuing the remaining workload
 * from that prefix must land on the exact fault-free final state.
 *
 * The sweep covers every fault kind at trigger points spread across
 * the whole persistence-op sequence; QDEL_FAULT_ITERATIONS scales the
 * number of trigger points per kind (default 12; CI raises it).
 */

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/bmbp_predictor.hh"
#include "core/lognormal_predictor.hh"
#include "persist/fault_injection.hh"
#include "persist/io.hh"
#include "persist/predictor_store.hh"
#include "persist/state_codec.hh"

namespace qdel {
namespace persist {
namespace {

std::string
freshDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + "qdel_cr_" + name;
    std::filesystem::remove_all(dir);
    EXPECT_TRUE(ensureDirectory(dir).ok());
    return dir;
}

/** Serialized predictor state — the byte-equality currency. */
std::string
serialize(const core::Predictor &predictor)
{
    StateWriter writer;
    auto ok = predictor.saveState(writer);
    EXPECT_TRUE(ok.ok());
    return writer.take();
}

/**
 * The workload: a training prefix, a finalize, then observations with
 * periodic refits and a regime change late enough that change-point
 * trims straddle checkpoint boundaries.
 */
std::vector<WalRecord>
buildOps()
{
    std::vector<WalRecord> ops;
    for (int i = 0; i < 10; ++i)
        ops.push_back({WalRecordType::Observation, 5.0 + i % 7});
    ops.push_back({WalRecordType::FinalizeTraining, 0.0});
    for (int i = 0; i < 40; ++i) {
        const double wait =
            i < 25 ? 8.0 + i % 5 : 900.0 + i;  // regime change at 25
        ops.push_back({WalRecordType::Observation, wait});
        if (i % 5 == 4)
            ops.push_back({WalRecordType::Refit, 0.0});
    }
    ops.push_back({WalRecordType::Refit, 0.0});
    return ops;
}

Expected<Unit>
applyViaStore(PredictorStore &store, const WalRecord &op)
{
    switch (op.type) {
    case WalRecordType::Observation:
        return store.observe(op.value);
    case WalRecordType::Refit:
        return store.refit();
    case WalRecordType::FinalizeTraining:
        return store.finalizeTraining();
    }
    return Unit{};
}

void
applyDirect(core::Predictor &predictor, const WalRecord &op)
{
    switch (op.type) {
    case WalRecordType::Observation:
        predictor.observe(op.value);
        break;
    case WalRecordType::Refit:
        predictor.refit();
        break;
    case WalRecordType::FinalizeTraining:
        predictor.finalizeTraining();
        break;
    }
}

/** Per-kind trigger-point count, scaled by QDEL_FAULT_ITERATIONS. */
size_t
sweepIterations()
{
    if (const char *env = std::getenv("QDEL_FAULT_ITERATIONS")) {
        char *end = nullptr;
        const unsigned long long parsed = std::strtoull(env, &end, 10);
        if (end != env && *end == '\0' && parsed > 0)
            return static_cast<size_t>(parsed);
    }
    return 12;
}

PredictorStoreConfig
storeConfig(const std::string &dir)
{
    PredictorStoreConfig config;
    config.checkpoint.dir = dir;
    config.checkpoint.keepSnapshots = 2;
    config.checkpoint.syncEveryRecords = 1;
    config.checkpointEveryRecords = 16;
    return config;
}

/**
 * Run the crash-equivalence sweep for one predictor family.
 * @p makePredictor must build identically-configured instances.
 */
template <typename MakePredictor>
void
crashEquivalenceSweep(const std::string &tag,
                      const MakePredictor &makePredictor,
                      size_t iterations)
{
    const std::vector<WalRecord> ops = buildOps();

    // Fault-free shadow history: shadows[i] is the exact serialized
    // state after the first i operations.
    std::vector<std::string> shadows;
    auto shadow = makePredictor();
    shadows.push_back(serialize(*shadow));
    for (const WalRecord &op : ops) {
        applyDirect(*shadow, op);
        shadows.push_back(serialize(*shadow));
    }

    // Learn how many persistence ops the fault-free workload issues,
    // so the trigger sweep spans the whole sequence.
    fault::reset();
    {
        const std::string dir = freshDir(tag + "_profile");
        auto predictor = makePredictor();
        auto store = PredictorStore::open(storeConfig(dir),
                                          predictor.get());
        ASSERT_TRUE(store.ok());
        for (const WalRecord &op : ops)
            ASSERT_TRUE(applyViaStore(store.value(), op).ok());
        EXPECT_EQ(serialize(*predictor), shadows.back());
    }
    const uint64_t total_ops = fault::opCount();
    ASSERT_GT(total_ops, 0u);

    const fault::Kind kinds[] = {
        fault::Kind::FailOpen,          fault::Kind::ShortWrite,
        fault::Kind::TornWrite,         fault::Kind::BitFlip,
        fault::Kind::ENoSpc,            fault::Kind::FailFsync,
        fault::Kind::CrashBeforeRename, fault::Kind::FailRename,
    };
    const uint64_t stride =
        std::max<uint64_t>(1, total_ops / iterations);

    size_t cycle = 0;
    for (fault::Kind kind : kinds) {
        for (uint64_t trigger = 0; trigger < total_ops;
             trigger += stride, ++cycle) {
            SCOPED_TRACE(std::string(fault::kindName(kind)) +
                         " @ op " + std::to_string(trigger));
            const std::string dir =
                freshDir(tag + "_" + std::to_string(cycle));

            // The doomed run: stop at the first persistence error
            // (the process "died" or gave up).
            fault::configure({kind, trigger, 1234 + cycle});
            {
                auto victim = makePredictor();
                auto store = PredictorStore::open(storeConfig(dir),
                                                  victim.get());
                if (store.ok()) {
                    for (const WalRecord &op : ops) {
                        if (!applyViaStore(store.value(), op).ok())
                            break;
                    }
                }
            }

            // Restart: recover into a fresh instance.
            fault::reset();
            auto recovered = makePredictor();
            auto reopened = PredictorStore::open(storeConfig(dir),
                                                 recovered.get());
            ASSERT_TRUE(reopened.ok())
                << reopened.error().str();

            // Property 1: the recovered state is exactly some prefix
            // of the fault-free history — never a torn hybrid.
            const std::string got = serialize(*recovered);
            size_t prefix = shadows.size();
            for (size_t i = 0; i < shadows.size(); ++i) {
                if (shadows[i] == got) {
                    prefix = i;
                    break;
                }
            }
            ASSERT_LT(prefix, shadows.size())
                << "recovered state matches no fault-free prefix";

            // Property 2: replaying the remaining operations lands on
            // the exact fault-free final state.
            for (size_t i = prefix; i < ops.size(); ++i) {
                ASSERT_TRUE(
                    applyViaStore(reopened.value(), ops[i]).ok());
            }
            EXPECT_EQ(serialize(*recovered), shadows.back());
        }
    }
}

TEST(CrashRecovery, BmbpCrashEquivalence)
{
    core::BmbpConfig config;
    config.quantile = 0.5;
    config.confidence = 0.8;
    config.trimmingEnabled = true;
    config.runThresholdOverride = 2;
    auto make = [config] {
        return std::make_unique<core::BmbpPredictor>(config);
    };
    // The scenario must actually exercise the trimming machinery.
    {
        auto probe = make();
        for (const WalRecord &op : buildOps())
            applyDirect(*probe, op);
        ASSERT_GT(probe->trimCount(), 0u);
    }
    crashEquivalenceSweep("bmbp", make, sweepIterations());
    fault::reset();
}

TEST(CrashRecovery, LogNormalTrimCrashEquivalence)
{
    core::LogNormalConfig config;
    config.quantile = 0.5;
    config.confidence = 0.8;
    config.trimmingEnabled = true;
    config.runThresholdOverride = 2;
    auto make = [config] {
        return std::make_unique<core::LogNormalPredictor>(config);
    };
    // A lighter sweep: the mechanism is shared, this guards the
    // predictor-specific running-sum serialization.
    crashEquivalenceSweep("logn", make,
                          std::max<size_t>(1, sweepIterations() / 3));
    fault::reset();
}

TEST(CrashRecovery, LatestSnapshotRung)
{
    const std::string dir = freshDir("latest");
    fault::reset();
    core::BmbpConfig config;
    config.runThresholdOverride = 2;
    const std::vector<WalRecord> ops = buildOps();

    auto shadow = std::make_unique<core::BmbpPredictor>(config);
    for (const WalRecord &op : ops)
        applyDirect(*shadow, op);

    {
        auto predictor = std::make_unique<core::BmbpPredictor>(config);
        auto store =
            PredictorStore::open(storeConfig(dir), predictor.get());
        ASSERT_TRUE(store.ok());
        for (const WalRecord &op : ops)
            ASSERT_TRUE(applyViaStore(store.value(), op).ok());
    }
    auto recovered = std::make_unique<core::BmbpPredictor>(config);
    auto reopened =
        PredictorStore::open(storeConfig(dir), recovered.get());
    ASSERT_TRUE(reopened.ok());
    EXPECT_EQ(reopened.value().recovery().source,
              RecoverySource::LatestSnapshot);
    EXPECT_EQ(serialize(*recovered), serialize(*shadow));
}

TEST(CrashRecovery, PreviousSnapshotRungAfterSnapshotCorruption)
{
    const std::string dir = freshDir("previous");
    fault::reset();
    core::BmbpConfig config;
    config.runThresholdOverride = 2;
    const std::vector<WalRecord> ops = buildOps();

    auto shadow = std::make_unique<core::BmbpPredictor>(config);
    for (const WalRecord &op : ops)
        applyDirect(*shadow, op);

    {
        auto predictor = std::make_unique<core::BmbpPredictor>(config);
        auto store =
            PredictorStore::open(storeConfig(dir), predictor.get());
        ASSERT_TRUE(store.ok());
        for (const WalRecord &op : ops)
            ASSERT_TRUE(applyViaStore(store.value(), op).ok());
    }

    // Silently corrupt the newest snapshot on disk.
    auto entries = listDirectory(dir);
    ASSERT_TRUE(entries.ok());
    std::string newest;
    for (const std::string &name : entries.value()) {
        if (name.rfind("snapshot-", 0) == 0 && name > newest)
            newest = name;
    }
    ASSERT_FALSE(newest.empty());
    auto bytes = readFileBytes(dir + "/" + newest);
    ASSERT_TRUE(bytes.ok());
    std::string corrupt = bytes.value();
    ASSERT_GT(corrupt.size(), 40u);
    corrupt[40] = static_cast<char>(corrupt[40] ^ 0x01);
    ASSERT_TRUE(atomicWriteFile(dir + "/" + newest, corrupt).ok());

    // The WAL chain rolls the previous snapshot forward to the exact
    // final state — nothing is lost, only the rung changes.
    auto recovered = std::make_unique<core::BmbpPredictor>(config);
    auto reopened =
        PredictorStore::open(storeConfig(dir), recovered.get());
    ASSERT_TRUE(reopened.ok());
    EXPECT_EQ(reopened.value().recovery().source,
              RecoverySource::PreviousSnapshot);
    EXPECT_FALSE(reopened.value().recovery().notes.empty());
    EXPECT_EQ(serialize(*recovered), serialize(*shadow));
}

TEST(CrashRecovery, WalOnlyRungWithoutAnySnapshot)
{
    const std::string dir = freshDir("walonly");
    fault::reset();
    core::BmbpConfig config;
    config.runThresholdOverride = 2;
    const std::vector<WalRecord> ops = buildOps();

    auto shadow = std::make_unique<core::BmbpPredictor>(config);
    for (const WalRecord &op : ops)
        applyDirect(*shadow, op);

    PredictorStoreConfig no_snapshots = storeConfig(dir);
    no_snapshots.checkpointEveryRecords = 0;  // WAL only, ever
    {
        auto predictor = std::make_unique<core::BmbpPredictor>(config);
        auto store =
            PredictorStore::open(no_snapshots, predictor.get());
        ASSERT_TRUE(store.ok());
        for (const WalRecord &op : ops)
            ASSERT_TRUE(applyViaStore(store.value(), op).ok());
    }
    auto recovered = std::make_unique<core::BmbpPredictor>(config);
    auto reopened =
        PredictorStore::open(no_snapshots, recovered.get());
    ASSERT_TRUE(reopened.ok());
    EXPECT_EQ(reopened.value().recovery().source,
              RecoverySource::WalOnly);
    EXPECT_EQ(reopened.value().recovery().walRecordsApplied,
              ops.size());
    EXPECT_EQ(serialize(*recovered), serialize(*shadow));
}

TEST(CrashRecovery, ColdStartWhenNothingIsSalvageable)
{
    const std::string dir = freshDir("cold");
    fault::reset();
    core::BmbpConfig config;
    config.runThresholdOverride = 2;
    const std::vector<WalRecord> ops = buildOps();

    {
        auto predictor = std::make_unique<core::BmbpPredictor>(config);
        auto store =
            PredictorStore::open(storeConfig(dir), predictor.get());
        ASSERT_TRUE(store.ok());
        for (const WalRecord &op : ops)
            ASSERT_TRUE(applyViaStore(store.value(), op).ok());
    }
    // Corrupt every snapshot; pruning has already removed wal-0, so
    // no rung can salvage anything.
    auto entries = listDirectory(dir);
    ASSERT_TRUE(entries.ok());
    bool saw_snapshot = false;
    for (const std::string &name : entries.value()) {
        EXPECT_NE(name, "wal-0000000000.qdw")
            << "pruning should have removed wal-0 by now";
        if (name.rfind("snapshot-", 0) != 0)
            continue;
        saw_snapshot = true;
        auto bytes = readFileBytes(dir + "/" + name);
        ASSERT_TRUE(bytes.ok());
        std::string corrupt = bytes.value();
        corrupt[corrupt.size() - 1] =
            static_cast<char>(corrupt[corrupt.size() - 1] ^ 0xFF);
        ASSERT_TRUE(atomicWriteFile(dir + "/" + name, corrupt).ok());
    }
    ASSERT_TRUE(saw_snapshot);

    auto recovered = std::make_unique<core::BmbpPredictor>(config);
    auto reopened =
        PredictorStore::open(storeConfig(dir), recovered.get());
    ASSERT_TRUE(reopened.ok());
    EXPECT_EQ(reopened.value().recovery().source,
              RecoverySource::ColdStart);
    EXPECT_FALSE(reopened.value().recovery().notes.empty());
    auto pristine = std::make_unique<core::BmbpPredictor>(config);
    EXPECT_EQ(serialize(*recovered), serialize(*pristine));
}

} // namespace
} // namespace persist
} // namespace qdel
