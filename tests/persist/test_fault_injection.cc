/**
 * @file
 * Tests for the deterministic fault-injection hook: each fault kind's
 * exact observable effect on disk, the op-index arming, the one-shot
 * firing, the crashed latch, and the environment-variable plan.
 */

#include <cstdlib>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "persist/fault_injection.hh"
#include "persist/io.hh"

namespace qdel {
namespace {

using persist::FileWriter;

/** Disarm around every test: the hook state is process-global. */
class FaultInjection : public ::testing::Test
{
  protected:
    void SetUp() override { fault::reset(); }
    void TearDown() override { fault::reset(); }

    std::string
    freshDir(const std::string &name)
    {
        const std::string dir = ::testing::TempDir() + "qdel_fi_" + name;
        std::filesystem::remove_all(dir);
        EXPECT_TRUE(persist::ensureDirectory(dir).ok());
        return dir;
    }

    size_t
    fileSize(const std::string &path)
    {
        auto bytes = persist::readFileBytes(path);
        return bytes.ok() ? bytes.value().size() : 0;
    }
};

TEST_F(FaultInjection, DisabledHookCountsOpsOnly)
{
    const std::string dir = freshDir("count");
    EXPECT_FALSE(fault::enabled());
    const uint64_t before = fault::opCount();
    auto writer = FileWriter::create(dir + "/f");  // open
    ASSERT_TRUE(writer.ok());
    FileWriter file = std::move(writer).value();
    ASSERT_TRUE(file.writeAll("abc", 3).ok());     // write
    ASSERT_TRUE(file.sync().ok());                 // fsync
    ASSERT_TRUE(file.close().ok());                // close: not hooked
    EXPECT_EQ(fault::opCount() - before, 3u);
    EXPECT_FALSE(fault::crashed());
}

TEST_F(FaultInjection, FailOpenIsOneShot)
{
    const std::string dir = freshDir("open");
    fault::configure({fault::Kind::FailOpen, 0, 1});
    auto failed = FileWriter::create(dir + "/f");
    ASSERT_FALSE(failed.ok());
    EXPECT_NE(failed.error().str().find("fault injection"),
              std::string::npos);
    EXPECT_FALSE(fault::crashed());
    // One-shot: the "retry" succeeds.
    EXPECT_TRUE(FileWriter::create(dir + "/f").ok());
}

TEST_F(FaultInjection, ShortWriteLeavesPrefixAndLatchesCrash)
{
    const std::string dir = freshDir("short");
    const std::string data(100, 'x');
    fault::configure({fault::Kind::ShortWrite, 1, 7});
    auto writer = FileWriter::create(dir + "/f");
    ASSERT_TRUE(writer.ok());
    FileWriter file = std::move(writer).value();
    ASSERT_FALSE(file.writeAll(data.data(), data.size()).ok());
    EXPECT_TRUE(fault::crashed());
    // The dead process cannot persist anything any more.
    EXPECT_FALSE(FileWriter::create(dir + "/g").ok());
    EXPECT_FALSE(file.sync().ok());

    file = FileWriter();  // close fd (destructor path, no sync)
    EXPECT_LT(fileSize(dir + "/f"), data.size());  // strict prefix

    // Restart: a reset process is healthy again.
    fault::reset();
    EXPECT_FALSE(fault::crashed());
    EXPECT_TRUE(FileWriter::create(dir + "/g").ok());
}

TEST_F(FaultInjection, ShortWriteLengthIsSeedDeterministic)
{
    size_t sizes[2];
    for (int round = 0; round < 2; ++round) {
        const std::string dir =
            freshDir("seed" + std::to_string(round));
        const std::string data(100, 'y');
        fault::configure({fault::Kind::ShortWrite, 1, 42});
        {
            auto writer = FileWriter::create(dir + "/f");
            ASSERT_TRUE(writer.ok());
            FileWriter file = std::move(writer).value();
            EXPECT_FALSE(
                file.writeAll(data.data(), data.size()).ok());
        }
        fault::reset();
        sizes[round] = fileSize(dir + "/f");
    }
    EXPECT_EQ(sizes[0], sizes[1]);
}

TEST_F(FaultInjection, TornWriteLiesAboutSuccess)
{
    const std::string dir = freshDir("torn");
    const std::string data(100, 'z');
    fault::configure({fault::Kind::TornWrite, 1, 5});
    {
        auto writer = FileWriter::create(dir + "/f");
        ASSERT_TRUE(writer.ok());
        FileWriter file = std::move(writer).value();
        // The caller is told everything is fine...
        EXPECT_TRUE(file.writeAll(data.data(), data.size()).ok());
        EXPECT_TRUE(file.close().ok());
    }
    // ...but the bytes are not all there.
    EXPECT_LT(fileSize(dir + "/f"), data.size());
    EXPECT_FALSE(fault::crashed());
}

TEST_F(FaultInjection, BitFlipCorruptsExactlyOneBit)
{
    const std::string dir = freshDir("flip");
    const std::string data(64, '\x00');
    fault::configure({fault::Kind::BitFlip, 1, 11});
    {
        auto writer = FileWriter::create(dir + "/f");
        ASSERT_TRUE(writer.ok());
        FileWriter file = std::move(writer).value();
        EXPECT_TRUE(file.writeAll(data.data(), data.size()).ok());
        EXPECT_TRUE(file.close().ok());
    }
    auto read = persist::readFileBytes(dir + "/f");
    ASSERT_TRUE(read.ok());
    ASSERT_EQ(read.value().size(), data.size());
    int flipped_bits = 0;
    for (size_t i = 0; i < data.size(); ++i) {
        uint8_t diff = static_cast<uint8_t>(read.value()[i]) ^
                       static_cast<uint8_t>(data[i]);
        while (diff) {
            flipped_bits += diff & 1;
            diff >>= 1;
        }
    }
    EXPECT_EQ(flipped_bits, 1);
}

TEST_F(FaultInjection, ENoSpcFailsWithNothingWritten)
{
    const std::string dir = freshDir("enospc");
    fault::configure({fault::Kind::ENoSpc, 1, 1});
    auto writer = FileWriter::create(dir + "/f");
    ASSERT_TRUE(writer.ok());
    FileWriter file = std::move(writer).value();
    EXPECT_FALSE(file.writeAll("abcdef", 6).ok());
    EXPECT_FALSE(fault::crashed());
    EXPECT_TRUE(file.close().ok());
    EXPECT_EQ(fileSize(dir + "/f"), 0u);
}

TEST_F(FaultInjection, FailFsyncKeepsData)
{
    const std::string dir = freshDir("fsync");
    fault::configure({fault::Kind::FailFsync, 2, 1});
    auto writer = FileWriter::create(dir + "/f");
    ASSERT_TRUE(writer.ok());
    FileWriter file = std::move(writer).value();
    ASSERT_TRUE(file.writeAll("abc", 3).ok());
    EXPECT_FALSE(file.sync().ok());  // durability not promised...
    EXPECT_TRUE(file.close().ok());
    EXPECT_EQ(fileSize(dir + "/f"), 3u);  // ...but the data stays
    EXPECT_FALSE(fault::crashed());
}

TEST_F(FaultInjection, CrashBeforeRenameNeverPublishes)
{
    const std::string dir = freshDir("rename");
    const std::string path = dir + "/state";
    ASSERT_TRUE(persist::atomicWriteFile(path, "old").ok());
    fault::configure({fault::Kind::CrashBeforeRename, 0, 1});
    EXPECT_FALSE(persist::atomicWriteFile(path, "new").ok());
    EXPECT_TRUE(fault::crashed());
    fault::reset();
    // The published file is untouched; the wreckage is only a .tmp.
    auto read = persist::readFileBytes(path);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read.value(), "old");
    EXPECT_TRUE(persist::pathExists(path + ".tmp"));
}

TEST_F(FaultInjection, FailRenameIsRecoverable)
{
    const std::string dir = freshDir("failrename");
    const std::string path = dir + "/state";
    fault::configure({fault::Kind::FailRename, 0, 1});
    EXPECT_FALSE(persist::atomicWriteFile(path, "v1").ok());
    EXPECT_FALSE(fault::crashed());
    // One-shot: the retry publishes.
    EXPECT_TRUE(persist::atomicWriteFile(path, "v1").ok());
    auto read = persist::readFileBytes(path);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read.value(), "v1");
}

TEST_F(FaultInjection, TriggerOpDelaysTheFault)
{
    const std::string dir = freshDir("trigger");
    // Ops: open is index 0, the first write index 1, the second
    // index 2. triggerOp = 2 must spare the first write.
    fault::configure({fault::Kind::ShortWrite, 2, 1});
    auto writer = FileWriter::create(dir + "/f");
    ASSERT_TRUE(writer.ok());
    FileWriter file = std::move(writer).value();
    EXPECT_TRUE(file.writeAll("aa", 2).ok());
    EXPECT_FALSE(file.writeAll("bb", 2).ok());
    EXPECT_TRUE(fault::crashed());
}

TEST_F(FaultInjection, KindNamesRoundTrip)
{
    const fault::Kind all[] = {
        fault::Kind::None,
        fault::Kind::FailOpen,
        fault::Kind::ShortWrite,
        fault::Kind::TornWrite,
        fault::Kind::BitFlip,
        fault::Kind::ENoSpc,
        fault::Kind::FailFsync,
        fault::Kind::CrashBeforeRename,
        fault::Kind::FailRename,
    };
    for (fault::Kind kind : all) {
        fault::Kind parsed;
        ASSERT_TRUE(fault::parseKind(fault::kindName(kind), &parsed));
        EXPECT_EQ(parsed, kind);
    }
    fault::Kind parsed;
    EXPECT_FALSE(fault::parseKind("bogus", &parsed));
    EXPECT_FALSE(fault::parseKind("", &parsed));
}

TEST_F(FaultInjection, PlanFromEnv)
{
    ::setenv("QDEL_FAULT_KIND", "bit-flip", 1);
    ::setenv("QDEL_FAULT_OP", "17", 1);
    ::setenv("QDEL_FAULT_SEED", "99", 1);
    fault::Plan plan = fault::planFromEnv();
    EXPECT_EQ(plan.kind, fault::Kind::BitFlip);
    EXPECT_EQ(plan.triggerOp, 17u);
    EXPECT_EQ(plan.seed, 99u);

    ::setenv("QDEL_FAULT_OP", "not-a-number", 1);
    plan = fault::planFromEnv();
    EXPECT_EQ(plan.kind, fault::Kind::BitFlip);
    EXPECT_EQ(plan.triggerOp, 0u);  // unparsable op: default

    ::setenv("QDEL_FAULT_KIND", "bogus", 1);
    EXPECT_EQ(fault::planFromEnv().kind, fault::Kind::None);

    ::unsetenv("QDEL_FAULT_KIND");
    ::unsetenv("QDEL_FAULT_OP");
    ::unsetenv("QDEL_FAULT_SEED");
    EXPECT_EQ(fault::planFromEnv().kind, fault::Kind::None);
}

} // namespace
} // namespace qdel
