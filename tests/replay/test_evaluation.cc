/**
 * @file
 * Tests for the one-call experiment helpers (table-cell computation
 * and per-processor-range subdivision).
 */

#include <gtest/gtest.h>

#include "sim/replay/evaluation.hh"
#include "stats/rng.hh"

namespace qdel {
namespace sim {
namespace {

trace::Trace
syntheticTrace(size_t count, uint64_t seed)
{
    stats::Rng rng(seed);
    trace::Trace t;
    for (size_t i = 0; i < count; ++i) {
        trace::JobRecord job;
        job.submitTime = 1000.0 + static_cast<double>(i) * 120.0;
        job.waitSeconds = rng.logNormal(4.0, 1.5);
        // Populate the 1-4 and 5-16 bins only.
        job.procs = rng.bernoulli(0.6)
                        ? static_cast<int>(rng.uniformInt(1, 4))
                        : static_cast<int>(rng.uniformInt(5, 16));
        t.add(job);
    }
    return t;
}

TEST(Evaluation, BmbpCellOnStationaryData)
{
    auto t = syntheticTrace(5000, 1);
    core::PredictorOptions options;
    auto cell = evaluateTrace(t, "bmbp", options);
    EXPECT_EQ(cell.jobs, 5000u);
    EXPECT_EQ(cell.evaluated, 4500u);  // 10% training
    EXPECT_GE(cell.correctFraction, 0.94);
    EXPECT_GT(cell.medianRatio, 0.0);
    EXPECT_LT(cell.medianRatio, 1.0);
}

TEST(Evaluation, CorrectnessCriterionRoundsLikeThePaper)
{
    EvaluationCell cell;
    cell.correctFraction = 0.9451;  // prints as 0.95 -> correct
    EXPECT_TRUE(cell.correct(0.95));
    cell.correctFraction = 0.9449;  // prints as 0.94 -> incorrect
    EXPECT_FALSE(cell.correct(0.95));
    cell.correctFraction = 0.96;
    EXPECT_TRUE(cell.correct(0.95));
}

TEST(Evaluation, ByProcRangeSubdivides)
{
    auto t = syntheticTrace(8000, 2);
    core::PredictorOptions options;
    auto cells = evaluateByProcRange(t, "bmbp", options);
    ASSERT_EQ(cells.size(), 4u);
    // Bins 1-4 and 5-16 are populated; 17-64 and 65+ are empty.
    EXPECT_GT(cells[0].jobs, 1000u);
    EXPECT_GT(cells[1].jobs, 1000u);
    EXPECT_EQ(cells[2].jobs, 0u);
    EXPECT_EQ(cells[3].jobs, 0u);
    EXPECT_GT(cells[0].evaluated, 0u);
    EXPECT_EQ(cells[2].evaluated, 0u);  // "-" in the paper's tables
    EXPECT_GE(cells[0].correctFraction, 0.94);
    EXPECT_GE(cells[1].correctFraction, 0.94);
}

TEST(Evaluation, MinJobsThresholdDropsSparseCells)
{
    auto t = syntheticTrace(1500, 3);
    core::PredictorOptions options;
    // With the paper's 1000-job floor, the 5-16 bin (~40% of 1500)
    // falls below threshold and is skipped.
    auto cells = evaluateByProcRange(t, "bmbp", options, {}, 1000);
    EXPECT_GT(cells[0].jobs, 0u);
    EXPECT_EQ(cells[1].evaluated, 0u);
    EXPECT_GT(cells[1].jobs, 0u);

    // Lowering the floor evaluates it.
    auto loose = evaluateByProcRange(t, "bmbp", options, {}, 100);
    EXPECT_GT(loose[1].evaluated, 0u);
}

TEST(Evaluation, TrimCountSurfacedForTrimmingMethods)
{
    // A trace with a violent level shift forces at least one trim.
    stats::Rng rng(4);
    trace::Trace t;
    for (size_t i = 0; i < 4000; ++i) {
        trace::JobRecord job;
        job.submitTime = 1000.0 + static_cast<double>(i) * 120.0;
        const double scale = i < 2000 ? 2.0 : 8.0;
        job.waitSeconds = rng.logNormal(scale, 0.5);
        t.add(job);
    }
    core::PredictorOptions options;
    auto bmbp = evaluateTrace(t, "bmbp", options);
    EXPECT_GE(bmbp.trims, 1u);
    auto trim = evaluateTrace(t, "lognormal-trim", options);
    EXPECT_GE(trim.trims, 1u);
    auto notrim = evaluateTrace(t, "lognormal", options);
    EXPECT_EQ(notrim.trims, 0u);
}

} // namespace
} // namespace sim
} // namespace qdel
