/**
 * @file
 * Tests for the replay simulator's crash-safe checkpointing: a
 * checkpointed run is indistinguishable from a plain one, a run killed
 * mid-flight resumes to byte-identical results, and the recovery
 * ladder plus the trace/config fingerprints guard against resuming
 * the wrong state.
 */

#include <filesystem>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/bmbp_predictor.hh"
#include "persist/fault_injection.hh"
#include "persist/io.hh"
#include "sim/replay/evaluation.hh"
#include "sim/replay/replay_simulator.hh"

namespace qdel {
namespace sim {
namespace {

std::string
freshDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + "qdel_rc_" + name;
    std::filesystem::remove_all(dir);
    EXPECT_TRUE(persist::ensureDirectory(dir).ok());
    return dir;
}

/**
 * 600 jobs, one a minute, waits cycling through 5..45 s with a jump to
 * 500+ s at job 400 so the change-point machinery trims mid-run.
 */
trace::Trace
makeTrace(size_t count = 600, double wait_offset = 0.0)
{
    trace::Trace t;
    for (size_t i = 0; i < count; ++i) {
        trace::JobRecord job;
        job.submitTime = 1000.0 + static_cast<double>(i) * 60.0;
        job.waitSeconds = 5.0 +
                          40.0 * static_cast<double>((i * 37) % 97) /
                              97.0 +
                          (i >= 400 ? 500.0 : 0.0) + wait_offset;
        t.add(job);
    }
    return t;
}

std::unique_ptr<core::BmbpPredictor>
makePredictor()
{
    core::BmbpConfig config;
    config.quantile = 0.5;
    config.confidence = 0.8;
    config.trimmingEnabled = true;
    config.runThresholdOverride = 2;
    return std::make_unique<core::BmbpPredictor>(config);
}

ReplayProbe
makeProbe()
{
    ReplayProbe probe;
    probe.captureSeries = true;
    probe.seriesBegin = 1000.0 + 100.0 * 60.0;
    probe.seriesEnd = 1000.0 + 500.0 * 60.0;
    probe.snapshotInterval = 3600.0;
    probe.snapshotQuantiles = {{0.5, true}, {0.9, true}};
    return probe;
}

ReplayCheckpointOptions
makeCkpt(const std::string &dir, bool resume = false)
{
    ReplayCheckpointOptions ckpt;
    ckpt.dir = dir;
    ckpt.intervalJobs = 50;
    ckpt.resume = resume;
    return ckpt;
}

/** The byte-identical-results contract, field by field. */
void
expectSameResult(const ReplayResult &a, const ReplayResult &b)
{
    EXPECT_EQ(a.totalJobs, b.totalJobs);
    EXPECT_EQ(a.trainingJobs, b.trainingJobs);
    EXPECT_EQ(a.evaluatedJobs, b.evaluatedJobs);
    EXPECT_EQ(a.correct, b.correct);
    EXPECT_EQ(a.infinitePredictions, b.infinitePredictions);
    EXPECT_EQ(a.correctFraction, b.correctFraction);  // exact, not near
    EXPECT_EQ(a.medianRatio, b.medianRatio);
    ASSERT_EQ(a.series.size(), b.series.size());
    for (size_t i = 0; i < a.series.size(); ++i) {
        EXPECT_EQ(a.series[i].time, b.series[i].time);
        EXPECT_EQ(a.series[i].value, b.series[i].value);
    }
    ASSERT_EQ(a.snapshots.size(), b.snapshots.size());
    for (size_t i = 0; i < a.snapshots.size(); ++i) {
        EXPECT_EQ(a.snapshots[i].time, b.snapshots[i].time);
        EXPECT_EQ(a.snapshots[i].values, b.snapshots[i].values);
    }
}

/** The plain, un-checkpointed reference run. */
ReplayResult
referenceRun(const trace::Trace &t, size_t *trims = nullptr)
{
    auto predictor = makePredictor();
    ReplaySimulator simulator({300.0, 0.10});
    auto result = simulator.run(t, *predictor, makeProbe());
    EXPECT_TRUE(result.ok());
    if (trims)
        *trims = predictorTrimCount(*predictor);
    return std::move(result).value();
}

TEST(ReplayCheckpoint, CheckpointedRunMatchesPlainRun)
{
    fault::reset();
    const trace::Trace t = makeTrace();
    size_t plain_trims = 0;
    const ReplayResult plain = referenceRun(t, &plain_trims);
    ASSERT_GT(plain_trims, 0u);  // the scenario must exercise trims

    auto predictor = makePredictor();
    ReplaySimulator simulator({300.0, 0.10});
    auto result = simulator.run(t, *predictor, makeProbe(),
                                makeCkpt(freshDir("match")));
    ASSERT_TRUE(result.ok()) << result.error().str();
    expectSameResult(plain, result.value());
    EXPECT_EQ(result.value().resumedFromJob, 0u);
    EXPECT_EQ(predictorTrimCount(*predictor), plain_trims);
}

TEST(ReplayCheckpoint, CrashMidRunThenResumeIsByteIdentical)
{
    fault::reset();
    const trace::Trace t = makeTrace();
    size_t plain_trims = 0;
    const ReplayResult plain = referenceRun(t, &plain_trims);

    // Profile a fault-free checkpointed run to learn the total
    // persistence-op count, then kill a second run halfway through it.
    {
        auto predictor = makePredictor();
        ReplaySimulator simulator({300.0, 0.10});
        ASSERT_TRUE(simulator
                        .run(t, *predictor, makeProbe(),
                             makeCkpt(freshDir("profile")))
                        .ok());
    }
    const uint64_t total_ops = fault::opCount();
    ASSERT_GT(total_ops, 4u);

    const std::string dir = freshDir("crash");
    fault::configure(
        {fault::Kind::ShortWrite, total_ops / 2, 77});
    {
        auto victim = makePredictor();
        ReplaySimulator simulator({300.0, 0.10});
        auto doomed =
            simulator.run(t, *victim, makeProbe(), makeCkpt(dir));
        ASSERT_FALSE(doomed.ok());  // the "process" died mid-run
    }
    fault::reset();

    // Restart with a fresh predictor instance and resume.
    auto predictor = makePredictor();
    ReplaySimulator simulator({300.0, 0.10});
    auto resumed = simulator.run(t, *predictor, makeProbe(),
                                 makeCkpt(dir, true));
    ASSERT_TRUE(resumed.ok()) << resumed.error().str();
    EXPECT_GT(resumed.value().resumedFromJob, 0u);
    ASSERT_FALSE(resumed.value().recoveryNotes.empty());
    EXPECT_NE(resumed.value().recoveryNotes.front().find(
                  "recovery source:"),
              std::string::npos);
    expectSameResult(plain, resumed.value());
    EXPECT_EQ(predictorTrimCount(*predictor), plain_trims);
}

TEST(ReplayCheckpoint, ResumeAfterCompletionIsIdempotent)
{
    fault::reset();
    const trace::Trace t = makeTrace();
    const ReplayResult plain = referenceRun(t);
    const std::string dir = freshDir("idempotent");
    {
        auto predictor = makePredictor();
        ReplaySimulator simulator({300.0, 0.10});
        ASSERT_TRUE(
            simulator.run(t, *predictor, makeProbe(), makeCkpt(dir))
                .ok());
    }
    auto predictor = makePredictor();
    ReplaySimulator simulator({300.0, 0.10});
    auto resumed = simulator.run(t, *predictor, makeProbe(),
                                 makeCkpt(dir, true));
    ASSERT_TRUE(resumed.ok()) << resumed.error().str();
    EXPECT_EQ(resumed.value().resumedFromJob, t.size());
    expectSameResult(plain, resumed.value());
}

TEST(ReplayCheckpoint, CorruptNewestSnapshotFallsBackOneGeneration)
{
    fault::reset();
    const trace::Trace t = makeTrace();
    const ReplayResult plain = referenceRun(t);
    const std::string dir = freshDir("fallback");
    {
        auto predictor = makePredictor();
        ReplaySimulator simulator({300.0, 0.10});
        ASSERT_TRUE(
            simulator.run(t, *predictor, makeProbe(), makeCkpt(dir))
                .ok());
    }
    // Flip one payload byte of the newest snapshot.
    auto entries = persist::listDirectory(dir);
    ASSERT_TRUE(entries.ok());
    std::string newest;
    for (const std::string &name : entries.value()) {
        if (name.rfind("snapshot-", 0) == 0 && name > newest)
            newest = name;
    }
    ASSERT_FALSE(newest.empty());
    auto bytes = persist::readFileBytes(dir + "/" + newest);
    ASSERT_TRUE(bytes.ok());
    std::string corrupt = bytes.value();
    ASSERT_GT(corrupt.size(), 40u);
    corrupt[40] = static_cast<char>(corrupt[40] ^ 0x20);
    ASSERT_TRUE(
        persist::atomicWriteFile(dir + "/" + newest, corrupt).ok());

    auto predictor = makePredictor();
    ReplaySimulator simulator({300.0, 0.10});
    auto resumed = simulator.run(t, *predictor, makeProbe(),
                                 makeCkpt(dir, true));
    ASSERT_TRUE(resumed.ok()) << resumed.error().str();
    EXPECT_NE(resumed.value().recoveryNotes.front().find(
                  "previous-snapshot"),
              std::string::npos);
    EXPECT_LT(resumed.value().resumedFromJob, t.size());
    expectSameResult(plain, resumed.value());
}

TEST(ReplayCheckpoint, DirtyDirectoryWithoutResumeIsRejected)
{
    fault::reset();
    const trace::Trace t = makeTrace(100);
    const std::string dir = freshDir("dirty");
    {
        auto predictor = makePredictor();
        ReplaySimulator simulator({300.0, 0.10});
        ASSERT_TRUE(simulator.run(t, *predictor, {}, makeCkpt(dir)).ok());
    }
    auto predictor = makePredictor();
    ReplaySimulator simulator({300.0, 0.10});
    auto result = simulator.run(t, *predictor, {}, makeCkpt(dir));
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.error().reason.find("already contains"),
              std::string::npos);
}

TEST(ReplayCheckpoint, ResumeWithDifferentTraceIsRejected)
{
    fault::reset();
    const std::string dir = freshDir("wrongtrace");
    {
        auto predictor = makePredictor();
        ReplaySimulator simulator({300.0, 0.10});
        ASSERT_TRUE(
            simulator.run(makeTrace(), *predictor, {}, makeCkpt(dir))
                .ok());
    }
    auto predictor = makePredictor();
    ReplaySimulator simulator({300.0, 0.10});
    // Same length, different waits: the fingerprint must catch it.
    auto result = simulator.run(makeTrace(600, 1.0), *predictor, {},
                                makeCkpt(dir, true));
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.error().reason.find("different trace"),
              std::string::npos);
}

TEST(ReplayCheckpoint, ResumeWithDifferentConfigOrProbeIsRejected)
{
    fault::reset();
    const trace::Trace t = makeTrace(200);
    const std::string dir = freshDir("wrongprobe");
    {
        auto predictor = makePredictor();
        ReplaySimulator simulator({300.0, 0.10});
        ASSERT_TRUE(
            simulator.run(t, *predictor, makeProbe(), makeCkpt(dir))
                .ok());
    }
    {
        // Different epoch.
        auto predictor = makePredictor();
        ReplaySimulator simulator({600.0, 0.10});
        auto result = simulator.run(t, *predictor, makeProbe(),
                                    makeCkpt(dir, true));
        ASSERT_FALSE(result.ok());
        EXPECT_NE(result.error().reason.find("different replay config"),
                  std::string::npos);
    }
    {
        // Different probe quantiles.
        ReplayProbe probe = makeProbe();
        probe.snapshotQuantiles = {{0.25, true}};
        auto predictor = makePredictor();
        ReplaySimulator simulator({300.0, 0.10});
        auto result = simulator.run(t, *predictor, probe,
                                    makeCkpt(dir, true));
        ASSERT_FALSE(result.ok());
    }
}

TEST(ReplayCheckpoint, ResumeOnPristineDirectoryColdStarts)
{
    fault::reset();
    const trace::Trace t = makeTrace(100);
    auto predictor = makePredictor();
    ReplaySimulator simulator({300.0, 0.10});
    auto result = simulator.run(t, *predictor, {},
                                makeCkpt(freshDir("pristine"), true));
    ASSERT_TRUE(result.ok()) << result.error().str();
    EXPECT_EQ(result.value().resumedFromJob, 0u);
    ASSERT_FALSE(result.value().recoveryNotes.empty());
    EXPECT_NE(result.value().recoveryNotes.front().find("pristine"),
              std::string::npos);
}

TEST(ReplayCheckpoint, OptionsValidation)
{
    const trace::Trace t = makeTrace(10);
    auto predictor = makePredictor();
    ReplaySimulator simulator({300.0, 0.10});
    ReplayCheckpointOptions ckpt = makeCkpt(freshDir("validate"));
    ckpt.keepSnapshots = 0;
    auto result = simulator.run(t, *predictor, {}, ckpt);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().field, "keepSnapshots");
}

} // namespace
} // namespace sim
} // namespace qdel
