/**
 * @file
 * Tests for the paper-Section-5.1 replay simulator: information
 * visibility rules, epoch semantics, training split, scoring
 * identities, and the figure/table probes.
 */

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/bmbp_predictor.hh"
#include "sim/replay/replay_simulator.hh"
#include "stats/rng.hh"

namespace qdel {
namespace sim {
namespace {

/** Predictor stub that exposes exactly what the simulator did to it. */
class ProbePredictor : public core::Predictor
{
  public:
    std::string name() const override { return "probe"; }

    void
    observe(double wait) override
    {
        observed.push_back(wait);
    }

    void
    refit() override
    {
        ++refits;
        current = core::QuantileEstimate::of(fixedBound);
    }

    core::QuantileEstimate
    upperBound() const override
    {
        return current;
    }

    core::QuantileEstimate
    boundAt(double q, bool upper) const override
    {
        (void)upper;
        return core::QuantileEstimate::of(q * 100.0);
    }

    void
    finalizeTraining() override
    {
        ++finalizations;
        trainingSizeAtFinalize = observed.size();
    }

    size_t historySize() const override { return observed.size(); }

    std::vector<double> observed;
    size_t refits = 0;
    size_t finalizations = 0;
    size_t trainingSizeAtFinalize = 0;
    double fixedBound = 100.0;
    core::QuantileEstimate current = core::QuantileEstimate::infinite();
};

trace::Trace
simpleTrace(size_t count, double gap, double wait)
{
    trace::Trace t;
    for (size_t i = 0; i < count; ++i) {
        trace::JobRecord job;
        job.submitTime = 1000.0 + static_cast<double>(i) * gap;
        job.waitSeconds = wait;
        t.add(job);
    }
    return t;
}

TEST(Replay, AccountingIdentities)
{
    auto t = simpleTrace(100, 60.0, 10.0);
    ProbePredictor predictor;
    ReplaySimulator simulator({300.0, 0.10});
    auto result = simulator.run(t, predictor).value();

    EXPECT_EQ(result.totalJobs, 100u);
    EXPECT_EQ(result.trainingJobs, 10u);
    EXPECT_EQ(result.evaluatedJobs, 90u);
    EXPECT_EQ(result.correct, 90u);  // bound 100 >= wait 10
    EXPECT_DOUBLE_EQ(result.correctFraction, 1.0);
    EXPECT_DOUBLE_EQ(result.medianRatio, 0.1);
    EXPECT_EQ(predictor.finalizations, 1u);
}

TEST(Replay, FailuresCounted)
{
    auto t = simpleTrace(100, 60.0, 500.0);  // waits above the bound
    ProbePredictor predictor;
    ReplaySimulator simulator({300.0, 0.0});
    auto result = simulator.run(t, predictor).value();
    EXPECT_EQ(result.correct, 0u);
    EXPECT_DOUBLE_EQ(result.medianRatio, 5.0);
}

TEST(Replay, WaitVisibleOnlyAfterRelease)
{
    // One long-waiting job: while it pends, later arrivals must not
    // see its wait in history.
    trace::Trace t;
    t.add({0.0, 10000.0, 1, -1.0, ""});   // releases at t=10000
    t.add({500.0, 1.0, 1, -1.0, ""});     // releases at t=501
    t.add({600.0, 1.0, 1, -1.0, ""});
    t.add({20000.0, 1.0, 1, -1.0, ""});   // after the long release
    ProbePredictor predictor;
    ReplaySimulator simulator({300.0, 0.0});
    simulator.run(t, predictor).value();
    // The last job's release (t=20001) lies beyond the final arrival,
    // so only three waits ever become visible — in completion order
    // 501, 601, 10000, with the long wait strictly last.
    ASSERT_EQ(predictor.observed.size(), 3u);
    EXPECT_DOUBLE_EQ(predictor.observed[0], 1.0);
    EXPECT_DOUBLE_EQ(predictor.observed[1], 1.0);
    EXPECT_DOUBLE_EQ(predictor.observed[2], 10000.0);
}

TEST(Replay, EpochZeroRefitsPerJob)
{
    auto t = simpleTrace(50, 10.0, 1.0);
    ProbePredictor predictor;
    ReplaySimulator simulator({0.0, 0.0});
    simulator.run(t, predictor).value();
    // One refit per arrival (plus the finalize-training refit).
    EXPECT_GE(predictor.refits, 50u);
}

TEST(Replay, EpochCountMatchesSpan)
{
    // 100 jobs x 60 s apart = 5940 s of span -> ~20 epochs of 300 s.
    auto t = simpleTrace(100, 60.0, 1.0);
    ProbePredictor predictor;
    ReplaySimulator simulator({300.0, 0.0});
    simulator.run(t, predictor).value();
    EXPECT_GE(predictor.refits, 19u);
    EXPECT_LE(predictor.refits, 23u);
}

TEST(Replay, InfinitePredictionsCountedCorrect)
{
    auto t = simpleTrace(10, 60.0, 5.0);
    ProbePredictor predictor;
    // Never refit inside the window: the initial bound stays infinite.
    predictor.current = core::QuantileEstimate::infinite();
    predictor.fixedBound = std::numeric_limits<double>::infinity();
    ReplaySimulator simulator({300.0, 0.0});
    auto result = simulator.run(t, predictor).value();
    EXPECT_EQ(result.infinitePredictions, result.evaluatedJobs);
    EXPECT_DOUBLE_EQ(result.correctFraction, 1.0);
    EXPECT_DOUBLE_EQ(result.medianRatio, 0.0);  // no finite ratios
}

TEST(Replay, SeriesCaptureWindow)
{
    auto t = simpleTrace(200, 60.0, 1.0);
    ProbePredictor predictor;
    ReplaySimulator simulator({300.0, 0.0});
    ReplayProbe probe;
    probe.captureSeries = true;
    probe.seriesBegin = 1000.0 + 3000.0;
    probe.seriesEnd = 1000.0 + 6000.0;
    auto result = simulator.run(t, predictor, probe).value();
    ASSERT_FALSE(result.series.empty());
    for (const auto &point : result.series) {
        EXPECT_GE(point.time, probe.seriesBegin);
        EXPECT_LT(point.time, probe.seriesEnd);
        EXPECT_DOUBLE_EQ(point.value, 100.0);
    }
    // ~10 epochs inside the 3000 s window.
    EXPECT_NEAR(static_cast<double>(result.series.size()), 10.0, 2.0);
}

TEST(Replay, QuantileSnapshots)
{
    auto t = simpleTrace(200, 60.0, 1.0);
    ProbePredictor predictor;
    ReplaySimulator simulator({300.0, 0.0});
    ReplayProbe probe;
    probe.seriesBegin = 1000.0;
    probe.seriesEnd = 1000.0 + 8000.0;
    probe.snapshotInterval = 2000.0;
    probe.snapshotQuantiles = {{0.25, false}, {0.5, true}, {0.95, true}};
    auto result = simulator.run(t, predictor, probe).value();
    ASSERT_EQ(result.snapshots.size(), 4u);
    for (const auto &snap : result.snapshots) {
        ASSERT_EQ(snap.values.size(), 3u);
        EXPECT_DOUBLE_EQ(snap.values[0], 25.0);  // boundAt(q)=100q stub
        EXPECT_DOUBLE_EQ(snap.values[2], 95.0);
    }
}

TEST(Replay, TrainingFractionZeroFinalizesBeforeFirstJob)
{
    auto t = simpleTrace(5, 10.0, 1.0);
    ProbePredictor predictor;
    ReplaySimulator simulator({300.0, 0.0});
    simulator.run(t, predictor).value();
    EXPECT_EQ(predictor.finalizations, 1u);
    EXPECT_EQ(predictor.trainingSizeAtFinalize, 0u);
}

TEST(Replay, RejectsUnsortedTrace)
{
    trace::Trace t;
    t.add({100.0, 1.0, 1, -1.0, ""});
    t.add({50.0, 1.0, 1, -1.0, ""});
    ProbePredictor predictor;
    ReplaySimulator simulator;
    auto result = simulator.run(t, predictor);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.error().reason.find("sorted"), std::string::npos);
}

TEST(Replay, RejectsBadConfig)
{
    auto t = simpleTrace(5, 10.0, 1.0);
    ProbePredictor predictor;
    {
        auto result = ReplaySimulator({300.0, 1.0}).run(t, predictor);
        ASSERT_FALSE(result.ok());
        EXPECT_EQ(result.error().field, "trainFraction");
    }
    {
        auto result = ReplaySimulator({-1.0, 0.1}).run(t, predictor);
        ASSERT_FALSE(result.ok());
        EXPECT_EQ(result.error().field, "epochSeconds");
    }
    {
        const double nan = std::numeric_limits<double>::quiet_NaN();
        EXPECT_FALSE(ReplaySimulator({nan, 0.1}).run(t, predictor).ok());
        EXPECT_FALSE(ReplaySimulator({300.0, nan}).run(t, predictor).ok());
    }
}

TEST(Replay, RejectsNonPositiveSnapshotInterval)
{
    // Regression: a snapshot probe with interval <= 0 used to re-arm
    // the snapshot tick at the same virtual time and loop forever.
    // It must now terminate with a validation error instead.
    auto t = simpleTrace(50, 60.0, 1.0);
    ProbePredictor predictor;
    ReplaySimulator simulator({300.0, 0.0});
    ReplayProbe probe;
    probe.seriesBegin = 1000.0;
    probe.seriesEnd = 3000.0;
    probe.snapshotQuantiles = {{0.5, true}};
    for (double interval : {0.0, -5.0,
                            std::numeric_limits<double>::quiet_NaN(),
                            std::numeric_limits<double>::infinity()}) {
        probe.snapshotInterval = interval;
        auto result = simulator.run(t, predictor, probe);
        ASSERT_FALSE(result.ok());
        EXPECT_EQ(result.error().field, "snapshotInterval");
    }
}

TEST(Replay, RejectsBadProbeQuantilesAndWindow)
{
    auto t = simpleTrace(10, 60.0, 1.0);
    ProbePredictor predictor;
    ReplaySimulator simulator({300.0, 0.0});
    {
        ReplayProbe probe;
        probe.seriesBegin = 0.0;
        probe.seriesEnd = 100.0;
        probe.snapshotInterval = 10.0;
        probe.snapshotQuantiles = {{1.5, true}};
        auto result = simulator.run(t, predictor, probe);
        ASSERT_FALSE(result.ok());
        EXPECT_EQ(result.error().field, "snapshotQuantiles");
    }
    {
        ReplayProbe probe;
        probe.captureSeries = true;
        probe.seriesBegin = 100.0;
        probe.seriesEnd = 0.0;  // end before begin
        auto result = simulator.run(t, predictor, probe);
        ASSERT_FALSE(result.ok());
    }
}

TEST(Replay, EmptyTrace)
{
    trace::Trace t;
    ProbePredictor predictor;
    ReplaySimulator simulator;
    auto result = simulator.run(t, predictor).value();
    EXPECT_EQ(result.totalJobs, 0u);
    EXPECT_EQ(result.evaluatedJobs, 0u);
}

} // namespace
} // namespace sim
} // namespace qdel
