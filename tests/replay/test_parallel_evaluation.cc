/**
 * @file
 * Tests for the parallel evaluation engine: the parallel suite must be
 * bit-identical to the sequential helpers for every worker count (the
 * determinism contract the bench tables print under), and per-range
 * subdivision must match the sequential reference cell for cell.
 */

#include <gtest/gtest.h>

#include "core/rare_event.hh"
#include "sim/replay/parallel_evaluation.hh"
#include "stats/rng.hh"

namespace qdel {
namespace sim {
namespace {

trace::Trace
syntheticTrace(size_t count, uint64_t seed)
{
    stats::Rng rng(seed);
    trace::Trace t;
    for (size_t i = 0; i < count; ++i) {
        trace::JobRecord job;
        job.submitTime = 1000.0 + static_cast<double>(i) * 120.0;
        // A level shift midway forces trims, so the test also proves
        // no change-point state leaks between concurrent predictors.
        const double scale = i < count / 2 ? 4.0 : 6.0;
        job.waitSeconds = rng.logNormal(scale, 1.5);
        job.procs = rng.bernoulli(0.6)
                        ? static_cast<int>(rng.uniformInt(1, 4))
                        : static_cast<int>(rng.uniformInt(5, 16));
        t.add(job);
    }
    return t;
}

bool
identicalCells(const EvaluationCell &a, const EvaluationCell &b)
{
    // Bit-identical, not approximately equal: the parallel engine runs
    // the same arithmetic on the same data in the same order.
    return a.jobs == b.jobs && a.evaluated == b.evaluated &&
           a.correctFraction == b.correctFraction &&
           a.medianRatio == b.medianRatio && a.trims == b.trims;
}

std::vector<EvaluationJob>
makeSuite(const std::shared_ptr<const trace::Trace> &trace,
          const core::PredictorOptions &options)
{
    std::vector<EvaluationJob> jobs;
    for (const char *method :
         {"bmbp", "bmbp-notrim", "lognormal", "lognormal-trim",
          "percentile", "loguniform"}) {
        jobs.push_back({trace, method, options, ReplayConfig{}});
    }
    return jobs;
}

TEST(ParallelEvaluation, SuiteMatchesSequentialAcrossThreadCounts)
{
    const auto trace = std::make_shared<const trace::Trace>(
        syntheticTrace(4000, 11));
    core::RareEventTable table;
    core::PredictorOptions options;
    options.rareEventTable = &table;
    const auto jobs = makeSuite(trace, options);

    std::vector<EvaluationCell> sequential;
    for (const auto &job : jobs) {
        sequential.push_back(evaluateTrace(*job.trace, job.method,
                                           job.options, job.config));
    }

    for (long long threads : {1, 2, 8}) {
        ParallelEvaluator evaluator(threads);
        const auto parallel = evaluator.evaluateSuite(jobs);
        ASSERT_EQ(parallel.size(), sequential.size());
        for (size_t i = 0; i < parallel.size(); ++i) {
            EXPECT_TRUE(identicalCells(parallel[i], sequential[i]))
                << "threads=" << threads << " job=" << jobs[i].method;
        }
    }
}

TEST(ParallelEvaluation, RepeatedRunsAreStable)
{
    // No shared per-predictor state: evaluating the same suite twice
    // on the same pool gives identical cells (a predictor reused or
    // mutated across cells would drift between passes).
    const auto trace = std::make_shared<const trace::Trace>(
        syntheticTrace(3000, 12));
    core::PredictorOptions options;
    const auto jobs = makeSuite(trace, options);

    ParallelEvaluator evaluator(4);
    const auto first = evaluator.evaluateSuite(jobs);
    const auto second = evaluator.evaluateSuite(jobs);
    ASSERT_EQ(first.size(), second.size());
    for (size_t i = 0; i < first.size(); ++i)
        EXPECT_TRUE(identicalCells(first[i], second[i]));
}

TEST(ParallelEvaluation, ByProcRangeMatchesSequential)
{
    const auto trace = syntheticTrace(8000, 13);
    core::PredictorOptions options;
    const auto sequential = evaluateByProcRange(trace, "bmbp", options);

    for (long long threads : {1, 2, 8}) {
        ParallelEvaluator evaluator(threads);
        const auto parallel =
            evaluator.evaluateByProcRange(trace, "bmbp", options);
        ASSERT_EQ(parallel.size(), sequential.size());
        for (size_t i = 0; i < parallel.size(); ++i) {
            EXPECT_TRUE(identicalCells(parallel[i], sequential[i]))
                << "threads=" << threads << " range=" << i;
        }
    }
}

TEST(ParallelEvaluation, ByProcRangeHonorsMinJobs)
{
    const auto trace = syntheticTrace(1500, 14);
    core::PredictorOptions options;
    ParallelEvaluator evaluator(2);
    const auto strict = evaluator.evaluateByProcRange(trace, "bmbp",
                                                      options, {}, 1000);
    EXPECT_EQ(strict[1].evaluated, 0u);
    EXPECT_GT(strict[1].jobs, 0u);
    const auto loose = evaluator.evaluateByProcRange(trace, "bmbp",
                                                     options, {}, 100);
    EXPECT_GT(loose[1].evaluated, 0u);
}

TEST(ParallelEvaluation, ThreadCountResolution)
{
    ParallelEvaluator one(1);
    EXPECT_EQ(one.threadCount(), 1u);
    ParallelEvaluator many(7);
    EXPECT_EQ(many.threadCount(), 7u);
    ParallelEvaluator defaulted(0);
    EXPECT_GE(defaulted.threadCount(), 1u);
}

} // namespace
} // namespace sim
} // namespace qdel
