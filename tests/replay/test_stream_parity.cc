/**
 * @file
 * The streaming replay's central contract: for every queue, streaming
 * out-of-core evaluation is *byte-identical* to ReplaySimulator on the
 * in-memory queue-filtered trace — for any shard size, batch size, and
 * thread count, across methods with and without change-point trimming
 * (trims fire mid-batch here by construction), for epoch-based and
 * per-job refit schedules, and whether or not the accuracy-ratio
 * median spilled to disk.
 */

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/replay/evaluation.hh"
#include "sim/replay/replay_simulator.hh"
#include "sim/replay/stream_replay.hh"
#include "trace/qtc_stream.hh"

namespace qdel {
namespace sim {
namespace {

std::string
scratchDir(const std::string &tag)
{
    const std::string dir =
        ::testing::TempDir() + "qdel_stream_parity_" + tag;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

/**
 * A three-queue trace engineered to exercise every ordering edge:
 * interleaved queues with different wait regimes, a mid-trace regime
 * shift (provokes trimming), zero-wait jobs (release ties with their
 * own submit), duplicate submit times, and a queue that first appears
 * late in the stream.
 */
trace::Trace
parityTrace(size_t n)
{
    trace::Trace t("parity-site", "parity-machine");
    double submit = 10'000.0;
    for (size_t i = 0; i < n; ++i) {
        trace::JobRecord job;
        submit += static_cast<double>(i % 7) * 40.0;  // dup when i%7==0
        job.submitTime = submit;
        const char *queue = i % 3 == 0 ? "batch" : "interactive";
        double wait;
        if (i % 3 == 0) {
            // Regime shift in "batch" to provoke change-point trims.
            wait = (i < n / 2 ? 50.0 : 9'000.0) +
                   static_cast<double>((i * 37) % 113);
        } else {
            wait = 30.0 + static_cast<double>((i * 131) % 601);
        }
        if (i % 17 == 0)
            wait = 0.0;  // release at the submit instant
        if (i > (3 * n) / 4 && i % 5 == 0)
            queue = "late";  // appears after most shard boundaries
        job.queue = queue;
        job.waitSeconds = wait;
        job.runSeconds = 120.0;
        job.procs = 1 + static_cast<int>(i % 16);
        job.status = 1;
        t.add(std::move(job));
    }
    return t;
}

trace::Trace
filterByQueue(const trace::Trace &t, const std::string &queue)
{
    trace::Trace sub(t.site(), t.machine());
    for (size_t i = 0; i < t.size(); ++i) {
        if (t[i].queue == queue) {
            trace::JobRecord copy = t[i];
            sub.add(std::move(copy));
        }
    }
    return sub;
}

/** Write @p t as a shard set; returns the manifest path. */
std::string
writeShards(const trace::Trace &t, const std::string &dir,
            size_t shard_size)
{
    trace::ShardWriterOptions options;
    options.directory = dir;
    options.shardSize = shard_size;
    options.site = t.site();
    options.machine = t.machine();
    trace::ShardedTraceWriter writer(options);
    for (size_t i = 0; i < t.size(); ++i)
        writer.add(t[i]);
    EXPECT_TRUE(writer.finish().ok());
    return writer.manifestPath();
}

struct ScalarExpectation
{
    ReplayResult result;
    size_t trims = 0;
};

ScalarExpectation
runScalar(const trace::Trace &t, const std::string &method,
          const ReplayConfig &config)
{
    auto predictor = core::makePredictor(method, {});
    ReplaySimulator simulator(config);
    ScalarExpectation expected;
    expected.result = simulator.run(t, *predictor).value();
    expected.trims = predictorTrimCount(*predictor);
    return expected;
}

void
expectQueueParity(const QueueStreamResult &actual,
                  const ScalarExpectation &expected,
                  const std::string &context)
{
    EXPECT_EQ(actual.result.totalJobs, expected.result.totalJobs)
        << context;
    EXPECT_EQ(actual.result.trainingJobs, expected.result.trainingJobs)
        << context;
    EXPECT_EQ(actual.result.evaluatedJobs, expected.result.evaluatedJobs)
        << context;
    EXPECT_EQ(actual.result.correct, expected.result.correct) << context;
    EXPECT_EQ(actual.result.infinitePredictions,
              expected.result.infinitePredictions)
        << context;
    // Bitwise, not approximate: the streaming path must reproduce the
    // in-memory arithmetic exactly.
    EXPECT_EQ(actual.result.correctFraction,
              expected.result.correctFraction)
        << context;
    EXPECT_EQ(actual.result.medianRatio, expected.result.medianRatio)
        << context;
    EXPECT_EQ(actual.trims, expected.trims) << context;
}

void
checkParity(const trace::Trace &t, const std::string &method,
            const ReplayConfig &replay_config, const std::string &tag,
            const std::vector<size_t> &shard_sizes,
            const std::vector<size_t> &batch_sizes,
            const std::vector<long long> &thread_counts,
            size_t spill_threshold = size_t(1) << 25)
{
    // Scalar reference, one run per queue.
    std::vector<std::string> queues;
    for (size_t i = 0; i < t.size(); ++i) {
        if (std::find(queues.begin(), queues.end(), t[i].queue) ==
            queues.end())
            queues.push_back(t[i].queue);
    }
    std::vector<ScalarExpectation> expected;
    for (const auto &queue : queues) {
        expected.push_back(
            runScalar(filterByQueue(t, queue), method, replay_config));
    }

    for (size_t shard_size : shard_sizes) {
        const std::string dir = scratchDir(
            tag + "_s" + std::to_string(shard_size));
        const std::string manifest = writeShards(t, dir, shard_size);
        for (size_t batch_size : batch_sizes) {
            for (long long threads : thread_counts) {
                trace::StreamReadOptions read;
                read.batchSize = batch_size;
                auto reader =
                    trace::StreamingTraceReader::open(manifest, read);
                ASSERT_TRUE(reader.ok()) << reader.error().str();

                StreamReplayConfig config;
                config.epochSeconds = replay_config.epochSeconds;
                config.trainFraction = replay_config.trainFraction;
                config.batchSize = batch_size;
                config.threads = threads;
                config.spillDir = dir;
                config.spillThresholdDoubles = spill_threshold;
                auto outcome = replayStream(reader.value(), method, {},
                                            config);
                ASSERT_TRUE(outcome.ok()) << outcome.error().str();

                const auto &stream = outcome.value();
                const std::string context =
                    tag + " shard=" + std::to_string(shard_size) +
                    " batch=" + std::to_string(batch_size) +
                    " threads=" + std::to_string(threads);
                EXPECT_EQ(stream.totalJobs, t.size()) << context;
                ASSERT_EQ(stream.queues.size(), queues.size()) << context;
                // The stream's queue table is in first-appearance
                // order, the same order `queues` was collected in.
                for (size_t q = 0; q < queues.size(); ++q) {
                    EXPECT_EQ(stream.queues[q].queue, queues[q])
                        << context;
                    expectQueueParity(stream.queues[q], expected[q],
                                      context + " queue=" + queues[q]);
                }
            }
        }
    }
}

TEST(StreamParity, TrimmingMethodAcrossShardBatchThreadGrid)
{
    const auto t = parityTrace(2400);
    ReplayConfig config;  // epoch 300s, 10% training
    checkParity(t, "lognormal-trim", config, "trimgrid",
                /*shard_sizes=*/{64, 500, 100'000},
                /*batch_sizes=*/{13, 256},
                /*thread_counts=*/{1, 4});
}

TEST(StreamParity, BmbpEpochPerJob)
{
    const auto t = parityTrace(900);
    ReplayConfig config;
    config.epochSeconds = 0.0;  // refit before every arrival
    checkParity(t, "bmbp", config, "perjob",
                /*shard_sizes=*/{101},
                /*batch_sizes=*/{64},
                /*thread_counts=*/{1, 4});
}

TEST(StreamParity, BaselineMethods)
{
    const auto t = parityTrace(1200);
    ReplayConfig config;
    for (const char *method : {"percentile", "loguniform", "lognormal"}) {
        checkParity(t, method, config, std::string("base_") + method,
                    /*shard_sizes=*/{250},
                    /*batch_sizes=*/{97},
                    /*thread_counts=*/{2});
    }
}

TEST(StreamParity, SpilledMedianMatchesInMemoryBitwise)
{
    const auto t = parityTrace(1500);
    ReplayConfig config;
    // Threshold of 8 doubles forces every queue's ratio series through
    // the external radix-selection median.
    checkParity(t, "lognormal-trim", config, "spill",
                /*shard_sizes=*/{300},
                /*batch_sizes=*/{128},
                /*thread_counts=*/{4},
                /*spill_threshold=*/8);
}

TEST(StreamParity, SingleQueueZeroCopyPath)
{
    trace::Trace t("s", "m");
    double submit = 0.0;
    for (size_t i = 0; i < 800; ++i) {
        trace::JobRecord job;
        submit += static_cast<double>(i % 5) * 60.0;
        job.submitTime = submit;
        job.waitSeconds = (i < 400 ? 40.0 : 2'000.0) +
                          static_cast<double>((i * 29) % 251);
        job.runSeconds = 30.0;
        job.procs = 4;
        job.status = 1;
        job.queue = "only";
        t.add(std::move(job));
    }
    ReplayConfig config;
    checkParity(t, "lognormal-trim", config, "single",
                /*shard_sizes=*/{190},
                /*batch_sizes=*/{77},
                /*thread_counts=*/{1, 4});
}

TEST(StreamParity, EmptyStream)
{
    const std::string dir = scratchDir("empty");
    trace::ShardWriterOptions options;
    options.directory = dir;
    options.site = "s";
    options.machine = "m";
    trace::ShardedTraceWriter writer(options);
    ASSERT_TRUE(writer.finish().ok());

    auto reader = trace::StreamingTraceReader::open(writer.manifestPath());
    ASSERT_TRUE(reader.ok()) << reader.error().str();
    auto outcome = replayStream(reader.value(), "bmbp", {}, {});
    ASSERT_TRUE(outcome.ok()) << outcome.error().str();
    EXPECT_EQ(outcome.value().totalJobs, 0u);
    EXPECT_TRUE(outcome.value().queues.empty());
}

} // namespace
} // namespace sim
} // namespace qdel
