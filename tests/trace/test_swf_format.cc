/**
 * @file
 * Unit tests for the Standard Workload Format parser/writer.
 */

#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

#include "trace/swf_format.hh"

namespace qdel {
namespace trace {
namespace {

const char *kSample =
    "; Computer: TestMachine\n"
    "; a header comment\n"
    "1 1000 50 600 16 -1 -1 16 3600 -1 1 4 2 -1 0 -1 -1 -1\n"
    "2 2000 -1 300 8 -1 -1 8 1800 -1 1 4 2 -1 1 -1 -1 -1\n"
    "3 3000 10 100 4 -1 -1 -1 900 -1 0 4 2 -1 0 -1 -1 -1\n";

TEST(SwfParse, FieldsMapped)
{
    std::istringstream in(kSample);
    auto t = parseSwfTrace(in);
    // Record 2 has missing wait (-1) and is skipped by default.
    ASSERT_EQ(t.size(), 2u);
    EXPECT_DOUBLE_EQ(t[0].submitTime, 1000.0);
    EXPECT_DOUBLE_EQ(t[0].waitSeconds, 50.0);
    EXPECT_DOUBLE_EQ(t[0].runSeconds, 600.0);
    EXPECT_EQ(t[0].procs, 16);
    EXPECT_EQ(t[0].queue, "q0");
    // Record 3 has no requested procs; allocated procs (field 5) used.
    EXPECT_EQ(t[1].procs, 4);
}

TEST(SwfParse, KeepMissingWait)
{
    std::istringstream in(kSample);
    SwfParseOptions options;
    options.skipMissingWait = false;
    auto t = parseSwfTrace(in, "<in>", options);
    ASSERT_EQ(t.size(), 3u);
    EXPECT_DOUBLE_EQ(t[1].waitSeconds, 0.0);  // clamped
}

TEST(SwfParse, SkipFailedJobs)
{
    std::istringstream in(kSample);
    SwfParseOptions options;
    options.skipFailed = true;  // record 3 has status 0
    auto t = parseSwfTrace(in, "<in>", options);
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0].procs, 16);
}

TEST(SwfParseDeath, MalformedLine)
{
    std::istringstream in("1 2 3\n");
    EXPECT_DEATH(parseSwfTrace(in), "at least 5 fields");
}

TEST(SwfParseDeath, GarbageField)
{
    std::istringstream in("1 xyz 50 600 16\n");
    EXPECT_DEATH(parseSwfTrace(in), "bad SWF field");
}

TEST(SwfRoundTrip, PreservesCoreFields)
{
    Trace original("NERSC", "SP");
    original.add({1000.0, 42.0, 8, 3600.0, "regular"});
    original.add({2000.0, 0.0, 64, 60.0, "debug"});
    original.add({3000.0, 7.0, 8, 600.0, "regular"});
    original.sortBySubmitTime();

    std::ostringstream out;
    writeSwfTrace(original, out);
    std::istringstream in(out.str());
    auto parsed = parseSwfTrace(in);

    ASSERT_EQ(parsed.size(), original.size());
    for (size_t i = 0; i < parsed.size(); ++i) {
        EXPECT_DOUBLE_EQ(parsed[i].submitTime, original[i].submitTime);
        EXPECT_DOUBLE_EQ(parsed[i].waitSeconds, original[i].waitSeconds);
        EXPECT_EQ(parsed[i].procs, original[i].procs);
        EXPECT_DOUBLE_EQ(parsed[i].runSeconds, original[i].runSeconds);
    }
    // Queue names map to stable numbers: the two "regular" jobs share
    // a queue id distinct from "debug"'s.
    EXPECT_EQ(parsed[0].queue, parsed[2].queue);
    EXPECT_NE(parsed[0].queue, parsed[1].queue);
}

TEST(SwfWrite, EmitsHeaderComments)
{
    Trace t("SiteX", "MachineY");
    t.add({1.0, 2.0, 3, -1.0, "q"});
    std::ostringstream out;
    writeSwfTrace(t, out);
    const std::string text = out.str();
    EXPECT_NE(text.find("; Computer: MachineY"), std::string::npos);
    EXPECT_NE(text.find("; Installation: SiteX"), std::string::npos);
    EXPECT_NE(text.find("; Queue:"), std::string::npos);
}

TEST(SwfFile, SaveAndLoad)
{
    const std::string path = ::testing::TempDir() + "qdel_swf_test.swf";
    Trace original("s", "m");
    original.add({5.0, 7.0, 2, 100.0, "q"});
    saveSwfTrace(original, path);
    auto loaded = loadSwfTrace(path);
    ASSERT_EQ(loaded.size(), 1u);
    EXPECT_DOUBLE_EQ(loaded[0].waitSeconds, 7.0);
    std::remove(path.c_str());
}

} // namespace
} // namespace trace
} // namespace qdel
