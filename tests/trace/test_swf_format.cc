/**
 * @file
 * Unit tests for the Standard Workload Format parser/writer.
 */

#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

#include "trace/swf_format.hh"

namespace qdel {
namespace trace {
namespace {

const char *kSample =
    "; Computer: TestMachine\n"
    "; a header comment\n"
    "1 1000 50 600 16 -1 -1 16 3600 -1 1 4 2 -1 0 -1 -1 -1\n"
    "2 2000 -1 300 8 -1 -1 8 1800 -1 1 4 2 -1 1 -1 -1 -1\n"
    "3 3000 10 100 4 -1 -1 -1 900 -1 0 4 2 -1 0 -1 -1 -1\n";

TEST(SwfParse, FieldsMapped)
{
    std::istringstream in(kSample);
    auto t = parseSwfTrace(in).value();
    // Record 2 has missing wait (-1) and is skipped by default.
    ASSERT_EQ(t.size(), 2u);
    EXPECT_DOUBLE_EQ(t[0].submitTime, 1000.0);
    EXPECT_DOUBLE_EQ(t[0].waitSeconds, 50.0);
    EXPECT_DOUBLE_EQ(t[0].runSeconds, 600.0);
    EXPECT_EQ(t[0].procs, 16);
    EXPECT_EQ(t[0].queue, "q0");
    EXPECT_EQ(t[0].status, 1);
    // Record 3 has no requested procs; allocated procs (field 5) used.
    EXPECT_EQ(t[1].procs, 4);
    EXPECT_EQ(t[1].status, 0);
}

TEST(SwfParse, KeepMissingWait)
{
    std::istringstream in(kSample);
    SwfParseOptions options;
    options.skipMissingWait = false;
    auto t = parseSwfTrace(in, "<in>", options).value();
    ASSERT_EQ(t.size(), 3u);
    // A missing wait is preserved as -1, not clamped to zero.
    EXPECT_DOUBLE_EQ(t[1].waitSeconds, -1.0);
    EXPECT_FALSE(t[1].hasWait());
    EXPECT_TRUE(t[0].hasWait());
}

TEST(SwfParse, SkipFailedJobs)
{
    std::istringstream in(kSample);
    SwfParseOptions options;
    options.skipFailed = true;  // record 3 has status 0
    auto t = parseSwfTrace(in, "<in>", options).value();
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0].procs, 16);
}

TEST(SwfParse, ReportAccountsForEveryLine)
{
    std::istringstream in(kSample);
    IngestReport report;
    auto t = parseSwfTrace(in, "sample.swf", {}, &report);
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(report.source, "sample.swf");
    EXPECT_EQ(report.totalLines, 5u);
    EXPECT_EQ(report.commentLines, 2u);
    EXPECT_EQ(report.parsedRecords, 2u);
    EXPECT_EQ(report.filteredRecords, 1u);  // missing-wait record
    EXPECT_EQ(report.malformedLines, 0u);
    EXPECT_EQ(report.accounted(), report.totalLines);
}

TEST(SwfParse, StrictModeFailsWithContext)
{
    {
        std::istringstream in("1 2 3\n");
        auto t = parseSwfTrace(in, "bad.swf");
        ASSERT_FALSE(t.ok());
        EXPECT_EQ(t.error().file, "bad.swf");
        EXPECT_EQ(t.error().line, 1u);
        EXPECT_NE(t.error().reason.find("at least 5 fields"),
                  std::string::npos);
    }
    {
        std::istringstream in("; ok\n1 xyz 50 600 16\n");
        auto t = parseSwfTrace(in, "bad.swf");
        ASSERT_FALSE(t.ok());
        EXPECT_EQ(t.error().line, 2u);
        EXPECT_EQ(t.error().field, "field 2");
        EXPECT_NE(t.error().reason.find("bad SWF numeric value"),
                  std::string::npos);
    }
    {
        std::istringstream in("1 1000 50 600 xyz\n");
        auto t = parseSwfTrace(in, "bad.swf");
        ASSERT_FALSE(t.ok());
        EXPECT_EQ(t.error().field, "field 5");
        EXPECT_NE(t.error().reason.find("bad SWF integer value"),
                  std::string::npos);
    }
    {
        // Non-finite numerics are data errors, not values.
        std::istringstream in("1 nan 50 600 16\n");
        EXPECT_FALSE(parseSwfTrace(in).ok());
    }
    {
        // Processor counts beyond int range are rejected, not wrapped.
        std::istringstream in("1 1000 50 600 99999999999\n");
        auto t = parseSwfTrace(in);
        ASSERT_FALSE(t.ok());
        EXPECT_NE(t.error().reason.find("processor count"),
                  std::string::npos);
    }
}

TEST(SwfParse, LenientModeSkipsAndCounts)
{
    std::istringstream in("; header\n"
                          "1 1000 50 600 16\n"
                          "garbage line here x\n"
                          "2 abc 50 600 16\n"
                          "3 3000 10 100 4\n");
    SwfParseOptions options;
    options.mode = ParseMode::Lenient;
    IngestReport report;
    auto t = parseSwfTrace(in, "mixed.swf", options, &report);
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(t.value().size(), 2u);
    EXPECT_EQ(report.totalLines, 5u);
    EXPECT_EQ(report.commentLines, 1u);
    EXPECT_EQ(report.parsedRecords, 2u);
    EXPECT_EQ(report.malformedLines, 2u);
    EXPECT_EQ(report.accounted(), report.totalLines);
    ASSERT_EQ(report.errors.size(), 2u);
    EXPECT_EQ(report.errors[0].line, 3u);
    EXPECT_EQ(report.errors[1].line, 4u);
    EXPECT_NE(report.summary().find("2 malformed"), std::string::npos);
}

TEST(SwfRoundTrip, PreservesCoreFields)
{
    Trace original("NERSC", "SP");
    original.add({1000.0, 42.0, 8, 3600.0, "regular"});
    original.add({2000.0, 0.0, 64, 60.0, "debug"});
    original.add({3000.0, 7.0, 8, 600.0, "regular"});
    original.sortBySubmitTime();

    std::ostringstream out;
    writeSwfTrace(original, out);
    std::istringstream in(out.str());
    auto parsed = parseSwfTrace(in).value();

    ASSERT_EQ(parsed.size(), original.size());
    for (size_t i = 0; i < parsed.size(); ++i) {
        EXPECT_DOUBLE_EQ(parsed[i].submitTime, original[i].submitTime);
        EXPECT_DOUBLE_EQ(parsed[i].waitSeconds, original[i].waitSeconds);
        EXPECT_EQ(parsed[i].procs, original[i].procs);
        EXPECT_DOUBLE_EQ(parsed[i].runSeconds, original[i].runSeconds);
    }
    // Queue names map to stable numbers: the two "regular" jobs share
    // a queue id distinct from "debug"'s.
    EXPECT_EQ(parsed[0].queue, parsed[2].queue);
    EXPECT_NE(parsed[0].queue, parsed[1].queue);
}

TEST(SwfRoundTrip, QueueNumbersFollowFirstAppearance)
{
    // "zebra" appears before "alpha"; first-appearance numbering must
    // win over alphabetical order, and the header must agree with the
    // data lines so the parser recovers the original names.
    Trace t("s", "m");
    t.add({1000.0, 1.0, 1, -1.0, "zebra"});
    t.add({2000.0, 2.0, 1, -1.0, "alpha"});
    t.sortBySubmitTime();

    std::ostringstream out;
    writeSwfTrace(t, out);
    const std::string text = out.str();
    EXPECT_NE(text.find("; Queue: 0 zebra"), std::string::npos);
    EXPECT_NE(text.find("; Queue: 1 alpha"), std::string::npos);

    std::istringstream in(text);
    auto parsed = parseSwfTrace(in).value();
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed[0].queue, "zebra");
    EXPECT_EQ(parsed[1].queue, "alpha");
    EXPECT_EQ(parsed.site(), "s");
    EXPECT_EQ(parsed.machine(), "m");
}

TEST(SwfParse, QueueHeaderlessNumbersGetSyntheticNames)
{
    // Without "; Queue:" headers the number becomes "q<N>".
    std::istringstream in(
        "1 1000 50 600 16 -1 -1 16 3600 -1 1 4 2 -1 3 -1 -1 -1\n");
    auto t = parseSwfTrace(in).value();
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0].queue, "q3");
}

TEST(SwfRoundTrip, PreservesMissingWaitAndStatus)
{
    Trace original("s", "m");
    JobRecord failed{1000.0, 5.0, 4, 30.0, "q"};
    failed.status = 0;
    original.add(failed);
    JobRecord nowait{2000.0, -1.0, 2, 60.0, "q"};
    original.add(nowait);
    original.sortBySubmitTime();

    std::ostringstream out;
    writeSwfTrace(original, out);

    SwfParseOptions keep;
    keep.skipMissingWait = false;
    std::istringstream in(out.str());
    auto parsed = parseSwfTrace(in, "<in>", keep).value();
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed[0].status, 0);
    EXPECT_FALSE(parsed[1].hasWait());
    EXPECT_DOUBLE_EQ(parsed[1].waitSeconds, -1.0);
}

TEST(SwfRoundTrip, WriteParseWriteIsByteStable)
{
    Trace original("site", "machine");
    original.add({1000.5, 42.0, 8, 3600.0, "regular"});
    original.add({2000.0, -1.0, 64, -1.0, "debug"});
    JobRecord cancelled{3000.0, 0.0, 1, 10.0, "regular"};
    cancelled.status = 5;
    original.add(cancelled);
    original.sortBySubmitTime();

    SwfParseOptions keep;
    keep.skipMissingWait = false;

    std::ostringstream first;
    writeSwfTrace(original, first);

    std::istringstream in1(first.str());
    auto reparsed = parseSwfTrace(in1, "<in>", keep).value();
    std::ostringstream second;
    writeSwfTrace(reparsed, second);

    EXPECT_EQ(first.str(), second.str());
}

TEST(SwfWrite, EmitsHeaderComments)
{
    Trace t("SiteX", "MachineY");
    t.add({1.0, 2.0, 3, -1.0, "q"});
    std::ostringstream out;
    writeSwfTrace(t, out);
    const std::string text = out.str();
    EXPECT_NE(text.find("; Computer: MachineY"), std::string::npos);
    EXPECT_NE(text.find("; Installation: SiteX"), std::string::npos);
    EXPECT_NE(text.find("; Queue:"), std::string::npos);
}

TEST(SwfFile, SaveAndLoad)
{
    const std::string path = ::testing::TempDir() + "qdel_swf_test.swf";
    Trace original("s", "m");
    original.add({5.0, 7.0, 2, 100.0, "q"});
    ASSERT_TRUE(saveSwfTrace(original, path).ok());
    auto loaded = loadSwfTrace(path).value();
    ASSERT_EQ(loaded.size(), 1u);
    EXPECT_DOUBLE_EQ(loaded[0].waitSeconds, 7.0);
    std::remove(path.c_str());
}

TEST(SwfFile, MissingFileIsAnError)
{
    auto t = loadSwfTrace("/no/such/dir/file.swf");
    ASSERT_FALSE(t.ok());
    EXPECT_NE(t.error().reason.find("cannot open"), std::string::npos);
    EXPECT_EQ(t.error().file, "/no/such/dir/file.swf");
}

} // namespace
} // namespace trace
} // namespace qdel
