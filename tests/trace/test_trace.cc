/**
 * @file
 * Unit tests for the Trace container.
 */

#include <gtest/gtest.h>

#include "trace/trace.hh"

namespace qdel {
namespace trace {
namespace {

Trace
makeTrace()
{
    Trace t("sdsc", "datastar");
    JobRecord a{100.0, 50.0, 2, 600.0, "normal"};
    JobRecord b{200.0, 10.0, 32, 300.0, "normal"};
    JobRecord c{150.0, 0.0, 8, 60.0, "express"};
    t.add(a);
    t.add(b);
    t.add(c);
    t.sortBySubmitTime();
    return t;
}

TEST(Trace, SortAndAccess)
{
    auto t = makeTrace();
    ASSERT_EQ(t.size(), 3u);
    EXPECT_TRUE(t.isSorted());
    EXPECT_DOUBLE_EQ(t[0].submitTime, 100.0);
    EXPECT_DOUBLE_EQ(t[1].submitTime, 150.0);
    EXPECT_EQ(t.site(), "sdsc");
    EXPECT_EQ(t.machine(), "datastar");
}

TEST(Trace, JobRecordDerivedTimes)
{
    JobRecord job{100.0, 50.0, 2, 600.0, "q"};
    EXPECT_DOUBLE_EQ(job.startTime(), 150.0);
    EXPECT_DOUBLE_EQ(job.endTime(), 750.0);
}

TEST(Trace, WaitTimesInSubmissionOrder)
{
    auto waits = makeTrace().waitTimes();
    ASSERT_EQ(waits.size(), 3u);
    EXPECT_DOUBLE_EQ(waits[0], 50.0);
    EXPECT_DOUBLE_EQ(waits[1], 0.0);
    EXPECT_DOUBLE_EQ(waits[2], 10.0);
}

TEST(Trace, QueueNamesFirstAppearance)
{
    auto names = makeTrace().queueNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "normal");
    EXPECT_EQ(names[1], "express");
}

TEST(Trace, FilterByQueue)
{
    auto t = makeTrace();
    EXPECT_EQ(t.filterByQueue("normal").size(), 2u);
    EXPECT_EQ(t.filterByQueue("express").size(), 1u);
    EXPECT_EQ(t.filterByQueue("absent").size(), 0u);
    // Empty selector keeps everything.
    EXPECT_EQ(t.filterByQueue("").size(), 3u);
}

TEST(Trace, FilterByProcRange)
{
    auto t = makeTrace();
    EXPECT_EQ(t.filterByProcRange({1, 4}).size(), 1u);
    EXPECT_EQ(t.filterByProcRange({5, 16}).size(), 1u);
    EXPECT_EQ(t.filterByProcRange({17, 64}).size(), 1u);
    EXPECT_EQ(t.filterByProcRange({65, -1}).size(), 0u);
}

TEST(Trace, FilterByTimeHalfOpen)
{
    auto t = makeTrace();
    EXPECT_EQ(t.filterByTime(100.0, 200.0).size(), 2u);
    EXPECT_EQ(t.filterByTime(0.0, 100.0).size(), 0u);
    EXPECT_EQ(t.filterByTime(200.0, 1e9).size(), 1u);
}

TEST(Trace, Summary)
{
    auto s = makeTrace().summary();
    EXPECT_EQ(s.count, 3u);
    EXPECT_DOUBLE_EQ(s.median, 10.0);
    EXPECT_NEAR(s.mean, 20.0, 1e-12);
}

TEST(ProcRange, ContainsAndLabel)
{
    ProcRange small{1, 4};
    EXPECT_TRUE(small.contains(1));
    EXPECT_TRUE(small.contains(4));
    EXPECT_FALSE(small.contains(5));
    EXPECT_EQ(small.label(), "1-4");

    ProcRange open{65, -1};
    EXPECT_TRUE(open.contains(100000));
    EXPECT_FALSE(open.contains(64));
    EXPECT_EQ(open.label(), "65+");
}

TEST(ProcRange, PaperBins)
{
    ASSERT_EQ(paperProcRangeCount(), 4);
    const ProcRange *bins = paperProcRanges();
    EXPECT_EQ(bins[0].label(), "1-4");
    EXPECT_EQ(bins[1].label(), "5-16");
    EXPECT_EQ(bins[2].label(), "17-64");
    EXPECT_EQ(bins[3].label(), "65+");
    // The bins partition [1, inf).
    for (int procs : {1, 4, 5, 16, 17, 64, 65, 4096}) {
        int holders = 0;
        for (int b = 0; b < 4; ++b)
            holders += bins[b].contains(procs);
        EXPECT_EQ(holders, 1) << "procs=" << procs;
    }
}

} // namespace
} // namespace trace
} // namespace qdel
