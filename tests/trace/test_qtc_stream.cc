/**
 * @file
 * Tests for the sharded .qtc writer and streaming column reader:
 * write/stream round-trips across shard boundaries, the global
 * queue-id invariant when queues first appear mid-stream, per-queue
 * manifest counts, single-file .qtc streaming, batch-size slicing,
 * and corruption detection at both the shard and manifest level.
 */

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "trace/qtc_stream.hh"
#include "trace/trace_cache.hh"

namespace qdel {
namespace trace {
namespace {

std::string
scratchDir(const std::string &tag)
{
    const std::string dir = ::testing::TempDir() + "qdel_qtc_stream_" +
                            tag;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

/** A deterministic synthetic trace with two queues, "fast" late. */
Trace
sampleTrace(size_t n)
{
    Trace t("site", "machine");
    for (size_t i = 0; i < n; ++i) {
        JobRecord job;
        job.submitTime = 1000.0 + static_cast<double>(i) * 3.5;
        job.waitSeconds = static_cast<double>(i % 97) * 2.25;
        job.runSeconds = 60.0 + static_cast<double>(i % 11);
        job.procs = 1 + static_cast<int>(i % 64);
        job.status = i % 13 == 0 ? 0 : 1;
        // "fast" first appears past the first shard boundary (when
        // shardSize < 2n/3), exercising the growing queue table.
        job.queue = i > 2 * n / 3 && i % 5 == 0 ? "fast" : "normal";
        t.add(std::move(job));
    }
    return t;
}

void
expectTracesEqual(const Trace &actual, const Trace &expected)
{
    EXPECT_EQ(actual.site(), expected.site());
    EXPECT_EQ(actual.machine(), expected.machine());
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
        SCOPED_TRACE(i);
        EXPECT_EQ(actual[i].submitTime, expected[i].submitTime);
        EXPECT_EQ(actual[i].waitSeconds, expected[i].waitSeconds);
        EXPECT_EQ(actual[i].runSeconds, expected[i].runSeconds);
        EXPECT_EQ(actual[i].procs, expected[i].procs);
        EXPECT_EQ(actual[i].status, expected[i].status);
        EXPECT_EQ(actual[i].queue, expected[i].queue);
    }
}

std::string
writeShardSet(const Trace &t, const std::string &dir, size_t shard_size)
{
    ShardWriterOptions options;
    options.directory = dir;
    options.baseName = "sample";
    options.shardSize = shard_size;
    options.site = t.site();
    options.machine = t.machine();
    ShardedTraceWriter writer(options);
    for (const JobRecord &job : t)
        writer.add(job);
    EXPECT_TRUE(writer.finish().ok());
    EXPECT_EQ(writer.totalJobs(), t.size());
    return writer.manifestPath();
}

TEST(QtcStream, ShardedRoundTripMaterializes)
{
    const Trace t = sampleTrace(1000);
    const std::string dir = scratchDir("round_trip");
    const std::string manifest = writeShardSet(t, dir, 137);

    auto reader = StreamingTraceReader::open(manifest);
    ASSERT_TRUE(reader.ok()) << reader.error().str();
    EXPECT_EQ(reader.value().jobCount(), t.size());
    EXPECT_EQ(reader.value().shardCount(), (1000 + 136) / 137);
    EXPECT_EQ(reader.value().site(), "site");
    EXPECT_EQ(reader.value().machine(), "machine");

    auto materialized = reader.value().materialize();
    ASSERT_TRUE(materialized.ok()) << materialized.error().str();
    expectTracesEqual(materialized.value(), t);
}

TEST(QtcStream, GlobalQueueIdsAndPerQueueCounts)
{
    const Trace t = sampleTrace(900);
    const std::string dir = scratchDir("queue_counts");
    const std::string manifest = writeShardSet(t, dir, 100);

    auto reader = StreamingTraceReader::open(manifest);
    ASSERT_TRUE(reader.ok()) << reader.error().str();
    const auto &names = reader.value().queueNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "normal");
    EXPECT_EQ(names[1], "fast");

    std::vector<uint64_t> expected(names.size(), 0);
    for (const JobRecord &job : t)
        ++expected[job.queue == "normal" ? 0 : 1];
    EXPECT_EQ(reader.value().queueJobCounts(), expected);

    // The streamed queueId column must agree with the global table on
    // every row, including rows in shards written before "fast"
    // existed.
    ColumnBatch batch;
    size_t row = 0;
    while (true) {
        auto more = reader.value().next(&batch);
        ASSERT_TRUE(more.ok()) << more.error().str();
        if (!more.value())
            break;
        EXPECT_EQ(batch.begin, row);
        for (size_t i = 0; i < batch.size; ++i, ++row)
            EXPECT_EQ(names[batch.queueId[i]], t[row].queue);
    }
    EXPECT_EQ(row, t.size());
}

TEST(QtcStream, BatchesRespectBatchSizeAndShardBoundaries)
{
    const Trace t = sampleTrace(500);
    const std::string dir = scratchDir("batching");
    const std::string manifest = writeShardSet(t, dir, 150);

    StreamReadOptions options;
    options.batchSize = 64;
    auto reader = StreamingTraceReader::open(manifest, options);
    ASSERT_TRUE(reader.ok()) << reader.error().str();

    // Shards are 150/150/150/50; batches of <=64 must tile each shard
    // exactly: 64,64,22 then repeat, then 50.
    std::vector<size_t> sizes;
    ColumnBatch batch;
    while (true) {
        auto more = reader.value().next(&batch);
        ASSERT_TRUE(more.ok());
        if (!more.value())
            break;
        sizes.push_back(batch.size);
    }
    const std::vector<size_t> expected = {64, 64, 22, 64, 64, 22,
                                          64, 64, 22, 50};
    EXPECT_EQ(sizes, expected);

    // reset() rewinds to an identical stream.
    reader.value().reset();
    std::vector<size_t> again;
    while (true) {
        auto more = reader.value().next(&batch);
        ASSERT_TRUE(more.ok());
        if (!more.value())
            break;
        again.push_back(batch.size);
    }
    EXPECT_EQ(again, expected);
}

TEST(QtcStream, SingleQtcFileStreams)
{
    const Trace t = sampleTrace(300);
    const std::string dir = scratchDir("single_file");
    const std::string path = dir + "/single.qtc";
    IngestReport report;
    report.source = "single";
    report.parsedRecords = t.size();
    ASSERT_TRUE(
        writeTraceCache(path, t, report, /*options_word=*/0, FileStamp{})
            .ok());

    auto reader = StreamingTraceReader::open(path);
    ASSERT_TRUE(reader.ok()) << reader.error().str();
    EXPECT_EQ(reader.value().jobCount(), t.size());
    EXPECT_EQ(reader.value().shardCount(), 1u);
    std::vector<uint64_t> expected(2, 0);
    for (const JobRecord &job : t)
        ++expected[job.queue == "normal" ? 0 : 1];
    EXPECT_EQ(reader.value().queueJobCounts(), expected);

    auto materialized = reader.value().materialize();
    ASSERT_TRUE(materialized.ok()) << materialized.error().str();
    expectTracesEqual(materialized.value(), t);
}

TEST(QtcStream, EmptyWriterProducesEmptyStream)
{
    const std::string dir = scratchDir("empty");
    ShardWriterOptions options;
    options.directory = dir;
    options.baseName = "empty";
    options.shardSize = 10;
    ShardedTraceWriter writer(options);
    ASSERT_TRUE(writer.finish().ok());
    EXPECT_EQ(writer.shardCount(), 0u);

    auto reader = StreamingTraceReader::open(writer.manifestPath());
    ASSERT_TRUE(reader.ok()) << reader.error().str();
    EXPECT_EQ(reader.value().jobCount(), 0u);
    ColumnBatch batch;
    auto more = reader.value().next(&batch);
    ASSERT_TRUE(more.ok());
    EXPECT_FALSE(more.value());
}

TEST(QtcStream, CorruptShardDetectedOnLoad)
{
    const Trace t = sampleTrace(400);
    const std::string dir = scratchDir("corrupt_shard");
    const std::string manifest = writeShardSet(t, dir, 100);

    // Flip a bit in the middle of the second shard's columns.
    const std::string shard = dir + "/sample-00001.qtc";
    std::string bytes;
    {
        std::ifstream in(shard, std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        bytes = std::move(buf).str();
    }
    ASSERT_GT(bytes.size(), 100u);
    bytes[bytes.size() / 2] ^= 0x04;
    {
        std::ofstream out(shard, std::ios::binary | std::ios::trunc);
        out << bytes;
    }

    auto reader = StreamingTraceReader::open(manifest);
    ASSERT_TRUE(reader.ok()) << reader.error().str();
    ColumnBatch batch;
    // Shard 0 streams fine; the damaged shard 1 must error out.
    auto first = reader.value().next(&batch);
    ASSERT_TRUE(first.ok());
    EXPECT_TRUE(first.value());
    bool failed = false;
    while (true) {
        auto more = reader.value().next(&batch);
        if (!more.ok()) {
            failed = true;
            EXPECT_NE(more.error().str().find("CRC"), std::string::npos);
            break;
        }
        if (!more.value())
            break;
    }
    EXPECT_TRUE(failed);
}

TEST(QtcStream, TruncatedManifestRejected)
{
    const Trace t = sampleTrace(200);
    const std::string dir = scratchDir("bad_manifest");
    const std::string manifest = writeShardSet(t, dir, 50);

    std::string text;
    {
        std::ifstream in(manifest);
        std::ostringstream buf;
        buf << in.rdbuf();
        text = std::move(buf).str();
    }
    {
        std::ofstream out(manifest, std::ios::trunc);
        out << text.substr(0, text.size() / 2);
    }
    auto reader = StreamingTraceReader::open(manifest);
    EXPECT_FALSE(reader.ok());
}

TEST(QtcStream, JobCountAtExactShardMultipleLeavesNoEmptyShard)
{
    // finish() lands exactly on a flush boundary: the writer must not
    // emit a trailing zero-job shard, and the stream must tile into
    // full shards only.
    const Trace t = sampleTrace(300);
    const std::string dir = scratchDir("exact_multiple");
    const std::string manifest = writeShardSet(t, dir, 100);

    auto reader = StreamingTraceReader::open(manifest);
    ASSERT_TRUE(reader.ok()) << reader.error().str();
    EXPECT_EQ(reader.value().shardCount(), 3u);
    EXPECT_EQ(reader.value().jobCount(), 300u);
    ColumnBatch batch;
    size_t rows = 0;
    while (true) {
        auto more = reader.value().next(&batch);
        ASSERT_TRUE(more.ok()) << more.error().str();
        if (!more.value())
            break;
        EXPECT_GT(batch.size, 0u) << "no empty batches at boundaries";
        rows += batch.size;
    }
    EXPECT_EQ(rows, 300u);
    auto materialized = reader.value().materialize();
    ASSERT_TRUE(materialized.ok());
    expectTracesEqual(materialized.value(), t);
}

TEST(QtcStream, QueueAbsentFromTheLastShardKeepsGlobalCounts)
{
    // "early" appears only in the first shard; later shards carry
    // zero jobs for it. The manifest's per-queue totals and the global
    // queue-id table must still agree with the trace.
    Trace t("site", "machine");
    for (size_t i = 0; i < 250; ++i) {
        JobRecord job;
        job.submitTime = static_cast<double>(i);
        job.waitSeconds = static_cast<double>(i % 7);
        job.runSeconds = 10.0;
        job.procs = 1;
        job.status = 1;
        job.queue = i < 40 ? "early" : "late";
        t.add(std::move(job));
    }
    const std::string dir = scratchDir("queue_absent_late");
    const std::string manifest = writeShardSet(t, dir, 100);

    auto reader = StreamingTraceReader::open(manifest);
    ASSERT_TRUE(reader.ok()) << reader.error().str();
    const auto &names = reader.value().queueNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "early");
    EXPECT_EQ(names[1], "late");
    const std::vector<uint64_t> expected = {40, 210};
    EXPECT_EQ(reader.value().queueJobCounts(), expected);

    ColumnBatch batch;
    size_t row = 0;
    while (true) {
        auto more = reader.value().next(&batch);
        ASSERT_TRUE(more.ok()) << more.error().str();
        if (!more.value())
            break;
        for (size_t i = 0; i < batch.size; ++i, ++row)
            EXPECT_EQ(names[batch.queueId[i]], t[row].queue);
    }
    EXPECT_EQ(row, t.size());
}

TEST(QtcStream, FinalBatchOfOneRow)
{
    // n % batchSize == 1: the stream must end with a single-row batch,
    // not drop it or merge it across the shard boundary.
    const Trace t = sampleTrace(129);
    const std::string dir = scratchDir("final_single");
    const std::string manifest = writeShardSet(t, dir, 129);

    StreamReadOptions options;
    options.batchSize = 64;
    auto reader = StreamingTraceReader::open(manifest, options);
    ASSERT_TRUE(reader.ok()) << reader.error().str();
    std::vector<size_t> sizes;
    ColumnBatch batch;
    while (true) {
        auto more = reader.value().next(&batch);
        ASSERT_TRUE(more.ok());
        if (!more.value())
            break;
        sizes.push_back(batch.size);
    }
    const std::vector<size_t> expected = {64, 64, 1};
    EXPECT_EQ(sizes, expected);
}

TEST(QtcStream, SingleJobTraceRoundTrips)
{
    Trace t("site", "machine");
    JobRecord job;
    job.submitTime = 42.0;
    job.waitSeconds = 7.5;
    job.runSeconds = 60.0;
    job.procs = 8;
    job.status = 1;
    job.queue = "only";
    t.add(std::move(job));
    const std::string dir = scratchDir("single_job");
    const std::string manifest = writeShardSet(t, dir, 1000);

    auto reader = StreamingTraceReader::open(manifest);
    ASSERT_TRUE(reader.ok()) << reader.error().str();
    EXPECT_EQ(reader.value().shardCount(), 1u);
    EXPECT_EQ(reader.value().jobCount(), 1u);
    ColumnBatch batch;
    auto more = reader.value().next(&batch);
    ASSERT_TRUE(more.ok());
    ASSERT_TRUE(more.value());
    ASSERT_EQ(batch.size, 1u);
    EXPECT_EQ(batch.wait[0], 7.5);
    more = reader.value().next(&batch);
    ASSERT_TRUE(more.ok());
    EXPECT_FALSE(more.value());
    auto materialized = reader.value().materialize();
    ASSERT_TRUE(materialized.ok());
    expectTracesEqual(materialized.value(), t);
}

TEST(QtcStream, ShardOfOneJobEach)
{
    // shardSize 1 produces one shard per job — the degenerate maximum
    // shard count; every shard must still stream in order.
    const Trace t = sampleTrace(7);
    const std::string dir = scratchDir("shard_of_one");
    const std::string manifest = writeShardSet(t, dir, 1);

    auto reader = StreamingTraceReader::open(manifest);
    ASSERT_TRUE(reader.ok()) << reader.error().str();
    EXPECT_EQ(reader.value().shardCount(), 7u);
    auto materialized = reader.value().materialize();
    ASSERT_TRUE(materialized.ok());
    expectTracesEqual(materialized.value(), t);
}

} // namespace
} // namespace trace
} // namespace qdel
