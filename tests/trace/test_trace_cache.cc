/**
 * @file
 * Tests for the binary ".qtc" trace cache: SWF -> .qtc -> records
 * round-trip equality on the checked-in corpus, staleness and
 * corruption detection (truncated and bit-flipped cache files), and
 * the loadTrace fallback-to-text contract — a damaged cache never
 * changes the final Trace, only costs a re-parse.
 */

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "trace/swf_format.hh"
#include "trace/trace_cache.hh"
#include "trace/trace_loader.hh"
#include "util/mapped_file.hh"

namespace qdel {
namespace trace {
namespace {

std::string
corpusFile(const std::string &name)
{
    return std::string(QDEL_CORPUS_DIR) + "/" + name;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return std::move(out).str();
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
    ASSERT_TRUE(out.good()) << path;
}

void
expectTracesEqual(const Trace &actual, const Trace &expected)
{
    EXPECT_EQ(actual.site(), expected.site());
    EXPECT_EQ(actual.machine(), expected.machine());
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
        SCOPED_TRACE(i);
        EXPECT_EQ(actual[i].submitTime, expected[i].submitTime);
        EXPECT_EQ(actual[i].waitSeconds, expected[i].waitSeconds);
        EXPECT_EQ(actual[i].procs, expected[i].procs);
        EXPECT_EQ(actual[i].runSeconds, expected[i].runSeconds);
        EXPECT_EQ(actual[i].queue, expected[i].queue);
        EXPECT_EQ(actual[i].status, expected[i].status);
    }
}

void
expectReportsEqual(const IngestReport &actual,
                   const IngestReport &expected)
{
    EXPECT_EQ(actual.source, expected.source);
    EXPECT_EQ(actual.totalLines, expected.totalLines);
    EXPECT_EQ(actual.commentLines, expected.commentLines);
    EXPECT_EQ(actual.parsedRecords, expected.parsedRecords);
    EXPECT_EQ(actual.malformedLines, expected.malformedLines);
    EXPECT_EQ(actual.filteredRecords, expected.filteredRecords);
    ASSERT_EQ(actual.errors.size(), expected.errors.size());
    for (size_t i = 0; i < expected.errors.size(); ++i) {
        SCOPED_TRACE(i);
        EXPECT_EQ(actual.errors[i].file, expected.errors[i].file);
        EXPECT_EQ(actual.errors[i].line, expected.errors[i].line);
        EXPECT_EQ(actual.errors[i].field, expected.errors[i].field);
        EXPECT_EQ(actual.errors[i].reason, expected.errors[i].reason);
    }
}

/**
 * A private copy of the corpus SWF file in a per-test scratch
 * directory (each test starts without a leftover ".qtc" sidecar).
 */
struct CacheFixture
{
    std::string dir;
    std::string swfPath;
    Trace parsed{"", ""};
    IngestReport report;
    TraceLoadOptions loadOptions;

    CacheFixture()
    {
        dir = ::testing::TempDir() + "qdel_trace_cache_" +
              ::testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name();
        std::filesystem::remove_all(dir);
        std::filesystem::create_directories(dir);
        swfPath = dir + "/mixed.swf";
        writeFile(swfPath, readFile(corpusFile("mixed.swf")));

        // The corpus file contains malformed lines on purpose, so the
        // cache workflow runs in lenient mode.
        loadOptions.mode = ParseMode::Lenient;
        loadOptions.cache = true;

        SwfParseOptions text_options;
        text_options.mode = ParseMode::Lenient;
        parsed = loadSwfTrace(swfPath, text_options, &report).value();
    }

    uint32_t optionsWord() const
    {
        SwfParseOptions text_options;
        text_options.mode = ParseMode::Lenient;
        return swfCacheOptions(text_options);
    }

    std::string cachePath() const { return traceCachePath(swfPath, ""); }
};

TEST(TraceCache, RoundTripPreservesRecordsAndReport)
{
    CacheFixture fx;
    const auto stamp = FileStamp::of(fx.swfPath).value();
    ASSERT_TRUE(writeTraceCache(fx.cachePath(), fx.parsed, fx.report,
                                fx.optionsWord(), stamp)
                    .ok());

    auto cached = readTraceCache(fx.cachePath(), fx.optionsWord(), stamp);
    ASSERT_EQ(cached.status, CacheStatus::Hit) << cached.detail;
    expectTracesEqual(cached.trace, fx.parsed);
    expectReportsEqual(cached.report, fx.report);
}

TEST(TraceCache, LoadTraceWritesThenHits)
{
    CacheFixture fx;
    ASSERT_FALSE(std::filesystem::exists(fx.cachePath()));

    // First load: cache miss, text parse, cache written.
    IngestReport first_report;
    auto first = loadTrace(fx.swfPath, fx.loadOptions, &first_report);
    ASSERT_TRUE(first.ok());
    EXPECT_TRUE(std::filesystem::exists(fx.cachePath()));
    expectTracesEqual(first.value(), fx.parsed);
    expectReportsEqual(first_report, fx.report);

    // Second load: served from the cache, still identical.
    IngestReport second_report;
    auto second = loadTrace(fx.swfPath, fx.loadOptions, &second_report);
    ASSERT_TRUE(second.ok());
    expectTracesEqual(second.value(), fx.parsed);
    expectReportsEqual(second_report, fx.report);
}

TEST(TraceCache, StaleOnSourceChange)
{
    CacheFixture fx;
    ASSERT_TRUE(loadTrace(fx.swfPath, fx.loadOptions).ok());

    // Appending a record changes the source stamp; the old cache must
    // not be served.
    writeFile(fx.swfPath,
              readFile(fx.swfPath) +
                  "21 99000 50 600 16 -1 -1 16 -1 -1 1 1 1 -1 0\n");
    const auto stamp = FileStamp::of(fx.swfPath).value();
    auto cached = readTraceCache(fx.cachePath(), fx.optionsWord(), stamp);
    EXPECT_EQ(cached.status, CacheStatus::Stale);

    SwfParseOptions text_options;
    text_options.mode = ParseMode::Lenient;
    auto reparsed = loadSwfTrace(fx.swfPath, text_options).value();
    auto reloaded = loadTrace(fx.swfPath, fx.loadOptions);
    ASSERT_TRUE(reloaded.ok());
    expectTracesEqual(reloaded.value(), reparsed);
    EXPECT_EQ(reloaded.value().size(), fx.parsed.size() + 1);
}

TEST(TraceCache, StaleOnOptionsChange)
{
    CacheFixture fx;
    ASSERT_TRUE(loadTrace(fx.swfPath, fx.loadOptions).ok());
    const auto stamp = FileStamp::of(fx.swfPath).value();

    SwfParseOptions other;
    other.mode = ParseMode::Lenient;
    other.skipMissingWait = false;
    ASSERT_NE(swfCacheOptions(other), fx.optionsWord());
    auto cached =
        readTraceCache(fx.cachePath(), swfCacheOptions(other), stamp);
    EXPECT_EQ(cached.status, CacheStatus::Stale);
}

TEST(TraceCache, MissingCacheReported)
{
    CacheFixture fx;
    const auto stamp = FileStamp::of(fx.swfPath).value();
    auto cached = readTraceCache(fx.cachePath(), fx.optionsWord(), stamp);
    EXPECT_EQ(cached.status, CacheStatus::Missing);
}

TEST(TraceCache, TruncatedCacheFallsBackToTextParse)
{
    CacheFixture fx;
    ASSERT_TRUE(loadTrace(fx.swfPath, fx.loadOptions).ok());

    const std::string cache = readFile(fx.cachePath());
    ASSERT_GT(cache.size(), 64u);
    writeFile(fx.cachePath(), cache.substr(0, cache.size() / 2));

    const auto stamp = FileStamp::of(fx.swfPath).value();
    auto cached = readTraceCache(fx.cachePath(), fx.optionsWord(), stamp);
    EXPECT_EQ(cached.status, CacheStatus::Corrupt);

    // loadTrace survives the damage: same Trace as a pure text parse,
    // and the cache is rewritten so the next load hits again.
    IngestReport rep;
    auto loaded = loadTrace(fx.swfPath, fx.loadOptions, &rep);
    ASSERT_TRUE(loaded.ok());
    expectTracesEqual(loaded.value(), fx.parsed);
    expectReportsEqual(rep, fx.report);
    auto rewritten =
        readTraceCache(fx.cachePath(), fx.optionsWord(), stamp);
    EXPECT_EQ(rewritten.status, CacheStatus::Hit) << rewritten.detail;
}

TEST(TraceCache, BitFlippedCacheFallsBackToTextParse)
{
    CacheFixture fx;
    ASSERT_TRUE(loadTrace(fx.swfPath, fx.loadOptions).ok());

    std::string cache = readFile(fx.cachePath());
    ASSERT_GT(cache.size(), 64u);
    // Flip a bit in a data column, past the header so the CRC is the
    // detector rather than the magic/size checks.
    cache[cache.size() / 2] ^= 0x10;
    writeFile(fx.cachePath(), cache);

    const auto stamp = FileStamp::of(fx.swfPath).value();
    auto cached = readTraceCache(fx.cachePath(), fx.optionsWord(), stamp);
    EXPECT_EQ(cached.status, CacheStatus::Corrupt);

    IngestReport rep;
    auto loaded = loadTrace(fx.swfPath, fx.loadOptions, &rep);
    ASSERT_TRUE(loaded.ok());
    expectTracesEqual(loaded.value(), fx.parsed);
    expectReportsEqual(rep, fx.report);
}

TEST(TraceCache, TruncatedToHeaderOnlyIsCorrupt)
{
    CacheFixture fx;
    ASSERT_TRUE(loadTrace(fx.swfPath, fx.loadOptions).ok());
    const std::string cache = readFile(fx.cachePath());
    writeFile(fx.cachePath(), cache.substr(0, 16));
    const auto stamp = FileStamp::of(fx.swfPath).value();
    auto cached = readTraceCache(fx.cachePath(), fx.optionsWord(), stamp);
    EXPECT_EQ(cached.status, CacheStatus::Corrupt);
}

TEST(TraceCache, CacheDirPlacesSidecarElsewhere)
{
    CacheFixture fx;
    const std::string cache_dir = fx.dir + "/cachedir";
    TraceLoadOptions options = fx.loadOptions;
    options.cacheDir = cache_dir;

    auto loaded = loadTrace(fx.swfPath, options);
    ASSERT_TRUE(loaded.ok());
    const std::string expected_path =
        traceCachePath(fx.swfPath, cache_dir);
    EXPECT_EQ(expected_path, cache_dir + "/mixed.swf.qtc");
    EXPECT_TRUE(std::filesystem::exists(expected_path));
    EXPECT_FALSE(std::filesystem::exists(fx.cachePath()));
    expectTracesEqual(loaded.value(), fx.parsed);
}

TEST(TraceCache, NativeTraceRoundTrips)
{
    const std::string dir = ::testing::TempDir() + "qdel_trace_cache_nat";
    std::filesystem::create_directories(dir);
    const std::string path = dir + "/mixed_native.txt";
    writeFile(path, readFile(corpusFile("mixed_native.txt")));

    TraceLoadOptions options;
    options.mode = ParseMode::Lenient;
    options.cache = true;

    IngestReport text_report;
    TraceLoadOptions text_only = options;
    text_only.cache = false;
    auto text = loadTrace(path, text_only, &text_report);
    ASSERT_TRUE(text.ok());

    IngestReport warm_report;
    auto warm = loadTrace(path, options, &warm_report);
    ASSERT_TRUE(warm.ok());
    IngestReport hit_report;
    auto hit = loadTrace(path, options, &hit_report);
    ASSERT_TRUE(hit.ok());

    expectTracesEqual(warm.value(), text.value());
    expectTracesEqual(hit.value(), text.value());
    expectReportsEqual(warm_report, text_report);
    expectReportsEqual(hit_report, text_report);
}

} // namespace
} // namespace trace
} // namespace qdel
