/**
 * @file
 * Byte-identity tests between the legacy getline trace parsers and the
 * zero-copy buffer parsers: same Trace, same IngestReport (every
 * counter and every retained error), same strict-mode failure — in
 * both modes, on the adversarial checked-in corpus, and with chunk
 * sizes small enough to force many parallel chunk merges.
 */

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "trace/native_format.hh"
#include "trace/swf_format.hh"

namespace qdel {
namespace trace {
namespace {

std::string
corpusText(const std::string &name)
{
    std::ifstream in(std::string(QDEL_CORPUS_DIR) + "/" + name,
                     std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return std::move(out).str();
}

void
expectTracesEqual(const Trace &actual, const Trace &expected)
{
    EXPECT_EQ(actual.site(), expected.site());
    EXPECT_EQ(actual.machine(), expected.machine());
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
        SCOPED_TRACE(i);
        EXPECT_EQ(actual[i].submitTime, expected[i].submitTime);
        EXPECT_EQ(actual[i].waitSeconds, expected[i].waitSeconds);
        EXPECT_EQ(actual[i].procs, expected[i].procs);
        EXPECT_EQ(actual[i].runSeconds, expected[i].runSeconds);
        EXPECT_EQ(actual[i].queue, expected[i].queue);
        EXPECT_EQ(actual[i].status, expected[i].status);
    }
}

void
expectReportsEqual(const IngestReport &actual,
                   const IngestReport &expected)
{
    EXPECT_EQ(actual.totalLines, expected.totalLines);
    EXPECT_EQ(actual.commentLines, expected.commentLines);
    EXPECT_EQ(actual.parsedRecords, expected.parsedRecords);
    EXPECT_EQ(actual.malformedLines, expected.malformedLines);
    EXPECT_EQ(actual.filteredRecords, expected.filteredRecords);
    ASSERT_EQ(actual.errors.size(), expected.errors.size());
    for (size_t i = 0; i < expected.errors.size(); ++i) {
        SCOPED_TRACE(i);
        EXPECT_EQ(actual.errors[i].file, expected.errors[i].file);
        EXPECT_EQ(actual.errors[i].line, expected.errors[i].line);
        EXPECT_EQ(actual.errors[i].field, expected.errors[i].field);
        EXPECT_EQ(actual.errors[i].reason, expected.errors[i].reason);
    }
}

/**
 * Run @p text through both SWF paths under @p options and assert
 * byte-identical results: equal traces and reports on success, or the
 * exact same ParseError on failure.
 */
void
checkSwfParity(const std::string &text, SwfParseOptions options)
{
    IngestReport stream_report;
    std::istringstream in(text);
    auto via_stream =
        parseSwfTrace(in, "parity.swf", options, &stream_report);

    IngestReport buffer_report;
    auto via_buffer =
        parseSwfBuffer(text, "parity.swf", options, &buffer_report);

    ASSERT_EQ(via_stream.ok(), via_buffer.ok());
    expectReportsEqual(buffer_report, stream_report);
    if (via_stream.ok()) {
        expectTracesEqual(via_buffer.value(), via_stream.value());
    } else {
        EXPECT_EQ(via_buffer.error().file, via_stream.error().file);
        EXPECT_EQ(via_buffer.error().line, via_stream.error().line);
        EXPECT_EQ(via_buffer.error().field, via_stream.error().field);
        EXPECT_EQ(via_buffer.error().reason, via_stream.error().reason);
    }
}

/** Native-format twin of checkSwfParity. */
void
checkNativeParity(const std::string &text, NativeParseOptions options)
{
    IngestReport stream_report;
    std::istringstream in(text);
    auto via_stream =
        parseNativeTrace(in, "parity.txt", options, &stream_report);

    IngestReport buffer_report;
    auto via_buffer =
        parseNativeBuffer(text, "parity.txt", options, &buffer_report);

    ASSERT_EQ(via_stream.ok(), via_buffer.ok());
    expectReportsEqual(buffer_report, stream_report);
    if (via_stream.ok()) {
        expectTracesEqual(via_buffer.value(), via_stream.value());
    } else {
        EXPECT_EQ(via_buffer.error().file, via_stream.error().file);
        EXPECT_EQ(via_buffer.error().line, via_stream.error().line);
        EXPECT_EQ(via_buffer.error().field, via_stream.error().field);
        EXPECT_EQ(via_buffer.error().reason, via_stream.error().reason);
    }
}

TEST(ParseParity, SwfCorpusLenientMultiChunk)
{
    const std::string text = corpusText("mixed.swf");
    for (size_t chunk_bytes : {size_t(0), size_t(64), size_t(17)}) {
        for (long long threads : {1LL, 4LL}) {
            SCOPED_TRACE(chunk_bytes);
            SCOPED_TRACE(threads);
            SwfParseOptions options;
            options.mode = ParseMode::Lenient;
            options.chunkBytes = chunk_bytes;
            options.threads = threads;
            checkSwfParity(text, options);
        }
    }
}

TEST(ParseParity, SwfCorpusStrictMultiChunk)
{
    // The corpus has malformed lines: strict mode must report the SAME
    // first error regardless of chunking, and the counters must cover
    // exactly the lines before it.
    const std::string text = corpusText("mixed.swf");
    for (size_t chunk_bytes : {size_t(0), size_t(64), size_t(17)}) {
        for (long long threads : {1LL, 4LL}) {
            SCOPED_TRACE(chunk_bytes);
            SCOPED_TRACE(threads);
            SwfParseOptions options;
            options.mode = ParseMode::Strict;
            options.chunkBytes = chunk_bytes;
            options.threads = threads;
            checkSwfParity(text, options);
        }
    }
}

TEST(ParseParity, SwfFilterOptionCombinations)
{
    const std::string text = corpusText("mixed.swf");
    for (bool skip_missing_wait : {true, false}) {
        for (bool skip_failed : {true, false}) {
            SCOPED_TRACE(skip_missing_wait);
            SCOPED_TRACE(skip_failed);
            SwfParseOptions options;
            options.mode = ParseMode::Lenient;
            options.skipMissingWait = skip_missing_wait;
            options.skipFailed = skip_failed;
            options.chunkBytes = 64;
            options.threads = 4;
            checkSwfParity(text, options);
        }
    }
}

TEST(ParseParity, SwfEdgeShapes)
{
    SwfParseOptions lenient;
    lenient.mode = ParseMode::Lenient;
    lenient.chunkBytes = 8;
    lenient.threads = 4;
    // Empty input, comment-only, no trailing newline, CRLF line
    // endings, a queue directive after its first record.
    checkSwfParity("", lenient);
    checkSwfParity("; only a comment\n", lenient);
    checkSwfParity("1 100 5 60 4 -1 -1 4 -1 -1 1 1 1 -1 2", lenient);
    checkSwfParity("; Computer: crlf\r\n"
                   "1 100 5 60 4 -1 -1 4 -1 -1 1 1 1 -1 2\r\n",
                   lenient);
    checkSwfParity("1 100 5 60 4 -1 -1 4 -1 -1 1 1 1 -1 3\n"
                   "; Queue: 3 late-name\n"
                   "2 200 6 60 4 -1 -1 4 -1 -1 1 1 1 -1 3\n",
                   lenient);
}

TEST(ParseParity, NativeCorpusBothModes)
{
    const std::string text = corpusText("mixed_native.txt");
    for (ParseMode mode : {ParseMode::Strict, ParseMode::Lenient}) {
        for (size_t chunk_bytes : {size_t(0), size_t(32), size_t(7)}) {
            for (long long threads : {1LL, 4LL}) {
                SCOPED_TRACE(static_cast<int>(mode));
                SCOPED_TRACE(chunk_bytes);
                SCOPED_TRACE(threads);
                NativeParseOptions options;
                options.mode = mode;
                options.chunkBytes = chunk_bytes;
                options.threads = threads;
                checkNativeParity(text, options);
            }
        }
    }
}

TEST(ParseParity, NativeEdgeShapes)
{
    NativeParseOptions lenient;
    lenient.mode = ParseMode::Lenient;
    lenient.chunkBytes = 4;
    lenient.threads = 4;
    checkNativeParity("", lenient);
    checkNativeParity("# site=alpha machine=beta\n100 5\n", lenient);
    checkNativeParity("100 5 4 batch", lenient);
    checkNativeParity("# site=a machine=m\r\n100 5 1 -\r\n", lenient);
}

} // namespace
} // namespace trace
} // namespace qdel
