/**
 * @file
 * Unit tests for the native trace format parser/writer.
 */

#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

#include "trace/native_format.hh"

namespace qdel {
namespace trace {
namespace {

TEST(NativeParse, MinimalTwoColumn)
{
    std::istringstream in("1000 50\n2000 0\n");
    auto t = parseNativeTrace(in).value();
    ASSERT_EQ(t.size(), 2u);
    EXPECT_DOUBLE_EQ(t[0].submitTime, 1000.0);
    EXPECT_DOUBLE_EQ(t[0].waitSeconds, 50.0);
    EXPECT_EQ(t[0].procs, 1);  // default
    EXPECT_TRUE(t[0].queue.empty());
}

TEST(NativeParse, FullFourColumn)
{
    std::istringstream in("1000 50 16 normal\n");
    auto t = parseNativeTrace(in).value();
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0].procs, 16);
    EXPECT_EQ(t[0].queue, "normal");
}

TEST(NativeParse, CommentsAndBlanksIgnored)
{
    std::istringstream in("# header\n\n  \n1000 1\n# trailing\n");
    EXPECT_EQ(parseNativeTrace(in).value().size(), 1u);
}

TEST(NativeParse, SortsBySubmitTime)
{
    std::istringstream in("3000 1\n1000 2\n2000 3\n");
    auto t = parseNativeTrace(in).value();
    EXPECT_TRUE(t.isSorted());
    EXPECT_DOUBLE_EQ(t[0].waitSeconds, 2.0);
}

TEST(NativeParse, DashQueueMeansEmpty)
{
    std::istringstream in("1000 1 4 -\n");
    auto t = parseNativeTrace(in).value();
    EXPECT_TRUE(t[0].queue.empty());
}

TEST(NativeParse, StrictModeRejectsMalformedLines)
{
    {
        std::istringstream in("justonefield\n");
        auto t = parseNativeTrace(in, "bad.txt");
        ASSERT_FALSE(t.ok());
        EXPECT_EQ(t.error().file, "bad.txt");
        EXPECT_EQ(t.error().line, 1u);
        EXPECT_NE(t.error().reason.find("at least"), std::string::npos);
    }
    {
        std::istringstream in("1000 abc\n");
        auto t = parseNativeTrace(in);
        ASSERT_FALSE(t.ok());
        EXPECT_EQ(t.error().field, "field 2 (wait)");
        EXPECT_NE(t.error().reason.find("bad numeric value"),
                  std::string::npos);
    }
    {
        std::istringstream in("1000 -5\n");
        auto t = parseNativeTrace(in);
        ASSERT_FALSE(t.ok());
        EXPECT_NE(t.error().reason.find("negative wait"),
                  std::string::npos);
    }
    {
        std::istringstream in("1000 5 0\n");
        auto t = parseNativeTrace(in);
        ASSERT_FALSE(t.ok());
        EXPECT_NE(t.error().reason.find("bad processor count"),
                  std::string::npos);
    }
    {
        // Non-finite values are rejected even though strtod accepts
        // the spelling.
        std::istringstream in("inf 5\n");
        auto t = parseNativeTrace(in);
        ASSERT_FALSE(t.ok());
        EXPECT_EQ(t.error().field, "field 1 (submit)");
    }
}

TEST(NativeParse, StrictStopsAtFirstErrorAndRecordsIt)
{
    std::istringstream in("# ok\n1000 1\n1000 abc\n2000 2\n");
    IngestReport report;
    auto t = parseNativeTrace(in, "part.txt", {}, &report);
    ASSERT_FALSE(t.ok());
    EXPECT_EQ(t.error().line, 3u);
    // The report describes everything consumed up to the failure.
    EXPECT_EQ(report.totalLines, 3u);
    EXPECT_EQ(report.commentLines, 1u);
    EXPECT_EQ(report.parsedRecords, 1u);
    EXPECT_EQ(report.malformedLines, 1u);
    ASSERT_EQ(report.errors.size(), 1u);
    EXPECT_EQ(report.errors[0].line, 3u);
}

TEST(NativeParse, LenientModeSkipsAndCounts)
{
    std::istringstream in("# ok\n1000 1\n1000 abc\nbad\n2000 2\n");
    NativeParseOptions options;
    options.mode = ParseMode::Lenient;
    IngestReport report;
    auto t = parseNativeTrace(in, "mixed.txt", options, &report);
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(t.value().size(), 2u);
    EXPECT_EQ(report.totalLines, 5u);
    EXPECT_EQ(report.commentLines, 1u);
    EXPECT_EQ(report.parsedRecords, 2u);
    EXPECT_EQ(report.malformedLines, 2u);
    EXPECT_EQ(report.filteredRecords, 0u);
    EXPECT_EQ(report.accounted(), report.totalLines);
}

TEST(NativeRoundTrip, PreservesRecords)
{
    Trace original("site", "machine");
    original.add({1000.0, 25.5, 8, -1.0, "high"});
    original.add({2000.0, 0.0, 1, -1.0, ""});
    original.sortBySubmitTime();

    std::ostringstream out;
    writeNativeTrace(original, out);
    std::istringstream in(out.str());
    auto parsed = parseNativeTrace(in).value();

    ASSERT_EQ(parsed.size(), original.size());
    for (size_t i = 0; i < parsed.size(); ++i) {
        EXPECT_DOUBLE_EQ(parsed[i].submitTime, original[i].submitTime);
        EXPECT_NEAR(parsed[i].waitSeconds, original[i].waitSeconds, 1e-9);
        EXPECT_EQ(parsed[i].procs, original[i].procs);
        EXPECT_EQ(parsed[i].queue, original[i].queue);
    }
}

TEST(NativeRoundTrip, WriteParseWriteIsByteStable)
{
    // Fractional waits exercise the %.6g re-rendering: after one
    // write->parse cycle the text representation is a fixpoint.
    Trace original("site", "machine");
    original.add({1000.0, 25.5, 8, -1.0, "high"});
    original.add({2000.0, 1.0 / 3.0, 1, -1.0, ""});
    original.add({3000.0, 123456.789, 4, -1.0, "wide"});
    original.sortBySubmitTime();

    std::ostringstream first;
    writeNativeTrace(original, first);
    std::istringstream in1(first.str());
    auto reparsed = parseNativeTrace(in1).value();
    std::ostringstream second;
    writeNativeTrace(reparsed, second);

    EXPECT_EQ(first.str(), second.str());
}

TEST(NativeFile, SaveAndLoad)
{
    const std::string path =
        ::testing::TempDir() + "qdel_native_test.txt";
    Trace original("s", "m");
    original.add({5.0, 7.0, 2, -1.0, "q"});
    ASSERT_TRUE(saveNativeTrace(original, path).ok());
    auto loaded = loadNativeTrace(path).value();
    ASSERT_EQ(loaded.size(), 1u);
    EXPECT_DOUBLE_EQ(loaded[0].waitSeconds, 7.0);
    std::remove(path.c_str());
}

TEST(NativeFile, MissingFileIsAnError)
{
    auto t = loadNativeTrace("/no/such/file.txt");
    ASSERT_FALSE(t.ok());
    EXPECT_NE(t.error().reason.find("cannot open"), std::string::npos);
    EXPECT_EQ(t.error().file, "/no/such/file.txt");
}

} // namespace
} // namespace trace
} // namespace qdel
