/**
 * @file
 * Unit tests for the native trace format parser/writer.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "trace/native_format.hh"

namespace qdel {
namespace trace {
namespace {

TEST(NativeParse, MinimalTwoColumn)
{
    std::istringstream in("1000 50\n2000 0\n");
    auto t = parseNativeTrace(in);
    ASSERT_EQ(t.size(), 2u);
    EXPECT_DOUBLE_EQ(t[0].submitTime, 1000.0);
    EXPECT_DOUBLE_EQ(t[0].waitSeconds, 50.0);
    EXPECT_EQ(t[0].procs, 1);  // default
    EXPECT_TRUE(t[0].queue.empty());
}

TEST(NativeParse, FullFourColumn)
{
    std::istringstream in("1000 50 16 normal\n");
    auto t = parseNativeTrace(in);
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0].procs, 16);
    EXPECT_EQ(t[0].queue, "normal");
}

TEST(NativeParse, CommentsAndBlanksIgnored)
{
    std::istringstream in("# header\n\n  \n1000 1\n# trailing\n");
    EXPECT_EQ(parseNativeTrace(in).size(), 1u);
}

TEST(NativeParse, SortsBySubmitTime)
{
    std::istringstream in("3000 1\n1000 2\n2000 3\n");
    auto t = parseNativeTrace(in);
    EXPECT_TRUE(t.isSorted());
    EXPECT_DOUBLE_EQ(t[0].waitSeconds, 2.0);
}

TEST(NativeParse, DashQueueMeansEmpty)
{
    std::istringstream in("1000 1 4 -\n");
    auto t = parseNativeTrace(in);
    EXPECT_TRUE(t[0].queue.empty());
}

TEST(NativeParseDeath, RejectsMalformedLines)
{
    {
        std::istringstream in("justonefield\n");
        EXPECT_DEATH(parseNativeTrace(in), "at least");
    }
    {
        std::istringstream in("1000 abc\n");
        EXPECT_DEATH(parseNativeTrace(in), "unparseable");
    }
    {
        std::istringstream in("1000 -5\n");
        EXPECT_DEATH(parseNativeTrace(in), "negative wait");
    }
    {
        std::istringstream in("1000 5 0\n");
        EXPECT_DEATH(parseNativeTrace(in), "bad processor count");
    }
}

TEST(NativeRoundTrip, PreservesRecords)
{
    Trace original("site", "machine");
    original.add({1000.0, 25.5, 8, -1.0, "high"});
    original.add({2000.0, 0.0, 1, -1.0, ""});
    original.sortBySubmitTime();

    std::ostringstream out;
    writeNativeTrace(original, out);
    std::istringstream in(out.str());
    auto parsed = parseNativeTrace(in);

    ASSERT_EQ(parsed.size(), original.size());
    for (size_t i = 0; i < parsed.size(); ++i) {
        EXPECT_DOUBLE_EQ(parsed[i].submitTime, original[i].submitTime);
        EXPECT_NEAR(parsed[i].waitSeconds, original[i].waitSeconds, 1e-9);
        EXPECT_EQ(parsed[i].procs, original[i].procs);
        EXPECT_EQ(parsed[i].queue, original[i].queue);
    }
}

TEST(NativeFile, SaveAndLoad)
{
    const std::string path =
        ::testing::TempDir() + "qdel_native_test.txt";
    Trace original("s", "m");
    original.add({5.0, 7.0, 2, -1.0, "q"});
    saveNativeTrace(original, path);
    auto loaded = loadNativeTrace(path);
    ASSERT_EQ(loaded.size(), 1u);
    EXPECT_DOUBLE_EQ(loaded[0].waitSeconds, 7.0);
    std::remove(path.c_str());
}

TEST(NativeFileDeath, MissingFile)
{
    EXPECT_DEATH(loadNativeTrace("/no/such/file.txt"), "cannot open");
}

} // namespace
} // namespace trace
} // namespace qdel
