/**
 * @file
 * Implementation of the binomial quantile-bound index computations.
 */

#include "stats/quantile_bounds.hh"

#include <cmath>

#include "stats/special_functions.hh"
#include "util/logging.hh"

namespace qdel {
namespace stats {

namespace {

void
checkArgs(size_t n, double q, double confidence)
{
    if (n < 1)
        panic("quantile bound: empty sample");
    if (!(q > 0.0) || !(q < 1.0))
        panic("quantile bound: q must lie in (0,1), got ", q);
    if (!(confidence > 0.0) || !(confidence < 1.0))
        panic("quantile bound: confidence must lie in (0,1), got ",
              confidence);
}

} // namespace

BoundIndex
upperBoundIndexExact(size_t n, double q, double confidence)
{
    checkArgs(n, q, confidence);
    const long long nn = static_cast<long long>(n);

    // P[x_(k) > X_q] = P[Bin(n, q) <= k-1], nondecreasing in k.
    // Feasibility at k = n: 1 - q^n >= C.
    if (binomialCdf(nn - 1, nn, q) < confidence)
        return std::nullopt;

    size_t lo = 1, hi = n;  // invariant: hi feasible
    while (lo < hi) {
        const size_t mid = lo + (hi - lo) / 2;
        if (binomialCdf(static_cast<long long>(mid) - 1, nn, q) >=
            confidence) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    return hi;
}

BoundIndex
lowerBoundIndexExact(size_t n, double q, double confidence)
{
    checkArgs(n, q, confidence);
    const long long nn = static_cast<long long>(n);

    // P[x_(k) < X_q] = P[Bin(n, q) >= k] = 1 - P[Bin(n, q) <= k-1],
    // nonincreasing in k. Feasibility at k = 1: 1 - (1-q)^n >= C.
    if (1.0 - binomialCdf(0, nn, q) < confidence)
        return std::nullopt;

    size_t lo = 1, hi = n;  // invariant: lo feasible
    while (lo < hi) {
        const size_t mid = lo + (hi - lo + 1) / 2;
        if (1.0 - binomialCdf(static_cast<long long>(mid) - 1, nn, q) >=
            confidence) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    return lo;
}

bool
normalApproximationValid(size_t n, double q)
{
    const double dn = static_cast<double>(n);
    return dn * q >= 10.0 && dn * (1.0 - q) >= 10.0;
}

BoundIndex
upperBoundIndexApprox(size_t n, double q, double confidence)
{
    checkArgs(n, q, confidence);
    const double dn = static_cast<double>(n);
    const double z = normalQuantile(confidence);
    const double raw = dn * q + z * std::sqrt(dn * q * (1.0 - q));
    const double k = std::ceil(raw);
    if (k < 1.0)
        return static_cast<size_t>(1);
    if (k > dn) {
        // The approximation ran off the end of the sample; defer to the
        // exact criterion so the bound stays honest.
        return upperBoundIndexExact(n, q, confidence);
    }
    return static_cast<size_t>(k);
}

BoundIndex
lowerBoundIndexApprox(size_t n, double q, double confidence)
{
    checkArgs(n, q, confidence);
    const double dn = static_cast<double>(n);
    const double z = normalQuantile(confidence);
    const double raw = dn * q - z * std::sqrt(dn * q * (1.0 - q));
    const double k = std::floor(raw);
    if (k > dn)
        return n;
    if (k < 1.0)
        return lowerBoundIndexExact(n, q, confidence);
    return static_cast<size_t>(k);
}

BoundIndex
upperBoundIndex(size_t n, double q, double confidence)
{
    if (normalApproximationValid(n, q))
        return upperBoundIndexApprox(n, q, confidence);
    return upperBoundIndexExact(n, q, confidence);
}

BoundIndex
lowerBoundIndex(size_t n, double q, double confidence)
{
    if (normalApproximationValid(n, q))
        return lowerBoundIndexApprox(n, q, confidence);
    return lowerBoundIndexExact(n, q, confidence);
}

size_t
minimumSampleSize(double q, double confidence)
{
    if (!(q > 0.0) || !(q < 1.0) || !(confidence > 0.0) ||
        !(confidence < 1.0)) {
        panic("minimumSampleSize: q and confidence must lie in (0,1)");
    }
    // Smallest n with 1 - q^n >= C  <=>  n >= log(1-C) / log(q).
    const double n = std::log(1.0 - confidence) / std::log(q);
    size_t candidate = static_cast<size_t>(std::ceil(n - 1e-12));
    if (candidate < 1)
        candidate = 1;
    // Guard against floating point edge cases by verifying directly.
    while (1.0 - std::pow(q, static_cast<double>(candidate)) < confidence)
        ++candidate;
    while (candidate > 1 &&
           1.0 - std::pow(q, static_cast<double>(candidate - 1)) >=
               confidence) {
        --candidate;
    }
    return candidate;
}

} // namespace stats
} // namespace qdel
