/**
 * @file
 * Implementation of the binomial quantile-bound index computations.
 */

#include "stats/quantile_bounds.hh"

#include <cmath>

#include "stats/special_functions.hh"
#include "util/logging.hh"

namespace qdel {
namespace stats {

namespace {

void
checkArgs(size_t n, double q, double confidence)
{
    if (n < 1)
        panic("quantile bound: empty sample");
    if (!(q > 0.0) || !(q < 1.0))
        panic("quantile bound: q must lie in (0,1), got ", q);
    if (!(confidence > 0.0) || !(confidence < 1.0))
        panic("quantile bound: confidence must lie in (0,1), got ",
              confidence);
}

} // namespace

namespace {

/**
 * Walk @p j (a binomial count for Bin(@p n, @p q)) from an anchored
 * starting point to the smallest count whose CDF reaches @p target,
 * using the in-count pmf ratio
 *
 *   pmf(j+1) / pmf(j) = ((n-j) / (j+1)) * (q / (1-q))
 *
 * in log space (one log per step — immune to pmf underflow far out in
 * the tails) with early exit the moment the accumulated mass crosses
 * the target. @p cdf and @p log_pmf are the exact values at the
 * starting @p j. The walk only *aims*; callers confirm the crossing
 * with exact CDF evaluations.
 */
long long
walkToCdfTarget(long long j, long long n, double q, double target,
                double cdf, double log_pmf)
{
    const double dn = static_cast<double>(n);
    const double log_odds = std::log(q) - std::log1p(-q);
    if (cdf >= target) {
        while (j >= 1) {
            const double below = cdf - std::exp(log_pmf);
            if (below < target)
                break;
            cdf = below;
            log_pmf += std::log(static_cast<double>(j) /
                                (dn - static_cast<double>(j) + 1.0)) -
                       log_odds;
            --j;
        }
    } else {
        while (j < n - 1) {
            log_pmf += std::log((dn - static_cast<double>(j)) /
                                (static_cast<double>(j) + 1.0)) +
                       log_odds;
            ++j;
            cdf += std::exp(log_pmf);
            if (cdf >= target)
                break;
        }
    }
    return j;
}

} // namespace

BoundIndex
upperBoundIndexExact(size_t n, double q, double confidence)
{
    checkArgs(n, q, confidence);
    const long long nn = static_cast<long long>(n);

    // P[x_(k) > X_q] = P[Bin(n, q) <= k-1], nondecreasing in k.
    // Feasibility at k = n: 1 - q^n >= C.
    if (binomialCdf(nn - 1, nn, q) < confidence)
        return std::nullopt;
    if (n == 1)
        return static_cast<size_t>(1);

    // Anchor at the normal approximation of the crossing, then walk the
    // pmf recurrence the remaining few steps. This replaces the former
    // O(log n) binary search (~17 incomplete-beta evaluations at
    // n = 100k) with a constant ~4 evaluations.
    const double dn = static_cast<double>(n);
    const double raw = std::ceil(
        dn * q + normalQuantile(confidence) *
                     std::sqrt(dn * q * (1.0 - q)));
    const size_t k0 =
        raw < 1.0 ? 1 : (raw > dn ? n : static_cast<size_t>(raw));
    const long long j0 = static_cast<long long>(k0) - 1;
    const long long j =
        walkToCdfTarget(j0, nn, q, confidence, binomialCdf(j0, nn, q),
                        binomialLogPmf(j0, nn, q));

    // The walk only aims; the exact CDF decides. By the monotonicity of
    // the criterion these two loops pin the smallest feasible k
    // regardless of where the walk stopped, so the result is identical
    // to the old binary search. They run O(1) iterations: the walk
    // lands within a step or two of the crossing.
    size_t k = static_cast<size_t>(j) + 1;
    while (k < n &&
           binomialCdf(static_cast<long long>(k) - 1, nn, q) < confidence)
        ++k;
    while (k > 1 &&
           binomialCdf(static_cast<long long>(k) - 2, nn, q) >= confidence)
        --k;
    return k;
}

BoundIndex
lowerBoundIndexExact(size_t n, double q, double confidence)
{
    checkArgs(n, q, confidence);
    const long long nn = static_cast<long long>(n);

    // P[x_(k) < X_q] = P[Bin(n, q) >= k] = 1 - P[Bin(n, q) <= k-1],
    // nonincreasing in k. Feasibility at k = 1: 1 - (1-q)^n >= C.
    if (1.0 - binomialCdf(0, nn, q) < confidence)
        return std::nullopt;
    if (n == 1)
        return static_cast<size_t>(1);

    // Feasible k satisfy CDF(k-1) <= 1 - C, so the answer sits at the
    // count where the CDF crosses 1 - C; anchor + walk lands next to
    // it, and the exact criterion decides below.
    const double dn = static_cast<double>(n);
    const double raw = std::floor(
        dn * q - normalQuantile(confidence) *
                     std::sqrt(dn * q * (1.0 - q)));
    const size_t k0 =
        raw < 1.0 ? 1 : (raw > dn ? n : static_cast<size_t>(raw));
    const long long j0 = static_cast<long long>(k0) - 1;
    const long long j = walkToCdfTarget(
        j0, nn, q, 1.0 - confidence, binomialCdf(j0, nn, q),
        binomialLogPmf(j0, nn, q));

    // Exact-CDF confirmation (see upperBoundIndexExact).
    size_t k = static_cast<size_t>(j) + 1;
    while (k > 1 &&
           1.0 - binomialCdf(static_cast<long long>(k) - 1, nn, q) <
               confidence)
        --k;
    while (k < n &&
           1.0 - binomialCdf(static_cast<long long>(k), nn, q) >=
               confidence)
        ++k;
    return k;
}

bool
normalApproximationValid(size_t n, double q)
{
    const double dn = static_cast<double>(n);
    return dn * q >= 10.0 && dn * (1.0 - q) >= 10.0;
}

BoundIndex
upperBoundIndexApprox(size_t n, double q, double confidence)
{
    checkArgs(n, q, confidence);
    const double dn = static_cast<double>(n);
    const double z = normalQuantile(confidence);
    const double raw = dn * q + z * std::sqrt(dn * q * (1.0 - q));
    const double k = std::ceil(raw);
    if (k < 1.0)
        return static_cast<size_t>(1);
    if (k > dn) {
        // The approximation ran off the end of the sample; defer to the
        // exact criterion so the bound stays honest.
        return upperBoundIndexExact(n, q, confidence);
    }
    return static_cast<size_t>(k);
}

BoundIndex
lowerBoundIndexApprox(size_t n, double q, double confidence)
{
    checkArgs(n, q, confidence);
    const double dn = static_cast<double>(n);
    const double z = normalQuantile(confidence);
    const double raw = dn * q - z * std::sqrt(dn * q * (1.0 - q));
    const double k = std::floor(raw);
    if (k > dn)
        return n;
    if (k < 1.0)
        return lowerBoundIndexExact(n, q, confidence);
    return static_cast<size_t>(k);
}

BoundIndex
upperBoundIndex(size_t n, double q, double confidence)
{
    if (normalApproximationValid(n, q))
        return upperBoundIndexApprox(n, q, confidence);
    return upperBoundIndexExact(n, q, confidence);
}

BoundIndex
lowerBoundIndex(size_t n, double q, double confidence)
{
    if (normalApproximationValid(n, q))
        return lowerBoundIndexApprox(n, q, confidence);
    return lowerBoundIndexExact(n, q, confidence);
}

BoundIndexCache::BoundIndexCache(double q, double confidence)
    : q_(q), confidence_(confidence)
{
    checkArgs(1, q, confidence);
    z_ = normalQuantile(confidence);
    oddsRatio_ = q / (1.0 - q);
}

BoundIndex
BoundIndexCache::upperIndex(size_t n)
{
    if (n < 1)
        panic("BoundIndexCache::upperIndex: empty sample");
    if (normalApproximationValid(n, q_)) {
        // upperBoundIndexApprox with the cached z.
        const double dn = static_cast<double>(n);
        const double raw =
            dn * q_ + z_ * std::sqrt(dn * q_ * (1.0 - q_));
        const double k = std::ceil(raw);
        if (k < 1.0)
            return static_cast<size_t>(1);
        if (k > dn)
            return upperBoundIndexExact(n, q_, confidence_);
        return static_cast<size_t>(k);
    }
    return exactUpper(n);
}

BoundIndex
BoundIndexCache::exactUpper(size_t n)
{
    if (!valid_ || (n != n_ && n != n_ + 1 && n + 1 != n_)) {
        anchor(n);
    } else if (n == n_ + 1) {
        stepUp();
        if (!valid_)
            anchor(n);
    } else if (n + 1 == n_) {
        if (!stepDown())
            anchor(n);
    }
    if (!feasible_)
        return std::nullopt;
    return k_;
}

void
BoundIndexCache::anchor(size_t n)
{
    ++anchors_;
    stepsSinceAnchor_ = 0;
    valid_ = true;
    n_ = n;
    const BoundIndex index = upperBoundIndexExact(n, q_, confidence_);
    feasible_ = index.has_value();
    if (!feasible_)
        return;
    k_ = *index;
    const long long nn = static_cast<long long>(n);
    const long long km1 = static_cast<long long>(k_) - 1;
    cdf_ = binomialCdf(km1, nn, q_);
    pmf_ = std::exp(binomialLogPmf(km1, nn, q_));
}

void
BoundIndexCache::stepUp()
{
    if (!feasible_) {
        // Feasibility is monotone in n; reaching it is an anchor event.
        valid_ = false;
        return;
    }
    // One extra Bernoulli(q) trial: with j = k_ - 1,
    //   pmf_{n+1}(j) = q pmf_n(j-1) + (1-q) pmf_n(j)
    //   cdf_{n+1}(j) = cdf_n(j) - q pmf_n(j)
    // where pmf_n(j-1) follows from the in-n ratio
    //   pmf_n(j)/pmf_n(j-1) = ((n-j+1)/j) (q/(1-q)).
    const double dn = static_cast<double>(n_);
    const double dk = static_cast<double>(k_);
    const double pmf_km2 =
        k_ >= 2 ? pmf_ * (dk - 1.0) / ((dn - dk + 2.0) * oddsRatio_)
                : 0.0;
    double cdf = cdf_ - q_ * pmf_;
    double pmf = q_ * pmf_km2 + (1.0 - q_) * pmf_;
    ++n_;
    // Restore the invariant: k_ is the smallest index whose CDF term
    // reaches the confidence level (it moves up by at most a few
    // slots, amortized q per step).
    while (cdf < confidence_) {
        if (k_ >= n_) {
            valid_ = false;  // ran off the sample: re-anchor
            return;
        }
        const double next_pmf =
            pmf * (static_cast<double>(n_) - static_cast<double>(k_) +
                   1.0) /
            static_cast<double>(k_) * oddsRatio_;
        cdf += next_pmf;
        pmf = next_pmf;
        ++k_;
    }
    cdf_ = cdf;
    pmf_ = pmf;
    if (++stepsSinceAnchor_ >= kAnchorInterval ||
        std::abs(cdf_ - confidence_) < kBoundaryGuard) {
        valid_ = false;  // force re-anchor on this n
        const size_t n = n_;
        anchor(n);
    }
}

bool
BoundIndexCache::stepDown()
{
    if (!feasible_)
        return false;
    // Removing a trial raises the CDF at fixed count, so the index
    // shrinks by zero or one. Decide with one exact CDF evaluation.
    const size_t m = n_ - 1;
    if (k_ > m)
        return false;  // was k_ == n_: feasibility itself is in doubt
    size_t k = k_;
    if (k >= 2) {
        const double below =
            binomialCdf(static_cast<long long>(k) - 2,
                        static_cast<long long>(m), q_);
        if (below >= confidence_)
            k = k - 1;
        if (std::abs(below - confidence_) < kBoundaryGuard)
            return false;
    }
    n_ = m;
    k_ = k;
    const long long km1 = static_cast<long long>(k_) - 1;
    cdf_ = binomialCdf(km1, static_cast<long long>(n_), q_);
    pmf_ = std::exp(binomialLogPmf(km1, static_cast<long long>(n_), q_));
    stepsSinceAnchor_ = 0;
    return true;
}

BoundIndex
BoundIndexCache::lowerIndex(size_t n)
{
    if (lowerValid_ && n == lowerN_)
        return lowerK_;
    if (normalApproximationValid(n, q_)) {
        // lowerBoundIndexApprox with the cached z.
        checkArgs(n, q_, confidence_);
        const double dn = static_cast<double>(n);
        const double raw =
            dn * q_ - z_ * std::sqrt(dn * q_ * (1.0 - q_));
        const double k = std::floor(raw);
        if (k > dn)
            lowerK_ = n;
        else if (k < 1.0)
            lowerK_ = lowerBoundIndexExact(n, q_, confidence_);
        else
            lowerK_ = static_cast<size_t>(k);
    } else {
        lowerK_ = lowerBoundIndexExact(n, q_, confidence_);
    }
    lowerValid_ = true;
    lowerN_ = n;
    return lowerK_;
}

size_t
minimumSampleSize(double q, double confidence)
{
    if (!(q > 0.0) || !(q < 1.0) || !(confidence > 0.0) ||
        !(confidence < 1.0)) {
        panic("minimumSampleSize: q and confidence must lie in (0,1)");
    }
    // Smallest n with 1 - q^n >= C  <=>  n >= log(1-C) / log(q).
    const double n = std::log(1.0 - confidence) / std::log(q);
    size_t candidate = static_cast<size_t>(std::ceil(n - 1e-12));
    if (candidate < 1)
        candidate = 1;
    // Guard against floating point edge cases by verifying directly.
    while (1.0 - std::pow(q, static_cast<double>(candidate)) < confidence)
        ++candidate;
    while (candidate > 1 &&
           1.0 - std::pow(q, static_cast<double>(candidate - 1)) >=
               confidence) {
        --candidate;
    }
    return candidate;
}

} // namespace stats
} // namespace qdel
