/**
 * @file
 * Bounded-memory accumulator for a stream of doubles with an exact
 * median, for replay runs whose accuracy-ratio series is too large to
 * keep resident (a billion-job trace produces ~8 GB of ratios).
 *
 * Values accumulate in RAM until @p threshold_doubles is exceeded, at
 * which point they spill to a scratch file and all subsequent values
 * stream through a small append buffer. The median is exact — not an
 * approximation — and reproduces stats::median() bit-for-bit: the two
 * central order statistics are located with a most-significant-digit
 * radix selection over the IEEE-754 total order (4 passes of a
 * 2^16-bucket histogram over the spill file), then combined with the
 * same type-7 interpolation arithmetic as stats::quantile(). Selection
 * scans the file sequentially, so resident memory stays O(append
 * buffer + histogram) no matter how many values were added.
 *
 * The total-order key refines operator< only up to signed zeros and
 * NaNs (-0.0 sorts below +0.0 here; std::sort leaves their relative
 * order unspecified, and NaN comparisons are UB there). Replay ratios
 * are finite and non-negative, so neither case changes the result.
 */

#ifndef QDEL_STATS_SPILL_DOUBLES_HH
#define QDEL_STATS_SPILL_DOUBLES_HH

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "util/expected.hh"

namespace qdel {
namespace stats {

class SpillDoubles
{
  public:
    /**
     * @p spill_path names the scratch file (created lazily on first
     * spill, removed by the destructor). @p threshold_doubles caps the
     * in-RAM phase; the default keeps roughly 256 MiB resident before
     * spilling.
     */
    explicit SpillDoubles(std::string spill_path,
                          size_t threshold_doubles = size_t(1) << 25);
    ~SpillDoubles();

    SpillDoubles(const SpillDoubles &) = delete;
    SpillDoubles &operator=(const SpillDoubles &) = delete;

    void add(double value);
    void append(const double *values, size_t count);

    size_t size() const { return count_; }
    bool spilled() const { return file_ != nullptr; }

    /**
     * Exact median with stats::median() semantics (type-7 interpolation
     * of the two central order statistics). Errors on an empty sample
     * or scratch-file I/O failure. May be called repeatedly; the
     * accumulator stays usable for further add()s afterwards.
     */
    Expected<double> median();

  private:
    void maybeSpill();
    bool flushBuffer();
    Expected<double> selectSpilled(size_t rank_a, size_t rank_b,
                                   double frac);
    ParseError ioError(const std::string &what) const;

    std::string path_;
    size_t threshold_;
    std::vector<double> buffer_;
    std::FILE *file_ = nullptr;
    size_t count_ = 0;
    bool failed_ = false;
    std::string failReason_;
};

} // namespace stats
} // namespace qdel

#endif // QDEL_STATS_SPILL_DOUBLES_HH
