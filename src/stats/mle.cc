/**
 * @file
 * Implementation of the MLE fitters.
 */

#include "stats/mle.hh"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hh"
#include "util/logging.hh"

namespace qdel {
namespace stats {

NormalFit
fitNormal(const std::vector<double> &sample)
{
    if (sample.size() < 2)
        panic("fitNormal: need at least 2 observations, got ",
              sample.size());
    NormalFit fit;
    fit.count = sample.size();
    fit.mu = mean(sample);
    fit.sigma = stddev(sample);
    return fit;
}

NormalFit
fitLogNormal(const std::vector<double> &sample, double epsilon)
{
    if (sample.size() < 2)
        panic("fitLogNormal: need at least 2 observations, got ",
              sample.size());
    RunningMoments moments;
    for (double x : sample)
        moments.push(std::log(std::max(x, epsilon)));
    NormalFit fit;
    fit.count = moments.count();
    fit.mu = moments.mean();
    fit.sigma = moments.sd();
    return fit;
}

LogNormalDist
toLogNormal(const NormalFit &fit)
{
    return LogNormalDist(fit.mu, std::max(fit.sigma, 1e-9));
}

} // namespace stats
} // namespace qdel
