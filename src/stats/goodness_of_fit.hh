/**
 * @file
 * Kolmogorov-Smirnov goodness-of-fit machinery.
 *
 * Used by the test suite to validate that the workload synthesizer's
 * marginals match their calibrated analytic mixtures, and exposed
 * publicly so users can check (as the paper's Section 4.2 discussion
 * invites) whether a real queue's wait times are remotely log-normal
 * before trusting a parametric predictor.
 */

#ifndef QDEL_STATS_GOODNESS_OF_FIT_HH
#define QDEL_STATS_GOODNESS_OF_FIT_HH

#include <functional>
#include <vector>

namespace qdel {
namespace stats {

/** Result of a Kolmogorov-Smirnov one-sample test. */
struct KsResult
{
    double statistic = 0.0;  //!< D_n = sup |F_n(x) - F(x)|.
    double pValue = 1.0;     //!< Asymptotic (Stephens-corrected).
    size_t n = 0;            //!< Sample size.
};

/**
 * One-sample KS test of @p sample against the continuous CDF @p cdf.
 *
 * @param sample Observations (copied and sorted internally).
 * @param cdf    Hypothesized cumulative distribution function.
 */
KsResult ksTest(std::vector<double> sample,
                const std::function<double(double)> &cdf);

/**
 * Survival function of the Kolmogorov distribution:
 * Q(lambda) = 2 sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2).
 */
double kolmogorovSurvival(double lambda);

} // namespace stats
} // namespace qdel

#endif // QDEL_STATS_GOODNESS_OF_FIT_HH
