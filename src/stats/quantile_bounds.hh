/**
 * @file
 * The binomial order-statistic machinery at the heart of BMBP
 * (paper Section 4.1 and Appendix).
 *
 * Given n i.i.d. observations of a random variable X, the number of
 * observations at or below the q quantile X_q is Binomial(n, q).
 * Therefore the k-th order statistic x_(k) (1-based) exceeds X_q with
 * a priori probability P[Bin(n, q) <= k-1], and choosing the smallest k
 * for which that probability reaches the confidence level C makes
 * x_(k) an exact, distribution-free level-C upper confidence bound
 * for X_q. Symmetrically for lower bounds.
 */

#ifndef QDEL_STATS_QUANTILE_BOUNDS_HH
#define QDEL_STATS_QUANTILE_BOUNDS_HH

#include <cstddef>
#include <optional>

namespace qdel {
namespace stats {

/**
 * 1-based order-statistic index realizing a confidence bound, or
 * std::nullopt when no order statistic of an n-sample achieves the
 * requested confidence (sample too small).
 */
using BoundIndex = std::optional<size_t>;

/**
 * Smallest 1-based k such that x_(k) is a level-@p confidence upper
 * confidence bound for the @p q quantile of the sampled population,
 * computed exactly from the binomial CDF.
 *
 * @param n          Sample size (n >= 1).
 * @param q          Quantile of interest in (0, 1).
 * @param confidence Confidence level in (0, 1).
 * @return k in [1, n], or std::nullopt when even k = n is insufficient.
 */
BoundIndex upperBoundIndexExact(size_t n, double q, double confidence);

/**
 * Largest 1-based k such that x_(k) is a level-@p confidence lower
 * confidence bound for the @p q quantile.
 *
 * @return k in [1, n], or std::nullopt when even k = 1 is insufficient.
 */
BoundIndex lowerBoundIndexExact(size_t n, double q, double confidence);

/**
 * Normal-approximation version of upperBoundIndexExact (paper Appendix):
 * k = ceil(n q + z_C sqrt(n q (1-q))), clamped to [1, n]. The paper uses
 * this when both expected successes and failures are at least 10; the
 * same guard is exposed via normalApproximationValid().
 */
BoundIndex upperBoundIndexApprox(size_t n, double q, double confidence);

/** Normal-approximation lower-bound index (floor, symmetric). */
BoundIndex lowerBoundIndexApprox(size_t n, double q, double confidence);

/** @return true when n q >= 10 and n (1 - q) >= 10. */
bool normalApproximationValid(size_t n, double q);

/**
 * Hybrid index selection as deployed in BMBP: the exact binomial search
 * when the sample is small (or the approximation guard fails), the
 * O(1) normal approximation otherwise.
 */
BoundIndex upperBoundIndex(size_t n, double q, double confidence);

/** Hybrid lower-bound index. */
BoundIndex lowerBoundIndex(size_t n, double q, double confidence);

/**
 * Minimum sample size from which a level-@p confidence upper bound on
 * the @p q quantile can be produced at all: the smallest n with
 * 1 - q^n >= confidence. For q = C = 0.95 this is the paper's n = 59 —
 * the history length BMBP trims to after a detected change point.
 */
size_t minimumSampleSize(double q, double confidence);

/**
 * Incremental cache of the hybrid bound indices for one fixed
 * (quantile, confidence) pair — the per-predictor state that makes
 * BmbpPredictor::refit() cheap on the replay hot path.
 *
 * Three layers of reuse, all returning exactly what the free
 * upperBoundIndex()/lowerBoundIndex() functions would:
 *  - z_C = normalQuantile(confidence) is computed once, so the
 *    normal-approximation regime costs one ceil and one sqrt;
 *  - when n is unchanged since the last query (the sliding-window
 *    steady state), the cached index is returned directly;
 *  - in the exact-binomial regime (small samples, where the free
 *    function binary-searches with ~log2(n) incomplete-beta
 *    evaluations), the cache tracks P[Bin(n,q) = k-1] and
 *    P[Bin(n,q) <= k-1] and advances them through the one-trial
 *    recurrences when n changes by +/-1, so the post-trim regrowth
 *    path costs O(1) arithmetic amortized per observation.
 *
 * The recurrence state is re-anchored against the exact binomial CDF
 * every few hundred steps, and immediately whenever a feasibility
 * decision falls within 1e-9 of the confidence level, so the selected
 * index is always identical to the freshly computed one (the test
 * suite sweeps n to verify equality).
 */
class BoundIndexCache
{
  public:
    BoundIndexCache(double q, double confidence);

    /** Equals upperBoundIndex(n, quantile(), confidence()). */
    BoundIndex upperIndex(size_t n);

    /** Equals lowerBoundIndex(n, quantile(), confidence()). */
    BoundIndex lowerIndex(size_t n);

    double quantile() const { return q_; }
    double confidence() const { return confidence_; }

    /** Exact-path full recomputations performed (for tests/benchmarks). */
    size_t anchorCount() const { return anchors_; }

  private:
    BoundIndex exactUpper(size_t n);
    void anchor(size_t n);
    void stepUp();
    bool stepDown();

    double q_;
    double confidence_;
    double z_;                 //!< Cached normalQuantile(confidence).
    double oddsRatio_;         //!< q / (1 - q), for the pmf recurrences.

    // Exact-path incremental state. When valid_, describes sample size
    // n_: feasible_ says whether any order statistic achieves the
    // confidence; when feasible, k_ is the selected index and
    // cdf_/pmf_ are P[Bin(n_,q) <= k_-1] and P[Bin(n_,q) = k_-1].
    bool valid_ = false;
    bool feasible_ = false;
    size_t n_ = 0;
    size_t k_ = 0;
    double cdf_ = 0.0;
    double pmf_ = 0.0;
    unsigned stepsSinceAnchor_ = 0;
    size_t anchors_ = 0;

    // Memo for the lower index (one entry: the sliding-window case).
    bool lowerValid_ = false;
    size_t lowerN_ = 0;
    BoundIndex lowerK_;

    static constexpr unsigned kAnchorInterval = 512;
    static constexpr double kBoundaryGuard = 1e-9;
};

} // namespace stats
} // namespace qdel

#endif // QDEL_STATS_QUANTILE_BOUNDS_HH
