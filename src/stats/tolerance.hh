/**
 * @file
 * One-sided normal tolerance factors (the K' of Guttman's Table 4.6,
 * used by the paper's log-normal baseline predictor, Section 4.2).
 *
 * An upper tolerance bound covering the q quantile of a normal
 * population with confidence C, from a sample of size n with mean m and
 * standard deviation s, is m + k * s where
 *
 *   k = t^{-1}_{nct}(C; df = n-1, ncp = z_q * sqrt(n)) / sqrt(n)
 *
 * (exact, via the noncentral t distribution). For large n we use the
 * standard closed-form approximation
 *
 *   k ~= (z_q + sqrt(z_q^2 - a b)) / a,
 *   a = 1 - z_C^2 / (2 (n-1)),   b = z_q^2 - z_C^2 / n,
 *
 * which agrees with the exact factor to well under 0.5% for n >= 50.
 */

#ifndef QDEL_STATS_TOLERANCE_HH
#define QDEL_STATS_TOLERANCE_HH

#include <cstddef>

namespace qdel {
namespace stats {

/**
 * Exact one-sided upper tolerance factor via the noncentral t quantile.
 *
 * @param n          Sample size, n >= 2.
 * @param q          Population quantile to cover, in (0, 1).
 * @param confidence Confidence level, in (0, 1).
 */
double normalToleranceFactorExact(size_t n, double q, double confidence);

/** Closed-form large-sample approximation of the tolerance factor. */
double normalToleranceFactorApprox(size_t n, double q, double confidence);

/**
 * Hybrid used by the log-normal predictor: exact (noncentral t) for
 * small samples where the approximation is weakest, the closed form
 * beyond. The crossover sample size is 300.
 */
double normalToleranceFactor(size_t n, double q, double confidence);

} // namespace stats
} // namespace qdel

#endif // QDEL_STATS_TOLERANCE_HH
