/**
 * @file
 * Implementation of the AR(1) log-normal process.
 */

#include "stats/ar1.hh"

#include <cmath>

#include "util/logging.hh"

namespace qdel {
namespace stats {

Ar1LogNormalProcess::Ar1LogNormalProcess(double mu, double sigma, double rho,
                                         Rng rng)
    : mu_(mu), sigma_(sigma), rho_(rho),
      innovationScale_(std::sqrt(1.0 - rho * rho)), z_(0.0),
      rng_(rng)
{
    if (!(sigma > 0.0))
        panic("Ar1LogNormalProcess: sigma must be positive, got ", sigma);
    if (rho < 0.0 || rho >= 1.0)
        panic("Ar1LogNormalProcess: rho must lie in [0,1), got ", rho);
    reset();
}

double
Ar1LogNormalProcess::next()
{
    z_ = rho_ * z_ + innovationScale_ * rng_.normal();
    return std::exp(mu_ + sigma_ * z_);
}

void
Ar1LogNormalProcess::reset()
{
    // Stationary initial draw: z_0 ~ N(0, 1).
    z_ = rng_.normal();
}

void
Ar1LogNormalProcess::setMarginal(double mu, double sigma)
{
    if (!(sigma > 0.0))
        panic("Ar1LogNormalProcess::setMarginal: sigma must be positive");
    mu_ = mu;
    sigma_ = sigma;
}

} // namespace stats
} // namespace qdel
