/**
 * @file
 * Implementation of the deterministic RNG.
 */

#include "stats/rng.hh"

#include <cmath>

#include "util/logging.hh"

namespace qdel {
namespace stats {

namespace {

/** splitmix64 step, used to expand a single seed into generator state. */
uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
    : cachedNormal_(0.0), hasCachedNormal_(false)
{
    uint64_t sm = seed;
    for (auto &word : state_)
        word = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

long long
Rng::uniformInt(long long lo, long long hi)
{
    if (lo > hi)
        panic("Rng::uniformInt: empty range [", lo, ", ", hi, "]");
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    // Rejection sampling to remove modulo bias.
    const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
    uint64_t value;
    do {
        value = next();
    } while (value >= limit);
    return lo + static_cast<long long>(value % span);
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    double u, v, s;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cachedNormal_ = v * factor;
    hasCachedNormal_ = true;
    return u * factor;
}

double
Rng::normal(double mean, double sd)
{
    return mean + sd * normal();
}

double
Rng::exponential(double rate)
{
    if (!(rate > 0.0))
        panic("Rng::exponential: rate must be positive, got ", rate);
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / rate;
}

double
Rng::logNormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

double
Rng::weibull(double shape, double scale)
{
    if (!(shape > 0.0) || !(scale > 0.0))
        panic("Rng::weibull: non-positive parameter");
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return scale * std::pow(-std::log(u), 1.0 / shape);
}

double
Rng::pareto(double xm, double alpha)
{
    if (!(xm > 0.0) || !(alpha > 0.0))
        panic("Rng::pareto: non-positive parameter");
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return xm * std::pow(u, -1.0 / alpha);
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

int
Rng::categorical(const double *weights, int n)
{
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
        if (weights[i] < 0.0)
            panic("Rng::categorical: negative weight at index ", i);
        total += weights[i];
    }
    if (!(total > 0.0))
        panic("Rng::categorical: weights sum to zero");
    double target = uniform() * total;
    for (int i = 0; i < n; ++i) {
        target -= weights[i];
        if (target < 0.0)
            return i;
    }
    return n - 1;
}

Rng
Rng::split()
{
    return Rng(next());
}

} // namespace stats
} // namespace qdel
