/**
 * @file
 * Implementation of the special functions.
 */

#include "stats/special_functions.hh"

#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace qdel {
namespace stats {

namespace {

constexpr double kEpsilon = 1e-15;
constexpr int kMaxIterations = 500;

/**
 * Continued fraction for the incomplete beta function (modified Lentz),
 * valid and fast for x < (a + 1) / (a + b + 2).
 */
double
betaContinuedFraction(double a, double b, double x)
{
    const double tiny = 1e-300;
    double qab = a + b;
    double qap = a + 1.0;
    double qam = a - 1.0;
    double c = 1.0;
    double d = 1.0 - qab * x / qap;
    if (std::fabs(d) < tiny)
        d = tiny;
    d = 1.0 / d;
    double h = d;
    for (int m = 1; m <= kMaxIterations; ++m) {
        int m2 = 2 * m;
        double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < tiny)
            d = tiny;
        c = 1.0 + aa / c;
        if (std::fabs(c) < tiny)
            c = tiny;
        d = 1.0 / d;
        h *= d * c;
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < tiny)
            d = tiny;
        c = 1.0 + aa / c;
        if (std::fabs(c) < tiny)
            c = tiny;
        d = 1.0 / d;
        double del = d * c;
        h *= del;
        if (std::fabs(del - 1.0) < kEpsilon)
            break;
    }
    return h;
}

} // namespace

double
logGamma(double x)
{
    return std::lgamma(x);
}

double
logBeta(double a, double b)
{
    return std::lgamma(a) + std::lgamma(b) - std::lgamma(a + b);
}

double
incompleteBeta(double a, double b, double x)
{
    if (!(a > 0.0) || !(b > 0.0))
        panic("incompleteBeta: non-positive shape (a=", a, ", b=", b, ")");
    if (x <= 0.0)
        return 0.0;
    if (x >= 1.0)
        return 1.0;

    const double log_front =
        a * std::log(x) + b * std::log1p(-x) - logBeta(a, b);
    const double front = std::exp(log_front);

    if (x < (a + 1.0) / (a + b + 2.0))
        return front * betaContinuedFraction(a, b, x) / a;
    return 1.0 - front * betaContinuedFraction(b, a, 1.0 - x) / b;
}

double
incompleteGammaLower(double a, double x)
{
    if (!(a > 0.0))
        panic("incompleteGammaLower: non-positive shape a=", a);
    if (x <= 0.0)
        return 0.0;

    if (x < a + 1.0) {
        // Series representation.
        double ap = a;
        double sum = 1.0 / a;
        double del = sum;
        for (int i = 0; i < kMaxIterations; ++i) {
            ap += 1.0;
            del *= x / ap;
            sum += del;
            if (std::fabs(del) < std::fabs(sum) * kEpsilon)
                break;
        }
        return sum * std::exp(-x + a * std::log(x) - logGamma(a));
    }

    // Continued fraction for Q(a, x), then complement.
    const double tiny = 1e-300;
    double b = x + 1.0 - a;
    double c = 1.0 / tiny;
    double d = 1.0 / b;
    double h = d;
    for (int i = 1; i <= kMaxIterations; ++i) {
        double an = -static_cast<double>(i) * (i - a);
        b += 2.0;
        d = an * d + b;
        if (std::fabs(d) < tiny)
            d = tiny;
        c = b + an / c;
        if (std::fabs(c) < tiny)
            c = tiny;
        d = 1.0 / d;
        double del = d * c;
        h *= del;
        if (std::fabs(del - 1.0) < kEpsilon)
            break;
    }
    double q = std::exp(-x + a * std::log(x) - logGamma(a)) * h;
    return 1.0 - q;
}

double
incompleteGammaUpper(double a, double x)
{
    return 1.0 - incompleteGammaLower(a, x);
}

double
normalCdf(double x)
{
    return 0.5 * std::erfc(-x * M_SQRT1_2);
}

double
normalPdf(double x)
{
    static const double inv_sqrt_2pi = 0.3989422804014327;
    return inv_sqrt_2pi * std::exp(-0.5 * x * x);
}

double
normalQuantile(double p)
{
    // Wichura (1988), Algorithm AS 241, routine PPND16.
    if (p <= 0.0)
        return -std::numeric_limits<double>::infinity();
    if (p >= 1.0)
        return std::numeric_limits<double>::infinity();

    static const double a[8] = {
        3.3871328727963666080e0,  1.3314166789178437745e2,
        1.9715909503065514427e3,  1.3731693765509461125e4,
        4.5921953931549871457e4,  6.7265770927008700853e4,
        3.3430575583588128105e4,  2.5090809287301226727e3,
    };
    static const double b[8] = {
        1.0,                      4.2313330701600911252e1,
        6.8718700749205790830e2,  5.3941960214247511077e3,
        2.1213794301586595867e4,  3.9307895800092710610e4,
        2.8729085735721942674e4,  5.2264952788528545610e3,
    };
    static const double c[8] = {
        1.42343711074968357734e0, 4.63033784615654529590e0,
        5.76949722146069140550e0, 3.64784832476320460504e0,
        1.27045825245236838258e0, 2.41780725177450611770e-1,
        2.27238449892691845833e-2, 7.74545014278341407640e-4,
    };
    static const double d[8] = {
        1.0,                      2.05319162663775882187e0,
        1.67638483018380384940e0, 6.89767334985100004550e-1,
        1.48103976427480074590e-1, 1.51986665636164571966e-2,
        5.47593808499534494600e-4, 1.05075007164441684324e-9,
    };
    static const double e[8] = {
        6.65790464350110377720e0, 5.46378491116411436990e0,
        1.78482653991729133580e0, 2.96560571828504891230e-1,
        2.65321895265761230930e-2, 1.24266094738807843860e-3,
        2.71155556874348757815e-5, 2.01033439929228813265e-7,
    };
    static const double f[8] = {
        1.0,                      5.99832206555887937690e-1,
        1.36929880922735805310e-1, 1.48753612908506148525e-2,
        7.86869131145613259100e-4, 1.84631831751005468180e-5,
        1.42151175831644588870e-7, 2.04426310338993978564e-15,
    };

    auto poly = [](const double (&coef)[8], double r) {
        double result = coef[7];
        for (int i = 6; i >= 0; --i)
            result = result * r + coef[i];
        return result;
    };

    const double q = p - 0.5;
    if (std::fabs(q) <= 0.425) {
        const double r = 0.180625 - q * q;
        return q * poly(a, r) / poly(b, r);
    }

    double r = q < 0.0 ? p : 1.0 - p;
    r = std::sqrt(-std::log(r));
    double value;
    if (r <= 5.0) {
        r -= 1.6;
        value = poly(c, r) / poly(d, r);
    } else {
        r -= 5.0;
        value = poly(e, r) / poly(f, r);
    }
    return q < 0.0 ? -value : value;
}

double
binomialCdf(long long k, long long n, double p)
{
    if (n < 1)
        panic("binomialCdf: n must be >= 1, got ", n);
    if (p < 0.0 || p > 1.0)
        panic("binomialCdf: p out of [0,1]: ", p);
    if (k < 0)
        return 0.0;
    if (k >= n)
        return 1.0;
    if (p <= 0.0)
        return 1.0;
    if (p >= 1.0)
        return 0.0;
    return incompleteBeta(static_cast<double>(n - k),
                          static_cast<double>(k + 1), 1.0 - p);
}

double
binomialLogPmf(long long k, long long n, double p)
{
    if (k < 0 || k > n)
        return -std::numeric_limits<double>::infinity();
    if (p <= 0.0)
        return k == 0 ? 0.0 : -std::numeric_limits<double>::infinity();
    if (p >= 1.0)
        return k == n ? 0.0 : -std::numeric_limits<double>::infinity();
    const double dn = static_cast<double>(n);
    const double dk = static_cast<double>(k);
    return logGamma(dn + 1.0) - logGamma(dk + 1.0) - logGamma(dn - dk + 1.0)
           + dk * std::log(p) + (dn - dk) * std::log1p(-p);
}

} // namespace stats
} // namespace qdel
