/**
 * @file
 * Implementation of the Kolmogorov-Smirnov test.
 */

#include "stats/goodness_of_fit.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace qdel {
namespace stats {

double
kolmogorovSurvival(double lambda)
{
    if (lambda <= 0.0)
        return 1.0;
    double total = 0.0;
    double sign = 1.0;
    for (int k = 1; k <= 100; ++k) {
        const double term =
            sign * std::exp(-2.0 * k * k * lambda * lambda);
        total += term;
        sign = -sign;
        if (std::fabs(term) < 1e-12)
            break;
    }
    return std::clamp(2.0 * total, 0.0, 1.0);
}

KsResult
ksTest(std::vector<double> sample,
       const std::function<double(double)> &cdf)
{
    if (sample.empty())
        panic("ksTest: empty sample");
    std::sort(sample.begin(), sample.end());

    const double n = static_cast<double>(sample.size());
    double d = 0.0;
    for (size_t i = 0; i < sample.size(); ++i) {
        const double f = cdf(sample[i]);
        const double upper = (static_cast<double>(i) + 1.0) / n - f;
        const double lower = f - static_cast<double>(i) / n;
        d = std::max({d, upper, lower});
    }

    KsResult result;
    result.statistic = d;
    result.n = sample.size();
    // Stephens' small-sample correction for the asymptotic law.
    const double sqrt_n = std::sqrt(n);
    const double lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
    result.pValue = kolmogorovSurvival(lambda);
    return result;
}

} // namespace stats
} // namespace qdel
