/**
 * @file
 * Implementation of the descriptive statistics.
 */

#include "stats/descriptive.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace qdel {
namespace stats {

double
mean(const std::vector<double> &sample)
{
    if (sample.empty())
        return 0.0;
    double total = 0.0;
    for (double x : sample)
        total += x;
    return total / static_cast<double>(sample.size());
}

double
variance(const std::vector<double> &sample)
{
    const size_t n = sample.size();
    if (n < 2)
        return 0.0;
    const double m = mean(sample);
    double ss = 0.0;
    for (double x : sample) {
        const double d = x - m;
        ss += d * d;
    }
    return ss / static_cast<double>(n - 1);
}

double
stddev(const std::vector<double> &sample)
{
    return std::sqrt(variance(sample));
}

double
median(std::vector<double> sample)
{
    return quantile(std::move(sample), 0.5);
}

double
quantile(std::vector<double> sample, double q)
{
    if (sample.empty())
        panic("quantile: empty sample");
    if (q < 0.0 || q > 1.0)
        panic("quantile: q out of [0,1]: ", q);
    std::sort(sample.begin(), sample.end());
    const double position = q * static_cast<double>(sample.size() - 1);
    const size_t lower = static_cast<size_t>(position);
    const double frac = position - static_cast<double>(lower);
    if (lower + 1 >= sample.size())
        return sample.back();
    return sample[lower] * (1.0 - frac) + sample[lower + 1] * frac;
}

double
autocorrelation(const std::vector<double> &series, size_t lag)
{
    const size_t n = series.size();
    if (n < lag + 2)
        return 0.0;
    const double m = mean(series);
    double denom = 0.0;
    for (double x : series) {
        const double d = x - m;
        denom += d * d;
    }
    if (denom <= 0.0)
        return 0.0;
    double numer = 0.0;
    for (size_t t = 0; t + lag < n; ++t)
        numer += (series[t] - m) * (series[t + lag] - m);
    return numer / denom;
}

SummaryStats
summarize(const std::vector<double> &sample)
{
    SummaryStats s;
    s.count = sample.size();
    if (sample.empty())
        return s;
    s.mean = mean(sample);
    s.stddev = stddev(sample);
    s.median = median(sample);
    auto [mn, mx] = std::minmax_element(sample.begin(), sample.end());
    s.min = *mn;
    s.max = *mx;
    return s;
}

void
RunningMoments::push(double x)
{
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void
RunningMoments::clear()
{
    count_ = 0;
    mean_ = 0.0;
    m2_ = 0.0;
}

double
RunningMoments::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningMoments::sd() const
{
    return std::sqrt(variance());
}

} // namespace stats
} // namespace qdel
