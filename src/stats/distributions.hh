/**
 * @file
 * Analytic distribution objects: CDFs, quantile functions and moments
 * for the distributions used by the predictors (normal, log-normal,
 * Student t, noncentral t, binomial helpers) and by the workload
 * synthesizer / property tests (exponential, Weibull, Pareto, uniform).
 */

#ifndef QDEL_STATS_DISTRIBUTIONS_HH
#define QDEL_STATS_DISTRIBUTIONS_HH

namespace qdel {
namespace stats {

/** Normal distribution N(mu, sigma^2). */
class NormalDist
{
  public:
    /**
     * @param mu    Mean.
     * @param sigma Standard deviation, sigma > 0.
     */
    NormalDist(double mu, double sigma);

    double mean() const { return mu_; }
    double sd() const { return sigma_; }
    double cdf(double x) const;
    double pdf(double x) const;
    double quantile(double p) const;

  private:
    double mu_;
    double sigma_;
};

/** Log-normal distribution: log X ~ N(mu, sigma^2). */
class LogNormalDist
{
  public:
    LogNormalDist(double mu, double sigma);

    double mu() const { return mu_; }
    double sigma() const { return sigma_; }
    /** E[X] = exp(mu + sigma^2/2). */
    double mean() const;
    /** Median = exp(mu). */
    double median() const;
    /** Var[X]. */
    double variance() const;
    double cdf(double x) const;
    double pdf(double x) const;
    double quantile(double p) const;

    /**
     * Fit (mu, sigma) so the distribution matches a target mean and
     * median (used to calibrate synthetic queues to the paper's Table 1):
     * mu = log(median), sigma = sqrt(2 log(mean / median)).
     * Requires mean >= median > 0; degenerate inputs clamp sigma to a
     * small positive value.
     */
    static LogNormalDist fromMeanMedian(double mean, double median);

  private:
    double mu_;
    double sigma_;
};

/** Student's t distribution with nu degrees of freedom. */
class StudentTDist
{
  public:
    /** @param nu Degrees of freedom, nu > 0. */
    explicit StudentTDist(double nu);

    double cdf(double t) const;
    double quantile(double p) const;

  private:
    double nu_;
};

/**
 * Noncentral t distribution with nu degrees of freedom and
 * noncentrality delta. CDF follows Lenth (1989), Algorithm AS 243,
 * with Poisson-weighted incomplete-beta recurrences; the quantile is
 * obtained by bracketed bisection on the CDF.
 *
 * This is the machinery behind the K' one-sided normal tolerance factor
 * used by the paper's log-normal baseline (Guttman, Table 4.6).
 */
class NoncentralTDist
{
  public:
    /**
     * @param nu    Degrees of freedom, nu > 0.
     * @param delta Noncentrality parameter.
     */
    NoncentralTDist(double nu, double delta);

    double cdf(double t) const;
    double quantile(double p) const;

  private:
    double nu_;
    double delta_;
};

/** Exponential distribution with rate lambda. */
class ExponentialDist
{
  public:
    explicit ExponentialDist(double rate);

    double mean() const { return 1.0 / rate_; }
    double cdf(double x) const;
    double quantile(double p) const;

  private:
    double rate_;
};

/** Weibull distribution with shape k and scale lambda. */
class WeibullDist
{
  public:
    WeibullDist(double shape, double scale);

    double cdf(double x) const;
    double quantile(double p) const;

  private:
    double shape_;
    double scale_;
};

/** Pareto distribution with minimum xm and tail index alpha. */
class ParetoDist
{
  public:
    ParetoDist(double xm, double alpha);

    double cdf(double x) const;
    double quantile(double p) const;

  private:
    double xm_;
    double alpha_;
};

} // namespace stats
} // namespace qdel

#endif // QDEL_STATS_DISTRIBUTIONS_HH
