/**
 * @file
 * Implementation of the spilling exact-median accumulator.
 */

#include "stats/spill_doubles.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "stats/descriptive.hh"

namespace qdel {
namespace stats {

namespace {

/** Doubles held in RAM between appends once the stream has spilled. */
constexpr size_t kAppendChunk = size_t(1) << 20;  // 8 MiB

/** Doubles read per sequential scan step during selection. */
constexpr size_t kScanChunk = size_t(1) << 16;  // 512 KiB

constexpr uint64_t kSignBit = uint64_t(1) << 63;

/**
 * Order-preserving mapping from double to uint64_t: non-negative
 * values get the sign bit set, negative values are bitwise inverted,
 * so unsigned comparison of keys matches IEEE-754 total order.
 */
uint64_t
orderKey(double value)
{
    uint64_t bits;
    std::memcpy(&bits, &value, sizeof bits);
    return (bits & kSignBit) ? ~bits : (bits | kSignBit);
}

double
fromOrderKey(uint64_t key)
{
    const uint64_t bits = (key & kSignBit) ? (key ^ kSignBit) : ~key;
    double value;
    std::memcpy(&value, &bits, sizeof value);
    return value;
}

} // namespace

SpillDoubles::SpillDoubles(std::string spill_path, size_t threshold_doubles)
    : path_(std::move(spill_path)), threshold_(threshold_doubles)
{
}

SpillDoubles::~SpillDoubles()
{
    if (file_ != nullptr) {
        std::fclose(file_);
        std::remove(path_.c_str());
    }
}

void
SpillDoubles::add(double value)
{
    buffer_.push_back(value);
    ++count_;
    maybeSpill();
}

void
SpillDoubles::append(const double *values, size_t count)
{
    buffer_.insert(buffer_.end(), values, values + count);
    count_ += count;
    maybeSpill();
}

void
SpillDoubles::maybeSpill()
{
    if (failed_)
        return;
    if (file_ == nullptr) {
        if (count_ <= threshold_)
            return;
        file_ = std::fopen(path_.c_str(), "wb+");
        if (file_ == nullptr) {
            failed_ = true;
            failReason_ = "cannot create spill file: " +
                          std::string(std::strerror(errno));
            return;
        }
        flushBuffer();
        return;
    }
    if (buffer_.size() >= kAppendChunk)
        flushBuffer();
}

bool
SpillDoubles::flushBuffer()
{
    if (failed_ || buffer_.empty())
        return !failed_;
    // median() leaves the file positioned mid-stream after a selection
    // scan; always reposition before appending.
    if (std::fseek(file_, 0, SEEK_END) != 0 ||
        std::fwrite(buffer_.data(), sizeof(double), buffer_.size(),
                    file_) != buffer_.size()) {
        failed_ = true;
        failReason_ = "spill write failed: " +
                      std::string(std::strerror(errno));
        return false;
    }
    buffer_.clear();
    return true;
}

ParseError
SpillDoubles::ioError(const std::string &what) const
{
    return ParseError{path_, 0, "", what};
}

Expected<double>
SpillDoubles::median()
{
    if (failed_)
        return ioError(failReason_);
    if (count_ == 0)
        return ioError("median of empty sample");
    if (file_ == nullptr)
        return stats::median(buffer_);

    if (!flushBuffer())
        return ioError(failReason_);

    // Mirror stats::quantile(sample, 0.5) rank arithmetic exactly.
    const double position = 0.5 * static_cast<double>(count_ - 1);
    const size_t lower = static_cast<size_t>(position);
    const double frac = position - static_cast<double>(lower);
    if (lower + 1 >= count_) {
        auto back = selectSpilled(count_ - 1, count_ - 1, 0.0);
        if (!back.ok())
            return back.error();
        return back.value();
    }
    return selectSpilled(lower, lower + 1, frac);
}

/**
 * Locate the order statistics at @p rank_a and @p rank_b (0-based,
 * rank_a <= rank_b) with a 4-pass MSD radix selection, then return
 * a * (1 - frac) + b * frac — the exact expression stats::quantile()
 * evaluates, including the degenerate frac == 0 multiply.
 *
 * Each pass narrows each rank's key to a 16-bit-longer prefix by
 * histogramming the next digit of every value whose key matches the
 * prefix found so far. Both ranks ride the same file scan: while their
 * prefixes agree they share one histogram, after they diverge the scan
 * fills two.
 */
Expected<double>
SpillDoubles::selectSpilled(size_t rank_a, size_t rank_b, double frac)
{
    struct Cursor
    {
        uint64_t prefix = 0;
        size_t rank;
    };
    Cursor cursor[2] = {{0, rank_a}, {0, rank_b}};
    std::vector<uint64_t> hist[2];
    hist[0].assign(size_t(1) << 16, 0);
    hist[1].assign(size_t(1) << 16, 0);
    std::vector<double> chunk(kScanChunk);

    for (int pass = 0; pass < 4; ++pass) {
        const int shift = 48 - 16 * pass;
        const bool shared = cursor[0].prefix == cursor[1].prefix;
        std::fill(hist[0].begin(), hist[0].end(), 0);
        if (!shared)
            std::fill(hist[1].begin(), hist[1].end(), 0);

        if (std::fseek(file_, 0, SEEK_SET) != 0)
            return ioError("spill seek failed");
        size_t remaining = count_;
        while (remaining > 0) {
            const size_t want = std::min(chunk.size(), remaining);
            if (std::fread(chunk.data(), sizeof(double), want, file_) !=
                want)
                return ioError("spill read failed");
            remaining -= want;
            for (size_t i = 0; i < want; ++i) {
                const uint64_t key = orderKey(chunk[i]);
                const size_t digit = (key >> shift) & 0xffff;
                if (pass == 0) {
                    ++hist[0][digit];
                    continue;
                }
                const uint64_t known = key >> (shift + 16);
                if (known == cursor[0].prefix)
                    ++hist[0][digit];
                if (!shared && known == cursor[1].prefix)
                    ++hist[1][digit];
            }
        }

        for (int c = 0; c < 2; ++c) {
            const auto &counts = hist[shared ? 0 : c];
            uint64_t before = 0;
            bool found = false;
            for (size_t digit = 0; digit < counts.size(); ++digit) {
                if (before + counts[digit] > cursor[c].rank) {
                    cursor[c].prefix =
                        (cursor[c].prefix << 16) | digit;
                    cursor[c].rank -= before;
                    found = true;
                    break;
                }
                before += counts[digit];
            }
            if (!found)
                return ioError("spill selection lost its rank "
                               "(file changed mid-scan?)");
        }
    }

    const double a = fromOrderKey(cursor[0].prefix);
    const double b = fromOrderKey(cursor[1].prefix);
    return a * (1.0 - frac) + b * frac;
}

} // namespace stats
} // namespace qdel
