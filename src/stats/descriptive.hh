/**
 * @file
 * Descriptive statistics over samples: moments, quantiles, and the
 * lag-k autocorrelation used by BMBP to choose its rare-event run
 * length threshold.
 */

#ifndef QDEL_STATS_DESCRIPTIVE_HH
#define QDEL_STATS_DESCRIPTIVE_HH

#include <cstddef>
#include <vector>

namespace qdel {
namespace stats {

/** Compact summary of a sample (paper Table 1 columns). */
struct SummaryStats
{
    size_t count = 0;        //!< Number of observations.
    double mean = 0.0;       //!< Arithmetic mean.
    double median = 0.0;     //!< Sample median (midpoint for even n).
    double stddev = 0.0;     //!< Sample standard deviation (n-1).
    double min = 0.0;        //!< Smallest observation.
    double max = 0.0;        //!< Largest observation.
};

/** Arithmetic mean; 0 for an empty sample. */
double mean(const std::vector<double> &sample);

/** Sample variance with Bessel's correction; 0 when n < 2. */
double variance(const std::vector<double> &sample);

/** Sample standard deviation; 0 when n < 2. */
double stddev(const std::vector<double> &sample);

/** Median (average of the two central order statistics for even n). */
double median(std::vector<double> sample);

/**
 * Empirical quantile with linear interpolation between order statistics
 * (the common "type 7" definition). @p q must lie in [0, 1].
 */
double quantile(std::vector<double> sample, double q);

/**
 * Lag-k sample autocorrelation:
 * r_k = sum (x_t - m)(x_{t+k} - m) / sum (x_t - m)^2.
 * Returns 0 when the series is shorter than k + 2 or has zero variance.
 */
double autocorrelation(const std::vector<double> &series, size_t lag);

/** Compute all SummaryStats fields in one pass (plus a sort for median). */
SummaryStats summarize(const std::vector<double> &sample);

/**
 * Streaming accumulator for mean/variance over logs of observations,
 * used by the log-normal MLE predictor so refits are O(1).
 * Uses Welford's algorithm for numerical stability, and supports
 * rebuilding after history trims.
 */
class RunningMoments
{
  public:
    /** Add an observation. */
    void push(double x);

    /** Remove all state. */
    void clear();

    /** Number of observations. */
    size_t count() const { return count_; }

    /** Mean of the observations pushed so far. */
    double mean() const { return mean_; }

    /** Sample variance (n-1); 0 when n < 2. */
    double variance() const;

    /** Sample standard deviation. */
    double sd() const;

  private:
    size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

} // namespace stats
} // namespace qdel

#endif // QDEL_STATS_DESCRIPTIVE_HH
