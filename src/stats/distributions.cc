/**
 * @file
 * Implementation of the analytic distributions.
 */

#include "stats/distributions.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/special_functions.hh"
#include "util/logging.hh"

namespace qdel {
namespace stats {

// ---------------------------------------------------------------- Normal

NormalDist::NormalDist(double mu, double sigma)
    : mu_(mu), sigma_(sigma)
{
    if (!(sigma > 0.0))
        panic("NormalDist: sigma must be positive, got ", sigma);
}

double
NormalDist::cdf(double x) const
{
    return normalCdf((x - mu_) / sigma_);
}

double
NormalDist::pdf(double x) const
{
    return normalPdf((x - mu_) / sigma_) / sigma_;
}

double
NormalDist::quantile(double p) const
{
    return mu_ + sigma_ * normalQuantile(p);
}

// ------------------------------------------------------------- LogNormal

LogNormalDist::LogNormalDist(double mu, double sigma)
    : mu_(mu), sigma_(sigma)
{
    if (!(sigma > 0.0))
        panic("LogNormalDist: sigma must be positive, got ", sigma);
}

double
LogNormalDist::mean() const
{
    return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

double
LogNormalDist::median() const
{
    return std::exp(mu_);
}

double
LogNormalDist::variance() const
{
    const double s2 = sigma_ * sigma_;
    return (std::exp(s2) - 1.0) * std::exp(2.0 * mu_ + s2);
}

double
LogNormalDist::cdf(double x) const
{
    if (x <= 0.0)
        return 0.0;
    return normalCdf((std::log(x) - mu_) / sigma_);
}

double
LogNormalDist::pdf(double x) const
{
    if (x <= 0.0)
        return 0.0;
    return normalPdf((std::log(x) - mu_) / sigma_) / (x * sigma_);
}

double
LogNormalDist::quantile(double p) const
{
    return std::exp(mu_ + sigma_ * normalQuantile(p));
}

LogNormalDist
LogNormalDist::fromMeanMedian(double mean, double median)
{
    if (!(median > 0.0))
        panic("LogNormalDist::fromMeanMedian: median must be positive");
    const double mu = std::log(median);
    double ratio = mean / median;
    // A heavy-tailed queue always has mean >= median; clamp degenerate
    // calibration inputs instead of failing.
    if (ratio < 1.0 + 1e-9)
        ratio = 1.0 + 1e-9;
    const double sigma = std::sqrt(2.0 * std::log(ratio));
    return LogNormalDist(mu, std::max(sigma, 1e-6));
}

// -------------------------------------------------------------- StudentT

StudentTDist::StudentTDist(double nu)
    : nu_(nu)
{
    if (!(nu > 0.0))
        panic("StudentTDist: nu must be positive, got ", nu);
}

double
StudentTDist::cdf(double t) const
{
    if (t == 0.0)
        return 0.5;
    const double x = nu_ / (nu_ + t * t);
    const double half_tail = 0.5 * incompleteBeta(0.5 * nu_, 0.5, x);
    return t > 0.0 ? 1.0 - half_tail : half_tail;
}

double
StudentTDist::quantile(double p) const
{
    if (p <= 0.0)
        return -std::numeric_limits<double>::infinity();
    if (p >= 1.0)
        return std::numeric_limits<double>::infinity();
    if (p == 0.5)
        return 0.0;

    // Bracket around the normal-quantile starting guess, then bisect.
    double lo = -1.0, hi = 1.0;
    while (cdf(lo) > p)
        lo *= 2.0;
    while (cdf(hi) < p)
        hi *= 2.0;
    for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (cdf(mid) < p)
            lo = mid;
        else
            hi = mid;
        if (hi - lo < 1e-12 * (1.0 + std::fabs(hi)))
            break;
    }
    return 0.5 * (lo + hi);
}

// ----------------------------------------------------------- NoncentralT

NoncentralTDist::NoncentralTDist(double nu, double delta)
    : nu_(nu), delta_(delta)
{
    if (!(nu > 0.0))
        panic("NoncentralTDist: nu must be positive, got ", nu);
}

namespace {

/**
 * P[T <= t] for t >= 0 and arbitrary noncentrality del, following
 * Lenth (1989) AS 243 but summing the Poisson-weighted series outward
 * from its mode so that very large noncentrality (large sample sizes in
 * the tolerance-factor computation) does not underflow.
 */
double
noncentralTCdfNonneg(double t, double nu, double del)
{
    const double base = normalCdf(-del);
    if (t == 0.0)
        return base;

    const double t2 = t * t;
    const double x = t2 / (t2 + nu);
    const double b = 0.5 * nu;
    const double lambda = 0.5 * del * del;

    // Degenerate noncentrality: reduces to the central t.
    if (lambda < 1e-300) {
        return 0.5 + 0.5 * incompleteBeta(0.5, b, x);
    }

    const long long j0 = static_cast<long long>(lambda);
    const double log_lambda = std::log(lambda);

    // Term weights at the Poisson mode j0 (log space to avoid underflow).
    const double log_p0 =
        -lambda + j0 * log_lambda - logGamma(j0 + 1.0);
    const double log_q0_mag =
        std::log(std::fabs(del)) - 0.5 * std::log(2.0) - lambda +
        j0 * log_lambda - logGamma(j0 + 1.5);
    const double sign_q = del >= 0.0 ? 1.0 : -1.0;

    // Incomplete-beta values and decrement terms at the mode for the two
    // families a = j + 1/2 (p terms) and a = j + 1 (q terms).
    auto beta_term = [&](double a) {
        // T(a, b) = x^a (1-x)^b / (a B(a, b))
        return std::exp(a * std::log(x) + b * std::log1p(-x) -
                        std::log(a) - logBeta(a, b));
    };

    const double ap0 = j0 + 0.5;
    const double aq0 = j0 + 1.0;
    double ip_mode = incompleteBeta(ap0, b, x);
    double iq_mode = incompleteBeta(aq0, b, x);
    double tp_mode = beta_term(ap0);
    double tq_mode = beta_term(aq0);

    const double tol = 1e-17;
    double sum = 0.0;

    // Upward sweep: j = j0, j0+1, ...
    {
        double p = std::exp(log_p0);
        double q = std::exp(log_q0_mag);
        double ip = ip_mode;
        double iq = iq_mode;
        double tp = tp_mode;
        double tq = tq_mode;
        for (long long j = j0;; ++j) {
            const double contrib = p * ip + sign_q * q * iq;
            sum += contrib;
            if (p + q < tol && j > j0 + 4)
                break;
            if (j - j0 > 40000000LL) {
                warn("noncentralTCdf: upward series did not converge");
                break;
            }
            // Advance j -> j+1.
            const double ap = j + 0.5;
            const double aq = j + 1.0;
            ip -= tp;
            iq -= tq;
            tp *= x * (ap + b) / (ap + 1.0);
            tq *= x * (aq + b) / (aq + 1.0);
            p *= lambda / (j + 1.0);
            q *= lambda / (j + 1.5);
        }
    }

    // Downward sweep: j = j0-1, ..., 0.
    if (j0 > 0) {
        double p = std::exp(log_p0);
        double q = std::exp(log_q0_mag);
        double ip = ip_mode;
        double iq = iq_mode;
        double tp = tp_mode;
        double tq = tq_mode;
        for (long long j = j0 - 1; j >= 0; --j) {
            // Retreat j+1 -> j.
            const double ap = j + 0.5;  // target a for p family
            const double aq = j + 1.0;  // target a for q family
            tp *= (ap + 1.0) / (x * (ap + b));
            tq *= (aq + 1.0) / (x * (aq + b));
            ip += tp;
            iq += tq;
            p *= (j + 1.0) / lambda;
            q *= (j + 1.5) / lambda;

            const double contrib = p * ip + sign_q * q * iq;
            sum += contrib;
            if (p + q < tol)
                break;
        }
    }

    double result = base + 0.5 * sum;
    return std::clamp(result, 0.0, 1.0);
}

} // namespace

double
NoncentralTDist::cdf(double t) const
{
    if (t < 0.0)
        return 1.0 - noncentralTCdfNonneg(-t, nu_, -delta_);
    return noncentralTCdfNonneg(t, nu_, delta_);
}

double
NoncentralTDist::quantile(double p) const
{
    if (p <= 0.0)
        return -std::numeric_limits<double>::infinity();
    if (p >= 1.0)
        return std::numeric_limits<double>::infinity();

    // Initial guess: normal approximation around delta, then expand to
    // bracket and bisect.
    double center = delta_;
    double width = std::max(1.0, std::fabs(delta_) * 0.5);
    double lo = center - width;
    double hi = center + width;
    int guard = 0;
    while (cdf(lo) > p && guard++ < 200)
        lo -= width *= 1.6;
    width = std::max(1.0, std::fabs(delta_) * 0.5);
    guard = 0;
    while (cdf(hi) < p && guard++ < 200)
        hi += width *= 1.6;

    for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (cdf(mid) < p)
            lo = mid;
        else
            hi = mid;
        if (hi - lo < 1e-10 * (1.0 + std::fabs(hi)))
            break;
    }
    return 0.5 * (lo + hi);
}

// ----------------------------------------------------------- Exponential

ExponentialDist::ExponentialDist(double rate)
    : rate_(rate)
{
    if (!(rate > 0.0))
        panic("ExponentialDist: rate must be positive, got ", rate);
}

double
ExponentialDist::cdf(double x) const
{
    return x <= 0.0 ? 0.0 : -std::expm1(-rate_ * x);
}

double
ExponentialDist::quantile(double p) const
{
    if (p >= 1.0)
        return std::numeric_limits<double>::infinity();
    return p <= 0.0 ? 0.0 : -std::log1p(-p) / rate_;
}

// --------------------------------------------------------------- Weibull

WeibullDist::WeibullDist(double shape, double scale)
    : shape_(shape), scale_(scale)
{
    if (!(shape > 0.0) || !(scale > 0.0))
        panic("WeibullDist: non-positive parameter");
}

double
WeibullDist::cdf(double x) const
{
    if (x <= 0.0)
        return 0.0;
    return -std::expm1(-std::pow(x / scale_, shape_));
}

double
WeibullDist::quantile(double p) const
{
    if (p >= 1.0)
        return std::numeric_limits<double>::infinity();
    if (p <= 0.0)
        return 0.0;
    return scale_ * std::pow(-std::log1p(-p), 1.0 / shape_);
}

// ---------------------------------------------------------------- Pareto

ParetoDist::ParetoDist(double xm, double alpha)
    : xm_(xm), alpha_(alpha)
{
    if (!(xm > 0.0) || !(alpha > 0.0))
        panic("ParetoDist: non-positive parameter");
}

double
ParetoDist::cdf(double x) const
{
    if (x <= xm_)
        return 0.0;
    return 1.0 - std::pow(xm_ / x, alpha_);
}

double
ParetoDist::quantile(double p) const
{
    if (p >= 1.0)
        return std::numeric_limits<double>::infinity();
    if (p <= 0.0)
        return xm_;
    return xm_ * std::pow(1.0 - p, -1.0 / alpha_);
}

} // namespace stats
} // namespace qdel
