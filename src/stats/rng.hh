/**
 * @file
 * Deterministic random number generation for the workload synthesizer,
 * the Monte Carlo rare-event table builder, and the test suite.
 *
 * We deliberately avoid std::normal_distribution and friends: their
 * output sequences are implementation-defined, which would make traces
 * and test expectations non-portable. Rng produces identical streams on
 * every platform for a given seed.
 */

#ifndef QDEL_STATS_RNG_HH
#define QDEL_STATS_RNG_HH

#include <cstdint>

namespace qdel {
namespace stats {

/**
 * xoshiro256** generator with splitmix64 seeding plus hand-rolled
 * samplers for the distributions the library needs.
 */
class Rng
{
  public:
    /** Seed the generator; the same seed yields the same stream forever. */
    explicit Rng(uint64_t seed = 0x853c49e6748fea9bull);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] (inclusive). */
    long long uniformInt(long long lo, long long hi);

    /** Standard normal deviate (Marsaglia polar method). */
    double normal();

    /** Normal deviate with the given mean and standard deviation. */
    double normal(double mean, double sd);

    /** Exponential deviate with the given rate (mean 1/rate). */
    double exponential(double rate);

    /** Log-normal deviate: exp(Normal(mu, sigma)). */
    double logNormal(double mu, double sigma);

    /** Weibull deviate with shape k and scale lambda. */
    double weibull(double shape, double scale);

    /** Pareto (Lomax-free, classic) deviate: xm * U^{-1/alpha}. */
    double pareto(double xm, double alpha);

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p);

    /**
     * Categorical draw: pick an index in [0, n) with probability
     * proportional to weights[i]; weights need not be normalized.
     */
    int categorical(const double *weights, int n);

    /** Split off an independent generator (seeded from this stream). */
    Rng split();

  private:
    uint64_t state_[4];
    double cachedNormal_;
    bool hasCachedNormal_;
};

} // namespace stats
} // namespace qdel

#endif // QDEL_STATS_RNG_HH
