/**
 * @file
 * Special functions underpinning the distribution layer: log-gamma and
 * log-beta, the regularized incomplete beta and gamma functions, the
 * standard normal CDF, and the standard normal quantile (Wichura's
 * AS 241 / PPND16 algorithm).
 *
 * Everything here is deterministic, allocation-free, and accurate to
 * near machine precision over the parameter ranges exercised by the
 * predictors (binomial CDFs with n up to millions, noncentral-t series
 * with large noncentrality).
 */

#ifndef QDEL_STATS_SPECIAL_FUNCTIONS_HH
#define QDEL_STATS_SPECIAL_FUNCTIONS_HH

namespace qdel {
namespace stats {

/** Natural log of the gamma function (thin wrapper over std::lgamma). */
double logGamma(double x);

/** Natural log of the beta function B(a, b). */
double logBeta(double a, double b);

/**
 * Regularized incomplete beta function I_x(a, b).
 *
 * Evaluated with the continued-fraction expansion (Numerical-Recipes
 * style betacf) using the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) to stay
 * in the rapidly converging region.
 *
 * @param a First shape parameter, a > 0.
 * @param b Second shape parameter, b > 0.
 * @param x Evaluation point in [0, 1].
 */
double incompleteBeta(double a, double b, double x);

/**
 * Regularized lower incomplete gamma function P(a, x).
 * Series expansion for x < a+1, continued fraction otherwise.
 */
double incompleteGammaLower(double a, double x);

/** Regularized upper incomplete gamma function Q(a, x) = 1 - P(a, x). */
double incompleteGammaUpper(double a, double x);

/** Standard normal cumulative distribution function Phi(x). */
double normalCdf(double x);

/** Standard normal density phi(x). */
double normalPdf(double x);

/**
 * Standard normal quantile Phi^{-1}(p) (Wichura AS 241, PPND16).
 * Accurate to ~1e-15 over (0, 1); returns +/-infinity at the endpoints.
 *
 * @param p Probability in [0, 1].
 */
double normalQuantile(double p);

/**
 * CDF of the binomial distribution: P[Bin(n, p) <= k].
 * Computed exactly through the incomplete beta identity
 * P[Bin(n,p) <= k] = I_{1-p}(n-k, k+1), valid for 0 <= k < n.
 *
 * @param k Number of successes (values < 0 give 0, >= n give 1).
 * @param n Number of trials, n >= 1.
 * @param p Per-trial success probability in [0, 1].
 */
double binomialCdf(long long k, long long n, double p);

/** Log of the binomial PMF: log P[Bin(n, p) = k]. */
double binomialLogPmf(long long k, long long n, double p);

} // namespace stats
} // namespace qdel

#endif // QDEL_STATS_SPECIAL_FUNCTIONS_HH
