/**
 * @file
 * Implementation of the one-sided normal tolerance factors.
 */

#include "stats/tolerance.hh"

#include <cmath>

#include "stats/distributions.hh"
#include "stats/special_functions.hh"
#include "util/logging.hh"

namespace qdel {
namespace stats {

namespace {

void
checkArgs(size_t n, double q, double confidence)
{
    if (n < 2)
        panic("normalToleranceFactor: need n >= 2, got ", n);
    if (!(q > 0.0) || !(q < 1.0))
        panic("normalToleranceFactor: q must lie in (0,1), got ", q);
    if (!(confidence > 0.0) || !(confidence < 1.0))
        panic("normalToleranceFactor: confidence must lie in (0,1)");
}

} // namespace

double
normalToleranceFactorExact(size_t n, double q, double confidence)
{
    checkArgs(n, q, confidence);
    const double dn = static_cast<double>(n);
    const double ncp = normalQuantile(q) * std::sqrt(dn);
    NoncentralTDist nct(dn - 1.0, ncp);
    return nct.quantile(confidence) / std::sqrt(dn);
}

double
normalToleranceFactorApprox(size_t n, double q, double confidence)
{
    checkArgs(n, q, confidence);
    const double dn = static_cast<double>(n);
    const double zq = normalQuantile(q);
    const double zc = normalQuantile(confidence);
    const double a = 1.0 - zc * zc / (2.0 * (dn - 1.0));
    const double b = zq * zq - zc * zc / dn;
    double discriminant = zq * zq - a * b;
    if (discriminant < 0.0)
        discriminant = 0.0;
    if (a <= 0.0) {
        // Pathologically small n for the requested confidence; fall back
        // to the exact computation rather than produce nonsense.
        return normalToleranceFactorExact(n, q, confidence);
    }
    return (zq + std::sqrt(discriminant)) / a;
}

double
normalToleranceFactor(size_t n, double q, double confidence)
{
    checkArgs(n, q, confidence);
    if (n <= 300)
        return normalToleranceFactorExact(n, q, confidence);
    return normalToleranceFactorApprox(n, q, confidence);
}

} // namespace stats
} // namespace qdel
