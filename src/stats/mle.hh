/**
 * @file
 * Maximum-likelihood parameter fitters used by the parametric baseline
 * predictor and by the workload calibration code.
 */

#ifndef QDEL_STATS_MLE_HH
#define QDEL_STATS_MLE_HH

#include <cstddef>
#include <vector>

#include "stats/distributions.hh"

namespace qdel {
namespace stats {

/** Result of a normal fit: (mu, sigma) with sigma the n-1 estimate. */
struct NormalFit
{
    double mu = 0.0;     //!< Sample mean.
    double sigma = 0.0;  //!< Sample standard deviation (n-1).
    size_t count = 0;    //!< Observations used.
};

/**
 * Fit a normal distribution by MLE (mean) with the unbiased variance
 * estimate, as used for tolerance-bound construction.
 * Requires at least two observations.
 */
NormalFit fitNormal(const std::vector<double> &sample);

/**
 * Fit a log-normal distribution: a normal fit on log(x).
 * Non-positive observations are shifted by @p epsilon (queue wait times
 * of zero seconds occur in the traces; the paper's log transform needs
 * strictly positive data).
 *
 * @param sample  Raw (not log) observations.
 * @param epsilon Additive floor applied to observations below it.
 */
NormalFit fitLogNormal(const std::vector<double> &sample,
                       double epsilon = 1.0);

/** Construct the distribution object corresponding to a log fit. */
LogNormalDist toLogNormal(const NormalFit &fit);

} // namespace stats
} // namespace qdel

#endif // QDEL_STATS_MLE_HH
