/**
 * @file
 * AR(1)-driven log-normal process generator.
 *
 * The paper's rare-event calibration (Section 4.1, "Nonstationarity")
 * runs Monte Carlo simulations of log-normal series "with various
 * values of first autocorrelation" to decide how many consecutive
 * above-bound observations constitute a change point. The workload
 * synthesizer reuses the same process to give the synthetic queues
 * realistic short-range dependence.
 */

#ifndef QDEL_STATS_AR1_HH
#define QDEL_STATS_AR1_HH

#include "stats/rng.hh"

namespace qdel {
namespace stats {

/**
 * Stationary Gaussian AR(1) latent process exponentiated into a
 * log-normal marginal:
 *
 *   z_t = rho z_{t-1} + sqrt(1 - rho^2) e_t,   e_t ~ N(0, 1)
 *   x_t = exp(mu + sigma z_t)
 *
 * The latent z_t has unit marginal variance for every rho, so the
 * marginal distribution of x_t is LogNormal(mu, sigma) regardless of
 * the autocorrelation — exactly the knob the rare-event calibration
 * needs to twist.
 */
class Ar1LogNormalProcess
{
  public:
    /**
     * @param mu    Log-scale location of the marginal.
     * @param sigma Log-scale spread of the marginal, sigma > 0.
     * @param rho   Lag-1 autocorrelation of the latent process,
     *              in [0, 1).
     * @param rng   Seeded generator (moved in / copied).
     */
    Ar1LogNormalProcess(double mu, double sigma, double rho, Rng rng);

    /** Draw the next value of the process. */
    double next();

    /** Current latent state (unit-variance scale). */
    double latent() const { return z_; }

    /** Reset the latent state to a fresh stationary draw. */
    void reset();

    /** Re-target the marginal (used for regime changes mid-series). */
    void setMarginal(double mu, double sigma);

    /** Lag-1 autocorrelation of the latent chain. */
    double rho() const { return rho_; }

  private:
    double mu_;
    double sigma_;
    double rho_;
    double innovationScale_;
    double z_;
    Rng rng_;
};

} // namespace stats
} // namespace qdel

#endif // QDEL_STATS_AR1_HH
