/**
 * @file
 * Low-overhead, thread-safe metrics registry: counters, gauges, and
 * fixed-bucket histograms backed by sharded atomics, so a hot-path
 * update is one relaxed atomic RMW on a cache line that (statistically)
 * no other thread is touching.
 *
 * Design constraints, in order:
 *  - a *disabled* registry must cost almost nothing: every
 *    instrumentation site is wrapped in QDEL_OBS()/QDEL_OBS_SPAN()
 *    (see obs.hh), which reduces to a single relaxed atomic bool load
 *    and a predictable branch when observability is off, and to
 *    nothing at all when compiled with -DQDEL_OBS_DISABLE;
 *  - an *enabled* update must not serialize concurrent writers:
 *    every metric is split into kShards cache-line-aligned shards and
 *    each thread sticks to one shard, so concurrent increments sum
 *    exactly (verified under TSan) without contending on one line;
 *  - reads are rare and may be slow: snapshot() sums the shards under
 *    the registration mutex and returns plain structs that can be
 *    merged, serialized to Prometheus text exposition, or to JSON.
 *
 * Metric handles returned by the registry are stable for the lifetime
 * of the process (deque storage, never erased), so call sites cache
 * references in function-local statics and pay the registration mutex
 * exactly once.
 */

#ifndef QDEL_OBS_METRICS_HH
#define QDEL_OBS_METRICS_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace qdel {
namespace obs {

/** Shards per metric; a power of two so the thread hash is a mask. */
constexpr size_t kShards = 8;

namespace detail {

/** Process-wide observability switch; see obs::enabled(). */
extern std::atomic<bool> g_enabled;

/**
 * Stable small index for the calling thread, used both to pick a
 * metric shard and as the "tid" of trace events. Assigned on first
 * use from a global counter, so ids are dense and deterministic in
 * single-threaded runs.
 */
size_t threadIndex();

inline size_t
threadShard()
{
    return threadIndex() & (kShards - 1);
}

/** Relaxed add for pre-C++20-fetch_add-on-double portability. */
inline void
addDouble(std::atomic<double> &target, double delta)
{
    double current = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed,
                                         std::memory_order_relaxed)) {
    }
}

} // namespace detail

/** @return true when metric/event collection is on (default: off). */
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/** Turn collection on or off process-wide. */
void setEnabled(bool enabled);

/** Monotonically increasing event count. */
class Counter
{
  public:
    /** Add @p n; one relaxed RMW on the caller's shard. */
    void
    inc(uint64_t n = 1)
    {
        shards_[detail::threadShard()].value.fetch_add(
            n, std::memory_order_relaxed);
    }

    /** Sum over shards (racy-by-design snapshot read). */
    uint64_t value() const;

    const std::string &name() const { return name_; }
    const std::string &help() const { return help_; }

    /** Prefer Registry::counter(); public for direct/test use. */
    Counter(std::string name, std::string help)
        : name_(std::move(name)), help_(std::move(help))
    {
    }

  private:
    friend class Registry;

    struct alignas(64) Shard
    {
        std::atomic<uint64_t> value{0};
    };

    std::string name_;
    std::string help_;
    Shard shards_[kShards];
};

/** Last-write-wins instantaneous value. */
class Gauge
{
  public:
    void
    set(double v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    void
    add(double delta)
    {
        detail::addDouble(value_, delta);
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    /** Prefer Registry::gauge(); public for direct/test use. */
    Gauge(std::string name, std::string help)
        : name_(std::move(name)), help_(std::move(help))
    {
    }

  private:
    friend class Registry;

    std::string name_;
    std::string help_;
    std::atomic<double> value_{0.0};
};

/**
 * Fixed-bucket histogram with Prometheus "le" semantics: bucket i
 * counts observations <= bounds[i]; one extra overflow bucket counts
 * everything above the last bound (the "+Inf" bucket). Values below
 * the first bound land in bucket 0 — there is no separate underflow
 * bucket, exactly like Prometheus.
 */
class Histogram
{
  public:
    /** Record @p v: one shard bucket RMW plus the running sum. */
    void
    observe(double v)
    {
        Shard &shard = shards_[detail::threadShard()];
        shard.buckets[bucketIndex(v)].fetch_add(
            1, std::memory_order_relaxed);
        detail::addDouble(shard.sum, v);
    }

    /** Index of the bucket @p v falls into (last = overflow). */
    size_t bucketIndex(double v) const;

    /** Upper bounds, ascending; counts() has one more entry. */
    const std::vector<double> &bounds() const { return bounds_; }

    /** Per-bucket (non-cumulative) counts summed over shards. */
    std::vector<uint64_t> counts() const;

    /** Total observation count. */
    uint64_t count() const;

    /** Sum of observed values. */
    double sum() const;

    const std::string &name() const { return name_; }

    /** Prefer Registry::histogram(); public for direct/test use. */
    Histogram(std::string name, std::string help,
              std::vector<double> bounds);

  private:
    friend class Registry;

    struct alignas(64) Shard
    {
        std::vector<std::atomic<uint64_t>> buckets;
        std::atomic<double> sum{0.0};
    };

    std::string name_;
    std::string help_;
    std::vector<double> bounds_;
    Shard shards_[kShards];
};

/** Exponential bucket bounds: @p first, first*factor, ... (n bounds). */
std::vector<double> exponentialBounds(double first, double factor,
                                      size_t n);

/** Point-in-time copy of one counter. */
struct CounterSnapshot
{
    std::string name;
    std::string help;
    uint64_t value = 0;
};

/** Point-in-time copy of one gauge. */
struct GaugeSnapshot
{
    std::string name;
    std::string help;
    double value = 0.0;
};

/** Point-in-time copy of one histogram (non-cumulative counts). */
struct HistogramSnapshot
{
    std::string name;
    std::string help;
    std::vector<double> bounds;
    std::vector<uint64_t> counts;  //!< bounds.size() + 1 entries.
    double sum = 0.0;
    uint64_t count = 0;
};

/**
 * A full registry dump, mergeable and serializable. merge() sums
 * counters and histogram buckets by name (histograms must have equal
 * bounds) and takes the other side's value for gauges — the semantics
 * of folding a worker's registry into an aggregator's.
 */
struct MetricsSnapshot
{
    std::vector<CounterSnapshot> counters;
    std::vector<GaugeSnapshot> gauges;
    std::vector<HistogramSnapshot> histograms;

    void merge(const MetricsSnapshot &other);
};

/** Prometheus text exposition format (HELP/TYPE + samples). */
std::string renderPrometheus(const MetricsSnapshot &snapshot);

/** The same content as a single JSON object. */
std::string renderJson(const MetricsSnapshot &snapshot);

/**
 * Owner of all metrics. Registration takes a mutex and is idempotent
 * per (type, name): asking again returns the existing instance, so
 * independent call sites can share a metric by name alone.
 */
class Registry
{
  public:
    Counter &counter(const std::string &name, const std::string &help);
    Gauge &gauge(const std::string &name, const std::string &help);
    Histogram &histogram(const std::string &name, const std::string &help,
                         std::vector<double> bounds);

    /** Sum every metric into plain structs, registration order. */
    MetricsSnapshot snapshot() const;

    /**
     * Zero every metric (registrations survive). Test isolation only:
     * concurrent hot-path updates during a reset are not lost-update
     * safe.
     */
    void resetForTest();

  private:
    mutable std::mutex mutex_;
    std::deque<Counter> counters_;
    std::deque<Gauge> gauges_;
    std::deque<Histogram> histograms_;
};

/** The process-wide default registry every instrumentation site uses. */
Registry &registry();

/**
 * Serialize registry() to @p path: Prometheus text exposition, or the
 * JSON rendering when the path ends in ".json". On failure returns
 * false and sets @p error.
 */
bool writeMetricsFile(const std::string &path, std::string *error);

} // namespace obs
} // namespace qdel

#endif // QDEL_OBS_METRICS_HH
