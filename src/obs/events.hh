/**
 * @file
 * Structured event trace: a bounded, thread-safe ring buffer of typed
 * events recording *what happened when* (a prediction issued, a bound
 * missed, a checkpoint written, a cache probed...), complementing the
 * metrics registry which records only *how often / how long*.
 *
 * The ring is sharded like the metrics: each shard has its own mutex
 * and fixed-capacity ring, and a thread always appends to its own
 * shard, so concurrent emitters contend only with same-shard threads
 * and the structure stays data-race-free under TSan. When a shard
 * wraps, its oldest events are overwritten and a dropped counter
 * remembers how many; drain() merges all shards back into timestamp
 * order.
 *
 * Serialization targets:
 *  - JSON Lines (one event object per line) when the output path ends
 *    in ".jsonl";
 *  - Chrome trace_event JSON ({"traceEvents": [...]}) otherwise,
 *    loadable in chrome://tracing and https://ui.perfetto.dev: spans
 *    become "ph":"X" complete events with a duration, instants become
 *    "ph":"i".
 */

#ifndef QDEL_OBS_EVENTS_HH
#define QDEL_OBS_EVENTS_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hh"

namespace qdel {
namespace obs {

/** Everything the pipelines can announce. */
enum class EventType : uint8_t {
    PredictionIssued,  //!< upperBound() evaluated for a scored job.
    BoundHit,          //!< observed wait <= predicted bound.
    BoundMiss,         //!< observed wait exceeded the bound.
    RareRunStarted,    //!< first exceedance of a potential rare event.
    RareEventFired,    //!< exceedance run hit the detector threshold.
    HistoryTrimmed,    //!< predictor history discarded after a firing.
    CheckpointWritten, //!< snapshot published to disk.
    WalAppend,         //!< record appended to the write-ahead log.
    RecoveryRung,      //!< recovery ladder rung taken at startup.
    CacheHit,          //!< .qtc trace cache hit.
    CacheStale,        //!< .qtc present but out of date.
    CacheCorrupt,      //!< .qtc failed validation.
    CacheMiss,         //!< no .qtc next to the trace.
    ParseDone,         //!< a trace file finished parsing.
    Span,              //!< generic timed section (ScopedTimer).
};

/** trace_event "name" for @p type (stable, snake_case). */
const char *eventTypeName(EventType type);

/**
 * One trace record. Kept flat and allocation-free on the emit path:
 * label must be a string literal (or otherwise outlive the ring) and
 * the two doubles are type-dependent payload (e.g. for BoundMiss,
 * a = predicted bound, b = observed wait).
 */
struct Event
{
    EventType type = EventType::Span;
    uint32_t tid = 0;        //!< obs::detail::threadIndex() of emitter.
    int64_t tsNanos = 0;     //!< nanoseconds since process start.
    int64_t durNanos = 0;    //!< span duration; 0 for instant events.
    double a = 0.0;          //!< payload, meaning depends on type.
    double b = 0.0;          //!< payload, meaning depends on type.
    uint64_t trace = 0;      //!< request trace id; 0 when untraced.
    const char *label = "";  //!< static string; "" when unused.
};

/** Monotonic nanoseconds since the first call in this process. */
int64_t nowNanos();

/**
 * Bounded multi-producer event buffer. Capacity is split evenly
 * across kShards shards; each shard overwrites its own oldest events
 * on wrap. Emission when full is therefore O(1) and never blocks on
 * other shards.
 */
class EventRing
{
  public:
    explicit EventRing(size_t capacity = 1 << 16);

    /** Append to the calling thread's shard (tid/ts filled here). */
    void emit(EventType type, double a = 0.0, double b = 0.0,
              const char *label = "", uint64_t trace = 0);

    /** Append a completed span covering [tsNanos, tsNanos+durNanos]. */
    void emitSpan(EventType type, int64_t tsNanos, int64_t durNanos,
                  const char *label, uint64_t trace = 0);

    /** All buffered events, merged and sorted by timestamp. */
    std::vector<Event> drain() const;

    /** Events overwritten because a shard wrapped. */
    uint64_t dropped() const;

    /** Empty every shard and zero the dropped count (test isolation). */
    void clear();

  private:
    struct Shard
    {
        mutable std::mutex mutex;
        std::vector<Event> ring;    //!< capacity-sized once full.
        size_t next = 0;            //!< overwrite cursor once wrapped.
        uint64_t dropped = 0;
    };

    void push(Shard &shard, const Event &event);

    size_t shardCapacity_;
    Shard shards_[kShards];
};

/** The process-wide ring every instrumentation site emits into. */
EventRing &events();

/** JSON Lines: one {"name":...,"ph":...,"ts":...} object per line. */
std::string renderJsonLines(const std::vector<Event> &events);

/** Chrome trace_event format: {"traceEvents":[...]}. */
std::string renderChromeTrace(const std::vector<Event> &events);

/**
 * Drain events() to @p path: JSON Lines when the path ends in
 * ".jsonl", Chrome trace_event JSON otherwise. On failure returns
 * false and sets @p error.
 */
bool writeEventsFile(const std::string &path, std::string *error);

/**
 * RAII timer: measures wall time from construction to destruction,
 * observes the elapsed seconds into @p histogram (if non-null) and
 * emits a span event (if observability is enabled at destruction).
 * Instantiated via QDEL_OBS_SPAN, which passes a null histogram when
 * observability is off at entry so the destructor stays cheap.
 */
class ScopedTimer
{
  public:
    ScopedTimer(Histogram *histogram, EventType type, const char *label)
        : histogram_(histogram), type_(type), label_(label),
          startNanos_(histogram ? nowNanos() : 0)
    {
    }

    // Inline so the null-histogram (observability off) path optimizes
    // down to a register test — an out-of-line destructor would force
    // every member to be spilled to the stack at each timed site.
    ~ScopedTimer()
    {
        if (!histogram_)
            return;
        finish();
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    /**
     * Attach a request trace id; the emitted span carries it so a
     * client-chosen id can be matched against the drained event
     * stream. Call via QDEL_OBS() so the site compiles away under
     * QDEL_OBS_DISABLE.
     */
    void setTrace(uint64_t trace) { trace_ = trace; }

  private:
    /** The enabled-path tail: observe the duration, emit the span. */
    void finish();

    Histogram *histogram_;
    EventType type_;
    const char *label_;
    int64_t startNanos_;
    uint64_t trace_ = 0;
};

} // namespace obs
} // namespace qdel

#endif // QDEL_OBS_EVENTS_HH
