/**
 * @file
 * Online calibration primitives: the live analogue of the paper's
 * correct-fraction tables. A bound at confidence C must cover the
 * observed wait at least C of the time; CalibrationWindow keeps a
 * bounded chronological record of hit/miss outcomes for one predictor
 * entry so the service can report rolling empirical coverage, and
 * assessCalibration() turns a (hits, n) pair into a verdict — drift
 * from the requested confidence plus a one-sided binomial test that
 * flags an entry whose observed coverage is significantly below C.
 *
 * Everything here is deterministic and dependency-free (std only):
 * qdel_obs sits below qdel_stats in the link graph, so the binomial
 * tail is computed self-contained in log space via std::lgamma. Tests
 * cross-check it against stats::binomialCdf.
 */

#ifndef QDEL_OBS_CALIBRATION_HH
#define QDEL_OBS_CALIBRATION_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace qdel {
namespace obs {

/**
 * Lower-tail binomial CDF P[X <= k] for X ~ Binomial(n, p), exact
 * log-space summation of the pmf. Monotone in k, clamped to [0, 1].
 * For the window sizes used here (n <= a few hundred) the summation
 * is both fast and accurate to ~1e-12.
 */
double binomialTailBelow(uint64_t k, uint64_t n, double p);

/**
 * Fixed-capacity chronological ring of hit/miss outcomes for one
 * (machine, queue, proc-bucket) entry. Oldest outcomes are evicted as
 * new ones arrive, so coverage() tracks *recent* behavior and recovers
 * after a refit fixes a drifting predictor — unlike lifetime counters,
 * which a long correct prefix can mask forever.
 *
 * Not thread-safe: the serve registry mutates it only under the owning
 * shard's writer lock, making the window a deterministic function of
 * the shard's event sequence (so WAL replay reconstructs it exactly).
 */
class CalibrationWindow
{
  public:
    static constexpr std::size_t kCapacity = 256;

    /** Record one scored outcome; evicts the oldest once full. */
    void record(bool hit);

    /** Outcomes currently held (<= kCapacity). */
    std::size_t count() const { return size_; }

    /** Hits among the held outcomes. */
    std::size_t hits() const { return hits_; }

    /** hits()/count(); -1 when empty (distinguishable from 0.0). */
    double coverage() const;

    /** Forget everything (test isolation / entry reset). */
    void clear();

    /**
     * Chronological dump, oldest outcome first, one byte per outcome
     * (0 = miss, 1 = hit). restore() replays a dump through record(),
     * so save -> restore round-trips the observable state exactly.
     */
    std::vector<uint8_t> serialize() const;
    void restore(const std::vector<uint8_t> &outcomes);

  private:
    std::array<uint8_t, kCapacity> slots_{};
    std::size_t size_ = 0;
    std::size_t next_ = 0;  //!< overwrite cursor once full.
    std::size_t hits_ = 0;
};

/** assessCalibration() output for one entry. */
struct CalibrationVerdict
{
    double coverage = -1.0;  //!< hits/n; -1 when n == 0.
    double drift = 0.0;      //!< coverage - confidence (negative = bad).
    double pValue = 1.0;     //!< P[X <= hits | n, confidence].
    bool failing = false;    //!< significantly under-covering.
};

/**
 * Judge observed coverage against the requested confidence. The flag
 * trips when the one-sided binomial test rejects "true coverage >= C"
 * at level @p alpha, i.e. P[Bin(n, C) <= hits] < alpha, and at least
 * @p minSamples outcomes back the verdict (small n trivially passes:
 * no evidence is not evidence of failure).
 */
CalibrationVerdict assessCalibration(std::size_t hits, std::size_t n,
                                     double confidence,
                                     std::size_t minSamples = 50,
                                     double alpha = 1e-3);

} // namespace obs
} // namespace qdel

#endif // QDEL_OBS_CALIBRATION_HH
