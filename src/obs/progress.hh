/**
 * @file
 * Progress/ETA arithmetic for --stats-every style periodic reporting:
 * given "k of n units done", derive the processing rate from wall
 * time since start and extrapolate the remaining time. Kept separate
 * from the metrics registry because progress is per-run state, not a
 * process-wide aggregate.
 */

#ifndef QDEL_OBS_PROGRESS_HH
#define QDEL_OBS_PROGRESS_HH

#include <cstdint>
#include <string>

namespace qdel {
namespace obs {

/** Rate + ETA estimator over a known total amount of work. */
class ProgressMeter
{
  public:
    /** Starts the wall clock; @p total may be 0 when unknown. */
    explicit ProgressMeter(uint64_t total);

    /** Record that @p done units are complete (monotone, absolute). */
    void update(uint64_t done);

    uint64_t done() const { return done_; }
    uint64_t total() const { return total_; }

    /** Fraction complete in [0, 1]; 0 when the total is unknown. */
    double fraction() const;

    /** Units per second since construction; 0 before any progress. */
    double ratePerSecond() const;

    /** Estimated seconds remaining; negative when unknowable. */
    double etaSeconds() const;

    /**
     * One-line summary, e.g.
     * "12500/100000 jobs (12.5%) | 48321 jobs/s | eta 00:00:02".
     * @p unit names the work item ("jobs", "traces").
     */
    std::string formatLine(const std::string &unit) const;

    /** "HH:MM:SS" (clamped to 99:59:59); "--:--:--" when negative. */
    static std::string formatEta(double seconds);

  private:
    uint64_t total_;
    uint64_t done_ = 0;
    int64_t startNanos_;
};

} // namespace obs
} // namespace qdel

#endif // QDEL_OBS_PROGRESS_HH
