/**
 * @file
 * Implementation of the event ring and its serializers.
 */

#include "obs/events.hh"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>

namespace qdel {
namespace obs {

namespace {

/**
 * trace_event "ph" phase for an event: completed spans carry a
 * duration ("X"), everything else is an instant ("i").
 */
const char *
eventPhase(const Event &event)
{
    return event.durNanos > 0 ? "X" : "i";
}

std::string
formatPayload(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return buf;
}

/** One event as a trace_event JSON object (no trailing newline). */
std::string
renderEventObject(const Event &event)
{
    // Chrome trace_event timestamps are microseconds; keep sub-us
    // resolution with a fractional part.
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "{\"name\":\"%s\",\"cat\":\"qdel\",\"ph\":\"%s\",\"pid\":1,"
        "\"tid\":%u,\"ts\":%.3f",
        eventTypeName(event.type), eventPhase(event),
        event.tid, static_cast<double>(event.tsNanos) / 1000.0);
    std::string out = buf;
    if (event.durNanos > 0) {
        std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f",
                      static_cast<double>(event.durNanos) / 1000.0);
        out += buf;
    } else {
        // Instant scope: "t" (thread) keeps the marker on its track.
        out += ",\"s\":\"t\"";
    }
    out += ",\"args\":{";
    bool first = true;
    if (event.label && event.label[0] != '\0') {
        out += std::string("\"label\":\"") + event.label + "\"";
        first = false;
    }
    if (event.a != 0.0 || event.b != 0.0) {
        out += std::string(first ? "" : ",") +
               "\"a\":" + formatPayload(event.a) +
               ",\"b\":" + formatPayload(event.b);
        first = false;
    }
    if (event.trace != 0) {
        // Hex string, zero-padded to 16 digits, matching the
        // X-Qdel-Trace header format so grep finds it verbatim.
        std::snprintf(buf, sizeof(buf),
                      "%s\"trace\":\"%016" PRIx64 "\"",
                      first ? "" : ",", event.trace);
        out += buf;
    }
    out += "}}";
    return out;
}

} // namespace

const char *
eventTypeName(EventType type)
{
    switch (type) {
      case EventType::PredictionIssued:  return "prediction_issued";
      case EventType::BoundHit:          return "bound_hit";
      case EventType::BoundMiss:         return "bound_miss";
      case EventType::RareRunStarted:    return "rare_run_started";
      case EventType::RareEventFired:    return "rare_event_fired";
      case EventType::HistoryTrimmed:    return "history_trimmed";
      case EventType::CheckpointWritten: return "checkpoint_written";
      case EventType::WalAppend:         return "wal_append";
      case EventType::RecoveryRung:      return "recovery_rung";
      case EventType::CacheHit:          return "cache_hit";
      case EventType::CacheStale:        return "cache_stale";
      case EventType::CacheCorrupt:      return "cache_corrupt";
      case EventType::CacheMiss:         return "cache_miss";
      case EventType::ParseDone:         return "parse_done";
      case EventType::Span:              return "span";
    }
    return "unknown";
}

int64_t
nowNanos()
{
    using Clock = std::chrono::steady_clock;
    static const Clock::time_point start = Clock::now();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now() - start)
        .count();
}

EventRing::EventRing(size_t capacity)
    : shardCapacity_(std::max<size_t>(1, capacity / kShards))
{
}

void
EventRing::push(Shard &shard, const Event &event)
{
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.ring.size() < shardCapacity_) {
        shard.ring.push_back(event);
        return;
    }
    shard.ring[shard.next] = event;
    shard.next = (shard.next + 1) % shardCapacity_;
    ++shard.dropped;
}

void
EventRing::emit(EventType type, double a, double b, const char *label,
                uint64_t trace)
{
    Event event;
    event.type = type;
    event.tid = static_cast<uint32_t>(detail::threadIndex());
    event.tsNanos = nowNanos();
    event.a = a;
    event.b = b;
    event.trace = trace;
    event.label = label;
    push(shards_[detail::threadShard()], event);
}

void
EventRing::emitSpan(EventType type, int64_t tsNanos, int64_t durNanos,
                    const char *label, uint64_t trace)
{
    Event event;
    event.type = type;
    event.tid = static_cast<uint32_t>(detail::threadIndex());
    event.tsNanos = tsNanos;
    event.durNanos = durNanos;
    event.trace = trace;
    event.label = label;
    push(shards_[detail::threadShard()], event);
}

std::vector<Event>
EventRing::drain() const
{
    std::vector<Event> merged;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        merged.insert(merged.end(), shard.ring.begin(),
                      shard.ring.end());
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const Event &x, const Event &y) {
                         return x.tsNanos < y.tsNanos;
                     });
    return merged;
}

uint64_t
EventRing::dropped() const
{
    uint64_t total = 0;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        total += shard.dropped;
    }
    return total;
}

void
EventRing::clear()
{
    for (Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.ring.clear();
        shard.next = 0;
        shard.dropped = 0;
    }
}

EventRing &
events()
{
    // Intentionally immortal, like registry(): reachable from atexit
    // handlers and late-exiting worker threads.
    static EventRing *instance = new EventRing;
    return *instance;
}

std::string
renderJsonLines(const std::vector<Event> &events)
{
    std::string out;
    for (const Event &event : events) {
        out += renderEventObject(event);
        out += '\n';
    }
    return out;
}

std::string
renderChromeTrace(const std::vector<Event> &events)
{
    std::string out = "{\"traceEvents\":[\n";
    for (size_t i = 0; i < events.size(); ++i) {
        out += renderEventObject(events[i]);
        out += (i + 1 < events.size()) ? ",\n" : "\n";
    }
    out += "],\"displayTimeUnit\":\"ms\"}\n";
    return out;
}

bool
writeEventsFile(const std::string &path, std::string *error)
{
    const std::vector<Event> drained = events().drain();
    const bool jsonl =
        path.size() >= 6 &&
        path.compare(path.size() - 6, 6, ".jsonl") == 0;
    std::ofstream out(path);
    if (!out) {
        if (error)
            *error = "cannot open '" + path + "' for writing";
        return false;
    }
    out << (jsonl ? renderJsonLines(drained)
                  : renderChromeTrace(drained));
    out.flush();
    if (!out) {
        if (error)
            *error = "write to '" + path + "' failed";
        return false;
    }
    return true;
}

void
ScopedTimer::finish()
{
    const int64_t durNanos = nowNanos() - startNanos_;
    histogram_->observe(static_cast<double>(durNanos) * 1e-9);
    if (enabled())
        events().emitSpan(type_, startNanos_, durNanos, label_,
                          trace_);
}

} // namespace obs
} // namespace qdel
