/**
 * @file
 * The qdel metric catalog: one struct of metric references per
 * instrumented subsystem, each behind a lazily-initialized accessor.
 * Centralizing names, help strings, and bucket layouts here keeps the
 * exposition schema reviewable in one place and lets call sites write
 *
 *   QDEL_OBS(obs::coreMetrics().observations.inc());
 *
 * without touching the registry directly. Each accessor registers on
 * first use (one mutex acquisition per process) and then returns the
 * same struct of stable references forever.
 */

#ifndef QDEL_OBS_DOMAIN_METRICS_HH
#define QDEL_OBS_DOMAIN_METRICS_HH

#include "obs/metrics.hh"

namespace qdel {
namespace obs {

/** Predictor lifecycle (src/core/): observe/refit/rare events. */
struct CoreMetrics
{
    Counter &observations;    //!< qdel_predictor_observations_total
    Counter &refits;          //!< qdel_predictor_refits_total
    Counter &rareRunStarted;  //!< qdel_rare_event_runs_started_total
    Counter &rareEventFired;  //!< qdel_rare_event_fired_total
    Gauge &rareRunLength;     //!< qdel_rare_event_run_length
    Gauge &historySize;       //!< qdel_predictor_history_size
    Histogram &refitSeconds;  //!< qdel_predictor_refit_seconds
};

/** Replay scoring loop + parallel evaluation (src/sim/replay/). */
struct ReplayMetrics
{
    Counter &jobsProcessed;        //!< qdel_replay_jobs_processed_total
    Counter &predictions;          //!< qdel_replay_predictions_total
    Counter &boundHits;            //!< qdel_replay_bound_hits_total
    Counter &boundMisses;          //!< qdel_replay_bound_misses_total
    Counter &infinitePredictions;  //!< qdel_replay_infinite_predictions_total
    Histogram &evalTaskSeconds;    //!< qdel_replay_eval_task_seconds
    Counter &batches;              //!< qdel_replay_batches_total
    Gauge &residentBytes;          //!< qdel_replay_resident_bytes
    Gauge &streamShardLag;         //!< qdel_replay_stream_shard_lag
};

/** util::ThreadPool saturation. */
struct PoolMetrics
{
    Counter &tasksSubmitted;  //!< qdel_pool_tasks_submitted_total
    Counter &tasksCompleted;  //!< qdel_pool_tasks_completed_total
    Gauge &queueDepth;        //!< qdel_pool_queue_depth
    Histogram &taskSeconds;   //!< qdel_pool_task_seconds
};

/** Persistence stack (src/persist/): durability cost + recovery. */
struct PersistMetrics
{
    Counter &checkpointsWritten;  //!< qdel_persist_checkpoints_written_total
    Counter &walAppends;          //!< qdel_persist_wal_appends_total
    Counter &recoveries;          //!< qdel_persist_recoveries_total
    Gauge &recoveryRung;          //!< qdel_persist_recovery_rung
    Gauge &walSegmentBytes;       //!< qdel_persist_wal_segment_bytes
    Histogram &fsyncSeconds;      //!< qdel_persist_fsync_seconds
    Histogram &checkpointSeconds; //!< qdel_persist_checkpoint_seconds
    Histogram &checkpointBytes;   //!< qdel_persist_checkpoint_bytes
};

/** Trace ingestion (src/trace/): parse throughput + .qtc cache. */
struct IngestMetrics
{
    Counter &linesParsed;     //!< qdel_ingest_lines_total
    Counter &recordsParsed;   //!< qdel_ingest_records_total
    Counter &malformed;       //!< qdel_ingest_malformed_total
    Counter &filtered;        //!< qdel_ingest_filtered_total
    Counter &parseBytes;      //!< qdel_ingest_bytes_total
    Counter &cacheHits;       //!< qdel_trace_cache_hits_total
    Counter &cacheStale;      //!< qdel_trace_cache_stale_total
    Counter &cacheCorrupt;    //!< qdel_trace_cache_corrupt_total
    Counter &cacheMisses;     //!< qdel_trace_cache_misses_total
    Histogram &parseSeconds;  //!< qdel_ingest_parse_seconds
};

/** Online bound service (src/serve/): request mix + shard health. */
struct ServeMetrics
{
    Counter &requests;           //!< qdel_serve_requests_total
    Counter &queries;            //!< qdel_serve_queries_total
    Counter &eventsApplied;      //!< qdel_serve_events_applied_total
    Counter &eventsRejected;     //!< qdel_serve_events_rejected_total
    Counter &badFrames;          //!< qdel_serve_bad_frames_total
    Counter &snapshotPublishes;  //!< qdel_serve_snapshot_publishes_total
    Counter &httpRequests;       //!< qdel_serve_http_requests_total
    Counter &shedTotal;          //!< qdel_serve_shed_total
    Counter &reapedConnections;  //!< qdel_serve_reaped_connections_total
    Counter &dedupHits;          //!< qdel_serve_dedup_hits_total
    Counter &acceptErrors;       //!< qdel_serve_accept_errors_total
    Counter &loopWakeups;        //!< qdel_serve_loop_wakeups_total
    Counter &bufferShrinks;      //!< qdel_serve_buffer_shrinks_total
    Counter &slowRequests;       //!< qdel_serve_slow_requests_total
    Gauge &entries;              //!< qdel_serve_entries
    Gauge &pendingJobs;          //!< qdel_serve_pending_jobs
    Gauge &connections;          //!< qdel_serve_connections
    Gauge &reactorLoops;         //!< qdel_serve_reactor_loops
    Histogram &requestSeconds;   //!< qdel_serve_request_seconds
    Histogram &querySeconds;     //!< qdel_serve_query_seconds
    Histogram &batchFrames;      //!< qdel_serve_batch_frames
};

/**
 * Online bound-calibration telemetry (src/serve/ scoring path): the
 * live analogue of the offline correct-fraction tables. Counters move
 * when a started job's wait is scored against the bound captured at
 * its submit; gauges summarize the per-entry rolling windows and are
 * refreshed by BoundRegistry::calibrationReport() (on every /metrics
 * and /debug/calibration render).
 */
struct CalibrationMetrics
{
    Counter &scored;        //!< qdel_calib_scored_total
    Counter &hits;          //!< qdel_calib_hits_total
    Counter &misses;        //!< qdel_calib_misses_total
    Counter &infinite;      //!< qdel_calib_infinite_total
    Counter &unscored;      //!< qdel_calib_unscored_total
    Gauge &entries;         //!< qdel_calib_entries
    Gauge &failingEntries;  //!< qdel_calib_failing_entries
    Gauge &worstCoverage;   //!< qdel_calib_worst_coverage
    Gauge &maxUndercoverage; //!< qdel_calib_max_undercoverage
};

CoreMetrics &coreMetrics();
ReplayMetrics &replayMetrics();
PoolMetrics &poolMetrics();
PersistMetrics &persistMetrics();
IngestMetrics &ingestMetrics();
ServeMetrics &serveMetrics();
CalibrationMetrics &calibrationMetrics();

} // namespace obs
} // namespace qdel

#endif // QDEL_OBS_DOMAIN_METRICS_HH
