/**
 * @file
 * Implementation of the calibration window and the self-contained
 * binomial tail.
 */

#include "obs/calibration.hh"

#include <algorithm>
#include <cmath>

namespace qdel {
namespace obs {

double
binomialTailBelow(uint64_t k, uint64_t n, double p)
{
    if (n == 0)
        return 1.0;
    if (!(p > 0.0))
        return 1.0;
    if (!(p < 1.0))
        return k >= n ? 1.0 : 0.0;
    if (k >= n)
        return 1.0;
    // Sum the pmf in log space: log C(n,i) + i log p + (n-i) log(1-p).
    // Accumulating the probabilities directly (not via log-sum-exp) is
    // fine here because each term is a plain positive double and the
    // sum is bounded by 1.
    const double logP = std::log(p);
    const double logQ = std::log1p(-p);
    const double lgN = std::lgamma(static_cast<double>(n) + 1.0);
    double sum = 0.0;
    for (uint64_t i = 0; i <= k; ++i) {
        const double di = static_cast<double>(i);
        const double logTerm =
            lgN - std::lgamma(di + 1.0) -
            std::lgamma(static_cast<double>(n - i) + 1.0) + di * logP +
            static_cast<double>(n - i) * logQ;
        sum += std::exp(logTerm);
    }
    return std::min(1.0, std::max(0.0, sum));
}

void
CalibrationWindow::record(bool hit)
{
    if (size_ < kCapacity) {
        slots_[size_++] = hit ? 1 : 0;
        hits_ += hit ? 1 : 0;
        return;
    }
    hits_ -= slots_[next_];
    slots_[next_] = hit ? 1 : 0;
    hits_ += hit ? 1 : 0;
    next_ = (next_ + 1) % kCapacity;
}

double
CalibrationWindow::coverage() const
{
    if (size_ == 0)
        return -1.0;
    return static_cast<double>(hits_) / static_cast<double>(size_);
}

void
CalibrationWindow::clear()
{
    slots_.fill(0);
    size_ = 0;
    next_ = 0;
    hits_ = 0;
}

std::vector<uint8_t>
CalibrationWindow::serialize() const
{
    std::vector<uint8_t> out;
    out.reserve(size_);
    // Oldest first: once full the cursor points at the oldest slot.
    const std::size_t start = size_ < kCapacity ? 0 : next_;
    for (std::size_t i = 0; i < size_; ++i)
        out.push_back(slots_[(start + i) % kCapacity]);
    return out;
}

void
CalibrationWindow::restore(const std::vector<uint8_t> &outcomes)
{
    clear();
    for (uint8_t outcome : outcomes)
        record(outcome != 0);
}

CalibrationVerdict
assessCalibration(std::size_t hits, std::size_t n, double confidence,
                  std::size_t minSamples, double alpha)
{
    CalibrationVerdict verdict;
    if (n == 0)
        return verdict;
    verdict.coverage =
        static_cast<double>(hits) / static_cast<double>(n);
    verdict.drift = verdict.coverage - confidence;
    verdict.pValue = binomialTailBelow(hits, n, confidence);
    verdict.failing = n >= minSamples && verdict.pValue < alpha;
    return verdict;
}

} // namespace obs
} // namespace qdel
