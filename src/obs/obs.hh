/**
 * @file
 * Instrumentation-site macros. Every metric update and event emission
 * in the codebase goes through QDEL_OBS()/QDEL_OBS_SPAN(), which gives
 * two guarantees:
 *
 *  - at runtime, when observability is off (the default), a site costs
 *    one relaxed atomic bool load and a predictable branch;
 *  - at compile time, -DQDEL_OBS_DISABLE removes the sites entirely —
 *    no load, no branch, no code — without changing any class
 *    definition (so mixing translation units built with and without
 *    the macro cannot violate the ODR).
 *
 * Usage:
 *
 *   QDEL_OBS(obs::coreMetrics().observations.inc());
 *   QDEL_OBS_SPAN(span, obs::coreMetrics().refitSeconds,
 *                 obs::EventType::Span, "refit");
 */

#ifndef QDEL_OBS_OBS_HH
#define QDEL_OBS_OBS_HH

#include "obs/events.hh"
#include "obs/metrics.hh"

#ifdef QDEL_OBS_DISABLE

#define QDEL_OBS(stmt)                                                 \
    do {                                                               \
    } while (0)

#define QDEL_OBS_SPAN(var, histogram_expr, event_type, label_literal)  \
    do {                                                               \
    } while (0)

#else // !QDEL_OBS_DISABLE

/** Run @p stmt only when obs::enabled(); compiles away when disabled. */
#define QDEL_OBS(stmt)                                                 \
    do {                                                               \
        if (::qdel::obs::enabled()) {                                  \
            stmt;                                                      \
        }                                                              \
    } while (0)

/**
 * Declare a scoped timer @p var that, when observability is on, feeds
 * the elapsed seconds into @p histogram_expr and emits a span event of
 * @p event_type labeled @p label_literal (must be a string literal or
 * other static-lifetime C string) when it goes out of scope.
 */
#define QDEL_OBS_SPAN(var, histogram_expr, event_type, label_literal)  \
    ::qdel::obs::ScopedTimer var(                                      \
        ::qdel::obs::enabled() ? &(histogram_expr) : nullptr,          \
        (event_type), (label_literal))

#endif // QDEL_OBS_DISABLE

#endif // QDEL_OBS_OBS_HH
