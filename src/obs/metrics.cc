/**
 * @file
 * Implementation of the metrics registry and its serializers.
 */

#include "obs/metrics.hh"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace qdel {
namespace obs {

namespace detail {

std::atomic<bool> g_enabled{false};

size_t
threadIndex()
{
    static std::atomic<size_t> next{0};
    thread_local const size_t index =
        next.fetch_add(1, std::memory_order_relaxed);
    return index;
}

namespace {

/**
 * Shortest decimal form of a double that round-trips the values we
 * use as bucket bounds ("0.001", "1", "2.5"); %g with enough digits,
 * trailing-zero trimmed by the format itself.
 */
std::string
formatDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return buf;
}

/** Minimal JSON string escaping (names are ASCII identifiers). */
std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (char c : text) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:   out += c; break;
        }
    }
    return out;
}

} // namespace
} // namespace detail

void
setEnabled(bool enabled)
{
    detail::g_enabled.store(enabled, std::memory_order_relaxed);
}

uint64_t
Counter::value() const
{
    uint64_t total = 0;
    for (const Shard &shard : shards_)
        total += shard.value.load(std::memory_order_relaxed);
    return total;
}

Histogram::Histogram(std::string name, std::string help,
                     std::vector<double> bounds)
    : name_(std::move(name)), help_(std::move(help)),
      bounds_(std::move(bounds))
{
    std::sort(bounds_.begin(), bounds_.end());
    bounds_.erase(std::unique(bounds_.begin(), bounds_.end()),
                  bounds_.end());
    for (Shard &shard : shards_) {
        shard.buckets =
            std::vector<std::atomic<uint64_t>>(bounds_.size() + 1);
    }
}

size_t
Histogram::bucketIndex(double v) const
{
    // First bound >= v wins ("le" semantics: a value exactly on a
    // boundary belongs to that boundary's bucket); everything above
    // the last bound goes to the overflow (+Inf) bucket. NaN is not
    // <= any finite bound, so it belongs in overflow too, but every
    // NaN comparison is false and lower_bound would return begin() --
    // route it explicitly.
    if (std::isnan(v))
        return bounds_.size();
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    return static_cast<size_t>(it - bounds_.begin());
}

std::vector<uint64_t>
Histogram::counts() const
{
    std::vector<uint64_t> totals(bounds_.size() + 1, 0);
    for (const Shard &shard : shards_) {
        for (size_t i = 0; i < totals.size(); ++i) {
            totals[i] +=
                shard.buckets[i].load(std::memory_order_relaxed);
        }
    }
    return totals;
}

uint64_t
Histogram::count() const
{
    uint64_t total = 0;
    for (uint64_t c : counts())
        total += c;
    return total;
}

double
Histogram::sum() const
{
    double total = 0.0;
    for (const Shard &shard : shards_)
        total += shard.sum.load(std::memory_order_relaxed);
    return total;
}

std::vector<double>
exponentialBounds(double first, double factor, size_t n)
{
    std::vector<double> bounds;
    bounds.reserve(n);
    double bound = first;
    for (size_t i = 0; i < n; ++i) {
        bounds.push_back(bound);
        bound *= factor;
    }
    return bounds;
}

void
MetricsSnapshot::merge(const MetricsSnapshot &other)
{
    auto find_counter = [this](const std::string &name) -> CounterSnapshot * {
        for (auto &c : counters)
            if (c.name == name)
                return &c;
        return nullptr;
    };
    for (const CounterSnapshot &c : other.counters) {
        if (CounterSnapshot *mine = find_counter(c.name))
            mine->value += c.value;
        else
            counters.push_back(c);
    }

    auto find_gauge = [this](const std::string &name) -> GaugeSnapshot * {
        for (auto &g : gauges)
            if (g.name == name)
                return &g;
        return nullptr;
    };
    for (const GaugeSnapshot &g : other.gauges) {
        if (GaugeSnapshot *mine = find_gauge(g.name))
            mine->value = g.value;  // latest wins
        else
            gauges.push_back(g);
    }

    auto find_histogram =
        [this](const std::string &name) -> HistogramSnapshot * {
        for (auto &h : histograms)
            if (h.name == name)
                return &h;
        return nullptr;
    };
    for (const HistogramSnapshot &h : other.histograms) {
        HistogramSnapshot *mine = find_histogram(h.name);
        if (!mine) {
            histograms.push_back(h);
            continue;
        }
        if (mine->bounds != h.bounds) {
            // Incompatible layouts cannot be summed bucket-by-bucket;
            // keep ours (merge is aggregation plumbing, not a parser).
            continue;
        }
        for (size_t i = 0; i < mine->counts.size(); ++i)
            mine->counts[i] += h.counts[i];
        mine->sum += h.sum;
        mine->count += h.count;
    }
}

std::string
renderPrometheus(const MetricsSnapshot &snapshot)
{
    std::string out;
    char buf[128];
    for (const CounterSnapshot &c : snapshot.counters) {
        out += "# HELP " + c.name + " " + c.help + "\n";
        out += "# TYPE " + c.name + " counter\n";
        std::snprintf(buf, sizeof(buf), "%s %" PRIu64 "\n",
                      c.name.c_str(), c.value);
        out += buf;
    }
    for (const GaugeSnapshot &g : snapshot.gauges) {
        out += "# HELP " + g.name + " " + g.help + "\n";
        out += "# TYPE " + g.name + " gauge\n";
        out += g.name + " " + detail::formatDouble(g.value) + "\n";
    }
    for (const HistogramSnapshot &h : snapshot.histograms) {
        out += "# HELP " + h.name + " " + h.help + "\n";
        out += "# TYPE " + h.name + " histogram\n";
        uint64_t cumulative = 0;
        for (size_t i = 0; i < h.bounds.size(); ++i) {
            cumulative += h.counts[i];
            std::snprintf(buf, sizeof(buf),
                          "%s_bucket{le=\"%s\"} %" PRIu64 "\n",
                          h.name.c_str(),
                          detail::formatDouble(h.bounds[i]).c_str(),
                          cumulative);
            out += buf;
        }
        cumulative += h.counts.empty() ? 0 : h.counts.back();
        std::snprintf(buf, sizeof(buf),
                      "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n",
                      h.name.c_str(), cumulative);
        out += buf;
        out += h.name + "_sum " + detail::formatDouble(h.sum) + "\n";
        std::snprintf(buf, sizeof(buf), "%s_count %" PRIu64 "\n",
                      h.name.c_str(), h.count);
        out += buf;
    }
    return out;
}

std::string
renderJson(const MetricsSnapshot &snapshot)
{
    std::string out = "{\n  \"counters\": {";
    char buf[64];
    bool first = true;
    for (const CounterSnapshot &c : snapshot.counters) {
        std::snprintf(buf, sizeof(buf), "%" PRIu64, c.value);
        out += std::string(first ? "" : ",") + "\n    \"" +
               detail::jsonEscape(c.name) + "\": " + buf;
        first = false;
    }
    out += "\n  },\n  \"gauges\": {";
    first = true;
    for (const GaugeSnapshot &g : snapshot.gauges) {
        out += std::string(first ? "" : ",") + "\n    \"" +
               detail::jsonEscape(g.name) +
               "\": " + detail::formatDouble(g.value);
        first = false;
    }
    out += "\n  },\n  \"histograms\": {";
    first = true;
    for (const HistogramSnapshot &h : snapshot.histograms) {
        out += std::string(first ? "" : ",") + "\n    \"" +
               detail::jsonEscape(h.name) + "\": {\"bounds\": [";
        for (size_t i = 0; i < h.bounds.size(); ++i) {
            out += (i ? ", " : "") + detail::formatDouble(h.bounds[i]);
        }
        out += "], \"counts\": [";
        for (size_t i = 0; i < h.counts.size(); ++i) {
            std::snprintf(buf, sizeof(buf), "%" PRIu64, h.counts[i]);
            out += std::string(i ? ", " : "") + buf;
        }
        std::snprintf(buf, sizeof(buf), "%" PRIu64, h.count);
        out += std::string("], \"sum\": ") +
               detail::formatDouble(h.sum) + ", \"count\": " + buf + "}";
        first = false;
    }
    out += "\n  }\n}\n";
    return out;
}

Counter &
Registry::counter(const std::string &name, const std::string &help)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (Counter &c : counters_) {
        if (c.name_ == name)
            return c;
    }
    counters_.emplace_back(name, help);
    return counters_.back();
}

Gauge &
Registry::gauge(const std::string &name, const std::string &help)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (Gauge &g : gauges_) {
        if (g.name_ == name)
            return g;
    }
    gauges_.emplace_back(name, help);
    return gauges_.back();
}

Histogram &
Registry::histogram(const std::string &name, const std::string &help,
                    std::vector<double> bounds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (Histogram &h : histograms_) {
        if (h.name_ == name)
            return h;
    }
    histograms_.emplace_back(name, help, std::move(bounds));
    return histograms_.back();
}

MetricsSnapshot
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snap;
    snap.counters.reserve(counters_.size());
    for (const Counter &c : counters_)
        snap.counters.push_back({c.name_, c.help_, c.value()});
    snap.gauges.reserve(gauges_.size());
    for (const Gauge &g : gauges_)
        snap.gauges.push_back({g.name_, g.help_, g.value()});
    snap.histograms.reserve(histograms_.size());
    for (const Histogram &h : histograms_) {
        snap.histograms.push_back(
            {h.name_, h.help_, h.bounds_, h.counts(), h.sum(),
             h.count()});
    }
    return snap;
}

void
Registry::resetForTest()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (Counter &c : counters_) {
        for (Counter::Shard &shard : c.shards_)
            shard.value.store(0, std::memory_order_relaxed);
    }
    for (Gauge &g : gauges_)
        g.value_.store(0.0, std::memory_order_relaxed);
    for (Histogram &h : histograms_) {
        for (Histogram::Shard &shard : h.shards_) {
            for (auto &bucket : shard.buckets)
                bucket.store(0, std::memory_order_relaxed);
            shard.sum.store(0.0, std::memory_order_relaxed);
        }
    }
}

Registry &
registry()
{
    // Intentionally immortal: atexit dumpers and worker threads still
    // running during shutdown may touch the registry after an ordinary
    // function-local static would have been destroyed.
    static Registry *instance = new Registry;
    return *instance;
}

bool
writeMetricsFile(const std::string &path, std::string *error)
{
    const MetricsSnapshot snap = registry().snapshot();
    const bool json =
        path.size() >= 5 &&
        path.compare(path.size() - 5, 5, ".json") == 0;
    std::ofstream out(path);
    if (!out) {
        if (error)
            *error = "cannot open '" + path + "' for writing";
        return false;
    }
    out << (json ? renderJson(snap) : renderPrometheus(snap));
    out.flush();
    if (!out) {
        if (error)
            *error = "write to '" + path + "' failed";
        return false;
    }
    return true;
}

} // namespace obs
} // namespace qdel
