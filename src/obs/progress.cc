/**
 * @file
 * Implementation of the progress/ETA estimator.
 */

#include "obs/progress.hh"

#include <cstdio>

#include "obs/events.hh"

namespace qdel {
namespace obs {

ProgressMeter::ProgressMeter(uint64_t total)
    : total_(total), startNanos_(nowNanos())
{
}

void
ProgressMeter::update(uint64_t done)
{
    if (done > done_)
        done_ = done;
}

double
ProgressMeter::fraction() const
{
    if (total_ == 0)
        return 0.0;
    const double f = static_cast<double>(done_) /
                     static_cast<double>(total_);
    return f > 1.0 ? 1.0 : f;
}

double
ProgressMeter::ratePerSecond() const
{
    if (done_ == 0)
        return 0.0;
    const double elapsed =
        static_cast<double>(nowNanos() - startNanos_) * 1e-9;
    if (elapsed <= 0.0)
        return 0.0;
    return static_cast<double>(done_) / elapsed;
}

double
ProgressMeter::etaSeconds() const
{
    const double rate = ratePerSecond();
    if (rate <= 0.0 || total_ == 0 || done_ >= total_)
        return done_ >= total_ && total_ != 0 ? 0.0 : -1.0;
    return static_cast<double>(total_ - done_) / rate;
}

std::string
ProgressMeter::formatLine(const std::string &unit) const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%llu/%llu %s (%.1f%%) | %.0f %s/s | eta %s",
                  static_cast<unsigned long long>(done_),
                  static_cast<unsigned long long>(total_),
                  unit.c_str(), fraction() * 100.0, ratePerSecond(),
                  unit.c_str(), formatEta(etaSeconds()).c_str());
    return buf;
}

std::string
ProgressMeter::formatEta(double seconds)
{
    if (seconds < 0.0)
        return "--:--:--";
    long long total = static_cast<long long>(seconds + 0.5);
    const long long kMax = 99LL * 3600 + 59 * 60 + 59;
    if (total < 0)
        total = 0;
    if (total > kMax)
        total = kMax;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%02lld:%02lld:%02lld",
                  total / 3600, (total / 60) % 60, total % 60);
    return buf;
}

} // namespace obs
} // namespace qdel
