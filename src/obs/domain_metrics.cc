/**
 * @file
 * Registration of the qdel metric catalog. Bucket layouts:
 *
 *  - latency histograms span 1us .. ~16s in powers of four — wide
 *    enough for both an in-memory refit (microseconds) and an fsync
 *    on spinning rust (tens of milliseconds), at 13 buckets;
 *  - checkpoint payload sizes span 256 B .. ~1 GiB in powers of four.
 */

#include "obs/domain_metrics.hh"

namespace qdel {
namespace obs {

namespace {

std::vector<double>
latencyBounds()
{
    return exponentialBounds(1e-6, 4.0, 13);
}

std::vector<double>
byteBounds()
{
    return exponentialBounds(256.0, 4.0, 12);
}

} // namespace

CoreMetrics &
coreMetrics()
{
    static CoreMetrics metrics{
        registry().counter("qdel_predictor_observations_total",
                           "Wait-time observations fed to predictors"),
        registry().counter("qdel_predictor_refits_total",
                           "Predictor refit() calls"),
        registry().counter("qdel_rare_event_runs_started_total",
                           "Exceedance runs started (first miss after"
                           " a hit)"),
        registry().counter("qdel_rare_event_fired_total",
                           "Rare-event detector firings (run reached"
                           " threshold)"),
        registry().gauge("qdel_rare_event_run_length",
                         "Current consecutive-exceedance run length"),
        registry().gauge("qdel_predictor_history_size",
                         "Observations currently held in history"),
        registry().histogram("qdel_predictor_refit_seconds",
                             "Latency of predictor refit()",
                             latencyBounds()),
    };
    return metrics;
}

ReplayMetrics &
replayMetrics()
{
    static ReplayMetrics metrics{
        registry().counter("qdel_replay_jobs_processed_total",
                           "Jobs stepped through by replay"),
        registry().counter("qdel_replay_predictions_total",
                           "Bound predictions issued for scored jobs"),
        registry().counter("qdel_replay_bound_hits_total",
                           "Scored jobs whose wait was within the"
                           " predicted bound"),
        registry().counter("qdel_replay_bound_misses_total",
                           "Scored jobs whose wait exceeded the"
                           " predicted bound"),
        registry().counter("qdel_replay_infinite_predictions_total",
                           "Predictions with no finite bound"
                           " (insufficient history)"),
        registry().histogram("qdel_replay_eval_task_seconds",
                             "Latency of one per-queue evaluation task",
                             latencyBounds()),
        registry().counter("qdel_replay_batches_total",
                           "Column batches consumed by streaming replay"),
        registry().gauge("qdel_replay_resident_bytes",
                         "Process resident set size sampled by"
                         " streaming replay"),
        registry().gauge("qdel_replay_stream_shard_lag",
                         "Shards mapped but not yet fully evaluated by"
                         " streaming replay"),
    };
    return metrics;
}

PoolMetrics &
poolMetrics()
{
    static PoolMetrics metrics{
        registry().counter("qdel_pool_tasks_submitted_total",
                           "Tasks submitted to the thread pool"),
        registry().counter("qdel_pool_tasks_completed_total",
                           "Tasks completed by pool workers"),
        registry().gauge("qdel_pool_queue_depth",
                         "Tasks waiting in the pool queue"),
        registry().histogram("qdel_pool_task_seconds",
                             "Wall time of one pool task",
                             latencyBounds()),
    };
    return metrics;
}

PersistMetrics &
persistMetrics()
{
    static PersistMetrics metrics{
        registry().counter("qdel_persist_checkpoints_written_total",
                           "Snapshots published to disk"),
        registry().counter("qdel_persist_wal_appends_total",
                           "Records appended to the write-ahead log"),
        registry().counter("qdel_persist_recoveries_total",
                           "Recovery-ladder runs at startup"),
        registry().gauge("qdel_persist_recovery_rung",
                         "Last recovery rung taken (1=latest snapshot,"
                         " 2=previous snapshot, 3=wal-only,"
                         " 4=cold-start)"),
        registry().gauge("qdel_persist_wal_segment_bytes",
                         "Bytes written to the current WAL segment"),
        registry().histogram("qdel_persist_fsync_seconds",
                             "Latency of fsync()", latencyBounds()),
        registry().histogram("qdel_persist_checkpoint_seconds",
                             "Latency of a full checkpoint write",
                             latencyBounds()),
        registry().histogram("qdel_persist_checkpoint_bytes",
                             "Checkpoint payload sizes", byteBounds()),
    };
    return metrics;
}

IngestMetrics &
ingestMetrics()
{
    static IngestMetrics metrics{
        registry().counter("qdel_ingest_lines_total",
                           "Trace lines scanned by the parsers"),
        registry().counter("qdel_ingest_records_total",
                           "Job records successfully parsed"),
        registry().counter("qdel_ingest_malformed_total",
                           "Lines skipped as malformed (lenient mode)"),
        registry().counter("qdel_ingest_filtered_total",
                           "Records dropped by ingest filters"),
        registry().counter("qdel_ingest_bytes_total",
                           "Trace bytes consumed by text parsing"),
        registry().counter("qdel_trace_cache_hits_total",
                           ".qtc cache hits"),
        registry().counter("qdel_trace_cache_stale_total",
                           ".qtc caches rejected as stale"),
        registry().counter("qdel_trace_cache_corrupt_total",
                           ".qtc caches rejected as corrupt"),
        registry().counter("qdel_trace_cache_misses_total",
                           ".qtc cache misses (no cache file)"),
        registry().histogram("qdel_ingest_parse_seconds",
                             "Latency of one trace load",
                             latencyBounds()),
    };
    return metrics;
}

ServeMetrics &
serveMetrics()
{
    static ServeMetrics metrics{
        registry().counter("qdel_serve_requests_total",
                           "Requests handled by the bound service"
                           " (all opcodes + HTTP)"),
        registry().counter("qdel_serve_queries_total",
                           "Bound queries answered"),
        registry().counter("qdel_serve_events_applied_total",
                           "Job events applied to the registry"),
        registry().counter("qdel_serve_events_rejected_total",
                           "Job events rejected by validation"),
        registry().counter("qdel_serve_bad_frames_total",
                           "Malformed request frames dropped"),
        registry().counter("qdel_serve_snapshot_publishes_total",
                           "Bound snapshots published to the read path"),
        registry().counter("qdel_serve_http_requests_total",
                           "Requests that arrived over the HTTP"
                           " fallback"),
        registry().counter("qdel_serve_shed_total",
                           "Requests refused by admission control"
                           " (connection slots or pending bound"
                           " exhausted)"),
        registry().counter("qdel_serve_reaped_connections_total",
                           "Connections closed for exceeding an io or"
                           " idle deadline"),
        registry().counter("qdel_serve_dedup_hits_total",
                           "Retried events answered from the per-client"
                           " seq fence without re-applying"),
        registry().counter("qdel_serve_accept_errors_total",
                           "accept() failures absorbed by the backoff"
                           " loop"),
        registry().counter("qdel_serve_loop_wakeups_total",
                           "epoll_wait() returns across reactor loops"),
        registry().counter("qdel_serve_buffer_shrinks_total",
                           "Per-connection buffers released back to the"
                           " small default after an oversized request"),
        registry().counter("qdel_serve_slow_requests_total",
                           "Requests whose handling exceeded the"
                           " --slow-request-us threshold"),
        registry().gauge("qdel_serve_entries",
                         "Live (machine, queue, proc-bucket) predictor"
                         " entries"),
        registry().gauge("qdel_serve_pending_jobs",
                         "Submitted jobs not yet started"),
        registry().gauge("qdel_serve_connections",
                         "Open client connections"),
        registry().gauge("qdel_serve_reactor_loops",
                         "Reactor event-loop threads running"),
        registry().histogram("qdel_serve_request_seconds",
                             "Latency of one served request",
                             latencyBounds()),
        registry().histogram("qdel_serve_query_seconds",
                             "Latency of one bound query",
                             latencyBounds()),
        registry().histogram("qdel_serve_batch_frames",
                             "Complete frames serviced per reactor"
                             " drain batch",
                             exponentialBounds(1.0, 4.0, 8)),
    };
    return metrics;
}

CalibrationMetrics &
calibrationMetrics()
{
    static CalibrationMetrics metrics{
        registry().counter("qdel_calib_scored_total",
                           "Started jobs scored against the bound"
                           " captured at their submit"),
        registry().counter("qdel_calib_hits_total",
                           "Scored waits covered by the captured"
                           " bound (infinite bounds count as hits)"),
        registry().counter("qdel_calib_misses_total",
                           "Scored waits that exceeded the captured"
                           " finite bound"),
        registry().counter("qdel_calib_infinite_total",
                           "Scored jobs whose captured bound was"
                           " infinite (insufficient history)"),
        registry().counter("qdel_calib_unscored_total",
                           "Started jobs with no scoreable bound"
                           " (entry still training at submit)"),
        registry().gauge("qdel_calib_entries",
                         "Predictor entries with at least one scored"
                         " outcome"),
        registry().gauge("qdel_calib_failing_entries",
                         "Entries whose rolling coverage is"
                         " significantly below the requested"
                         " confidence (one-sided binomial test)"),
        registry().gauge("qdel_calib_worst_coverage",
                         "Smallest rolling-window empirical coverage"
                         " across entries (-1 until something is"
                         " scored)"),
        registry().gauge("qdel_calib_max_undercoverage",
                         "Largest (confidence - rolling coverage)"
                         " across entries; positive means some entry"
                         " under-covers"),
    };
    return metrics;
}

} // namespace obs
} // namespace qdel
