/**
 * @file
 * Reusable per-connection byte buffer for the reactor's receive path.
 *
 * The reactor reads edge-triggered sockets into one of these per
 * connection: writable tail space is handed to recv(), complete frames
 * are consumed off the head, and the storage is recycled — not freed —
 * between batches, so a steady-state connection performs zero
 * allocations per request.
 *
 * Consumption is an offset, not an erase: erase(0, n) memmoves the
 * whole remainder on every frame, which is O(bytes^2) for a pipelined
 * burst. Here consumed bytes advance head_, and the live region is
 * compacted to the front only when tail space is needed — at which
 * point the live region is almost always empty (a fully-drained batch)
 * and compaction is a no-op.
 *
 * Capacity is also bounded over time: a single near-kMaxFrameBytes
 * frame would otherwise pin ~1 MiB for the connection's lifetime.
 * shrinkIfOversized() releases storage back to the small default once
 * the oversized request has been serviced; the reactor calls it after
 * every drained batch and counts releases in
 * qdel_serve_buffer_shrinks_total.
 */

#ifndef QDEL_SERVE_CONN_BUFFER_HH
#define QDEL_SERVE_CONN_BUFFER_HH

#include <cstddef>
#include <cstring>
#include <string_view>
#include <vector>

namespace qdel {
namespace serve {

class ConnBuffer
{
  public:
    /** Steady-state capacity; also the recv() chunk size. */
    static constexpr size_t kDefaultCapacity = 16 * 1024;

    /** Capacities above this are released once the live region fits
     *  the default again. */
    static constexpr size_t kShrinkThreshold = 4 * kDefaultCapacity;

    ConnBuffer() { bytes_.resize(kDefaultCapacity); }

    /** Unconsumed bytes (the live region). */
    std::string_view view() const
    {
        return std::string_view(bytes_.data() + head_, tail_ - head_);
    }

    size_t size() const { return tail_ - head_; }
    bool empty() const { return head_ == tail_; }
    size_t capacity() const { return bytes_.size(); }

    /**
     * Guarantee @p want writable bytes past the live region and return
     * a pointer to them; commit(n) after the read. Compacts the live
     * region to the front first, and only grows storage when the live
     * bytes plus @p want genuinely exceed capacity.
     */
    char *writePtr(size_t want)
    {
        if (bytes_.size() - tail_ < want) {
            compact();
            if (bytes_.size() - tail_ < want)
                bytes_.resize(tail_ + want);
        }
        return bytes_.data() + tail_;
    }

    /** Publish @p n bytes written through writePtr(). */
    void commit(size_t n) { tail_ += n; }

    /** Drop @p n bytes off the head of the live region. */
    void consume(size_t n)
    {
        head_ += n;
        if (head_ == tail_)
            head_ = tail_ = 0;
    }

    void clear() { head_ = tail_ = 0; }

    /**
     * Release oversized storage once the live region fits the default
     * capacity again. Returns true when memory was actually given back
     * (the caller counts these). Never shrinks mid-request: a live
     * region larger than the default keeps its storage.
     */
    bool shrinkIfOversized()
    {
        if (bytes_.size() <= kShrinkThreshold ||
            size() > kDefaultCapacity)
            return false;
        std::vector<char> fresh(kDefaultCapacity);
        const size_t live = size();
        if (live > 0)
            std::memcpy(fresh.data(), bytes_.data() + head_, live);
        bytes_.swap(fresh);
        head_ = 0;
        tail_ = live;
        return true;
    }

  private:
    void compact()
    {
        if (head_ == 0)
            return;
        const size_t live = size();
        if (live > 0)
            std::memmove(bytes_.data(), bytes_.data() + head_, live);
        head_ = 0;
        tail_ = live;
    }

    std::vector<char> bytes_;
    size_t head_ = 0;  //!< First unconsumed byte.
    size_t tail_ = 0;  //!< One past the last committed byte.
};

} // namespace serve
} // namespace qdel

#endif // QDEL_SERVE_CONN_BUFFER_HH
