/**
 * @file
 * Implementation of the deterministic network fault hook.
 */

#include "serve/netfault.hh"

#include <atomic>
#include <cstdlib>
#include <mutex>

namespace qdel {
namespace serve {
namespace netfault {

namespace {

struct State
{
    std::mutex mutex;
    Plan plan;
    bool envChecked = false;
    bool armed = false;  //!< triggerOp reached; fire at next match.
    bool fired = false;  //!< The one-shot fault has fired.
    std::atomic<uint64_t> ops{0};
};

State &
state()
{
    static State s;
    return s;
}

/** SplitMix64, same mix as persist::fault for reproducibility. */
uint64_t
mix(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

bool
matchesOp(Kind kind, detail::Op op)
{
    switch (kind) {
    case Kind::ShortRead:
    case Kind::Stall:
        return op == detail::Op::Recv;
    case Kind::ShortWrite:
        return op == detail::Op::Send;
    case Kind::ConnReset:
        return op == detail::Op::Recv || op == detail::Op::Send;
    case Kind::AcceptFail:
        return op == detail::Op::Accept;
    case Kind::None:
        return false;
    }
    return false;
}

} // namespace

void
configure(const Plan &plan)
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.plan = plan;
    s.envChecked = true;  // explicit configuration overrides the env
    s.armed = false;
    s.fired = false;
    s.ops.store(0, std::memory_order_relaxed);
}

void
reset()
{
    configure(Plan{});
}

bool
enabled()
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.plan.kind != Kind::None;
}

uint64_t
opCount()
{
    return state().ops.load(std::memory_order_relaxed);
}

const char *
kindName(Kind kind)
{
    switch (kind) {
    case Kind::None:
        return "none";
    case Kind::ShortRead:
        return "short-read";
    case Kind::ShortWrite:
        return "short-write";
    case Kind::ConnReset:
        return "conn-reset";
    case Kind::AcceptFail:
        return "accept-fail";
    case Kind::Stall:
        return "stall";
    }
    return "none";
}

bool
parseKind(const std::string &text, Kind *out)
{
    static constexpr Kind kAll[] = {
        Kind::None,       Kind::ShortRead, Kind::ShortWrite,
        Kind::ConnReset,  Kind::AcceptFail, Kind::Stall,
    };
    for (Kind kind : kAll) {
        if (text == kindName(kind)) {
            *out = kind;
            return true;
        }
    }
    return false;
}

Plan
planFromEnv()
{
    Plan plan;
    const char *kind_env = std::getenv("QDEL_NETFAULT_KIND");
    if (!kind_env || !parseKind(kind_env, &plan.kind))
        return Plan{};
    if (const char *op_env = std::getenv("QDEL_NETFAULT_OP")) {
        char *end = nullptr;
        const unsigned long long parsed = std::strtoull(op_env, &end, 10);
        if (end != op_env && *end == '\0')
            plan.triggerOp = parsed;
    }
    if (const char *seed_env = std::getenv("QDEL_NETFAULT_SEED")) {
        char *end = nullptr;
        const unsigned long long parsed =
            std::strtoull(seed_env, &end, 10);
        if (end != seed_env && *end == '\0')
            plan.seed = parsed;
    }
    return plan;
}

namespace detail {

Outcome
onOp(Op op, size_t io_len)
{
    State &s = state();
    const uint64_t index = s.ops.fetch_add(1, std::memory_order_relaxed);

    std::lock_guard<std::mutex> lock(s.mutex);
    if (!s.envChecked) {
        s.envChecked = true;
        s.plan = planFromEnv();
    }

    Outcome outcome;
    if (s.plan.kind == Kind::None || s.fired)
        return outcome;

    if (index >= s.plan.triggerOp)
        s.armed = true;
    if (!s.armed || !matchesOp(s.plan.kind, op))
        return outcome;

    s.fired = true;
    const uint64_t h = mix(s.plan.seed ^ (index * 0x9e3779b97f4a7c15ULL));
    switch (s.plan.kind) {
    case Kind::ShortRead:
        // Hand the reader a 1..4 byte dribble: legal kernel behaviour
        // the framing layer must absorb without losing sync.
        outcome.clampBytes = 1 + h % 4;
        outcome.reason = "simulated short read";
        break;
    case Kind::ShortWrite:
        outcome.partial = true;
        outcome.partialBytes = io_len > 0 ? h % io_len : 0;
        outcome.fail = true;
        outcome.reason = "simulated short write + connection loss";
        break;
    case Kind::ConnReset:
        outcome.fail = true;
        outcome.reason = "simulated connection reset";
        break;
    case Kind::AcceptFail:
        outcome.fail = true;
        outcome.reason = "simulated accept failure";
        break;
    case Kind::Stall:
        outcome.stall = true;
        outcome.reason = "simulated peer stall";
        break;
    case Kind::None:
        break;
    }
    return outcome;
}

} // namespace detail
} // namespace netfault
} // namespace serve
} // namespace qdel
