/**
 * @file
 * Implementation of the TCP front end.
 */

#include "serve/server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/domain_metrics.hh"
#include "obs/obs.hh"
#include "persist/state_codec.hh"
#include "serve/http.hh"
#include "util/logging.hh"

namespace qdel {
namespace serve {

namespace {

/** send() the whole buffer, suppressing SIGPIPE. */
bool
sendAll(int fd, std::string_view bytes)
{
    size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t n = ::send(fd, bytes.data() + sent,
                                 bytes.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<size_t>(n);
    }
    return true;
}

/** Append up to @p max more bytes; false on EOF/error. */
bool
recvSome(int fd, std::string *buffer, size_t max = 64 * 1024)
{
    const size_t old_size = buffer->size();
    buffer->resize(old_size + max);
    for (;;) {
        const ssize_t n = ::recv(fd, buffer->data() + old_size, max, 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0) {
            buffer->resize(old_size);
            return false;
        }
        buffer->resize(old_size + static_cast<size_t>(n));
        return true;
    }
}

} // namespace

Expected<Unit>
ServerOptions::validate() const
{
    if (port < 0 || port > 65535) {
        return ParseError{"", 0, "port",
                          "port must be in [0, 65535], got " +
                              std::to_string(port)};
    }
    struct in_addr parsed;
    if (::inet_pton(AF_INET, bindAddress.c_str(), &parsed) != 1) {
        return ParseError{"", 0, "bindAddress",
                          "'" + bindAddress +
                              "' is not an IPv4 address"};
    }
    return Unit{};
}

struct BoundServer::Impl
{
    BoundService *service = nullptr;
    int listenFd = -1;
    int boundPort = 0;
    std::thread acceptThread;

    std::mutex mutex;
    bool stopping = false;
    std::vector<std::thread> connectionThreads;
    std::vector<int> connectionFds;

    void acceptLoop();
    void serveConnection(int fd);
    void serveBinary(int fd, std::string buffer);
    void serveHttp(int fd, std::string buffer);
    std::string handleFrame(std::string_view payload);
    std::string handleHttpRequest(const HttpRequest &request);
    void stop();

    ~Impl() { stop(); }
};

BoundServer::BoundServer(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl))
{
}

BoundServer::~BoundServer()
{
    stop();
}

int
BoundServer::port() const
{
    return impl_->boundPort;
}

void
BoundServer::stop()
{
    if (impl_ != nullptr)
        impl_->stop();
}

Expected<std::unique_ptr<BoundServer>>
BoundServer::start(BoundService &service, const ServerOptions &options)
{
    if (auto ok = options.validate(); !ok.ok())
        return ok.error();

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        return ParseError{"", 0, "socket",
                          std::string("socket(): ") + std::strerror(errno)};
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    struct sockaddr_in address;
    std::memset(&address, 0, sizeof(address));
    address.sin_family = AF_INET;
    address.sin_port = htons(static_cast<uint16_t>(options.port));
    ::inet_pton(AF_INET, options.bindAddress.c_str(), &address.sin_addr);
    if (::bind(fd, reinterpret_cast<struct sockaddr *>(&address),
               sizeof(address)) != 0) {
        const std::string reason = std::strerror(errno);
        ::close(fd);
        return ParseError{"", 0, "bind",
                          "bind(" + options.bindAddress + ":" +
                              std::to_string(options.port) +
                              "): " + reason};
    }
    if (::listen(fd, 64) != 0) {
        const std::string reason = std::strerror(errno);
        ::close(fd);
        return ParseError{"", 0, "listen",
                          std::string("listen(): ") + reason};
    }
    socklen_t address_length = sizeof(address);
    ::getsockname(fd, reinterpret_cast<struct sockaddr *>(&address),
                  &address_length);

    auto impl = std::make_unique<Impl>();
    impl->service = &service;
    impl->listenFd = fd;
    impl->boundPort = static_cast<int>(ntohs(address.sin_port));
    impl->acceptThread = std::thread([raw = impl.get()] {
        raw->acceptLoop();
    });
    return std::unique_ptr<BoundServer>(new BoundServer(std::move(impl)));
}

void
BoundServer::Impl::acceptLoop()
{
    for (;;) {
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return;  // Listener closed by stop().
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        std::lock_guard<std::mutex> lock(mutex);
        if (stopping) {
            ::close(fd);
            return;
        }
        connectionFds.push_back(fd);
        QDEL_OBS(obs::serveMetrics().connections.add(1.0));
        connectionThreads.emplace_back([this, fd] {
            serveConnection(fd);
            {
                // Unregister before close so stop() never shutdown()s
                // a recycled descriptor number.
                std::lock_guard<std::mutex> conn_lock(mutex);
                connectionFds.erase(std::remove(connectionFds.begin(),
                                                connectionFds.end(), fd),
                                    connectionFds.end());
            }
            ::close(fd);
            QDEL_OBS(obs::serveMetrics().connections.add(-1.0));
        });
    }
}

void
BoundServer::Impl::serveConnection(int fd)
{
    // Sniff the protocol: a binary frame's 4th byte is always NUL
    // (payload lengths are < 2^24); an HTTP method line never has one.
    std::string buffer;
    while (buffer.size() < 4) {
        if (!recvSome(fd, &buffer))
            return;
    }
    if (looksLikeHttp(std::string_view(buffer).substr(0, 4)))
        serveHttp(fd, std::move(buffer));
    else
        serveBinary(fd, std::move(buffer));
}

void
BoundServer::Impl::serveBinary(int fd, std::string buffer)
{
    for (;;) {
        std::string_view payload;
        size_t consumed = 0;
        auto framed = unframe(buffer, &payload, &consumed);
        if (!framed.ok()) {
            QDEL_OBS(obs::serveMetrics().badFrames.inc());
            sendAll(fd, frameError(framed.error().reason));
            return;  // Cannot resynchronize after a corrupt length.
        }
        if (!framed.value()) {
            if (!recvSome(fd, &buffer))
                return;
            continue;
        }
        const std::string response = handleFrame(payload);
        buffer.erase(0, consumed);
        if (!sendAll(fd, response))
            return;
    }
}

std::string
BoundServer::Impl::handleFrame(std::string_view payload)
{
    QDEL_OBS(obs::serveMetrics().requests.inc());
    QDEL_OBS_SPAN(span, obs::serveMetrics().requestSeconds,
                  obs::EventType::Span, "serve_request");
    persist::StateReader reader(payload, "request");
    auto opcode = reader.u8();
    if (!opcode.ok()) {
        QDEL_OBS(obs::serveMetrics().badFrames.inc());
        return frameError("empty request frame");
    }
    const std::string_view body = payload.substr(1);
    switch (static_cast<Opcode>(opcode.value())) {
    case Opcode::Event: {
        auto event = decodeEvent(body);
        if (!event.ok()) {
            QDEL_OBS(obs::serveMetrics().badFrames.inc());
            return frameError(event.error().reason);
        }
        auto outcome = service->ingest(event.value());
        if (!outcome.ok())
            return frameError(outcome.error().reason);
        persist::StateWriter response;
        response.u8(outcome.value().applied ? 1 : 0);
        response.str(outcome.value().applied
                         ? std::string()
                         : std::string(outcome.value().rejectReason));
        return frameOk(response.bytes());
    }
    case Opcode::Query: {
        QDEL_OBS_SPAN(query_span, obs::serveMetrics().querySeconds,
                      obs::EventType::Span, "serve_query");
        auto query = decodeQuery(body);
        if (!query.ok()) {
            QDEL_OBS(obs::serveMetrics().badFrames.inc());
            return frameError(query.error().reason);
        }
        return frameOk(encodeAnswer(service->query(query.value())));
    }
    case Opcode::Ping: {
        persist::StateWriter response;
        response.u32(kWireVersion);
        return frameOk(response.bytes());
    }
    case Opcode::Checkpoint: {
        if (auto ok = service->checkpointAll(); !ok.ok())
            return frameError(ok.error().reason);
        return frameOk("");
    }
    case Opcode::Stats:
        return frameOk(encodeStats(service->stats()));
    }
    QDEL_OBS(obs::serveMetrics().badFrames.inc());
    return frameError("unknown opcode " + std::to_string(opcode.value()));
}

void
BoundServer::Impl::serveHttp(int fd, std::string buffer)
{
    // Read to the end of the head.
    size_t head_end;
    for (;;) {
        head_end = buffer.find("\r\n\r\n");
        size_t separator = 4;
        if (head_end == std::string::npos) {
            head_end = buffer.find("\n\n");
            separator = 2;
        }
        if (head_end != std::string::npos) {
            head_end += separator;
            break;
        }
        if (buffer.size() > kMaxFrameBytes ||
            !recvSome(fd, &buffer)) {
            sendAll(fd, renderHttpResponse(400, "text/plain",
                                           "unterminated request head\n"));
            return;
        }
    }
    auto parsed = parseRequestHead(
        std::string_view(buffer).substr(0, head_end));
    if (!parsed.ok()) {
        QDEL_OBS(obs::serveMetrics().badFrames.inc());
        sendAll(fd, renderHttpResponse(400, "text/plain",
                                       parsed.error().reason + "\n"));
        return;
    }
    HttpRequest request = std::move(parsed).value();
    if (request.contentLength > kMaxFrameBytes) {
        sendAll(fd, renderHttpResponse(400, "text/plain",
                                       "request body too large\n"));
        return;
    }
    while (buffer.size() - head_end < request.contentLength) {
        if (!recvSome(fd, &buffer)) {
            sendAll(fd, renderHttpResponse(400, "text/plain",
                                           "truncated request body\n"));
            return;
        }
    }
    sendAll(fd, handleHttpRequest(request));
}

std::string
BoundServer::Impl::handleHttpRequest(const HttpRequest &request)
{
    QDEL_OBS({
        obs::serveMetrics().requests.inc();
        obs::serveMetrics().httpRequests.inc();
    });
    QDEL_OBS_SPAN(span, obs::serveMetrics().requestSeconds,
                  obs::EventType::Span, "serve_http");

    auto param = [&](const char *name, const char *fallback) {
        const auto it = request.params.find(name);
        return it == request.params.end() ? std::string(fallback)
                                          : it->second;
    };

    if (request.method == "GET" && request.path == "/healthz")
        return renderHttpResponse(200, "application/json",
                                  "{\"status\":\"ok\"}");
    if (request.method == "GET" && request.path == "/metrics") {
        return renderHttpResponse(
            200, "text/plain; version=0.0.4",
            obs::renderPrometheus(obs::registry().snapshot()));
    }
    if (request.method == "GET" && request.path == "/bound") {
        QDEL_OBS_SPAN(query_span, obs::serveMetrics().querySeconds,
                      obs::EventType::Span, "serve_query");
        BoundQuery query;
        query.machine = param("machine", "");
        query.queue = param("queue", "");
        query.procs = std::atoi(param("procs", "1").c_str());
        query.quantile = std::atof(param("q", "0.95").c_str());
        return renderHttpResponse(200, "application/json",
                                  answerToJson(service->query(query)));
    }
    if (request.method == "POST" && request.path == "/event") {
        JobEvent event;
        const std::string kind = param("kind", "");
        if (kind == "submit") {
            event.kind = EventKind::Submit;
        } else if (kind == "start") {
            event.kind = EventKind::Start;
        } else if (kind == "done") {
            event.kind = EventKind::Done;
        } else {
            return renderHttpResponse(400, "text/plain",
                                      "kind must be submit|start|done\n");
        }
        event.jobId = std::strtoull(param("job", "0").c_str(), nullptr, 10);
        event.time = std::atof(param("time", "0").c_str());
        event.machine = param("machine", "");
        event.queue = param("queue", "");
        event.procs = std::atoi(param("procs", "1").c_str());
        auto outcome = service->ingest(event);
        if (!outcome.ok())
            return renderHttpResponse(500, "text/plain",
                                      outcome.error().reason + "\n");
        std::string body = "{\"applied\":";
        body += outcome.value().applied ? "true" : "false";
        if (!outcome.value().applied) {
            body += ",\"reason\":\"";
            body += jsonEscape(outcome.value().rejectReason);
            body += "\"";
        }
        body += "}";
        return renderHttpResponse(200, "application/json", body);
    }
    if (request.method == "POST" && request.path == "/checkpoint") {
        if (auto ok = service->checkpointAll(); !ok.ok())
            return renderHttpResponse(500, "text/plain",
                                      ok.error().reason + "\n");
        return renderHttpResponse(200, "application/json",
                                  "{\"ok\":true}");
    }
    if (request.method == "GET" && request.path == "/stats")
        return renderHttpResponse(200, "application/json",
                                  statsToJson(service->stats()));
    return renderHttpResponse(404, "text/plain", "unknown route\n");
}

void
BoundServer::Impl::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (stopping)
            return;
        stopping = true;
    }
    if (listenFd >= 0) {
        ::shutdown(listenFd, SHUT_RDWR);
        ::close(listenFd);
        listenFd = -1;
    }
    if (acceptThread.joinable())
        acceptThread.join();
    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lock(mutex);
        for (int fd : connectionFds)
            ::shutdown(fd, SHUT_RDWR);
        threads.swap(connectionThreads);
    }
    for (std::thread &thread : threads)
        thread.join();
}

} // namespace serve
} // namespace qdel
